(* The simulated multiprocessor.

   Each simulated thread carries its own nanosecond clock; the
   scheduler always advances the runnable thread with the smallest
   clock (bursting while it remains the earliest), so cross-thread
   interactions — lock hand-offs, transaction commits — happen in a
   single causally-consistent order.  Lock contention transfers clock
   values from releaser to acquirer, which is what produces realistic
   scaling curves.

   Crash granularity is the instruction: a crash lands between
   instruction slots, and the persistent image then contains exactly
   the lines that were written back (or evicted) so far. *)

open Ido_util
open Ido_nvm
open Ido_region
open Ido_ir
open Ido_runtime
open State

type run_outcome = [ `Idle | `Until | `Max_steps | `Deadlock ]

let create (config : config) (program : Ir.program) =
  Ido_analysis.Validate.check_program_exn program;
  let instrumented =
    Ido_instrument.Instrument.instrument ~opt:config.opt config.scheme program
  in
  let image = Image.build instrumented in
  let rng = Rng.create config.seed in
  let pmem = Pmem.create ~cache_lines:config.cache_lines ~rng:(Rng.split rng) config.pmem_words in
  let region = Region.create pmem in
  Region.mark_running region;
  {
    config;
    image;
    pmem;
    region;
    vmem = Vmem.create ();
    locks = Hashtbl.create 64;
    rng;
    threads = Vec.create ();
    clock_floor = 0;
    next_tid = 0;
    seq = 0;
    commit_version = 0;
    write_versions = Hashtbl.create 256;
    commit_token_free_at = 0;
    stores_per_region = Cdf.create ();
    livein_per_region = Cdf.create ();
    total_ops = 0;
    crashed = false;
    tracer = None;
    event_hook = None;
    obs = None;
    obs_tid = -1;
    obs_fase = -1;
    next_fase_id = 0;
    free_stacks = [];
    free_log_nodes = [];
  }

let obs_kind_of_pmem m (ev : Pmem.event) : Ido_obs.Obs.kind =
  match ev with
  | Pmem.Ev_store a -> Ido_obs.Obs.Store a
  | Pmem.Ev_clwb a -> Ido_obs.Obs.Flush a
  | Pmem.Ev_fence -> Ido_obs.Obs.Fence (Pmem.pending_flushes m.pmem)
  | Pmem.Ev_evict a -> Ido_obs.Obs.Evict a

let create config program =
  let m = create config program in
  (* Forward pmem traffic to the machine-level hook so one subscriber
     sees memory and lock events in a single stream.  The crash-
     injection hook runs first: if it raises, the event's effect never
     happens, so neither the counters nor the obs sink record it — the
     trace and `Pmem.counters` stay in exact agreement. *)
  Ido_nvm.Pmem.set_event_hook m.pmem
    (Some
       (fun ev ->
         (match m.event_hook with
         | Some f -> f (Event.of_pmem ev)
         | None -> ());
         match m.obs with
         | Some o ->
             Ido_obs.Obs.emit o ~tid:m.obs_tid ~fase:m.obs_fase
               (obs_kind_of_pmem m ev)
         | None -> ()));
  m

(* Return the machine to the state [create config program] would have
   produced, reusing the expensive parts: the instrumented image, the
   pmem word array and overlay storage, the lock tables and thread
   vector.  Deterministic equivalence holds because (a) the RNG is
   re-seeded exactly as [create] seeds it, (b) nothing iterates the
   recycled hashtables in a capacity-dependent order, and (c) the
   persistence domain is re-zeroed up to its high-water mark.  The
   crash explorer resets one arena machine per injection instead of
   re-validating, re-instrumenting and re-allocating 8 MiB per run. *)
let reset m =
  (* Quiesce observers first: the pmem forwarding hook stays installed
     but forwards to nothing, so reinitialisation traffic is exactly as
     invisible as it is in [create]. *)
  m.tracer <- None;
  m.event_hook <- None;
  m.obs <- None;
  m.obs_tid <- -1;
  m.obs_fase <- -1;
  Rng.assign ~into:m.rng (Rng.create m.config.seed);
  Pmem.reset ~rng:(Rng.split m.rng) m.pmem;
  ignore (Region.create m.pmem : Region.t);
  Region.mark_running m.region;
  m.vmem <- Vmem.create ();
  Hashtbl.reset m.locks;
  Vec.truncate m.threads;
  m.clock_floor <- 0;
  m.next_tid <- 0;
  m.seq <- 0;
  m.commit_version <- 0;
  Hashtbl.reset m.write_versions;
  m.commit_token_free_at <- 0;
  Cdf.clear m.stores_per_region;
  Cdf.clear m.livein_per_region;
  m.total_ops <- 0;
  m.crashed <- false;
  m.next_fase_id <- 0;
  m.free_stacks <- [];
  m.free_log_nodes <- []

let emit_event m ev =
  match m.event_hook with Some f -> f ev | None -> ()

let stack_in_pmem (config : config) =
  match config.scheme with
  | Scheme.Ido | Scheme.Justdo -> true
  | _ -> false

let make_thread m ~tid ~fname ~args ~stack_base ~stack_in_pmem ~log_node
    ~recovery_mode =
  let func = Image.func m.image fname in
  let regs = Array.make func.nregs 0L in
  List.iteri
    (fun i r -> regs.(r) <- (try List.nth args i with _ -> 0L))
    func.params;
  {
    tid;
    writer = Pwriter.create m.pmem m.config.latency;
    rng = Rng.split m.rng;
    clock = 0;
    status = Runnable;
    frames = [ { fname; func; blk = 0; idx = 0; regs; ret_to = None; saved_sp = 0 } ];
    sp = 0;
    stack_base;
    stack_in_pmem;
    log_node;
    in_fase = false;
    fase_id = -1;
    region_stores = 0;
    region_lines = Lineset.create ();
    fase_lines = Lineset.create ();
    last_lock = 0;
    armed_grant = Grant_none;
    pending_data_line = -1;
    touched_pages = Hashtbl.create 8;
    txn = None;
    rewound = false;
    first_boundary = false;
    pending_out_regs = [];
    epoch = 0;
    ops = 0;
    observations = [];
    recovery_mode;
    steps = 0;
  }

let spawn m ~fname ~args =
  let tid = m.next_tid in
  m.next_tid <- tid + 1;
  let in_pmem = stack_in_pmem m.config in
  let stack_base =
    match m.free_stacks with
    | base :: rest ->
        (* Recycled stack: zero it so the new thread sees exactly what
           a fresh allocation would have given it.  Poke, not store:
           allocator-side initialisation, no persist events or cost —
           the same convention as fresh (zeroed) memory. *)
        m.free_stacks <- rest;
        if in_pmem then
          for a = base to base + m.config.stack_words - 1 do
            Pmem.poke m.pmem a 0L
          done
        else
          for a = base to base + m.config.stack_words - 1 do
            Vmem.store m.vmem a 0L
          done;
        base
    | [] ->
        if in_pmem then Region.alloc m.region m.config.stack_words
        else Vmem.alloc m.vmem m.config.stack_words
  in
  let w = Pwriter.create m.pmem m.config.latency in
  let log_node =
    match (m.config.scheme, m.free_log_nodes) with
    | Scheme.Origin, _ -> 0
    | scheme, node :: rest ->
        (* Recycled arena: rebind the clean node to the new tid instead
           of growing the region and the log-head chain. *)
        m.free_log_nodes <- rest;
        (match scheme with
        | Scheme.Ido -> Ido_log.rebind w node ~tid
        | Scheme.Justdo -> Justdo_log.rebind w node ~tid
        | Scheme.Atlas | Scheme.Nvml -> Undo_log.rebind w node ~tid
        | Scheme.Mnemosyne -> Redo_log.rebind w node ~tid
        | Scheme.Nvthreads -> Page_log.rebind w node ~tid
        | Scheme.Origin -> ());
        node
    | scheme, [] -> (
        match scheme with
        | Scheme.Ido ->
            Ido_log.create w m.region ~tid ~nregs:(Image.max_regs m.image)
        | Scheme.Justdo ->
            Justdo_log.create w m.region ~tid ~nregs:(Image.max_regs m.image)
        | Scheme.Atlas ->
            Undo_log.create w m.region ~kind:Lognode.kind_atlas ~tid
              ~cap_records:m.config.undo_cap
        | Scheme.Nvml ->
            Undo_log.create w m.region ~kind:Lognode.kind_nvml ~tid
              ~cap_records:m.config.undo_cap
        | Scheme.Mnemosyne ->
            Redo_log.create w m.region ~tid ~cap_entries:m.config.redo_cap
        | Scheme.Nvthreads ->
            Page_log.create w m.region ~tid ~cap_pages:m.config.page_cap
        | Scheme.Origin -> 0)
  in
  ignore (Pwriter.take_cost w);
  let t =
    make_thread m ~tid ~fname ~args ~stack_base ~stack_in_pmem:in_pmem
      ~log_node ~recovery_mode:false
  in
  (* A thread spawned now begins at the machine's current time, not at
     zero — setup work precedes measurement. *)
  t.clock <- max_clock m;
  Vec.push m.threads t;
  t

(* ------------------------------------------------------------------ *)
(* Operand evaluation and addressing *)

let eval (fr : frame) = function
  | Ir.Reg r -> fr.regs.(r)
  | Ir.Imm i -> i

let eval_int fr op = Int64.to_int (eval fr op)

exception Vm_error of string

let vm_error fmt = Printf.ksprintf (fun s -> raise (Vm_error s)) fmt

type where = In_pmem of int | In_vmem of int

let resolve m (t : thread) fr (space : Ir.space) base off =
  let a = eval_int fr base + off in
  match space with
  | Ir.Persistent ->
      if a < 0 || a >= Pmem.size m.pmem then
        vm_error "persistent address %d out of range" a;
      In_pmem a
  | Ir.Transient -> In_vmem a
  | Ir.Stack ->
      if a < t.stack_base || a >= t.stack_base + m.config.stack_words then
        vm_error "stack address %d outside [%d,%d)" a t.stack_base
          (t.stack_base + m.config.stack_words);
      if t.stack_in_pmem then In_pmem a else In_vmem a

let line_of a = a / Pmem.words_per_line

let lat m = m.config.latency

let cost (t : thread) c = Pwriter.add_cost t.writer c

(* ------------------------------------------------------------------ *)
(* Transactions (Mnemosyne) *)

let abort_txn m (t : thread) (txn : txn) =
  let fr = current_frame t in
  Array.blit txn.snap_regs 0 fr.regs 0 (Array.length fr.regs);
  fr.blk <- txn.snap_blk;
  fr.idx <- txn.snap_idx;
  t.txn <- Some txn;  (* keep only to carry the retry count *)
  t.rewound <- true;
  t.in_fase <- false;
  if obs_active m then begin
    obs_emit m Ido_obs.Obs.Fase_exit;
    obs_context m ~tid:t.tid ~fase:(-1)
  end;
  t.fase_id <- -1;
  (* Randomised backoff grows with retries to avoid livelock. *)
  let backoff = Rng.int t.rng (50 * (txn.retries + 1)) in
  cost t ((lat m).Latency.alu * 5);
  cost t backoff

let txn_load m (t : thread) txn a =
  match Hashtbl.find_opt txn.writes a with
  | Some v ->
      cost t (lat m).Latency.alu;
      v
  | None ->
      let v = Pwriter.load t.writer a in
      (* Eager validation gives opacity: never compute on stale data. *)
      (match Hashtbl.find_opt m.write_versions a with
      | Some ver when ver > txn.start_version -> raise Exit
      | _ -> ());
      Hashtbl.replace txn.reads a ();
      cost t (2 * (lat m).Latency.alu);
      v

let txn_store m (t : thread) txn a v =
  if not (Hashtbl.mem txn.writes a) then Vec.push txn.write_order a;
  Hashtbl.replace txn.writes a v;
  (* One redo entry is [addr; value]. *)
  obs_emit m (Ido_obs.Obs.Log_append { log = "redo"; bytes = 16 });
  Redo_log.append t.writer t.log_node ~addr:a ~value:v;
  cost t (lat m).Latency.alu

(* ------------------------------------------------------------------ *)
(* Memory access *)

(* NVThreads: inside a FASE, reads and writes of a copied page are
   served from the thread's page copy; the master stays pristine until
   commit. *)
let page_copy_slot (t : thread) a =
  let page = Page_log.page_of a in
  match Hashtbl.find_opt t.touched_pages page with
  | Some i -> Some (i, a mod Page_log.page_words)
  | None -> None

let do_load m (t : thread) where =
  match where with
  | In_pmem a when m.config.scheme = Scheme.Nvthreads && t.in_fase -> (
      match page_copy_slot t a with
      | Some (i, off) ->
          Pwriter.load t.writer (Page_log.copy_word_addr t.log_node i ~off)
      | None -> Pwriter.load t.writer a)
  | In_pmem a -> (
      match t.txn with
      | Some txn -> (
          try txn_load m t txn a
          with Exit ->
            abort_txn m t { txn with retries = txn.retries + 1 };
            0L)
      | None -> Pwriter.load t.writer a)
  | In_vmem a ->
      cost t (lat m).Latency.mem;
      Vmem.load m.vmem a

let track_store m (t : thread) a =
  if t.in_fase then begin
    let line = line_of a in
    Lineset.add t.region_lines line;
    Lineset.add t.fase_lines line;
    t.region_stores <- t.region_stores + 1;
    if m.config.scheme = Scheme.Justdo then t.pending_data_line <- line
  end

let do_store m (t : thread) where v =
  match where with
  | In_pmem a when m.config.scheme = Scheme.Nvthreads && t.in_fase -> (
      (* A hoisted Hpage_log (O104) armed the grant; the first in-FASE
         store consumes it, with exec_page_log's page dedup. *)
      if t.armed_grant = Grant_page then begin
        t.armed_grant <- Grant_none;
        let page = Page_log.page_of a in
        if not (Hashtbl.mem t.touched_pages page) then begin
          obs_emit m
            (Ido_obs.Obs.Log_append
               { log = "page"; bytes = 8 * Page_log.entry_words });
          let i = Page_log.log_page t.writer t.log_node ~page in
          Hashtbl.replace t.touched_pages page i
        end
      end;
      match page_copy_slot t a with
      | Some (i, off) ->
          Pwriter.store t.writer (Page_log.copy_word_addr t.log_node i ~off) v;
          Page_log.mark_dirty t.writer t.log_node i ~off;
          t.region_stores <- t.region_stores + 1
      | None ->
          (* The Hpage_log hook precedes every in-FASE store, so the
             copy must exist. *)
          vm_error "nvthreads: store to uncopied page at %d" a)
  | In_pmem a -> (
      match t.txn with
      | Some txn -> txn_store m t txn a v
      | None ->
          (* A hoisted Hundo_store armed the grant: capture the old
             value now, append-before-store exactly as the eager path
             does. *)
          if t.armed_grant = Grant_undo then begin
            t.armed_grant <- Grant_none;
            let old = Pwriter.load t.writer a in
            obs_emit m
              (Ido_obs.Obs.Log_append
                 { log = "undo"; bytes = 8 * Undo_log.record_words });
            Undo_log.log_write t.writer t.log_node ~addr:a ~old
              ~seq:(next_seq m)
          end;
          Pwriter.store t.writer a v;
          track_store m t a)
  | In_vmem a ->
      cost t (lat m).Latency.mem;
      Vmem.store m.vmem a v

(* ------------------------------------------------------------------ *)
(* Helpers for hooks that refer to a neighbouring instruction *)

let upcoming m t fr pred =
  let blk = fr.func.blocks.(fr.blk) in
  let n = Array.length blk.instrs in
  let rec go i =
    if i >= n then vm_error "hook: expected instruction not found after (%d,%d)" fr.blk fr.idx
    else match pred blk.instrs.(i) with Some x -> x | None -> go (i + 1)
  in
  ignore m;
  ignore t;
  go (fr.idx + 1)

let upcoming_store m t fr =
  upcoming m t fr (function
    | Ir.Store { space; base; off; src } -> Some (space, base, off, src)
    | _ -> None)

(* Like [upcoming_store] but total: a grant hook the optimizer hoisted
   out of a loop (O104) has its consuming store in another block. *)
let upcoming_store_opt (fr : frame) =
  let blk = fr.func.blocks.(fr.blk) in
  let n = Array.length blk.instrs in
  let rec go i =
    if i >= n then None
    else
      match blk.instrs.(i) with
      | Ir.Store { space; base; off; src } -> Some (space, base, off, src)
      | _ -> go (i + 1)
  in
  go (fr.idx + 1)

let upcoming_unlock m t fr =
  upcoming m t fr (function Ir.Unlock op -> Some op | _ -> None)

let pc_here m (t : thread) fr =
  ignore t;
  Image.pc_of_pos m.image ~fname:fr.fname { Ir.blk = fr.blk; idx = fr.idx }

(* Write back the tracked dirty lines in first-store order (the set is
   already deduplicated, so each member is one clwb): deterministic by
   construction — no hash-bucket order involved — and allocation-free
   on the per-boundary hot path. *)
let flush_tracked (t : thread) lines =
  Lineset.iter (fun line -> Pwriter.clwb t.writer (line * Pmem.words_per_line)) lines;
  Lineset.reset lines

(* ------------------------------------------------------------------ *)
(* Scheme hooks *)

(* Is the next hook in this block an outermost Hlock_release? *)
let upcoming_release_is_outermost m (t : thread) (fr : frame) =
  ignore m;
  ignore t;
  let blk = fr.func.blocks.(fr.blk) in
  let n = Array.length blk.instrs in
  let rec go i =
    if i >= n then false
    else
      match blk.instrs.(i) with
      | Ir.Hook (Ir.Hlock_release { outermost }) -> outermost
      | _ -> go (i + 1)
  in
  go (fr.idx + 1)

let record_region_stats m (t : thread) live_in_count =
  Cdf.add m.stores_per_region t.region_stores;
  if live_in_count >= 0 then Cdf.add m.livein_per_region live_in_count;
  t.region_stores <- 0

(* Union of two sorted deduped lists — equal to
   [List.sort_uniq compare (a @ b)] without re-sorting [b]. *)
let rec merge_uniq a b =
  match (a, b) with
  | [], ys -> ys
  | xs, [] -> xs
  | x :: xs, y :: ys ->
      if x < y then x :: merge_uniq xs b
      else if x > y then y :: merge_uniq a ys
      else x :: merge_uniq xs ys

let exec_region_boundary m (t : thread) fr (rh : Ir.region_hook) =
  let w = t.writer in
  let node = t.log_node in
  let meta = Image.region_meta m.image ~fname:fr.fname rh.region_id in
  record_region_stats m t meta.Image.n_live_in;
  let clean = Lineset.is_empty t.region_lines in
  if
    m.config.elide_clean_boundaries && rh.skippable && clean
    && not t.first_boundary
  then begin
    (* Lock-induced boundary closing a clean region: elide the persist.
       Resumption restarts from the previous persisted boundary and
       re-executes the clean segment (reads and lock operations are
       idempotent; re-acquired locks tolerate self-holds and stolen
       releases).  The boundary's OutputSet is owed to the next
       persisted boundary so intRF stays current. *)
    obs_emit m (Ido_obs.Obs.Boundary { region = rh.region_id; elided = true });
    t.pending_out_regs <- rh.out_regs @ t.pending_out_regs
  end
  else begin
    obs_emit m (Ido_obs.Obs.Boundary { region = rh.region_id; elided = false });
    (* Step 1 (Sec. III-A): persist OutputSet — the closed region's
       output registers (all live-ins at the first boundary of the
       FASE, which must seed intRF), the OutputSets owed by skipped
       boundaries (filtered to registers still live here), and the
       run-time-tracked memory lines. *)
    let regs_to_log =
      if t.first_boundary then meta.Image.first_regs
      else
        match t.pending_out_regs with
        | [] -> meta.Image.out_sorted
        | pending ->
            let owed = List.filter (Image.live_in_mem meta) pending in
            merge_uniq (List.sort_uniq compare owed) meta.Image.out_sorted
    in
    t.first_boundary <- false;
    t.pending_out_regs <- [];
    obs_emit m
      (Ido_obs.Obs.Log_append
         { log = "intrf"; bytes = 8 * List.length regs_to_log });
    Ido_log.write_out_regs w node
      ~coalesce:m.config.coalesce_registers
      (List.map (fun r -> (r, fr.regs.(r))) regs_to_log);
    flush_tracked t t.region_lines;
    Pwriter.fence w;
    (* Step 2: advance recovery_pc to this boundary.  When a release
       record immediately follows, its fence carries the pc update
       (and an outermost release supersedes it with pc := 0). *)
    t.epoch <- t.epoch + 1;
    if rh.at_release then begin
      if not (upcoming_release_is_outermost m t fr) then
        Ido_log.set_recovery_pc w node ~epoch:t.epoch (pc_here m t fr)
      (* fence deferred to the release record *)
    end
    else begin
      Ido_log.set_recovery_pc w node ~epoch:t.epoch (pc_here m t fr);
      Pwriter.fence w
    end
  end

(* One Undo_log record is [kind; a; b; seq]. *)
let undo_record_bytes = 8 * Undo_log.record_words

let exec_fase_enter m (t : thread) _fr =
  t.in_fase <- true;
  t.armed_grant <- Grant_none;
  (* Every dynamic FASE gets a globally unique id so per-FASE rollups
     never conflate two executions of the same static section. *)
  t.fase_id <- m.next_fase_id;
  m.next_fase_id <- m.next_fase_id + 1;
  if obs_active m then begin
    obs_context m ~tid:t.tid ~fase:t.fase_id;
    obs_emit m Ido_obs.Obs.Fase_enter
  end;
  t.region_stores <- 0;
  Lineset.reset t.region_lines;
  Lineset.reset t.fase_lines;
  Hashtbl.reset t.touched_pages;
  match m.config.scheme with
  | Scheme.Ido ->
      Ido_log.set_sim_stack m.pmem t.log_node ~base:t.stack_base ~sp:t.sp;
      t.first_boundary <- true
  | Scheme.Justdo ->
      Justdo_log.set_sim_stack m.pmem t.log_node ~base:t.stack_base ~sp:t.sp;
      t.pending_data_line <- -1
  | Scheme.Atlas | Scheme.Nvml ->
      (* Begin/end records need no fence of their own: they become
         durable with the next fenced record (or the commit flush). *)
      obs_emit m
        (Ido_obs.Obs.Log_append { log = "undo"; bytes = undo_record_bytes });
      Undo_log.append_unfenced t.writer t.log_node Undo_log.Fase_begin ~a:0L
        ~b:0L ~seq:(next_seq m)
  | Scheme.Nvthreads -> Page_log.begin_fase t.writer t.log_node ~seq:(next_seq m)
  | Scheme.Mnemosyne | Scheme.Origin -> ()

let exec_fase_exit m (t : thread) _fr =
  t.armed_grant <- Grant_none;
  (match m.config.scheme with
  | Scheme.Atlas ->
      obs_emit m
        (Ido_obs.Obs.Log_append { log = "undo"; bytes = undo_record_bytes })
  | _ -> ());
  (match m.config.scheme with
  | Scheme.Ido ->
      record_region_stats m t (-1);
      t.pending_out_regs <- [];
      (* Lock-based FASEs: the outermost release already cleared and
         fenced the recovery pc.  Durable regions reach here with the
         pc still armed. *)
      if Ido_log.recovery_pc m.pmem t.log_node <> 0 then begin
        Ido_log.set_recovery_pc t.writer t.log_node ~epoch:t.epoch 0;
        Pwriter.fence t.writer
      end
  | Scheme.Justdo ->
      if t.pending_data_line >= 0 then begin
        Pwriter.clwb t.writer (t.pending_data_line * Pmem.words_per_line);
        Pwriter.fence t.writer
      end;
      t.pending_data_line <- -1;
      Justdo_log.clear t.writer t.log_node
  | Scheme.Atlas ->
      Undo_log.append_unfenced t.writer t.log_node Undo_log.Fase_end ~a:0L
        ~b:0L ~seq:(next_seq m);
      (* Atlas's runtime bookkeeping (log-space management, consistent-
         state helper) is a shared structure: FASE completion touches it
         under a global token — the "runtime synchronization" that
         saturates at high thread counts (Sec. V-B). *)
      let hold = 200 in
      let start = Stdlib.max t.clock m.commit_token_free_at in
      m.commit_token_free_at <- start + hold;
      cost t (start - t.clock + hold)
  | Scheme.Nvml -> Undo_log.reset t.writer t.log_node
  | Scheme.Nvthreads | Scheme.Mnemosyne | Scheme.Origin -> ());
  t.in_fase <- false;
  if obs_active m then begin
    obs_emit m Ido_obs.Obs.Fase_exit;
    t.fase_id <- -1;
    obs_context m ~tid:t.tid ~fase:(-1)
  end
  else t.fase_id <- -1;
  if t.recovery_mode then t.status <- Done

let exec_lock_acquired m (t : thread) _fr =
  t.armed_grant <- Grant_none;
  let holder = t.last_lock in
  match m.config.scheme with
  | Scheme.Ido ->
      (* Stores + write-back only: a later fence persists the record
         (benign steal window, Sec. III-B).  Stamped with the current
         epoch so recovery knows whether the acquisition precedes the
         persisted boundary.  The ablation knob reverts to JUSTDO's
         intention-log + ownership-log protocol: two fences. *)
      (* Lock record: packed holder word + bitmap word. *)
      obs_emit m (Ido_obs.Obs.Log_append { log = "ido-lock"; bytes = 16 });
      Ido_log.record_acquire t.writer t.log_node ~holder ~epoch:t.epoch;
      if not m.config.single_fence_locks then begin
        Pwriter.fence t.writer;
        Pwriter.add_cost t.writer
          ((lat m).Latency.mem + (lat m).Latency.clwb_issue);
        Pwriter.fence t.writer
      end
  | Scheme.Justdo ->
      (* Intention word + slot word + bitmap word. *)
      obs_emit m (Ido_obs.Obs.Log_append { log = "justdo-lock"; bytes = 24 });
      Justdo_log.record_acquire t.writer t.log_node ~holder
  | Scheme.Atlas ->
      obs_emit m
        (Ido_obs.Obs.Log_append { log = "undo"; bytes = undo_record_bytes });
      Undo_log.append t.writer t.log_node Undo_log.Acquire
        ~a:(Int64.of_int holder) ~b:0L ~seq:(next_seq m)
  | _ -> ()

let exec_lock_release m (t : thread) fr ~outermost =
  t.armed_grant <- Grant_none;
  match m.config.scheme with
  | Scheme.Ido ->
      (* Clear the lock record; an outermost release also clears the
         recovery pc (the FASE's outputs were fenced by the preceding
         boundary, so after this fence the FASE is complete up to the
         unlock, which a crash performs implicitly by discarding the
         transient mutex).  One fence, durable before the unlock
         executes — closing the double-claim window. *)
      let op = upcoming_unlock m t fr in
      obs_emit m (Ido_obs.Obs.Log_append { log = "ido-lock"; bytes = 16 });
      Ido_log.record_release t.writer t.log_node ~holder:(eval_int fr op);
      if outermost then
        Ido_log.set_recovery_pc t.writer t.log_node ~epoch:t.epoch 0;
      Pwriter.fence t.writer;
      if not m.config.single_fence_locks then begin
        Pwriter.add_cost t.writer
          ((lat m).Latency.mem + (lat m).Latency.clwb_issue);
        Pwriter.fence t.writer
      end
  | Scheme.Justdo ->
      let op = upcoming_unlock m t fr in
      obs_emit m (Ido_obs.Obs.Log_append { log = "justdo-lock"; bytes = 24 });
      Justdo_log.record_release t.writer t.log_node ~holder:(eval_int fr op)
  | Scheme.Atlas ->
      let op = upcoming_unlock m t fr in
      obs_emit m
        (Ido_obs.Obs.Log_append { log = "undo"; bytes = undo_record_bytes });
      Undo_log.append t.writer t.log_node Undo_log.Release
        ~a:(eval fr op) ~b:0L ~seq:(next_seq m)
  | _ -> ()

let exec_justdo_store m (t : thread) fr =
  let space, base, off, src = upcoming_store m t fr in
  let a =
    match resolve m t fr space base off with
    | In_pmem a -> a
    | In_vmem _ -> vm_error "justdo store hook on volatile location"
  in
  (* The previous store must be durable before its log entry is
     overwritten: flush + fence (the second fence JUSTDO pays per
     store on volatile-cache machines). *)
  if t.pending_data_line >= 0 then begin
    Pwriter.clwb t.writer (t.pending_data_line * Pmem.words_per_line);
    Pwriter.fence t.writer;
    t.pending_data_line <- -1
  end;
  let store_pc =
    let blk = fr.func.blocks.(fr.blk) in
    let n = Array.length blk.instrs in
    let rec find i =
      if i >= n then vm_error "justdo: store vanished"
      else
        match blk.instrs.(i) with
        | Ir.Store _ -> i
        | _ -> find (i + 1)
    in
    Image.pc_of_pos m.image ~fname:fr.fname { Ir.blk = fr.blk; idx = find (fr.idx + 1) }
  in
  (* Simulator-side snapshot: memory-resident state in real JUSTDO.
     It must land before [log_store] arms the new pc so the whole
     resumption tuple (pc, registers, stack) changes in one eventless
     window — a crash on either side observes a consistent tuple. *)
  Justdo_log.snapshot_regs m.pmem t.log_node fr.regs;
  Justdo_log.set_sim_stack m.pmem t.log_node ~base:t.stack_base ~sp:t.sp;
  (* Resumption tuple: pc + addr + value. *)
  obs_emit m (Ido_obs.Obs.Log_append { log = "justdo"; bytes = 24 });
  Justdo_log.log_store t.writer t.log_node ~pc:store_pc ~addr:a
    ~value:(eval fr src)

let exec_undo_store m (t : thread) fr =
  match upcoming_store_opt fr with
  | Some (space, base, off, _src) -> (
      match resolve m t fr space base off with
      | In_pmem a ->
          let old = Pwriter.load t.writer a in
          obs_emit m
            (Ido_obs.Obs.Log_append { log = "undo"; bytes = undo_record_bytes });
          Undo_log.log_write t.writer t.log_node ~addr:a ~old ~seq:(next_seq m)
      | In_vmem _ -> ())
  | None ->
      (* No store left in this block: a hoisted grant (O104).  Arm the
         slot; the consuming store captures its own address, so the
         append still lands append-before-store. *)
      t.armed_grant <- Grant_undo

let exec_page_log m (t : thread) fr =
  match upcoming_store_opt fr with
  | Some (space, base, off, _src) -> (
      match resolve m t fr space base off with
      | In_pmem a ->
          let page = Page_log.page_of a in
          if not (Hashtbl.mem t.touched_pages page) then begin
            obs_emit m
              (Ido_obs.Obs.Log_append
                 { log = "page"; bytes = 8 * Page_log.entry_words });
            let i = Page_log.log_page t.writer t.log_node ~page in
            Hashtbl.replace t.touched_pages page i
          end
      | In_vmem _ -> ())
  | None -> t.armed_grant <- Grant_page

let exec_txn_begin m (t : thread) fr =
  let blk = fr.blk and idx = fr.idx in
  let retries = match t.txn with Some tx -> tx.retries | None -> 0 in
  (* Mnemosyne's FASE is the transaction: no Hfase_enter is
     instrumented, so the dynamic FASE id is assigned here (each retry
     counts as a fresh FASE — it re-pays the logging). *)
  t.fase_id <- m.next_fase_id;
  m.next_fase_id <- m.next_fase_id + 1;
  if obs_active m then begin
    obs_context m ~tid:t.tid ~fase:t.fase_id;
    obs_emit m Ido_obs.Obs.Fase_enter
  end;
  Redo_log.begin_txn t.writer t.log_node;
  t.txn <-
    Some
      {
        start_version = m.commit_version;
        reads = Hashtbl.create 16;
        writes = Hashtbl.create 16;
        write_order = Vec.create ();
        snap_regs = Array.copy fr.regs;
        snap_blk = blk;
        snap_idx = idx;
        retries;
      };
  t.in_fase <- true;
  cost t (3 * (lat m).Latency.alu)

let exec_txn_commit m (t : thread) _fr =
  match t.txn with
  | None -> vm_error "txn_commit without transaction"
  | Some txn ->
      (* Validate the read set against commits since txn start. *)
      let valid =
        Hashtbl.fold
          (fun a () acc ->
            acc
            &&
            match Hashtbl.find_opt m.write_versions a with
            | Some ver -> ver <= txn.start_version
            | None -> true)
          txn.reads true
      in
      cost t (Hashtbl.length txn.reads * (lat m).Latency.alu);
      if not valid then begin
        let txn = { txn with retries = txn.retries + 1 } in
        abort_txn m t txn
      end
      else begin
        (* Global commit serialization (the runtime synchronization the
           paper blames for Mnemosyne's scaling ceiling).  The token is
           held for the commit work only; waiting time must not feed
           back into the token or delays compound. *)
        let w = t.writer in
        let pre = Pwriter.take_cost w in
        let start = Stdlib.max (t.clock + pre) m.commit_token_free_at in
        Redo_log.persist_entries w t.log_node;
        Pwriter.fence w;
        Redo_log.persist_status w t.log_node Redo_log.Committed;
        Redo_log.apply w t.log_node;
        (* Flush the applied data before truncating the redo log — in
           first-store order, so the write-back schedule is a property
           of the program, not of Hashtbl iteration order. *)
        Pwriter.clwb_lines w (Vec.to_list txn.write_order);
        Pwriter.fence w;
        Redo_log.persist_status w t.log_node Redo_log.Idle;
        m.commit_version <- m.commit_version + 1;
        Hashtbl.iter
          (fun a _ -> Hashtbl.replace m.write_versions a m.commit_version)
          txn.writes;
        let work = Pwriter.take_cost w in
        m.commit_token_free_at <- start + work;
        (* Charge the thread: earlier step cost, token wait, work. *)
        Pwriter.add_cost w (start - t.clock + work);
        t.txn <- None;
        t.in_fase <- false;
        if obs_active m then begin
          obs_emit m Ido_obs.Obs.Fase_exit;
          obs_context m ~tid:t.tid ~fase:(-1)
        end;
        t.fase_id <- -1
      end

let exec_durable_commit m (t : thread) _fr =
  t.armed_grant <- Grant_none;
  match m.config.scheme with
  | Scheme.Atlas | Scheme.Nvml ->
      (* Flush the FASE's delayed data write-backs (Atlas defers them
         to FASE end; Sec. V's description). *)
      flush_tracked t t.fase_lines;
      Pwriter.fence t.writer
  | Scheme.Nvthreads ->
      Page_log.commit t.writer t.log_node;
      Hashtbl.reset t.touched_pages;
      (* Non-final release: re-arm the page set for the rest of the
         FASE. *)
      if t.in_fase then
        Page_log.begin_fase t.writer t.log_node ~seq:(next_seq m)
  | _ -> ()

let exec_hook m (t : thread) fr = function
  | Ir.Hregion rh -> exec_region_boundary m t fr rh
  | Ir.Hfase_enter -> exec_fase_enter m t fr
  | Ir.Hfase_exit -> exec_fase_exit m t fr
  | Ir.Hlock_acquired -> exec_lock_acquired m t fr
  | Ir.Hlock_release { outermost } -> exec_lock_release m t fr ~outermost
  | Ir.Hjustdo_store -> exec_justdo_store m t fr
  | Ir.Hundo_store -> exec_undo_store m t fr
  | Ir.Hredo_store -> cost t (lat m).Latency.alu
  | Ir.Htxn_begin -> exec_txn_begin m t fr
  | Ir.Htxn_commit -> exec_txn_commit m t fr
  | Ir.Hpage_log -> exec_page_log m t fr
  | Ir.Hdurable_commit -> exec_durable_commit m t fr

(* ------------------------------------------------------------------ *)
(* Instructions *)

let binop_eval op a b =
  let open Int64 in
  let bool_ c = if c then 1L else 0L in
  match (op : Ir.binop) with
  | Add -> add a b
  | Sub -> sub a b
  | Mul -> mul a b
  | Div -> if b = 0L then 0L else div a b
  | Rem -> if b = 0L then 0L else rem a b
  | And -> logand a b
  | Or -> logor a b
  | Xor -> logxor a b
  | Shl -> shift_left a (to_int b land 63)
  | Shr -> shift_right_logical a (to_int b land 63)
  | Eq -> bool_ (a = b)
  | Ne -> bool_ (a <> b)
  | Lt -> bool_ (compare a b < 0)
  | Le -> bool_ (compare a b <= 0)
  | Gt -> bool_ (compare a b > 0)
  | Ge -> bool_ (compare a b >= 0)

let justdo_penalty m (t : thread) =
  (* No register caching inside JUSTDO FASEs (Sec. I): every
     instruction's operands and result live in NVM-resident stack
     slots, costing extra memory traffic and one write-back's worth of
     NVM exposure per instruction — which is also why JUSTDO is the
     most sensitive scheme to NVM write latency (Fig. 9). *)
  if m.config.scheme = Scheme.Justdo && t.in_fase then
    cost t
      ((2 * (lat m).Latency.mem) + (lat m).Latency.clwb_issue
      + (lat m).Latency.nvm_extra)

let exec_lock m (t : thread) fr op =
  let id = eval_int fr op in
  t.last_lock <- id;
  let l = lock_of m id in
  cost t (lat m).Latency.lock_op;
  match l.holder with
  | Some h when h = t.tid ->
      emit_event m (Event.Lock_acquire id);
      obs_emit m (Ido_obs.Obs.Lock_acquire id);
      fr.idx <- fr.idx + 1 (* recovery re-acquire / post-hand-off re-run *)
  | None ->
      emit_event m (Event.Lock_acquire id);
      obs_emit m (Ido_obs.Obs.Lock_acquire id);
      l.holder <- Some t.tid;
      l.acquired_at <- t.clock;
      fr.idx <- fr.idx + 1
  | Some _ ->
      Queue.add t.tid l.waiters;
      t.status <- Blocked
(* The blocked thread stays at the Lock instruction; the releaser hands
   the lock over and re-runs it, which then takes the self-held fast
   path above. *)

let exec_unlock m (t : thread) fr op =
  let id = eval_int fr op in
  t.last_lock <- id;
  let l = lock_of m id in
  emit_event m (Event.Lock_release id);
  obs_emit m (Ido_obs.Obs.Lock_release id);
  cost t (lat m).Latency.lock_op;
  (match l.holder with
  | Some h when h = t.tid ->
      l.holder <- None;
      if not (Queue.is_empty l.waiters) then begin
        let w = Queue.pop l.waiters in
        let wt = find_thread m w in
        l.holder <- Some w;
        l.acquired_at <- Stdlib.max wt.clock t.clock;
        wt.clock <- Stdlib.max wt.clock t.clock;
        wt.status <- Runnable
      end
  | None -> () (* recovery: fresh transient mutex, benign *)
  | Some other ->
      (* A resumed region may re-execute an unlock whose original
         effect already let another thread (now also recovering) take
         the lock.  Recovery mutexes are owner-checked: a non-owner
         unlock is a no-op, preserving the new holder's exclusion. *)
      if not t.recovery_mode then
        vm_error "unlock of lock held by thread %d" other);
  fr.idx <- fr.idx + 1

let exec_intrinsic m (t : thread) fr dst intr args =
  let arg i = List.nth args i in
  (match (intr : Ir.intrinsic) with
  | Rand ->
      let bound = eval_int fr (arg 0) in
      let v = if bound <= 0 then 0 else Rng.int t.rng bound in
      Option.iter (fun d -> fr.regs.(d) <- Int64.of_int v) dst;
      cost t (lat m).Latency.alu
  | Thread_id ->
      Option.iter (fun d -> fr.regs.(d) <- Int64.of_int t.tid) dst;
      cost t (lat m).Latency.alu
  | Nv_alloc ->
      let n = eval_int fr (arg 0) in
      let a = Region.alloc m.region n in
      Option.iter (fun d -> fr.regs.(d) <- Int64.of_int a) dst;
      cost t (lat m).Latency.alloc
  | Nv_free ->
      Region.free m.region (eval_int fr (arg 0));
      cost t (lat m).Latency.alloc
  | Work -> cost t (eval_int fr (arg 0))
  | Observe ->
      let v = eval fr (arg 0) in
      t.observations <- v :: t.observations;
      t.ops <- t.ops + 1;
      m.total_ops <- m.total_ops + 1;
      cost t (lat m).Latency.alu
  | Root_get ->
      let slot = eval_int fr (arg 0) in
      Option.iter (fun d -> fr.regs.(d) <- Region.get_root m.region slot) dst;
      cost t (lat m).Latency.mem
  | Root_set ->
      let slot = eval_int fr (arg 0) in
      Region.set_root m.region slot (eval fr (arg 1));
      cost t
        ((lat m).Latency.mem + (lat m).Latency.clwb_issue
        + Latency.fence_cost (lat m) ~pending:1)
  | Assert_nz ->
      if eval fr (arg 0) = 0L then vm_error "assertion failed (thread %d)" t.tid;
      cost t (lat m).Latency.alu);
  fr.idx <- fr.idx + 1

let exec_call m (t : thread) fr dst fname args =
  let callee = Image.func m.image fname in
  let regs = Array.make callee.nregs 0L in
  List.iteri
    (fun i r -> regs.(r) <- (try eval fr (List.nth args i) with _ -> 0L))
    callee.params;
  cost t (lat m).Latency.call;
  fr.idx <- fr.idx + 1;
  t.frames <-
    { fname; func = callee; blk = 0; idx = 0; regs; ret_to = dst; saved_sp = t.sp }
    :: t.frames

let exec_ret m (t : thread) fr value =
  cost t (lat m).Latency.call;
  match t.frames with
  | [ _ ] -> t.status <- Done
  | _ :: (caller :: _ as rest) ->
      t.sp <- fr.saved_sp;
      (match (fr.ret_to, value) with
      | Some d, Some v -> caller.regs.(d) <- v
      | Some d, None -> caller.regs.(d) <- 0L
      | None, _ -> ());
      t.frames <- rest
  | [] -> vm_error "return with no frame"

let exec_instr m (t : thread) fr instr =
  match (instr : Ir.instr) with
  | Bin (d, op, a, b) ->
      fr.regs.(d) <- binop_eval op (eval fr a) (eval fr b);
      cost t (lat m).Latency.alu;
      justdo_penalty m t;
      fr.idx <- fr.idx + 1
  | Mov (d, a) ->
      fr.regs.(d) <- eval fr a;
      cost t (lat m).Latency.alu;
      justdo_penalty m t;
      fr.idx <- fr.idx + 1
  | Load { dst; space; base; off } ->
      let v = do_load m t (resolve m t fr space base off) in
      if t.rewound then t.rewound <- false
      else begin
        fr.regs.(dst) <- v;
        justdo_penalty m t;
        fr.idx <- fr.idx + 1
      end
  | Store { space; base; off; src } ->
      do_store m t (resolve m t fr space base off) (eval fr src);
      justdo_penalty m t;
      fr.idx <- fr.idx + 1
  | Alloca (d, n) ->
      fr.regs.(d) <- Int64.of_int (t.stack_base + t.sp);
      t.sp <- t.sp + n;
      if t.sp > m.config.stack_words then vm_error "stack overflow";
      cost t (lat m).Latency.alu;
      fr.idx <- fr.idx + 1
  | Lock op -> exec_lock m t fr op
  | Unlock op -> exec_unlock m t fr op
  | Durable_begin | Durable_end ->
      cost t (lat m).Latency.alu;
      fr.idx <- fr.idx + 1
  | Call { dst; func; args } -> exec_call m t fr dst func args
  | Intrinsic { dst; intr; args } -> exec_intrinsic m t fr dst intr args
  | Hook h ->
      exec_hook m t fr h;
      (* A failed commit rewinds the frame to the Htxn_begin slot;
         advancing would skip it. *)
      if t.rewound then t.rewound <- false else fr.idx <- fr.idx + 1

let exec_term m (t : thread) fr term =
  cost t (lat m).Latency.branch;
  match (term : Ir.terminator) with
  | Br b ->
      fr.blk <- b;
      fr.idx <- 0
  | Cbr (c, bt, bf) ->
      let b = if eval fr c <> 0L then bt else bf in
      fr.blk <- b;
      fr.idx <- 0
  | Ret v -> exec_ret m t fr (Option.map (eval fr) v)

(* ------------------------------------------------------------------ *)
(* Scheduler *)

let step m (t : thread) =
  (* Pmem-level obs events carry no thread identity of their own; tag
     them with the thread about to execute.  Skipped entirely when no
     sink is installed — the disabled path costs one comparison. *)
  if obs_active m then obs_context m ~tid:t.tid ~fase:t.fase_id;
  let fr = current_frame t in
  let blk = fr.func.blocks.(fr.blk) in
  (match m.tracer with
  | Some emit ->
      let what =
        if fr.idx < Array.length blk.instrs then
          Format.asprintf "%a" Ir.pp_instr blk.instrs.(fr.idx)
        else Format.asprintf "%a" Ir.pp_terminator blk.term
      in
      emit
        (Printf.sprintf "t%d @%-9d %s.%d.%d%s  %s" t.tid t.clock fr.fname
           fr.blk fr.idx
           (if t.in_fase then " [FASE]" else "")
           what)
  | None -> ());
  if fr.idx < Array.length blk.instrs then exec_instr m t fr blk.instrs.(fr.idx)
  else exec_term m t fr blk.term;
  t.steps <- t.steps + 1;
  t.clock <- t.clock + Pwriter.take_cost t.writer

let min_runnable m =
  Vec.fold_left
    (fun acc t ->
      if t.status <> Runnable then acc
      else
        match acc with
        | None -> Some t
        | Some best -> if t.clock < best.clock then Some t else acc)
    None m.threads

let second_min_clock m (chosen : thread) =
  Vec.fold_left
    (fun acc t ->
      if t.status = Runnable && t.tid <> chosen.tid && t.clock < acc then t.clock
      else acc)
    max_int m.threads

let run ?until ?(max_steps = max_int) m : run_outcome =
  let steps = ref 0 in
  let rec loop () =
    if !steps >= max_steps then `Max_steps
    else
      match min_runnable m with
      | None ->
          if Vec.exists (fun t -> t.status = Blocked) m.threads then `Deadlock
          else `Idle
      | Some t -> (
          match until with
          | Some u when t.clock >= u -> `Until
          | _ ->
              let horizon = second_min_clock m t in
              let limit = match until with Some u -> Stdlib.min horizon u | None -> horizon in
              (* Burst while this thread stays the earliest. *)
              let continue_ = ref true in
              while
                !continue_ && t.status = Runnable && t.clock <= limit
                && !steps < max_steps
              do
                step m t;
                incr steps;
                if t.status <> Runnable then continue_ := false
              done;
              loop ())
  in
  loop ()

(* Drop finished threads from the scheduler's table.  The per-burst
   scans ([min_runnable], [second_min_clock], [max_clock]) fold over
   every thread record ever spawned, so a driver that spawns one thread
   per request (the serving layer) would otherwise go quadratic in the
   request count.  The clock floor preserves [max_clock] — and with it
   the "spawns begin now" invariant — when the reaped threads were the
   ones carrying the latest time. *)
let reap m =
  m.clock_floor <- max_clock m;
  (* Recycle the reaped threads' stacks and log arenas, but only at a
     quiescent point (every thread Done): a completed FASE's undo
     records may still be needed by Atlas's happens-before cascade
     while any FASE is open, and quiescence is the one point where no
     future rollback can reach a reaped log (all its sequence numbers
     predate any FASE still to come).  This keeps both memory and the
     recovery-time log scan proportional to the live thread count —
     without it a spawn-per-request driver exhausts the region. *)
  let quiescent =
    Vec.fold_left (fun acc t -> acc && t.status = Done) true m.threads
  in
  if quiescent then
    Vec.iter
      (fun t ->
        m.free_stacks <- t.stack_base :: m.free_stacks;
        if t.log_node <> 0 then
          m.free_log_nodes <- t.log_node :: m.free_log_nodes)
      m.threads;
  Vec.filter_in_place (fun t -> t.status <> Done) m.threads

let crash m =
  m.crashed <- true;
  if obs_active m then begin
    obs_context m ~tid:(-1) ~fase:(-1);
    obs_emit m Ido_obs.Obs.Crash
  end;
  (* On an NV-cache machine the cache contents are themselves
     persistent: a power failure loses nothing that was stored. *)
  if m.config.latency.Latency.nv_caches then Pmem.flush_all m.pmem;
  Pmem.crash m.pmem;
  m.vmem <- Vmem.create ();
  m.locks <- Hashtbl.create 64;
  m.write_versions <- Hashtbl.create 64;
  m.commit_token_free_at <- 0;
  Vec.iter (fun t -> t.status <- Done) m.threads;
  Vec.clear m.threads;
  (* Volatile allocator bookkeeping does not survive power failure;
     recovery walks the persistent log chain, not these lists. *)
  m.free_stacks <- [];
  m.free_log_nodes <- []
