(* Machine and thread state for the simulated multiprocessor.  This
   module holds data only; execution lives in {!Interp} and recovery in
   {!Recover}.  It is internal to [ido_vm]; the public face is {!Vm}. *)

open Ido_util
open Ido_nvm
open Ido_region
open Ido_ir
open Ido_runtime

type config = {
  scheme : Scheme.t;
  latency : Latency.t;
  pmem_words : int;
  cache_lines : int;
  seed : int;
  stack_words : int;  (* per-thread stack area *)
  undo_cap : int;  (* UNDO records per thread (Atlas / NVML) *)
  redo_cap : int;  (* REDO entries per transaction (Mnemosyne) *)
  page_cap : int;  (* page images per FASE (NVThreads) *)
  collect_region_stats : bool;
  opt : bool;
      (* run the persistence-redundancy optimizer (Ido_opt) over the
         instrumented program at load time *)
  (* Ablation knobs (all on by default; see DESIGN.md ablations): *)
  elide_clean_boundaries : bool;
      (* skip lock-induced boundary persists while the region is clean *)
  coalesce_registers : bool;
      (* one write-back per intRF cache line instead of per register *)
  single_fence_locks : bool;
      (* iDO's indirect locking; off = JUSTDO-style two-fence lock ops *)
}

let default_config scheme =
  {
    scheme;
    latency = Latency.default;
    pmem_words = 1 lsl 23;
    cache_lines = 4096;
    seed = 42;
    stack_words = 256;
    undo_cap = 1 lsl 14;
    redo_cap = 1 lsl 12;
    page_cap = 64;
    collect_region_stats = false;
    opt = false;
    elide_clean_boundaries = true;
    coalesce_registers = true;
    single_fence_locks = true;
  }

type lock_state = {
  mutable holder : int option;  (* tid *)
  mutable acquired_at : Timebase.ns;
  waiters : int Queue.t;
}

let fresh_lock () = { holder = None; acquired_at = 0; waiters = Queue.create () }

type txn = {
  start_version : int;
  reads : (int, unit) Hashtbl.t;
  writes : (int, int64) Hashtbl.t;
  write_order : int Vec.t;
      (* distinct written addresses in first-store order: the commit
         write-back schedule, independent of Hashtbl iteration order *)
  snap_regs : int64 array;
  snap_blk : int;
  snap_idx : int;
  mutable retries : int;
}

type thread_status = Runnable | Blocked | Done

(* A log grant armed by a detached (hoisted) grant hook, consumed by
   the next qualifying persistent store of the thread.  Adjacent
   [hook; store] pairs keep the eager capture path; arming only covers
   the optimizer's loop-preheader hoists (O104). *)
type armed = Grant_none | Grant_undo | Grant_page

type frame = {
  fname : string;
  func : Ir.func;
  mutable blk : int;
  mutable idx : int;
  regs : int64 array;
  ret_to : int option;  (* destination register in the caller *)
  saved_sp : int;
}

type thread = {
  tid : int;
  writer : Pwriter.t;
  rng : Rng.t;
  mutable clock : Timebase.ns;
  mutable status : thread_status;
  mutable frames : frame list;  (* innermost first *)
  mutable sp : int;  (* next free word within the stack area *)
  stack_base : int;  (* absolute base address of the stack area *)
  stack_in_pmem : bool;
  mutable log_node : int;  (* 0 = none *)
  mutable in_fase : bool;
  mutable fase_id : int;  (* global id of the open FASE; -1 outside *)
  mutable region_stores : int;  (* dynamic stores in the open region *)
  region_lines : Lineset.t;  (* dirty lines since boundary *)
  fase_lines : Lineset.t;  (* dirty lines since FASE begin *)
  mutable last_lock : int;  (* operand of the last Lock executed *)
  mutable armed_grant : armed;
  mutable pending_data_line : int;  (* JUSTDO: line awaiting flush; -1 none *)
  touched_pages : (int, int) Hashtbl.t;  (* NVThreads: page -> entry index *)
  mutable txn : txn option;
  mutable rewound : bool;  (* an abort just rewound the frame *)
  mutable first_boundary : bool;  (* next Hregion seeds full live-in set *)
  mutable pending_out_regs : int list;
      (* out_regs of skipped boundaries, owed to the next persisted one *)
  mutable epoch : int;  (* persisted-boundary counter (iDO stamps) *)
  mutable ops : int;
  mutable observations : int64 list;  (* newest first *)
  mutable recovery_mode : bool;  (* run-to-FASE-end thread *)
  mutable steps : int;
}

type t = {
  config : config;
  image : Image.t;
  pmem : Pmem.t;
  region : Region.t;
  mutable vmem : Vmem.t;
  mutable locks : (int, lock_state) Hashtbl.t;
  rng : Rng.t;
  threads : thread Vec.t;  (* in spawn order *)
  mutable clock_floor : Timebase.ns;
      (* lower bound on [max_clock] after finished threads are reaped:
         keeps the machine clock monotonic (and new spawns starting "now")
         even when no live thread remembers the latest time *)
  mutable next_tid : int;
  mutable seq : int;  (* global sequence for happens-before records *)
  mutable commit_version : int;  (* Mnemosyne global commit clock *)
  mutable write_versions : (int, int) Hashtbl.t;
  mutable commit_token_free_at : Timebase.ns;  (* STM commit serialization *)
  stores_per_region : Cdf.t;
  livein_per_region : Cdf.t;
  mutable total_ops : int;
  mutable crashed : bool;
  mutable tracer : (string -> unit) option;
      (* when set, receives one line per executed instruction *)
  mutable event_hook : (Event.t -> unit) option;
      (* when set, receives every persist-relevant event (pmem traffic
         forwarded by Interp.create, lock ops emitted by the
         interpreter); may raise to stop the machine mid-flight *)
  mutable obs : Ido_obs.Obs.t option;
      (* observability sink; when None the machine does no obs work *)
  mutable obs_tid : int;  (* thread context for pmem-level obs events *)
  mutable obs_fase : int;  (* FASE context; -1 outside any FASE *)
  mutable next_fase_id : int;  (* global FASE id allocator *)
  mutable free_stacks : int list;
      (* recycled per-thread stack bases (each config.stack_words
         long, pmem or vmem per the scheme) — refilled by [reap] at
         quiescent points so a spawn-per-request driver keeps memory
         proportional to live threads, not to requests served *)
  mutable free_log_nodes : int list;
      (* recycled per-thread log arenas, left in each scheme's clean
         state; spawn rebinds one instead of growing the region and
         the log-head chain *)
}

(* Tag subsequent pmem-level obs events with a thread's identity (or
   the machine's, tid = fase = -1). *)
let obs_context m ~tid ~fase =
  m.obs_tid <- tid;
  m.obs_fase <- fase

(* A tag test, not a structural compare: this guard sits on the
   per-instruction hot path and must cost nothing when no sink is
   installed. *)
let obs_active m = match m.obs with Some _ -> true | None -> false

let obs_emit m kind =
  match m.obs with
  | None -> ()
  | Some o -> Ido_obs.Obs.emit o ~tid:m.obs_tid ~fase:m.obs_fase kind

let next_seq m =
  m.seq <- m.seq + 1;
  m.seq

let lock_of m id =
  match Hashtbl.find_opt m.locks id with
  | Some l -> l
  | None ->
      let l = fresh_lock () in
      Hashtbl.replace m.locks id l;
      l

let find_thread m tid =
  match Vec.find_opt (fun t -> t.tid = tid) m.threads with
  | Some t -> t
  | None -> raise Not_found

let current_frame t =
  match t.frames with
  | f :: _ -> f
  | [] -> failwith "thread has no frame"

let max_clock m =
  Vec.fold_left (fun acc t -> Stdlib.max acc t.clock) m.clock_floor m.threads

let runnable m =
  List.filter (fun t -> t.status = Runnable) (Vec.to_list m.threads)
