open Ido_ir

(* Per-region register sets precomputed at image build, so the hot
   boundary path (exec_region_boundary runs once per region entry)
   does no sorting or linear membership scans. *)
type region_meta = {
  n_live_in : int;
  live_in_sorted : int array;  (* ascending, deduped *)
  first_regs : int list;  (* sort_uniq (live_in @ out_regs) *)
  out_sorted : int list;  (* sort_uniq out_regs *)
}

type t = {
  program : Ir.program;
  table : (string * Ir.pos) array;  (* pc - 1 -> position *)
  index : (string, (Ir.pos, int) Hashtbl.t) Hashtbl.t;
  funcs : (string, Ir.func) Hashtbl.t;
  regions : (string, (int, region_meta) Hashtbl.t) Hashtbl.t;
      (* fname -> region_id -> meta (region ids are per-function) *)
  max_regs : int;
}

let meta_of_hook (rh : Ir.region_hook) =
  {
    n_live_in = List.length rh.live_in;
    live_in_sorted =
      Array.of_list (List.sort_uniq compare rh.live_in);
    first_regs = List.sort_uniq compare (rh.live_in @ rh.out_regs);
    out_sorted = List.sort_uniq compare rh.out_regs;
  }

let build (program : Ir.program) =
  let table = ref [] in
  let index = Hashtbl.create 16 in
  let funcs = Hashtbl.create 16 in
  let regions = Hashtbl.create 16 in
  let count = ref 0 in
  let max_regs = ref 0 in
  List.iter
    (fun (name, (f : Ir.func)) ->
      Hashtbl.replace funcs name f;
      if f.nregs > !max_regs then max_regs := f.nregs;
      let fidx = Hashtbl.create 64 in
      Hashtbl.replace index name fidx;
      let fregions = Hashtbl.create 8 in
      Hashtbl.replace regions name fregions;
      Array.iteri
        (fun b (blk : Ir.block) ->
          Array.iter
            (function
              | Ir.Hook (Ir.Hregion rh) ->
                  Hashtbl.replace fregions rh.region_id (meta_of_hook rh)
              | _ -> ())
            blk.instrs;
          for i = 0 to Array.length blk.instrs do
            let pos = { Ir.blk = b; idx = i } in
            incr count;
            Hashtbl.replace fidx pos !count;
            table := (name, pos) :: !table
          done)
        f.blocks)
    program.funcs;
  {
    program;
    table = Array.of_list (List.rev !table);
    index;
    funcs;
    regions;
    max_regs = !max_regs;
  }

let program t = t.program

let pc_of_pos t ~fname pos =
  match Hashtbl.find_opt t.index fname with
  | None -> invalid_arg ("Image.pc_of_pos: unknown function " ^ fname)
  | Some fidx -> (
      match Hashtbl.find_opt fidx pos with
      | None ->
          invalid_arg
            (Printf.sprintf "Image.pc_of_pos: bad position (%d,%d) in %s"
               pos.blk pos.idx fname)
      | Some pc -> pc)

let pos_of_pc t pc =
  if pc <= 0 || pc > Array.length t.table then
    invalid_arg (Printf.sprintf "Image.pos_of_pc: bad pc %d" pc)
  else t.table.(pc - 1)

let func t name =
  match Hashtbl.find_opt t.funcs name with
  | Some f -> f
  | None -> invalid_arg ("Image.func: unknown function " ^ name)

let region_meta t ~fname region_id =
  match Hashtbl.find_opt t.regions fname with
  | None -> invalid_arg ("Image.region_meta: unknown function " ^ fname)
  | Some fregions -> (
      match Hashtbl.find_opt fregions region_id with
      | Some meta -> meta
      | None ->
          invalid_arg
            (Printf.sprintf "Image.region_meta: unknown region %d in %s"
               region_id fname))

(* Membership in the sorted live-in set, for filtering owed OutputSets
   at a persisted boundary. *)
let live_in_mem meta r =
  let a = meta.live_in_sorted in
  let rec go lo hi =
    if lo >= hi then false
    else
      let mid = (lo + hi) / 2 in
      if a.(mid) = r then true
      else if a.(mid) < r then go (mid + 1) hi
      else go lo mid
  in
  go 0 (Array.length a)

let max_regs t = t.max_regs
