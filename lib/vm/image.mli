(** Dense program-counter encoding for an (instrumented) program.

    A recovery PC must survive in one persistent word (Fig. 3); this
    module numbers every instruction slot of every function densely,
    with 0 reserved for "no recovery pending".  Slot
    [index = Array.length instrs] denotes the block terminator. *)

open Ido_ir

type t

val build : Ir.program -> t

val program : t -> Ir.program

val pc_of_pos : t -> fname:string -> Ir.pos -> int
(** Dense id (≥ 1).
    @raise Invalid_argument for an unknown function or position. *)

val pos_of_pc : t -> int -> string * Ir.pos
(** Inverse of {!pc_of_pos}.
    @raise Invalid_argument for pc 0 or out of range. *)

val func : t -> string -> Ir.func
(** @raise Invalid_argument when absent. *)

(** {1 Region-boundary metadata}

    Register sets a boundary persist needs, precomputed once per static
    region at build time so the per-entry hot path does no sorting. *)

type region_meta = {
  n_live_in : int;  (** [List.length live_in] (Fig. 8 statistic) *)
  live_in_sorted : int array;  (** ascending, deduped *)
  first_regs : int list;
      (** [sort_uniq (live_in @ out_regs)] — the first-boundary log set *)
  out_sorted : int list;  (** [sort_uniq out_regs] *)
}

val region_meta : t -> fname:string -> int -> region_meta
(** Metadata of a region hook by its per-function [region_id].
    @raise Invalid_argument when absent. *)

val live_in_mem : region_meta -> int -> bool
(** Binary-search membership in the sorted live-in set. *)

val max_regs : t -> int
(** Largest [nregs] over all functions (sizes the intRF image). *)
