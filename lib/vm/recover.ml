(* Post-crash recovery, dispatched on the scheme (Sec. III-C for iDO).

   Recovery time is reported in simulated nanoseconds.  The
   resumption schemes pay a per-process constant — mapping the
   persistent region into a fresh address space plus creating one
   recovery thread per log — and then the (microsecond-scale) tails of
   the interrupted FASEs, which the VM actually executes.  Atlas pays
   the log traversal: every record is read and fed to the
   happens-before analysis.  These constants reproduce the shape of
   Table I: roughly one second for iDO at 64 threads regardless of run
   length, versus Atlas time growing linearly in the log volume. *)

open Ido_util
open Ido_ir
open Ido_runtime
open State

type stats = {
  scheme : Scheme.t;
  fases_resumed : int;  (** interrupted FASEs run to completion *)
  records_scanned : int;
  writes_undone : int;
  fases_rolled_back : int;
  pages_restored : int;
  txns_replayed : int;
  simulated_time : Timebase.ns;
}

let empty scheme =
  {
    scheme;
    fases_resumed = 0;
    records_scanned = 0;
    writes_undone = 0;
    fases_rolled_back = 0;
    pages_restored = 0;
    txns_replayed = 0;
    simulated_time = 0;
  }

(* Process restart constants (simulated).  Mapping the region and
   spawning recovery threads dominates iDO recovery (Sec. V-D). *)
let map_region_ns = Timebase.ms 300
let thread_create_ns = Timebase.ms 11
let atlas_base_ns = Timebase.ms 50
let atlas_per_record_ns = 75  (* happens-before graph + sort, per record *)

(* Resume one interrupted FASE as a fresh recovery thread positioned
   at the saved recovery point with the saved register file. *)
let resume_thread m ~node ~fname ~(pos : Ir.pos) ~regs ~stack ~held =
  let tid = m.next_tid in
  m.next_tid <- tid + 1;
  (* The resumed tail is a fresh dynamic FASE for attribution. *)
  let fase = m.next_fase_id in
  m.next_fase_id <- fase + 1;
  let func = Image.func m.image fname in
  let frame_regs = Array.make func.nregs 0L in
  Array.blit regs 0 frame_regs 0 (min (Array.length regs) func.nregs);
  let base, sp = stack in
  let t =
    {
      tid;
      writer = Pwriter.create m.pmem m.config.latency;
      rng = Rng.split m.rng;
      clock = 0;
      status = Runnable;
      frames =
        [ { fname; func; blk = pos.blk; idx = pos.idx; regs = frame_regs; ret_to = None; saved_sp = 0 } ];
      sp;
      stack_base = base;
      stack_in_pmem = true;
      log_node = node;
      in_fase = true;
      fase_id = fase;
      region_stores = 0;
      region_lines = Lineset.create ();
      fase_lines = Lineset.create ();
      last_lock = 0;
      armed_grant = Grant_none;
      pending_data_line = -1;
      touched_pages = Hashtbl.create 8;
      txn = None;
      rewound = false;
      first_boundary = false;
      pending_out_regs = [];
      epoch = 0;
      ops = 0;
      observations = [];
      recovery_mode = true;
      steps = 0;
    }
  in
  (* Reacquire the locks recorded in the lock_array: fresh transient
     mutexes are allocated for every indirect holder (Sec. III-B). *)
  List.iter
    (fun holder ->
      let l = lock_of m holder in
      match l.holder with
      | None -> l.holder <- Some tid
      | Some other ->
          failwith
            (Printf.sprintf
               "recovery: lock %d claimed by two recovery threads (%d, %d)"
               holder other tid))
    held;
  Vec.push m.threads t;
  t

(* Under iDO, a lock stamped with the pc's own epoch was acquired after
   the last persisted boundary; the segment it protected performed no
   stores, and resumption will re-acquire it in program order —
   re-acquiring it here would invert lock-ordering disciplines such as
   hand-over-hand and risk recovery deadlock. *)
let locks_to_reacquire ~pc_epoch held =
  List.filter_map
    (fun (holder, e) -> if e = pc_epoch then None else Some holder)
    held

let recovery_step m ~scheme fmt =
  Printf.ksprintf
    (fun what ->
      obs_emit m (Ido_obs.Obs.Recovery_step { scheme; what }))
    fmt

let run_recovery_threads m =
  match Interp.run m with
  | `Idle -> ()
  | `Deadlock -> failwith "recovery deadlocked"
  | `Until | `Max_steps -> failwith "recovery did not finish"

let recover_ido m =
  let pm = m.pmem in
  let resumed = ref 0 in
  Lognode.iter pm m.region (fun node ->
      if Lognode.kind pm node = Lognode.kind_ido then begin
        let pc = Ido_log.recovery_pc pm node in
        if pc <> 0 then begin
          let fname, pos = Image.pos_of_pc m.image pc in
          let regs = Ido_log.read_all_regs pm node in
          let stack = Ido_log.sim_stack pm node in
          let pc_epoch = Ido_log.recovery_epoch pm node in
          let held =
            locks_to_reacquire ~pc_epoch (Ido_log.held_locks pm node)
          in
          let t = resume_thread m ~node ~fname ~pos ~regs ~stack ~held in
          t.epoch <- pc_epoch;
          recovery_step m ~scheme:"ido" "resume tid=%d pc=%d epoch=%d"
            (Lognode.tid pm node) pc pc_epoch;
          incr resumed
        end
      end);
  (* Barrier: all recovery threads exist before any runs (trivially
     true here), then each executes to the end of its FASE. *)
  run_recovery_threads m;
  let tail = max_clock m in
  {
    (empty Scheme.Ido) with
    fases_resumed = !resumed;
    simulated_time =
      map_region_ns + (!resumed * thread_create_ns) + tail;
  }

let recover_justdo m =
  let pm = m.pmem in
  let resumed = ref 0 in
  Lognode.iter pm m.region (fun node ->
      if Lognode.kind pm node = Lognode.kind_justdo then
        if Justdo_log.armed pm node then begin
          let pc, _addr, _v = Justdo_log.entry pm node in
          let fname, pos = Image.pos_of_pc m.image pc in
          let regs = Justdo_log.read_all_regs pm node in
          let stack = Justdo_log.sim_stack pm node in
          let held = Justdo_log.held_locks pm node in
          (* Resuming at the logged store's own position re-executes
             it with the snapshot registers, reproducing the logged
             value. *)
          ignore (resume_thread m ~node ~fname ~pos ~regs ~stack ~held);
          recovery_step m ~scheme:"justdo" "resume tid=%d pc=%d"
            (Lognode.tid pm node) pc;
          incr resumed
        end);
  run_recovery_threads m;
  let tail = max_clock m in
  {
    (empty Scheme.Justdo) with
    fases_resumed = !resumed;
    simulated_time = map_region_ns + (!resumed * thread_create_ns) + tail;
  }

let recover_atlas m =
  let w = Pwriter.create m.pmem m.config.latency in
  let st = Atlas_recovery.recover w m.region in
  recovery_step m ~scheme:"atlas" "undo scanned=%d undone=%d rolled_back=%d"
    st.Atlas_recovery.records_scanned st.Atlas_recovery.writes_undone
    st.Atlas_recovery.fases_rolled_back;
  {
    (empty Scheme.Atlas) with
    records_scanned = st.Atlas_recovery.records_scanned;
    writes_undone = st.Atlas_recovery.writes_undone;
    fases_rolled_back = st.Atlas_recovery.fases_rolled_back;
    simulated_time =
      atlas_base_ns
      + (st.Atlas_recovery.records_scanned * atlas_per_record_ns)
      + st.Atlas_recovery.cost;
  }

let recover_nvml m =
  let pm = m.pmem in
  let w = Pwriter.create pm m.config.latency in
  let undone = ref 0 and scanned = ref 0 and rolled = ref 0 in
  Lognode.iter pm m.region (fun node ->
      if Lognode.kind pm node = Lognode.kind_nvml then begin
        let records = Undo_log.records pm node in
        scanned := !scanned + List.length records;
        if Undo_log.in_fase pm node then begin
          incr rolled;
          (* Undo the open durable region's writes, newest first. *)
          let writes =
            List.filter_map
              (fun (r : Undo_log.record) ->
                match r.tag with
                | Undo_log.Write -> Some (Int64.to_int r.a, r.b, r.seq)
                | _ -> None)
              records
          in
          let writes =
            List.sort (fun (_, _, s1) (_, _, s2) -> compare s2 s1) writes
          in
          List.iter
            (fun (a, old, _) ->
              Pwriter.store w a old;
              Pwriter.clwb w a;
              incr undone)
            writes;
          Pwriter.fence w;
          recovery_step m ~scheme:"nvml" "undo tid=%d writes=%d"
            (Lognode.tid pm node) (List.length writes)
        end;
        Undo_log.reset w node
      end);
  {
    (empty Scheme.Nvml) with
    records_scanned = !scanned;
    writes_undone = !undone;
    fases_rolled_back = !rolled;
    simulated_time = atlas_base_ns + Pwriter.take_cost w;
  }

let recover_mnemosyne m =
  let pm = m.pmem in
  let w = Pwriter.create pm m.config.latency in
  let replayed = ref 0 in
  Lognode.iter pm m.region (fun node ->
      if Lognode.kind pm node = Lognode.kind_redo then begin
        (match Redo_log.status pm node with
        | Redo_log.Committed ->
            (* Commit mark durable: replay (idempotent). *)
            Redo_log.apply w node;
            for i = 0 to Redo_log.count pm node - 1 do
              let a, _ = Redo_log.entry pm node i in
              Pwriter.clwb w a
            done;
            Pwriter.fence w;
            recovery_step m ~scheme:"mnemosyne" "replay tid=%d entries=%d"
              (Lognode.tid pm node) (Redo_log.count pm node);
            incr replayed
        | Redo_log.Filling | Redo_log.Idle -> ());
        Redo_log.persist_status w node Redo_log.Idle
      end);
  {
    (empty Scheme.Mnemosyne) with
    txns_replayed = !replayed;
    simulated_time = atlas_base_ns + Pwriter.take_cost w;
  }

let recover_nvthreads m =
  let pm = m.pmem in
  let w = Pwriter.create pm m.config.latency in
  let pages = ref 0 and rolled = ref 0 in
  Lognode.iter pm m.region (fun node ->
      if Lognode.kind pm node = Lognode.kind_page then
        if Page_log.status_committed pm node then begin
          (* Commit mark durable but application may be partial: replay
             the copies (idempotent). *)
          let n = Page_log.apply w node in
          recovery_step m ~scheme:"nvthreads" "apply tid=%d pages=%d"
            (Lognode.tid pm node) n;
          pages := !pages + n
        end
        else if Page_log.active pm node then begin
          (* Uncommitted: the master pages were never touched. *)
          incr rolled;
          recovery_step m ~scheme:"nvthreads" "discard tid=%d"
            (Lognode.tid pm node);
          Page_log.discard w node
        end);
  {
    (empty Scheme.Nvthreads) with
    pages_restored = !pages;
    fases_rolled_back = !rolled;
    simulated_time = atlas_base_ns + Pwriter.take_cost w;
  }

let recover m =
  (* Machine-level recovery traffic (log scans, undo write-backs) is
     attributed to no thread/FASE; resumed threads re-tag the context
     themselves as they run. *)
  if obs_active m then obs_context m ~tid:(-1) ~fase:(-1);
  let st =
    match m.config.scheme with
    | Scheme.Origin -> empty Scheme.Origin
    | Scheme.Ido -> recover_ido m
    | Scheme.Justdo -> recover_justdo m
    | Scheme.Atlas -> recover_atlas m
    | Scheme.Nvml -> recover_nvml m
    | Scheme.Mnemosyne -> recover_mnemosyne m
    | Scheme.Nvthreads -> recover_nvthreads m
  in
  m.crashed <- false;
  Ido_region.Region.mark_clean m.region;
  st
