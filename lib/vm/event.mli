(** Persist-relevant events, as observed by {!Vm.set_event_hook}.

    The schedule of these events is the crash-point space explored by
    {!Ido_check}: under a fixed config and seed the simulator is fully
    deterministic, so "the k-th event of the run" names one precise
    power-failure instant, reproducible across processes.

    Memory events ([Store]/[Clwb]/[Fence]/[Evict]) are forwarded from
    {!Ido_nvm.Pmem} and fire {e before} the action takes effect; lock
    events fire when a simulated thread acquires or releases a mutex
    (persist-ordering windows for the indirect-locking protocols). *)

type t =
  | Store of int  (** store of the given word address *)
  | Clwb of int  (** explicit write-back of the line covering address *)
  | Fence  (** persist fence *)
  | Evict of int  (** random eviction of the line at base address *)
  | Lock_acquire of int  (** mutex id *)
  | Lock_release of int  (** mutex id *)

val of_pmem : Ido_nvm.Pmem.event -> t
val describe : t -> string
val pp : Format.formatter -> t -> unit
