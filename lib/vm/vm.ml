open Ido_runtime

type t = State.t

type config = State.config = {
  scheme : Scheme.t;
  latency : Ido_nvm.Latency.t;
  pmem_words : int;
  cache_lines : int;
  seed : int;
  stack_words : int;
  undo_cap : int;
  redo_cap : int;
  page_cap : int;
  collect_region_stats : bool;
  opt : bool;
  elide_clean_boundaries : bool;
  coalesce_registers : bool;
  single_fence_locks : bool;
}

let config = State.default_config

type run_outcome = [ `Idle | `Until | `Max_steps | `Deadlock ]

exception Vm_error = Interp.Vm_error

let create = Interp.create
let reset = Interp.reset

type thread = State.thread

let spawn = Interp.spawn
let run = Interp.run
let reap = Interp.reap
let crash = Interp.crash
let recover = Recover.recover

let flush_all (m : t) = Ido_nvm.Pmem.flush_all m.State.pmem

let clock = State.max_clock
let total_ops (m : t) = m.State.total_ops
let observations (t : thread) = List.rev t.State.observations
let thread_clock (t : thread) = t.State.clock
let thread_ops (t : thread) = t.State.ops
let pmem (m : t) = m.State.pmem
let region (m : t) = m.State.region
let image (m : t) = m.State.image

let region_stats (m : t) = (m.State.stores_per_region, m.State.livein_per_region)

let set_tracer (m : t) f = m.State.tracer <- f
let set_event_hook (m : t) f = m.State.event_hook <- f

let set_obs (m : t) o =
  m.State.obs <- o;
  (* Reset the attribution context: machine-level until a thread steps. *)
  State.obs_context m ~tid:(-1) ~fase:(-1)

let obs (m : t) = m.State.obs

let undo_records_total (m : t) =
  let pm = m.State.pmem in
  let total = ref 0 in
  Lognode.iter pm m.State.region (fun node ->
      let k = Lognode.kind pm node in
      if k = Lognode.kind_atlas || k = Lognode.kind_nvml then
        total := !total + Undo_log.total pm node);
  !total
