(** The simulated multiprocessor: instruction execution, scheme hooks,
    the causally-ordered scheduler, and crash injection.  Use through
    the {!Vm} facade; {!Recover} reuses the scheduler to run resumed
    FASEs to completion. *)

open Ido_util
open Ido_ir

exception Vm_error of string
(** Runtime fault in the simulated program (bad address, foreign
    unlock, failed assertion, ...). *)

type run_outcome = [ `Idle | `Until | `Max_steps | `Deadlock ]

val create : State.config -> Ir.program -> State.t
(** Validate the (hook-free) program, instrument it for the configured
    scheme, and boot a machine with a freshly formatted persistent
    region. *)

val reset : State.t -> unit
(** Return the machine to the state {!create} left it in — same config,
    same program, RNG re-seeded, persistent region re-formatted,
    observers removed — while reusing every large allocation (the
    instrumented image, the pmem word array, recycled tables).  Runs on
    a reset machine are byte-identical to runs on a fresh one; existing
    thread handles become invalid.  This is the arena-reuse path of the
    crash explorer. *)

val spawn : State.t -> fname:string -> args:int64 list -> State.thread
(** Start a thread at [fname]; it begins at the machine's current
    simulated time. *)

val run : ?until:Timebase.ns -> ?max_steps:int -> State.t -> run_outcome
(** Advance the simulation: always steps the earliest runnable thread,
    so cross-thread interactions happen in one causal order. *)

val reap : State.t -> unit
(** Drop [Done] threads from the scheduler table after raising the
    clock floor, so scheduling stays O(live threads) on machines that
    spawn one thread per unit of work (the serving layer). *)

val crash : State.t -> unit
(** Power failure: discard every volatile structure (cache overlay,
    DRAM, transient mutexes, threads).  On an NV-cache machine the
    cache contents are persistent and survive. *)
