(** Public face of the simulated machine.

    Typical lifecycle:

    {[
      let m = Vm.create (Vm.config Scheme.Ido) program in
      let _init = Vm.spawn m ~fname:"init" ~args:[] in
      ignore (Vm.run m);
      Vm.flush_all m;                       (* setup phase made durable *)
      let _ = Vm.spawn m ~fname:"worker" ~args:[ 0L ] in
      (match Vm.run ~until:(Timebase.ms 10) m with
      | `Until -> Vm.crash m
      | _ -> ());
      let _stats = Vm.recover m in
      ...
    ]} *)

open Ido_util
open Ido_ir
open Ido_runtime

type t = State.t

type config = State.config = {
  scheme : Scheme.t;
  latency : Ido_nvm.Latency.t;
  pmem_words : int;
  cache_lines : int;
  seed : int;
  stack_words : int;
  undo_cap : int;
  redo_cap : int;
  page_cap : int;
  collect_region_stats : bool;
  opt : bool;
      (** run the persistence-redundancy optimizer ([Ido_opt]) over the
          instrumented program at load time; every applied rewrite is
          verified (re-lint + crash matrix) by [ido_check optimize] *)
  elide_clean_boundaries : bool;
      (** ablation: skip lock-induced boundary persists for clean
          regions (on in real iDO) *)
  coalesce_registers : bool;
      (** ablation: persist coalescing of register logs (Sec. IV-B) *)
  single_fence_locks : bool;
      (** ablation: indirect locking (Sec. III-B); off reverts to
          JUSTDO-style two-fence lock operations *)
}

val config : Scheme.t -> config
(** Defaults sized for the benchmarks in this repository. *)

type run_outcome = [ `Idle | `Until | `Max_steps | `Deadlock ]

exception Vm_error of string

val create : config -> Ir.program -> t
(** Validate, instrument for the configured scheme, and boot a fresh
    machine with a formatted persistent region. *)

val reset : t -> unit
(** Return the machine to its just-{!create}d state in place, reusing
    the instrumented image and every large allocation.  Subsequent runs
    are byte-identical to runs on a fresh machine built from the same
    config and program; previously obtained thread handles become
    invalid and any tracer/event hook/obs sink is removed.  Hot paths
    that boot thousands of identical machines (the crash explorer's
    per-chunk arenas) call this instead of {!create}. *)

type thread = State.thread

val spawn : t -> fname:string -> args:int64 list -> thread

val run : ?until:Timebase.ns -> ?max_steps:int -> t -> run_outcome
(** Advance simulated execution.  [`Idle]: every thread finished.
    [`Until]: the earliest runnable thread reached the time bound
    (crash injection point).  [`Deadlock]: runnable set empty while
    threads remain blocked. *)

val reap : t -> unit
(** Drop finished threads from the scheduler's table, first raising the
    machine's clock floor so {!clock} (and where fresh spawns start)
    is unchanged.  Long-lived machines that spawn one thread per unit
    of work — the request-serving layer — call this between dispatches
    to keep scheduling O(live threads) instead of O(threads ever
    spawned).  Reaped thread records stay valid for {!observations} /
    {!thread_clock}; they are only removed from scheduling. *)

val crash : t -> unit
(** Power failure now: volatile state (cache overlay, DRAM, transient
    locks, threads) is discarded; only persisted lines survive. *)

val recover : t -> Recover.stats
(** Scheme-appropriate recovery; afterwards the machine accepts fresh
    [spawn]s against the recovered heap. *)

val flush_all : t -> unit
(** Test/setup helper: make all of persistent memory durable. *)

(** {1 Introspection} *)

val clock : t -> Timebase.ns
(** Largest thread clock — the wall-clock length of the run so far. *)

val total_ops : t -> int
(** Observations recorded via the [Observe] intrinsic. *)

val observations : thread -> int64 list
(** Oldest first. *)

val thread_clock : thread -> Timebase.ns
val thread_ops : thread -> int

val pmem : t -> Ido_nvm.Pmem.t
val region : t -> Ido_region.Region.t
val image : t -> Image.t

val set_tracer : t -> (string -> unit) option -> unit
(** Install (or remove) an execution tracer: one formatted line per
    executed instruction — thread, simulated time, position, FASE
    membership, instruction text.  Survives across crash/recovery, so
    resumption can be watched. *)

val set_event_hook : t -> (Event.t -> unit) option -> unit
(** Install (or remove) the persist-event observer (see {!Event}).
    The hook fires {e before} each event takes effect; raising from it
    aborts {!run} with the persistent image exactly as a power failure
    at that instant would leave it — the crash-injection mechanism used
    by [Ido_check].  Events fire regardless of scheme; the stream is
    deterministic under a fixed config and seed. *)

val set_obs : t -> Ido_obs.Obs.t option -> unit
(** Install (or remove) the observability sink (see {!Ido_obs.Obs}).
    While installed, the machine feeds it every persist-level event
    (tagged with thread and FASE ids) plus VM-level events: log
    appends, region boundaries, lock operations, FASE enter/exit,
    crash and recovery steps.  With no sink installed the machine
    performs no observability work at all.  Unlike the crash-injection
    {!set_event_hook}, the sink must never raise.  Installation does
    not perturb execution: clocks, scheduling, and the persist-event
    schedule are identical with and without a sink. *)

val obs : t -> Ido_obs.Obs.t option

val region_stats : t -> Cdf.t * Cdf.t
(** (stores per dynamic idempotent region, live-in registers per
    region) — the Fig. 8 distributions; populated under the iDO
    scheme. *)

val undo_records_total : t -> int
(** Total UNDO records ever appended across threads (drives the
    Table I recovery-time model). *)
