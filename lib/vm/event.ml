type t =
  | Store of int
  | Clwb of int
  | Fence
  | Evict of int
  | Lock_acquire of int
  | Lock_release of int

let of_pmem = function
  | Ido_nvm.Pmem.Ev_store a -> Store a
  | Ido_nvm.Pmem.Ev_clwb a -> Clwb a
  | Ido_nvm.Pmem.Ev_fence -> Fence
  | Ido_nvm.Pmem.Ev_evict a -> Evict a

let describe = function
  | Store a -> Printf.sprintf "store @%d" a
  | Clwb a -> Printf.sprintf "clwb @%d" a
  | Fence -> "fence"
  | Evict a -> Printf.sprintf "evict line@%d" a
  | Lock_acquire id -> Printf.sprintf "lock %d" id
  | Lock_release id -> Printf.sprintf "unlock %d" id

let pp ppf e = Format.pp_print_string ppf (describe e)
