(** Driver for the static crash-consistency linter over the shipped
    workloads and the seeded-bug mutation corpus.

    The sweep is the static twin of {!Engine.explore}: where the
    crash-matrix engine witnesses persist-order violations on explored
    schedules, the sweep proves hook placement and write-ahead order on
    all paths of every supported workload/scheme pair.  Both are wired
    into CI; the mutation corpus keeps the linter honest by asserting
    it still catches each seeded bug by its stable code. *)

open Ido_runtime
open Ido_analysis

type pair = {
  scheme : Scheme.t;
  workload : string;
  diags : Diag.t list;
}

val lint_pair : Scheme.t -> string -> Diag.t list
(** Instrument [Workload.named workload] for [scheme] and lint it with
    thread entry ["worker"]. *)

val sweep :
  ?pool:Ido_util.Pool.t ->
  ?chunk:int ->
  ?schemes:Scheme.t list ->
  ?workloads:string list ->
  unit ->
  pair list
(** Lint every supported scheme/workload pair ({!Engine.supported}),
    in deterministic (workload-major) order.  Defaults to all schemes
    and all {!Ido_workloads.Workload.names}.  [chunk] batches pairs
    per pool task ({!Ido_util.Pool.opt_map_list}); results are
    byte-identical at every [-j] and chunk size. *)

type outcome = {
  mutant : Ido_lint.Mutate.t;
  mdiags : Diag.t list;
  caught : bool;  (** the expected code is among [mdiags] *)
}

val run_mutant : Ido_lint.Mutate.t -> outcome
(** Apply the mutant at its stage (transform before or after
    instrumentation; hook-model variants lint the intact program
    against the buggy protocol) and lint. *)

val run_corpus : ?pool:Ido_util.Pool.t -> ?chunk:int -> unit -> outcome list
(** Every {!Ido_lint.Mutate.corpus} entry, in corpus order. *)
