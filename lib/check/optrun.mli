(** Obligated optimization sweep.

    Runs the persistence-redundancy optimizer ([Ido_opt]) over every
    supported scheme x workload pair and {e enforces} each rewrite's
    obligations before reporting its savings:

    + the optimized program re-lints clean;
    + it passes the full {!Engine.explore} crash matrix with identical
      oracles;
    + the crash-free durable image digest is unchanged;
    + the obs rollups reconcile: crash/recovery fields exactly, lock
      discipline (acquires = releases) in both runs, persist fields
      decreasing only within the applied rewrites' declared
      {!Ido_opt.Rewrite.delta_class} (evictions exempt).  Lock
      {e totals} are deliberately not compared — hand-over-hand
      traversals make them schedule-dependent, and a rewrite shifts
      the interleaving.

    Any divergence raises {!Ido_opt.Opt.Opt_violation} naming the
    applied rewrites — a rewrite that "saves" events by breaking
    recovery is a hard error, never a statistic.  The sweep is
    deterministic: byte-identical output at every [-j] and every
    [--chunk]. *)

open Ido_runtime
open Ido_obs

type cell = {
  o_scheme : Scheme.t;
  o_workload : string;
  o_rewrites : Ido_opt.Rewrite.t list;
  o_base : Obs.rollup;  (** crash-free base rollup over the worker phase *)
  o_opt : Obs.rollup;  (** same window, optimized program *)
  o_tested : int;  (** crash points injected on the optimized program *)
  o_total_events : int;  (** optimized persist-event schedule length *)
  o_exhaustive : bool;
}

val persists : Obs.rollup -> int
(** [flushes + fences] — the clwb+fence persist-event count. *)

val eliminated : cell -> int
val pct : cell -> float

val run_cell :
  ?budget:int -> scheme:Scheme.t -> workload:string -> unit -> cell
(** Optimize one pair and enforce all obligations ([budget] caps the
    crash-matrix injections, default 300).  When no rewrite fires the
    dynamic obligations are skipped — the programs are identical.
    @raise Ido_opt.Opt.Opt_violation on any divergence. *)

val sweep :
  ?pool:Ido_util.Pool.t ->
  ?chunk:int ->
  ?schemes:Scheme.t list ->
  ?workloads:string list ->
  ?budget:int ->
  unit ->
  cell list

val render_cell : cell -> string
val render : cell list -> string
