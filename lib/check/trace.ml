(* NDJSON persistence for traced runs.

   A trace file is self-describing: its header line carries the full
   engine spec plus the crash index, so a recorded run can be replayed
   from the file alone — no command line, no ambient state.  The body
   is one JSON object per obs event; the footer pins the event count,
   the durable-image digest, the oracle verdict and the obs/counters
   reconciliation.  Replaying a trace and saving the result must
   reproduce the original file byte for byte (the CI smoke check
   [cmp]s them). *)

open Ido_workloads

type summary = {
  spec : Engine.spec;
  index : int option;
  events : int;
  digest : string;
  verdict : (unit, string) result option;
  consistency : (unit, string) result;
}

let mode_name = function Oracle.Atomic -> "atomic" | Oracle.Prefix -> "prefix"

let verdict_string = function
  | None -> "none"
  | Some (Ok ()) -> "ok"
  | Some (Error m) -> "VIOLATION: " ^ m

let result_string = function Ok () -> "ok" | Error m -> m

let header_line (spec : Engine.spec) index =
  (* The shared field prefix comes from the harness spec, so the
     header round-trips through {!Ido_harness.Spec.of_json}. *)
  Printf.sprintf {|{"type":"header","format":1,%s,"cache_lines":%d,"oracle":"%s","index":%d}|}
    (Ido_harness.Spec.json_fields (Engine.base_spec spec))
    spec.Engine.cache_lines
    (mode_name spec.Engine.oracle_mode)
    (Option.value index ~default:(-1))

let footer_line ~events ~digest ~verdict ~consistency =
  Printf.sprintf
    {|{"type":"footer","events":%d,"digest":"%s","verdict":"%s","consistency":"%s"}|}
    events
    (Ido_obs.Obs.json_escape digest)
    (Ido_obs.Obs.json_escape (verdict_string verdict))
    (Ido_obs.Obs.json_escape (result_string consistency))

let save (tr : Engine.traced) path =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      output_string oc (header_line tr.Engine.t_spec tr.Engine.t_index);
      output_char oc '\n';
      List.iter
        (fun ev ->
          output_string oc (Ido_obs.Obs.event_to_ndjson ev);
          output_char oc '\n')
        (Ido_obs.Obs.events tr.Engine.t_obs);
      output_string oc
        (footer_line
           ~events:(Ido_obs.Obs.count tr.Engine.t_obs)
           ~digest:tr.Engine.t_digest
           ~verdict:(Option.map (fun i -> i.Engine.verdict) tr.Engine.t_injection)
           ~consistency:tr.Engine.t_consistency);
      output_char oc '\n')

(* ---------- Parsing ----------

   Field extraction is {!Ido_harness.Spec.Fields}: a minimal by-key
   scanner sufficient for files this module wrote itself, shared with
   the serve report reader.  Not a general JSON parser. *)

let parse_error path what =
  failwith (Printf.sprintf "Trace.load: %s: %s" path what)

let fail_of path what = Failure (Printf.sprintf "Trace.load: %s: %s" path what)

module Fields = Ido_harness.Spec.Fields

let find_key line key = Fields.find line ~key
let int_field path line key = Fields.int ~fail:(fail_of path) line ~key
let string_field path line key = Fields.string ~fail:(fail_of path) line ~key

let load path =
  let ic = open_in path in
  let lines =
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () ->
        let rec go acc =
          match input_line ic with
          | line -> go (line :: acc)
          | exception End_of_file -> List.rev acc
        in
        go [])
  in
  let header, footer =
    match lines with
    | first :: (_ :: _ as rest) -> (first, List.nth rest (List.length rest - 1))
    | _ -> parse_error path "expected at least a header and a footer line"
  in
  if find_key header "type" = None || string_field path header "type" <> "header"
  then parse_error path "first line is not a trace header";
  if string_field path footer "type" <> "footer" then
    parse_error path "last line is not a trace footer";
  let base = Ido_harness.Spec.of_json ~fail:(fail_of path) header in
  let oracle_mode =
    match string_field path header "oracle" with
    | "atomic" -> Oracle.Atomic
    | "prefix" -> Oracle.Prefix
    | o -> parse_error path (Printf.sprintf "unknown oracle mode %S" o)
  in
  let spec =
    Engine.of_base base
      ~cache_lines:(int_field path header "cache_lines")
      ~oracle_mode
  in
  let index =
    match int_field path header "index" with -1 -> None | k -> Some k
  in
  let verdict =
    match string_field path footer "verdict" with
    | "none" -> None
    | "ok" -> Some (Ok ())
    | v ->
        let prefix = "VIOLATION: " in
        let pn = String.length prefix in
        if String.length v >= pn && String.sub v 0 pn = prefix then
          Some (Error (String.sub v pn (String.length v - pn)))
        else Some (Error v)
  in
  let consistency =
    match string_field path footer "consistency" with
    | "ok" -> Ok ()
    | m -> Error m
  in
  {
    spec;
    index;
    events = int_field path footer "events";
    digest = string_field path footer "digest";
    verdict;
    consistency;
  }

let replay (s : summary) = Engine.run_traced ?index:s.index s.spec
