open Ido_runtime
open Ido_analysis
open Ido_workloads
open Ido_instrument
open Ido_lint

type pair = {
  scheme : Scheme.t;
  workload : string;
  diags : Diag.t list;
}

let lint_pair scheme workload =
  let p = Instrument.instrument scheme (Workload.named workload) in
  Lint.lint_program scheme p

let map_maybe_pool pool f xs =
  match pool with
  | Some pool when Ido_util.Pool.size pool > 1 -> Ido_util.Pool.map_list pool f xs
  | _ -> List.map f xs

let sweep ?pool ?(schemes = Scheme.all) ?(workloads = Workload.names) () =
  let pairs =
    List.concat_map
      (fun workload ->
        List.filter_map
          (fun scheme ->
            if Engine.supported scheme workload then Some (scheme, workload)
            else None)
          schemes)
      workloads
  in
  map_maybe_pool pool
    (fun (scheme, workload) ->
      { scheme; workload; diags = lint_pair scheme workload })
    pairs

type outcome = {
  mutant : Mutate.t;
  mdiags : Diag.t list;
  caught : bool;
}

let run_mutant (m : Mutate.t) =
  let src = Workload.named m.workload in
  let p =
    match m.stage with
    | Mutate.Before_instrument ->
        Instrument.instrument m.scheme (m.transform src)
    | Mutate.After_instrument -> m.transform (Instrument.instrument m.scheme src)
  in
  let mdiags = Lint.lint_program ?variant:m.variant m.scheme p in
  let caught = List.exists (fun d -> d.Diag.code = m.expect) mdiags in
  { mutant = m; mdiags; caught }

let run_corpus ?pool () = map_maybe_pool pool run_mutant Mutate.corpus
