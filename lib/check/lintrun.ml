open Ido_runtime
open Ido_analysis
open Ido_workloads
open Ido_instrument
open Ido_lint

type pair = {
  scheme : Scheme.t;
  workload : string;
  diags : Diag.t list;
}

let lint_pair scheme workload =
  let p = Instrument.instrument scheme (Workload.named workload) in
  Lint.lint_program scheme p

(* [opt_map_list] degrades to [List.map] without a pool and keeps
   submission order either way, so sweeps stay byte-identical at every
   [-j] and every [--chunk]. *)
let map_maybe_pool ?chunk pool f xs =
  Ido_util.Pool.opt_map_list ?chunk pool f xs

let sweep ?pool ?chunk ?(schemes = Scheme.all) ?(workloads = Workload.names) ()
    =
  let pairs =
    List.concat_map
      (fun workload ->
        List.filter_map
          (fun scheme ->
            if Engine.supported scheme workload then Some (scheme, workload)
            else None)
          schemes)
      workloads
  in
  map_maybe_pool ?chunk pool
    (fun (scheme, workload) ->
      { scheme; workload; diags = lint_pair scheme workload })
    pairs

type outcome = {
  mutant : Mutate.t;
  mdiags : Diag.t list;
  caught : bool;
}

let run_mutant (m : Mutate.t) =
  let src = Workload.named m.workload in
  let p =
    match m.stage with
    | Mutate.Before_instrument ->
        Instrument.instrument m.scheme (m.transform src)
    | Mutate.After_instrument -> m.transform (Instrument.instrument m.scheme src)
  in
  let mdiags = Lint.lint_program ?variant:m.variant m.scheme p in
  let caught = List.exists (fun d -> d.Diag.code = m.expect) mdiags in
  { mutant = m; mdiags; caught }

let run_corpus ?pool ?chunk () =
  map_maybe_pool ?chunk pool run_mutant Mutate.corpus
