(** Systematic crash-point exploration.

    The simulator is fully deterministic under a fixed config and seed,
    so the schedule of persist-relevant events ({!Ido_vm.Event.t}) of a
    run names every interesting power-failure instant: "just before the
    k-th event".  This engine

    + runs a workload once, recording that schedule;
    + re-executes from scratch for each chosen index [k], aborting the
      machine at event [k] via a raising event hook, then crashes,
      recovers, and validates the image against the workload's pure
      model ({!Ido_workloads.Oracle});
    + enumerates all [N + 1] crash points when they fit the budget, and
      falls back to seeded stratified sampling when they do not;
    + shrinks any violation to the smallest failing index it can
      afford and prints a replayable repro line.

    Index [k] with [k < N] crashes just before event [k]; index [N]
    (the terminal index) lets the run finish and crashes at idle,
    covering the "power fails before the caches drain" case. *)

open Ido_runtime
open Ido_workloads

type spec = {
  scheme : Scheme.t;
  workload : string;  (** a {!Workload.names} entry *)
  seed : int;
  threads : int;
  ops : int;  (** operations per worker thread *)
  cache_lines : int;
  oracle_mode : Oracle.mode;
  opt : bool;
      (** run the persistence-redundancy optimizer ([Ido_opt]) over
          the instrumented program before executing *)
}

val supported : Scheme.t -> string -> bool
(** NVML protects only programmer-delineated durable regions, so it is
    meaningful only on [objstore]; every other scheme covers every
    workload. *)

val defaults :
  ?threads:int ->
  ?ops:int ->
  ?cache_lines:int ->
  ?strict:bool ->
  ?seed:int ->
  ?opt:bool ->
  scheme:Scheme.t ->
  workload:string ->
  unit ->
  spec
(** Sensible bounded defaults: 3 worker threads (1 for the
    single-threaded [objstore]), 60 ops per thread, the VM's default
    cache geometry, seed 42.  The oracle mode is [Atomic] for every
    instrumented scheme and [Prefix] for Origin; [~strict:true] forces
    [Atomic] even for Origin (used to demonstrate a real
    counterexample).
    @raise Invalid_argument on an unsupported scheme/workload pair. *)

val base_spec : spec -> Ido_harness.Spec.t
(** The shared serialisable fields (scheme, workload, seed, threads,
    ops) as a harness spec — the trace header writes exactly these,
    via {!Ido_harness.Spec.json_fields}. *)

val of_base :
  ?cache_lines:int ->
  ?oracle_mode:Oracle.mode ->
  ?opt:bool ->
  Ido_harness.Spec.t ->
  spec
(** Rebuild an engine spec from a harness spec, defaulting the cache
    geometry and deriving the oracle mode from the scheme ([Prefix]
    for Origin, [Atomic] otherwise) unless overridden. *)

val record : spec -> Ido_vm.Event.t array
(** Run once, crash-free, and return the persist-event schedule of the
    worker phase (setup/init events are excluded; they are made
    durable before workers start). *)

type injection = {
  index : int;
  event : string option;
      (** description of the event the crash preceded; [None] for the
          terminal index *)
  verdict : (unit, string) result;
}

val inject : spec -> int -> injection
(** Re-execute deterministically, crash just before event [index]
    (or at idle if [index] is past the schedule), recover, validate. *)

type report = {
  spec : spec;
  total_events : int;
  tested : int;  (** distinct crash indices actually injected *)
  exhaustive : bool;
  violations : injection list;  (** failing injections, ascending *)
  counterexample : injection option;
      (** smallest failing index found after shrinking *)
}

val explore :
  ?progress:(int -> int -> unit) ->
  ?pool:Ido_util.Pool.t ->
  ?chunk:int ->
  spec ->
  budget:int ->
  report
(** Record, then inject at up to [budget] distinct indices (all of
    them when [total_events + 1 <= budget], else one per stratum of a
    [budget]-way split, chosen by a generator derived from the spec
    seed).  Indices are visited in ascending order.  If any violation
    surfaces in sampled mode, untested indices below the first failure
    are scanned (ascending, bounded) to shrink the counterexample.
    [progress] receives [(done, planned)] after each injection
    (serial) or each completed chunk (pooled).

    With [?pool] (size > 1) the injection runs are dispatched to the
    domain pool one future per chunk of [chunk] consecutive indices
    ([chunk = 0], the default, derives a size from the budget and the
    pool width — see {!Ido_util.Pool.default_chunk}).  Each chunk
    reuses one private arena machine across its injections
    ({!Ido_vm.Vm.reset} between runs), so runs share nothing; results
    are merged back in event-index order, making the report
    byte-identical to a serial exploration of the same spec at every
    [-j] and every chunk size.  Recording, the crash-free sanity run
    and counterexample shrinking stay on the calling domain (on their
    own arena).

    Before exploring, a crash-free run is validated against the
    [Atomic] oracle; a failure there means the harness or workload
    itself is broken and raises [Failure]. *)

val repro_line : spec -> int -> string
(** The exact [ido_check replay ...] invocation reproducing one
    injection. *)

val final_digest : spec -> string
(** Crash-free run to completion, then {!Oracle.digest} of the
    durable image — the cross-scheme differential signature. *)

(** {1 Traced runs}

    A traced run is an {!inject}-style execution (or a crash-free one)
    with an {!Ido_obs.Obs} sink attached over the worker phase, the
    injected crash, and recovery.  Afterwards the sink's rollup is
    reconciled against the pmem counter deltas of the same window — a
    disagreement means the VM lost or duplicated an emission. *)

type traced = {
  t_spec : spec;
  t_index : int option;  (** [None]: the run was crash-free *)
  t_injection : injection option;
      (** present exactly when [t_index] is: the injection's verdict *)
  t_digest : string;  (** {!Oracle.digest} of the final durable image *)
  t_obs : Ido_obs.Obs.t;  (** the sink, fully buffered *)
  t_consistency : (unit, string) result;
      (** {!Ido_obs.Obs.check} against the counter deltas *)
}

val run_traced : ?index:int -> spec -> traced
(** Deterministic under the spec (and [index]): re-running yields the
    same event stream, digest, and verdict — the basis of trace
    replay ({!Trace}). *)

(** {1 Custom probes}

    The fuzzer ([Ido_fuzz]) drives {e generated} programs — not
    registry workloads — through the same machine lifecycle, crash
    injection protocol and observed window as a spec-described run.  A
    [custom] bundles the program with its validation closure; the
    closure runs on the final machine (after recovery and a full
    flush) so it can inspect the durable heap directly. *)

type custom = {
  c_program : Ido_ir.Ir.program;
  c_scheme : Scheme.t;
  c_seed : int;
  c_cache_lines : int;
  c_threads : int;
  c_worker_arg : int64;  (** argument passed to each ["worker"] spawn *)
  c_opt : bool;  (** optimize the instrumented program before running *)
  c_validate : Ido_vm.Vm.t -> (unit, string) result;
}

val custom_of_spec : spec -> custom
(** The spec's program/geometry with a vacuous validator (callers
    wanting the oracle verdict use {!run_traced}). *)

val record_custom : custom -> Ido_vm.Event.t array
(** {!record} over a custom program. *)

type probe = {
  pr_index : int option;  (** [None]: the run was crash-free *)
  pr_event : string option;
      (** description of the event the crash preceded *)
  pr_verdict : (unit, string) result;
      (** [c_validate] on the final machine; recovery raising is
          reported as an [Error] here, as in {!inject} *)
  pr_obs : Ido_obs.Obs.t;
  pr_consistency : (unit, string) result;
}

val probe : ?index:int -> custom -> probe
(** One fully-observed run of a custom program, crash-free or crashed
    just before event [index] — {!run_traced} without the registry
    oracle.  Deterministic under the custom and [index]. *)

val heap_words : Ido_vm.Vm.t -> base:int -> len:int -> int64 array
(** [len] persistent words starting at [base] — the raw material of a
    custom validator's all-or-nothing heap comparison. *)

val probe_root : Ido_vm.Vm.t -> int64
(** Root slot 0 of the machine's region (where the generated programs
    park their cell-array descriptor). *)
