open Ido_runtime
open Ido_workloads
module Obs = Ido_obs.Obs
module Opt = Ido_opt.Opt
module Rewrite = Ido_opt.Rewrite

(* Every optimizer rewrite is obligated: the optimized program must
   re-lint clean, pass the same crash matrix the base program does
   with identical oracles, and reconcile its crash-free obs rollup
   against the base run's, with decreases confined to the applied
   rewrites' declared delta classes.  Any divergence raises
   {!Ido_opt.Opt.Opt_violation} naming the rewrites — an optimizer
   that "wins" by breaking recovery is a hard error, never a stat. *)

type cell = {
  o_scheme : Scheme.t;
  o_workload : string;
  o_rewrites : Rewrite.t list;
  o_base : Obs.rollup;  (** crash-free base rollup over the worker phase *)
  o_opt : Obs.rollup;  (** same window, optimized program *)
  o_tested : int;  (** crash points injected on the optimized program *)
  o_total_events : int;  (** optimized persist-event schedule length *)
  o_exhaustive : bool;
}

let persists (r : Obs.rollup) = r.Obs.flushes + r.Obs.fences
let eliminated c = persists c.o_base - persists c.o_opt

let pct c =
  let b = persists c.o_base in
  if b = 0 then 0.0 else 100.0 *. float_of_int (eliminated c) /. float_of_int b

let codes_of rewrites =
  List.sort_uniq compare (List.map (fun r -> r.Rewrite.code) rewrites)

let name_rewrites rewrites =
  String.concat "\n" (List.map Rewrite.render rewrites)

(* ---------- rollup reconciliation ---------- *)

(* Crash and recovery counts come from injected crashes, which no
   rewrite touches: exactly equal, always.  Lock totals are NOT a
   schedule-independent quantity — hand-over-hand traversals acquire
   one lock per node visited, and how many nodes a traversal sees
   depends on where the scheduler interleaves concurrent inserts,
   which shifts once a rewrite changes per-thread instruction counts.
   What optimization must preserve is lock discipline: every acquire
   matched by a release, in both runs.  Evictions are exempt — an
   emergent cache artifact that can drift either way once clwbs
   disappear.  Every other field may only decrease, and only when
   some applied rewrite declares it in its {!Rewrite.delta_class}. *)
let exact_fields (r : Obs.rollup) =
  [
    ("crashes", r.Obs.crashes);
    ("recovery_steps", r.Obs.recovery_steps);
  ]

let lock_discipline ~what ~which rewrites (r : Obs.rollup) =
  if r.Obs.lock_acquires <> r.Obs.lock_releases then
    Opt.violation
      "%s: %s run breaks lock discipline (%d acquire(s), %d \
       release(s))\napplied rewrites:\n%s"
      what which r.Obs.lock_acquires r.Obs.lock_releases
      (name_rewrites rewrites)

let bounded_fields (r : Obs.rollup) =
  [
    ("stores", r.Obs.stores);
    ("flushes", r.Obs.flushes);
    ("fences", r.Obs.fences);
    ("log_appends", r.Obs.log_appends);
    ("log_bytes", r.Obs.log_bytes);
    ("boundaries", r.Obs.boundaries);
    ("elided_boundaries", r.Obs.elided_boundaries);
    ("fase_enters", r.Obs.fase_enters);
    ("fase_exits", r.Obs.fase_exits);
  ]

let reconcile ~what rewrites (base : Obs.rollup) (opt : Obs.rollup) =
  let allowed =
    List.sort_uniq compare
      (List.concat_map
         (fun r -> Rewrite.delta_class r.Rewrite.code)
         rewrites)
  in
  List.iter2
    (fun (f, b) (_, o) ->
      if b <> o then
        Opt.violation
          "%s: rollup field %s must reconcile exactly (base %d, optimized \
           %d)\napplied rewrites:\n%s"
          what f b o (name_rewrites rewrites))
    (exact_fields base) (exact_fields opt);
  lock_discipline ~what ~which:"base" rewrites base;
  lock_discipline ~what ~which:"optimized" rewrites opt;
  List.iter2
    (fun (f, b) (_, o) ->
      if o > b then
        Opt.violation
          "%s: rollup field %s increased under optimization (base %d, \
           optimized %d)\napplied rewrites:\n%s"
          what f b o (name_rewrites rewrites)
      else if o < b && not (List.mem f allowed) then
        Opt.violation
          "%s: rollup field %s decreased (base %d, optimized %d) outside \
           the delta classes of the applied rewrites (%s)\napplied \
           rewrites:\n%s"
          what f b o
          (String.concat "," allowed)
          (name_rewrites rewrites))
    (bounded_fields base) (bounded_fields opt)

(* ---------- one cell ---------- *)

let traced_rollup what rewrites spec =
  let tr = Engine.run_traced spec in
  (match tr.Engine.t_consistency with
  | Ok () -> ()
  | Error m ->
      Opt.violation "%s: obs/counter reconciliation failed: %s\napplied \
                     rewrites:\n%s"
        what m (name_rewrites rewrites));
  (Obs.total tr.Engine.t_obs, tr.Engine.t_digest)

let run_cell ?(budget = 300) ~scheme ~workload () =
  let spec = Engine.defaults ~scheme ~workload () in
  let what = Printf.sprintf "%s/%s" (Scheme.name scheme) workload in
  let program =
    Ido_instrument.Instrument.instrument scheme (Workload.named workload)
  in
  let _, rewrites = Opt.optimize scheme program in
  let base_rollup, base_digest = traced_rollup what rewrites spec in
  if rewrites = [] then
    (* no rewrite fired: the optimized program is the base program;
       the obligations hold syntactically *)
    {
      o_scheme = scheme;
      o_workload = workload;
      o_rewrites = [];
      o_base = base_rollup;
      o_opt = base_rollup;
      o_tested = 0;
      o_total_events = 0;
      o_exhaustive = true;
    }
  else begin
    (* obligation 1: the optimized program re-lints clean *)
    let optimized, _ =
      Opt.optimize scheme
        (Ido_instrument.Instrument.instrument scheme (Workload.named workload))
    in
    Opt.lint_obligation scheme optimized rewrites;
    (* obligation 2: identical oracles across the full crash matrix *)
    let ospec = { spec with Engine.opt = true } in
    let report = Engine.explore ospec ~budget in
    (match report.Engine.violations with
    | [] -> ()
    | inj :: _ ->
        Opt.violation
          "%s: optimized program fails the crash matrix at index %d (%s): \
           %s\nrepro: %s\napplied rewrites:\n%s"
          what inj.Engine.index
          (Option.value inj.Engine.event ~default:"terminal")
          (match inj.Engine.verdict with Error m -> m | Ok () -> "ok")
          (Engine.repro_line ospec inj.Engine.index)
          (name_rewrites rewrites));
    (* obligation 3: the crash-free durable image is oracle-identical *)
    let opt_rollup, opt_digest = traced_rollup what rewrites ospec in
    if not (String.equal base_digest opt_digest) then
      Opt.violation
        "%s: final digest diverged (base %s, optimized %s)\napplied \
         rewrites:\n%s"
        what base_digest opt_digest (name_rewrites rewrites);
    (* obligation 4: only predicted event deltas *)
    reconcile ~what rewrites base_rollup opt_rollup;
    {
      o_scheme = scheme;
      o_workload = workload;
      o_rewrites = rewrites;
      o_base = base_rollup;
      o_opt = opt_rollup;
      o_tested = report.Engine.tested;
      o_total_events = report.Engine.total_events;
      o_exhaustive = report.Engine.exhaustive;
    }
  end

(* ---------- the sweep ---------- *)

let sweep ?pool ?chunk ?(schemes = Scheme.all) ?(workloads = Workload.names)
    ?budget () =
  let cells =
    List.concat_map
      (fun workload ->
        List.filter_map
          (fun scheme ->
            if Engine.supported scheme workload then Some (scheme, workload)
            else None)
          schemes)
      workloads
  in
  Ido_util.Pool.opt_map_list ?chunk pool
    (fun (scheme, workload) -> run_cell ?budget ~scheme ~workload ())
    cells

let render_cell c =
  let codes = codes_of c.o_rewrites in
  let tally code =
    List.length (List.filter (fun r -> r.Rewrite.code = code) c.o_rewrites)
  in
  let rewrites =
    if codes = [] then "no rewrites"
    else
      String.concat " "
        (List.map (fun code -> Printf.sprintf "%sx%d" code (tally code)) codes)
  in
  let matrix =
    if c.o_rewrites = [] then "matrix skipped (program unchanged)"
    else
      Printf.sprintf "matrix %d/%d ok%s" c.o_tested (c.o_total_events + 1)
        (if c.o_exhaustive then " (exhaustive)" else "")
  in
  Printf.sprintf
    "%-9s %-8s  %-24s  clwb+fence %6d -> %6d  (-%d, %.1f%%)  %s"
    (Scheme.name c.o_scheme) c.o_workload rewrites (persists c.o_base)
    (persists c.o_opt) (eliminated c) (pct c) matrix

let render cells =
  let lines = List.map render_cell cells in
  let with_cut =
    List.filter (fun c -> eliminated c > 0 && pct c >= 10.0) cells
  in
  let total_base =
    List.fold_left (fun a c -> a + persists c.o_base) 0 cells
  in
  let total_opt = List.fold_left (fun a c -> a + persists c.o_opt) 0 cells in
  String.concat "\n"
    (lines
    @ [
        Printf.sprintf
          "%d cell(s): clwb+fence %d -> %d overall; %d cell(s) at or above \
           10%% elimination"
          (List.length cells) total_base total_opt (List.length with_cut);
      ])
  ^ "\n"
