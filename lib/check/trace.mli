(** NDJSON trace files for {!Engine.run_traced} runs.

    Layout of a trace file (one JSON object per line):

    + a header carrying the complete {!Engine.spec} and the crash
      index ([-1] encodes a crash-free run) — everything needed to
      re-execute the run from the file alone;
    + one {!Ido_obs.Obs.event_to_ndjson} line per observed event;
    + a footer pinning the event count, the durable-image digest
      ({!Ido_workloads.Oracle.digest}), the oracle verdict and the
      obs/counters reconciliation result.

    Because the simulator is deterministic, {!replay} of a loaded
    trace followed by {!save} reproduces the original file byte for
    byte — which is exactly what the CI smoke job asserts with [cmp],
    and what makes a failing [ido_check explore] injection portable:
    ship the trace, not the repro incantation. *)

type summary = {
  spec : Engine.spec;
  index : int option;  (** [None]: recorded crash-free *)
  events : int;  (** event-line count claimed by the footer *)
  digest : string;
  verdict : (unit, string) result option;
      (** oracle verdict of the recorded run; [None] when crash-free *)
  consistency : (unit, string) result;
      (** obs/counters reconciliation of the recorded run *)
}

val save : Engine.traced -> string -> unit
(** Write the complete trace (header, events, footer) to a file. *)

val load : string -> summary
(** Parse a trace's header and footer (the event lines are not
    deserialised — replay re-generates them).
    @raise Failure on a malformed file. *)

val replay : summary -> Engine.traced
(** Re-execute the run described by the header.  The result's digest
    must equal {!summary.digest}; a disagreement means determinism was
    broken between recording and replay. *)
