open Ido_util
open Ido_runtime
open Ido_vm
open Ido_workloads

type spec = {
  scheme : Scheme.t;
  workload : string;
  seed : int;
  threads : int;
  ops : int;
  cache_lines : int;
  oracle_mode : Oracle.mode;
  opt : bool;
}

let supported scheme workload =
  (match scheme with Scheme.Nvml -> workload = "objstore" | _ -> true)
  && Oracle.known workload

let defaults ?threads ?ops ?(cache_lines = 4096) ?(strict = false) ?(seed = 42)
    ?(opt = false) ~scheme ~workload () =
  if not (List.mem workload Workload.names) then
    invalid_arg ("Engine.defaults: unknown workload " ^ workload);
  if not (supported scheme workload) then
    invalid_arg
      (Printf.sprintf "Engine.defaults: %s does not support %s"
         (Scheme.name scheme) workload);
  let threads =
    match threads with
    | Some t -> t
    | None -> if workload = "objstore" then 1 else 3
  in
  let oracle_mode =
    if strict then Oracle.Atomic
    else match scheme with Scheme.Origin -> Oracle.Prefix | _ -> Oracle.Atomic
  in
  { scheme; workload; seed; threads; ops = Option.value ops ~default:60;
    cache_lines; oracle_mode; opt }

(* Conversions to/from the harness {!Ido_harness.Spec.t}: the five
   serialisable fields are shared; the engine adds cache geometry and
   the oracle strictness. *)
let base_spec (s : spec) : Ido_harness.Spec.t =
  Ido_harness.Spec.make ~seed:s.seed ~obs:true ~scheme:s.scheme
    ~workload:s.workload ~threads:s.threads ~ops:s.ops ()

let of_base ?(cache_lines = 4096) ?oracle_mode ?(opt = false)
    (b : Ido_harness.Spec.t) : spec =
  let oracle_mode =
    match oracle_mode with
    | Some m -> m
    | None -> (
        match b.Ido_harness.Spec.scheme with
        | Scheme.Origin -> Oracle.Prefix
        | _ -> Oracle.Atomic)
  in
  {
    scheme = b.Ido_harness.Spec.scheme;
    workload = b.Ido_harness.Spec.workload;
    seed = b.Ido_harness.Spec.seed;
    threads = b.Ido_harness.Spec.threads;
    ops = b.Ido_harness.Spec.ops;
    cache_lines;
    oracle_mode;
    opt;
  }

(* A custom run: the same machine lifecycle, injection protocol and
   obs window as a spec-described run, but over a caller-supplied
   program and validation closure.  The fuzzer drives generated
   programs through exactly the engine's crash machinery this way. *)
type custom = {
  c_program : Ido_ir.Ir.program;
  c_scheme : Scheme.t;
  c_seed : int;
  c_cache_lines : int;
  c_threads : int;
  c_worker_arg : int64;
  c_opt : bool;
  c_validate : Ido_vm.Vm.t -> (unit, string) result;
}

let custom_of_spec (s : spec) =
  {
    c_program = Workload.named s.workload;
    c_scheme = s.scheme;
    c_seed = s.seed;
    c_cache_lines = s.cache_lines;
    c_threads = s.threads;
    c_worker_arg = Int64.of_int s.ops;
    c_opt = s.opt;
    c_validate = (fun _ -> Ok ());
  }

let custom_config (c : custom) =
  { (Vm.config c.c_scheme) with
    seed = c.c_seed;
    cache_lines = c.c_cache_lines;
    opt = c.c_opt;
    (* Each injection run starts from a pristine machine; the bounded
       check workloads fit comfortably in 1M words (8 MiB), an 8x
       saving over the benchmark default. *)
    pmem_words = 1 lsl 20 }

(* Run the durable setup phase on a pristine machine.  The event hook
   is installed only after this returns, so recording and every
   injection run observe the same worker-phase schedule. *)
let boot_phases (c : custom) m =
  ignore (Vm.spawn m ~fname:"init" ~args:[]);
  (match Vm.run m with
  | `Idle -> ()
  | _ -> failwith "Engine.setup: init phase did not run to completion");
  Vm.flush_all m;
  for _ = 1 to c.c_threads do
    ignore (Vm.spawn m ~fname:"worker" ~args:[ c.c_worker_arg ])
  done

let setup_custom (c : custom) =
  let m = Vm.create (custom_config c) c.c_program in
  boot_phases c m;
  m

let setup spec = setup_custom (custom_of_spec spec)

(* A reusable machine for batches of same-spec runs.  The first use
   pays [Vm.create] (validation, instrumentation, image build, the big
   pmem array); every later use is a [Vm.reset] — byte-identical
   semantics at a fraction of the cost.  Each pool worker chunk (and
   the whole serial path) keeps one arena, so machines are never
   shared across domains. *)
type arena = { a_custom : custom; mutable a_machine : Vm.t option }

let arena (c : custom) = { a_custom = c; a_machine = None }

let arena_setup a =
  match a.a_machine with
  | Some m ->
      Vm.reset m;
      boot_phases a.a_custom m;
      m
  | None ->
      let m = setup_custom a.a_custom in
      a.a_machine <- Some m;
      m

let finish_run m =
  match Vm.run m with
  | `Idle -> ()
  | `Deadlock -> failwith "Engine: worker phase deadlocked"
  | `Until | `Max_steps -> failwith "Engine: worker phase did not finish"

let record_on m =
  let evs = ref [] in
  Vm.set_event_hook m (Some (fun e -> evs := e :: !evs));
  finish_run m;
  Vm.set_event_hook m None;
  Array.of_list (List.rev !evs)

let record spec = record_on (setup spec)

let mem_of m =
  let pm = Vm.pmem m in
  { Oracle.load = Ido_nvm.Pmem.load pm; size = Ido_nvm.Pmem.size pm }

let validate_now spec ~mode m =
  let root = Ido_region.Region.get_root (Vm.region m) 0 in
  Oracle.validate ~workload:spec.workload ~mode ~root (mem_of m)

type injection = {
  index : int;
  event : string option;
  verdict : (unit, string) result;
}

exception Crash_injected

let inject_on m spec index =
  let count = ref 0 in
  let crashed_event = ref None in
  Vm.set_event_hook m
    (Some
       (fun e ->
         if !count = index then begin
           crashed_event := Some (Event.describe e);
           raise Crash_injected
         end;
         incr count));
  (try finish_run m with Crash_injected -> ());
  (* Recovery itself generates pmem traffic; stop observing before it
     starts or the injected crash would fire again. *)
  Vm.set_event_hook m None;
  Vm.crash m;
  let verdict =
    (* A recovery that itself raises (bad log tag, failed scan) is a
       scheme defect at this crash point, not an engine failure. *)
    match Vm.recover m with
    | _stats ->
        Vm.flush_all m;
        validate_now spec ~mode:spec.oracle_mode m
    | exception e ->
        Error (Printf.sprintf "recovery raised: %s" (Printexc.to_string e))
  in
  { index; event = !crashed_event; verdict }

let check_index index =
  if index < 0 then invalid_arg "Engine.inject: negative crash index"

let inject spec index =
  check_index index;
  inject_on (setup spec) spec index

let inject_arena a spec index =
  check_index index;
  inject_on (arena_setup a) spec index

type report = {
  spec : spec;
  total_events : int;
  tested : int;
  exhaustive : bool;
  violations : injection list;
  counterexample : injection option;
}

let mode_name = function Oracle.Atomic -> "atomic" | Oracle.Prefix -> "prefix"

let repro_line spec index =
  Printf.sprintf
    "ido_check replay --scheme %s --workload %s --seed %d --threads %d \
     --ops %d --cache-lines %d --oracle %s --index %d%s"
    (Scheme.name spec.scheme) spec.workload spec.seed spec.threads spec.ops
    spec.cache_lines (mode_name spec.oracle_mode) index
    (if spec.opt then " --opt" else "")

(* Crash indices to visit: ascending, so the first violation of an
   exhaustive run is already minimal.  Sampled mode picks one index
   per stratum of a [budget]-way split of [0, total]; the picks come
   from a generator derived from the spec seed, making the sample (and
   hence the whole report) reproducible. *)
let plan_indices spec ~total ~budget =
  let candidates = total + 1 in
  if candidates <= budget then (Array.init candidates (fun i -> i), true)
  else begin
    let rng = Rng.create (Hashtbl.hash (spec.seed, spec.ops, "ido-check-plan")) in
    let picks =
      Array.init budget (fun s ->
          let lo = s * candidates / budget in
          let hi = ((s + 1) * candidates / budget) - 1 in
          lo + Rng.int rng (hi - lo + 1))
    in
    (picks, false)
  end

(* Bound on the extra runs spent minimising a sampled counterexample. *)
let shrink_budget = 512

let shrink a spec ~tested_ok ~first_fail =
  let best = ref first_fail in
  let runs = ref 0 in
  (try
     for k = 0 to first_fail.index - 1 do
       if (not (Hashtbl.mem tested_ok k)) && !runs < shrink_budget then begin
         incr runs;
         let inj = inject_arena a spec k in
         match inj.verdict with
         | Error _ ->
             best := inj;
             raise Exit
         | Ok () -> Hashtbl.replace tested_ok k ()
       end
     done
   with Exit -> ());
  !best

let explore ?(progress = fun _ _ -> ()) ?pool ?(chunk = 0) spec ~budget =
  if budget < 1 then invalid_arg "Engine.explore: budget must be positive";
  if chunk < 0 then invalid_arg "Engine.explore: chunk must be >= 0";
  let c = custom_of_spec spec in
  let home = arena c in
  (* Harness sanity: a run that never crashes must satisfy the full
     model under every scheme, Origin included. *)
  (let m = arena_setup home in
   finish_run m;
   Vm.flush_all m;
   match validate_now spec ~mode:Oracle.Atomic m with
   | Ok () -> ()
   | Error msg ->
       failwith
         (Printf.sprintf "Engine.explore: crash-free %s/%s run fails oracle: %s"
            (Scheme.name spec.scheme) spec.workload msg));
  let schedule = record_on (arena_setup home) in
  let total = Array.length schedule in
  let indices, exhaustive = plan_indices spec ~total ~budget in
  let planned = Array.length indices in
  let tested_ok = Hashtbl.create (planned * 2) in
  let violations = ref [] in
  (* Injection runs share nothing (each chunk keeps a private arena
     machine), so they spread over the domain pool one future per
     chunk of consecutive indices, amortising dispatch overhead over
     [chunk] runs.  Results are merged in event-index order (awaits
     follow submission order), keeping the report — violations,
     shrinking, repro lines — byte-identical to the serial path at
     every [-j] and every chunk size. *)
  let injections =
    match pool with
    | Some pool when Pool.size pool > 1 ->
        let k =
          if chunk = 0 then Pool.default_chunk ~jobs:(Pool.size pool) planned
          else chunk
        in
        let nchunks = (planned + k - 1) / k in
        let futures =
          Array.init nchunks (fun ci ->
              let lo = ci * k in
              let len = min k (planned - lo) in
              Pool.submit pool (fun () ->
                  let a = arena c in
                  Array.init len (fun j -> inject_arena a spec indices.(lo + j))))
        in
        let done_count = ref 0 in
        let batches =
          Array.map
            (fun fut ->
              let batch = Pool.await fut in
              done_count := !done_count + Array.length batch;
              progress !done_count planned;
              batch)
            futures
        in
        Array.concat (Array.to_list batches)
    | _ ->
        Array.mapi
          (fun i k ->
            let inj = inject_arena home spec k in
            progress (i + 1) planned;
            inj)
          indices
  in
  Array.iter
    (fun inj ->
      match inj.verdict with
      | Ok () -> Hashtbl.replace tested_ok inj.index ()
      | Error _ -> violations := inj :: !violations)
    injections;
  let violations = List.rev !violations in
  let counterexample =
    match violations with
    | [] -> None
    | first :: _ ->
        Some
          (if exhaustive then first
           else shrink home spec ~tested_ok ~first_fail:first)
  in
  { spec; total_events = total; tested = planned; exhaustive; violations;
    counterexample }

let final_digest spec =
  let m = setup spec in
  finish_run m;
  Vm.flush_all m;
  let root = Ido_region.Region.get_root (Vm.region m) 0 in
  Oracle.digest ~workload:spec.workload ~root (mem_of m)

(* ---------- Traced runs ---------- *)

type traced = {
  t_spec : spec;
  t_index : int option;
  t_injection : injection option;
  t_digest : string;
  t_obs : Ido_obs.Obs.t;
  t_consistency : (unit, string) result;
}

let run_traced ?index spec =
  (match index with
  | Some k when k < 0 -> invalid_arg "Engine.run_traced: negative crash index"
  | _ -> ());
  let m = setup spec in
  (* The observed window starts after durable setup: snapshot the pmem
     counters so [Obs.check] reconciles exactly what the sink saw. *)
  let c0 = Ido_nvm.Pmem.counters (Vm.pmem m) in
  let stores0 = c0.Ido_nvm.Pmem.stores
  and writebacks0 = c0.Ido_nvm.Pmem.writebacks
  and fences0 = c0.Ido_nvm.Pmem.fences
  and evictions0 = c0.Ido_nvm.Pmem.evictions in
  let obs = Ido_obs.Obs.create () in
  Vm.set_obs m (Some obs);
  let t_injection =
    match index with
    | None ->
        finish_run m;
        Vm.flush_all m;
        None
    | Some k ->
        (* Same protocol as [inject], with the sink watching the worker
           phase, the crash, and recovery.  The injection hook runs
           before obs emission, so the aborted event is recorded by
           neither the sink nor the counters — they stay reconciled. *)
        let count = ref 0 in
        let crashed_event = ref None in
        Vm.set_event_hook m
          (Some
             (fun e ->
               if !count = k then begin
                 crashed_event := Some (Event.describe e);
                 raise Crash_injected
               end;
               incr count));
        (try finish_run m with Crash_injected -> ());
        Vm.set_event_hook m None;
        Vm.crash m;
        let verdict =
          match Vm.recover m with
          | _stats ->
              Vm.flush_all m;
              validate_now spec ~mode:spec.oracle_mode m
          | exception e ->
              Error (Printf.sprintf "recovery raised: %s" (Printexc.to_string e))
        in
        Some { index = k; event = !crashed_event; verdict }
  in
  Vm.set_obs m None;
  let c = Ido_nvm.Pmem.counters (Vm.pmem m) in
  let t_consistency =
    Ido_obs.Obs.check obs
      ~stores:(c.Ido_nvm.Pmem.stores - stores0)
      ~writebacks:(c.Ido_nvm.Pmem.writebacks - writebacks0)
      ~fences:(c.Ido_nvm.Pmem.fences - fences0)
      ~evictions:(c.Ido_nvm.Pmem.evictions - evictions0)
  in
  let t_digest =
    let root = Ido_region.Region.get_root (Vm.region m) 0 in
    Oracle.digest ~workload:spec.workload ~root (mem_of m)
  in
  { t_spec = spec; t_index = index; t_injection; t_digest; t_obs = obs;
    t_consistency }

(* ---------- Custom probes ---------- *)

let record_custom c = record_on (setup_custom c)

type probe = {
  pr_index : int option;
  pr_event : string option;
  pr_verdict : (unit, string) result;
  pr_obs : Ido_obs.Obs.t;
  pr_consistency : (unit, string) result;
}

let probe ?index (c : custom) =
  (match index with
  | Some k when k < 0 -> invalid_arg "Engine.probe: negative crash index"
  | _ -> ());
  let m = setup_custom c in
  let c0 = Ido_nvm.Pmem.counters (Vm.pmem m) in
  let stores0 = c0.Ido_nvm.Pmem.stores
  and writebacks0 = c0.Ido_nvm.Pmem.writebacks
  and fences0 = c0.Ido_nvm.Pmem.fences
  and evictions0 = c0.Ido_nvm.Pmem.evictions in
  let obs = Ido_obs.Obs.create () in
  Vm.set_obs m (Some obs);
  let crashed_event = ref None in
  let pr_verdict =
    match index with
    | None ->
        finish_run m;
        Vm.flush_all m;
        c.c_validate m
    | Some k ->
        (* Same protocol as [run_traced]: the injection hook runs
           before obs emission, so the aborted event is recorded by
           neither the sink nor the counters. *)
        let count = ref 0 in
        Vm.set_event_hook m
          (Some
             (fun e ->
               if !count = k then begin
                 crashed_event := Some (Event.describe e);
                 raise Crash_injected
               end;
               incr count));
        (try finish_run m with Crash_injected -> ());
        Vm.set_event_hook m None;
        Vm.crash m;
        (match Vm.recover m with
        | _stats ->
            Vm.flush_all m;
            c.c_validate m
        | exception e ->
            Error (Printf.sprintf "recovery raised: %s" (Printexc.to_string e)))
  in
  Vm.set_obs m None;
  let cn = Ido_nvm.Pmem.counters (Vm.pmem m) in
  let pr_consistency =
    Ido_obs.Obs.check obs
      ~stores:(cn.Ido_nvm.Pmem.stores - stores0)
      ~writebacks:(cn.Ido_nvm.Pmem.writebacks - writebacks0)
      ~fences:(cn.Ido_nvm.Pmem.fences - fences0)
      ~evictions:(cn.Ido_nvm.Pmem.evictions - evictions0)
  in
  { pr_index = index; pr_event = !crashed_event; pr_verdict; pr_obs = obs;
    pr_consistency }

let heap_words (m : Ido_vm.Vm.t) ~base ~len =
  let pm = Vm.pmem m in
  Array.init len (fun i -> Ido_nvm.Pmem.load pm (base + i))

let probe_root m = Ido_region.Region.get_root (Vm.region m) 0
