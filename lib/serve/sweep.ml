open Ido_runtime

type t = {
  workload : string;
  seed : int;
  requests : int;
  period_ns : int;
  zipf : float option;
  opt : bool;
  schemes : Scheme.t list;
  topologies : Topology.t list;
  batches : int list;
}

let default ~workload =
  {
    workload;
    seed = 42;
    requests = 2000;
    period_ns = 1500;
    zipf = Some 0.99;
    opt = false;
    schemes = [ Scheme.Ido; Scheme.Justdo ];
    topologies = [ Topology.static 1; Topology.static 4 ];
    batches = [ 1; 8 ];
  }

let cells s =
  if s.schemes = [] then invalid_arg "Sweep: schemes list is empty";
  if s.topologies = [] then invalid_arg "Sweep: topologies list is empty";
  if s.batches = [] then invalid_arg "Sweep: batches list is empty";
  List.concat_map
    (fun scheme ->
      List.concat_map
        (fun topology ->
          List.map
            (fun batch ->
              Config.make ~seed:s.seed ~topology ~batch ~requests:s.requests
                ~period_ns:s.period_ns ?zipf:s.zipf ~opt:s.opt
                ~workload:s.workload ~scheme ())
            s.batches)
        s.topologies)
    s.schemes
