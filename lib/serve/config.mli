(** One serving cell: which workload/scheme to serve, how the request
    stream is generated, and how it is sharded and batched.

    Everything downstream — the generated stream, the per-shard
    simulations, the reported percentiles — is a deterministic
    function of this record, independent of host parallelism. *)

open Ido_runtime

type t = {
  workload : string;  (** a {!Ido_workloads.Workload.names} entry *)
  scheme : Scheme.t;
  seed : int;  (** seeds both the stream generator and the shard VMs *)
  shards : int;  (** key-hash partitions, one private machine each *)
  batch : int;  (** max queued requests drained per dispatch *)
  requests : int;  (** total requests in the open-loop stream *)
  period_ns : int;  (** mean interarrival gap, simulated ns *)
  zipf : float option;
      (** [Some e]: Zipfian keys with exponent [e]; [None]: uniform *)
  opt : bool;
      (** serve the optimized program: every shard VM runs the
          persistence-redundancy optimizer ([Ido_opt]) over its
          instrumented workload *)
}

val make :
  ?seed:int ->
  ?shards:int ->
  ?batch:int ->
  ?requests:int ->
  ?period_ns:int ->
  ?zipf:float ->
  ?opt:bool ->
  workload:string ->
  scheme:Scheme.t ->
  unit ->
  t
(** Defaults: seed 42, 1 shard, batch 1, 1000 requests, 1500 ns mean
    interarrival, uniform keys, optimizer off.
    @raise Invalid_argument on a non-positive count. *)

val shard_seed : ?salt:int -> t -> int -> int
(** [shard_seed ?salt c shard] derives a non-negative per-shard seed
    by SplitMix64-mixing [(c.seed, salt, shard)] — seed splitting.
    Each consumer of per-shard randomness (the stream generator, the
    shard VM) uses a distinct [salt] (default [0]) so their streams
    stay independent.  Deterministic in the cell parameters alone, so
    shards may be generated and simulated in any order, on any
    domain, with identical results. *)

val label : t -> string
(** ["kvcache50/ido s4 b8"] — the row label in rendered reports. *)

val json_fields : t -> string
(** The cell parameters as a JSON fragment (no braces), stable field
    order — serve reports are compared byte for byte across [-j]. *)
