(** One serving cell: which workload/scheme to serve, how the request
    stream is generated, and the {!Topology.t} it is served on.

    Everything downstream — the generated stream, the per-group
    simulations, failover and resharding, the reported percentiles —
    is a deterministic function of this record, independent of host
    parallelism. *)

open Ido_runtime

type t = {
  workload : string;  (** a {!Ido_workloads.Workload.names} entry *)
  scheme : Scheme.t;
  seed : int;  (** seeds both the stream generator and the shard VMs *)
  topology : Topology.t;
      (** the declarative shard map: routing groups, warm replicas,
          optional mid-stream reshard (replaces the old bare
          [shards : int]) *)
  batch : int;  (** max queued requests drained per dispatch *)
  requests : int;  (** total requests in the open-loop stream *)
  period_ns : int;  (** mean interarrival gap, simulated ns *)
  zipf : float option;
      (** [Some e]: Zipfian keys with exponent [e]; [None]: uniform *)
  opt : bool;
      (** serve the optimized program: every machine runs the
          persistence-redundancy optimizer ([Ido_opt]) over its
          instrumented workload *)
}

val make :
  ?seed:int ->
  ?topology:Topology.t ->
  ?batch:int ->
  ?requests:int ->
  ?period_ns:int ->
  ?zipf:float ->
  ?opt:bool ->
  workload:string ->
  scheme:Scheme.t ->
  unit ->
  t
(** Defaults: seed 42, [Topology.static 1], batch 1, 1000 requests,
    1500 ns mean interarrival, uniform keys, optimizer off.
    @raise Invalid_argument on a non-positive count or a Zipf exponent
    that is [<= 0] or [= 1.0] (the CLIs map this to exit 2). *)

val shards : t -> int
(** The topology's routing-group count — what key routing and the
    {!Gen.plan} partition over. *)

val mid_stream_ns : t -> int
(** [requests * period_ns / 2] — the expected middle of the arrival
    horizon; the default instant for wall-clock fault events and
    mid-stream resharding. *)

val shard_seed : ?salt:int -> t -> int -> int
(** [shard_seed ?salt c shard] derives a non-negative per-shard seed
    by SplitMix64-mixing [(c.seed, salt, shard)] — seed splitting.
    Each consumer of per-shard randomness (the stream generator, the
    primary VM, each replica, a split child) uses a distinct [salt]
    (default [0]) so their streams stay independent.  Deterministic in
    the cell parameters alone, so groups may be generated and
    simulated in any order, on any domain, with identical results. *)

val label : t -> string
(** ["kvcache50/ido s4r1 b8"] — the row label in rendered reports;
    identical to the historical label on static topologies. *)

val json_fields : t -> string
(** The cell parameters as a JSON fragment (no braces), stable field
    order — serve reports are compared byte for byte across [-j]. *)
