open Ido_util
open Ido_workloads

type cell = {
  config : Config.t;
  fault : Fault.t;
  stats : Lat.stats;
  makespan_ns : int;
  mops : float;
  shards : Shard.outcome list;
  replayed : int;
  recovery_ns : int;
  unavail_ns : int;
  max_stall_ns : int;
  oracle : (unit, string) result;
  consistency : (unit, string) result;
}

let first_error outcomes pick =
  List.fold_left
    (fun acc o -> match acc with Error _ -> acc | Ok () -> pick o)
    (Ok ()) outcomes

let run_cell ?pool ?(chunk = 1) ?(obs = false) ?(fault = Fault.none)
    (config : Config.t) =
  Fault.validate config fault;
  let w = Workload.get config.Config.workload in
  (* Force the program once, on this domain: the registry thunk is
     lazy and lazy forcing is not domain-safe. *)
  let program = Workload.program w in
  let oracle = w.Workload.oracle in
  (* The plan (per-group masses and counts) is the only whole-stream
     computation; each lane then pulls its requests lazily from a
     stream created on its own domain. *)
  let plan =
    Gen.plan config ~key_range:w.Workload.request.Workload.key_range
  in
  let groups = Config.shards config in
  (* Units: the sets of groups that must be simulated together.  Only
     a Merge couples two groups (the cold lane rebinds to the hot
     station mid-stream); everything else is a singleton.  Units are
     ordered by least member, so submission order — and therefore the
     pool-result order — is deterministic. *)
  let units =
    match config.Config.topology.Topology.reshard with
    | Some Topology.Merge ->
        let hot = Gen.hottest plan and cold = Gen.coldest plan in
        let pair = List.sort Int.compare [ hot; cold ] in
        let rest =
          List.filter
            (fun g -> not (List.mem g pair))
            (List.init groups Fun.id)
        in
        List.sort
          (fun a b -> Int.compare (List.hd a) (List.hd b))
          (pair :: List.map (fun g -> [ g ]) rest)
    | _ -> List.init groups (fun g -> [ g ])
  in
  let outcomes =
    Pool.opt_map_list ~chunk pool
      (fun unit ->
        Shard.run_unit ~obs ~fault ~config ~program ~oracle ~plan unit)
      units
    |> List.concat
    |> List.sort (fun a b -> Int.compare a.Shard.group b.Shard.group)
  in
  (* Bucket-wise sketch merge: exact, order-independent in value but
     merged in group order all the same. *)
  let lat = Lat.create () in
  List.iter (fun o -> Lat.merge ~into:lat o.Shard.lat) outcomes;
  let sum f = List.fold_left (fun a o -> a + f o) 0 outcomes in
  let dropped = sum (fun o -> o.Shard.dropped) in
  let stats = Lat.stats ~dropped lat in
  let makespan_ns =
    List.fold_left (fun a o -> max a o.Shard.busy_until) 0 outcomes
  in
  {
    config;
    fault;
    stats;
    makespan_ns;
    mops =
      (if makespan_ns = 0 then 0.0
       else float_of_int stats.Lat.served /. float_of_int makespan_ns *. 1000.0);
    shards = outcomes;
    replayed = sum (fun o -> o.Shard.replayed);
    recovery_ns = sum (fun o -> o.Shard.recovery_ns);
    unavail_ns = sum (fun o -> o.Shard.unavail_ns);
    max_stall_ns =
      List.fold_left (fun a o -> max a o.Shard.max_stall_ns) 0 outcomes;
    oracle = first_error outcomes (fun o -> o.Shard.oracle);
    consistency = first_error outcomes (fun o -> o.Shard.consistency);
  }

let default_crash (config : Config.t) =
  match (Fault.single_crash config).Fault.events with
  | [ Fault.Crash pl ] -> pl
  | _ -> assert false
