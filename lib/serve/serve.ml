open Ido_util
open Ido_workloads

type cell = {
  config : Config.t;
  stats : Lat.stats;
  makespan_ns : int;
  mops : float;
  shards : Shard.outcome list;
  oracle : (unit, string) result;
  consistency : (unit, string) result;
}

let first_error outcomes pick =
  List.fold_left
    (fun acc o -> match acc with Error _ -> acc | Ok () -> pick o)
    (Ok ()) outcomes

let run_cell ?pool ?(chunk = 1) ?(obs = false) ?crash (config : Config.t) =
  let w = Workload.get config.Config.workload in
  (* Force the program once, on this domain: the registry thunk is
     lazy and lazy forcing is not domain-safe. *)
  let program = Workload.program w in
  let oracle = w.Workload.oracle in
  (* The plan (per-shard masses and counts) is the only whole-stream
     computation; each shard then pulls its requests lazily from a
     stream it creates on its own domain. *)
  let plan =
    Gen.plan config ~key_range:w.Workload.request.Workload.key_range
  in
  (* One pool task per shard by default (shards are coarse); [chunk]
     batches consecutive shards when a sweep runs many small cells. *)
  let outcomes =
    Pool.opt_map_list ~chunk pool
      (fun shard ->
        Shard.run ~obs ?crash ~shard ~config ~program ~oracle
          (Gen.sub_stream plan shard))
      (List.init config.Config.shards Fun.id)
  in
  (* Bucket-wise sketch merge: exact, order-independent in value but
     merged in shard order all the same. *)
  let lat = Lat.create () in
  List.iter (fun o -> Lat.merge ~into:lat o.Shard.lat) outcomes;
  let dropped = List.fold_left (fun a o -> a + o.Shard.dropped) 0 outcomes in
  let stats = Lat.stats ~dropped lat in
  let makespan_ns =
    List.fold_left (fun a o -> max a o.Shard.busy_until) 0 outcomes
  in
  {
    config;
    stats;
    makespan_ns;
    mops =
      (if makespan_ns = 0 then 0.0
       else float_of_int stats.Lat.served /. float_of_int makespan_ns *. 1000.0);
    shards = outcomes;
    oracle = first_error outcomes (fun o -> o.Shard.oracle);
    consistency = first_error outcomes (fun o -> o.Shard.consistency);
  }

let default_crash (config : Config.t) =
  (* Deterministic mid-stream crash point: pick the shard from the
     seed, crash in the batch around the middle of its sub-stream.
     Sub-stream lengths come from the plan — nothing is generated.
     If the seeded shard happens to own no requests, fall back to the
     busiest one so the crash always lands. *)
  let w = Workload.get config.Config.workload in
  let plan =
    Gen.plan config ~key_range:w.Workload.request.Workload.key_range
  in
  let rng = Rng.create (config.Config.seed lxor 0x5eed) in
  let shard = ref (Rng.int rng config.Config.shards) in
  if Gen.shard_count plan !shard = 0 then begin
    for s = 0 to config.Config.shards - 1 do
      if Gen.shard_count plan s > Gen.shard_count plan !shard then shard := s
    done
  end;
  let len = Gen.shard_count plan !shard in
  { Shard.shard = !shard; at_request = len / 2; after_ns = 400 }
