open Ido_util
open Ido_workloads

type cell = {
  config : Config.t;
  stats : Lat.stats;
  makespan_ns : int;
  mops : float;
  shards : Shard.outcome list;
  oracle : (unit, string) result;
  consistency : (unit, string) result;
}

let first_error outcomes pick =
  List.fold_left
    (fun acc o -> match acc with Error _ -> acc | Ok () -> pick o)
    (Ok ()) outcomes

let run_cell ?pool ?(chunk = 1) ?(obs = false) ?crash (config : Config.t) =
  let w = Workload.get config.Config.workload in
  (* Force the program once, on this domain: the registry thunk is
     lazy and lazy forcing is not domain-safe. *)
  let program = Workload.program w in
  let oracle = w.Workload.oracle in
  let streams =
    Gen.partition config
      (Gen.stream config ~key_range:w.Workload.request.Workload.key_range)
  in
  (* One pool task per shard by default (shards are coarse); [chunk]
     batches consecutive shards when a sweep runs many small cells. *)
  let outcomes =
    Pool.opt_map_list ~chunk pool
      (fun shard ->
        Shard.run ~obs ?crash ~shard ~config ~program ~oracle streams.(shard))
      (List.init config.Config.shards Fun.id)
  in
  let latencies =
    Array.concat (List.map (fun o -> o.Shard.latencies) outcomes)
  in
  let dropped = List.fold_left (fun a o -> a + o.Shard.dropped) 0 outcomes in
  let stats = Lat.of_latencies ~dropped latencies in
  let makespan_ns =
    List.fold_left (fun a o -> max a o.Shard.busy_until) 0 outcomes
  in
  {
    config;
    stats;
    makespan_ns;
    mops =
      (if makespan_ns = 0 then 0.0
       else float_of_int stats.Lat.served /. float_of_int makespan_ns *. 1000.0);
    shards = outcomes;
    oracle = first_error outcomes (fun o -> o.Shard.oracle);
    consistency = first_error outcomes (fun o -> o.Shard.consistency);
  }

let default_crash (config : Config.t) =
  (* Deterministic mid-stream crash point: pick the shard from the
     seed, crash in the batch around the middle of its sub-stream. *)
  let w = Workload.get config.Config.workload in
  let streams =
    Gen.partition config
      (Gen.stream config ~key_range:w.Workload.request.Workload.key_range)
  in
  let rng = Rng.create (config.Config.seed lxor 0x5eed) in
  let shard = Rng.int rng config.Config.shards in
  let len = Array.length streams.(shard) in
  { Shard.shard; at_request = len / 2; after_ns = 400 }
