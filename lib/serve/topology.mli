(** Declarative shard map for a serving cell.

    A topology names the routing groups (key-hash partitions, one
    primary machine each), how many warm replicas back each primary,
    and whether the cell reshards itself mid-stream.  It replaces the
    bare [shards : int] the serve layer grew up with: the group count
    still drives {!Gen.shard_of} routing, but failover and live
    resharding need the whole map, not just its cardinality.

    Replicas apply the same deterministic sub-stream as their primary,
    one acknowledged batch behind it, so promoting one on a primary
    crash replays only the unacknowledged batch tail instead of
    running scheme recovery on the request critical path.

    Resharding is declared, not scheduled: [Split] cuts the
    Zipf-hottest group's key space in two halfway through its
    sub-stream (the half with more key mass keeps the warm machine);
    [Merge] retires the coldest group's machine mid-stream and routes
    its remaining requests to the hottest group's machine.  Both
    charge a deterministic migration pause to the serving clock. *)

type reshard =
  | Split  (** split the hottest group's key space mid-stream *)
  | Merge  (** merge the coldest group into the hottest mid-stream *)

type t = private {
  groups : int;  (** routing groups (primaries); drives key routing *)
  replicas : int;  (** warm replicas per group, 0 = unreplicated *)
  reshard : reshard option;
}

val static : int -> t
(** [static n]: n primary-only groups — the pre-elastic [shards : int].
    @raise Invalid_argument when [n < 1]. *)

val replicated : replicas:int -> int -> t
(** [replicated ~replicas n]: n groups, each backed by [replicas] warm
    standbys.  @raise Invalid_argument on negative counts. *)

val with_reshard : reshard -> t -> t
(** Add a mid-stream reshard event.  [Merge] needs at least two
    groups.  @raise Invalid_argument otherwise. *)

val make : ?replicas:int -> ?reshard:reshard -> int -> t
(** General constructor; validates like the combinators above. *)

val name : t -> string
(** Compact stable name: ["s4"], ["s4r1"], ["s4sp"], ["s4r1mg"] —
    group count, optional replica count, optional reshard suffix.
    Static topologies keep the historical ["s<n>"] label, so reports
    over static maps are unchanged. *)

val of_name : string -> (t, string) result
(** Parse {!name}'s output (the CLI [--topologies] syntax).  The error
    is a one-line description of the expected grammar. *)

val machines : t -> int
(** Machines the map boots up front: [groups * (1 + replicas)] (a
    split child boots lazily and is not counted). *)

val detect_ns : int
(** Failure-detection delay charged before a replica promotion. *)

val migrate_ns : records:int -> int
(** Deterministic state-migration pause for a split or merge, as a
    function of the records handed over (40 simulated ns each). *)
