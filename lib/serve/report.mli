(** Rendering, JSON persistence, and SLA accounting of serve cells.

    The JSON layout (field order, float formatting) is stable: CI
    [cmp]s [BENCH_serve.json] files produced at different [-j].  The
    elastic-serving fields (fault label, replay/failover counters,
    unavailability windows) bumped the document format to 2. *)

val cell_json : Serve.cell -> string
(** One cell as a single-line JSON object, including per-group
    detail. *)

val to_json : Serve.cell list -> string
(** The [BENCH_serve.json] document: [{"type":"serve","format":2,
    "cells":[...]}]. *)

val row_label : Serve.cell -> string
(** The cell label with the fault scenario appended
    (["kvcache50/ido s4r1 b8 [storm2]"]); the bare historical label
    when the cell ran fault-free. *)

val render : Serve.cell list -> string
(** Human-readable boxed table: one row per (scheme x topology x
    batch x fault) cell with throughput, latency percentiles, replay
    and stall accounting. *)

val sla_ok : budget_ns:int -> Serve.cell -> bool
(** Does the cell's largest single stall fit the recovery budget? *)

val sla_verdict : budget_ns:int -> Serve.cell -> string
(** One verdict line:
    ["SLA verdict: <cell> [<fault>]: p99=... max_stall=... budget=...:
    ok|VIOLATED"] — the line CI greps for. *)

val sla_verdicts : budget_ns:int -> Serve.cell list -> string
(** All verdict lines, newline-joined. *)
