(** Rendering and JSON persistence of serve cells.

    The JSON layout (field order, float formatting) is stable: CI
    [cmp]s [BENCH_serve.json] files produced at different [-j]. *)

val cell_json : Serve.cell -> string
(** One cell as a single-line JSON object, including per-shard
    detail. *)

val to_json : Serve.cell list -> string
(** The [BENCH_serve.json] document: [{"type":"serve","format":1,
    "cells":[...]}]. *)

val render : Serve.cell list -> string
(** Human-readable boxed table: one row per cell with throughput and
    the latency percentiles. *)
