(** Cell orchestration: plan the stream, fan the shards out over an
    optional domain pool, and merge their outcomes.

    Shards are independent simulations over disjoint lazily-generated
    sub-streams ({!Gen.sub_stream}), and the merge is in shard order
    (submission order on the pool), so a cell's result is
    byte-identical at every [-j] and chunk size.  End to end the cell
    is constant-memory: no request array, no retained latency
    samples — per-shard {!Lat.t} sketches merge bucket-wise into the
    cell sketch. *)

type cell = {
  config : Config.t;
  stats : Lat.stats;  (** sketch-derived stats over served requests *)
  makespan_ns : int;  (** max shard busy horizon, simulated wall ns *)
  mops : float;  (** served / makespan, Mops/s *)
  shards : Shard.outcome list;  (** per-shard detail, shard order *)
  oracle : (unit, string) result;  (** first shard oracle failure *)
  consistency : (unit, string) result;
      (** first shard obs-reconciliation failure *)
}

val run_cell :
  ?pool:Ido_util.Pool.t ->
  ?chunk:int ->
  ?obs:bool ->
  ?crash:Shard.crash_plan ->
  Config.t ->
  cell
(** [chunk] batches consecutive shards into one pool task ([1], the
    default: one task per shard; [0]: auto-size).  The cell is
    byte-identical at every [-j] and chunk size.
    @raise Invalid_argument for a workload missing from the registry. *)

val default_crash : Config.t -> Shard.crash_plan
(** A deterministic mid-stream crash point: the shard is drawn from
    the cell seed (falling back to the busiest shard if the drawn one
    has no requests), the crash hits the batch containing the middle
    request of that shard's sub-stream, 400 simulated ns in.  Uses
    only the plan — no requests are generated. *)
