(** Cell orchestration: plan the stream, fan the routing groups out
    over an optional domain pool, and merge their outcomes under a
    {!Fault.t} scenario.

    Groups are independent simulations over disjoint lazily-generated
    sub-streams ({!Gen.sub_stream}) — except a [Topology.Merge]'s hot
    and cold groups, which share one pool task (a {!Shard.run_unit}
    unit) because the cold lane rebinds to the hot station
    mid-stream.  The merge of outcomes is in group order regardless
    of completion order, so a cell's result is byte-identical at
    every [-j] and chunk size, under every scenario.  End to end the
    cell is constant-memory: no request array, no retained latency
    samples — per-group {!Lat.t} sketches merge bucket-wise into the
    cell sketch. *)

type cell = {
  config : Config.t;
  fault : Fault.t;  (** the scenario this cell ran under *)
  stats : Lat.stats;  (** sketch-derived stats over served requests *)
  makespan_ns : int;  (** max group busy horizon, simulated wall ns *)
  mops : float;  (** served / makespan, Mops/s *)
  shards : Shard.outcome list;  (** per-group detail, group order *)
  replayed : int;  (** requests re-executed on promoted replicas *)
  recovery_ns : int;  (** total in-place recovery time *)
  unavail_ns : int;  (** total unavailability across groups *)
  max_stall_ns : int;
      (** the largest single stall anywhere in the cell — what the
          SLA verdict compares against the p99 budget *)
  oracle : (unit, string) result;  (** first group oracle failure *)
  consistency : (unit, string) result;
      (** first group obs-reconciliation failure *)
}

val run_cell :
  ?pool:Ido_util.Pool.t ->
  ?chunk:int ->
  ?obs:bool ->
  ?fault:Fault.t ->
  Config.t ->
  cell
(** Serve one cell under [fault] (default {!Fault.none}).  [chunk]
    batches consecutive units into one pool task ([1], the default:
    one task per unit; [0]: auto-size).  The cell is byte-identical
    at every [-j] and chunk size.
    @raise Invalid_argument for a workload missing from the registry
    or a scenario naming a group outside the topology. *)

val default_crash : Config.t -> Fault.crash_plan
(** @deprecated The PR-5 single-crash plan, now
    [Fault.single_crash config] under the hood — kept so existing
    callers (and the [serve-crash] check's output) are unchanged.
    Prefer building a {!Fault.t} directly. *)
