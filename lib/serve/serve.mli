(** Cell orchestration: generate the stream, fan the shards out over
    an optional domain pool, and merge their outcomes.

    Shards are independent simulations over disjoint sub-streams, and
    the merge is in shard order (submission order on the pool), so a
    cell's result is byte-identical at every [-j]. *)

type cell = {
  config : Config.t;
  stats : Lat.stats;  (** latency stats over every served request *)
  makespan_ns : int;  (** max shard busy horizon, simulated wall ns *)
  mops : float;  (** served / makespan, Mops/s *)
  shards : Shard.outcome list;  (** per-shard detail, shard order *)
  oracle : (unit, string) result;  (** first shard oracle failure *)
  consistency : (unit, string) result;
      (** first shard obs-reconciliation failure *)
}

val run_cell :
  ?pool:Ido_util.Pool.t ->
  ?chunk:int ->
  ?obs:bool ->
  ?crash:Shard.crash_plan ->
  Config.t ->
  cell
(** [chunk] batches consecutive shards into one pool task ([1], the
    default: one task per shard; [0]: auto-size).  The cell is
    byte-identical at every [-j] and chunk size.
    @raise Invalid_argument for a workload missing from the registry. *)

val default_crash : Config.t -> Shard.crash_plan
(** A deterministic mid-stream crash point: the shard is drawn from
    the cell seed, the crash hits the batch containing the middle
    request of that shard's sub-stream, 400 simulated ns in. *)
