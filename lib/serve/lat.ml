type stats = {
  served : int;
  dropped : int;
  mean_ns : float;
  p50 : int;
  p95 : int;
  p99 : int;
  max_ns : int;
}

(* ---- HDR-style log-bucketed quantile sketch ------------------------

   Latencies below [exact_limit] get one bucket each (exact).  Above,
   each power-of-two octave is cut into [sub_count] equal sub-buckets,
   so a bucket spanning [low, low + width) has
   width / low <= 2^(e-sub_bits) / 2^e = 2^-sub_bits: any value
   reported from the bucket is within relative error 2^-sub_bits of
   any value in it.  OCaml ints are 63-bit, so the top octave is
   e = 61 and the table stays ~3.6k counters — constant memory at any
   request count, and merging two sketches is a bucket-wise add. *)

let sub_bits = 6
let sub_count = 1 lsl sub_bits  (* 64 sub-buckets per octave *)
let exact_limit = 2 * sub_count  (* values < 128 are exact *)
let max_exponent = 61  (* floor (log2 max_int), max_int = 2^62 - 1 *)
let n_buckets = exact_limit + ((max_exponent - sub_bits) * sub_count)
let relative_error = 1.0 /. float_of_int sub_count

type t = {
  buckets : int array;
  mutable n : int;
  mutable sum : int;  (* 63-bit: safe up to ~4.6e18 total ns *)
  mutable max_v : int;
}

let create () = { buckets = Array.make n_buckets 0; n = 0; sum = 0; max_v = 0 }

let bucket_of v =
  if v < exact_limit then v
  else begin
    (* e = floor (log2 v) >= sub_bits + 1; the top [sub_bits + 1]
       bits of v are [1 | sub-index]. *)
    let e = ref (sub_bits + 1) in
    while v lsr (!e + 1) > 0 do
      incr e
    done;
    let sub = (v lsr (!e - sub_bits)) land (sub_count - 1) in
    exact_limit + (((!e - sub_bits - 1) * sub_count) + sub)
  end

(* Largest value the bucket can hold (inclusive). *)
let bucket_top idx =
  if idx < exact_limit then idx
  else begin
    let off = idx - exact_limit in
    let e = sub_bits + 1 + (off / sub_count) in
    let sub = off mod sub_count in
    let width = 1 lsl (e - sub_bits) in
    (1 lsl e) + (sub * width) + width - 1
  end

let add t v =
  let v = max 0 v in
  let idx = bucket_of v in
  t.buckets.(idx) <- t.buckets.(idx) + 1;
  t.n <- t.n + 1;
  t.sum <- t.sum + v;
  if v > t.max_v then t.max_v <- v

let merge ~into src =
  Array.iteri (fun i c -> into.buckets.(i) <- into.buckets.(i) + c) src.buckets;
  into.n <- into.n + src.n;
  into.sum <- into.sum + src.sum;
  if src.max_v > into.max_v then into.max_v <- src.max_v

let count t = t.n

(* Nearest-rank over the bucket counts: find the bucket holding the
   rank-[ceil (q/100 * n)] sample and report its top, capped at the
   observed maximum so degenerate cases (n = 1, or every sample in
   one bucket) stay exact. *)
let percentile_sketch t q =
  if t.n = 0 then 0
  else begin
    let rank = int_of_float (ceil (q /. 100.0 *. float_of_int t.n)) in
    let rank = min t.n (max 1 rank) in
    let idx = ref 0 and seen = ref 0 in
    while !seen < rank do
      seen := !seen + t.buckets.(!idx);
      if !seen < rank then incr idx
    done;
    min (bucket_top !idx) t.max_v
  end

let stats ?(dropped = 0) t =
  {
    served = t.n;
    dropped;
    mean_ns = (if t.n = 0 then 0.0 else float_of_int t.sum /. float_of_int t.n);
    p50 = percentile_sketch t 50.0;
    p95 = percentile_sketch t 95.0;
    p99 = percentile_sketch t 99.0;
    max_ns = t.max_v;
  }

(* ---- exact nearest-rank (reference and test paths) ----------------- *)

(* Nearest-rank on an ascending array: the smallest latency such that
   at least q% of samples are <= it.  p100 is the maximum. *)
let percentile sorted q =
  let n = Array.length sorted in
  if n = 0 then 0
  else begin
    let rank = int_of_float (ceil (q /. 100.0 *. float_of_int n)) in
    let rank = min n (max 1 rank) in
    sorted.(rank - 1)
  end

let of_latencies ?(dropped = 0) latencies =
  let sorted = Array.copy latencies in
  (* [Int.compare], not polymorphic [compare]: the data is known int,
     and the polymorphic path dispatches on the representation at
     every comparison. *)
  Array.sort Int.compare sorted;
  let n = Array.length sorted in
  {
    served = n;
    dropped;
    mean_ns =
      (if n = 0 then 0.0
       else float_of_int (Array.fold_left ( + ) 0 sorted) /. float_of_int n);
    p50 = percentile sorted 50.0;
    p95 = percentile sorted 95.0;
    p99 = percentile sorted 99.0;
    max_ns = (if n = 0 then 0 else sorted.(n - 1));
  }

let json_fields s =
  Printf.sprintf
    {|"served":%d,"dropped":%d,"mean_ns":%.1f,"p50":%d,"p95":%d,"p99":%d,"max_ns":%d|}
    s.served s.dropped s.mean_ns s.p50 s.p95 s.p99 s.max_ns
