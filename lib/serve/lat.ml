type stats = {
  served : int;
  dropped : int;
  mean_ns : float;
  p50 : int;
  p95 : int;
  p99 : int;
  max_ns : int;
}

(* Nearest-rank on an ascending array: the smallest latency such that
   at least q% of samples are <= it.  p100 is the maximum. *)
let percentile sorted q =
  let n = Array.length sorted in
  if n = 0 then 0
  else begin
    let rank = int_of_float (ceil (q /. 100.0 *. float_of_int n)) in
    let rank = min n (max 1 rank) in
    sorted.(rank - 1)
  end

let of_latencies ?(dropped = 0) latencies =
  let sorted = Array.copy latencies in
  Array.sort compare sorted;
  let n = Array.length sorted in
  {
    served = n;
    dropped;
    mean_ns =
      (if n = 0 then 0.0
       else
         float_of_int (Array.fold_left ( + ) 0 sorted) /. float_of_int n);
    p50 = percentile sorted 50.0;
    p95 = percentile sorted 95.0;
    p99 = percentile sorted 99.0;
    max_ns = (if n = 0 then 0 else sorted.(n - 1));
  }

let json_fields s =
  Printf.sprintf
    {|"served":%d,"dropped":%d,"mean_ns":%.1f,"p50":%d,"p95":%d,"p99":%d,"max_ns":%d|}
    s.served s.dropped s.mean_ns s.p50 s.p95 s.p99 s.max_ns
