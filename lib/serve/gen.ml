open Ido_util

type request = {
  id : int;
  arrival : int;
  key : int;
  dice : int;
  value : int;
  shard : int;
}

(* SplitMix64 finalizer: routing must decorrelate the key from its
   shard (Zipf rank 0 is the hottest key; consecutive ranks must not
   land on consecutive shards), and must not depend on [Hashtbl.hash]
   internals. *)
let mix64 k =
  let ( *% ) = Int64.mul and ( ^> ) v s = Int64.logxor v (Int64.shift_right_logical v s) in
  let z = Int64.add (Int64.of_int k) 0x9E3779B97F4A7C15L in
  let z = (z ^> 30) *% 0xBF58476D1CE4E5B9L in
  let z = (z ^> 27) *% 0x94D049BB133111EBL in
  z ^> 31

let shard_of ~shards key =
  Int64.to_int (Int64.rem (Int64.logand (mix64 key) Int64.max_int)
                  (Int64.of_int shards))

let stream (c : Config.t) ~key_range =
  let rng = Rng.create c.Config.seed in
  let zipf = Option.map (fun e -> Zipf.create ~exponent:e key_range) c.Config.zipf in
  let arrival = ref 0 in
  Array.init c.Config.requests (fun id ->
      (* Open loop: exponential interarrivals with mean [period_ns],
         independent of completions — so shards simulate independently
         and a crash on one shard never reshapes another's stream. *)
      let u = Rng.float rng 1.0 in
      let gap =
        max 1
          (int_of_float
             ((-.float_of_int c.Config.period_ns *. log (1.0 -. u)) +. 0.5))
      in
      arrival := !arrival + gap;
      let key =
        match zipf with
        | Some z -> Zipf.sample z rng
        | None -> Rng.int rng key_range
      in
      let dice = Rng.int rng 100 in
      let value = Rng.int rng 1_000_000 in
      { id; arrival = !arrival; key; dice; value;
        shard = shard_of ~shards:c.Config.shards key })

let partition (c : Config.t) reqs =
  let buckets = Array.make c.Config.shards [] in
  for i = Array.length reqs - 1 downto 0 do
    let r = reqs.(i) in
    buckets.(r.shard) <- r :: buckets.(r.shard)
  done;
  Array.map Array.of_list buckets
