open Ido_util

type request = {
  id : int;
  arrival : int;
  key : int;
  dice : int;
  value : int;
  shard : int;
}

(* SplitMix64 finalizer: routing must decorrelate the key from its
   shard (Zipf rank 0 is the hottest key; consecutive ranks must not
   land on consecutive shards), and must not depend on [Hashtbl.hash]
   internals. *)
let mix64 k =
  let ( *% ) = Int64.mul and ( ^> ) v s = Int64.logxor v (Int64.shift_right_logical v s) in
  let z = Int64.add (Int64.of_int k) 0x9E3779B97F4A7C15L in
  let z = (z ^> 30) *% 0xBF58476D1CE4E5B9L in
  let z = (z ^> 27) *% 0x94D049BB133111EBL in
  z ^> 31

let shard_of ~shards key =
  Int64.to_int (Int64.rem (Int64.logand (mix64 key) Int64.max_int)
                  (Int64.of_int shards))

(* Inverse-CDF exponential gap.  [u] comes from [Rng.float rng 1.0],
   which is < 1.0 by construction, but the clamp is load-bearing
   anyway: a float rounding to 1.0 would make [log (1.0 -. u)] equal
   to -infinity, and the poisoned gap would corrupt the arrival clock
   for the rest of the stream.  Clamping the survival probability at
   [2^-53] (one ulp below 1.0 from below) caps the gap at
   [mean * 53 ln 2] — the longest gap a 53-bit uniform can
   legitimately express. *)
let gap_of_u ~mean u =
  let survival = Float.max (1.0 -. u) 0x1p-53 in
  max 1 (int_of_float ((-.mean *. log survival) +. 0.5))

type plan = {
  config : Config.t;
  key_range : int;
  mass : float array;  (* per shard, key-probability mass; sums to ~1 *)
  counts : int array;  (* per shard, apportioned request count *)
}

let plan (c : Config.t) ~key_range =
  let shards = Config.shards c in
  let zipf =
    Option.map (fun e -> Zipf.create ~exponent:e key_range) c.Config.zipf
  in
  let pmf k =
    match zipf with
    | Some z -> Zipf.pmf z k
    | None -> 1.0 /. float_of_int key_range
  in
  (* O(key_range) pass: each key's probability goes to its shard. *)
  let mass = Array.make shards 0.0 in
  for k = 0 to key_range - 1 do
    let s = shard_of ~shards k in
    mass.(s) <- mass.(s) +. pmf k
  done;
  let total_mass = Array.fold_left ( +. ) 0.0 mass in
  (* Largest-remainder apportionment of the request count.  The
     fractional remainders sum to the leftover count and each is < 1,
     so at least [leftover] shards have a positive remainder: a
     zero-mass shard (remainder 0, sorted last) is never reached.
     Ties break by shard index — fully deterministic. *)
  let n = c.Config.requests in
  let quota = Array.map (fun m -> float_of_int n *. m /. total_mass) mass in
  let counts = Array.map (fun q -> int_of_float (floor q)) quota in
  let leftover = n - Array.fold_left ( + ) 0 counts in
  let order = Array.init shards Fun.id in
  Array.sort
    (fun a b ->
      let fa = quota.(a) -. floor quota.(a)
      and fb = quota.(b) -. floor quota.(b) in
      if fa <> fb then Float.compare fb fa else Int.compare a b)
    order;
  for i = 0 to leftover - 1 do
    let s = order.(i mod shards) in
    counts.(s) <- counts.(s) + 1
  done;
  (* Belt and braces against float drift in the remainder argument: a
     request on a shard that owns no keys would never find a key to
     serve (the rejection sampler below could not terminate). *)
  for s = 0 to shards - 1 do
    if mass.(s) = 0.0 && counts.(s) > 0 then begin
      let heaviest = ref 0 in
      for t = 1 to shards - 1 do
        if mass.(t) > mass.(!heaviest) then heaviest := t
      done;
      counts.(!heaviest) <- counts.(!heaviest) + counts.(s);
      counts.(s) <- 0
    end
  done;
  { config = c; key_range; mass; counts }

let shard_count p shard = p.counts.(shard)
let counts p = Array.copy p.counts

type stream = {
  shard : int;
  shards : int;
  key_range : int;
  total : int;
  rng : Rng.t;
  zipf : Zipf.t option;
  mean_gap : float;  (* period_ns / shard mass: thinned Poisson *)
  mutable emitted : int;
  mutable arrival : int;
  mutable lookahead : request option;
}

let sub_stream (p : plan) shard =
  let c = p.config in
  {
    shard;
    shards = Config.shards c;
    key_range = p.key_range;
    total = p.counts.(shard);
    (* salt 1: the stream draws must stay independent of the shard
       VM's own randomness, which is seeded with the salt-0 seed. *)
    rng = Rng.create (Config.shard_seed ~salt:1 c shard);
    zipf =
      Option.map (fun e -> Zipf.create ~exponent:e p.key_range) c.Config.zipf;
    mean_gap = float_of_int c.Config.period_ns /. p.mass.(shard);
    emitted = 0;
    arrival = 0;
    lookahead = None;
  }

let length s = s.total

(* Draw the next request of the sub-stream.  The key is
   rejection-sampled from the cell's full key distribution until it
   routes here: conditioning preserves both the routing invariant
   (every key served by shard [s] satisfies [shard_of key = s]) and
   the within-shard key skew.  Terminates because the shard's mass is
   positive whenever [total > 0] (see [plan]). *)
let emit s =
  if s.emitted >= s.total then None
  else begin
    let u = Rng.float s.rng 1.0 in
    s.arrival <- s.arrival + gap_of_u ~mean:s.mean_gap u;
    let rec draw_key () =
      let k =
        match s.zipf with
        | Some z -> Zipf.sample z s.rng
        | None -> Rng.int s.rng s.key_range
      in
      if shard_of ~shards:s.shards k = s.shard then k else draw_key ()
    in
    let key = draw_key () in
    let dice = Rng.int s.rng 100 in
    let value = Rng.int s.rng 1_000_000 in
    let r =
      { id = s.emitted; arrival = s.arrival; key; dice; value; shard = s.shard }
    in
    s.emitted <- s.emitted + 1;
    Some r
  end

let peek s =
  match s.lookahead with
  | Some _ as r -> r
  | None ->
      let r = emit s in
      s.lookahead <- r;
      r

let next s =
  match s.lookahead with
  | Some _ as r ->
      s.lookahead <- None;
      r
  | None -> emit s

(* ------------------------------------------------------------------ *)
(* Elastic-topology helpers: which group is hot/cold, and how a split
   re-derives the hot group's masses over the new map. *)

let hottest p =
  let h = ref 0 in
  Array.iteri (fun s m -> if m > p.mass.(!h) then h := s) p.mass;
  !h

let coldest p =
  let hot = hottest p in
  let shards = Array.length p.mass in
  if shards = 1 then 0
  else begin
    let c = ref (if hot = 0 then 1 else 0) in
    Array.iteri
      (fun s m -> if s <> hot && m < p.mass.(!c) then c := s)
      p.mass;
    !c
  end

(* Second, salted mix: the split half must be independent of the
   primary route (bit of [mix64 key mod shards]) so a split cuts every
   group's key space roughly in half regardless of the group count. *)
let split_bit key =
  Int64.to_int (Int64.logand (mix64 (key lxor 0x5b1d)) 1L) = 1

type split_info = {
  stay_mass : float;
  move_mass : float;
  stay_expect : int;
  move_expect : int;
}

let split_info (p : plan) ~group ~remaining =
  let c = p.config in
  let zipf =
    Option.map (fun e -> Zipf.create ~exponent:e p.key_range) c.Config.zipf
  in
  let pmf k =
    match zipf with
    | Some z -> Zipf.pmf z k
    | None -> 1.0 /. float_of_int p.key_range
  in
  let shards = Config.shards c in
  let stay = ref 0.0 and move = ref 0.0 in
  for k = 0 to p.key_range - 1 do
    if shard_of ~shards k = group then
      if split_bit k then move := !move +. pmf k else stay := !stay +. pmf k
  done;
  (* Largest-remainder apportionment over the two-entry map; the tie
     breaks toward the staying half (lower index in the new map). *)
  let total = !stay +. !move in
  let stay_expect =
    if total <= 0.0 then remaining
    else begin
      let q_stay = float_of_int remaining *. !stay /. total in
      let q_move = float_of_int remaining *. !move /. total in
      let fl_stay = int_of_float (floor q_stay)
      and fl_move = int_of_float (floor q_move) in
      let leftover = remaining - fl_stay - fl_move in
      let frac_stay = q_stay -. floor q_stay
      and frac_move = q_move -. floor q_move in
      if leftover > 0 && frac_stay >= frac_move then fl_stay + leftover
      else fl_stay
    end
  in
  {
    stay_mass = !stay;
    move_mass = !move;
    stay_expect;
    move_expect = remaining - stay_expect;
  }

let materialize (p : plan) shard =
  let s = sub_stream p shard in
  Array.init s.total (fun _ ->
      match next s with
      | Some r -> r
      | None -> assert false (* [total] requests by construction *))
