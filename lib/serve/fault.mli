(** Fault scenarios for a serving cell: ordered, deterministic fault
    events executed by [Serve.run_cell] with every recovery horizon
    charged to the serving clock.

    This generalizes the old single optional [?crash:Shard.crash_plan]
    into a first-class plan: one scenario can power-fail one group
    mid-batch ({!single_crash}), take out a correlated k-of-N set of
    primaries at one instant ({!storm} — the power-rail case), or
    destroy a warm replica ({!replica_loss}), in any combination.
    Every event is planned from the cell parameters and the per-group
    request counts alone — no stream is materialised — so scenarios
    scale to arbitrarily long streams and are byte-identical at every
    [-j] and [--chunk]. *)

type crash_plan = {
  shard : int;  (** which routing group's primary power-fails *)
  at_request : int;
      (** index {e within that group's sub-stream}: the crash hits the
          batch containing this request *)
  after_ns : int;  (** simulated ns into that batch *)
}

type event =
  | Crash of crash_plan
      (** power-fail one primary mid-batch, positioned by request
          index (the PR-5 crash plan, unchanged semantics) *)
  | Crash_at of { group : int; at_ns : int }
      (** power-fail one primary at a wall-clock instant — the storm
          building block; lands mid-batch if a batch spans [at_ns],
          on an idle machine otherwise *)
  | Replica_loss of { group : int; at_ns : int }
      (** destroy the group's most recently attached replica *)

type t = {
  label : string;  (** stable scenario name, part of the report key *)
  detect_ns : int;  (** failure-detection delay before promotion *)
  events : event list;
}

val none : t
(** The empty scenario (label ["none"]): fault-free serving. *)

val of_crash : crash_plan -> t
(** Wrap a bare crash plan (label ["crash1"]) — the shim the
    deprecated [Serve.default_crash] callers go through. *)

val single_crash : Config.t -> t
(** The deterministic mid-stream single crash, planned exactly as the
    PR-5 [Serve.default_crash]: group drawn from the seed (falling
    back to the busiest), the batch containing the middle request of
    its sub-stream, 400 ns in. *)

val storm : ?k:int -> ?at_ns:int -> Config.t -> t
(** [storm ?k ?at_ns c]: a correlated crash storm — [k] distinct
    groups (default [max 1 (groups / 2)]) drawn from the seed all
    power-fail at wall instant [at_ns] (default mid-stream:
    [requests * period_ns / 2]).  Label ["storm<k>"]. *)

val replica_loss : ?at_ns:int -> group:int -> Config.t -> t
(** Lose one of [group]'s replicas at [at_ns] (default mid-stream).
    Label ["rloss"]. *)

val combine : label:string -> t list -> t
(** Concatenate scenarios under one label (events keep their order;
    [detect_ns] is taken from the first).  For compound scenarios like
    replica loss followed by a storm. *)

val validate : Config.t -> t -> unit
(** @raise Invalid_argument when an event names a group outside the
    cell's topology — surfaced by the CLIs as exit 2. *)
