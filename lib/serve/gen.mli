(** Deterministic open-loop request generation.

    The whole stream is materialised up front from the cell seed:
    arrival times (exponential interarrivals around the configured
    mean), keys (Zipfian or uniform), the op dice each workload's
    [request] entry dispatches on, and a value operand.  Arrivals
    never depend on completions, so the per-shard sub-streams are
    fixed before any simulation starts — the property that lets
    shards run on a domain pool with deterministic output. *)

type request = {
  id : int;  (** position in the global stream *)
  arrival : int;  (** simulated ns *)
  key : int;
  dice : int;  (** op selector in [\[0, 100)] *)
  value : int;
  shard : int;  (** [shard_of key] — fixed at generation time *)
}

val shard_of : shards:int -> int -> int
(** Route a key: SplitMix64-mixed hash mod [shards].  Stable across
    runs and hosts; a given key always lands on the same shard. *)

val stream : Config.t -> key_range:int -> request array
(** The full stream, arrival-ordered.  [key_range] comes from the
    workload's registry {!Ido_workloads.Workload.request_profile}. *)

val partition : Config.t -> request array -> request array array
(** Split a stream into per-shard sub-streams, each arrival-ordered. *)
