(** Deterministic open-loop request generation, streamed per shard.

    Nothing is materialised: a {!plan} computes each shard's
    key-probability mass and request count in one O(key_range) pass,
    and each shard then pulls its requests lazily from a private
    {!stream} seeded by splitting the cell seed
    ({!Config.shard_seed}).  Arrivals are exponential interarrivals
    around [period_ns / mass] — the thinned Poisson process the shard
    would see if a single rate-[1/period_ns] stream were key-routed —
    and keys are drawn from the cell's key distribution conditioned
    on routing here.  Arrivals never depend on completions, and a
    shard's stream depends only on [(config, shard)], so shards run
    on a domain pool in any order with byte-identical output at every
    [-j] and chunk size, in constant memory. *)

type request = {
  id : int;  (** position in this shard's sub-stream *)
  arrival : int;  (** simulated ns *)
  key : int;
  dice : int;  (** op selector in [\[0, 100)] *)
  value : int;
  shard : int;  (** [shard_of key] — the stream that produced it *)
}

val shard_of : shards:int -> int -> int
(** Route a key: SplitMix64-mixed hash mod [shards].  Stable across
    runs and hosts; a given key always lands on the same shard. *)

val gap_of_u : mean:float -> float -> int
(** [gap_of_u ~mean u] inverts the exponential CDF at [u], in whole
    ns, at least 1.  The survival probability is clamped at [2^-53]
    so a boundary draw ([u = 1.0]) yields the largest legitimate
    finite gap ([mean * 53 ln 2], rounded) instead of the infinity
    that [log 0] would produce.  Exposed for the regression tests. *)

type plan
(** Per-shard masses and request counts for one cell — the only
    whole-stream computation, O(key_range + shards log shards). *)

val plan : Config.t -> key_range:int -> plan
(** [key_range] comes from the workload's registry
    {!Ido_workloads.Workload.request_profile}.  Request counts are
    apportioned to shards by largest remainder over the exact
    key-probability masses, so expected load (hot shards included)
    matches key-routing a single global stream. *)

val shard_count : plan -> int -> int
(** Requests the shard's stream will yield.  Sums to
    [Config.requests] over all shards; 0 for a shard owning no
    keys. *)

val counts : plan -> int array
(** All per-shard counts (a copy). *)

type stream
(** One shard's lazy request iterator: O(1) state, single-owner
    (create it on the domain that consumes it). *)

val sub_stream : plan -> int -> stream
(** A fresh iterator over the shard's sub-stream, arrival-ordered,
    deterministic in [(config, shard)] alone. *)

val length : stream -> int
(** Total requests the stream yields ([shard_count] of its shard). *)

val peek : stream -> request option
(** The next request without consuming it ([None]: exhausted). *)

val next : stream -> request option
(** Consume and return the next request ([None]: exhausted). *)

(** {1 Elastic-topology helpers} *)

val hottest : plan -> int
(** The group with the largest key-probability mass (under Zipfian
    skew, the one the hot keys hash to); ties break by index.  The
    group a [Topology.Split] cuts and a [Topology.Merge] grows. *)

val coldest : plan -> int
(** The smallest-mass group other than {!hottest} (ties by index; the
    sole group when there is only one).  The group a [Topology.Merge]
    retires. *)

val split_bit : int -> bool
(** Which half of a split a key lands in: a salted SplitMix64 bit,
    independent of the primary route, so a split cuts any group's key
    space roughly in half.  Stable across runs and hosts. *)

type split_info = {
  stay_mass : float;  (** key mass staying on the warm machine *)
  move_mass : float;  (** key mass migrating to the split child *)
  stay_expect : int;
  move_expect : int;
      (** largest-remainder apportionment of the remaining request
          count over the two new masses *)
}

val split_info : plan -> group:int -> remaining:int -> split_info
(** Re-derive the plan's masses over the post-split map of [group]:
    one O(key_range) pass splitting the group's key mass by
    {!split_bit}, then largest-remainder apportionment of the
    [remaining] (not yet served) request count — the same rule
    {!plan} uses over whole shards. *)

val materialize : plan -> int -> request array
(** The shard's whole sub-stream as an array — the reference the
    streaming path is tested against; not used on the serve path. *)
