open Ido_util

let result_string = function Ok () -> "ok" | Error m -> m

let cell_json (c : Serve.cell) =
  let shard_json (o : Shard.outcome) =
    Printf.sprintf
      ({|{"shard":%d,"served":%d,"replayed":%d,"dropped":%d,|}
     ^^ {|"busy_until":%d,"sim_ns":%d,"replica_ns":%d,|}
     ^^ {|"crashes":%d,"failovers":%d,"replicas_lost":%d,|}
     ^^ {|"split_off":%b,"merged_away":%b,|}
     ^^ {|"recovery_ns":%d,"unavail_ns":%d,"max_stall_ns":%d,|}
     ^^ {|"oracle":"%s","consistency":"%s"}|})
      o.Shard.group o.Shard.served o.Shard.replayed o.Shard.dropped
      o.Shard.busy_until o.Shard.sim_ns o.Shard.replica_ns o.Shard.crashes
      o.Shard.failovers o.Shard.replicas_lost o.Shard.split_off
      o.Shard.merged_away o.Shard.recovery_ns o.Shard.unavail_ns
      o.Shard.max_stall_ns
      (Ido_obs.Obs.json_escape (result_string o.Shard.oracle))
      (Ido_obs.Obs.json_escape (result_string o.Shard.consistency))
  in
  Printf.sprintf
    ({|{%s,"fault":"%s",%s,"makespan_ns":%d,"mops":%.6f,|}
   ^^ {|"replayed":%d,"recovery_ns":%d,"unavail_ns":%d,"max_stall_ns":%d,|}
   ^^ {|"oracle":"%s","consistency":"%s","shards_detail":[%s]}|})
    (Config.json_fields c.Serve.config)
    (Ido_obs.Obs.json_escape c.Serve.fault.Fault.label)
    (Lat.json_fields c.Serve.stats)
    c.Serve.makespan_ns c.Serve.mops c.Serve.replayed c.Serve.recovery_ns
    c.Serve.unavail_ns c.Serve.max_stall_ns
    (Ido_obs.Obs.json_escape (result_string c.Serve.oracle))
    (Ido_obs.Obs.json_escape (result_string c.Serve.consistency))
    (String.concat "," (List.map shard_json c.Serve.shards))

let to_json cells =
  Printf.sprintf {|{"type":"serve","format":2,"cells":[%s]}|}
    (String.concat "," (List.map cell_json cells))

(* The row key: the cell label plus the scenario when one ran.  A
   fault-free row keeps the historical bare label. *)
let row_label (c : Serve.cell) =
  let l = Config.label c.Serve.config in
  match c.Serve.fault.Fault.label with
  | "none" -> l
  | f -> Printf.sprintf "%s [%s]" l f

let render cells =
  let header =
    [
      "cell"; "mops"; "p50"; "p95"; "p99"; "max"; "served"; "replay";
      "dropped"; "stall"; "obs";
    ]
  in
  let row (c : Serve.cell) =
    let s = c.Serve.stats in
    [
      row_label c;
      Printf.sprintf "%.4f" c.Serve.mops;
      string_of_int s.Lat.p50;
      string_of_int s.Lat.p95;
      string_of_int s.Lat.p99;
      string_of_int s.Lat.max_ns;
      string_of_int s.Lat.served;
      string_of_int c.Serve.replayed;
      string_of_int s.Lat.dropped;
      string_of_int c.Serve.max_stall_ns;
      (match (c.Serve.oracle, c.Serve.consistency) with
      | Ok (), Ok () -> "ok"
      | Error m, _ | _, Error m -> m);
    ]
  in
  Render.table
    ~title:
      "Serving benchmark: throughput and request latency (simulated ns)\n\
       per (scheme x topology x batch x fault) cell"
    ~header (List.map row cells)

let sla_ok ~budget_ns (c : Serve.cell) = c.Serve.max_stall_ns <= budget_ns

let sla_verdict ~budget_ns (c : Serve.cell) =
  Printf.sprintf "SLA verdict: %s: p99=%d max_stall=%d budget=%d: %s"
    (row_label c) c.Serve.stats.Lat.p99 c.Serve.max_stall_ns budget_ns
    (if sla_ok ~budget_ns c then "ok" else "VIOLATED")

let sla_verdicts ~budget_ns cells =
  String.concat "\n" (List.map (sla_verdict ~budget_ns) cells)
