open Ido_util

let result_string = function Ok () -> "ok" | Error m -> m

let cell_json (c : Serve.cell) =
  let shard_json (o : Shard.outcome) =
    Printf.sprintf
      ({|{"shard":%d,"served":%d,"dropped":%d,"busy_until":%d,"sim_ns":%d,|}
     ^^ {|"crashed":%b,"recovery_ns":%d,"oracle":"%s","consistency":"%s"}|})
      o.Shard.shard o.Shard.served o.Shard.dropped o.Shard.busy_until
      o.Shard.sim_ns o.Shard.crashed o.Shard.recovery_ns
      (Ido_obs.Obs.json_escape (result_string o.Shard.oracle))
      (Ido_obs.Obs.json_escape (result_string o.Shard.consistency))
  in
  Printf.sprintf
    {|{%s,%s,"makespan_ns":%d,"mops":%.6f,"oracle":"%s","consistency":"%s","shards_detail":[%s]}|}
    (Config.json_fields c.Serve.config)
    (Lat.json_fields c.Serve.stats)
    c.Serve.makespan_ns c.Serve.mops
    (Ido_obs.Obs.json_escape (result_string c.Serve.oracle))
    (Ido_obs.Obs.json_escape (result_string c.Serve.consistency))
    (String.concat "," (List.map shard_json c.Serve.shards))

let to_json cells =
  Printf.sprintf {|{"type":"serve","format":1,"cells":[%s]}|}
    (String.concat "," (List.map cell_json cells))

let render cells =
  let header =
    [
      "cell"; "mops"; "p50"; "p95"; "p99"; "max"; "served"; "dropped"; "obs";
    ]
  in
  let row (c : Serve.cell) =
    let s = c.Serve.stats in
    [
      Config.label c.Serve.config;
      Printf.sprintf "%.4f" c.Serve.mops;
      string_of_int s.Lat.p50;
      string_of_int s.Lat.p95;
      string_of_int s.Lat.p99;
      string_of_int s.Lat.max_ns;
      string_of_int s.Lat.served;
      string_of_int s.Lat.dropped;
      (match (c.Serve.oracle, c.Serve.consistency) with
      | Ok (), Ok () -> "ok"
      | Error m, _ | _, Error m -> m);
    ]
  in
  Render.table
    ~title:
      "Serving benchmark: throughput and request latency (simulated ns)\n\
       per (scheme x shards x batch) cell"
    ~header (List.map row cells)
