type reshard = Split | Merge

type t = {
  groups : int;
  replicas : int;
  reshard : reshard option;
}

let make ?(replicas = 0) ?reshard groups =
  if groups < 1 then invalid_arg "Topology: groups must be >= 1";
  if replicas < 0 then invalid_arg "Topology: replicas must be >= 0";
  (match reshard with
  | Some Merge when groups < 2 ->
      invalid_arg "Topology: merge needs at least 2 groups"
  | _ -> ());
  { groups; replicas; reshard }

let static n = make n
let replicated ~replicas n = make ~replicas n
let with_reshard r t = make ~replicas:t.replicas ~reshard:r t.groups

let name t =
  Printf.sprintf "s%d%s%s" t.groups
    (if t.replicas > 0 then Printf.sprintf "r%d" t.replicas else "")
    (match t.reshard with
    | None -> ""
    | Some Split -> "sp"
    | Some Merge -> "mg")

let of_name s =
  let grammar = "expected s<groups>[r<replicas>][sp|mg], e.g. s4, s4r1, s4sp" in
  let fail () = Error (Printf.sprintf "bad topology %S: %s" s grammar) in
  let n = String.length s in
  let digits i =
    let j = ref i in
    while !j < n && s.[!j] >= '0' && s.[!j] <= '9' do incr j done;
    if !j = i then None else Some (int_of_string (String.sub s i (!j - i)), !j)
  in
  if n = 0 || s.[0] <> 's' then fail ()
  else
    match digits 1 with
    | None -> fail ()
    | Some (groups, i) -> (
        let replicas, i =
          if i < n && s.[i] = 'r' then
            match digits (i + 1) with
            | Some (r, j) -> (r, j)
            | None -> (-1, i)
          else (0, i)
        in
        if replicas < 0 then fail ()
        else
          let reshard, i =
            if i + 2 <= n && String.sub s i 2 = "sp" then (Some Split, i + 2)
            else if i + 2 <= n && String.sub s i 2 = "mg" then (Some Merge, i + 2)
            else (None, i)
          in
          if i <> n then fail ()
          else
            match make ~replicas ?reshard groups with
            | t -> Ok t
            | exception Invalid_argument m -> Error m)

let machines t = t.groups * (1 + t.replicas)
let detect_ns = 2_000
let migrate_ns ~records = 40 * records
