open Ido_util
open Ido_workloads

type crash_plan = {
  shard : int;
  at_request : int;
  after_ns : int;
}

type event =
  | Crash of crash_plan
  | Crash_at of { group : int; at_ns : int }
  | Replica_loss of { group : int; at_ns : int }

type t = {
  label : string;
  detect_ns : int;
  events : event list;
}

let none = { label = "none"; detect_ns = Topology.detect_ns; events = [] }

let of_crash pl =
  { label = "crash1"; detect_ns = Topology.detect_ns; events = [ Crash pl ] }

(* The deterministic mid-stream crash point, verbatim from the PR-5
   [Serve.default_crash]: pick the group from the seed, crash in the
   batch around the middle of its sub-stream.  Sub-stream lengths come
   from the plan — nothing is generated.  If the seeded group happens
   to own no requests, fall back to the busiest one so the crash
   always lands. *)
let default_crash_plan (config : Config.t) =
  let w = Workload.get config.Config.workload in
  let plan =
    Gen.plan config ~key_range:w.Workload.request.Workload.key_range
  in
  let rng = Rng.create (config.Config.seed lxor 0x5eed) in
  let shard = ref (Rng.int rng (Config.shards config)) in
  if Gen.shard_count plan !shard = 0 then begin
    for s = 0 to Config.shards config - 1 do
      if Gen.shard_count plan s > Gen.shard_count plan !shard then shard := s
    done
  end;
  let len = Gen.shard_count plan !shard in
  { shard = !shard; at_request = len / 2; after_ns = 400 }

let single_crash config = of_crash (default_crash_plan config)

let mid_stream (c : Config.t) = c.Config.requests * c.Config.period_ns / 2

let storm ?k ?at_ns (c : Config.t) =
  let groups = Config.shards c in
  let k = match k with Some k -> k | None -> max 1 (groups / 2) in
  if k < 1 || k > groups then
    invalid_arg
      (Printf.sprintf "Fault.storm: k must be in [1, %d] (got %d)" groups k);
  let at_ns = match at_ns with Some t -> t | None -> mid_stream c in
  (* Seeded k-of-N draw without replacement: shuffle the group indices
     with the cell seed (distinct salt from every other consumer) and
     take the first k, reported in ascending order. *)
  let rng = Rng.create (c.Config.seed lxor 0x570_07) in
  let idx = Array.init groups Fun.id in
  for i = groups - 1 downto 1 do
    let j = Rng.int rng (i + 1) in
    let t = idx.(i) in
    idx.(i) <- idx.(j);
    idx.(j) <- t
  done;
  let hit = List.sort Int.compare (Array.to_list (Array.sub idx 0 k)) in
  {
    label = Printf.sprintf "storm%d" k;
    detect_ns = Topology.detect_ns;
    events = List.map (fun g -> Crash_at { group = g; at_ns }) hit;
  }

let replica_loss ?at_ns ~group (c : Config.t) =
  let at_ns = match at_ns with Some t -> t | None -> mid_stream c in
  {
    label = "rloss";
    detect_ns = Topology.detect_ns;
    events = [ Replica_loss { group; at_ns } ];
  }

let combine ~label = function
  | [] -> { none with label }
  | first :: _ as ts ->
      {
        label;
        detect_ns = first.detect_ns;
        events = List.concat_map (fun t -> t.events) ts;
      }

let validate (c : Config.t) t =
  let groups = Config.shards c in
  let check what g =
    if g < 0 || g >= groups then
      invalid_arg
        (Printf.sprintf
           "Fault %s: %s names group %d outside the topology's [0, %d)"
           t.label what g groups)
  in
  List.iter
    (function
      | Crash pl -> check "crash" pl.shard
      | Crash_at { group; _ } -> check "storm member" group
      | Replica_loss { group; _ } -> check "replica loss" group)
    t.events
