open Ido_workloads
module Q = Stdlib.Queue
module Vm = Ido_vm.Vm
module Pmem = Ido_nvm.Pmem

type outcome = {
  group : int;
  served : int;
  replayed : int;
  dropped : int;
  lat : Lat.t;
  busy_until : int;
  sim_ns : int;
  replica_ns : int;
  crashes : int;
  failovers : int;
  replicas_lost : int;
  split_off : bool;
  merged_away : bool;
  recovery_ns : int;
  unavail_ns : int;
  max_stall_ns : int;
  oracle : (unit, string) result;
  consistency : (unit, string) result;
}

(* A machine serves millions of one-request threads, so the
   benchmark-sized per-thread logs would exhaust persistent memory:
   shrink the log capacities to what a single request can need and
   give the region 4M words.  [reap] between batches recycles the
   finished threads' stacks and log arenas, so the footprint tracks
   the batch size, not the requests served. *)
let vm_config (c : Config.t) ~seed =
  let base = Vm.config c.Config.scheme in
  {
    base with
    Vm.seed;
    opt = c.Config.opt;
    pmem_words = 1 lsl 22;
    undo_cap = 1 lsl 7;
    redo_cap = 1 lsl 7;
    page_cap = 8;
  }

let mem_of m =
  let pm = Vm.pmem m in
  { Oracle.load = Pmem.load pm; size = Pmem.size pm }

let oracle_mode (c : Config.t) =
  match c.Config.scheme with
  | Ido_runtime.Scheme.Origin -> Oracle.Prefix
  | _ -> Oracle.Atomic

(* One VM plus the counter snapshot its observation sink reconciles
   against.  Primaries, replicas and split children are all machines;
   they differ only in seed salt and in who charges their work. *)
type machine = {
  vm : Vm.t;
  sink : Ido_obs.Obs.t option;
  stores0 : int;
  writebacks0 : int;
  fences0 : int;
  evictions0 : int;
}

let boot ~obs (c : Config.t) ~seed program =
  let m = Vm.create (vm_config c ~seed) program in
  ignore (Vm.spawn m ~fname:"init" ~args:[]);
  (match Vm.run m with
  | `Idle -> ()
  | _ -> failwith "Serve: init phase did not finish");
  Vm.flush_all m;
  (* Observed window: everything after durable setup, exactly the
     [Engine.run_traced] protocol — counters snapshotted here, sink
     detached only after the machine's final [flush_all]. *)
  let c0 = Pmem.counters (Vm.pmem m) in
  let sink =
    if obs then begin
      let s = Ido_obs.Obs.create ~buffer:false () in
      Vm.set_obs m (Some s);
      Some s
    end
    else None
  in
  {
    vm = m;
    sink;
    stores0 = c0.Pmem.stores;
    writebacks0 = c0.Pmem.writebacks;
    fences0 = c0.Pmem.fences;
    evictions0 = c0.Pmem.evictions;
  }

(* A dead machine is discarded without checks — its image is the one
   the replica replaced; only the sink must stop watching it. *)
let drop_machine mc =
  match mc.sink with Some _ -> Vm.set_obs mc.vm None | None -> ()

(* Final flush + obs reconciliation + oracle on a machine leaving
   service (stream end, or a merge retiring its station early). *)
let retire_machine ~config ~oracle mc =
  Vm.flush_all mc.vm;
  let consistency =
    match mc.sink with
    | None -> Ok ()
    | Some s ->
        Vm.set_obs mc.vm None;
        let cts = Pmem.counters (Vm.pmem mc.vm) in
        Ido_obs.Obs.check s
          ~stores:(cts.Pmem.stores - mc.stores0)
          ~writebacks:(cts.Pmem.writebacks - mc.writebacks0)
          ~fences:(cts.Pmem.fences - mc.fences0)
          ~evictions:(cts.Pmem.evictions - mc.evictions0)
  in
  let root = Ido_region.Region.get_root (Vm.region mc.vm) 0 in
  let o = Oracle.check oracle ~mode:(oracle_mode config) ~root (mem_of mc.vm) in
  (o, consistency)

type station = {
  home : int;  (** the group whose outcome owns this station's counters *)
  mutable prim : machine;
  mutable reps : machine list;
  mutable busy : int;
  mutable sim_ns : int;
  mutable replica_ns : int;
  mutable crashes : int;
  mutable failovers : int;
  mutable replicas_lost : int;
  mutable recovery_ns : int;
  mutable unavail_ns : int;
  mutable max_stall_ns : int;
  mutable timed : Fault.event list;  (** pending wall-clock events, ascending *)
  mutable retired : bool;
  mutable checks : ((unit, string) result * (unit, string) result) list;
}

let stall st ns =
  st.unavail_ns <- st.unavail_ns + ns;
  if ns > st.max_stall_ns then st.max_stall_ns <- ns

let event_at = function
  | Fault.Crash_at { at_ns; _ } | Fault.Replica_loss { at_ns; _ } -> at_ns
  | Fault.Crash _ -> assert false

type lane = {
  gid : int;
  mutable station : station;
  mutable filter : Gen.request -> bool;
  pending : Gen.request Q.t;
  mutable served : int;
  mutable replayed : int;
  mutable dropped : int;
  lane_lat : Lat.t;
}

(* Per-group context: the shared stream the group's lanes pull from,
   the request-indexed crash events (the fired flag is shared so a
   crash lands exactly once even after a split), and the reshard
   state. *)
type gctx = {
  gid : int;
  stream : Gen.stream;
  mutable lanes : lane list;  (** routing order: new request goes to
                                  the first lane whose filter takes it *)
  mutable crash_req : (Fault.crash_plan * bool ref) list;
  mutable split_at : int option;  (** sub-stream index triggering a split *)
  mutable split_done : bool;
  mutable merge_at : int option;  (** wall ns; set on the cold group *)
  mutable merged : bool;
  mutable stations : station list;  (** homed here, creation order *)
}

(* Pull from the group's shared stream until this lane's queue has a
   head (each pulled request is routed to the lane that owns its key
   half).  Pre-split there is one lane and this is [Gen.peek]. *)
let rec lane_peek (g : gctx) (ln : lane) =
  if not (Q.is_empty ln.pending) then Some (Q.peek ln.pending)
  else
    match Gen.next g.stream with
    | None -> None
    | Some r ->
        let target = List.find (fun l -> l.filter r) g.lanes in
        Q.push r target.pending;
        lane_peek g ln

let spawn_batch vm (batch : Gen.request array) =
  Array.map
    (fun (r : Gen.request) ->
      Vm.spawn vm ~fname:"request"
        ~args:
          [
            Int64.of_int r.Gen.dice;
            Int64.of_int r.Gen.key;
            Int64.of_int r.Gen.value;
          ])
    batch

(* Replication is asynchronous: an acknowledged batch is applied to
   each warm replica off the serving clock, so it costs [replica_ns]
   (real machine time) but never moves the station's busy horizon. *)
let apply_on_replicas st batch =
  List.iter
    (fun rep ->
      Vm.reap rep.vm;
      let b0 = Vm.clock rep.vm in
      ignore (spawn_batch rep.vm batch : Vm.thread array);
      (match Vm.run rep.vm with
      | `Idle -> ()
      | _ -> failwith "Serve: replica batch did not finish");
      st.replica_ns <- st.replica_ns + (Vm.clock rep.vm - b0))
    st.reps

(* Lose the most recently attached replica; no clock effect — the
   loss only narrows the failover options. *)
let lose_replica st =
  let rec split_last = function
    | [] -> None
    | [ x ] -> Some ([], x)
    | x :: tl -> (
        match split_last tl with
        | Some (pre, l) -> Some (x :: pre, l)
        | None -> None)
  in
  match split_last st.reps with
  | None -> ()
  | Some (keep, lost) ->
      drop_machine lost;
      st.reps <- keep;
      st.replicas_lost <- st.replicas_lost + 1

(* The machine stopped at [crash_clock] mid-batch (power fail).  With
   no replica: the PR-5 path — count threads that recorded their
   observation as served, drop the rest, recover in place, charge the
   recovery horizon.  With a warm replica: discard the dead primary,
   promote after [detect_ns], and replay the whole unacknowledged
   batch on the promoted machine — everything serves, nothing drops,
   and the stall is detection plus the replay span. *)
let crash_mid_batch ~detect_ns ~t0 ~base ~batch ~threads st (ln : lane) =
  let crash_clock = Vm.clock st.prim.vm in
  let t_crash = t0 + (crash_clock - base) in
  st.crashes <- st.crashes + 1;
  if st.reps = [] then begin
    Array.iteri
      (fun k th ->
        let r = batch.(k) in
        if Vm.observations th <> [] then begin
          let finish = t0 + (Vm.thread_clock th - base) in
          Lat.add ln.lane_lat (finish - r.Gen.arrival);
          ln.served <- ln.served + 1
        end
        else ln.dropped <- ln.dropped + 1)
      threads;
    Vm.crash st.prim.vm;
    let stats = Vm.recover st.prim.vm in
    let rec_ns = stats.Ido_vm.Recover.simulated_time in
    st.recovery_ns <- st.recovery_ns + rec_ns;
    st.sim_ns <- st.sim_ns + (crash_clock - base) + rec_ns;
    st.busy <- t_crash + rec_ns;
    stall st rec_ns
  end
  else begin
    ignore (threads : Vm.thread array);
    drop_machine st.prim;
    let promoted = List.hd st.reps in
    st.reps <- List.tl st.reps;
    st.prim <- promoted;
    st.failovers <- st.failovers + 1;
    let promo = t_crash + detect_ns in
    Vm.reap promoted.vm;
    let base' = Vm.clock promoted.vm in
    let threads' = spawn_batch promoted.vm batch in
    (match Vm.run promoted.vm with
    | `Idle -> ()
    | _ -> failwith "Serve: failover replay did not finish");
    Array.iteri
      (fun k th ->
        let r = batch.(k) in
        let finish = promo + (Vm.thread_clock th - base') in
        Lat.add ln.lane_lat (finish - r.Gen.arrival);
        ln.served <- ln.served + 1;
        ln.replayed <- ln.replayed + 1)
      threads';
    let end' = Vm.clock promoted.vm in
    st.sim_ns <- st.sim_ns + (crash_clock - base) + (end' - base');
    st.busy <- promo + (end' - base');
    stall st (st.busy - t_crash);
    (* The replayed batch is acknowledged now: surviving replicas
       apply it like any other. *)
    apply_on_replicas st batch
  end

(* A wall-clock crash landing while the station is idle (between
   batches, or after its stream drained). *)
let crash_idle ~detect_ns ~at st =
  st.crashes <- st.crashes + 1;
  if st.reps = [] then begin
    Vm.crash st.prim.vm;
    let stats = Vm.recover st.prim.vm in
    let rec_ns = stats.Ido_vm.Recover.simulated_time in
    st.recovery_ns <- st.recovery_ns + rec_ns;
    st.sim_ns <- st.sim_ns + rec_ns;
    st.busy <- max st.busy at + rec_ns;
    stall st rec_ns
  end
  else begin
    drop_machine st.prim;
    st.prim <- List.hd st.reps;
    st.reps <- List.tl st.reps;
    st.failovers <- st.failovers + 1;
    st.busy <- max st.busy at + detect_ns;
    stall st detect_ns
  end

let apply_timed_event ~detect_ns st = function
  | Fault.Crash_at { at_ns; _ } -> crash_idle ~detect_ns ~at:at_ns st
  | Fault.Replica_loss _ -> lose_replica st
  | Fault.Crash _ -> assert false

let complete_batch ~t0 ~base ~batch ~threads st (ln : lane) =
  Array.iteri
    (fun k th ->
      let r = batch.(k) in
      let finish = t0 + (Vm.thread_clock th - base) in
      Lat.add ln.lane_lat (finish - r.Gen.arrival);
      ln.served <- ln.served + 1)
    threads;
  let end_clock = Vm.clock st.prim.vm in
  st.sim_ns <- st.sim_ns + (end_clock - base);
  st.busy <- t0 + (end_clock - base);
  apply_on_replicas st batch

let run_unit ?(obs = false) ~fault ~config ~program ~oracle ~plan members =
  let c = (config : Config.t) in
  let detect_ns = fault.Fault.detect_ns in
  let topo = c.Config.topology in
  let hot = Gen.hottest plan and cold = Gen.coldest plan in
  let fresh_station ~home ~prim ~reps ~busy =
    {
      home;
      prim;
      reps;
      busy;
      sim_ns = 0;
      replica_ns = 0;
      crashes = 0;
      failovers = 0;
      replicas_lost = 0;
      recovery_ns = 0;
      unavail_ns = 0;
      max_stall_ns = 0;
      timed = [];
      retired = false;
      checks = [];
    }
  in
  (* Boot every member group's station: primary (salt 0, the
     historical seed) then each replica (salt 2+i).  Lane order and
     station order are the member order — deterministic. *)
  let ctxs =
    List.map
      (fun gid ->
        let prim = boot ~obs c ~seed:(Config.shard_seed c gid) program in
        let reps =
          List.init topo.Topology.replicas (fun i ->
              boot ~obs c ~seed:(Config.shard_seed ~salt:(2 + i) c gid) program)
        in
        let st =
          fresh_station ~home:gid ~prim ~reps ~busy:(Vm.clock prim.vm)
        in
        let ln =
          {
            gid;
            station = st;
            filter = (fun _ -> true);
            pending = Q.create ();
            served = 0;
            replayed = 0;
            dropped = 0;
            lane_lat = Lat.create ();
          }
        in
        let g =
          {
            gid;
            stream = Gen.sub_stream plan gid;
            lanes = [ ln ];
            crash_req = [];
            split_at =
              (if topo.Topology.reshard = Some Topology.Split && gid = hot
               then Some (Gen.shard_count plan gid / 2)
               else None);
            split_done = false;
            merge_at =
              (if topo.Topology.reshard = Some Topology.Merge && gid = cold
               then Some (Config.mid_stream_ns c)
               else None);
            merged = false;
            stations = [ st ];
          }
        in
        g)
      members
  in
  let ctx_of gid = List.find (fun g -> g.gid = gid) ctxs in
  (* Distribute this unit's fault events.  Request-indexed crashes go
     to the group context; wall-clock events to the group's (initial)
     station, sorted by instant. *)
  List.iter
    (fun ev ->
      match ev with
      | Fault.Crash pl when List.mem pl.Fault.shard members ->
          let g = ctx_of pl.Fault.shard in
          g.crash_req <- g.crash_req @ [ (pl, ref false) ]
      | (Fault.Crash_at { group; _ } | Fault.Replica_loss { group; _ })
        when List.mem group members ->
          let st = List.hd (ctx_of group).stations in
          st.timed <- st.timed @ [ ev ]
      | _ -> ())
    fault.Fault.events;
  List.iter
    (fun g ->
      List.iter
        (fun st ->
          st.timed <-
            List.stable_sort (fun a b -> compare (event_at a) (event_at b))
              st.timed)
        g.stations)
    ctxs;
  (* The live lane list, in deterministic dispatch-priority order:
     member order, split children appended as they are created. *)
  let lanes = ref (List.concat_map (fun g -> List.map (fun l -> (g, l)) g.lanes) ctxs) in
  let do_split (g : gctx) (ln : lane) =
    g.split_done <- true;
    let st = ln.station in
    let consumed = Option.get g.split_at in
    let remaining = Gen.shard_count plan g.gid - consumed in
    let si = Gen.split_info plan ~group:g.gid ~remaining in
    (* The heavier half keeps the warm machine; the lighter half's
       state (about half the records touched so far) migrates to a
       freshly booted child. *)
    let keep_bit = si.Gen.move_mass > si.Gen.stay_mass in
    let pause = Topology.migrate_ns ~records:(consumed / 2) in
    st.busy <- st.busy + pause;
    stall st pause;
    let child =
      boot ~obs c ~seed:(Config.shard_seed ~salt:8 c g.gid) program
    in
    let cst = fresh_station ~home:g.gid ~prim:child ~reps:[] ~busy:st.busy in
    g.stations <- g.stations @ [ cst ];
    ln.filter <- (fun r -> Gen.split_bit r.Gen.key = keep_bit);
    let child_lane =
      {
        gid = g.gid;
        station = cst;
        filter = (fun r -> Gen.split_bit r.Gen.key <> keep_bit);
        pending = Q.create ();
        served = 0;
        replayed = 0;
        dropped = 0;
        lane_lat = Lat.create ();
      }
    in
    (* Re-route the parent's queued requests across the two lanes,
       order preserved. *)
    let tmp = Q.create () in
    Q.transfer ln.pending tmp;
    Q.iter
      (fun r ->
        if ln.filter r then Q.push r ln.pending
        else Q.push r child_lane.pending)
      tmp;
    g.lanes <- g.lanes @ [ child_lane ];
    lanes := !lanes @ [ (g, child_lane) ]
  in
  let retire_station st =
    if not st.retired then begin
      st.retired <- true;
      st.checks <-
        st.checks
        @ List.map (retire_machine ~config:c ~oracle) (st.prim :: st.reps)
    end
  in
  let do_merge (g : gctx) (ln : lane) ~merge_at =
    g.merged <- true;
    let sc = ln.station in
    let hot_st =
      (* The hot group's current primary station: where its (first)
         lane is bound now. *)
      (List.hd (ctx_of hot).lanes).station
    in
    (* Retire the cold machine now — its image must already be
       consistent at the handoff — then charge the hot station for
       absorbing the cold group's records. *)
    retire_station sc;
    let pause = Topology.migrate_ns ~records:ln.served in
    hot_st.busy <- max hot_st.busy merge_at + pause;
    stall hot_st pause;
    hot_st.timed <-
      List.stable_sort (fun a b -> compare (event_at a) (event_at b))
        (hot_st.timed @ sc.timed);
    sc.timed <- [];
    ln.station <- hot_st
  in
  (* The dispatch loop: serve the lane whose next batch starts
     earliest.  For one lane and no faults this is exactly the
     historical per-shard loop. *)
  let continue = ref true in
  while !continue do
    let pick =
      List.fold_left
        (fun best (g, ln) ->
          match lane_peek g ln with
          | None -> best
          | Some r ->
              let t0 = max ln.station.busy r.Gen.arrival in
              (match best with
              | Some (_, _, bt0, _) when bt0 <= t0 -> best
              | _ -> Some (g, ln, t0, r)))
        None !lanes
    in
    match pick with
    | None -> continue := false
    | Some (g, ln, t0, head) -> (
        let st = ln.station in
        (* Events and reshards due at or before this dispatch apply
           first; each application re-runs the pick (horizons moved). *)
        match st.timed with
        | ev :: rest when event_at ev <= t0 ->
            st.timed <- rest;
            apply_timed_event ~detect_ns st ev
        | _ ->
            if
              (match g.merge_at with
              | Some m -> (not g.merged) && t0 >= m
              | None -> false)
            then do_merge g ln ~merge_at:(Option.get g.merge_at)
            else if
              (match g.split_at with
              | Some a -> (not g.split_done) && head.Gen.id >= a
              | None -> false)
            then do_split g ln
            else begin
              (* Drain up to [batch] arrived requests; the head has
                 [t0 >= arrival], so a batch is never empty. *)
              let acc = ref [] and bn = ref 0 in
              let draining = ref true in
              while !draining do
                match lane_peek g ln with
                | Some r when !bn < c.Config.batch && r.Gen.arrival <= t0 ->
                    ignore (Q.pop ln.pending);
                    acc := r :: !acc;
                    incr bn
                | _ -> draining := false
              done;
              let batch = Array.of_list (List.rev !acc) in
              let max_id =
                Array.fold_left (fun a r -> max a r.Gen.id) (-1) batch
              in
              Vm.reap st.prim.vm;
              let base = Vm.clock st.prim.vm in
              let threads = spawn_batch st.prim.vm batch in
              let crash_here =
                List.find_opt
                  (fun ((pl : Fault.crash_plan), fired) ->
                    (not !fired) && max_id >= pl.Fault.at_request)
                  g.crash_req
              in
              match crash_here with
              | Some (pl, fired) ->
                  fired := true;
                  ignore (Vm.run ~until:(base + pl.Fault.after_ns) st.prim.vm);
                  crash_mid_batch ~detect_ns ~t0 ~base ~batch ~threads st ln
              | None -> (
                  (* A pending wall-clock crash strictly after [t0]
                     may land inside this batch: run up to it and
                     crash only if the batch is still in flight. *)
                  let cut =
                    match st.timed with
                    | Fault.Crash_at { at_ns; _ } :: _ -> Some at_ns
                    | _ -> None
                  in
                  match cut with
                  | Some at_ns -> (
                      match
                        Vm.run ~until:(base + (at_ns - t0)) st.prim.vm
                      with
                      | `Idle -> complete_batch ~t0 ~base ~batch ~threads st ln
                      | `Until ->
                          st.timed <- List.tl st.timed;
                          crash_mid_batch ~detect_ns ~t0 ~base ~batch ~threads
                            st ln
                      | _ -> failwith "Serve: batch deadlocked")
                  | None ->
                      (match Vm.run st.prim.vm with
                      | `Idle -> ()
                      | `Deadlock -> failwith "Serve: batch deadlocked"
                      | _ -> failwith "Serve: batch did not finish");
                      complete_batch ~t0 ~base ~batch ~threads st ln)
            end)
  done;
  (* Streams drained: leftover wall-clock events hit idle stations,
     then every surviving machine retires through the full
     flush/reconcile/oracle protocol. *)
  List.iter
    (fun g ->
      List.iter
        (fun st ->
          List.iter (apply_timed_event ~detect_ns st) st.timed;
          st.timed <- [])
        g.stations)
    ctxs;
  List.iter (fun g -> List.iter retire_station g.stations) ctxs;
  List.map
    (fun g ->
      let lat = Lat.create () in
      List.iter (fun l -> Lat.merge ~into:lat l.lane_lat) g.lanes;
      let sum f = List.fold_left (fun a l -> a + f l) 0 g.lanes in
      let stat f = List.fold_left (fun a st -> a + f st) 0 g.stations in
      let first_error pick =
        List.fold_left
          (fun acc ck ->
            match acc with Error _ -> acc | Ok () -> pick ck)
          (Ok ())
          (List.concat_map (fun st -> st.checks) g.stations)
      in
      {
        group = g.gid;
        served = sum (fun l -> l.served);
        replayed = sum (fun l -> l.replayed);
        dropped = sum (fun l -> l.dropped);
        lat;
        busy_until =
          List.fold_left (fun a st -> max a st.busy) 0 g.stations;
        sim_ns = stat (fun st -> st.sim_ns);
        replica_ns = stat (fun st -> st.replica_ns);
        crashes = stat (fun st -> st.crashes);
        failovers = stat (fun st -> st.failovers);
        replicas_lost = stat (fun st -> st.replicas_lost);
        split_off = g.split_done;
        merged_away = g.merged;
        recovery_ns = stat (fun st -> st.recovery_ns);
        unavail_ns = stat (fun st -> st.unavail_ns);
        max_stall_ns =
          List.fold_left (fun a st -> max a st.max_stall_ns) 0 g.stations;
        oracle = first_error fst;
        consistency = first_error snd;
      })
    ctxs
