open Ido_workloads
module Vm = Ido_vm.Vm
module Pmem = Ido_nvm.Pmem

type crash_plan = {
  shard : int;
  at_request : int;
  after_ns : int;
}

type outcome = {
  shard : int;
  served : int;
  dropped : int;
  lat : Lat.t;
  busy_until : int;
  sim_ns : int;
  crashed : bool;
  recovery_ns : int;
  oracle : (unit, string) result;
  consistency : (unit, string) result;
}

(* A shard machine serves millions of one-request threads, so the
   benchmark-sized per-thread logs would exhaust persistent memory:
   shrink the log capacities to what a single request can need and
   give the region 4M words.  [reap] between batches recycles the
   finished threads' stacks and log arenas, so the footprint tracks
   the batch size, not the requests served. *)
let vm_config (c : Config.t) ~shard =
  let base = Vm.config c.Config.scheme in
  {
    base with
    Vm.seed = Config.shard_seed c shard;
    opt = c.Config.opt;
    pmem_words = 1 lsl 22;
    undo_cap = 1 lsl 7;
    redo_cap = 1 lsl 7;
    page_cap = 8;
  }

let mem_of m =
  let pm = Vm.pmem m in
  { Oracle.load = Pmem.load pm; size = Pmem.size pm }

let oracle_mode (c : Config.t) =
  match c.Config.scheme with
  | Ido_runtime.Scheme.Origin -> Oracle.Prefix
  | _ -> Oracle.Atomic

(* Serve one shard's sub-stream to completion, pulling requests
   lazily — at most [batch] requests are ever in memory.

   Simulated wall time and the machine's internal clock are related by
   a per-batch offset: a batch dispatched at wall time [t0] starts at
   machine clock [c0] (the clock floor after reaping), so a thread
   finishing at machine clock [tc] finishes at wall [t0 + (tc - c0)].
   The offset form survives crash/recovery, where the machine clock
   rewinds to the floor while wall time keeps advancing. *)
let run ?(obs = false) ?crash ~shard ~config ~program ~oracle
    (stream : Gen.stream) =
  let c = config in
  let m = Vm.create (vm_config c ~shard) program in
  ignore (Vm.spawn m ~fname:"init" ~args:[]);
  (match Vm.run m with
  | `Idle -> ()
  | _ -> failwith "Serve: init phase did not finish");
  Vm.flush_all m;
  (* Observed window: everything after durable setup, exactly the
     [Engine.run_traced] protocol — counters snapshotted here, sink
     detached only after the final [flush_all]. *)
  let c0 = Pmem.counters (Vm.pmem m) in
  let stores0 = c0.Pmem.stores
  and writebacks0 = c0.Pmem.writebacks
  and fences0 = c0.Pmem.fences
  and evictions0 = c0.Pmem.evictions in
  let sink =
    if obs then begin
      let s = Ido_obs.Obs.create ~buffer:false () in
      Vm.set_obs m (Some s);
      Some s
    end
    else None
  in
  let lat = Lat.create () in
  let served = ref 0 and dropped = ref 0 in
  let busy = ref (Vm.clock m) in
  let crashed = ref false and recovery_ns = ref 0 in
  let sim_total = ref 0 in
  let continue = ref true in
  while !continue do
    match Gen.peek stream with
    | None -> continue := false
    | Some first ->
        let t0 = max !busy first.Gen.arrival in
        (* Drain up to [batch] requests that have arrived by [t0]; the
           head has (t0 >= its arrival), so a batch is never empty. *)
        let start_idx = first.Gen.id in
        let acc = ref [] and bn = ref 0 in
        let draining = ref true in
        while !draining do
          match Gen.peek stream with
          | Some r when !bn < c.Config.batch && r.Gen.arrival <= t0 ->
              ignore (Gen.next stream);
              acc := r :: !acc;
              incr bn
          | _ -> draining := false
        done;
        let batch = Array.of_list (List.rev !acc) in
        let end_idx = start_idx + Array.length batch in
        Vm.reap m;
        let base_clock = Vm.clock m in
        let threads =
          Array.map
            (fun r ->
              Vm.spawn m ~fname:"request"
                ~args:
                  [
                    Int64.of_int r.Gen.dice;
                    Int64.of_int r.Gen.key;
                    Int64.of_int r.Gen.value;
                  ])
            batch
        in
        let crash_here =
          match crash with
          | Some (pl : crash_plan)
            when (not !crashed)
                 && pl.shard = shard
                 && pl.at_request >= start_idx
                 && pl.at_request < end_idx ->
              Some pl
          | _ -> None
        in
        (match crash_here with
        | None ->
            (match Vm.run m with
            | `Idle -> ()
            | `Deadlock -> failwith "Serve: batch deadlocked"
            | _ -> failwith "Serve: batch did not finish");
            Array.iteri
              (fun k th ->
                let r = batch.(k) in
                let finish = t0 + (Vm.thread_clock th - base_clock) in
                Lat.add lat (finish - r.Gen.arrival);
                incr served)
              threads;
            let end_clock = Vm.clock m in
            sim_total := !sim_total + (end_clock - base_clock);
            busy := t0 + (end_clock - base_clock)
        | Some pl ->
            (* Power-fail [after_ns] into this batch.  Requests whose
               thread already recorded its observation completed and
               count toward the latency stream; the rest are dropped.
               Recovery time is added to the shard's busy horizon —
               subsequent arrivals queue behind it. *)
            crashed := true;
            ignore (Vm.run ~until:(base_clock + pl.after_ns) m);
            let crash_clock = Vm.clock m in
            Array.iteri
              (fun k th ->
                let r = batch.(k) in
                if Vm.observations th <> [] then begin
                  let finish = t0 + (Vm.thread_clock th - base_clock) in
                  Lat.add lat (finish - r.Gen.arrival);
                  incr served
                end
                else incr dropped)
              threads;
            Vm.crash m;
            let stats = Vm.recover m in
            let rec_ns = stats.Ido_vm.Recover.simulated_time in
            recovery_ns := !recovery_ns + rec_ns;
            sim_total := !sim_total + (crash_clock - base_clock) + rec_ns;
            busy := t0 + (crash_clock - base_clock) + rec_ns)
  done;
  Vm.flush_all m;
  let consistency =
    match sink with
    | None -> Ok ()
    | Some s ->
        Vm.set_obs m None;
        let cts = Pmem.counters (Vm.pmem m) in
        Ido_obs.Obs.check s
          ~stores:(cts.Pmem.stores - stores0)
          ~writebacks:(cts.Pmem.writebacks - writebacks0)
          ~fences:(cts.Pmem.fences - fences0)
          ~evictions:(cts.Pmem.evictions - evictions0)
  in
  let root = Ido_region.Region.get_root (Vm.region m) 0 in
  let oracle = Oracle.check oracle ~mode:(oracle_mode c) ~root (mem_of m) in
  {
    shard;
    served = !served;
    dropped = !dropped;
    lat;
    busy_until = !busy;
    sim_ns = !sim_total;
    crashed = !crashed;
    recovery_ns = !recovery_ns;
    oracle;
    consistency;
  }
