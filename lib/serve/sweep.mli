(** A declarative serve sweep: the cross product of scheme, topology
    and batch lists over one stream shape.

    This replaces the grid that was hardcoded in the bench CLI — the
    default sweep reproduces it exactly: [ido, justdo] x [s1, s4] x
    [b1, b8].  The CLI's [--schemes]/[--topologies]/[--batches] flags
    and the storm/full-scale variants all build values of this type,
    so every consumer enumerates cells in the same deterministic
    scheme -> topology -> batch order. *)

open Ido_runtime

type t = {
  workload : string;
  seed : int;
  requests : int;
  period_ns : int;
  zipf : float option;
  opt : bool;
  schemes : Scheme.t list;
  topologies : Topology.t list;
  batches : int list;
}

val default : workload:string -> t
(** The historical 8-cell grid over [workload]: schemes
    [ido; justdo], topologies [s1; s4], batches [1; 8], seed 42,
    2000 requests at 1500 ns mean interarrival, Zipf 0.99, optimizer
    off.  Override fields with record update syntax. *)

val cells : t -> Config.t list
(** Every cell config, in scheme -> topology -> batch order.
    @raise Invalid_argument if any list is empty or a parameter fails
    {!Config.make} validation (bad Zipf exponent, non-positive
    counts) — the CLIs surface this as exit 2. *)
