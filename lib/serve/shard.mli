(** The elastic group runner: one or two routing groups served to
    completion on their stations (primary machine + warm replicas)
    under a {!Fault.t} scenario, with optional mid-stream resharding.

    {2 Lanes and stations}

    A {e station} is the machinery serving requests: a primary VM,
    zero or more warm replica VMs (each a machine booted from a
    replica-salted seed that applies every acknowledged batch), and a
    busy horizon in simulated wall ns.  A {e lane} is a sub-stream of
    a group's requests bound to a station: statically one lane per
    group, but a [Topology.Split] forks the hot group into two lanes
    (keys partitioned by {!Gen.split_bit}) and a [Topology.Merge]
    rebinds the cold group's lane to the hot station mid-stream.  The
    dispatch loop always serves the lane whose next batch starts
    earliest (ties to the earlier lane), which for a single fault-free
    static lane reduces exactly to the historical per-shard batch
    loop — fault-free static cells are byte-identical to PR 5.

    {2 Faults}

    [Fault.Crash] fires on the first batch containing its request
    index, [Fault.Crash_at] at its wall instant (mid-batch if a batch
    spans it, between batches otherwise; [Replica_loss] applies at the
    first batch boundary at or after its instant).  On a crash with no
    replica the machine recovers in place — in-flight requests without
    a recorded observation are dropped and the recovery horizon is
    charged to the clock (the PR-5 semantics, unchanged).  With a warm
    replica the dead primary is discarded, the replica is promoted
    after [detect_ns], and only the unacknowledged batch tail is
    replayed on it: those requests count as served {e and} replayed,
    none are dropped.  Every stall (recovery, detection + replay,
    migration pause) accumulates into the station's unavailability
    window and its maximum single stall — the numbers the SLA verdict
    in {!Report} is computed from.

    Requests are still pulled lazily (at most [Config.batch] per lane
    in memory), latencies still feed constant-memory {!Lat.t}
    sketches, and every machine keeps the full observation-sink
    reconciliation protocol, so a cell is byte-identical at every
    [-j] and [--chunk] under any scenario. *)

open Ido_workloads

type outcome = {
  group : int;  (** the routing group this row aggregates *)
  served : int;
  replayed : int;
      (** of [served]: re-executed on a promoted replica after a
          primary crash (the unacknowledged batch tail) *)
  dropped : int;
      (** in flight at an unreplicated crash — always 0 when a warm
          replica absorbed the failover *)
  lat : Lat.t;  (** latency sketch over the served requests *)
  busy_until : int;  (** wall ns when the group's stations went idle *)
  sim_ns : int;  (** primary machine time simulated (busy time) *)
  replica_ns : int;
      (** machine time spent keeping replicas warm — off the serving
          clock (replication is asynchronous) but real work *)
  crashes : int;  (** primary power-failures that hit this group *)
  failovers : int;  (** crashes absorbed by promoting a replica *)
  replicas_lost : int;
  split_off : bool;  (** a split child station was spun up *)
  merged_away : bool;
      (** the group's own station retired mid-stream and its tail was
          served by the merge target's station *)
  recovery_ns : int;  (** total in-place recovery charged to the clock *)
  unavail_ns : int;
      (** total unavailability: recovery + detection/replay +
          migration pauses *)
  max_stall_ns : int;
      (** the largest single stall — what the SLA verdict compares
          against the p99 budget *)
  oracle : (unit, string) result;
      (** first failure over every machine retired for this group:
          [Atomic] for instrumented schemes, [Prefix] for Origin *)
  consistency : (unit, string) result;
      (** first {!Ido_obs.Obs.check} reconciliation failure over those
          machines; trivially [Ok] without sinks *)
}

val run_unit :
  ?obs:bool ->
  fault:Fault.t ->
  config:Config.t ->
  program:Ido_ir.Ir.program ->
  oracle:Oracle.impl ->
  plan:Gen.plan ->
  int list ->
  outcome list
(** [run_unit groups] serves the listed routing groups together to
    completion and returns one outcome per group, in input order.
    Groups that never interact are singleton units; [Serve.run_cell]
    puts a [Topology.Merge]'s hot and cold groups in one unit because
    the cold lane rebinds to the hot station mid-stream.  Only fault
    events naming a member group apply.  The caller passes the
    already-forced [program] (lazy forcing is not domain-safe), the
    workload's oracle, and the cell [plan]; each lane's stream is
    created here, on the consuming domain. *)
