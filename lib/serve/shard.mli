(** One shard: a private machine serving its key-partition of the
    request stream under the configured scheme.

    Requests are pulled lazily from the shard's {!Gen.stream} — at
    most [Config.batch] are in memory at once.  Each queued batch (up
    to [Config.batch] arrived requests) is dispatched as one thread
    per request via the workload's [request(dice, key, value)] entry
    point; {!Ido_vm.Vm.reap} runs between batches, recycling the
    finished threads' stacks and log arenas so both scheduling and
    memory stay proportional to the batch size, not to the requests
    served so far.  Latencies feed a constant-memory {!Lat.t} sketch.
    Request latency is [finish - arrival] in simulated wall ns, where
    a batch dispatched at wall time [max busy arrival] maps machine
    clocks through a per-batch offset (the mapping survives
    crash/recovery). *)

open Ido_workloads

type crash_plan = {
  shard : int;  (** which shard power-fails *)
  at_request : int;
      (** index {e within that shard's sub-stream}: the crash hits the
          batch containing this request *)
  after_ns : int;  (** simulated ns into that batch *)
}

type outcome = {
  shard : int;
  served : int;
  dropped : int;  (** requests in flight at the crash *)
  lat : Lat.t;  (** latency sketch over the served requests *)
  busy_until : int;  (** wall ns when the shard went idle *)
  sim_ns : int;  (** machine time actually simulated (busy time) *)
  crashed : bool;
  recovery_ns : int;
  oracle : (unit, string) result;
      (** structure validation on the final image: [Atomic] for every
          instrumented scheme, [Prefix] for Origin *)
  consistency : (unit, string) result;
      (** {!Ido_obs.Obs.check} reconciliation; trivially [Ok] when the
          shard ran without a sink *)
}

val run :
  ?obs:bool ->
  ?crash:crash_plan ->
  shard:int ->
  config:Config.t ->
  program:Ido_ir.Ir.program ->
  oracle:Oracle.impl ->
  Gen.stream ->
  outcome
(** Serve the (arrival-ordered) sub-stream to completion.  With
    [?obs], an unbuffered sink watches everything after durable setup
    and is reconciled against the pmem counters after the final flush.
    A [crash] plan naming a different shard is ignored.  The caller
    passes the already-forced [program] (lazy forcing is not
    domain-safe) and the workload's oracle. *)
