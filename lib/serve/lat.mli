(** Latency accounting: nearest-rank percentiles over simulated-ns
    request latencies. *)

type stats = {
  served : int;
  dropped : int;  (** requests lost to a mid-batch crash *)
  mean_ns : float;
  p50 : int;
  p95 : int;
  p99 : int;
  max_ns : int;
}

val percentile : int array -> float -> int
(** [percentile sorted q] on an {e ascending} array: nearest-rank,
    i.e. the element at index [ceil (q/100 * n) - 1] (clamped).
    0 on an empty array. *)

val of_latencies : ?dropped:int -> int array -> stats
(** Sorts a copy; the input order does not matter. *)

val json_fields : stats -> string
(** Stable JSON fragment (no braces). *)
