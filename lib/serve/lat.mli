(** Latency accounting in constant memory: an HDR-histogram-style
    log-bucketed quantile sketch, plus the exact nearest-rank
    reference it is tested against.

    The sketch keeps one integer counter per bucket — values below
    128 exactly, then 64 sub-buckets per power-of-two octave — about
    3.6k counters total regardless of how many samples are added.
    Any reported quantile is within relative error {!relative_error}
    (1/64, < 1.6%) of the exact nearest-rank value; [max_ns] is
    exact, and [mean_ns] is computed from an exact running sum.
    Sketches merge by bucket-wise addition, so per-shard sketches
    combine into the cell sketch without retaining samples. *)

type stats = {
  served : int;
  dropped : int;  (** requests lost to a mid-batch crash *)
  mean_ns : float;
  p50 : int;
  p95 : int;
  p99 : int;
  max_ns : int;
}

type t
(** The sketch.  Single-owner mutable state (per shard, then merged);
    ~3.6k words, independent of sample count. *)

val create : unit -> t

val add : t -> int -> unit
(** Record one latency (negative values clamp to 0). *)

val merge : into:t -> t -> unit
(** [merge ~into src] adds [src]'s samples to [into] (bucket-wise;
    exact — merging loses nothing over adding directly). *)

val count : t -> int
(** Samples added so far. *)

val percentile_sketch : t -> float -> int
(** Nearest-rank quantile from the buckets: the reported value [r]
    satisfies [exact <= r <= exact * (1 + relative_error)] where
    [exact] is {!percentile} of the same samples.  Exact whenever the
    rank falls in a unit bucket (values < 128) or on the observed
    maximum.  0 when empty. *)

val relative_error : float
(** Worst-case relative over-report of {!percentile_sketch}: 1/64. *)

val stats : ?dropped:int -> t -> stats
(** Quantiles from the sketch, mean from the exact sum.  All zero
    when empty; exact at [count = 1]. *)

val percentile : int array -> float -> int
(** [percentile sorted q] on an {e ascending} array: nearest-rank,
    i.e. the element at index [ceil (q/100 * n) - 1] (clamped).
    0 on an empty array.  The reference for the sketch tests. *)

val of_latencies : ?dropped:int -> int array -> stats
(** Exact stats from retained samples (sorts a copy; input order does
    not matter).  Test/reference path — the serve pipeline itself
    never retains samples. *)

val json_fields : stats -> string
(** Stable JSON fragment (no braces). *)
