open Ido_runtime

type t = {
  workload : string;
  scheme : Scheme.t;
  seed : int;
  topology : Topology.t;
  batch : int;
  requests : int;
  period_ns : int;
  zipf : float option;
  opt : bool;
}

let make ?(seed = 42) ?topology ?(batch = 1) ?(requests = 1000)
    ?(period_ns = 1500) ?zipf ?(opt = false) ~workload ~scheme () =
  let topology =
    match topology with Some t -> t | None -> Topology.static 1
  in
  if batch < 1 then invalid_arg "Serve: batch must be >= 1";
  if requests < 1 then invalid_arg "Serve: requests must be >= 1";
  if period_ns < 1 then invalid_arg "Serve: period_ns must be >= 1";
  (* Validate here, not deep inside Gen's first Zipf.create: a bad
     exponent is a usage error the CLIs turn into exit 2, never an
     uncaught Invalid_argument mid-sweep. *)
  (match zipf with
  | Some e when e <= 0.0 || e = 1.0 ->
      invalid_arg
        (Printf.sprintf
           "Serve: zipf exponent must be positive and not 1.0 (got %g)" e)
  | _ -> ());
  { workload; scheme; seed; topology; batch; requests; period_ns; zipf; opt }

let shards c = c.topology.Topology.groups
let mid_stream_ns c = c.requests * c.period_ns / 2

(* SplitMix64 finalizer: the avalanche keeps sibling shards' seeds
   uncorrelated even though they differ by one in the input. *)
let mix64 k =
  let ( *% ) = Int64.mul
  and ( ^> ) v s = Int64.logxor v (Int64.shift_right_logical v s) in
  let z = Int64.add k 0x9E3779B97F4A7C15L in
  let z = (z ^> 30) *% 0xBF58476D1CE4E5B9L in
  let z = (z ^> 27) *% 0x94D049BB133111EBL in
  z ^> 31

let shard_seed ?(salt = 0) c shard =
  let z = mix64 (Int64.of_int (c.seed lxor (salt * 0x9E3779B9))) in
  let z = mix64 (Int64.add z (Int64.of_int shard)) in
  Int64.to_int (Int64.logand z Int64.max_int)

let label c =
  Printf.sprintf "%s/%s %s b%d%s" c.workload (Scheme.name c.scheme)
    (Topology.name c.topology) c.batch
    (if c.opt then " opt" else "")

let json_fields c =
  Printf.sprintf
    ({|"workload":"%s","scheme":"%s","seed":%d,"topology":"%s",|}
   ^^ {|"shards":%d,"replicas":%d,"batch":%d,|}
   ^^ {|"requests":%d,"period_ns":%d,"zipf":%s,"opt":%b|})
    c.workload (Scheme.name c.scheme) c.seed
    (Topology.name c.topology)
    (shards c) c.topology.Topology.replicas c.batch c.requests c.period_ns
    (match c.zipf with None -> "null" | Some e -> Printf.sprintf "%.4f" e)
    c.opt
