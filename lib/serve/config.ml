open Ido_runtime

type t = {
  workload : string;
  scheme : Scheme.t;
  seed : int;
  shards : int;
  batch : int;
  requests : int;
  period_ns : int;
  zipf : float option;
  opt : bool;
}

let make ?(seed = 42) ?(shards = 1) ?(batch = 1) ?(requests = 1000)
    ?(period_ns = 1500) ?zipf ?(opt = false) ~workload ~scheme () =
  if shards < 1 then invalid_arg "Serve: shards must be >= 1";
  if batch < 1 then invalid_arg "Serve: batch must be >= 1";
  if requests < 1 then invalid_arg "Serve: requests must be >= 1";
  if period_ns < 1 then invalid_arg "Serve: period_ns must be >= 1";
  { workload; scheme; seed; shards; batch; requests; period_ns; zipf; opt }

let label c =
  Printf.sprintf "%s/%s s%d b%d%s" c.workload (Scheme.name c.scheme) c.shards
    c.batch
    (if c.opt then " opt" else "")

let json_fields c =
  Printf.sprintf
    ({|"workload":"%s","scheme":"%s","seed":%d,"shards":%d,"batch":%d,|}
   ^^ {|"requests":%d,"period_ns":%d,"zipf":%s,"opt":%b|})
    c.workload (Scheme.name c.scheme) c.seed c.shards c.batch c.requests
    c.period_ns
    (match c.zipf with None -> "null" | Some e -> Printf.sprintf "%.4f" e)
    c.opt
