open Ido_nvm

let magic = 0x49444F21L (* "IDO!" *)

(* Header layout (word addresses). *)
let off_magic = 0
let off_dirty = 1
let off_bump = 2
let off_free_head = 3
let off_log_head = 4
let off_alloc_count = 5
let off_roots = 8
let root_slots = 16
let heap_base = off_roots + root_slots

(* Block layout: [header: payload size in words][payload...]; free
   blocks reuse payload word 0 as the next-free link. *)

type t = { pm : Pmem.t; dirty_at_open : bool }

let persist_word pm addr =
  ignore (Pmem.clwb pm addr);
  ignore (Pmem.fence pm)

let write_persist pm addr v =
  Pmem.store pm addr v;
  persist_word pm addr

let create pm =
  if Pmem.size pm <= heap_base + 8 then
    invalid_arg "Region.create: region too small";
  Pmem.store pm off_magic magic;
  Pmem.store pm off_dirty 0L;
  Pmem.store pm off_bump (Int64.of_int heap_base);
  Pmem.store pm off_free_head 0L;
  Pmem.store pm off_log_head 0L;
  Pmem.store pm off_alloc_count 0L;
  for i = 0 to root_slots - 1 do
    Pmem.store pm (off_roots + i) 0L
  done;
  Pmem.flush_all pm;
  { pm; dirty_at_open = false }

let open_existing pm =
  if Pmem.load pm off_magic <> magic then
    invalid_arg "Region.open_existing: no region header";
  let dirty = Pmem.load pm off_dirty <> 0L in
  { pm; dirty_at_open = dirty }

let was_dirty t = t.dirty_at_open
let pmem t = t.pm

let mark_running t = write_persist t.pm off_dirty 1L
let mark_clean t = write_persist t.pm off_dirty 0L

let bump t = Int64.to_int (Pmem.load t.pm off_bump)

let set_bump t v = write_persist t.pm off_bump (Int64.of_int v)

let block_size t addr = Int64.to_int (Pmem.load t.pm (addr - 1))

(* First fit with splitting: a free block larger than the request by
   more than 2 words is split; the remainder stays on the free list. *)
let alloc t n =
  if n <= 0 then invalid_arg "Region.alloc: size must be positive";
  let pm = t.pm in
  let rec search prev cur =
    if cur = 0 then None
    else begin
      let size = block_size t cur in
      let next = Int64.to_int (Pmem.load pm cur) in
      if size >= n then Some (prev, cur, size, next) else search cur next
    end
  in
  let head = Int64.to_int (Pmem.load pm off_free_head) in
  let base =
    match search 0 head with
    | Some (prev, cur, size, next) ->
        if size > n + 2 then begin
          (* Split: the tail becomes a new free block. *)
          let tail_header = cur + n in
          let tail = tail_header + 1 in
          Pmem.store pm tail_header (Int64.of_int (size - n - 1));
          Pmem.store pm tail (Int64.of_int next);
          persist_word pm tail_header;
          persist_word pm tail;
          Pmem.store pm (cur - 1) (Int64.of_int n);
          persist_word pm (cur - 1);
          if prev = 0 then write_persist pm off_free_head (Int64.of_int tail)
          else write_persist pm prev (Int64.of_int tail)
        end
        else if prev = 0 then write_persist pm off_free_head (Int64.of_int next)
        else write_persist pm prev (Int64.of_int next);
        cur
    | None ->
        let b = bump t in
        let base = b + 1 in
        if base + n > Pmem.size pm then failwith "Region.alloc: out of memory";
        Pmem.store pm b (Int64.of_int n);
        persist_word pm b;
        set_bump t (base + n);
        base
  in
  (* Zero the payload so recovered code never sees stale bytes; direct
     initialisation, not simulated store traffic. *)
  for i = base to base + n - 1 do
    Pmem.poke pm i 0L
  done;
  let count = Pmem.load pm off_alloc_count in
  Pmem.store pm off_alloc_count (Int64.add count (Int64.of_int n));
  base

let free t addr =
  if addr <= heap_base then invalid_arg "Region.free: not a heap block";
  let pm = t.pm in
  let head = Pmem.load pm off_free_head in
  Pmem.store pm addr head;
  persist_word pm addr;
  write_persist pm off_free_head (Int64.of_int addr)

let get_root t i =
  if i < 0 || i >= root_slots then invalid_arg "Region.get_root: bad slot";
  Pmem.load t.pm (off_roots + i)

let set_root t i v =
  if i < 0 || i >= root_slots then invalid_arg "Region.set_root: bad slot";
  write_persist t.pm (off_roots + i) v

let log_head t = Pmem.load t.pm off_log_head
let set_log_head t v = write_persist t.pm off_log_head v

let words_allocated t = Int64.to_int (Pmem.load t.pm off_alloc_count)
