(** A fixed-size pool of worker domains for independent deterministic
    tasks.

    The crash-matrix explorer and the figure sweeps decompose into
    hundreds of independent simulations (each boots its own machine);
    the pool spreads them over OCaml 5 domains while keeping results
    {e deterministic}: maps return results in submission order, never
    completion order, and a serial pool ([jobs <= 1]) spawns no domains
    at all — every task runs synchronously at {!submit} on the calling
    domain, byte-identical to a plain loop.

    Tasks must not share mutable state with each other. *)

type t

val create : int -> t
(** [create jobs] starts [jobs] worker domains ([jobs > 1]), or a
    serial pool with no domains ([jobs = 1]).
    @raise Invalid_argument if [jobs < 1]. *)

val default_jobs : unit -> int
(** [Domain.recommended_domain_count ()] — the [-j] default. *)

val size : t -> int
(** The [jobs] the pool was created with. *)

type 'a future

val submit : t -> (unit -> 'a) -> 'a future
(** Enqueue a task (serial pool: run it now).  Exceptions raised by the
    task are captured and re-raised by {!await}. *)

val await : 'a future -> 'a
(** Block until the task completes; return its result or re-raise its
    exception (with the original backtrace). *)

val map_list : t -> ('a -> 'b) -> 'a list -> 'b list
(** Order-preserving parallel map: submits every element, then awaits
    in submission order.  On a serial pool this is exactly
    [List.map]. *)

val map_array : t -> ('a -> 'b) -> 'a array -> 'b array

val opt_map_list : t option -> ('a -> 'b) -> 'a list -> 'b list
(** [List.map] when the pool is [None] or serial. *)

val shutdown : t -> unit
(** Drain the queue, stop and join the workers.  Idempotent.  Further
    {!submit}s raise. *)

val with_pool : int -> (t -> 'a) -> 'a
(** [create] / run / [shutdown] (also on exception). *)
