(** A fixed-size pool of worker domains for independent deterministic
    tasks, scheduled by work stealing.

    The crash-matrix explorer, figure sweeps, fuzz campaigns and serve
    shards decompose into hundreds of independent simulations; the pool
    spreads them over OCaml 5 domains while keeping results
    {e deterministic}: maps return results in submission order, never
    completion order, and a serial pool ([jobs <= 1]) spawns no domains
    at all — every task runs synchronously at {!submit} on the calling
    domain, byte-identical to a plain loop.

    Internally every participant (the creating domain plus [jobs - 1]
    spawned workers) owns a Chase–Lev deque: lock-free push/pop for the
    owner, compare-and-set steals for everyone else, exponential
    backoff before an idle worker parks.  {!await} on the creating
    domain {e helps} — it runs queued tasks while its future is pending
    — so a pool of [jobs] computes on exactly [jobs] domains.

    Tasks must not share mutable state with each other. *)

type t

val create : int -> t
(** [create jobs] starts [jobs - 1] worker domains ([jobs > 1]; the
    creating domain is the [jobs]-th participant), or a serial pool
    with no domains ([jobs = 1]).
    @raise Invalid_argument if [jobs < 1]. *)

val default_jobs : unit -> int
(** [Domain.recommended_domain_count ()] — the [-j] default. *)

val size : t -> int
(** The [jobs] the pool was created with. *)

type 'a future

val submit : t -> (unit -> 'a) -> 'a future
(** Enqueue a task (serial pool: run it now).  Exceptions raised by the
    task are captured and re-raised by {!await}. *)

val await : 'a future -> 'a
(** Wait until the task completes; return its result or re-raise its
    exception (with the original backtrace).  On the pool's creating
    domain this runs other queued tasks while waiting. *)

val map_list : t -> ('a -> 'b) -> 'a list -> 'b list
(** Order-preserving parallel map: submits every element, then awaits
    in submission order.  On a serial pool this is exactly
    [List.map]. *)

val map_array : t -> ('a -> 'b) -> 'a array -> 'b array

val default_chunk : jobs:int -> int -> int
(** [default_chunk ~jobs n] is the batch size the chunked maps use for
    [n] elements when none is given: large enough to amortise per-task
    overhead, small enough to leave a few batches per worker for load
    balance ([~4] per participant). *)

val map_chunks : ?chunk:int -> t -> ('a -> 'b) -> 'a list -> 'b list
(** [map_chunks ~chunk pool f xs] is [map_list pool f xs] with one
    future per batch of [chunk] consecutive elements instead of one per
    element.  Results (and any exception) are delivered in submission
    order, so the output is identical at every chunk size and every
    [-j].  [chunk = 0] (the default) picks {!default_chunk}.
    @raise Invalid_argument if [chunk < 0]. *)

val opt_map_list : ?chunk:int -> t option -> ('a -> 'b) -> 'a list -> 'b list
(** [List.map] when the pool is [None] or serial; otherwise
    {!map_list} ([chunk = 1], the default), or {!map_chunks} for any
    other [chunk] ([0] = auto). *)

val shutdown : t -> unit
(** Drain the queues, stop and join the workers.  Idempotent.  Further
    {!submit}s raise. *)

val with_pool : int -> (t -> 'a) -> 'a
(** [create] / run / [shutdown] (also on exception). *)
