(* A growable array with amortised O(1) append, preserving insertion
   order.  Replaces the quadratic [xs <- xs @ [x]] accumulation pattern
   in hot paths (the VM's thread table grows by one per spawn, and the
   harness spawns a worker per measured iteration). *)

type 'a t = { mutable data : 'a array; mutable len : int }

let create () = { data = [||]; len = 0 }

let create_with ~capacity fill =
  if capacity < 0 then invalid_arg "Vec.create_with: capacity must be >= 0";
  { data = Array.make capacity fill; len = 0 }

let length v = v.len

let get v i =
  if i < 0 || i >= v.len then invalid_arg "Vec.get: index out of bounds";
  v.data.(i)

let set v i x =
  if i < 0 || i >= v.len then invalid_arg "Vec.set: index out of bounds";
  v.data.(i) <- x

let push v x =
  let cap = Array.length v.data in
  if v.len = cap then begin
    let data = Array.make (max 8 (2 * cap)) x in
    Array.blit v.data 0 data 0 v.len;
    v.data <- data
  end;
  v.data.(v.len) <- x;
  v.len <- v.len + 1

let pop v =
  if v.len = 0 then invalid_arg "Vec.pop: empty";
  v.len <- v.len - 1;
  v.data.(v.len)

let clear v =
  v.data <- [||];
  v.len <- 0

(* Like [clear] but keeps the backing storage for reuse — the arena
   paths reset per-run Vecs thousands of times per second.  Dropped
   slots are overwritten so their elements can be collected. *)
let truncate v =
  if v.len > 0 then begin
    let fill = v.data.(0) in
    for i = 0 to v.len - 1 do
      v.data.(i) <- fill
    done;
    v.len <- 0
  end

let iter f v =
  for i = 0 to v.len - 1 do
    f v.data.(i)
  done

let fold_left f acc v =
  let acc = ref acc in
  for i = 0 to v.len - 1 do
    acc := f !acc v.data.(i)
  done;
  !acc

let exists p v =
  let rec go i = i < v.len && (p v.data.(i) || go (i + 1)) in
  go 0

let find_opt p v =
  let rec go i =
    if i >= v.len then None
    else if p v.data.(i) then Some v.data.(i)
    else go (i + 1)
  in
  go 0

let to_list v = List.init v.len (fun i -> v.data.(i))

let filter_in_place p v =
  let keep = ref 0 in
  for i = 0 to v.len - 1 do
    let x = v.data.(i) in
    if p x then begin
      v.data.(!keep) <- x;
      incr keep
    end
  done;
  (* Release dropped elements so they can be collected. *)
  if !keep > 0 then
    for i = !keep to v.len - 1 do
      v.data.(i) <- v.data.(0)
    done
  else v.data <- [||];
  v.len <- !keep
