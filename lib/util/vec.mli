(** Growable array with amortised O(1) append, preserving insertion
    order (iteration visits elements oldest first, exactly like the
    append-at-tail lists it replaces). *)

type 'a t

val create : unit -> 'a t

val create_with : capacity:int -> 'a -> 'a t
(** [create_with ~capacity fill] pre-sizes the backing array to
    [capacity] slots (filled with [fill], length still 0), avoiding
    growth doublings when the final size is known from metadata. *)

val length : 'a t -> int

val get : 'a t -> int -> 'a
(** @raise Invalid_argument out of bounds. *)

val set : 'a t -> int -> 'a -> unit
(** Overwrite an existing slot.
    @raise Invalid_argument out of bounds. *)

val push : 'a t -> 'a -> unit
(** Append at the tail. *)

val pop : 'a t -> 'a
(** Remove and return the last element.
    @raise Invalid_argument when empty. *)

val clear : 'a t -> unit
(** Drop every element (and the backing storage). *)

val truncate : 'a t -> unit
(** Drop every element but keep the backing storage for reuse (hot
    reset paths); dropped slots no longer retain their elements. *)

val iter : ('a -> unit) -> 'a t -> unit
val fold_left : ('b -> 'a -> 'b) -> 'b -> 'a t -> 'b
val exists : ('a -> bool) -> 'a t -> bool
val find_opt : ('a -> bool) -> 'a t -> 'a option
val to_list : 'a t -> 'a list

val filter_in_place : ('a -> bool) -> 'a t -> unit
(** Keep only the elements satisfying the predicate, preserving order;
    O(n), no reallocation. *)
