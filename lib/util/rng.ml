type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let create seed = { state = Int64.of_int seed }

let mix z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let next64 t =
  t.state <- Int64.add t.state golden_gamma;
  mix t.state

let split t =
  let s = next64 t in
  { state = s }

let copy t = { state = t.state }

let assign ~into src = into.state <- src.state

let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: bound must be positive";
  (* Mask to 62 bits to stay non-negative as an OCaml int. *)
  let v = Int64.to_int (Int64.shift_right_logical (next64 t) 2) in
  v mod bound

let float t bound =
  let v = Int64.to_float (Int64.shift_right_logical (next64 t) 11) in
  (* 53 significant bits, as in the reference implementation. *)
  v /. 9007199254740992.0 *. bound

let bool t = Int64.logand (next64 t) 1L = 1L

let chance t p = float t 1.0 < p
