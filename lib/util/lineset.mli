(** A reusable set of small non-negative ints (cache-line numbers).

    Replaces the per-FASE [(int, unit) Hashtbl.t] dirty-line tables in
    the VM hot loop: O(1) [add]/[mem] via open addressing, iteration in
    {e insertion order} (deterministic flush order, independent of any
    hash function's bucket layout), and an allocation-free {!reset}
    that keeps the backing storage so the structure is reused across
    FASEs. *)

type t

val create : ?capacity:int -> unit -> t
(** [create ~capacity ()] pre-sizes for about [capacity] members
    (rounded up to a power of two; default 16). *)

val add : t -> int -> unit
(** Insert a member; no-op if already present.
    @raise Invalid_argument on negative members. *)

val mem : t -> int -> bool
val cardinal : t -> int
val is_empty : t -> bool

val iter : (int -> unit) -> t -> unit
(** Visits members in insertion order. *)

val reset : t -> unit
(** Empty the set without allocating, keeping storage for reuse. *)
