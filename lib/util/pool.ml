(* A fixed-size pool of worker domains, scheduled by work stealing.

   The drivers of this repository (crash-matrix exploration, figure
   sweeps, fuzz campaigns, serve shards) decompose into many
   independent deterministic simulations; the pool runs them on OCaml 5
   domains while keeping every observable ordering identical to a
   serial run: [map_list]/[map_array]/[map_chunks] return results
   indexed by submission order, never completion order, and a serial
   pool ([jobs <= 1]) executes each task synchronously at [submit] time
   on the calling domain — byte-identical to a plain loop, including
   the interleaving of any output the tasks produce.

   Scheduling: every participant — the submitting domain plus
   [jobs - 1] spawned workers — owns a Chase–Lev deque.  The owner
   pushes and pops at the bottom without locks; idle participants steal
   from the top of a victim's deque with a single compare-and-set.
   [await] on the submitting domain {e helps}: while its future is
   pending it pops/steals tasks like any worker, so the submitter is a
   full compute participant and a pool of [jobs] uses exactly [jobs]
   domains.  Idle workers spin with exponential backoff before parking
   on a condition variable; [submit] only touches that mutex when a
   sleeper is registered, so the steady-state dispatch path is
   lock-free.

   Tasks must not share mutable state; each exploration/sweep cell
   boots (or resets) its own machine, so nothing is shared in
   practice. *)

(* ------------------------------------------------------------------ *)
(* Chase–Lev work-stealing deque.

   Single owner pushes/pops at [bottom]; any domain steals at [top].
   Slots are atomics and the buffer is published through an atomic, so
   growth is safe under the OCaml memory model: a stealer that reads a
   stale buffer still reads the element values it copied, and its
   compare-and-set on [top] arbitrates ownership of the element. *)

module Deque = struct
  type 'a buf = { slots : 'a option Atomic.t array; mask : int }

  let make_buf cap =
    { slots = Array.init cap (fun _ -> Atomic.make None); mask = cap - 1 }

  type 'a t = {
    top : int Atomic.t;
    bottom : int Atomic.t;
    buf : 'a buf Atomic.t;
  }

  let create () =
    { top = Atomic.make 0; bottom = Atomic.make 0; buf = Atomic.make (make_buf 64) }

  (* Owner only.  Copy live elements [t, b) into a doubled buffer and
     publish it; the old buffer stays valid for concurrent stealers. *)
  let grow q buf b t =
    let nbuf = make_buf (2 * (buf.mask + 1)) in
    for i = t to b - 1 do
      Atomic.set nbuf.slots.(i land nbuf.mask) (Atomic.get buf.slots.(i land buf.mask))
    done;
    Atomic.set q.buf nbuf;
    nbuf

  (* Owner only. *)
  let push q v =
    let b = Atomic.get q.bottom in
    let t = Atomic.get q.top in
    let buf = Atomic.get q.buf in
    let buf = if b - t > buf.mask then grow q buf b t else buf in
    Atomic.set buf.slots.(b land buf.mask) (Some v);
    Atomic.set q.bottom (b + 1)

  (* Owner only: LIFO pop at the bottom.  The only contended case is
     the last element, arbitrated by a compare-and-set on [top]. *)
  let pop q =
    let b = Atomic.get q.bottom - 1 in
    Atomic.set q.bottom b;
    let t = Atomic.get q.top in
    if b < t then begin
      Atomic.set q.bottom t;
      None
    end
    else begin
      let buf = Atomic.get q.buf in
      let slot = buf.slots.(b land buf.mask) in
      let v = Atomic.get slot in
      if b > t then begin
        Atomic.set slot None;
        v
      end
      else begin
        let won = Atomic.compare_and_set q.top t (t + 1) in
        Atomic.set q.bottom (t + 1);
        if won then begin
          Atomic.set slot None;
          v
        end
        else None
      end
    end

  (* Any domain: FIFO steal at the top.  [None] means "empty or lost a
     race" — in either case some other participant made progress, so
     callers just move on to the next victim. *)
  let steal q =
    let t = Atomic.get q.top in
    let b = Atomic.get q.bottom in
    if b - t <= 0 then None
    else begin
      let buf = Atomic.get q.buf in
      let v = Atomic.get buf.slots.(t land buf.mask) in
      if Atomic.compare_and_set q.top t (t + 1) then v else None
    end
end

(* ------------------------------------------------------------------ *)

type 'a state =
  | Pending
  | Done of 'a
  | Failed of exn * Printexc.raw_backtrace

type task = unit -> unit

type t = {
  jobs : int;
  deques : task Deque.t array; (* deques.(i) owned by participant i; 0 = creator *)
  mutable owners : Domain.id array; (* owners.(i) = domain that owns deques.(i) *)
  closed : bool Atomic.t;
  work_epoch : int Atomic.t; (* bumped on every submit; sleepers recheck it *)
  sleepers : int Atomic.t;
  sleep_mut : Mutex.t;
  sleep_cond : Condition.t;
  inbox : task Queue.t; (* submits from domains that own no deque *)
  inbox_mut : Mutex.t;
  inbox_size : int Atomic.t;
  mutable domains : unit Domain.t list;
}

type 'a future = {
  fmut : Mutex.t;
  fcond : Condition.t;
  cell : 'a state Atomic.t;
  origin : t option; (* the pool that will run it; [None] = already resolved *)
}

let default_jobs () = Domain.recommended_domain_count ()

let participant_index pool =
  let self = Domain.self () in
  let owners = pool.owners in
  let n = Array.length owners in
  let rec go k = if k >= n then None else if owners.(k) = self then Some k else go (k + 1) in
  go 0

let inbox_take pool =
  if Atomic.get pool.inbox_size = 0 then None
  else begin
    Mutex.lock pool.inbox_mut;
    let r = Queue.take_opt pool.inbox in
    (match r with Some _ -> Atomic.decr pool.inbox_size | None -> ());
    Mutex.unlock pool.inbox_mut;
    r
  end

(* One scheduling round for participant [i]: own deque first (LIFO),
   then steal from the others in ring order (FIFO at their top), then
   the foreign-submit inbox. *)
let take pool i =
  match Deque.pop pool.deques.(i) with
  | Some _ as r -> r
  | None ->
      let n = pool.jobs in
      let rec steal k =
        if k >= n then inbox_take pool
        else
          match Deque.steal pool.deques.((i + k) mod n) with
          | Some _ as r -> r
          | None -> steal (k + 1)
      in
      steal 1

(* Idle protocol: a few rounds of exponentially longer spins, then park.
   The epoch read before the final recheck makes the sleep race-free:
   either the sleeper sees the new work, or the submitter's epoch bump
   invalidates the wait condition. *)
let spin_rounds = 10

let worker_loop pool i =
  let rec loop spins =
    match take pool i with
    | Some task -> task (); loop 0
    | None ->
        if Atomic.get pool.closed then ()
        else if spins < spin_rounds then begin
          for _ = 1 to 1 lsl min spins 6 do
            Domain.cpu_relax ()
          done;
          loop (spins + 1)
        end
        else begin
          let epoch = Atomic.get pool.work_epoch in
          match take pool i with
          | Some task -> task (); loop 0
          | None ->
              if Atomic.get pool.closed then ()
              else begin
                Mutex.lock pool.sleep_mut;
                Atomic.incr pool.sleepers;
                while
                  Atomic.get pool.work_epoch = epoch && not (Atomic.get pool.closed)
                do
                  Condition.wait pool.sleep_cond pool.sleep_mut
                done;
                Atomic.decr pool.sleepers;
                Mutex.unlock pool.sleep_mut;
                loop 0
              end
        end
  in
  loop 0

let create jobs =
  if jobs < 1 then invalid_arg "Pool.create: jobs must be >= 1";
  let pool =
    {
      jobs;
      deques = Array.init jobs (fun _ -> Deque.create ());
      owners = [| Domain.self () |];
      closed = Atomic.make false;
      work_epoch = Atomic.make 0;
      sleepers = Atomic.make 0;
      sleep_mut = Mutex.create ();
      sleep_cond = Condition.create ();
      inbox = Queue.create ();
      inbox_mut = Mutex.create ();
      inbox_size = Atomic.make 0;
      domains = [];
    }
  in
  if jobs > 1 then begin
    let owners = Array.make jobs (Domain.self ()) in
    let domains =
      List.init (jobs - 1) (fun k -> Domain.spawn (fun () -> worker_loop pool (k + 1)))
    in
    List.iteri (fun k d -> owners.(k + 1) <- Domain.get_id d) domains;
    pool.owners <- owners;
    pool.domains <- domains
  end;
  pool

let size pool = pool.jobs

let resolved state =
  { fmut = Mutex.create (); fcond = Condition.create (); cell = Atomic.make state; origin = None }

let run_to_state f =
  match f () with
  | v -> Done v
  | exception e -> Failed (e, Printexc.get_raw_backtrace ())

let wake_sleepers pool =
  if Atomic.get pool.sleepers > 0 then begin
    Mutex.lock pool.sleep_mut;
    Condition.broadcast pool.sleep_cond;
    Mutex.unlock pool.sleep_mut
  end

let submit pool f =
  if pool.jobs <= 1 then resolved (run_to_state f)
  else begin
    if Atomic.get pool.closed then invalid_arg "Pool.submit: pool is shut down";
    let fut =
      {
        fmut = Mutex.create ();
        fcond = Condition.create ();
        cell = Atomic.make Pending;
        origin = Some pool;
      }
    in
    let task () =
      let st = run_to_state f in
      Mutex.lock fut.fmut;
      Atomic.set fut.cell st;
      Condition.broadcast fut.fcond;
      Mutex.unlock fut.fmut
    in
    (match participant_index pool with
    | Some i -> Deque.push pool.deques.(i) task
    | None ->
        Mutex.lock pool.inbox_mut;
        Queue.add task pool.inbox;
        Atomic.incr pool.inbox_size;
        Mutex.unlock pool.inbox_mut);
    Atomic.incr pool.work_epoch;
    wake_sleepers pool;
    fut
  end

let is_pending fut = match Atomic.get fut.cell with Pending -> true | _ -> false

let await fut =
  (* Help: while the future is pending, a deque-owning awaiter runs
     queued tasks instead of blocking.  When no task is runnable the
     future's own task has been claimed by another participant, so
     blocking on the condition below is deadlock-free. *)
  (match fut.origin with
  | Some pool when is_pending fut -> (
      match participant_index pool with
      | Some i ->
          let rec help () =
            if is_pending fut then
              match take pool i with
              | Some task ->
                  task ();
                  help ()
              | None -> ()
          in
          help ()
      | None -> ())
  | _ -> ());
  Mutex.lock fut.fmut;
  while is_pending fut do
    Condition.wait fut.fcond fut.fmut
  done;
  let st = Atomic.get fut.cell in
  Mutex.unlock fut.fmut;
  match st with
  | Done v -> v
  | Failed (e, bt) -> Printexc.raise_with_backtrace e bt
  | Pending -> assert false

let shutdown pool =
  if not (Atomic.get pool.closed) then begin
    Atomic.set pool.closed true;
    Mutex.lock pool.sleep_mut;
    Condition.broadcast pool.sleep_cond;
    Mutex.unlock pool.sleep_mut;
    (* Drain: the caller runs anything still queued so no submitted
       task is dropped; workers exit once every deque is empty. *)
    (match participant_index pool with
    | Some i ->
        let rec drain () =
          match take pool i with
          | Some task ->
              task ();
              drain ()
          | None -> ()
        in
        drain ()
    | None -> ());
    List.iter Domain.join pool.domains;
    pool.domains <- []
  end

let with_pool jobs f =
  let pool = create jobs in
  Fun.protect ~finally:(fun () -> shutdown pool) (fun () -> f pool)

(* Order-preserving maps.  All tasks are submitted before any await;
   results are awaited (and any exception re-raised) in submission
   order, making the result independent of completion order. *)

let map_array pool f xs =
  let futs = Array.map (fun x -> submit pool (fun () -> f x)) xs in
  Array.map await futs

let map_list pool f xs =
  List.map await (List.map (fun x -> submit pool (fun () -> f x)) xs)

(* Chunked dispatch: one future per batch of [chunk] consecutive
   elements, so per-task scheduling overhead is paid once per batch
   rather than once per element.  Results are concatenated in
   submission order, so the output is byte-identical at every chunk
   size and every [-j].  [chunk = 0] picks a size that yields a few
   batches per worker for load balance. *)

let chunks_per_job = 4

let default_chunk ~jobs n =
  if jobs <= 1 || n <= 0 then max 1 n
  else max 1 ((n + (chunks_per_job * jobs) - 1) / (chunks_per_job * jobs))

let chunks_of k xs =
  let rec go acc cur n = function
    | [] -> List.rev (if cur = [] then acc else List.rev cur :: acc)
    | x :: tl ->
        if n = k then go (List.rev cur :: acc) [ x ] 1 tl
        else go acc (x :: cur) (n + 1) tl
  in
  go [] [] 0 xs

let map_chunks ?(chunk = 0) pool f xs =
  if chunk < 0 then invalid_arg "Pool.map_chunks: chunk must be >= 0";
  if pool.jobs <= 1 then List.map f xs
  else begin
    let n = List.length xs in
    let k = if chunk = 0 then default_chunk ~jobs:pool.jobs n else chunk in
    if k >= n then List.map f xs
    else List.concat (map_list pool (List.map f) (chunks_of k xs))
  end

(* [None] means "no pool": run serially without any queue machinery. *)

let opt_map_list ?(chunk = 1) pool f xs =
  if chunk < 0 then invalid_arg "Pool.opt_map_list: chunk must be >= 0";
  match pool with
  | Some pool when pool.jobs > 1 ->
      if chunk = 1 then map_list pool f xs else map_chunks ~chunk pool f xs
  | _ -> List.map f xs
