(* A fixed-size pool of worker domains.

   The drivers of this repository (crash-matrix exploration, figure
   sweeps) decompose into many independent deterministic simulations;
   the pool runs them on OCaml 5 domains while keeping every observable
   ordering identical to a serial run: [map_list]/[map_array] return
   results indexed by submission order, never completion order, and a
   serial pool ([jobs <= 1]) executes each task synchronously at
   [submit] time on the calling domain — byte-identical to today's
   loops, including the interleaving of any output the tasks produce.

   Tasks must not share mutable state; each exploration/sweep cell
   boots its own machine, so nothing is shared in practice. *)

type 'a state =
  | Pending
  | Done of 'a
  | Failed of exn * Printexc.raw_backtrace

type 'a future = {
  fmut : Mutex.t;
  fcond : Condition.t;
  mutable state : 'a state;
}

type t = {
  jobs : int;
  mut : Mutex.t;
  nonempty : Condition.t;
  queue : (unit -> unit) Queue.t;
  mutable closed : bool;
  mutable domains : unit Domain.t list;
}

let default_jobs () = Domain.recommended_domain_count ()

let worker pool =
  let rec loop () =
    Mutex.lock pool.mut;
    while Queue.is_empty pool.queue && not pool.closed do
      Condition.wait pool.nonempty pool.mut
    done;
    match Queue.take_opt pool.queue with
    | Some task ->
        Mutex.unlock pool.mut;
        task ();
        loop ()
    | None ->
        (* closed and drained *)
        Mutex.unlock pool.mut
  in
  loop ()

let create jobs =
  if jobs < 1 then invalid_arg "Pool.create: jobs must be >= 1";
  let pool =
    {
      jobs;
      mut = Mutex.create ();
      nonempty = Condition.create ();
      queue = Queue.create ();
      closed = false;
      domains = [];
    }
  in
  if jobs > 1 then
    pool.domains <- List.init jobs (fun _ -> Domain.spawn (fun () -> worker pool));
  pool

let size pool = pool.jobs

let resolved state = { fmut = Mutex.create (); fcond = Condition.create (); state }

let run_to_state f =
  match f () with
  | v -> Done v
  | exception e -> Failed (e, Printexc.get_raw_backtrace ())

let submit pool f =
  if pool.jobs <= 1 then resolved (run_to_state f)
  else begin
    let fut = resolved Pending in
    let task () =
      let st = run_to_state f in
      Mutex.lock fut.fmut;
      fut.state <- st;
      Condition.broadcast fut.fcond;
      Mutex.unlock fut.fmut
    in
    Mutex.lock pool.mut;
    if pool.closed then begin
      Mutex.unlock pool.mut;
      invalid_arg "Pool.submit: pool is shut down"
    end;
    Queue.add task pool.queue;
    Condition.signal pool.nonempty;
    Mutex.unlock pool.mut;
    fut
  end

let is_pending fut = match fut.state with Pending -> true | _ -> false

let await fut =
  Mutex.lock fut.fmut;
  while is_pending fut do
    Condition.wait fut.fcond fut.fmut
  done;
  let st = fut.state in
  Mutex.unlock fut.fmut;
  match st with
  | Done v -> v
  | Failed (e, bt) -> Printexc.raise_with_backtrace e bt
  | Pending -> assert false

let shutdown pool =
  Mutex.lock pool.mut;
  pool.closed <- true;
  Condition.broadcast pool.nonempty;
  Mutex.unlock pool.mut;
  List.iter Domain.join pool.domains;
  pool.domains <- []

let with_pool jobs f =
  let pool = create jobs in
  Fun.protect ~finally:(fun () -> shutdown pool) (fun () -> f pool)

(* Order-preserving maps.  All tasks are submitted before any await, so
   a pool of [n] domains keeps [n] tasks in flight; results are awaited
   (and any exception re-raised) in submission order, making the result
   independent of completion order. *)

let map_array pool f xs =
  let futs = Array.map (fun x -> submit pool (fun () -> f x)) xs in
  Array.map await futs

let map_list pool f xs =
  List.map await (List.map (fun x -> submit pool (fun () -> f x)) xs)

(* [None] means "no pool": run serially without any queue machinery. *)

let opt_map_list pool f xs =
  match pool with
  | Some pool when pool.jobs > 1 -> map_list pool f xs
  | _ -> List.map f xs
