(** Integer-valued empirical distributions and their CDFs.

    Figure 8 of the paper reports cumulative dynamic distributions of
    stores per idempotent region and of live-in registers per region;
    this module is the collector behind those plots. *)

type t

val create : unit -> t

val add : ?weight:int -> t -> int -> unit
(** [add t v] records one (or [weight]) observation(s) of value [v].
    [v] must be non-negative. *)

val clear : t -> unit
(** Forget every observation, keeping the backing storage (arena-reuse
    reset path). *)

val total : t -> int
(** Number of observations recorded. *)

val count_at : t -> int -> int
(** Observations with value exactly [v]. *)

val cumulative : t -> int -> float
(** [cumulative t v] is the fraction of observations ≤ [v]
    (1.0 when the distribution is empty, matching a degenerate CDF). *)

val max_value : t -> int
(** Largest recorded value; -1 when empty. *)

val mean : t -> float

val points : t -> (int * float) list
(** CDF as a list of [(value, cumulative fraction)] for every value
    between 0 and [max_value], inclusive. *)

val percentile : t -> float -> int
(** [percentile t p] is the smallest value v with [cumulative t v >= p].
    [p] must be in (0, 1]. *)
