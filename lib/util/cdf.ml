type t = {
  mutable counts : int array;  (* counts.(v) = observations of value v *)
  mutable total : int;
  mutable max_v : int;
}

let create () = { counts = Array.make 16 0; total = 0; max_v = -1 }

let ensure t v =
  let n = Array.length t.counts in
  if v >= n then begin
    let n' = Stdlib.max (v + 1) (2 * n) in
    let a = Array.make n' 0 in
    Array.blit t.counts 0 a 0 n;
    t.counts <- a
  end

let add ?(weight = 1) t v =
  if v < 0 then invalid_arg "Cdf.add: negative value";
  if weight < 0 then invalid_arg "Cdf.add: negative weight";
  ensure t v;
  t.counts.(v) <- t.counts.(v) + weight;
  t.total <- t.total + weight;
  if v > t.max_v then t.max_v <- v

let clear t =
  Array.fill t.counts 0 (Array.length t.counts) 0;
  t.total <- 0;
  t.max_v <- -1

let total t = t.total

let count_at t v =
  if v < 0 || v > t.max_v then 0 else t.counts.(v)

let cumulative t v =
  if t.total = 0 then 1.0
  else begin
    let acc = ref 0 in
    for i = 0 to Stdlib.min v t.max_v do
      acc := !acc + t.counts.(i)
    done;
    float_of_int !acc /. float_of_int t.total
  end

let max_value t = t.max_v

let mean t =
  if t.total = 0 then 0.0
  else begin
    let acc = ref 0 in
    for i = 0 to t.max_v do
      acc := !acc + (i * t.counts.(i))
    done;
    float_of_int !acc /. float_of_int t.total
  end

let points t =
  if t.max_v < 0 then []
  else begin
    let acc = ref 0 in
    List.init (t.max_v + 1) (fun v ->
        acc := !acc + t.counts.(v);
        (v, float_of_int !acc /. float_of_int t.total))
  end

let percentile t p =
  if p <= 0.0 || p > 1.0 then invalid_arg "Cdf.percentile";
  if t.total = 0 then 0
  else begin
    let target = p *. float_of_int t.total in
    let rec go v acc =
      if v > t.max_v then t.max_v
      else begin
        let acc = acc + t.counts.(v) in
        if float_of_int acc >= target then v else go (v + 1) acc
      end
    in
    go 0 0
  end
