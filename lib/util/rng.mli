(** Deterministic pseudo-random number generation.

    All randomness in the simulator flows through this module so that
    every experiment is reproducible from a single integer seed.  The
    generator is SplitMix64 (Steele et al., OOPSLA 2014): tiny state,
    full 64-bit output, and a cheap [split] that derives independent
    streams — one per simulated thread. *)

type t

val create : int -> t
(** [create seed] makes a fresh generator from [seed]. *)

val split : t -> t
(** [split t] derives a new generator whose stream is independent of
    the remainder of [t]'s stream.  Both may be used afterwards. *)

val copy : t -> t
(** [copy t] duplicates the current state (same future stream). *)

val assign : into:t -> t -> unit
(** [assign ~into src] overwrites [into]'s state with [src]'s, so
    [into]'s future stream equals [src]'s.  Lets arena-reuse paths
    re-seed a generator in place instead of allocating a new one. *)

val next64 : t -> int64
(** Next raw 64-bit value. *)

val int : t -> int -> int
(** [int t bound] is uniform in [\[0, bound)].  [bound] must be > 0. *)

val float : t -> float -> float
(** [float t bound] is uniform in [\[0, bound)]. *)

val bool : t -> bool

val chance : t -> float -> bool
(** [chance t p] is true with probability [p]. *)
