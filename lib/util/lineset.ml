(* A reusable set of small non-negative ints (cache-line numbers),
   built for the VM's per-FASE dirty-line tracking: [add] and [mem] are
   O(1) via open addressing, iteration visits members in insertion
   order (so flush order is deterministic and independent of hashing),
   and [reset] is O(members) — it re-zeroes only the slots that were
   used, keeping both arrays for the next FASE instead of allocating.

   Slots store [line + 1] so 0 means empty; capacity is a power of two
   and doubles when load exceeds 1/2. *)

type t = {
  mutable slots : int array; (* 0 = empty, else member + 1 *)
  mutable mask : int;
  members : int Vec.t; (* insertion order *)
}

let rec pow2 n c = if c >= n then c else pow2 n (c * 2)

let create ?(capacity = 16) () =
  let cap = pow2 (max 4 capacity) 4 in
  { slots = Array.make cap 0; mask = cap - 1; members = Vec.create_with ~capacity:cap 0 }

(* SplitMix-style finaliser: line numbers are near-sequential, so a
   plain [land mask] would cluster; one multiply-shift scatters them. *)
let hash x = (x * 0x9E3779B1) lsr 8

let rec probe slots mask key i =
  let v = slots.(i) in
  if v = 0 || v = key + 1 then i else probe slots mask key ((i + 1) land mask)

let grow t =
  let cap = 2 * (t.mask + 1) in
  let slots = Array.make cap 0 in
  let mask = cap - 1 in
  Vec.iter
    (fun m -> slots.(probe slots mask m (hash m land mask)) <- m + 1)
    t.members;
  t.slots <- slots;
  t.mask <- mask

let mem t x =
  t.slots.(probe t.slots t.mask x (hash x land t.mask)) <> 0

let add t x =
  if x < 0 then invalid_arg "Lineset.add: negative member";
  let i = probe t.slots t.mask x (hash x land t.mask) in
  if t.slots.(i) = 0 then begin
    t.slots.(i) <- x + 1;
    Vec.push t.members x;
    if 2 * Vec.length t.members > t.mask then grow t
  end

let cardinal t = Vec.length t.members

let is_empty t = Vec.length t.members = 0

let iter f t = Vec.iter f t.members

let reset t =
  (* memset the whole table: capacity stays within a small factor of
     the member count, and a fill is faster than chasing probe chains
     (clearing chain slots one by one can orphan later entries). *)
  if Vec.length t.members > 0 then Array.fill t.slots 0 (t.mask + 1) 0;
  Vec.truncate t.members
