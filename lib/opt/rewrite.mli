(** Justification-carrying rewrite records.

    Every optimization the pass applies is recorded with a stable
    [O1xx] code and the CFG position it fired at — mirroring the
    linter's [L101]–[L503] table — so reports are grep-stable, the
    sweep output is byte-identical at every [-j], and a reconciliation
    failure can name the offending rewrite. *)

open Ido_ir
open Ido_analysis

type t = { code : string; func : string; pos : Ir.pos; detail : string }

val v : code:string -> func:string -> pos:Ir.pos -> string -> t

val vf :
  code:string ->
  func:string ->
  pos:Ir.pos ->
  ('a, unit, string, t) format4 ->
  'a

val to_diag : t -> Diag.t
val render : t -> string

val json : t -> string
(** One-line NDJSON via {!Diag.json} — the same shape as
    [ido_check lint --json]. *)

val compare : t -> t -> int

val codes : (string * string) list
(** The [O1xx] rewrite catalogue with one-line explanations. *)

val explain : string -> string

val delta_class : string -> string list
(** Obs-rollup fields this rewrite may decrease.  A field outside the
    union of the applied rewrites' classes must reconcile exactly
    between the base and optimized runs (evictions are globally
    exempt). *)
