open Ido_ir
open Ido_lint

(* O103: under the undo/redo/page-log disciplines
   ({!Hook_model.grant_elidable}), the first capture of a cell in a
   protection window is the one recovery uses; re-capturing the same
   stable cell before the window closes appends a duplicate log record
   the runtime itself would skip or overwrite.  We delete the adjacent
   grant hook of any [hook; store] pair whose cell is must-captured on
   every path reaching the hook ({!Capflow}).

   Soundness of batching: the first capture of a cell on any path is
   never in its own captured-before set, so it is never deleted, and
   deleting a later duplicate leaves every must-captured set
   unchanged — one Capflow computation justifies all deletions. *)

let run scheme fname (f : Ir.func) =
  if not (Hook_model.grant_elidable scheme) then (f, [])
  else
    match Hook_model.log_grant_hook scheme with
    | None -> (f, [])
    | Some grant ->
        let cap = Capflow.compute scheme f in
        let sym = Sym.create f in
        let dead = ref [] in
        Array.iteri
          (fun b (blk : Ir.block) ->
            Array.iteri
              (fun i ins ->
                match ins with
                | Ir.Hook h when h = grant -> (
                    let n = Array.length blk.Ir.instrs in
                    let next_is_store =
                      i + 1 < n
                      &&
                      match blk.Ir.instrs.(i + 1) with
                      | Ir.Store _ -> true
                      | _ -> false
                    in
                    if next_is_store then
                      let hook_pos = { Ir.blk = b; idx = i } in
                      let store_pos = { Ir.blk = b; idx = i + 1 } in
                      match Sym.resolve_store_addr sym store_pos with
                      | Some cell
                        when Sym.is_stable cell
                             && Capflow.mem cap hook_pos cell ->
                          dead :=
                            ( hook_pos,
                              Rewrite.vf ~code:"O103" ~func:fname
                                ~pos:hook_pos
                                "duplicate capture of %s elided"
                                (Analysis.cell_name cell) )
                            :: !dead
                      | _ -> ())
                | _ -> ())
              blk.Ir.instrs)
          f.Ir.blocks;
        let dead = List.rev !dead in
        if dead = [] then (f, [])
        else
          ( Analysis.delete f (List.map fst dead),
            List.map snd dead )
