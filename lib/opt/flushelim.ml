open Ido_ir
open Ido_lint
open Ido_runtime

(* O101: a durable-commit hook (lock-release boundary persist under
   Atlas/NVML, page-log commit under NVThreads) whose tracked lines
   are provably clean on every incoming path ({!Dirtyflow}) flushes
   nothing, fences for nothing, and publishes no state recovery could
   use — the VM's own [elide_clean_boundaries] fast path skips it
   dynamically; here we delete it statically, with a justification.

   Batching from one dataflow computation is sound: where [dirty_at]
   is false the commit's clearing effect is the identity, so deleting
   it leaves every remaining fact valid. *)

let applicable = function
  | Scheme.Atlas | Scheme.Nvml | Scheme.Nvthreads -> true
  | _ -> false

let run scheme fname (f : Ir.func) =
  if not (applicable scheme) then (f, [])
  else begin
    let df = Dirtyflow.compute scheme f in
    let dead = ref [] in
    Array.iteri
      (fun b (blk : Ir.block) ->
        Array.iteri
          (fun i ins ->
            match ins with
            | Ir.Hook Ir.Hdurable_commit ->
                let pos = { Ir.blk = b; idx = i } in
                if not (Dirtyflow.dirty_at df pos) then
                  dead :=
                    ( pos,
                      Rewrite.v ~code:"O101" ~func:fname ~pos
                        "durable commit over provably-clean lines elided"
                    )
                    :: !dead
            | _ -> ())
          blk.Ir.instrs)
      f.Ir.blocks;
    let dead = List.rev !dead in
    if dead = [] then (f, [])
    else (Analysis.delete f (List.map fst dead), List.map snd dead)
  end
