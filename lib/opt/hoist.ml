open Ido_ir
open Ido_lint

(* O104: a grant hook that re-captures the same stable cell on every
   loop iteration can fire once, in the loop preheader, arming the
   runtime's grant slot that the first iteration's store consumes;
   later iterations store under the first capture (the O103 argument).

   The pass is deliberately stricter than {!Capflow.classify}'s
   hoisted-grant resolution: after the move, *every* path from the
   preheader's end must reach the candidate store — with no clearing
   instruction, no other store of any kind, no other grant hook, and
   no [Ret] en route — so the armed grant is always consumed, by
   exactly that store.  Contributes-nothing paths, which the linter
   tolerates, are rejected here: they would leave a grant armed across
   program points the VM's arming discipline does not cover.  In
   practice this restricts the rewrite to do-while-shaped loops. *)

let applicable = Hook_model.grant_hoistable

(* Every path from block [b0] reaches [store] (skipping the hook being
   moved at [hook]) before any store, clearing instruction, grant
   hook, or return.  A revisited block means a cycle avoiding the
   store — reject. *)
let all_paths_consume (f : Ir.func) grant ~hook ~store b0 =
  let visited = Hashtbl.create 8 in
  let rec walk b =
    if Hashtbl.mem visited b then false
    else begin
      Hashtbl.replace visited b ();
      let blk = f.Ir.blocks.(b) in
      let n = Array.length blk.Ir.instrs in
      let rec go i =
        if i >= n then
          match blk.Ir.term with
          | Ir.Ret _ -> false
          | t -> List.for_all walk (Ir.successors t)
        else
          let pos = { Ir.blk = b; idx = i } in
          if pos = store then true
          else if pos = hook then go (i + 1)
          else
            match blk.Ir.instrs.(i) with
            | Ir.Store _ -> false
            | Ir.Hook h when h = grant -> false
            | ins when Capflow.clears ins -> false
            | _ -> go (i + 1)
      in
      go 0
    end
  in
  walk b0

let run scheme fname (f : Ir.func) =
  if not (applicable scheme) then (f, [])
  else
    match Hook_model.log_grant_hook scheme with
    | None -> (f, [])
    | Some grant ->
        let f_ref = ref f and rewrites = ref [] in
        List.iter
          (fun (l : Analysis.loop) ->
            match l.Analysis.preheader with
            | None -> ()
            | Some pre ->
                (* block indices are stable across hoists (no blocks
                   added or removed), but instruction indices are not:
                   re-derive positions and symbols from the current
                   function *)
                let f = !f_ref in
                let sym = Sym.create f in
                (* census of the loop body: clear-free, exactly one
                   grant hook, and it is adjacent to its store *)
                let grants = ref [] and clean = ref true in
                List.iter
                  (fun b ->
                    let blk = f.Ir.blocks.(b) in
                    Array.iteri
                      (fun i ins ->
                        if Capflow.clears ins then clean := false
                        else
                          match ins with
                          | Ir.Hook h when h = grant ->
                              grants := { Ir.blk = b; idx = i } :: !grants
                          | _ -> ())
                      blk.Ir.instrs)
                  l.Analysis.body;
                match (!clean, !grants) with
                | true, [ hook ] -> (
                    let blk = f.Ir.blocks.(hook.Ir.blk) in
                    let store = { hook with Ir.idx = hook.Ir.idx + 1 } in
                    let adjacent =
                      store.Ir.idx < Array.length blk.Ir.instrs
                      &&
                      match blk.Ir.instrs.(store.Ir.idx) with
                      | Ir.Store _ -> true
                      | _ -> false
                    in
                    if not adjacent then ()
                    else
                      match Sym.resolve_store_addr sym store with
                      | Some cell
                        when Sym.is_stable cell
                             && all_paths_consume f grant ~hook ~store
                                  l.Analysis.header ->
                          f_ref :=
                            Analysis.append_at_end
                              (Analysis.delete f [ hook ])
                              pre
                              [ Ir.Hook grant ];
                          rewrites :=
                            Rewrite.vf ~code:"O104" ~func:fname ~pos:hook
                              "loop-invariant capture of %s hoisted to \
                               preheader block %d"
                              (Analysis.cell_name cell) pre
                            :: !rewrites
                      | _ -> ())
                | _ -> ())
          (Analysis.loops f);
        (!f_ref, List.rev !rewrites)
