open Ido_ir
open Ido_analysis
module Dirtyflow = Ido_lint.Dirtyflow

let has_hooks (f : Ir.func) =
  Array.exists
    (fun (blk : Ir.block) -> Array.exists Ir.is_hook blk.Ir.instrs)
    f.Ir.blocks

(* Nothing in the function can dirty in-FASE program data: no
   persistent store (nor stack store under the resumption schemes), no
   call, no writing intrinsic.  Such a FASE has nothing for recovery
   to redo or undo — its instrumentation is pure overhead (O102). *)
let write_free scheme (f : Ir.func) =
  not
    (Ir.fold_instrs
       (fun acc _ i -> acc || Dirtyflow.dirties scheme i)
       false f)

(* ------------------------------------------------------------------ *)
(* Natural loops, merged per header.  A loop is hoistable-into only
   when its header has a unique out-of-loop predecessor falling
   through unconditionally — the preheader the hoisted hook lands in. *)

type loop = { header : int; body : int list; preheader : int option }

let loops (f : Ir.func) =
  let cfg = Cfg.build f in
  let by_header = Hashtbl.create 4 in
  List.iter
    (fun (src, h) ->
      let body =
        match Hashtbl.find_opt by_header h with
        | Some b -> b
        | None ->
            let b = Hashtbl.create 8 in
            Hashtbl.replace b h ();
            Hashtbl.replace by_header h b;
            b
      in
      let rec add n =
        if not (Hashtbl.mem body n) then begin
          Hashtbl.replace body n ();
          List.iter add (Cfg.preds cfg n)
        end
      in
      add src)
    (Cfg.back_edges cfg);
  Hashtbl.fold
    (fun header body acc ->
      let outside =
        List.filter (fun p -> not (Hashtbl.mem body p)) (Cfg.preds cfg header)
      in
      let preheader =
        match outside with
        | [ p ] -> (
            match f.Ir.blocks.(p).Ir.term with Ir.Br _ -> Some p | _ -> None)
        | _ -> None
      in
      {
        header;
        body = List.sort compare (Hashtbl.fold (fun b () l -> b :: l) body []);
        preheader;
      }
      :: acc)
    by_header []
  |> List.sort (fun a b -> compare a.header b.header)

(* ------------------------------------------------------------------ *)
(* Block surgery.  [delete] removes the instructions at the given
   (original) positions; [append_at_end] adds instructions before a
   block's terminator.  Both rebuild the array once. *)

let delete (f : Ir.func) (positions : Ir.pos list) =
  let blocks =
    Array.mapi
      (fun b (blk : Ir.block) ->
        if not (List.exists (fun (p : Ir.pos) -> p.Ir.blk = b) positions) then
          blk
        else
          {
            blk with
            Ir.instrs =
              Array.of_list
                (List.filteri
                   (fun i _ ->
                     not
                       (List.exists
                          (fun (p : Ir.pos) -> p.Ir.blk = b && p.Ir.idx = i)
                          positions))
                   (Array.to_list blk.Ir.instrs));
          })
      f.Ir.blocks
  in
  { f with Ir.blocks }

let append_at_end (f : Ir.func) b instrs =
  let blocks = Array.copy f.Ir.blocks in
  let blk = blocks.(b) in
  blocks.(b) <-
    { blk with Ir.instrs = Array.append blk.Ir.instrs (Array.of_list instrs) };
  { f with Ir.blocks }

let grant_of scheme = Ido_lint.Hook_model.log_grant_hook scheme

let is_grant scheme instr =
  match (grant_of scheme, instr) with
  | Some g, Ir.Hook h -> h = g
  | _ -> false

let cell_name = Ido_lint.Sym.to_string
