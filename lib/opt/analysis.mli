(** Shared structural analyses and block surgery for the optimizer
    passes: hook census, write-freedom ({!Ido_lint.Dirtyflow}), natural
    loops with preheaders, and position-directed instruction
    deletion/insertion. *)

open Ido_ir
open Ido_runtime

val has_hooks : Ir.func -> bool

val write_free : Scheme.t -> Ir.func -> bool
(** No instruction of the function can dirty in-FASE program data
    under [scheme] — the O102 precondition. *)

type loop = { header : int; body : int list; preheader : int option }
(** A natural loop (back edges merged per header).  [preheader] is the
    unique out-of-loop predecessor of [header] when it falls through
    with an unconditional [Br header]; hoists land at its end. *)

val loops : Ir.func -> loop list

val delete : Ir.func -> Ir.pos list -> Ir.func
(** Remove the instructions at the given original positions. *)

val append_at_end : Ir.func -> int -> Ir.instr list -> Ir.func
(** Append instructions at the end of block [b] (before its
    terminator). *)

val grant_of : Scheme.t -> Ir.hook option
val is_grant : Scheme.t -> Ir.instr -> bool
val cell_name : Ido_lint.Sym.expr -> string
