open Ido_ir
open Ido_analysis

type t = { code : string; func : string; pos : Ir.pos; detail : string }

let v ~code ~func ~pos detail = { code; func; pos; detail }

let vf ~code ~func ~pos fmt =
  Printf.ksprintf (fun detail -> { code; func; pos; detail }) fmt

let to_diag r = Diag.v ~pos:r.pos ~func:r.func ~code:r.code r.detail
let render r = Diag.render (to_diag r)
let json r = Diag.json (to_diag r)

let compare a b = Diag.compare (to_diag a) (to_diag b)

let codes =
  [
    ( "O101",
      "redundant durable-commit elided: tracked lines are clean on every \
       incoming path" );
    ( "O102",
      "write-free FASE: every hook elided, the bare lock structure carries \
       the contract" );
    ( "O103",
      "duplicate log capture elided: the cell is already captured in this \
       window" );
    ("O104", "loop-invariant log capture hoisted to the loop preheader");
  ]

let explain code =
  match List.assoc_opt code codes with
  | Some s -> s
  | None -> "unknown rewrite code"

(* The obs-rollup fields each rewrite is allowed to shrink; everything
   outside the union of the applied rewrites' classes must reconcile
   exactly (Optrun).  Evictions are exempt globally — they are an
   emergent cache artifact that can drift either way when clwbs
   disappear. *)
let delta_class = function
  | "O101" -> [ "stores"; "flushes"; "fences" ]
  | "O102" ->
      [
        "stores";
        "flushes";
        "fences";
        "log_appends";
        "log_bytes";
        "boundaries";
        "elided_boundaries";
        "fase_enters";
        "fase_exits";
      ]
  | "O103" | "O104" ->
      [ "stores"; "flushes"; "fences"; "log_appends"; "log_bytes" ]
  | _ -> []
