open Ido_ir
open Ido_runtime

exception Opt_violation of string

let violation fmt = Printf.ksprintf (fun s -> raise (Opt_violation s)) fmt

(* Per-function pass order.  O102 subsumes everything (there are no
   hooks left); otherwise O103 first (delete duplicate adjacent
   grants), then O104 (hoist the survivors out of loops), then O101
   (drop clean commits).  Each pass computes its own analyses over the
   function the previous pass produced. *)
let optimize_func scheme fname f =
  let f, r102 = Fasefree.run scheme fname f in
  if r102 <> [] then (f, r102)
  else
    let f, r103 = Dupelim.run scheme fname f in
    let f, r104 = Hoist.run scheme fname f in
    let f, r101 = Flushelim.run scheme fname f in
    (f, List.concat [ r103; r104; r101 ])

let optimize scheme (p : Ir.program) =
  let acc = ref [] in
  let funcs =
    List.map
      (fun (name, f) ->
        let f', rs = optimize_func scheme name f in
        acc := rs :: !acc;
        (name, f'))
      p.Ir.funcs
  in
  let rewrites = List.sort Rewrite.compare (List.concat (List.rev !acc)) in
  ({ Ir.funcs }, rewrites)

(* First obligation on an optimized program: it must re-lint clean.
   The linter was taught exactly the facts the rewrites rely on
   (Capflow captures, Dirtyflow cleanliness, hook elision for
   write-free functions), so a diagnostic here means a rewrite
   over-fired — name the evidence and fail hard. *)
let lint_obligation scheme optimized rewrites =
  match Ido_lint.Lint.lint_program scheme optimized with
  | [] -> ()
  | diags ->
      violation
        "optimized program fails the linter under %s:\n%s\napplied rewrites:\n%s"
        (Scheme.name scheme)
        (String.concat "\n"
           (List.map Ido_analysis.Diag.render diags))
        (String.concat "\n" (List.map Rewrite.render rewrites))
