open Ido_ir
open Ido_runtime

(* O102: a FASE whose body can dirty nothing leaves recovery nothing
   to redo or undo — its entire hook skeleton (begin/end, boundaries,
   grants, commits) is pure overhead and the bare Lock/Unlock
   structure already carries the mutual-exclusion contract.  All or
   nothing: stripping only some hooks would break the structural
   contract Regioncheck enforces, so the pass fires only when every
   hook of the function can go.

   Mnemosyne is excluded: its txn hooks *replaced* the lock
   instructions at instrumentation time, so even a write-free
   transaction needs Htxn_begin/Htxn_commit for mutual exclusion. *)

let applicable = function
  | Scheme.Ido | Scheme.Justdo | Scheme.Atlas | Scheme.Nvml
  | Scheme.Nvthreads ->
      true
  | Scheme.Mnemosyne | Scheme.Origin -> false

let run scheme fname (f : Ir.func) =
  if
    (not (applicable scheme))
    || (not (Analysis.has_hooks f))
    || not (Analysis.write_free scheme f)
  then (f, [])
  else begin
    let first = ref None and count = ref 0 in
    Array.iteri
      (fun b (blk : Ir.block) ->
        Array.iteri
          (fun i ins ->
            if Ir.is_hook ins then begin
              incr count;
              if !first = None then first := Some { Ir.blk = b; idx = i }
            end)
          blk.Ir.instrs)
      f.Ir.blocks;
    let blocks =
      Array.map
        (fun (blk : Ir.block) ->
          {
            blk with
            Ir.instrs =
              Array.of_list
                (List.filter
                   (fun i -> not (Ir.is_hook i))
                   (Array.to_list blk.Ir.instrs));
          })
        f.Ir.blocks
    in
    let pos =
      match !first with Some p -> p | None -> { Ir.blk = 0; idx = 0 }
    in
    ( { f with Ir.blocks },
      [
        Rewrite.vf ~code:"O102" ~func:fname ~pos
          "write-free FASE: elided all %d hooks" !count;
      ] )
  end
