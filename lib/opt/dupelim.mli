(** O103 — duplicate log-capture elision.  Deletes an adjacent grant
    hook whose store's stable cell is already must-captured
    ({!Ido_lint.Capflow}) in the current protection window.  Only under
    {!Ido_lint.Hook_model.grant_elidable} schemes — never JUSTDO, whose
    every store hook re-arms the resumption tuple. *)

open Ido_ir
open Ido_runtime

val run : Scheme.t -> string -> Ir.func -> Ir.func * Rewrite.t list
