(** O102 — write-free FASE elision.  When nothing in a function can
    dirty in-FASE program data, every hook is deleted and the bare
    lock structure carries the contract.  Not applied under Mnemosyne,
    whose txn hooks replaced the lock instructions. *)

open Ido_ir
open Ido_runtime

val applicable : Scheme.t -> bool
val run : Scheme.t -> string -> Ir.func -> Ir.func * Rewrite.t list
