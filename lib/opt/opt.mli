(** The persistence-redundancy optimizer driver.

    [optimize scheme p] runs the four justification-carrying rewrites
    over every function of an {e instrumented} program and returns the
    optimized program with the applied {!Rewrite} records, sorted.
    The pass is deterministic: the same input yields byte-identical
    rewrite reports.

    Every rewrite is {e obligated}: the optimized program must re-lint
    clean ({!lint_obligation}), pass the full crash matrix with
    identical oracles, and reconcile its obs rollups within the
    rewrites' declared {!Rewrite.delta_class} — [Ido_check.Optrun]
    enforces the dynamic obligations; a divergence raises
    {!Opt_violation} naming the rewrite. *)

open Ido_ir
open Ido_runtime

exception Opt_violation of string

val optimize : Scheme.t -> Ir.program -> Ir.program * Rewrite.t list
val optimize_func : Scheme.t -> string -> Ir.func -> Ir.func * Rewrite.t list

val lint_obligation : Scheme.t -> Ir.program -> Rewrite.t list -> unit
(** Raises {!Opt_violation} when the optimized program lints dirty. *)

val violation : ('a, unit, string, 'b) format4 -> 'a
