(** O101 — redundant durable-commit elision.  Deletes an
    [Hdurable_commit] hook that {!Ido_lint.Dirtyflow} proves sits on
    clean lines on every incoming path.  Atlas, NVML and NVThreads
    only (the schemes that emit the hook). *)

open Ido_ir
open Ido_runtime

val applicable : Scheme.t -> bool
val run : Scheme.t -> string -> Ir.func -> Ir.func * Rewrite.t list
