(** O104 — loop-invariant grant hoisting.  Moves the single grant hook
    of a clear-free loop body to the loop preheader when every path
    from the preheader reaches the hook's store — and only that store —
    first.  Only under {!Ido_lint.Hook_model.grant_hoistable} schemes;
    the moved hook arms the VM's grant slot ([State.armed]). *)

open Ido_ir
open Ido_runtime

val run : Scheme.t -> string -> Ir.func -> Ir.func * Rewrite.t list
