type result = {
  s_input : Input.t;
  s_outcome : Exec.outcome;
  s_runs : int;
}

(* Remove element [i] of a list. *)
let drop_nth i xs = List.filteri (fun j _ -> j <> i) xs

let tree_shrinks tr =
  let open Input in
  match tr with
  | Seq ops ->
      List.init (List.length ops) (fun i -> Seq (drop_nth i ops))
  | Unlocked ops ->
      List.init (List.length ops) (fun i -> Unlocked (drop_nth i ops))
  | If (a, b) ->
      [ Seq a; Seq b ]
      @ List.init (List.length a) (fun i -> If (drop_nth i a, b))
      @ List.init (List.length b) (fun i -> If (a, drop_nth i b))
  | Loop (n, ops) ->
      (if n > 1 then [ Loop (1, ops) ] else [])
      @ [ Seq ops ]
      @ List.init (List.length ops) (fun i -> Loop (n, drop_nth i ops))

let base_shrinks = function
  | Input.Workload _ -> []
  | Input.Random trees ->
      (* Drop a whole tree first (biggest size win), then simplify one
         tree in place. *)
      List.init (List.length trees) (fun i ->
          Input.Random (drop_nth i trees))
      @ List.concat
          (List.mapi
             (fun i tr ->
               List.map
                 (fun tr' ->
                   Input.Random
                     (List.mapi (fun j t -> if j = i then tr' else t) trees))
                 (tree_shrinks tr))
             trees)

let candidates (input : Input.t) =
  let open Input in
  let with_crashes cs = { input with crashes = cs } in
  let crash_cands =
    match input.crashes with
    | [] -> []
    | [ _ ] -> [ with_crashes [] ]
    | cs -> with_crashes [] :: List.map (fun c -> with_crashes [ c ]) cs
  in
  let edit_cands =
    List.init (List.length input.edits) (fun i ->
        { input with edits = drop_nth i input.edits })
  in
  let variant_cands =
    match input.variant with
    | Some _ -> [ { input with variant = None } ]
    | None -> []
  in
  let base_cands =
    List.map (fun b -> { input with base = b }) (base_shrinks input.base)
  in
  let sz = Input.size input in
  List.filter
    (fun c -> Input.size c < sz)
    (crash_cands @ edit_cands @ variant_cands @ base_cands)

let shrink ?(budget = 400) ?(opt = false) (outcome : Exec.outcome) =
  (match outcome.Exec.o_failure with
  | None -> invalid_arg "Shrink.shrink: outcome is not a failure"
  | Some _ -> ());
  let code = Exec.primary_code outcome in
  let runs = ref 0 in
  let rec go (best : Exec.outcome) =
    let rec try_cands = function
      | [] -> best
      | c :: rest ->
          if !runs >= budget then best
          else begin
            incr runs;
            let o = Exec.run ~opt c in
            if o.Exec.o_failure <> None && Exec.primary_code o = code then
              go o
            else try_cands rest
          end
    in
    try_cands (candidates best.Exec.o_input)
  in
  let final = go outcome in
  { s_input = final.Exec.o_input; s_outcome = final; s_runs = !runs }
