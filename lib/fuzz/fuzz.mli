(** The coverage-guided campaign driver ([ido_check fuzz]).

    A campaign is seeded with the clean workload/scheme pairs (and,
    outside rediscovery mode, a handful of random-CFG genomes), then
    alternates two stages under one execution budget:

    + a {b deterministic enumeration} stage — for every pair, in a
      fixed round-robin order: the buggy hook-model variants, the
      hoisted-store transform, every elidable/droppable required cut,
      and every hook deletion/duplication.  This is the systematic
      sweep of the single-edit bug space, and the workhorse of
      [--rediscover];
    + a {b havoc} stage — seeded random mutations of the live corpus
      (crash points reseeded near boundary hints, genome op
      splice/insert/delete, lock-scope perturbation, fresh genomes),
      keeping inputs whose coverage digest contributes unseen buckets.

    Every failing candidate is deduplicated by (scheme, base, code
    set), shrunk to a minimal reproducer ({!Shrink}), and recorded in
    the corpus.  The whole campaign is deterministic under its seed —
    byte-identical reports and corpora at any [-j] — because
    candidates are generated before each wave, evaluated in
    submission order, and merged serially. *)

open Ido_runtime

type config = {
  seed : int;
  budget : int;  (** candidate executions across both stages *)
  schemes : Scheme.t list;
  workloads : string list;
  rediscover : bool;
      (** seed from clean workloads only and report which mutation-
          corpus entries the campaign re-found unaided *)
  shrink_budget : int;  (** extra executions per finding *)
  opt : bool;
      (** fuzz the optimized pipeline: every candidate additionally
          runs through the persistence-redundancy optimizer *)
}

val default_config : config
(** Seed 1, budget 4000, every scheme but Origin (no recovery — every
    crash point would "fail"), every workload, shrink budget 200. *)

type finding = {
  fd_entry : Corpus.entry;  (** the shrunk reproducer *)
  fd_codes : string list;  (** codes at discovery (pre-shrink) *)
  fd_organic : bool;
      (** the unshrunk input carried no seeded bug — a repo defect *)
  fd_size : int * int;  (** input size before and after shrinking *)
  fd_runs : int;  (** executions the shrink spent *)
}

type report = {
  r_config : config;
  r_executions : int;  (** candidates evaluated (shrinking excluded) *)
  r_buckets : int;  (** distinct coverage buckets seen *)
  r_survivors : int;
  r_findings : finding list;  (** discovery order *)
  r_corpus : Corpus.t;  (** seeds, survivors and shrunk findings *)
  r_rediscovered : (string * bool) list;
      (** per mutation-corpus entry: re-found?  [[]] unless
          [rediscover] *)
}

val run : ?pool:Ido_util.Pool.t -> ?chunk:int -> config -> report
(** Byte-identical for a given config at every pool size and chunk
    size.  [chunk] batches consecutive candidate executions into one
    pool task ([0], the default: auto-size per wave — see
    {!Ido_util.Pool.default_chunk}). *)

val organic : report -> finding list

val found_count : report -> int * int
(** (re-found, total) over [r_rediscovered]. *)

val render : report -> string
(** The canonical multi-line report — deterministic, no timings. *)
