module Obs = Ido_obs.Obs

(* 2^16 buckets: small enough that the seen-set saturates on genuinely
   similar behaviour, large enough that distinct persist shapes rarely
   collide.  All hashing is pure integer arithmetic — no [Hashtbl.hash]
   — so buckets are stable across OCaml versions and processes. *)
let bucket_mask = 0xFFFF

let mix h x = (((h lsl 5) + h) lxor x) land 0x3FFFFFFF

let strseed s =
  let h = ref 0x811c9dc5 in
  String.iter
    (fun c -> h := (!h lxor Char.code c) * 0x01000193 land 0x3FFFFFFF)
    s;
  !h

(* Feature classes are salted so an n-gram bucket can never collide
   with a boundary-edge bucket by construction of the fold order. *)
let ngram_salt = 0x1A
let boundary_salt = 0x2B
let fase_salt = 0x3C
let diag_salt = 0x4D
let shape_salt = 0x5E

let is_fase_level (ev : Obs.event) =
  match ev.Obs.kind with
  | Obs.Boundary _ | Obs.Fase_enter | Obs.Fase_exit | Obs.Crash
  | Obs.Recovery_step _ ->
      true
  | _ -> false

let features ~scheme events =
  let salt0 = strseed scheme in
  let seen = Hashtbl.create 256 in
  let put salt parts =
    let h = List.fold_left mix (mix salt0 salt) parts land bucket_mask in
    if not (Hashtbl.mem seen h) then Hashtbl.replace seen h ()
  in
  (* Per-thread streams, in emission order.  Machine-level events
     (tid = -1: crash, recovery) form their own stream, which is what
     makes recovery-path coverage a first-class signal. *)
  let streams = Hashtbl.create 8 in
  List.iter
    (fun (ev : Obs.event) ->
      let tid = ev.Obs.tid in
      let prev = try Hashtbl.find streams tid with Not_found -> [] in
      Hashtbl.replace streams tid (ev :: prev))
    events;
  Hashtbl.iter
    (fun _tid rev ->
      let evs = Array.of_list (List.rev rev) in
      let n = Array.length evs in
      let pt i = Obs.coverage_point evs.(i) in
      for i = 0 to n - 2 do
        put ngram_salt [ pt i; pt (i + 1) ];
        if i + 2 < n then put ngram_salt [ pt i; pt (i + 1); pt (i + 2) ]
      done;
      (* Boundary edges: consecutive region ids this thread crossed. *)
      let last_region = ref None in
      (* FASE-transition edges: consecutive FASE-level points. *)
      let last_fase_pt = ref None in
      Array.iter
        (fun (ev : Obs.event) ->
          (match ev.Obs.kind with
          | Obs.Boundary { region; elided } ->
              (match !last_region with
              | Some r ->
                  put boundary_salt [ r; region; (if elided then 1 else 0) ]
              | None -> ());
              last_region := Some region
          | _ -> ());
          if is_fase_level ev then begin
            let p = Obs.coverage_point ev in
            (match !last_fase_pt with
            | Some q -> put fase_salt [ q; p ]
            | None -> ());
            last_fase_pt := Some p
          end)
        evs)
    streams;
  let out = Array.make (Hashtbl.length seen) 0 in
  let i = ref 0 in
  Hashtbl.iter
    (fun b () ->
      out.(!i) <- b;
      incr i)
    seen;
  Array.sort compare out;
  out

(* Statically-evaluated inputs have no trace; their behaviour is the
   diagnostic set the linter produced (plus a shape bucket, so distinct
   clean programs still register).  Sharing the bucket space with the
   trace features lets one seen-set cover both kinds of candidate. *)
let static_features ~scheme ~codes ~shape =
  let salt0 = strseed scheme in
  let seen = Hashtbl.create 16 in
  let put salt parts =
    let h = List.fold_left mix (mix salt0 salt) parts land bucket_mask in
    if not (Hashtbl.mem seen h) then Hashtbl.replace seen h ()
  in
  List.iter (fun code -> put diag_salt [ strseed code ]) codes;
  put shape_salt [ strseed shape ];
  let out = Array.make (Hashtbl.length seen) 0 in
  let i = ref 0 in
  Hashtbl.iter
    (fun b () ->
      out.(!i) <- b;
      incr i)
    seen;
  Array.sort compare out;
  out

let digest fs =
  let h = Array.fold_left mix 0x9E3779B1 fs in
  Printf.sprintf "%08x-%d" h (Array.length fs)

type t = { seen : (int, unit) Hashtbl.t }

let create () = { seen = Hashtbl.create 4096 }
let buckets t = Hashtbl.length t.seen

let novel t fs =
  Array.fold_left (fun n b -> if Hashtbl.mem t.seen b then n else n + 1) 0 fs

let add t fs = Array.iter (fun b -> Hashtbl.replace t.seen b ()) fs
