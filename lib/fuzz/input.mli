(** A fuzz input: everything one candidate execution depends on.

    An input names a {e base program} — either a registry workload or
    a random-CFG genome (the single-FASE tree shape of the PR-1
    idempotence corpus, plus an [Unlocked] constructor for lock-scope
    perturbation) — together with instrumentation-level edits
    ({!Ido_lint.Mutate.edit}), an optional buggy hook-protocol variant,
    and the crash schedule to inject.  Inputs are plain data with a
    stable one-line NDJSON encoding, so the corpus survives on disk
    and a finding replays from its corpus entry alone. *)

open Ido_runtime

type op =
  | Load of int  (** v1 <- cells[k] *)
  | Store of int * int  (** cells[k] <- v1 + v *)
  | Addi of int  (** v2 <- v2 + k *)
  | Mix  (** v1 <- v1 xor v2 *)

type tree =
  | Seq of op list
  | If of op list * op list
  | Loop of int * op list
  | Unlocked of op list
      (** ops emitted {e after} the FASE's unlock — the lock-scope
          perturbation; such genomes are evaluated statically only *)

type base =
  | Workload of string  (** a {!Ido_workloads.Workload.names} entry *)
  | Random of tree list

type t = {
  scheme : Scheme.t;
  base : base;
  edits : Ido_lint.Mutate.edit list;  (** applied in order, at their stage *)
  variant : string option;  (** buggy hook-model protocol *)
  crashes : int list;
      (** raw crash points; injected modulo the recorded schedule
          length (+1 for the terminal index) *)
}

val tree_ops : tree -> op list
(** All ops of a tree, in emission order (both branches of an [If]). *)

val make :
  ?edits:Ido_lint.Mutate.edit list ->
  ?variant:string ->
  ?crashes:int list ->
  scheme:Scheme.t ->
  base ->
  t

val size : t -> int
(** Structural size (trees, ops, loop trips, edits, variant, crash
    points) — the measure shrinking must strictly decrease. *)

val mutated : t -> bool
(** The input carries seeded bugs (edits or a variant): failures on it
    are expected finds, not repo defects. *)

val static_only : t -> bool
(** Evaluate through the linter only: the input is {!mutated} (the VM
    cannot execute hook-edited programs) or its genome has [Unlocked]
    ops (outside any FASE, the all-or-nothing heap oracle does not
    apply). *)

val label : t -> string
(** Short deterministic display label ("justdo/queue+del-hook:3"). *)

val cells : int
(** Persistent cell-array length of generated programs. *)

val initial_cell : int -> int64
(** Seed value of cell [i] (distinguishable, nonzero). *)

val source_program : t -> Ido_ir.Ir.program
(** The hook-free source program of the base (before edits and
    instrumentation).  Random genomes build init/worker entries over a
    {!cells}-word array, one lock-delineated FASE per worker run. *)

(** {1 Codec}

    The textual forms use only characters that survive the repo's
    minimal JSON field scanner unescaped. *)

val base_to_string : base -> string
(** ["workload:queue"] or ["random:<tree-dsl>"]. *)

val base_of_string : string -> base option

val json_fields : t -> string
(** The input's fields as a JSON object fragment
    (["\"scheme\":...,\"base\":...,..."], no braces). *)

val of_json : fail:(string -> exn) -> string -> t
(** Parse a line containing {!json_fields}; raises [fail]'s exception
    on malformed input. *)

val equal : t -> t -> bool
