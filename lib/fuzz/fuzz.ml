open Ido_runtime
module Engine = Ido_check.Engine
module Mutate = Ido_lint.Mutate
module Rng = Ido_util.Rng
module Pool = Ido_util.Pool
module Workload = Ido_workloads.Workload

type config = {
  seed : int;
  budget : int;
  schemes : Scheme.t list;
  workloads : string list;
  rediscover : bool;
  shrink_budget : int;
  opt : bool;
      (* fuzz the optimized pipeline: every candidate is additionally
         run through the persistence-redundancy optimizer (Ido_opt) *)
}

let default_config =
  {
    seed = 1;
    budget = 4000;
    schemes = List.filter (fun s -> s <> Scheme.Origin) Scheme.all;
    workloads = Workload.names;
    rediscover = false;
    shrink_budget = 200;
    opt = false;
  }

type finding = {
  fd_entry : Corpus.entry;
  fd_codes : string list;
  fd_organic : bool;
  fd_size : int * int;
  fd_runs : int;
}

type report = {
  r_config : config;
  r_executions : int;
  r_buckets : int;
  r_survivors : int;
  r_findings : finding list;
  r_corpus : Corpus.t;
  r_rediscovered : (string * bool) list;
}

(* ---------- candidate generation ---------- *)

let rec take n = function
  | [] -> []
  | _ when n <= 0 -> []
  | x :: rest -> x :: take (n - 1) rest

let drop_nth i xs = List.filteri (fun j _ -> j <> i) xs
let pickl rng l = List.nth l (Rng.int rng (List.length l))

(* Origin has no recovery: every injected crash would "fail" the
   oracle, drowning the report in non-findings.  Excluded always. *)
let pairs_of config =
  List.concat_map
    (fun workload ->
      List.filter_map
        (fun scheme ->
          if scheme <> Scheme.Origin && Engine.supported scheme workload then
            Some (scheme, workload)
          else None)
        config.schemes)
    config.workloads

(* The systematic single-edit bug space of one pair, in rediscovery
   priority order: protocol variants, the hoisted store, cut edits,
   then hook deletions/duplications interleaved by index (so early
   hooks — the common log/enter hooks — are probed from both
   directions first). *)
let pair_candidates (scheme, workload) =
  let mk ?edits ?variant () =
    Input.make ?edits ?variant ~scheme (Input.Workload workload)
  in
  let hooks, cuts =
    match Exec.instrumented (mk ()) with
    | p -> (min 64 (Mutate.hook_count p), min 16 (Mutate.cut_count p))
    | exception _ -> (0, 0)
  in
  List.map (fun (v, _) -> mk ~variant:v ()) Ido_lint.Hook_model.variants
  @ [ mk ~edits:[ Mutate.Hoist_store ] () ]
  @ List.concat
      (List.init cuts (fun k ->
           [ mk ~edits:[ Mutate.Elide_cut k ] ();
             mk ~edits:[ Mutate.Drop_cut k ] () ]))
  @ List.concat
      (List.init hooks (fun k ->
           [ mk ~edits:[ Mutate.Delete_hook k ] ();
             mk ~edits:[ Mutate.Dup_hook k ] () ]))

(* Round-robin across the pairs: candidate 0 of every pair, then
   candidate 1 of every pair, ... — a budgeted prefix visits every
   pair's high-priority edits before any pair's deep hook indices. *)
let round_robin lists =
  let arrs = List.map Array.of_list lists in
  let longest = List.fold_left (fun m a -> max m (Array.length a)) 0 arrs in
  let out = ref [] in
  for i = 0 to longest - 1 do
    List.iter (fun a -> if i < Array.length a then out := a.(i) :: !out) arrs
  done;
  List.rev !out

(* ---------- havoc mutations ---------- *)

let rng_op rng =
  match Rng.int rng 10 with
  | 0 | 1 | 2 -> Input.Load (Rng.int rng Input.cells)
  | 3 | 4 | 5 | 6 -> Input.Store (Rng.int rng Input.cells, Rng.int rng 50)
  | 7 | 8 -> Input.Addi (Rng.int rng 7)
  | _ -> Input.Mix

let rng_ops rng n = List.init (1 + Rng.int rng n) (fun _ -> rng_op rng)

(* Fresh genomes carry no [Unlocked] tree — they seed the {e clean}
   dynamic population; the lock-scope perturbation is a mutation. *)
let rng_tree rng =
  match Rng.int rng 7 with
  | 0 | 1 | 2 -> Input.Seq (rng_ops rng 6)
  | 3 | 4 -> Input.If (rng_ops rng 6, rng_ops rng 6)
  | _ -> Input.Loop (1 + Rng.int rng 4, rng_ops rng 6)

let fresh_genome rng config =
  let scheme = pickl rng config.schemes in
  let scheme = if scheme = Scheme.Origin then Scheme.Ido else scheme in
  Input.make ~scheme
    (Input.Random (List.init (1 + Rng.int rng 4) (fun _ -> rng_tree rng)))

let mutate_ops rng ops =
  let n = List.length ops in
  match Rng.int rng 3 with
  | 0 ->
      (* insert *)
      let ins = rng_op rng in
      let at = Rng.int rng (n + 1) in
      if at = n then ops @ [ ins ]
      else
        List.concat
          (List.mapi (fun i op -> if i = at then [ ins; op ] else [ op ]) ops)
  | 1 when n > 1 -> drop_nth (Rng.int rng n) ops
  | _ ->
      let repl = rng_op rng in
      let at = Rng.int rng (max 1 n) in
      List.mapi (fun i op -> if i = at then repl else op) ops

let mutate_tree rng tr =
  let open Input in
  match tr with
  | Seq ops -> Seq (mutate_ops rng ops)
  | Unlocked ops -> Unlocked (mutate_ops rng ops)
  | If (a, b) ->
      if Rng.bool rng then If (mutate_ops rng a, b)
      else If (a, mutate_ops rng b)
  | Loop (n, ops) ->
      if Rng.int rng 3 = 0 then Loop (1 + Rng.int rng 4, ops)
      else Loop (n, mutate_ops rng ops)

let mutate_genome rng trees =
  let n = List.length trees in
  match Rng.int rng 6 with
  | 0 when n < 5 ->
      (* splice in a fresh tree *)
      let at = Rng.int rng (n + 1) in
      take at trees @ [ rng_tree rng ] @ List.filteri (fun i _ -> i >= at) trees
  | 1 when n > 1 -> drop_nth (Rng.int rng n) trees
  | 2 ->
      (* lock-scope perturbation: push one tree's ops past the unlock *)
      let at = Rng.int rng n in
      List.mapi
        (fun i tr ->
          if i = at then
            match tr with
            | Input.Unlocked ops -> Input.Seq ops
            | tr -> Input.Unlocked (Input.tree_ops tr)
          else tr)
        trees
  | _ ->
      let at = Rng.int rng n in
      let tr' = mutate_tree rng (List.nth trees at) in
      List.mapi (fun i tr -> if i = at then tr' else tr) trees

type live = { li_input : Input.t; li_hints : int list; li_sched : int }

let rng_edit rng =
  match Rng.int rng 5 with
  | 0 -> Mutate.Delete_hook (Rng.int rng 24)
  | 1 -> Mutate.Dup_hook (Rng.int rng 24)
  | 2 -> Mutate.Elide_cut (Rng.int rng 8)
  | 3 -> Mutate.Drop_cut (Rng.int rng 8)
  | _ -> Mutate.Hoist_store

let mutate_one rng (li : live) =
  let input = li.li_input in
  let add_crash () =
    let c =
      if li.li_sched = 0 then Rng.int rng 64
      else
        match li.li_hints with
        | hints when hints <> [] && Rng.bool rng ->
            (* reseed near a boundary/FASE-transition event *)
            max 0 (pickl rng hints + Rng.int rng 3 - 1)
        | _ -> Rng.int rng (li.li_sched + 1)
    in
    { input with Input.crashes = take 4 (c :: input.Input.crashes) }
  in
  match Rng.int rng 8 with
  | 0 | 1 -> add_crash ()
  | 2 -> (
      match input.Input.crashes with
      | [] -> add_crash ()
      | cs ->
          { input with
            Input.crashes = drop_nth (Rng.int rng (List.length cs)) cs })
  | 3 ->
      { input with
        Input.edits = take 2 (rng_edit rng :: input.Input.edits) }
  | 4 ->
      { input with
        Input.variant = Some (fst (pickl rng Ido_lint.Hook_model.variants)) }
  | _ -> (
      match input.Input.base with
      | Input.Random trees ->
          { input with Input.base = Input.Random (mutate_genome rng trees) }
      | Input.Workload _ -> add_crash ())

(* ---------- the campaign ---------- *)

let base_key = function
  | Input.Workload w -> "workload:" ^ w
  | Input.Random _ -> "random"

let run ?pool ?(chunk = 0) config =
  if config.budget < 1 then invalid_arg "Fuzz.run: budget must be positive";
  if chunk < 0 then invalid_arg "Fuzz.run: chunk must be >= 0";
  let rng = Rng.create config.seed in
  let seen = Cov.create () in
  let entries = ref [] in
  let findings = ref [] in
  let finding_keys = Hashtbl.create 64 in
  let population = ref [] in
  let survivors = ref 0 in
  let executions = ref 0 in
  (* Candidate executions are the campaign's hot loop: batch them into
     chunked pool tasks (waves are up to 32 inputs, so auto-chunking
     still leaves every worker busy) and merge serially in submission
     order — the report and corpus stay byte-identical at every [-j]
     and chunk size. *)
  let eval_batch inputs =
    executions := !executions + List.length inputs;
    Pool.opt_map_list ~chunk pool (Exec.run ~opt:config.opt) inputs
  in
  let merge ~seed_stage outcomes =
    List.iter
      (fun (o : Exec.outcome) ->
        let input = o.Exec.o_input in
        let novel = Cov.novel seen o.Exec.o_features in
        Cov.add seen o.Exec.o_features;
        match o.Exec.o_failure with
        | Some f ->
            let key =
              ( Scheme.name input.Input.scheme,
                base_key input.Input.base,
                f.Exec.f_codes )
            in
            if not (Hashtbl.mem finding_keys key) then begin
              Hashtbl.replace finding_keys key ();
              let s =
                Shrink.shrink ~budget:config.shrink_budget ~opt:config.opt o
              in
              let entry =
                Corpus.entry_of_outcome Corpus.Finding s.Shrink.s_outcome
              in
              entries := entry :: !entries;
              findings :=
                {
                  fd_entry = entry;
                  fd_codes = f.Exec.f_codes;
                  fd_organic = not (Input.static_only input);
                  fd_size = (Input.size input, Input.size s.Shrink.s_input);
                  fd_runs = s.Shrink.s_runs;
                }
                :: !findings
            end
        | None ->
            let keep = seed_stage || novel > 0 in
            if keep then begin
              entries :=
                Corpus.entry_of_outcome
                  (if seed_stage then Corpus.Seed else Corpus.Survivor)
                  o
                :: !entries;
              if not seed_stage then incr survivors;
              population :=
                {
                  li_input = input;
                  li_hints = o.Exec.o_hints;
                  li_sched = o.Exec.o_schedule;
                }
                :: !population
            end)
      outcomes
  in
  let pairs = pairs_of config in
  (* Stage 0: clean seeds — every pair crash-free, plus (outside
     rediscovery) a few random genomes. *)
  let seeds =
    List.map (fun (s, w) -> Input.make ~scheme:s (Input.Workload w)) pairs
    @
    if config.rediscover then []
    else List.init 6 (fun _ -> fresh_genome rng config)
  in
  merge ~seed_stage:true (eval_batch (take config.budget seeds));
  (* Stage 1: crash seeds — two crash points per dynamic seed, one near
     a boundary hint, one uniform. *)
  let crash_seeds =
    List.filter_map
      (fun li ->
        if li.li_sched = 0 then None
        else
          let near =
            match li.li_hints with
            | [] -> Rng.int rng (li.li_sched + 1)
            | hs -> max 0 (pickl rng hs + Rng.int rng 3 - 1)
          in
          let uniform = Rng.int rng (li.li_sched + 1) in
          Some { li.li_input with Input.crashes = [ near; uniform ] })
      (List.rev !population)
  in
  let remaining = config.budget - !executions in
  if remaining > 0 then
    merge ~seed_stage:false (eval_batch (take remaining crash_seeds));
  (* Stage 2: deterministic single-edit enumeration. *)
  let det = round_robin (List.map pair_candidates pairs) in
  let remaining = config.budget - !executions in
  if remaining > 0 then merge ~seed_stage:false (eval_batch (take remaining det));
  (* Stage 3: havoc until the budget runs out. *)
  while !executions < config.budget && !population <> [] do
    let wave = min 32 (config.budget - !executions) in
    let pop = !population in
    let cands =
      List.init wave (fun _ ->
          if (not config.rediscover) && Rng.chance rng 0.1 then
            fresh_genome rng config
          else mutate_one rng (pickl rng pop))
    in
    merge ~seed_stage:false (eval_batch cands)
  done;
  let findings = List.rev !findings in
  let r_rediscovered =
    if not config.rediscover then []
    else
      List.map
        (fun (m : Mutate.t) ->
          ( m.Mutate.name,
            List.exists
              (fun fd ->
                let i = fd.fd_entry.Corpus.e_input in
                i.Input.scheme = m.Mutate.scheme
                && i.Input.base = Input.Workload m.Mutate.workload
                && List.mem m.Mutate.expect fd.fd_codes)
              findings ))
        Mutate.corpus
  in
  {
    r_config = config;
    r_executions = !executions;
    r_buckets = Cov.buckets seen;
    r_survivors = !survivors;
    r_findings = findings;
    r_corpus = { Corpus.c_seed = config.seed; c_entries = List.rev !entries };
    r_rediscovered;
  }

let organic r = List.filter (fun fd -> fd.fd_organic) r.r_findings

let found_count r =
  ( List.length (List.filter snd r.r_rediscovered),
    List.length r.r_rediscovered )

let render r =
  let b = Buffer.create 2048 in
  let addf fmt = Printf.ksprintf (Buffer.add_string b) fmt in
  addf "fuzz: seed=%d budget=%d rediscover=%b\n" r.r_config.seed
    r.r_config.budget r.r_config.rediscover;
  addf "executions=%d coverage-buckets=%d survivors=%d findings=%d\n"
    r.r_executions r.r_buckets r.r_survivors
    (List.length r.r_findings);
  List.iter
    (fun fd ->
      let e = fd.fd_entry in
      let before, after = fd.fd_size in
      addf "finding: %s codes=%s %s size=%d->%d shrink-runs=%d\n"
        (Input.label e.Corpus.e_input)
        (String.concat "," fd.fd_codes)
        (if fd.fd_organic then "ORGANIC" else "induced")
        before after fd.fd_runs;
      addf "  repro: %s\n"
        (match e.Corpus.e_codes with
        | [] -> "(no longer fails after shrink cap)"
        | cs ->
            Printf.sprintf "%s => %s" (Input.label e.Corpus.e_input)
              (String.concat "," cs));
      if e.Corpus.e_detail <> "" then addf "  detail: %s\n" e.Corpus.e_detail)
    r.r_findings;
  if r.r_rediscovered <> [] then begin
    let found, total = found_count r in
    addf "rediscovered %d/%d seeded mutants\n" found total;
    List.iter
      (fun (name, ok) -> if not ok then addf "  missing: %s\n" name)
      r.r_rediscovered
  end;
  Buffer.contents b
