open Ido_runtime
module Engine = Ido_check.Engine
module Mutate = Ido_lint.Mutate
module Obs = Ido_obs.Obs
module Oracle = Ido_workloads.Oracle
module Vm = Ido_vm.Vm

type failure = {
  f_codes : string list;
  f_detail : string;
  f_crash : int option;
}

type outcome = {
  o_input : Input.t;
  o_features : int array;
  o_schedule : int;
  o_failure : failure option;
  o_hints : int list;
}

let instrumented ?(opt = false) (input : Input.t) =
  let before, after =
    List.partition
      (fun e -> Mutate.edit_stage e = Mutate.Before_instrument)
      input.Input.edits
  in
  let src =
    List.fold_left
      (fun p e -> Mutate.apply_edit e p)
      (Input.source_program input) before
  in
  let p = Ido_instrument.Instrument.instrument ~opt input.Input.scheme src in
  List.fold_left (fun p e -> Mutate.apply_edit e p) p after

let dedup_sorted xs = List.sort_uniq compare xs

(* Feature sets from several runs, merged. *)
let merge_features sets =
  let seen = Hashtbl.create 256 in
  List.iter
    (fun fs ->
      Array.iter (fun b -> Hashtbl.replace seen b ()) fs)
    sets;
  let out = Array.make (Hashtbl.length seen) 0 in
  let i = ref 0 in
  Hashtbl.iter
    (fun b () ->
      out.(!i) <- b;
      incr i)
    seen;
  Array.sort compare out;
  out

(* ---------- static path ---------- *)

let run_static ~opt (input : Input.t) =
  let scheme_name = Scheme.name input.Input.scheme in
  let shape = Input.base_to_string input.Input.base in
  match instrumented ~opt input with
  | exception (Failure msg | Invalid_argument msg) ->
      {
        o_input = input;
        o_features =
          Cov.static_features ~scheme:scheme_name ~codes:[ "F801" ] ~shape;
        o_schedule = 0;
        o_failure =
          Some { f_codes = [ "F801" ]; f_detail = msg; f_crash = None };
        o_hints = [];
      }
  | p ->
      let diags =
        Ido_lint.Lint.lint_program ?variant:input.Input.variant
          input.Input.scheme p
      in
      let codes =
        dedup_sorted (List.map (fun d -> d.Ido_analysis.Diag.code) diags)
      in
      let o_failure =
        match diags with
        | [] -> None
        | d :: _ ->
            Some
              {
                f_codes = codes;
                f_detail = Ido_analysis.Diag.render d;
                f_crash = None;
              }
      in
      {
        o_input = input;
        o_features = Cov.static_features ~scheme:scheme_name ~codes ~shape;
        o_schedule = 0;
        o_failure;
        o_hints = [];
      }

(* ---------- dynamic path ---------- *)

let mem_of m =
  let pm = Vm.pmem m in
  { Oracle.load = Ido_nvm.Pmem.load pm; size = Ido_nvm.Pmem.size pm }

let oracle_mode scheme =
  match scheme with Scheme.Origin -> Oracle.Prefix | _ -> Oracle.Atomic

(* A random genome's seed: pure FNV of its textual form, so the VM
   schedule is stable across processes (no [Hashtbl.hash]). *)
let genome_seed base =
  let s = Input.base_to_string base in
  let h = ref 0x811c9dc5 in
  String.iter
    (fun c -> h := (!h lxor Char.code c) * 0x01000193 land 0x3FFFFFFF)
    s;
  1 + (!h mod 1000)

let custom_of_input ?(opt = false) (input : Input.t) ~validate =
  match input.Input.base with
  | Input.Workload workload ->
      let spec =
        Engine.defaults ~opt ~scheme:input.Input.scheme ~workload ()
      in
      { (Engine.custom_of_spec spec) with Engine.c_validate = validate }
  | Input.Random _ ->
      {
        Engine.c_program = Input.source_program input;
        c_scheme = input.Input.scheme;
        c_seed = genome_seed input.Input.base;
        c_cache_lines = (Vm.config input.Input.scheme).Vm.cache_lines;
        c_threads = 1;
        c_worker_arg = 0L;
        c_opt = opt;
        c_validate = validate;
      }

let initial_heap = Array.init Input.cells (fun i -> Input.initial_cell i)

let heap_of m =
  let base = Int64.to_int (Engine.probe_root m) in
  Engine.heap_words m ~base ~len:Input.cells

(* Crash indices at fence/lock events: where boundary persists and
   FASE transitions happen, the reseeding frontier for the mutator. *)
let hints_of_schedule evs =
  let out = ref [] in
  Array.iteri
    (fun k (e : Ido_vm.Event.t) ->
      match e with
      | Ido_vm.Event.Fence | Ido_vm.Event.Lock_acquire _
      | Ido_vm.Event.Lock_release _ ->
          out := k :: !out
      | _ -> ())
    evs;
  List.rev !out

let classify_verdict msg =
  let is_recovery =
    String.length msg >= 15 && String.sub msg 0 15 = "recovery raised"
  in
  if is_recovery then "F702" else "F701"

let run_dynamic ~opt (input : Input.t) =
  let scheme_name = Scheme.name input.Input.scheme in
  (* For workload bases the registry oracle is the validator; for
     random genomes the reference heap of the crash-free run is, with
     the untouched initial heap also legal (FASE never started). *)
  let reference = ref None in
  let validate_crash_free m =
    match input.Input.base with
    | Input.Workload workload ->
        Oracle.validate ~workload ~mode:(oracle_mode input.Input.scheme)
          ~root:(Engine.probe_root m) (mem_of m)
    | Input.Random _ ->
        reference := Some (heap_of m);
        Ok ()
  in
  let validate_crashed m =
    match input.Input.base with
    | Input.Workload workload ->
        Oracle.validate ~workload ~mode:(oracle_mode input.Input.scheme)
          ~root:(Engine.probe_root m) (mem_of m)
    | Input.Random _ -> (
        let got = heap_of m in
        match !reference with
        | Some r when got = r || got = initial_heap -> Ok ()
        | Some _ -> Error "torn heap: neither reference nor initial state"
        | None -> Error "internal: reference heap missing")
  in
  match custom_of_input ~opt input ~validate:(fun _ -> Ok ()) with
  | exception (Failure msg | Invalid_argument msg) ->
      {
        o_input = input;
        o_features = [||];
        o_schedule = 0;
        o_failure =
          Some { f_codes = [ "F801" ]; f_detail = msg; f_crash = None };
        o_hints = [];
      }
  | base_custom -> (
      match
        let evs =
          Engine.record_custom
            { base_custom with Engine.c_validate = (fun _ -> Ok ()) }
        in
        let len = Array.length evs in
        let free =
          Engine.probe
            { base_custom with Engine.c_validate = validate_crash_free }
        in
        let crashed_custom =
          { base_custom with Engine.c_validate = validate_crashed }
        in
        let crashed =
          List.map
            (fun c ->
              let index = c mod (len + 1) in
              (index, Engine.probe ~index crashed_custom))
            input.Input.crashes
        in
        (evs, len, free, crashed)
      with
      | exception (Failure msg | Invalid_argument msg) ->
          {
            o_input = input;
            o_features = [||];
            o_schedule = 0;
            o_failure =
              Some { f_codes = [ "F801" ]; f_detail = msg; f_crash = None };
            o_hints = [];
          }
      | evs, len, free, crashed ->
          let features =
            merge_features
              (List.map
                 (fun (p : Engine.probe) ->
                   Cov.features ~scheme:scheme_name (Obs.events p.Engine.pr_obs))
                 (free :: List.map snd crashed))
          in
          let failures = ref [] in
          let consider crash (p : Engine.probe) =
            (match p.Engine.pr_verdict with
            | Ok () -> ()
            | Error msg ->
                failures :=
                  (classify_verdict msg, msg, crash) :: !failures);
            match p.Engine.pr_consistency with
            | Ok () -> ()
            | Error msg -> failures := ("F703", msg, crash) :: !failures
          in
          consider None free;
          List.iter (fun (index, p) -> consider (Some index) p) crashed;
          let failures = List.rev !failures in
          let o_failure =
            match failures with
            | [] -> None
            | (_, detail, crash) :: _ ->
                Some
                  {
                    f_codes =
                      dedup_sorted (List.map (fun (c, _, _) -> c) failures);
                    f_detail = detail;
                    f_crash = crash;
                  }
          in
          {
            o_input = input;
            o_features = features;
            o_schedule = len;
            o_failure;
            o_hints = hints_of_schedule evs;
          })

let run ?(opt = false) input =
  if Input.static_only input then run_static ~opt input
  else run_dynamic ~opt input

let primary_code o =
  match o.o_failure with
  | None -> None
  | Some f -> ( match f.f_codes with [] -> None | c :: _ -> Some c)
