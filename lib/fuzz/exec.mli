(** Candidate evaluation: one {!Input.t} through the full pipeline.

    Every input is first taken through edits → instrumentation → the
    static linter.  Clean inputs that are dynamically executable
    ({!Input.static_only} false) then run under the crash-injection
    engine: a crash-free recording plus one probed run per crash point
    in the input, each validated (registry oracle for workload bases,
    all-or-nothing heap equality for random genomes) and reconciled
    against the obs counters.  The outcome carries the coverage
    features of everything observed, plus crash-reseeding hints.

    Failures carry stable codes:
    - the linter's own [L]-codes for static findings;
    - [F701] — validation failed after crash + recovery (torn heap /
      oracle violation);
    - [F702] — recovery itself raised;
    - [F703] — obs/pmem counter reconciliation failed;
    - [F801] — instrumentation or machine construction raised. *)

type failure = {
  f_codes : string list;  (** sorted, deduplicated stable codes *)
  f_detail : string;  (** first diagnostic / error message *)
  f_crash : int option;
      (** effective crash index of the first failing dynamic run;
          [None] for static findings and crash-free failures *)
}

type outcome = {
  o_input : Input.t;
  o_features : int array;  (** union over all runs; sorted, deduped *)
  o_schedule : int;  (** recorded worker-phase events; [0] if static *)
  o_failure : failure option;
  o_hints : int list;
      (** crash indices at fence/lock events of the recorded schedule —
          where region boundaries and FASE transitions persist *)
}

val instrumented : ?opt:bool -> Input.t -> Ido_ir.Ir.program
(** The input's program after stage-ordered edits and instrumentation;
    [~opt:true] additionally runs the persistence-redundancy optimizer
    ([Ido_opt]) between instrumentation and the [After_instrument]
    edits, mirroring the VM's own load path.
    @raise Failure when an edit or the instrumenter rejects it. *)

val run : ?opt:bool -> Input.t -> outcome
(** Deterministic: same input (and [opt]), same outcome (features
    included). *)

val primary_code : outcome -> string option
(** The first failure code, the finding's identity for deduplication
    ([None] when the outcome is clean). *)
