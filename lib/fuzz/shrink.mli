(** Greedy reproducer minimisation.

    Starting from a failing outcome, repeatedly tries strictly
    smaller variants of the input — fewer crash points, fewer edits,
    smaller genome — and keeps one exactly when it still fails with
    the {e same primary code}.  Every accepted step strictly decreases
    {!Input.size}, so shrinking terminates; the run budget bounds the
    rejected attempts in between.  Deterministic: candidates are
    generated and tried in a fixed order. *)

type result = {
  s_input : Input.t;  (** the minimised input *)
  s_outcome : Exec.outcome;  (** its (failing) outcome *)
  s_runs : int;  (** {!Exec.run} calls spent, the original excluded *)
}

val candidates : Input.t -> Input.t list
(** The one-step shrink candidates of an input, each strictly smaller,
    in trial order (exposed for the property tests). *)

val shrink : ?budget:int -> ?opt:bool -> Exec.outcome -> result
(** [budget] caps total {!Exec.run} calls (default 400); [opt] must
    match the flag the outcome was produced under so re-runs reproduce.
    @raise Invalid_argument if the outcome is not a failure. *)
