(** Persist-trace coverage: the fuzzer's novelty signal.

    PMFuzz's observation (ASPLOS'21) is that the interesting state
    space of a persistent-memory program is the space of {e persist
    traces}, not branch edges: two runs that execute the same code but
    order their stores, write-backs and fences differently can differ
    exactly where crash-consistency bugs live.  The obs layer already
    emits that trace; this module folds it into a bounded feature set:

    - {b n-grams} — per-thread 2- and 3-grams of
      {!Ido_obs.Obs.coverage_point} codes, hashed into a fixed bucket
      space (local persist-order shapes);
    - {b boundary edges} — consecutive region-boundary ids per thread
      (which static regions executed back to back, and whether the
      boundary persist was elided);
    - {b FASE-transition edges} — consecutive FASE-level events
      (enter/exit/boundary/crash/recovery-step) per thread, the
      coarse recovery-path shape.

    All features are salted with the scheme name, so the same trace
    shape under two schemes counts as two behaviours ("per scheme" in
    the digest definition).  The seen-set accumulates buckets across
    the whole campaign; an input is {e novel} when it contributes at
    least one unseen bucket. *)

val features : scheme:string -> Ido_obs.Obs.event list -> int array
(** The input's feature buckets, sorted and deduplicated —
    deterministic for a given event list. *)

val static_features :
  scheme:string -> codes:string list -> shape:string -> int array
(** Feature buckets for a statically-evaluated input (no trace): one
    bucket per diagnostic code plus one for the input's shape string,
    in the same bucket space as {!features}. *)

val digest : int array -> string
(** Compact stable fingerprint of a feature set (["<hex>-<count>"]);
    the corpus key of a survivor. *)

type t
(** The campaign-wide seen-set. *)

val create : unit -> t
val buckets : t -> int
(** Distinct buckets seen so far. *)

val novel : t -> int array -> int
(** How many of these buckets are unseen (0 = nothing new). *)

val add : t -> int array -> unit
