open Ido_ir
open Ido_runtime
module Mutate = Ido_lint.Mutate
module Wcommon = Ido_workloads.Wcommon

type op = Load of int | Store of int * int | Addi of int | Mix

type tree =
  | Seq of op list
  | If of op list * op list
  | Loop of int * op list
  | Unlocked of op list

type base = Workload of string | Random of tree list

type t = {
  scheme : Scheme.t;
  base : base;
  edits : Mutate.edit list;
  variant : string option;
  crashes : int list;
}

let make ?(edits = []) ?variant ?(crashes = []) ~scheme base =
  { scheme; base; edits; variant; crashes }

let tree_ops = function
  | Seq l | Unlocked l -> l
  | If (a, b) -> a @ b
  | Loop (_, l) -> l

let size t =
  let base_size =
    match t.base with
    | Workload _ -> 1
    | Random trees ->
        List.fold_left
          (fun acc tr ->
            let trips = match tr with Loop (n, _) -> n | _ -> 0 in
            acc + 1 + trips + List.length (tree_ops tr))
          0 trees
  in
  base_size
  + (2 * List.length t.edits)
  + (match t.variant with Some _ -> 2 | None -> 0)
  + List.length t.crashes

let mutated t = t.edits <> [] || t.variant <> None

let has_unlocked = function
  | Workload _ -> false
  | Random trees ->
      List.exists (function Unlocked _ -> true | _ -> false) trees

let static_only t = mutated t || has_unlocked t.base

let cells = 16

(* ---------- program construction ----------

   Mirrors the PR-1 idempotence harness: [init] allocates a
   [cells + 1]-word node (cells + lock holder), seeds the cells with
   distinguishable values and parks the node in root slot 0; [worker]
   runs the genome against it inside one lock-delineated FASE.  Ops of
   [Unlocked] trees are emitted after the unlock, in genome order —
   the lock-scope bug shape the linter flags as L301. *)

let initial_cell i = Int64.of_int (100 + i)

let random_program trees =
  let b0, _ = Builder.create ~name:"init" ~nparams:0 in
  let arr = Wcommon.alloc_node b0 (cells + 1) [] in
  for i = 0 to cells - 1 do
    Builder.store b0 Ir.Persistent (Ir.Reg arr) i (Ir.Imm (initial_cell i))
  done;
  Wcommon.set_root b0 0 (Ir.Reg arr);
  Builder.ret b0 None;
  let init = Builder.finish b0 in
  let b, _ = Builder.create ~name:"worker" ~nparams:1 in
  let arr = Wcommon.get_root b 0 in
  let lockid = Builder.bin b Ir.Add (Ir.Reg arr) (Ir.Imm (Int64.of_int cells)) in
  Builder.lock b (Ir.Reg lockid);
  let v1 = Builder.mov b (Ir.Imm 1L) in
  let v2 = Builder.mov b (Ir.Imm 2L) in
  let emit_op op =
    match op with
    | Load k ->
        let x = Builder.load b Ir.Persistent (Ir.Reg arr) (k mod cells) in
        Builder.assign b v1 (Ir.Reg x)
    | Store (k, v) ->
        let x = Builder.bin b Ir.Add (Ir.Reg v1) (Ir.Imm (Int64.of_int v)) in
        Builder.store b Ir.Persistent (Ir.Reg arr) (k mod cells) (Ir.Reg x)
    | Addi k -> Builder.assign_bin b v2 Ir.Add (Ir.Reg v2) (Ir.Imm (Int64.of_int k))
    | Mix -> Builder.assign_bin b v1 Ir.Xor (Ir.Reg v1) (Ir.Reg v2)
  in
  let emit_tree tr =
    match tr with
    | Seq ops -> List.iter emit_op ops
    | Unlocked _ -> ()
    | If (a, c) ->
        let parity = Builder.bin b Ir.And (Ir.Reg v2) (Ir.Imm 1L) in
        Builder.if_ b (Ir.Reg parity)
          ~then_:(fun () -> List.iter emit_op a)
          ~else_:(fun () -> List.iter emit_op c)
    | Loop (n, ops) ->
        let i = Builder.mov b (Ir.Imm 0L) in
        Builder.while_ b
          ~cond:(fun () ->
            Ir.Reg (Builder.bin b Ir.Lt (Ir.Reg i) (Ir.Imm (Int64.of_int n))))
          ~body:(fun () ->
            List.iter emit_op ops;
            Builder.assign_bin b i Ir.Add (Ir.Reg i) (Ir.Imm 1L))
  in
  List.iter emit_tree trees;
  Builder.unlock b (Ir.Reg lockid);
  List.iter
    (function Unlocked ops -> List.iter emit_op ops | _ -> ())
    trees;
  Builder.ret b None;
  { Ir.funcs = [ ("init", init); ("worker", Builder.finish b) ] }

let source_program t =
  match t.base with
  | Workload name -> Ido_workloads.Workload.named name
  | Random trees -> random_program trees

(* ---------- textual codec ----------

   The alphabet is letters, digits and [():;.|,/-] — none of which the
   harness's field scanner escapes, so the strings embed in NDJSON
   lines verbatim and round-trip byte-identically. *)

let op_to_string = function
  | Load k -> Printf.sprintf "L%d" k
  | Store (k, v) -> Printf.sprintf "S%d.%d" k v
  | Addi k -> Printf.sprintf "A%d" k
  | Mix -> "M"

let ops_to_string ops = String.concat ";" (List.map op_to_string ops)

let tree_to_string = function
  | Seq ops -> Printf.sprintf "s(%s)" (ops_to_string ops)
  | If (a, b) -> Printf.sprintf "i(%s/%s)" (ops_to_string a) (ops_to_string b)
  | Loop (n, ops) -> Printf.sprintf "l%d(%s)" n (ops_to_string ops)
  | Unlocked ops -> Printf.sprintf "u(%s)" (ops_to_string ops)

let trees_to_string trees = String.concat "|" (List.map tree_to_string trees)

let base_to_string = function
  | Workload name -> "workload:" ^ name
  | Random trees -> "random:" ^ trees_to_string trees

let op_of_string s =
  let num from =
    match int_of_string_opt (String.sub s from (String.length s - from)) with
    | Some n when n >= 0 -> Some n
    | _ -> None
  in
  if s = "M" then Some Mix
  else if String.length s < 2 then None
  else
    match s.[0] with
    | 'L' -> Option.map (fun k -> Load k) (num 1)
    | 'A' -> Option.map (fun k -> Addi k) (num 1)
    | 'S' -> (
        match String.index_opt s '.' with
        | None -> None
        | Some dot -> (
            match
              ( int_of_string_opt (String.sub s 1 (dot - 1)),
                int_of_string_opt
                  (String.sub s (dot + 1) (String.length s - dot - 1)) )
            with
            | Some k, Some v when k >= 0 && v >= 0 -> Some (Store (k, v))
            | _ -> None))
    | _ -> None

let ops_of_string s =
  if s = "" then Some []
  else
    let parts = String.split_on_char ';' s in
    let rec go acc = function
      | [] -> Some (List.rev acc)
      | p :: rest -> (
          match op_of_string p with
          | Some op -> go (op :: acc) rest
          | None -> None)
    in
    go [] parts

let tree_of_string s =
  let n = String.length s in
  let body from =
    if n >= from + 2 && s.[from] = '(' && s.[n - 1] = ')' then
      Some (String.sub s (from + 1) (n - from - 2))
    else None
  in
  if n < 3 then None
  else
    match s.[0] with
    | 's' -> Option.bind (body 1) (fun b -> Option.map (fun l -> Seq l) (ops_of_string b))
    | 'u' ->
        Option.bind (body 1)
          (fun b -> Option.map (fun l -> Unlocked l) (ops_of_string b))
    | 'i' ->
        Option.bind (body 1) (fun b ->
            match String.index_opt b '/' with
            | None -> None
            | Some slash -> (
                let a = String.sub b 0 slash in
                let c = String.sub b (slash + 1) (String.length b - slash - 1) in
                match (ops_of_string a, ops_of_string c) with
                | Some a, Some c -> Some (If (a, c))
                | _ -> None))
    | 'l' -> (
        match String.index_opt s '(' with
        | None -> None
        | Some paren ->
            Option.bind (int_of_string_opt (String.sub s 1 (paren - 1)))
              (fun trips ->
                if trips < 0 then None
                else
                  Option.bind (body paren)
                    (fun b ->
                      Option.map (fun l -> Loop (trips, l)) (ops_of_string b))))
    | _ -> None

let trees_of_string s =
  let parts = String.split_on_char '|' s in
  let rec go acc = function
    | [] -> Some (List.rev acc)
    | p :: rest -> (
        match tree_of_string p with
        | Some tr -> go (tr :: acc) rest
        | None -> None)
  in
  go [] parts

let strip_prefix ~prefix s =
  let pn = String.length prefix in
  if String.length s >= pn && String.sub s 0 pn = prefix then
    Some (String.sub s pn (String.length s - pn))
  else None

let base_of_string s =
  match strip_prefix ~prefix:"workload:" s with
  | Some name -> if name = "" then None else Some (Workload name)
  | None -> (
      match strip_prefix ~prefix:"random:" s with
      | Some dsl ->
          Option.map (fun trees -> Random trees) (trees_of_string dsl)
      | None -> None)

let base_label = function
  | Workload name -> name
  | Random trees -> Printf.sprintf "random%d" (List.length trees)

let label t =
  let parts =
    (Scheme.name t.scheme ^ "/" ^ base_label t.base)
    :: List.map Mutate.edit_to_string t.edits
    @ (match t.variant with Some v -> [ "var:" ^ v ] | None -> [])
    @
    match t.crashes with
    | [] -> []
    | cs -> [ Printf.sprintf "c%s" (String.concat "," (List.map string_of_int cs)) ]
  in
  String.concat "+" parts

(* ---------- NDJSON fields ---------- *)

let ints_to_string is = String.concat "," (List.map string_of_int is)

let ints_of_string s =
  if s = "" then Some []
  else
    let parts = String.split_on_char ',' s in
    let rec go acc = function
      | [] -> Some (List.rev acc)
      | p :: rest -> (
          match int_of_string_opt p with
          | Some n when n >= 0 -> go (n :: acc) rest
          | _ -> None)
    in
    go [] parts

let json_fields t =
  Printf.sprintf
    {|"scheme":"%s","base":"%s","edits":"%s","variant":"%s","crashes":"%s"|}
    (Scheme.name t.scheme) (base_to_string t.base)
    (String.concat "," (List.map Mutate.edit_to_string t.edits))
    (match t.variant with Some v -> v | None -> "")
    (ints_to_string t.crashes)

let of_json ~fail line =
  let module F = Ido_harness.Spec.Fields in
  let str key = F.string ~fail line ~key in
  let scheme_name = str "scheme" in
  let scheme =
    match Scheme.of_name scheme_name with
    | Some s -> s
    | None -> raise (fail (Printf.sprintf "unknown scheme %S" scheme_name))
  in
  let base =
    let raw = str "base" in
    match base_of_string raw with
    | Some b -> b
    | None -> raise (fail (Printf.sprintf "malformed base %S" raw))
  in
  let edits =
    let raw = str "edits" in
    if raw = "" then []
    else
      List.map
        (fun p ->
          match Mutate.edit_of_string p with
          | Some e -> e
          | None -> raise (fail (Printf.sprintf "malformed edit %S" p)))
        (String.split_on_char ',' raw)
  in
  let variant = match str "variant" with "" -> None | v -> Some v in
  let crashes =
    let raw = str "crashes" in
    match ints_of_string raw with
    | Some is -> is
    | None -> raise (fail (Printf.sprintf "malformed crashes %S" raw))
  in
  { scheme; base; edits; variant; crashes }

let equal (a : t) (b : t) = a = b
