(** The fuzzer's on-disk corpus: one NDJSON file, byte-stable.

    Layout (one JSON object per line):
    + a header pinning the format version, the campaign seed and the
      entry count;
    + one line per entry — its kind, the complete {!Input.t} (via
      {!Input.json_fields}), the failure codes, the coverage digest
      and a short detail message.

    Every entry replays from its line alone ({!replay_entry} is just
    {!Exec.run} of the decoded input), {!save} ∘ {!load} is the
    identity on bytes (the CI determinism job [cmp]s corpora from
    different [-j] levels), and {!to_mutants} feeds the surviving
    workload-base findings back into the PR-3 mutation corpus. *)

type kind =
  | Seed  (** campaign seed input, kept for provenance *)
  | Survivor  (** clean input that contributed novel coverage *)
  | Finding  (** failing input, already shrunk *)

type entry = {
  e_kind : kind;
  e_input : Input.t;
  e_codes : string list;  (** failure codes; [[]] for non-findings *)
  e_digest : string;  (** {!Cov.digest} of the input's features *)
  e_detail : string;  (** first diagnostic/error; [""] for non-findings *)
}

type t = { c_seed : int; c_entries : entry list }

val entry_of_outcome : kind -> Exec.outcome -> entry

val to_ndjson : t -> string
(** The full file contents — the single source of byte stability. *)

val save : t -> string -> unit
(** @raise Sys_error when the path is unwritable (the CLI maps this
    to exit 2). *)

val load : string -> t
(** @raise Failure on a malformed file;
    @raise Sys_error when unreadable. *)

val replay_entry : entry -> Exec.outcome
(** Re-run the entry's input. *)

val verify : t -> (entry * string) list
(** Replay every entry and return the mismatches: findings whose
    primary code changed or stopped failing, non-findings that now
    fail.  [[]] means the corpus is faithful. *)

val to_mutants : t -> Ido_lint.Mutate.t list
(** The workload-base findings that carry seeded edits or a variant,
    as mutation-corpus entries (named ["fuzz-<n>-<code>"], expectation
    = the finding's primary code).  Random-genome findings have no
    registry workload and are skipped. *)
