module Mutate = Ido_lint.Mutate

type kind = Seed | Survivor | Finding

type entry = {
  e_kind : kind;
  e_input : Input.t;
  e_codes : string list;
  e_digest : string;
  e_detail : string;
}

type t = { c_seed : int; c_entries : entry list }

let kind_name = function
  | Seed -> "seed"
  | Survivor -> "survivor"
  | Finding -> "finding"

let kind_of_name = function
  | "seed" -> Some Seed
  | "survivor" -> Some Survivor
  | "finding" -> Some Finding
  | _ -> None

let entry_of_outcome e_kind (o : Exec.outcome) =
  let e_codes, e_detail =
    match o.Exec.o_failure with
    | None -> ([], "")
    | Some f -> (f.Exec.f_codes, f.Exec.f_detail)
  in
  {
    e_kind;
    e_input = o.Exec.o_input;
    e_codes;
    e_digest = Cov.digest o.Exec.o_features;
    e_detail;
  }

let entry_to_ndjson e =
  Printf.sprintf {|{"kind":"%s",%s,"codes":"%s","digest":"%s","detail":"%s"}|}
    (kind_name e.e_kind)
    (Input.json_fields e.e_input)
    (String.concat "," e.e_codes)
    e.e_digest
    (Ido_obs.Obs.json_escape e.e_detail)

let to_ndjson t =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf
    (Printf.sprintf {|{"ido_fuzz_corpus":1,"seed":%d,"entries":%d}|} t.c_seed
       (List.length t.c_entries));
  Buffer.add_char buf '\n';
  List.iter
    (fun e ->
      Buffer.add_string buf (entry_to_ndjson e);
      Buffer.add_char buf '\n')
    t.c_entries;
  Buffer.contents buf

let save t path =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () -> output_string oc (to_ndjson t))

let fail fmt = Printf.ksprintf (fun m -> Failure ("corpus: " ^ m)) fmt

let entry_of_line line =
  let module F = Ido_harness.Spec.Fields in
  let fl m = fail "%s" m in
  let e_kind =
    match kind_of_name (F.string ~fail:fl line ~key:"kind") with
    | Some k -> k
    | None -> raise (fail "unknown entry kind in %s" line)
  in
  let e_input = Input.of_json ~fail:fl line in
  let e_codes =
    match F.string ~fail:fl line ~key:"codes" with
    | "" -> []
    | s -> String.split_on_char ',' s
  in
  {
    e_kind;
    e_input;
    e_codes;
    e_digest = F.string ~fail:fl line ~key:"digest";
    e_detail = F.string ~fail:fl line ~key:"detail";
  }

let load path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () ->
      let header =
        try input_line ic with End_of_file -> raise (fail "empty file")
      in
      let module F = Ido_harness.Spec.Fields in
      let fl m = fail "%s" m in
      let version = F.int ~fail:fl header ~key:"ido_fuzz_corpus" in
      if version <> 1 then raise (fail "unsupported version %d" version);
      let c_seed = F.int ~fail:fl header ~key:"seed" in
      let count = F.int ~fail:fl header ~key:"entries" in
      let entries = ref [] in
      (try
         while true do
           let line = input_line ic in
           if String.trim line <> "" then
             entries := entry_of_line line :: !entries
         done
       with End_of_file -> ());
      let c_entries = List.rev !entries in
      if List.length c_entries <> count then
        raise
          (fail "header claims %d entries, file has %d" count
             (List.length c_entries));
      { c_seed; c_entries })

let replay_entry e = Exec.run e.e_input

let verify t =
  List.filter_map
    (fun e ->
      let o = replay_entry e in
      match (e.e_kind, o.Exec.o_failure) with
      | Finding, None -> Some (e, "finding no longer fails")
      | Finding, Some f ->
          let was = match e.e_codes with c :: _ -> c | [] -> "" in
          let now = match f.Exec.f_codes with c :: _ -> c | [] -> "" in
          if was <> now then
            Some (e, Printf.sprintf "primary code changed: %s -> %s" was now)
          else None
      | (Seed | Survivor), Some f ->
          Some
            (e, Printf.sprintf "clean entry now fails: %s" f.Exec.f_detail)
      | (Seed | Survivor), None -> None)
    t.c_entries

let to_mutants t =
  let n = ref 0 in
  List.filter_map
    (fun e ->
      match (e.e_kind, e.e_input.Input.base, e.e_codes) with
      | Finding, Input.Workload workload, expect :: _
        when e.e_input.Input.edits <> [] || e.e_input.Input.variant <> None ->
          incr n;
          let name = Printf.sprintf "fuzz-%d-%s" !n expect in
          Some
            (Mutate.ingest ~name
               ~descr:
                 (Printf.sprintf "fuzzer finding %s on %s"
                    (Input.label e.e_input) workload)
               ~scheme:e.e_input.Input.scheme ~workload ~expect
               ?variant:e.e_input.Input.variant ~edits:e.e_input.Input.edits
               ())
      | _ -> None)
    t.c_entries
