(** Shared experiment machinery: throughput runs, crash–recover–check
    runs, and the scale presets that size every figure. *)

open Ido_util
open Ido_ir
open Ido_runtime

(** How large to run the experiments.  [Quick] regenerates every
    figure's shape in a few minutes of host time; [Full] uses more
    operations and thread counts closer to the paper's 64-thread
    machine. *)
type scale = Quick | Full

val pmap : ?pool:Pool.t -> ?chunk:int -> ('a -> 'b) -> 'a list -> 'b list
(** Order-preserving map over independent experiment cells: on a pool
    of size > 1 the cells run on worker domains (each boots a private
    machine), and results return in input order, so rendered panels
    are identical to a serial run at every [-j] and chunk size.
    [chunk] batches consecutive cells into one pool task ([1], the
    default: one task per cell — sweep cells are already coarse;
    [0]: auto-size from the list length and pool width).  Without a
    pool this is [List.map]. *)

val thread_counts : scale -> int list
(** Worker counts for the scalability sweeps. *)

val micro_total_ops : scale -> int
(** Total operations (divided among workers) per microbenchmark run. *)

val app_total_ops : scale -> int

module Spec = Spec
(** One experiment cell as a first-class value — see {!Spec.t}. *)

type run = {
  scheme : Scheme.t;
  mops : float;  (** throughput, millions of operations per second *)
  sim_ns : Timebase.ns;  (** simulated duration of the run *)
  ops : int;
  fences : int;
  clwbs : int;
}

type profile = {
  prun : run;  (** the basic throughput measurements *)
  rollup : Ido_obs.Obs.rollup;  (** aggregate event rollup of the run *)
  fases : int;  (** distinct dynamic FASEs observed *)
  consistency : (unit, string) result;
      (** {!Ido_obs.Obs.check} of the rollup against the pmem counter
          deltas of the measured window *)
}

val measure : ?program:Ir.program -> ?opt:bool -> Spec.t -> profile
(** The measurement entry point: initialise, make the setup durable,
    run [spec.threads] workers of [spec.ops] operations each to
    completion, and report.  With [spec.obs] set, an unbuffered
    {!Ido_obs.Obs} sink is attached over the measured window — per-
    event rollups (log bytes, boundaries, lock traffic, ...) at
    constant memory, reconciled against the pmem counters; without it
    the rollup is zero and [consistency] is trivially [Ok].

    [?program] substitutes a custom-parameterised program for the
    registry's (the figure sweeps size workloads beyond what the
    registry names); the spec's [workload] field is then only a
    label.  [?opt] runs the persistence-redundancy optimizer
    ([Ido_opt]) over the instrumented program before execution — the
    same pipeline [ido_check optimize] verifies. *)

type crash_report = {
  crashed_at : Timebase.ns;
  recovery : Ido_vm.Recover.stats;
  check_ok : bool;
  check_count : int;  (** the count observed by the [check] function *)
  undo_records : int;  (** UNDO records accumulated before the crash *)
}

val crash_check :
  ?program:Ir.program -> crash_at:Timebase.ns -> Spec.t -> crash_report
(** Run the spec's workers, power-fail at [crash_at] (simulated),
    recover, then run the workload's [check] function on the recovered
    heap. *)

(** {1 Deprecated wrappers}

    The pre-[Spec] interface, kept for out-of-tree callers.  Each call
    forwards to {!measure} / {!crash_check}; [total_ops] is divided
    among the workers ([max 1 (total_ops / threads)] each).  New code
    should build a {!Spec.t}. *)

val throughput :
  ?seed:int ->
  ?latency:Ido_nvm.Latency.t ->
  ?collect_region_stats:bool ->
  scheme:Scheme.t ->
  threads:int ->
  total_ops:int ->
  Ir.program ->
  run
(** Deprecated: [(measure ~program spec).prun] with [obs] off. *)

val profile :
  ?seed:int ->
  ?latency:Ido_nvm.Latency.t ->
  ?opt:bool ->
  scheme:Scheme.t ->
  threads:int ->
  total_ops:int ->
  Ir.program ->
  profile
(** Deprecated: {!measure} with [obs] on. *)

val crash_recover_check :
  ?seed:int ->
  scheme:Scheme.t ->
  threads:int ->
  ops_per_thread:int ->
  crash_at:Timebase.ns ->
  Ir.program ->
  crash_report
(** Deprecated: {!crash_check}. *)

val region_stats :
  ?seed:int ->
  threads:int ->
  total_ops:int ->
  Ir.program ->
  Cdf.t * Cdf.t
(** Run under iDO and return the Fig. 8 distributions:
    (stores per dynamic region, live-in registers per region). *)
