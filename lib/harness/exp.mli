(** Shared experiment machinery: throughput runs, crash–recover–check
    runs, and the scale presets that size every figure. *)

open Ido_util
open Ido_ir
open Ido_runtime

(** How large to run the experiments.  [Quick] regenerates every
    figure's shape in a few minutes of host time; [Full] uses more
    operations and thread counts closer to the paper's 64-thread
    machine. *)
type scale = Quick | Full

val pmap : ?pool:Pool.t -> ('a -> 'b) -> 'a list -> 'b list
(** Order-preserving map over independent experiment cells: on a pool
    of size > 1 the cells run on worker domains (each boots a private
    machine), and results return in input order, so rendered panels
    are identical to a serial run.  Without a pool this is
    [List.map]. *)

val thread_counts : scale -> int list
(** Worker counts for the scalability sweeps. *)

val micro_total_ops : scale -> int
(** Total operations (divided among workers) per microbenchmark run. *)

val app_total_ops : scale -> int

type run = {
  scheme : Scheme.t;
  mops : float;  (** throughput, millions of operations per second *)
  sim_ns : Timebase.ns;  (** simulated duration of the run *)
  ops : int;
  fences : int;
  clwbs : int;
}

val throughput :
  ?seed:int ->
  ?latency:Ido_nvm.Latency.t ->
  ?collect_region_stats:bool ->
  scheme:Scheme.t ->
  threads:int ->
  total_ops:int ->
  Ir.program ->
  run
(** Initialise, make the setup durable, run [threads] workers sharing
    [total_ops] operations to completion, and report throughput. *)

type profile = {
  prun : run;  (** the same measurements {!throughput} reports *)
  rollup : Ido_obs.Obs.rollup;  (** aggregate event rollup of the run *)
  fases : int;  (** distinct dynamic FASEs observed *)
  consistency : (unit, string) result;
      (** {!Ido_obs.Obs.check} of the rollup against the pmem counter
          deltas of the measured window *)
}

val profile :
  ?seed:int ->
  ?latency:Ido_nvm.Latency.t ->
  scheme:Scheme.t ->
  threads:int ->
  total_ops:int ->
  Ir.program ->
  profile
(** {!throughput} with an unbuffered {!Ido_obs.Obs} sink attached over
    the measured window — per-event rollups (log bytes, boundaries,
    lock traffic, ...) at constant memory, reconciled against the pmem
    counters on every run. *)

type crash_report = {
  crashed_at : Timebase.ns;
  recovery : Ido_vm.Recover.stats;
  check_ok : bool;
  check_count : int;  (** the count observed by the [check] function *)
  undo_records : int;  (** UNDO records accumulated before the crash *)
}

val crash_recover_check :
  ?seed:int ->
  scheme:Scheme.t ->
  threads:int ->
  ops_per_thread:int ->
  crash_at:Timebase.ns ->
  Ir.program ->
  crash_report
(** Run workers, power-fail at [crash_at] (simulated), recover, then
    run the workload's [check] function on the recovered heap. *)

val region_stats :
  ?seed:int ->
  threads:int ->
  total_ops:int ->
  Ir.program ->
  Cdf.t * Cdf.t
(** Run under iDO and return the Fig. 8 distributions:
    (stores per dynamic region, live-in registers per region). *)
