(** One experiment cell, as a first-class value.

    A spec names everything {!Exp.measure} and {!Exp.crash_check} need
    to boot a machine and run a workload: the scheme, the workload
    (resolved through the {!Ido_workloads.Workload} registry), the VM
    seed, the worker count and the per-thread operation count, plus
    the two non-serialisable knobs (latency model and observability).

    Its five serialisable fields are exactly the shared prefix of the
    [Ido_check] trace header, emitted by {!json_fields} and parsed
    back by {!of_json}, so a spec round-trips through a trace file. *)

open Ido_runtime

type t = {
  scheme : Scheme.t;
  workload : string;  (** a {!Ido_workloads.Workload.names} entry *)
  seed : int;  (** VM seed: fixes the op streams and the event schedule *)
  threads : int;
  ops : int;  (** operations {e per thread} *)
  latency : Ido_nvm.Latency.t option;  (** [None] = the default model *)
  obs : bool;
      (** attach an {!Ido_obs.Obs} sink over the measured window and
          reconcile its rollup against the pmem counters *)
}

val make :
  ?seed:int ->
  ?latency:Ido_nvm.Latency.t ->
  ?obs:bool ->
  scheme:Scheme.t ->
  workload:string ->
  threads:int ->
  ops:int ->
  unit ->
  t
(** Defaults: [seed 42], default latency, no observability. *)

val with_scheme : t -> Scheme.t -> t
val with_threads : t -> int -> t

val workload : t -> Ido_workloads.Workload.t
(** @raise Invalid_argument for a name missing from the registry. *)

val program : t -> Ido_ir.Ir.program
(** The registry program for {!field-workload}, built on demand.
    @raise Invalid_argument for a name missing from the registry. *)

(** {1 JSON round-tripping} *)

val json_fields : t -> string
(** The serialisable fields as a JSON fragment (no braces):
    [{|"scheme":"ido","workload":"stack","seed":42,"threads":4,"ops":100|}].
    Field order and formatting are stable — trace files are compared
    byte for byte. *)

val of_json : fail:(string -> exn) -> string -> t
(** Parse the {!json_fields} fields back out of a JSON line (e.g. a
    trace header).  [latency]/[obs] take their defaults.  Raises
    [fail msg] on a missing or malformed field or an unknown
    scheme. *)

(** Minimal by-key field extraction for the flat single-line JSON this
    repository writes (trace headers/footers, serve reports).  Not a
    general JSON parser. *)
module Fields : sig
  val find : string -> key:string -> int option
  (** Position just past [,"key":], or [None]. *)

  val int : fail:(string -> exn) -> string -> key:string -> int
  val string : fail:(string -> exn) -> string -> key:string -> string
end
