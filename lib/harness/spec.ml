open Ido_runtime

type t = {
  scheme : Scheme.t;
  workload : string;
  seed : int;
  threads : int;
  ops : int;
  latency : Ido_nvm.Latency.t option;
  obs : bool;
}

let make ?(seed = 42) ?latency ?(obs = false) ~scheme ~workload ~threads ~ops ()
    =
  { scheme; workload; seed; threads; ops; latency; obs }

let with_scheme t scheme = { t with scheme }
let with_threads t threads = { t with threads }

let workload t = Ido_workloads.Workload.get t.workload
let program t = Ido_workloads.Workload.named t.workload

(* ---------- JSON field round-tripping ----------

   The five serialisable fields appear in every trace header and in
   the serve report, always in this order and with this exact
   formatting — the trace replay CI check [cmp]s regenerated files
   byte for byte. *)

let json_fields t =
  Printf.sprintf {|"scheme":"%s","workload":"%s","seed":%d,"threads":%d,"ops":%d|}
    (Scheme.name t.scheme) t.workload t.seed t.threads t.ops

module Fields = struct
  let find line ~key =
    let pat = Printf.sprintf {|"%s":|} key in
    let n = String.length line and pn = String.length pat in
    let rec scan i =
      if i + pn > n then None
      else if String.sub line i pn = pat then Some (i + pn)
      else scan (i + 1)
    in
    scan 0

  let int ~fail line ~key =
    match find line ~key with
    | None -> raise (fail (Printf.sprintf "missing field %S" key))
    | Some i ->
        let n = String.length line in
        let j = ref i in
        if !j < n && line.[!j] = '-' then incr j;
        while !j < n && line.[!j] >= '0' && line.[!j] <= '9' do incr j done;
        if !j = i then
          raise (fail (Printf.sprintf "field %S is not a number" key));
        int_of_string (String.sub line i (!j - i))

  let string ~fail line ~key =
    match find line ~key with
    | None -> raise (fail (Printf.sprintf "missing field %S" key))
    | Some i ->
        let n = String.length line in
        if i >= n || line.[i] <> '"' then
          raise (fail (Printf.sprintf "field %S is not a string" key));
        let buf = Buffer.create 32 in
        let rec go j =
          if j >= n then
            raise (fail (Printf.sprintf "unterminated string in %S" key))
          else
            match line.[j] with
            | '"' -> Buffer.contents buf
            | '\\' when j + 1 < n ->
                (match line.[j + 1] with
                | 'n' -> Buffer.add_char buf '\n'; go (j + 2)
                | 'r' -> Buffer.add_char buf '\r'; go (j + 2)
                | 't' -> Buffer.add_char buf '\t'; go (j + 2)
                | 'u' when j + 5 < n ->
                    let code = int_of_string ("0x" ^ String.sub line (j + 2) 4) in
                    Buffer.add_char buf (Char.chr (code land 0xff));
                    go (j + 6)
                | c -> Buffer.add_char buf c; go (j + 2))
            | c -> Buffer.add_char buf c; go (j + 1)
        in
        go (i + 1)
end

let of_json ~fail line =
  let scheme_name = Fields.string ~fail line ~key:"scheme" in
  let scheme =
    match Scheme.of_name scheme_name with
    | Some s -> s
    | None -> raise (fail (Printf.sprintf "unknown scheme %S" scheme_name))
  in
  {
    scheme;
    workload = Fields.string ~fail line ~key:"workload";
    seed = Fields.int ~fail line ~key:"seed";
    threads = Fields.int ~fail line ~key:"threads";
    ops = Fields.int ~fail line ~key:"ops";
    latency = None;
    obs = false;
  }
