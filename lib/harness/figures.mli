(** Regeneration of every table and figure in the paper's evaluation
    (Sec. V).  Each function runs the corresponding experiment at the
    given {!Exp.scale} and returns the rendered text panel.  Expected
    shapes are documented per experiment in DESIGN.md §3 and recorded
    against actual output in EXPERIMENTS.md.

    Every sweep evaluates its (x-point × scheme) cells through
    {!Exp.pmap}: pass [?pool] to run the cells on a domain pool.
    Cells are independent (each boots a private machine) and results
    are reassembled in input order, so the rendered panels are
    identical to a serial run. *)

val fig5 : ?pool:Ido_util.Pool.t -> Exp.scale -> string
(** Memcached-like throughput vs thread count, insertion-intensive
    (50/50) and search-intensive (10/90) panels. *)

val fig6 : ?pool:Ido_util.Pool.t -> Exp.scale -> string
(** Redis-like throughput for small / medium / large key ranges. *)

val fig7 : ?pool:Ido_util.Pool.t -> Exp.scale -> string
(** Microbenchmark throughput vs thread count: stack, queue, ordered
    list, hash map. *)

val fig8 : ?pool:Ido_util.Pool.t -> Exp.scale -> string
(** Cumulative distributions of stores and live-in registers per
    dynamic idempotent region, for all six benchmarks. *)

val table1 : ?pool:Ido_util.Pool.t -> Exp.scale -> string
(** Recovery-time ratio (Atlas / iDO) at kill times 1–50 s, grounded
    in measured log-growth rates and actual recovery executions. *)

val fig9 : ?pool:Ido_util.Pool.t -> Exp.scale -> string
(** Throughput sensitivity to NVM write latency, 20–2000 ns. *)

val table2 : unit -> string
(** The qualitative system-property comparison. *)

val ablation : ?pool:Ido_util.Pool.t -> Exp.scale -> string
(** Beyond the paper's figures: throughput with each of iDO's design
    choices disabled (boundary elision, persist coalescing,
    single-fence indirect locking), and the volatile- vs
    nonvolatile-cache machine comparison the introduction argues
    about. *)

val all : ?pool:Ido_util.Pool.t -> Exp.scale -> (string * string) list
(** Every (name, panel) pair above, in paper order. *)
