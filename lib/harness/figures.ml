open Ido_util
open Ido_nvm
open Ido_runtime
open Ido_workloads

let scheme_label s = Scheme.name s

(* Split a flat cell list back into rows of [n] (the scheme count):
   sweeps evaluate their (x-point × scheme) grid as one flat list so a
   domain pool can run every cell concurrently, then reassemble. *)
let rec chunks n = function
  | [] -> []
  | xs ->
      let rec take k = function
        | x :: rest when k > 0 ->
            let taken, rest = take (k - 1) rest in
            (x :: taken, rest)
        | rest -> ([], rest)
      in
      let row, rest = take n xs in
      row :: chunks n rest

(* One throughput cell through the {!Exp.Spec} API.  [workload] is the
   registry name (or a label, when [?program] overrides with a
   custom-sized variant); [total_ops] is split among the workers as
   the historical interface did. *)
let mops_cell ?latency ?program ~workload ~scheme ~threads ~total_ops () =
  let spec =
    Exp.Spec.make ?latency ~scheme ~workload ~threads
      ~ops:(max 1 (total_ops / threads))
      ()
  in
  (Exp.measure ?program spec).Exp.prun.Exp.mops

let sweep ?pool ~x_label ~title ~schemes ~xs run =
  let cells =
    List.concat_map (fun x -> List.map (fun s -> (x, s)) schemes) xs
  in
  let vals = Exp.pmap ?pool (fun (x, s) -> run s x) cells in
  let rows =
    List.map2
      (fun x row -> (string_of_int x, row))
      xs
      (chunks (List.length schemes) vals)
  in
  Render.series ~title ~x_label ~columns:(List.map scheme_label schemes) rows

(* ------------------------------------------------------------------ *)
(* Fig. 5: Memcached-like throughput vs thread count.  Expected shape:
   iDO >= 2x the other FASE schemes, 25-33% of Origin at peak,
   Mnemosyne above iDO (the coarse cache lock favours its speculation),
   nothing scaling much past 8 threads. *)

let fig5 ?pool scale =
  let schemes =
    Scheme.[ Origin; Ido; Mnemosyne; Atlas; Justdo; Nvthreads ]
  in
  let threads = Exp.thread_counts scale in
  let total_ops = Exp.app_total_ops scale in
  let panel workload name =
    sweep ?pool ~x_label:"threads"
      ~title:(Printf.sprintf "Fig 5 (%s): Memcached-like throughput (Mops/s)" name)
      ~schemes ~xs:threads
      (fun scheme n -> mops_cell ~workload ~scheme ~threads:n ~total_ops ())
  in
  panel "kvcache50" "insertion-intensive 50/50"
  ^ "\n"
  ^ panel "kvcache10" "search-intensive 10/90"

(* ------------------------------------------------------------------ *)
(* Fig. 6: Redis-like single-threaded throughput across database
   sizes.  Expected: iDO beats NVML/Atlas/JUSTDO at every size; iDO's
   gap to Origin shrinks as the database grows (read path is free);
   NVML above Atlas (Atlas's multithread machinery is pure overhead
   here). *)

let fig6_sizes = function
  | Exp.Quick ->
      [ ("10K", 10_000, 1_000); ("100K", 100_000, 5_000); ("1M", 1_000_000, 20_000) ]
  | Exp.Full ->
      [ ("10K", 10_000, 2_000); ("100K", 100_000, 20_000); ("1M", 1_000_000, 60_000) ]

let fig6 ?pool scale =
  let schemes = Scheme.[ Origin; Ido; Nvml; Atlas; Justdo ] in
  let total_ops = Exp.app_total_ops scale in
  let sizes = fig6_sizes scale in
  let cells =
    List.concat_map
      (fun (_, key_range, prefill) ->
        let program = Objstore.program ~key_range ~prefill () in
        List.map (fun scheme -> (program, scheme)) schemes)
      sizes
  in
  let vals =
    Exp.pmap ?pool
      (fun (program, scheme) ->
        mops_cell ~program ~workload:"objstore" ~scheme ~threads:1 ~total_ops ())
      cells
  in
  let rows =
    List.map2
      (fun (label, _, _) row -> (label, row))
      sizes
      (chunks (List.length schemes) vals)
  in
  Render.series
    ~title:
      "Fig 6: Redis-like throughput (Mops/s), 80% get / 20% put,\n\
       power-law keys; rows are key ranges (prefilled with the hot set)"
    ~x_label:"keys" ~columns:(List.map scheme_label schemes) rows

(* ------------------------------------------------------------------ *)
(* Fig. 7: microbenchmark scalability.  Expected: iDO matches or beats
   the FASE schemes everywhere and scales near-linearly on the hash
   map; Mnemosyne wins at low thread counts on the ordered list with an
   iDO crossover at high counts; the stack serialises for everyone. *)

let fig7 ?pool scale =
  let schemes = Scheme.[ Ido; Atlas; Mnemosyne; Justdo ] in
  let threads = Exp.thread_counts scale in
  let total_ops = Exp.micro_total_ops scale in
  let panel name workload =
    sweep ?pool ~x_label:"threads"
      ~title:(Printf.sprintf "Fig 7 (%s): throughput (Mops/s)" name)
      ~schemes ~xs:threads
      (fun scheme n -> mops_cell ~workload ~scheme ~threads:n ~total_ops ())
  in
  String.concat "\n"
    [
      panel "stack" "stack";
      panel "queue" "queue";
      panel "ordered list" "olist";
      panel "hash map" "hmap";
    ]

(* ------------------------------------------------------------------ *)
(* Fig. 8: region characteristics under iDO.  Expected: micros mostly
   0-1 stores per region; the applications have a sizable multi-store
   fraction; >99% of regions have fewer than 5 live-in registers. *)

let fig8_benchmarks =
  [
    ("stack", Stack.program (), 4);
    ("queue", Queue.program (), 4);
    ("olist", Olist.program (), 4);
    ("hmap", Hmap.program (), 4);
    ("memcached", Kvcache.program ~insert_pct:50 (), 4);
    ("redis", Objstore.program ~key_range:10_000 ~prefill:1_000 (), 1);
  ]

let fig8 ?pool scale =
  let total_ops = Exp.micro_total_ops scale / 2 in
  let stats =
    Exp.pmap ?pool
      (fun (name, program, threads) ->
        (name, Exp.region_stats ~threads ~total_ops program))
      fig8_benchmarks
  in
  let names = List.map fst stats in
  let stores = List.map (fun (_, (s, _)) -> Cdf.points s) stats in
  let regs = List.map (fun (_, (_, r)) -> Cdf.points r) stats in
  Render.cdf_panel
    ~title:"Fig 8 (top): cumulative % of dynamic regions with <= N stores"
    ~names stores
  ^ "\n"
  ^ Render.cdf_panel
      ~title:"Fig 8 (bottom): cumulative % of dynamic regions with <= N live-in registers"
      ~names regs

(* ------------------------------------------------------------------ *)
(* Table I: recovery time ratio Atlas/iDO at increasing kill times.
   Both recoveries are actually executed at a short simulated kill
   time (validating correctness and grounding the constants); the
   longer kill times extrapolate Atlas's measured log-growth rate,
   exactly the linear behaviour Sec. V-D reports.  Expected: ratios
   near or below 1 at 1 s, growing into the tens-hundreds by 50 s,
   largest for the ordered list and smallest for the hash map. *)

let table1 ?pool scale =
  let threads = match scale with Exp.Quick -> 8 | Exp.Full -> 32 in
  let window = Timebase.ms 3 in
  let kill_times = [ 1; 10; 20; 30; 40; 50 ] in
  let micros =
    [
      ("Stack", "stack");
      ("Queue", "queue");
      ("OrderedList", "olist");
      ("HashMap", "hmap");
    ]
  in
  let atlas_base = Timebase.ms 50 in
  let atlas_per_record = 75 in
  let rows =
    Exp.pmap ?pool
      (fun (name, workload) ->
        let spec scheme =
          Exp.Spec.make ~scheme ~workload ~threads ~ops:1_000_000 ()
        in
        let atlas = Exp.crash_check ~crash_at:window (spec Scheme.Atlas) in
        if not atlas.Exp.check_ok then
          failwith (name ^ ": Atlas recovery check failed");
        let ido = Exp.crash_check ~crash_at:window (spec Scheme.Ido) in
        if not ido.Exp.check_ok then
          failwith (name ^ ": iDO recovery check failed");
        let records_per_ns =
          float_of_int atlas.Exp.undo_records
          /. float_of_int (max 1 atlas.Exp.crashed_at)
        in
        let ido_ns = ido.Exp.recovery.Ido_vm.Recover.simulated_time in
        let ratio_at secs =
          let records = records_per_ns *. float_of_int (Timebase.s secs) in
          let atlas_ns =
            float_of_int atlas_base +. (records *. float_of_int atlas_per_record)
          in
          atlas_ns /. float_of_int ido_ns
        in
        (name, List.map ratio_at kill_times))
      micros
  in
  Render.series
    ~title:
      (Printf.sprintf
         "Table I: recovery time ratio (Atlas / iDO), %d threads;\n\
          grounded at a %.0f ms crash (recovery executed and verified),\n\
          extrapolated from the measured Atlas log-growth rate"
         threads (Timebase.to_ms window))
    ~x_label:"benchmark"
    ~columns:(List.map (fun k -> string_of_int k ^ "s") kill_times)
    rows

(* ------------------------------------------------------------------ *)
(* Fig. 9: sensitivity to NVM write latency.  Expected: iDO and Atlas
   hold their throughput to ~100 ns of extra latency and then degrade;
   JUSTDO loses 1.5-2x already at small delays (it fences at every
   store). *)

let fig9 ?pool scale =
  let schemes = Scheme.[ Ido; Atlas; Justdo ] in
  let delays = [ 20; 50; 100; 200; 500; 1000; 2000 ] in
  let threads = match scale with Exp.Quick -> 8 | Exp.Full -> 32 in
  let total_ops = Exp.app_total_ops scale in
  let panel name (workload, program) threads =
    let cells =
      List.concat_map (fun d -> List.map (fun s -> (d, s)) schemes) delays
    in
    let vals =
      Exp.pmap ?pool
        (fun (d, scheme) ->
          let latency = Latency.with_nvm_extra Latency.default d in
          mops_cell ~latency ?program ~workload ~scheme ~threads ~total_ops ())
        cells
    in
    let rows =
      List.map2
        (fun d row -> (string_of_int d, row))
        delays
        (chunks (List.length schemes) vals)
    in
    Render.series
      ~title:(Printf.sprintf "Fig 9 (%s): throughput (Mops/s) vs extra NVM latency (ns)" name)
      ~x_label:"delay" ~columns:(List.map scheme_label schemes) rows
  in
  panel "Memcached-like, insertion-intensive" ("kvcache50", None) threads
  ^ "\n"
  ^ panel "Redis-like, large database"
      ("objstore", Some (Objstore.program ~key_range:100_000 ~prefill:5_000 ()))
      1

(* ------------------------------------------------------------------ *)
(* Ablations of iDO's design choices (DESIGN.md §4): boundary elision
   for clean regions, persist coalescing of register logs (Sec. IV-B),
   single-fence indirect locking (Sec. III-B) — plus both machine
   models: the volatile-cache baseline and the NV-cache machine JUSTDO
   assumed, on which the paper argues iDO still wins. *)

let ablation ?pool scale =
  let total_ops = Exp.micro_total_ops scale / 2 in
  let threads = 8 in
  let base = Ido_vm.Vm.config Scheme.Ido in
  let variants =
    [
      ("full iDO", base);
      ("no boundary elision", { base with Ido_vm.Vm.elide_clean_boundaries = false });
      ("no persist coalescing", { base with Ido_vm.Vm.coalesce_registers = false });
      ("two-fence locks", { base with Ido_vm.Vm.single_fence_locks = false });
      ( "everything off",
        {
          base with
          Ido_vm.Vm.elide_clean_boundaries = false;
          coalesce_registers = false;
          single_fence_locks = false;
        } );
    ]
  in
  let workloads =
    [
      ("stack", Stack.program ());
      ("olist", Olist.program ());
      ("hmap", Hmap.program ());
      ("memcached", Kvcache.program ~insert_pct:50 ());
    ]
  in
  let run_with cfg program =
    let m = Ido_vm.Vm.create cfg program in
    let _ = Ido_vm.Vm.spawn m ~fname:"init" ~args:[] in
    (match Ido_vm.Vm.run m with `Idle -> () | _ -> failwith "ablation init");
    Ido_vm.Vm.flush_all m;
    let t0 = Ido_vm.Vm.clock m in
    let per = max 1 (total_ops / threads) in
    for _ = 1 to threads do
      ignore (Ido_vm.Vm.spawn m ~fname:"worker" ~args:[ Int64.of_int per ])
    done;
    (match Ido_vm.Vm.run m with `Idle -> () | _ -> failwith "ablation run");
    float_of_int (Ido_vm.Vm.total_ops m)
    /. float_of_int (Ido_vm.Vm.clock m - t0)
    *. 1000.0
  in
  let cells =
    List.concat_map
      (fun (_, cfg) -> List.map (fun (_, program) -> (cfg, program)) workloads)
      variants
  in
  let vals = Exp.pmap ?pool (fun (cfg, program) -> run_with cfg program) cells in
  let rows =
    List.map2
      (fun (vname, _) row -> (vname, row))
      variants
      (chunks (List.length workloads) vals)
  in
  let panel1 =
    Render.series
      ~title:
        (Printf.sprintf
           "Ablation: iDO design choices, %d threads (Mops/s; rows are variants)"
           threads)
      ~x_label:"variant" ~columns:(List.map fst workloads) rows
  in
  (* Machine model comparison on the hash map: every scheme, volatile
     vs nonvolatile caches. *)
  let schemes = Scheme.[ Ido; Atlas; Mnemosyne; Justdo ] in
  let machines =
    [
      ("volatile caches (ADR)", Latency.default);
      ("nonvolatile caches", Latency.nv_cache_machine);
    ]
  in
  let machine_cells =
    List.concat_map
      (fun (_, latency) -> List.map (fun s -> (latency, s)) schemes)
      machines
  in
  let machine_vals =
    Exp.pmap ?pool
      (fun (latency, scheme) ->
        mops_cell ~latency ~workload:"hmap" ~scheme ~threads ~total_ops ())
      machine_cells
  in
  let machine_rows =
    List.map2
      (fun (mname, _) row -> (mname, row))
      machines
      (chunks (List.length schemes) machine_vals)
  in
  let panel2 =
    Render.series
      ~title:
        "Ablation: machine model (hash map, 8 threads; the NV-cache row is
         the hypothetical machine JUSTDO was designed for)"
      ~x_label:"machine"
      ~columns:(List.map scheme_label schemes)
      machine_rows
  in
  panel1 ^ "\n" ^ panel2

(* ------------------------------------------------------------------ *)

let table2 () =
  Render.table ~title:"Table II: Failure-Atomic Systems and their Properties"
    ~header:Scheme.table2_header
    (List.map Scheme.table2_row
       Scheme.[ Ido; Atlas; Mnemosyne; Nvthreads; Justdo; Nvml ])

let all ?pool scale =
  [
    ("fig5", fig5 ?pool scale);
    ("fig6", fig6 ?pool scale);
    ("fig7", fig7 ?pool scale);
    ("fig8", fig8 ?pool scale);
    ("table1", table1 ?pool scale);
    ("fig9", fig9 ?pool scale);
    ("table2", table2 ());
    ("ablation", ablation ?pool scale);
  ]
