open Ido_util
open Ido_nvm
open Ido_runtime
module Vm = Ido_vm.Vm

type scale = Quick | Full

(* Order-preserving parallel map over independent experiment cells.
   Every cell boots its own machine (programs are immutable IR), so
   cells can run on a domain pool; results come back in input order,
   keeping rendered panels identical to a serial run.  [chunk]
   batches consecutive cells into one pool task ([0] = auto, [1] =
   one task per cell — the default, since sweep cells are already
   coarse). *)
let pmap ?pool ?(chunk = 1) f xs = Pool.opt_map_list ~chunk pool f xs

let thread_counts = function
  | Quick -> [ 1; 2; 4; 8; 16; 32 ]
  | Full -> [ 1; 2; 4; 8; 16; 32; 64 ]

let micro_total_ops = function Quick -> 6_000 | Full -> 24_000
let app_total_ops = function Quick -> 4_000 | Full -> 16_000

module Spec = Spec

type run = {
  scheme : Scheme.t;
  mops : float;
  sim_ns : Timebase.ns;
  ops : int;
  fences : int;
  clwbs : int;
}

let boot ?(seed = 42) ?latency ?(collect_region_stats = false) ?(opt = false)
    scheme program =
  let base = Vm.config scheme in
  let cfg =
    {
      base with
      seed;
      latency = Option.value ~default:base.Vm.latency latency;
      collect_region_stats;
      opt;
    }
  in
  let m = Vm.create cfg program in
  let _init = Vm.spawn m ~fname:"init" ~args:[] in
  (match Vm.run m with
  | `Idle -> ()
  | `Deadlock -> failwith "Exp: init deadlocked"
  | _ -> failwith "Exp: init did not finish");
  (* The populated structure stands in for a pre-existing persistent
     region: make it durable before measurement begins. *)
  Vm.flush_all m;
  m

let spawn_workers m ~threads ~total_ops =
  let per = max 1 (total_ops / threads) in
  for _ = 1 to threads do
    ignore (Vm.spawn m ~fname:"worker" ~args:[ Int64.of_int per ])
  done

type profile = {
  prun : run;
  rollup : Ido_obs.Obs.rollup;
  fases : int;
  consistency : (unit, string) result;
}

(* The single measurement entry point: every other throughput-style
   call is a thin wrapper.  [?program] overrides the registry program
   (the figures sweep custom-sized variants the registry does not
   name); the spec's [obs] flag decides whether the run carries an
   unbuffered observability sink reconciled against the pmem
   counters. *)
let measure ?program ?(opt = false) (s : Spec.t) =
  let program =
    match program with Some p -> p | None -> Spec.program s
  in
  let m =
    boot ~seed:s.Spec.seed ?latency:s.Spec.latency ~opt s.Spec.scheme program
  in
  let c0 = Pmem.counters (Vm.pmem m) in
  let stores0 = c0.Pmem.stores
  and writebacks0 = c0.Pmem.writebacks
  and fences0 = c0.Pmem.fences
  and evictions0 = c0.Pmem.evictions
  and clwbs0 = c0.Pmem.clwbs in
  let clock0 = Vm.clock m in
  (* Unbuffered sink: a profiling run only needs the rollups, so long
     sweeps stay constant-memory. *)
  let obs =
    if s.Spec.obs then (
      let obs = Ido_obs.Obs.create ~buffer:false () in
      Vm.set_obs m (Some obs);
      Some obs)
    else None
  in
  for _ = 1 to s.Spec.threads do
    ignore (Vm.spawn m ~fname:"worker" ~args:[ Int64.of_int s.Spec.ops ])
  done;
  (match Vm.run m with
  | `Idle -> ()
  | `Deadlock -> failwith "Exp: workload deadlocked"
  | _ -> failwith "Exp: workload did not finish");
  Vm.set_obs m None;
  let sim_ns = Vm.clock m - clock0 in
  let ops = Vm.total_ops m in
  let c = Pmem.counters (Vm.pmem m) in
  let consistency =
    match obs with
    | None -> Ok ()
    | Some obs ->
        Ido_obs.Obs.check obs
          ~stores:(c.Pmem.stores - stores0)
          ~writebacks:(c.Pmem.writebacks - writebacks0)
          ~fences:(c.Pmem.fences - fences0)
          ~evictions:(c.Pmem.evictions - evictions0)
  in
  {
    prun =
      {
        scheme = s.Spec.scheme;
        mops =
          (if sim_ns = 0 then 0.0
           else float_of_int ops /. float_of_int sim_ns *. 1000.0);
        sim_ns;
        ops;
        fences = c.Pmem.fences - fences0;
        clwbs = c.Pmem.clwbs - clwbs0;
      };
    rollup =
      (match obs with
      | Some obs -> Ido_obs.Obs.total obs
      | None -> Ido_obs.Obs.total (Ido_obs.Obs.create ~buffer:false ()));
    fases = (match obs with Some obs -> Ido_obs.Obs.fases obs | None -> 0);
    consistency;
  }

(* [workload] is only a label here: wrappers hand the program in
   directly, preserving the historical signatures. *)
let spec_of_legacy ?(seed = 42) ?latency ~obs ~scheme ~threads ~total_ops () =
  Spec.make ~seed ?latency ~obs ~scheme ~workload:"<inline>" ~threads
    ~ops:(max 1 (total_ops / threads))
    ()

let throughput ?seed ?latency ?collect_region_stats ~scheme ~threads ~total_ops
    program =
  match collect_region_stats with
  | Some true ->
      (* Region stats need the collection flag threaded through [boot];
         keep the historical path for this rarely used combination. *)
      let m = boot ?seed ?latency ~collect_region_stats:true scheme program in
      let c0 = Pmem.counters (Vm.pmem m) in
      let fences0 = c0.Pmem.fences and clwbs0 = c0.Pmem.clwbs in
      let clock0 = Vm.clock m in
      spawn_workers m ~threads ~total_ops;
      (match Vm.run m with
      | `Idle -> ()
      | `Deadlock -> failwith "Exp: workload deadlocked"
      | _ -> failwith "Exp: workload did not finish");
      let sim_ns = Vm.clock m - clock0 in
      let ops = Vm.total_ops m in
      let c = Pmem.counters (Vm.pmem m) in
      {
        scheme;
        mops =
          (if sim_ns = 0 then 0.0
           else float_of_int ops /. float_of_int sim_ns *. 1000.0);
        sim_ns;
        ops;
        fences = c.Pmem.fences - fences0;
        clwbs = c.Pmem.clwbs - clwbs0;
      }
  | _ ->
      (measure ~program
         (spec_of_legacy ?seed ?latency ~obs:false ~scheme ~threads ~total_ops
            ()))
        .prun

let profile ?seed ?latency ?opt ~scheme ~threads ~total_ops program =
  measure ~program ?opt
    (spec_of_legacy ?seed ?latency ~obs:true ~scheme ~threads ~total_ops ())

type crash_report = {
  crashed_at : Timebase.ns;
  recovery : Ido_vm.Recover.stats;
  check_ok : bool;
  check_count : int;
  undo_records : int;
}

let crash_check ?program ~crash_at (s : Spec.t) =
  let program =
    match program with Some p -> p | None -> Spec.program s
  in
  let m = boot ~seed:s.Spec.seed ?latency:s.Spec.latency s.Spec.scheme program in
  for _ = 1 to s.Spec.threads do
    ignore (Vm.spawn m ~fname:"worker" ~args:[ Int64.of_int s.Spec.ops ])
  done;
  let outcome = Vm.run ~until:crash_at m in
  (match outcome with
  | `Until | `Idle -> ()
  | `Deadlock -> failwith "Exp: workload deadlocked before crash"
  | `Max_steps -> failwith "Exp: step budget exhausted");
  let undo_records = Vm.undo_records_total m in
  let crashed_at = Vm.clock m in
  Vm.crash m;
  let recovery = Vm.recover m in
  let check = Vm.spawn m ~fname:"check" ~args:[] in
  let check_ok, check_count =
    match Vm.run m with
    | `Idle -> (
        match Vm.observations check with
        | [ n ] -> (true, Int64.to_int n)
        | _ -> (false, -1))
    | _ -> (false, -1)
    | exception Vm.Vm_error _ -> (false, -1)
  in
  { crashed_at; recovery; check_ok; check_count; undo_records }

let crash_recover_check ?seed ~scheme ~threads ~ops_per_thread ~crash_at program
    =
  crash_check ~program ~crash_at
    (Spec.make ?seed ~scheme ~workload:"<inline>" ~threads ~ops:ops_per_thread
       ())

let region_stats ?seed ~threads ~total_ops program =
  let m = boot ?seed ~collect_region_stats:true Scheme.Ido program in
  spawn_workers m ~threads ~total_ops;
  (match Vm.run m with
  | `Idle -> ()
  | _ -> failwith "Exp: region-stats run did not finish");
  Vm.region_stats m
