open Ido_ir

(* Structural and programming-model checks, reported as structured
   {!Diag.t} values with stable codes; the [string list] API below is a
   rendering of them. *)

let check_func_diags ?(allow_hooks = false) (f : Ir.func) =
  let diags = ref [] in
  let err ?pos ~code fmt =
    Printf.ksprintf
      (fun s -> diags := Diag.v ?pos ~func:f.name ~code s :: !diags)
      fmt
  in
  let nb = Array.length f.blocks in
  if nb = 0 then err ~code:"V101" "no blocks";
  let check_reg ?pos r =
    if r < 0 || r >= f.nregs then err ?pos ~code:"V102" "register r%d out of range" r
  in
  List.iter check_reg f.params;
  Array.iteri
    (fun b (blk : Ir.block) ->
      Array.iteri
        (fun i instr ->
          let pos = { Ir.blk = b; idx = i } in
          List.iter (check_reg ~pos) (Ir.instr_defs instr);
          List.iter (check_reg ~pos) (Ir.instr_uses instr);
          match instr with
          | Hook _ when not allow_hooks -> err ~pos ~code:"V103" "unexpected hook"
          | Alloca _ when b <> 0 -> err ~pos ~code:"V104" "alloca outside entry block"
          | _ -> ())
        blk.instrs;
      let tpos = { Ir.blk = b; idx = Array.length blk.instrs } in
      List.iter (check_reg ~pos:tpos) (Ir.term_uses blk.term);
      List.iter
        (fun s ->
          if s < 0 || s >= nb then
            err ~pos:tpos ~code:"V105" "branch target .%d out of range" s)
        (Ir.successors blk.term))
    f.blocks;
  if !diags <> [] then List.rev !diags
  else begin
    (* Structural checks passed; run the dataflow-based checks. *)
    let cfg = Cfg.build f in
    (match Fase.compute cfg with
    | Error e -> err ~code:"V113" "%s" e
    | Ok fase ->
        (try
           ignore
             (Ir.fold_instrs
                (fun () (pos : Ir.pos) instr ->
                  let inside = Fase.in_fase fase pos in
                  match instr with
                  | Call _ when inside ->
                      err ~pos ~code:"V106"
                        "call inside FASE (FASEs are single-function)"
                  | Intrinsic { intr = Rand; _ } when inside ->
                      err ~pos ~code:"V107" "non-idempotent rand inside FASE"
                  | Intrinsic { intr = Observe; _ } when inside ->
                      err ~pos ~code:"V108" "non-idempotent observe inside FASE"
                  | Intrinsic { intr = Nv_free; _ } when inside ->
                      err ~pos ~code:"V109"
                        "nv_free inside FASE would double-free on resumption"
                  | Load { space = Transient; _ } when inside ->
                      err ~pos ~code:"V110" "transient load inside FASE"
                  | Store { space = Transient; _ } when inside ->
                      err ~pos ~code:"V111" "transient store inside FASE"
                  | Alloca _ when inside -> err ~pos ~code:"V112" "alloca inside FASE"
                  | _ -> ())
                () f)
         with Failure e -> err ~code:"V113" "%s" e));
    (* Reducibility, reported via Regions.check on a lock-free fase. *)
    (try
       let rpo_index = Array.make nb max_int in
       List.iteri (fun i b -> rpo_index.(b) <- i) (Cfg.reverse_postorder cfg);
       Array.iteri
         (fun src (blk : Ir.block) ->
           if Cfg.reachable cfg src then
             List.iter
               (fun dst ->
                 if rpo_index.(dst) <= rpo_index.(src)
                    && not (Cfg.dominates cfg dst src)
                 then
                   err
                     ~pos:{ Ir.blk = src; idx = Array.length blk.instrs }
                     ~code:"V120" "irreducible control flow (edge %d -> %d)" src dst)
               (Ir.successors blk.term))
         f.blocks
     with Failure e -> err ~code:"V120" "%s" e);
    List.rev !diags
  end

(* The historical rendering: function name, message, position appended
   with Printf's "(b,i)" form.  Kept byte-compatible via Diag.render
   modulo the added [code] tag. *)
let render_legacy (d : Diag.t) =
  match d.pos with
  | None -> d.func ^ ": " ^ d.message
  | Some p -> Printf.sprintf "%s: %s at (%d,%d)" d.func d.message p.Ir.blk p.Ir.idx

let check_func ?allow_hooks (f : Ir.func) =
  match check_func_diags ?allow_hooks f with
  | [] -> Ok ()
  | ds -> Error (List.map render_legacy ds)

let check_program_diags ?allow_hooks (p : Ir.program) =
  let diags = ref [] in
  let err ~func ~code fmt =
    Printf.ksprintf (fun s -> diags := Diag.v ~func ~code s :: !diags) fmt
  in
  let names = Hashtbl.create 8 in
  List.iter
    (fun (name, (f : Ir.func)) ->
      if Hashtbl.mem names name then err ~func:name ~code:"V130" "duplicate function";
      Hashtbl.replace names name (List.length f.params);
      if name <> f.name then
        err ~func:f.name ~code:"V133" "function registered under name %s" name)
    p.funcs;
  List.iter
    (fun (_, f) ->
      diags := List.rev_append (check_func_diags ?allow_hooks f) !diags;
      ignore
        (Ir.fold_instrs
           (fun () pos instr ->
             match instr with
             | Ir.Call { func; args; _ } -> (
                 match Hashtbl.find_opt names func with
                 | None ->
                     diags :=
                       Diag.vf ~pos ~func:f.Ir.name ~code:"V131"
                         "call to unknown function %s" func
                       :: !diags
                 | Some arity ->
                     if List.length args <> arity then
                       diags :=
                         Diag.vf ~pos ~func:f.Ir.name ~code:"V132"
                           "call to %s with %d args (expects %d)" func
                           (List.length args) arity
                         :: !diags)
             | _ -> ())
           () f))
    p.funcs;
  List.rev !diags

let check_program ?allow_hooks (p : Ir.program) =
  match check_program_diags ?allow_hooks p with
  | [] -> Ok ()
  | ds -> Error (List.map render_legacy ds)

let check_program_exn ?allow_hooks p =
  match check_program ?allow_hooks p with
  | Ok () -> ()
  | Error es -> failwith (String.concat "\n" es)
