(** Static well-formedness checks for IR programs.

    Beyond structural checks (branch targets, register bounds, call
    arities), the validator enforces the programming model of
    Sec. II-B for resumption-based recovery:

    - FASEs are confined to a single function (no return with a lock
      held) and have consistent lock depth at joins;
    - no [Call] inside a FASE (Sec. IV-A-a assumption);
    - no non-idempotent intrinsics ([Rand], [Observe], [Nv_free])
      inside a FASE;
    - no transient loads or stores inside a FASE (a resumed region
      would re-read lost data);
    - [Alloca] only in the entry block, outside any FASE;
    - reducible control flow. *)

open Ido_ir

val check_func_diags : ?allow_hooks:bool -> Ir.func -> Diag.t list
(** All violations found in one function, as structured diagnostics
    with stable codes (V101–V120).  [allow_hooks] (default false)
    permits instrumentation hooks — used to re-validate instrumented
    output. *)

val check_program_diags : ?allow_hooks:bool -> Ir.program -> Diag.t list
(** Per-function checks plus call-graph checks (targets exist, arity
    matches, function names unique; V130–V133). *)

val check_func : ?allow_hooks:bool -> Ir.func -> (unit, string list) result
(** {!check_func_diags} rendered to the legacy message strings. *)

val check_program : ?allow_hooks:bool -> Ir.program -> (unit, string list) result
(** {!check_program_diags} rendered to the legacy message strings. *)

val check_program_exn : ?allow_hooks:bool -> Ir.program -> unit
(** @raise Failure with all messages joined. *)
