open Ido_ir

type t = {
  func : string;
  pos : Ir.pos option;
  code : string;
  message : string;
}

let v ?pos ~func ~code message = { func; pos; code; message }

let vf ?pos ~func ~code fmt =
  Printf.ksprintf (fun message -> { func; pos; code; message }) fmt

let render d =
  match d.pos with
  | None -> Printf.sprintf "%s: [%s] %s" d.func d.code d.message
  | Some p ->
      Printf.sprintf "%s: [%s] %s at (%d,%d)" d.func d.code d.message p.Ir.blk
        p.Ir.idx

let compare a b =
  let c = String.compare a.func b.func in
  if c <> 0 then c
  else
    let c =
      match (a.pos, b.pos) with
      | None, None -> 0
      | None, Some _ -> -1
      | Some _, None -> 1
      | Some p, Some q -> Ir.compare_pos p q
    in
    if c <> 0 then c else String.compare a.code b.code

let pp fmt d = Format.pp_print_string fmt (render d)
