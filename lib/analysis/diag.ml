open Ido_ir

type t = {
  func : string;
  pos : Ir.pos option;
  code : string;
  message : string;
}

let v ?pos ~func ~code message = { func; pos; code; message }

let vf ?pos ~func ~code fmt =
  Printf.ksprintf (fun message -> { func; pos; code; message }) fmt

let render d =
  match d.pos with
  | None -> Printf.sprintf "%s: [%s] %s" d.func d.code d.message
  | Some p ->
      Printf.sprintf "%s: [%s] %s at (%d,%d)" d.func d.code d.message p.Ir.blk
        p.Ir.idx

let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun ch ->
      match ch with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\r' -> Buffer.add_string buf "\\r"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let json d =
  let pos =
    match d.pos with
    | None -> "null"
    | Some p -> Printf.sprintf "[%d,%d]" p.Ir.blk p.Ir.idx
  in
  Printf.sprintf "{\"func\":\"%s\",\"pos\":%s,\"code\":\"%s\",\"message\":\"%s\"}"
    (json_escape d.func) pos (json_escape d.code) (json_escape d.message)

let compare a b =
  let c = String.compare a.func b.func in
  if c <> 0 then c
  else
    let c =
      match (a.pos, b.pos) with
      | None, None -> 0
      | None, Some _ -> -1
      | Some _, None -> 1
      | Some p, Some q -> Ir.compare_pos p q
    in
    if c <> 0 then c else String.compare a.code b.code

let pp fmt d = Format.pp_print_string fmt (render d)
