(** Structured diagnostics shared by the validator ({!Validate}) and
    the static crash-consistency linter ([Ido_lint]).

    A diagnostic pins a finding to a function (and usually an
    instruction position) and carries a {e stable error code} — a short
    identifier like ["V106"] or ["L301"] that tests, mutation corpora
    and CI greps can match without depending on message wording.  The
    legacy [string list] APIs are renderings of these values. *)

open Ido_ir

type t = {
  func : string;  (** function the finding is in *)
  pos : Ir.pos option;  (** [None] for function- or program-level findings *)
  code : string;  (** stable error code, e.g. ["V106"], ["L301"] *)
  message : string;  (** human explanation, free to change wording *)
}

val v : ?pos:Ir.pos -> func:string -> code:string -> string -> t

val vf :
  ?pos:Ir.pos ->
  func:string ->
  code:string ->
  ('a, unit, string, t) format4 ->
  'a
(** [Printf]-style constructor. *)

val render : t -> string
(** ["func: [code] message at (b,i)"] — the canonical one-line form
    used by the legacy [string list] APIs and the CLI. *)

val json : t -> string
(** One-line NDJSON object with the stable field order
    [func, pos, code, message]; [pos] is [[blk,idx]] or [null].
    Shared by [ido_check lint --json] and the optimizer's [O1xx]
    rewrite reports; byte stability is dune-rule-tested. *)

val json_escape : string -> string

val compare : t -> t -> int
(** Order by function, position, code — the report order. *)

val pp : Format.formatter -> t -> unit
