(** Scheme-specific instrumentation passes (Fig. 4).

    Each pass takes a validated, hook-free program and returns the
    same program with runtime hooks inserted (and, for Mnemosyne, lock
    operations replaced by transaction boundaries).  Registers and
    block structure are preserved, so the analyses computed on the
    original function remain valid for the instrumented one.

    Insertion rules per scheme:

    - [Ido]: a [Hregion] boundary at every cut of {!Ido_analysis.Regions}
      (after acquires, before releases, at in-FASE loop headers, and at
      the hitting-set cuts for WAR pairs), plus indirect-lock records
      around each lock operation and FASE enter/exit bookkeeping.
    - [Justdo]: a [Hjustdo_store] before every in-FASE persistent or
      stack store; two-fence lock ownership records.
    - [Atlas]: a [Hundo_store] before every in-FASE persistent store;
      lock ownership records; a [Hdurable_commit] (flush FASE data)
      before the outermost release.
    - [Mnemosyne]: the outermost acquire becomes [Htxn_begin], the
      outermost release [Htxn_commit], inner lock operations are
      elided (speculation); in-FASE stores get [Hredo_store].
    - [Nvml]: programmer-delineated durable regions only — UNDO
      entries per store, commit at [Durable_end]; lock-based FASEs are
      deliberately left uninstrumented (library, not compiler).
    - [Nvthreads]: [Hpage_log] before in-FASE stores (first-touch page
      imaging), page commit at FASE end.
    - [Origin]: identity. *)

open Ido_ir
open Ido_runtime

val instrument_func : Scheme.t -> Ir.func -> Ir.func

val instrument : ?lint:bool -> ?opt:bool -> Scheme.t -> Ir.program -> Ir.program
(** Instrument every function.  With [~lint:true] the result is passed
    through the static crash-consistency linter
    ({!Ido_lint.Lint.lint_program}) as a post-pass and [Failure] is
    raised if any diagnostic fires — a self-check that the hooks just
    inserted satisfy their own contract. *)

val region_plan : Ir.func -> Ido_analysis.Regions.t
(** The iDO region plan of a function (exposed for region statistics
    and tests). *)
