open Ido_ir
open Ido_analysis
open Ido_runtime

let region_plan (f : Ir.func) =
  let cfg = Cfg.build f in
  let fase = Fase.compute_exn cfg in
  let liveness = Liveness.compute cfg in
  let alias = Alias.compute f in
  Regions.compute cfg fase liveness alias

(* Rebuild every block, emitting for each instruction slot i:
     (cut hook at i)  (pre-hooks of instr i)  (instr i)  (post-hooks)
   where cuts exist only under iDO.  The slot at index = #instrs
   (before the terminator) can carry a cut and pre/post hooks from the
   last instruction. *)
let rewrite (f : Ir.func) ~cut_at ~pre ~post ~replace =
  let blocks =
    Array.mapi
      (fun b (blk : Ir.block) ->
        let out = ref [] in
        let emit i = out := i :: !out in
        let n = Array.length blk.instrs in
        for i = 0 to n - 1 do
          let pos = { Ir.blk = b; idx = i } in
          List.iter emit (cut_at pos);
          List.iter emit (pre pos blk.instrs.(i));
          (match replace pos blk.instrs.(i) with
          | Some instrs -> List.iter emit instrs
          | None -> emit blk.instrs.(i));
          List.iter emit (post pos blk.instrs.(i))
        done;
        List.iter emit (cut_at { Ir.blk = b; idx = n });
        { blk with instrs = Array.of_list (List.rev !out) })
      f.blocks
  in
  { f with blocks }

let no_cuts _ = []
let no_hooks _ _ = []
let keep _ _ = None

let is_tracked_store = function
  | Ir.Store { space = Ir.Persistent | Ir.Stack; _ } -> true
  | _ -> false

let is_persistent_store = function
  | Ir.Store { space = Ir.Persistent; _ } -> true
  | _ -> false

let instrument_func scheme (f : Ir.func) =
  let cfg = Cfg.build f in
  let fase = Fase.compute_exn cfg in
  if not (Fase.has_fase fase) then f
  else begin
    let h x = Ir.Hook x in
    let enter_exit_post pos instr =
      match instr with
      | Ir.Lock _ when Fase.outermost_acquire fase pos -> [ h Ir.Hfase_enter ]
      | Ir.Durable_begin -> [ h Ir.Hfase_enter ]
      | Ir.Unlock _ when Fase.outermost_release fase pos -> [ h Ir.Hfase_exit ]
      | Ir.Durable_end -> [ h Ir.Hfase_exit ]
      | _ -> []
    in
    let lock_records_post pos instr =
      match instr with
      | Ir.Lock _ when Fase.covers fase pos -> [ h Ir.Hlock_acquired ]
      | _ -> []
    in
    let lock_records_pre pos instr =
      match instr with
      | Ir.Unlock _ when Fase.in_fase fase pos ->
          [ h (Ir.Hlock_release { outermost = Fase.outermost_release fase pos }) ]
      | _ -> []
    in
    match scheme with
    | Scheme.Origin -> f
    | Scheme.Ido ->
        let plan = region_plan f in
        let cuts = Hashtbl.create 32 in
        List.iter
          (fun (c : Regions.cut) ->
            Hashtbl.replace cuts c.pos
              (h
                 (Ir.Hregion
                    {
                      region_id = c.id;
                      live_in = c.live_in;
                      out_regs = c.out_regs;
                      skippable = not c.required;
                      at_release = c.at_release;
                    })))
          plan.cuts;
        let cut_at pos =
          match Hashtbl.find_opt cuts pos with Some hk -> [ hk ] | None -> []
        in
        let post pos instr =
          (* Acquire: FASE bookkeeping then lock record; the following
             cut's fence persists both (so an acquire adds no fence of
             its own — the benign steal window of Sec. III-B). *)
          match instr with
          | Ir.Lock _ when Fase.outermost_acquire fase pos ->
              [ h Ir.Hfase_enter; h Ir.Hlock_acquired ]
          | Ir.Lock _ when Fase.covers fase pos -> [ h Ir.Hlock_acquired ]
          | _ -> enter_exit_post pos instr
        in
        (* Release: the record clear persists (one fence) before the
           unlock, so no two threads' lock_arrays can ever claim the
           same lock — the "single memory fence" lock operation. *)
        rewrite f ~cut_at ~pre:lock_records_pre ~post ~replace:keep
    | Scheme.Justdo ->
        let pre pos instr =
          lock_records_pre pos instr
          @
          if is_tracked_store instr && Fase.in_fase fase pos then
            [ h Ir.Hjustdo_store ]
          else []
        in
        let post pos instr = enter_exit_post pos instr @ lock_records_post pos instr in
        rewrite f ~cut_at:no_cuts ~pre ~post ~replace:keep
    | Scheme.Atlas ->
        let pre pos instr =
          let commit =
            match instr with
            | Ir.Unlock _ when Fase.outermost_release fase pos ->
                [ h Ir.Hdurable_commit ]
            | Ir.Durable_end -> [ h Ir.Hdurable_commit ]
            | _ -> []
          in
          commit @ lock_records_pre pos instr
          @
          if is_persistent_store instr && Fase.in_fase fase pos then
            [ h Ir.Hundo_store ]
          else []
        in
        let post pos instr = enter_exit_post pos instr @ lock_records_post pos instr in
        rewrite f ~cut_at:no_cuts ~pre ~post ~replace:keep
    | Scheme.Mnemosyne ->
        let replace pos instr =
          match instr with
          | Ir.Lock _ when Fase.outermost_acquire fase pos ->
              Some [ h Ir.Htxn_begin ]
          | Ir.Lock _ when Fase.covers fase pos -> Some []
          | Ir.Unlock _ when Fase.outermost_release fase pos ->
              Some [ h Ir.Htxn_commit ]
          | Ir.Unlock _ when Fase.in_fase fase pos -> Some []
          | Ir.Durable_begin -> Some [ h Ir.Htxn_begin ]
          | Ir.Durable_end -> Some [ h Ir.Htxn_commit ]
          | _ -> None
        in
        let pre pos instr =
          if is_persistent_store instr && Fase.in_fase fase pos then
            [ h Ir.Hredo_store ]
          else []
        in
        rewrite f ~cut_at:no_cuts ~pre ~post:no_hooks ~replace
    | Scheme.Nvml ->
        let pre pos instr =
          match instr with
          | Ir.Durable_end -> [ h Ir.Hdurable_commit ]
          | _ ->
              if is_persistent_store instr && Fase.durable_before fase pos then
                [ h Ir.Hundo_store ]
              else []
        in
        let post _pos instr =
          match instr with
          | Ir.Durable_begin -> [ h Ir.Hfase_enter ]
          | Ir.Durable_end -> [ h Ir.Hfase_exit ]
          | _ -> []
        in
        rewrite f ~cut_at:no_cuts ~pre ~post ~replace:keep
    | Scheme.Nvthreads ->
        let pre pos instr =
          (* Dthreads-style semantics: buffered pages are published at
             every synchronization point, i.e. before every release —
             required for visibility under non-nested locking. *)
          let commit =
            match instr with
            | Ir.Unlock _ when Fase.in_fase fase pos -> [ h Ir.Hdurable_commit ]
            | Ir.Durable_end -> [ h Ir.Hdurable_commit ]
            | _ -> []
          in
          commit
          @
          if is_persistent_store instr && Fase.in_fase fase pos then
            [ h Ir.Hpage_log ]
          else []
        in
        rewrite f ~cut_at:no_cuts ~pre ~post:enter_exit_post ~replace:keep
  end

let instrument ?(lint = false) ?(opt = false) scheme (p : Ir.program) =
  let p' =
    { Ir.funcs = List.map (fun (name, f) -> (name, instrument_func scheme f)) p.funcs }
  in
  let p' = if opt then fst (Ido_opt.Opt.optimize scheme p') else p' in
  if lint then begin
    match Ido_lint.Lint.lint_program scheme p' with
    | [] -> ()
    | diags ->
        failwith
          (Printf.sprintf "instrumentation lint (%s): %s" (Scheme.name scheme)
             (String.concat "; "
                (List.map Ido_analysis.Diag.render diags)))
  end;
  p'
