(** iDO: compiler-directed failure atomicity for nonvolatile memory.

    The public face of the library — one alias per subsystem, in
    pipeline order.  A downstream user writes a lock-based program with
    {!Builder}, validates it with {!Validate}, and hands it to
    {!Vm.create}, which runs the scheme's compiler passes
    ({!Instrument} over the analyses in {!Cfg}/{!Liveness}/{!Alias}/
    {!Regions}) and executes the result on the simulated NVM machine.
    {!Vm.crash} and {!Vm.recover} exercise the failure model;
    {!Figures} regenerates the paper's evaluation.

    See README.md for a guided tour and DESIGN.md for the system
    inventory. *)

(** {1 Foundations} *)

module Rng = Ido_util.Rng
module Zipf = Ido_util.Zipf
module Stats = Ido_util.Stats
module Cdf = Ido_util.Cdf
module Timebase = Ido_util.Timebase
module Render = Ido_util.Render

(** {1 The simulated machine substrate} *)

module Latency = Ido_nvm.Latency
module Pmem = Ido_nvm.Pmem
module Vmem = Ido_nvm.Vmem
module Region = Ido_region.Region

(** {1 The compiler} *)

module Ir = Ido_ir.Ir
module Builder = Ido_ir.Builder
module Cfg = Ido_analysis.Cfg
module Liveness = Ido_analysis.Liveness
module Alias = Ido_analysis.Alias
module Antidep = Ido_analysis.Antidep
module Regions = Ido_analysis.Regions
module Fase = Ido_analysis.Fase
module Validate = Ido_analysis.Validate
module Instrument = Ido_instrument.Instrument

(** {1 The runtimes} *)

module Scheme = Ido_runtime.Scheme
module Lognode = Ido_runtime.Lognode
module Pwriter = Ido_runtime.Pwriter
module Ido_log = Ido_runtime.Ido_log
module Justdo_log = Ido_runtime.Justdo_log
module Undo_log = Ido_runtime.Undo_log
module Redo_log = Ido_runtime.Redo_log
module Page_log = Ido_runtime.Page_log
module Atlas_recovery = Ido_runtime.Atlas_recovery

(** {1 Execution and recovery} *)

module Vm = Ido_vm.Vm
module Recover = Ido_vm.Recover
module Image = Ido_vm.Image

(** {1 Observability} *)

module Obs = Ido_obs.Obs

(** {1 Benchmarks and experiments} *)

module Workload = Ido_workloads.Workload
module Exp = Ido_harness.Exp
module Figures = Ido_harness.Figures
