(** May-dirty forward dataflow over an instrumented function.

    Tracks, per program point, whether any in-FASE program store (the
    summarized {!Plattice} data cell) {e may} be sitting untracked in
    the cache overlay: set by persistent stores (and stack stores under
    the resumption schemes, which keep stacks in NVM), calls, and
    memory-writing intrinsics; cleared where the runtime's tracked-line
    set is provably empty again ([Hfase_enter], [Hdurable_commit]).
    Joins take the disjunction, so "clean" means clean on {e every}
    incoming path — the fact the optimizer's redundant-flush
    elimination (O101) and {!Regioncheck}'s relaxed commit-sequence
    comparison both rely on. *)

open Ido_ir
open Ido_runtime

type t

val dirties : Scheme.t -> Ir.instr -> bool
(** May this instruction dirty in-FASE program data under [scheme]?
    Shared with the optimizer's write-free-function test (O102). *)

val compute : Scheme.t -> Ir.func -> t

val dirty_at : t -> Ir.pos -> bool
(** May program data be dirty just {e before} the instruction at
    [pos]?  [false] means every path to [pos] re-flushed (or never
    dirtied) the tracked lines since the last clearing point. *)
