open Ido_ir
open Ido_analysis
open Ido_runtime

type access = {
  apos : Ir.pos;
  aloc : Sym.expr;
  awrite : bool;
  alocks : Sym.expr list;
  aprotected : bool;
  apure : bool;
}

type result = {
  diags : Diag.t list;
  accesses : access list;
  order_edges : (Sym.expr * Sym.expr * Ir.pos) list;
}

(* ------------------------------------------------------------------ *)
(* Abstract state *)

type token = Lock of Sym.expr | Durable_region | Txn

type st = { toks : token list (* outermost first *); p : Plattice.t }

let compare_token a b =
  match (a, b) with
  | Lock x, Lock y -> Sym.compare x y
  | Lock _, _ -> -1
  | _, Lock _ -> 1
  | Durable_region, Durable_region -> 0
  | Durable_region, Txn -> -1
  | Txn, Durable_region -> 1
  | Txn, Txn -> 0

let unknown_lock = Lock { Sym.base = Sym.Unknown; delta = 0 }

(* Elementwise join truncated to the shorter stack; token disagreement
   degrades to an unknown lock (still counts as protection, no longer
   comparable).  Depth disagreement itself is reported separately. *)
let join_toks a b =
  let rec go a b =
    match (a, b) with
    | x :: xs, y :: ys ->
        (if compare_token x y = 0 then x else unknown_lock) :: go xs ys
    | _ -> []
  in
  go a b

let join_st a b = { toks = join_toks a.toks b.toks; p = Plattice.join a.p b.p }

let eq_st a b =
  List.compare compare_token a.toks b.toks = 0 && Plattice.equal a.p b.p

let init_st = { toks = []; p = Plattice.top }

let has_txn st = List.exists (function Txn -> true | _ -> false) st.toks
let has_durable st =
  List.exists (function Durable_region -> true | _ -> false) st.toks

let lock_depth st =
  List.length (List.filter (function Lock _ -> true | _ -> false) st.toks)

(* The stores a scheme's runtime takes responsibility for — these dirty
   the summarized data cell and (when the scheme logs per store) must
   be covered by a grant. *)
let protected_ctx scheme st =
  match scheme with
  | Scheme.Nvml -> has_durable st
  | Scheme.Mnemosyne -> has_txn st
  | Scheme.Origin -> false
  | _ -> st.toks <> []

let store_dirties_data scheme st (space : Ir.space) =
  protected_ctx scheme st
  &&
  match space with
  | Ir.Persistent -> true
  | Ir.Stack -> (
      (* simulated stacks live in NVM only under the resumption schemes *)
      match scheme with Scheme.Ido | Scheme.Justdo -> true | _ -> false)
  | Ir.Transient -> false

let store_needs_grant scheme st (space : Ir.space) =
  protected_ctx scheme st
  && Hook_model.log_grant_hook scheme <> None
  &&
  match space with
  | Ir.Persistent -> true
  | Ir.Stack -> Hook_model.tracks_stack_stores scheme
  | Ir.Transient -> false

let pstate_str = Plattice.pstate_to_string

let need_str = function
  | Hook_model.Initiated -> "written back"
  | Hook_model.Fenced -> "fence-durable"

let req_str = function Hook_model.Data -> "FASE data" | Hook_model.Meta m -> "'" ^ m ^ "'"

let need_sat (need : Hook_model.need) (s : Plattice.pstate) =
  match need with
  | Hook_model.Initiated -> s <> Plattice.Dirty
  | Hook_model.Fenced -> s = Plattice.Durable

(* ------------------------------------------------------------------ *)

type ctx = {
  scheme : Scheme.t;
  variant : string option;
  func : Ir.func;
  sym : Sym.t;
  capflow : Capflow.t;
  mutable diags : Diag.t list;
  mutable accesses : access list;
  mutable edges : (Sym.expr * Sym.expr * Ir.pos) list;
  mutable report : bool;
}

let diag c ?pos code fmt =
  Printf.ksprintf
    (fun msg ->
      if c.report then
        c.diags <- Diag.v ?pos ~func:c.func.Ir.name ~code msg :: c.diags)
    fmt

let req_state (p : Plattice.t) = function
  | Hook_model.Data -> p.Plattice.data
  | Hook_model.Meta m -> Plattice.get_meta p m

let run_micro c pos hook (st, pending) (m : Hook_model.micro) =
  let check_reqs needs requires ~describe =
    List.iter
      (fun r ->
        let s = req_state st.p r in
        if not (need_sat needs s) then describe r s)
      requires
  in
  match m with
  | Hook_model.Write cell -> ({ st with p = Plattice.write_meta st.p cell }, pending)
  | Hook_model.Writeback cell ->
      ({ st with p = Plattice.writeback_meta st.p cell }, pending)
  | Hook_model.Writeback_data ->
      ({ st with p = Plattice.writeback_data st.p }, pending)
  | Hook_model.Fence -> ({ st with p = Plattice.fence st.p }, pending)
  | Hook_model.Publish { target; needs; requires } ->
      check_reqs needs requires ~describe:(fun r s ->
          diag c ~pos "L301"
            "write-ahead violation in %s: '%s' published while %s is %s \
             (needs %s)"
            (Hook_model.hook_name hook) target (req_str r) (pstate_str s)
            (need_str needs));
      ({ st with p = Plattice.write_meta st.p target }, pending)
  | Hook_model.Check { needs; requires; code; what } ->
      check_reqs needs requires ~describe:(fun r s ->
          diag c ~pos code "%s: %s is %s at %s (needs %s)" what (req_str r)
            (pstate_str s)
            (Hook_model.hook_name hook) (need_str needs));
      (st, pending)
  | Hook_model.Grant_log -> (st, true)

let record_access c pos st ~loc ~awrite =
  match loc with
  | None -> ()
  | Some (l : Sym.expr) ->
      if c.report && l.Sym.base <> Sym.Unknown then begin
        let alocks =
          List.filter_map
            (function Lock e when Sym.is_stable e -> Some e | _ -> None)
            st.toks
        in
        let apure =
          List.for_all
            (function Lock e -> Sym.is_stable e | _ -> false)
            st.toks
        in
        c.accesses <-
          {
            apos = pos;
            aloc = l;
            awrite;
            alocks;
            aprotected = st.toks <> [];
            apure;
          }
          :: c.accesses
      end

let orphan c pos =
  diag c ~pos "L202"
    "orphaned %s: the log grant was not consumed by the guarded store"
    (match Hook_model.log_grant_hook c.scheme with
    | Some h -> Hook_model.hook_name h
    | None -> "log hook")

(* One instruction.  [pending] is the armed per-store log grant. *)
let exec_instr c pos (st, pending) (instr : Ir.instr) =
  let is_grant h = Hook_model.log_grant_hook c.scheme = Some h in
  (* A pending grant must be consumed by the very next instruction
     (the guarded store); anything else orphans it. *)
  let consume_for_store space =
    if store_needs_grant c.scheme st space then begin
      (* an uncovered store is excused when the cell's old value is
         provably captured already in this window, under a scheme
         whose log discipline makes the second capture redundant *)
      let captured () =
        Hook_model.grant_elidable c.scheme
        &&
        match Sym.resolve_store_addr c.sym pos with
        | Some cell -> Sym.is_stable cell && Capflow.mem c.capflow pos cell
        | None -> false
      in
      if (not pending) && not (captured ()) then
        diag c ~pos "L201"
          "persistent store inside a FASE is not covered by a %s log hook"
          (match Hook_model.log_grant_hook c.scheme with
          | Some h -> Hook_model.hook_name h
          | None -> "");
      false
    end
    else begin
      if pending then orphan c pos;
      false
    end
  in
  match instr with
  | Ir.Lock op ->
      if pending then orphan c pos;
      let tok = Sym.resolve_operand c.sym ~at:pos op in
      if c.report && Sym.is_stable tok then
        List.iter
          (function
            | Lock held when Sym.is_stable held && not (Sym.equal held tok) ->
                c.edges <- (held, tok, pos) :: c.edges
            | _ -> ())
          st.toks;
      ({ st with toks = st.toks @ [ Lock tok ] }, false)
  | Ir.Unlock op ->
      if pending then orphan c pos;
      if lock_depth st = 0 then begin
        diag c ~pos "L102" "unlock with no lock held";
        (st, false)
      end
      else begin
        (* the single-fence contract: this thread's lock record must be
           durable before another thread can acquire the lock *)
        List.iter
          (fun cell ->
            let s = Plattice.get_meta st.p cell in
            if s <> Plattice.Durable then
              diag c ~pos "L303"
                "lock released while runtime cell '%s' is %s — another \
                 thread may acquire before this thread's record is durable"
                cell (pstate_str s))
          (Hook_model.unlock_durable_cells c.scheme);
        let tok = Sym.resolve_operand c.sym ~at:pos op in
        (* remove the innermost token satisfying [pred] *)
        let remove_innermost pred toks =
          let rec go = function
            | [] -> None
            | x :: xs -> (
                match go xs with
                | Some xs' -> Some (x :: xs')
                | None -> if pred x then Some xs else None)
          in
          go toks
        in
        (* release the matching lock; fall back to the innermost lock
           when symbolic resolution cannot match (unstable tokens) *)
        let matched =
          if Sym.is_stable tok then
            remove_innermost
              (function Lock e -> Sym.equal e tok | _ -> false)
              st.toks
          else None
        in
        let toks =
          match matched with
          | Some toks -> toks
          | None -> (
              match
                remove_innermost
                  (function
                    | Lock e ->
                        (not (Sym.is_stable e)) || not (Sym.is_stable tok)
                    | _ -> false)
                  st.toks
              with
              | Some toks -> toks
              | None ->
                  diag c ~pos "L102" "unlock of %s, which is not held"
                    (Sym.to_string tok);
                  st.toks)
        in
        ({ st with toks }, false)
      end
  | Ir.Durable_begin ->
      if pending then orphan c pos;
      ({ st with toks = st.toks @ [ Durable_region ] }, false)
  | Ir.Durable_end ->
      if pending then orphan c pos;
      let rec drop_innermost = function
        | [] -> None
        | x :: xs -> (
            match drop_innermost xs with
            | Some rest -> Some (x :: rest)
            | None -> if x = Durable_region then Some xs else None)
      in
      let toks =
        match drop_innermost st.toks with
        | Some toks -> toks
        | None ->
            diag c ~pos "L103" "durable_end without an open durable region";
            st.toks
      in
      ({ st with toks }, false)
  | Ir.Store { space; _ } ->
      let still_pending = consume_for_store space in
      record_access c pos st ~loc:(Sym.resolve_store_addr c.sym pos)
        ~awrite:true;
      let st =
        if store_dirties_data c.scheme st space then
          { st with p = Plattice.write_data st.p }
        else st
      in
      (st, still_pending)
  | Ir.Load { space; _ } ->
      if pending then orphan c pos;
      if space = Ir.Persistent then
        record_access c pos st ~loc:(Sym.resolve_store_addr c.sym pos)
          ~awrite:false;
      (st, false)
  | Ir.Hook h when not (Hook_model.hook_allowed c.scheme h) ->
      if pending then orphan c pos;
      diag c ~pos "L204" "hook %s cannot appear under scheme %s"
        (Hook_model.hook_name h)
        (Scheme.name c.scheme);
      (st, false)
  | Ir.Hook h ->
      if pending then orphan c pos;
      (* structural bookkeeping first *)
      let st =
        match h with
        | Ir.Htxn_begin ->
            if has_txn st then
              diag c ~pos "L103" "transaction begun while one is open";
            { st with toks = st.toks @ [ Txn ] }
        | _ -> st
      in
      if is_grant h && not (protected_ctx c.scheme st) then
        diag c ~pos "L203" "%s outside its protected context (FASE/txn)"
          (Hook_model.hook_name h);
      let st, pending =
        List.fold_left
          (run_micro c pos h)
          (st, false)
          (Hook_model.model ?variant:c.variant c.scheme h)
      in
      (* a detached grant is not an orphan when it is a resolvable
         hoisted capture (Capflow consumes it at the loop's store);
         otherwise pending survives and the next instruction reports
         L202 as before *)
      let pending =
        if pending then begin
          let blk = c.func.Ir.blocks.(pos.Ir.blk) in
          let next_is_store =
            pos.Ir.idx + 1 < Array.length blk.Ir.instrs
            &&
            match blk.Ir.instrs.(pos.Ir.idx + 1) with
            | Ir.Store _ -> true
            | _ -> false
          in
          if next_is_store then true
          else
            match Capflow.classify c.capflow pos with
            | Capflow.Hoisted _ -> false
            | Capflow.Adjacent | Capflow.Orphan -> true
        end
        else pending
      in
      let st =
        match h with
        | Ir.Htxn_commit ->
            let rec drop_innermost = function
              | [] -> None
              | x :: xs -> (
                  match drop_innermost xs with
                  | Some rest -> Some (x :: rest)
                  | None -> if x = Txn then Some xs else None)
            in
            (match drop_innermost st.toks with
            | Some toks -> { st with toks }
            | None ->
                diag c ~pos "L103" "commit without an open transaction";
                st)
        | _ -> st
      in
      (st, pending)
  | Ir.Call _ | Ir.Intrinsic _ | Ir.Alloca _ | Ir.Bin _ | Ir.Mov _ ->
      if pending then orphan c pos;
      (st, false)

let exec_block c b st0 =
  let blk = c.func.Ir.blocks.(b) in
  let n = Array.length blk.Ir.instrs in
  let stp = ref (st0, false) in
  for i = 0 to n - 1 do
    stp := exec_instr c { Ir.blk = b; idx = i } !stp blk.Ir.instrs.(i)
  done;
  let st, pending = !stp in
  let term_pos = { Ir.blk = b; idx = n } in
  if pending then orphan c term_pos;
  (match blk.Ir.term with
  | Ir.Ret _ when st.toks <> [] ->
      diag c ~pos:term_pos "L104"
        "return while protection is still held (%d lock(s)%s%s)"
        (lock_depth st)
        (if has_durable st then ", open durable region" else "")
        (if has_txn st then ", open transaction" else "")
  | _ -> ());
  st

(* ------------------------------------------------------------------ *)

let analyze ?variant scheme (func : Ir.func) =
  let c =
    {
      scheme;
      variant;
      func;
      sym = Sym.create func;
      capflow = Capflow.compute scheme func;
      diags = [];
      accesses = [];
      edges = [];
      report = false;
    }
  in
  let n = Array.length func.Ir.blocks in
  let ins : st option array = Array.make n None in
  ins.(0) <- Some init_st;
  (* fixpoint, silent *)
  let work = Queue.create () in
  Queue.add 0 work;
  let on_queue = Array.make n false in
  on_queue.(0) <- true;
  while not (Queue.is_empty work) do
    let b = Queue.pop work in
    on_queue.(b) <- false;
    match ins.(b) with
    | None -> ()
    | Some st0 ->
        let out = exec_block c b st0 in
        List.iter
          (fun s ->
            let joined =
              match ins.(s) with
              | None -> out
              | Some prev -> join_st prev out
            in
            let changed =
              match ins.(s) with None -> true | Some prev -> not (eq_st prev joined)
            in
            if changed then begin
              ins.(s) <- Some joined;
              if not on_queue.(s) then begin
                on_queue.(s) <- true;
                Queue.add s work
              end
            end)
          (Ir.successors func.Ir.blocks.(b).Ir.term)
  done;
  (* reporting pass over the stabilized in-states *)
  c.report <- true;
  let outs = Array.make n None in
  for b = 0 to n - 1 do
    match ins.(b) with
    | None -> ()
    | Some st0 ->
        c.report <- false;
        outs.(b) <- Some (exec_block c b st0);
        c.report <- true
  done;
  (* join-consistency: reachable predecessors must agree on protection
     structure *)
  let preds = Array.make n [] in
  for b = 0 to n - 1 do
    if ins.(b) <> None then
      List.iter
        (fun s -> preds.(s) <- b :: preds.(s))
        (Ir.successors func.Ir.blocks.(b).Ir.term)
  done;
  for b = 0 to n - 1 do
    let pouts = List.filter_map (fun p -> outs.(p)) preds.(b) in
    match pouts with
    | first :: rest when ins.(b) <> None ->
        let pos = { Ir.blk = b; idx = 0 } in
        let depth0 = lock_depth first in
        if List.exists (fun s -> lock_depth s <> depth0) rest then
          diag c ~pos "L101"
            "inconsistent lock depth at join: predecessors reach this block \
             holding different numbers of locks";
        let struct0 = (has_durable first, has_txn first) in
        if
          List.exists (fun s -> (has_durable s, has_txn s) <> struct0) rest
        then
          diag c ~pos "L103"
            "inconsistent transaction/durable-region structure at join"
    | _ -> ()
  done;
  for b = 0 to n - 1 do
    match ins.(b) with None -> () | Some st0 -> ignore (exec_block c b st0)
  done;
  {
    diags = List.rev c.diags;
    accesses = List.rev c.accesses;
    order_edges = List.rev c.edges;
  }
