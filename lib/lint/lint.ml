open Ido_ir
open Ido_analysis

let lint_func ?variant scheme (f : Ir.func) =
  let r = Transfer.analyze ?variant scheme f in
  let conf = Regioncheck.check scheme f in
  (conf @ r.Transfer.diags, r)

let lint_program ?variant ?(entries = [ "worker" ]) scheme (p : Ir.program) =
  let per_func =
    List.map (fun (name, f) -> (name, lint_func ?variant scheme f)) p.Ir.funcs
  in
  let diags = List.concat_map (fun (_, (ds, _)) -> ds) per_func in
  let results = List.map (fun (name, (_, r)) -> (name, r)) per_func in
  let entries =
    List.filter (fun e -> List.mem_assoc e p.Ir.funcs) entries
  in
  let lockset = Lockset.check p ~entries ~results in
  List.sort_uniq Diag.compare (diags @ lockset)

let codes =
  [
    ("L101", "inconsistent lock depth at a control-flow join");
    ("L102", "unlock without a matching held lock");
    ("L103", "unbalanced transaction or durable region");
    ("L104", "return while locks, a transaction or a durable region is open");
    ("L105", "FASE entry/exit hook missing or misplaced");
    ("L106", "lock-record or commit hook missing or misplaced");
    ("L107", "lock-release hook disagrees with the FASE structure about \
              outermost-ness");
    ("L201", "persistent store inside a FASE without its scheme's log hook");
    ("L202", "orphaned log hook: the grant is not consumed by the next store");
    ("L203", "log hook outside its protected context");
    ("L204", "hook foreign to the scheme");
    ("L301", "write-ahead violation: a word is published before its \
              prerequisites are durable");
    ("L302", "FASE data not durable at a point the protocol requires it");
    ("L303", "lock released before the thread's runtime records are durable");
    ("L401", "region-plan cut without its boundary hook");
    ("L402", "required (WAR-separating) cut marked elidable");
    ("L403", "region boundary hook where the plan has no cut");
    ("L404", "region boundary metadata diverges from the plan");
    ("L501", "unprotected write to a location accessed under protection \
              elsewhere");
    ("L502", "empty candidate lockset for a shared persistent location");
    ("L503", "cycle in the static lock-order graph");
  ]

let explain code =
  match List.assoc_opt code codes with
  | Some s -> s
  | None -> "unknown diagnostic code"
