open Ido_ir
open Ido_runtime

type stage = Before_instrument | After_instrument

type t = {
  name : string;
  descr : string;
  scheme : Scheme.t;
  workload : string;
  expect : string;
  stage : stage;
  variant : string option;
  transform : Ir.program -> Ir.program;
}

(* ------------------------------------------------------------------ *)
(* Pure program surgery.  All helpers act on the first match in
   function-list order, so mutants are deterministic. *)

let map_block fn (blk : Ir.block) =
  { blk with Ir.instrs = Array.of_list (fn (Array.to_list blk.Ir.instrs)) }

let map_program fn (p : Ir.program) =
  { Ir.funcs = List.map (fun (n, f) -> (n, fn f)) p.Ir.funcs }

(* Apply [edit] (instr -> instr list option) to the [n]-th instruction
   it accepts, program-wide, in function/block/instruction order. *)
let edit_nth n edit (p : Ir.program) =
  let seen = ref 0 in
  let hit = ref false in
  map_program
    (fun f ->
      {
        f with
        Ir.blocks =
          Array.map
            (map_block
               (List.concat_map (fun i ->
                    if !hit then [ i ]
                    else
                      match edit i with
                      | Some repl ->
                          if !seen = n then begin
                            hit := true;
                            repl
                          end
                          else begin
                            incr seen;
                            [ i ]
                          end
                      | None -> [ i ])))
            f.Ir.blocks;
      })
    p

let edit_first edit = edit_nth 0 edit

let delete_first pred =
  edit_first (fun i -> if pred i then Some [] else None)

let duplicate_first pred =
  edit_first (fun i -> if pred i then Some [ i; i ] else None)

let is_hook h = function Ir.Hook h' -> h' = h | _ -> false

(* Mark the first required (non-elidable) region cut as elidable. *)
let elide_required_cut =
  edit_first (function
    | Ir.Hook (Ir.Hregion rh) when not rh.Ir.skippable ->
        Some [ Ir.Hook (Ir.Hregion { rh with Ir.skippable = true }) ]
    | _ -> None)

let delete_required_cut =
  delete_first (function
    | Ir.Hook (Ir.Hregion rh) -> not rh.Ir.skippable
    | _ -> false)

(* Hoist a copy of a critical section's store above its lock: in the
   first function that takes a lock, find a later persistent store
   whose base register is a function parameter and replay it (with a
   distinguishable value) just before the lock — the classic
   "forgot the lock on the fast path" race. *)
let hoist_store_above_lock (p : Ir.program) =
  let done_ = ref false in
  map_program
    (fun f ->
      if !done_ then f
      else begin
        let lock_at = ref None in
        Array.iteri
          (fun b (blk : Ir.block) ->
            if !lock_at = None then
              Array.iteri
                (fun i instr ->
                  match instr with
                  | Ir.Lock _ when !lock_at = None -> lock_at := Some (b, i)
                  | _ -> ())
                blk.Ir.instrs)
          f.Ir.blocks;
        match !lock_at with
        | None -> f
        | Some (lb, li) ->
            let target = ref None in
            Array.iteri
              (fun b (blk : Ir.block) ->
                if b >= lb && !target = None then
                  Array.iteri
                    (fun i instr ->
                      if (b > lb || i > li) && !target = None then
                        match instr with
                        | Ir.Store
                            { space = Ir.Persistent; base = Ir.Reg r; off; _ }
                          when List.mem r f.Ir.params ->
                            target := Some (r, off)
                        | _ -> ())
                    blk.Ir.instrs)
              f.Ir.blocks;
            (match !target with
            | None -> f
            | Some (r, off) ->
                done_ := true;
                let hoisted =
                  Ir.Store
                    {
                      space = Ir.Persistent;
                      base = Ir.Reg r;
                      off;
                      src = Ir.Imm 7777L;
                    }
                in
                let blocks =
                  Array.mapi
                    (fun b blk ->
                      if b <> lb then blk
                      else
                        map_block
                          (fun instrs ->
                            List.concat
                              (List.mapi
                                 (fun i instr ->
                                   if i = li then [ hoisted; instr ]
                                   else [ instr ])
                                 instrs))
                          blk)
                    f.Ir.blocks
                in
                { f with Ir.blocks })
      end)
    p

(* Strip every hook from the first function that both writes
   persistent memory and carries hooks — the write-free FASE elision
   (O102) fired on a function that is not write-free. *)
let strip_hooks_in_storing_func (p : Ir.program) =
  let done_ = ref false in
  map_program
    (fun f ->
      let has pred =
        Array.exists
          (fun (blk : Ir.block) -> Array.exists pred blk.Ir.instrs)
          f.Ir.blocks
      in
      let stores = function
        | Ir.Store { space = Ir.Persistent; _ } -> true
        | _ -> false
      and hook = function Ir.Hook _ -> true | _ -> false in
      if !done_ || not (has stores && has hook) then f
      else begin
        done_ := true;
        {
          f with
          Ir.blocks =
            Array.map
              (map_block
                 (List.filter (function Ir.Hook _ -> false | _ -> true)))
              f.Ir.blocks;
        }
      end)
    p

(* Move the first [pred] instruction after its immediate successor:
   a capture grant detached from the store it was emitted for — the
   loop-hoisting rewrite (O104) moved a grant whose consumption it
   could not actually prove. *)
let detach_first pred (p : Ir.program) =
  let done_ = ref false in
  map_program
    (fun f ->
      {
        f with
        Ir.blocks =
          Array.map
            (map_block (fun instrs ->
                 let rec go = function
                   | a :: b :: rest when (not !done_) && pred a ->
                       done_ := true;
                       b :: a :: rest
                   | a :: rest -> a :: go rest
                   | [] -> []
                 in
                 go instrs))
            f.Ir.blocks;
      })
    p

let id p = p

(* ------------------------------------------------------------------ *)

let corpus =
  [
    (* -- per-store log coverage (L201) -- *)
    {
      name = "drop-justdo-log";
      descr = "delete one justdo_store hook: its store is logged on no path";
      scheme = Scheme.Justdo;
      workload = "queue";
      expect = "L201";
      stage = After_instrument;
      variant = None;
      transform = delete_first (is_hook Ir.Hjustdo_store);
    };
    {
      name = "drop-undo-log";
      descr = "delete one undo_store hook: the old value is never logged";
      scheme = Scheme.Atlas;
      workload = "queue";
      expect = "L201";
      stage = After_instrument;
      variant = None;
      transform = delete_first (is_hook Ir.Hundo_store);
    };
    {
      name = "drop-redo-log";
      descr = "delete one redo_store hook inside a transaction";
      scheme = Scheme.Mnemosyne;
      workload = "queue";
      expect = "L201";
      stage = After_instrument;
      variant = None;
      transform = delete_first (is_hook Ir.Hredo_store);
    };
    {
      name = "drop-page-log";
      descr = "delete one page_log hook: the page is modified uncopied";
      scheme = Scheme.Nvthreads;
      workload = "queue";
      expect = "L201";
      stage = After_instrument;
      variant = None;
      transform = delete_first (is_hook Ir.Hpage_log);
    };
    {
      name = "drop-nvml-log";
      descr = "delete one undo_store hook in a durable region";
      scheme = Scheme.Nvml;
      workload = "objstore";
      expect = "L201";
      stage = After_instrument;
      variant = None;
      transform = delete_first (is_hook Ir.Hundo_store);
    };
    (* -- hook structure (L105/L106/L202) -- *)
    {
      name = "drop-fase-enter";
      descr = "delete one fase_enter hook";
      scheme = Scheme.Justdo;
      workload = "queue";
      expect = "L105";
      stage = After_instrument;
      variant = None;
      transform = delete_first (is_hook Ir.Hfase_enter);
    };
    {
      name = "drop-lock-record";
      descr = "delete one lock_acquired record hook";
      scheme = Scheme.Ido;
      workload = "mlog";
      expect = "L106";
      stage = After_instrument;
      variant = None;
      transform = delete_first (is_hook Ir.Hlock_acquired);
    };
    {
      name = "orphan-log-hook";
      descr = "duplicate a justdo_store grant: the first is never consumed";
      scheme = Scheme.Justdo;
      workload = "queue";
      expect = "L202";
      stage = After_instrument;
      variant = None;
      transform = duplicate_first (is_hook Ir.Hjustdo_store);
    };
    (* -- region plan conformance (L401/L402) -- *)
    {
      name = "drop-region-cut";
      descr = "delete a required region boundary: a WAR pair shares a region";
      scheme = Scheme.Ido;
      workload = "mlog";
      expect = "L401";
      stage = After_instrument;
      variant = None;
      transform = delete_required_cut;
    };
    {
      name = "elide-required-cut";
      descr = "mark a required (WAR-separating) cut elidable";
      scheme = Scheme.Ido;
      workload = "mlog";
      expect = "L402";
      stage = After_instrument;
      variant = None;
      transform = elide_required_cut;
    };
    (* -- locking discipline (L501) -- *)
    {
      name = "unlocked-store";
      descr = "hoist a critical-section store above its lock";
      scheme = Scheme.Justdo;
      workload = "mlog";
      expect = "L501";
      stage = Before_instrument;
      variant = None;
      transform = hoist_store_above_lock;
    };
    (* -- over-optimization (the Ido_opt rewrites fired past their
          guards; the lint obligation must catch each) -- *)
    {
      name = "over-opt-flush-elim";
      descr =
        "O101 over-fires: delete a durable commit whose lines are dirty";
      scheme = Scheme.Atlas;
      workload = "queue";
      expect = "L106";
      stage = After_instrument;
      variant = None;
      transform = delete_first (is_hook Ir.Hdurable_commit);
    };
    {
      name = "over-opt-fase-elide";
      descr =
        "O102 over-fires: strip every hook from a function that writes \
         persistent memory";
      scheme = Scheme.Justdo;
      workload = "queue";
      expect = "L201";
      stage = After_instrument;
      variant = None;
      transform = strip_hooks_in_storing_func;
    };
    {
      name = "over-opt-hoist";
      descr =
        "O104 over-fires: detach an undo capture grant from its store";
      scheme = Scheme.Atlas;
      workload = "queue";
      expect = "L202";
      stage = After_instrument;
      variant = None;
      transform = detach_first (is_hook Ir.Hundo_store);
    };
    (* -- runtime protocol variants (L301/L303) -- *)
    {
      name = "early-publish-justdo";
      descr =
        "JUSTDO valid flag durable before the entry words (PR 1 seeded bug)";
      scheme = Scheme.Justdo;
      workload = "queue";
      expect = "L301";
      stage = After_instrument;
      variant = Some "early-publish-justdo";
      transform = id;
    };
    {
      name = "unfenced-undo-append";
      descr =
        "undo ring head/total published before the record write-backs \
         (PR 1 seeded bug)";
      scheme = Scheme.Atlas;
      workload = "queue";
      expect = "L301";
      stage = After_instrument;
      variant = Some "unfenced-undo-append";
      transform = id;
    };
    {
      name = "reorder-region-writeback";
      descr = "iDO boundary issues data write-backs after its fence";
      scheme = Scheme.Ido;
      workload = "mlog";
      expect = "L301";
      stage = After_instrument;
      variant = Some "reorder-region-writeback";
      transform = id;
    };
    {
      name = "drop-release-fence";
      descr = "iDO lock release skips its closing fence";
      scheme = Scheme.Ido;
      workload = "mlog";
      expect = "L303";
      stage = After_instrument;
      variant = Some "drop-release-fence";
      transform = id;
    };
    {
      name = "drop-commit-fence";
      descr = "Mnemosyne commit publishes status without fencing the entries";
      scheme = Scheme.Mnemosyne;
      workload = "queue";
      expect = "L301";
      stage = After_instrument;
      variant = Some "drop-commit-fence";
      transform = id;
    };
  ]

let find name = List.find_opt (fun m -> m.name = name) corpus

(* ------------------------------------------------------------------ *)
(* First-class instrumentation-level edits.

   The hand-written corpus above targets one named hook per mutant;
   the fuzzer instead enumerates and randomises positions, so its
   mutation operators are indexed: "delete the k-th hook", "elide the
   k-th required cut".  Representing them as data (rather than
   closures) makes a fuzzer finding serialisable — and [ingest]
   turns a serialised finding back into a corpus entry, which is how
   fuzzer survivors feed this module. *)

type edit =
  | Delete_hook of int  (** delete the k-th hook instruction *)
  | Dup_hook of int  (** duplicate the k-th hook instruction *)
  | Elide_cut of int  (** mark the k-th required region cut skippable *)
  | Drop_cut of int  (** delete the k-th required region cut *)
  | Hoist_store  (** replay a critical-section store above its lock *)

let count_matching pred (p : Ir.program) =
  List.fold_left
    (fun acc (_, f) ->
      Array.fold_left
        (fun acc (blk : Ir.block) ->
          Array.fold_left
            (fun acc i -> if pred i then acc + 1 else acc)
            acc blk.Ir.instrs)
        acc f.Ir.blocks)
    0 p.Ir.funcs

let hook_count = count_matching (function Ir.Hook _ -> true | _ -> false)

let is_required_cut = function
  | Ir.Hook (Ir.Hregion rh) -> not rh.Ir.skippable
  | _ -> false

let cut_count = count_matching is_required_cut

let apply_edit edit p =
  match edit with
  | Delete_hook k ->
      edit_nth k (function Ir.Hook _ -> Some [] | _ -> None) p
  | Dup_hook k ->
      edit_nth k (function Ir.Hook _ as i -> Some [ i; i ] | _ -> None) p
  | Elide_cut k ->
      edit_nth k
        (function
          | Ir.Hook (Ir.Hregion rh) when not rh.Ir.skippable ->
              Some [ Ir.Hook (Ir.Hregion { rh with Ir.skippable = true }) ]
          | _ -> None)
        p
  | Drop_cut k ->
      edit_nth k (fun i -> if is_required_cut i then Some [] else None) p
  | Hoist_store -> hoist_store_above_lock p

let edit_stage = function
  | Hoist_store -> Before_instrument
  | Delete_hook _ | Dup_hook _ | Elide_cut _ | Drop_cut _ -> After_instrument

let edit_to_string = function
  | Delete_hook k -> Printf.sprintf "del-hook:%d" k
  | Dup_hook k -> Printf.sprintf "dup-hook:%d" k
  | Elide_cut k -> Printf.sprintf "elide-cut:%d" k
  | Drop_cut k -> Printf.sprintf "drop-cut:%d" k
  | Hoist_store -> "hoist-store"

let edit_of_string s =
  let indexed prefix mk =
    let pn = String.length prefix in
    if
      String.length s > pn
      && String.sub s 0 pn = prefix
      && String.for_all (fun c -> c >= '0' && c <= '9')
           (String.sub s pn (String.length s - pn))
    then Some (mk (int_of_string (String.sub s pn (String.length s - pn))))
    else None
  in
  if s = "hoist-store" then Some Hoist_store
  else
    List.find_map
      (fun (p, mk) -> indexed p mk)
      [
        ("del-hook:", fun k -> Delete_hook k);
        ("dup-hook:", fun k -> Dup_hook k);
        ("elide-cut:", fun k -> Elide_cut k);
        ("drop-cut:", fun k -> Drop_cut k);
      ]

let ingest ~name ~descr ~scheme ~workload ~expect ?variant ~edits () =
  let stage =
    match List.sort_uniq compare (List.map edit_stage edits) with
    | [] -> After_instrument
    | [ s ] -> s
    | _ -> invalid_arg "Mutate.ingest: edits span both stages"
  in
  {
    name;
    descr;
    scheme;
    workload;
    expect;
    stage;
    variant;
    transform = (fun p -> List.fold_left (fun p e -> apply_edit e p) p edits);
  }
