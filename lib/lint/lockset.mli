(** Eraser-style lockset and lock-order checking over the per-function
    {!Transfer} results, restricted to thread entry points and the
    functions they reach.

    All comparisons are between {e stable} symbolic locations
    ({!Sym.is_stable}) — root slots, parameters, constants, allocation
    sites.  Hand-over-hand traversals guard per-node locks loaded from
    the structure; those resolve to unstable [Loaded] values and are
    deliberately left out: the discipline they follow is ordered by the
    data structure, not by a static total order.

    Codes:
    - [L501] unprotected write to a location that is elsewhere accessed
      under protection
    - [L502] the protected accesses of a location share no common lock
      (its candidate lockset is empty)
    - [L503] the static lock-order graph has a cycle (deadlock, which
      under lock-inferred failure atomicity is also a persistence
      hazard: neither FASE can retire) *)

open Ido_ir
open Ido_analysis

val check :
  Ir.program ->
  entries:string list ->
  results:(string * Transfer.result) list ->
  Diag.t list
(** [entries] are the thread entry functions; functions unreachable
    from them (initialization code that runs single-threaded) are not
    checked.  An empty [entries] list checks every function. *)
