open Ido_ir
open Ido_runtime

type need = Initiated | Fenced
type req = Meta of string | Data

type micro =
  | Write of string
  | Writeback of string
  | Writeback_data
  | Fence
  | Publish of { target : string; needs : need; requires : req list }
  | Check of { needs : need; requires : req list; code : string; what : string }
  | Grant_log

let hook_name : Ir.hook -> string = function
  | Ir.Hregion { region_id; _ } -> Printf.sprintf "region#%d" region_id
  | Ir.Hfase_enter -> "fase_enter"
  | Ir.Hfase_exit -> "fase_exit"
  | Ir.Hlock_acquired -> "lock_acquired"
  | Ir.Hlock_release _ -> "lock_release"
  | Ir.Hjustdo_store -> "justdo_store"
  | Ir.Hundo_store -> "undo_store"
  | Ir.Hredo_store -> "redo_store"
  | Ir.Htxn_begin -> "txn_begin"
  | Ir.Htxn_commit -> "txn_commit"
  | Ir.Hpage_log -> "page_log"
  | Ir.Hdurable_commit -> "durable_commit"

(* The models below follow the micro-op order in which words become
   visible to the persistence domain, not the raw program-store order:
   a protocol that stores A then B and write-backs both before one
   fence is modelled as write/writeback A, then publish B — the
   simulator's [clwb] is synchronous, so "write-back issued before the
   publish store" is exactly the write-ahead invariant recovery relies
   on.  Cell names: see each scheme's runtime log module. *)

(* ------------------------------------------------------------------ *)
(* iDO: region boundaries (Ido_log), single-fence lock records.        *)

let ido_region (rh : Ir.region_hook) =
  [
    Write "outlog";
    Writeback "outlog";
    Writeback_data;
    Fence;
    (* recovery_pc armed at this boundary: everything the resumed
       region reads — intRF in the out-log and prior memory effects —
       must already be fence-durable. *)
    Publish { target = "pc"; needs = Fenced; requires = [ Meta "outlog"; Data ] };
    Writeback "pc";
  ]
  @ if rh.at_release then [] (* fence deferred to the release record *)
    else [ Fence ]

let ido_region_reordered (rh : Ir.region_hook) =
  (* PR 1's Pwriter.clwb_lines-class bug: data write-backs issued after
     the boundary fence, so the pc can persist ahead of the region's
     stores. *)
  [
    Write "outlog";
    Writeback "outlog";
    Fence;
    Writeback_data;
    Publish { target = "pc"; needs = Fenced; requires = [ Meta "outlog"; Data ] };
    Writeback "pc";
  ]
  @ if rh.at_release then [] else [ Fence ]

let ido_release ~outermost ~fenced =
  [ Write "lockrec"; Writeback "lockrec" ]
  @ (if outermost then
       (* pc := 0 declares the FASE complete: its outputs (fenced by
          the preceding at-release boundary) must already be durable. *)
       [
         Publish { target = "pc"; needs = Fenced; requires = [ Data; Meta "outlog" ] };
         Writeback "pc";
       ]
     else [])
  @ if fenced then [ Fence ] else []

(* ------------------------------------------------------------------ *)
(* JUSTDO (Justdo_log): per-store log entry; valid flag published
   last, one fence per entry (plus one flushing the previous store).   *)

let justdo_store ~early_publish =
  [ Writeback_data; Fence ]
  @ (if early_publish then
       (* PR 1's seeded bug: the valid flag becomes durable before the
          entry words, so a crash recovers a garbage (pc, addr, value)
          tuple.  The append claims the slot (dirtying it) and the
          publish fires before the entry's write-back is even issued. *)
       [
         Write "entry";
         Publish { target = "valid"; needs = Initiated; requires = [ Meta "entry" ] };
         Writeback "valid";
         Fence;
         Writeback "entry";
         Fence;
       ]
     else
       [
         Write "entry";
         Writeback "entry";
         Publish { target = "valid"; needs = Initiated; requires = [ Meta "entry" ] };
         Writeback "valid";
         Fence;
       ])
  @ [ Grant_log ]

let justdo_lock_record =
  (* intention store fenced, then the ownership word fenced: JUSTDO's
     two-fence lock protocol (acquire and release are symmetric). *)
  [
    Write "intent";
    Writeback "intent";
    Fence;
    Publish { target = "lockrec"; needs = Fenced; requires = [ Meta "intent" ] };
    Writeback "lockrec";
    Fence;
  ]

(* ------------------------------------------------------------------ *)
(* Undo ring (Atlas / NVML, Undo_log): record words written back
   before head/total publish the record.                               *)

let undo_append ~unfenced_variant ~fenced =
  (if unfenced_variant then
     (* PR 1's seeded bug: head/total stored before the record's
        write-backs are issued — an eviction of the counter line
        publishes an unwritten record. *)
     [
       Write "rec";
       Publish { target = "head"; needs = Initiated; requires = [ Meta "rec" ] };
       Writeback "rec";
       Writeback "head";
     ]
   else
     [
       Write "rec";
       Writeback "rec";
       Publish { target = "head"; needs = Initiated; requires = [ Meta "rec" ] };
       Writeback "head";
     ])
  @ if fenced then [ Fence ] else []

(* ------------------------------------------------------------------ *)
(* Mnemosyne (Redo_log): entries fenced, status := Committed fenced,
   apply, data fenced, status := Idle fenced.                          *)

let txn_commit ~drop_fence =
  [ Writeback "redo" ]
  @ (if drop_fence then [] else [ Fence ])
  @ [
      Publish { target = "status"; needs = Fenced; requires = [ Meta "redo" ] };
      Writeback "status";
      Fence;
      (* apply: the write set reaches its home locations *)
      Writeback_data;
      Fence;
      (* truncation: the log may only empty once the applied data is
         durable *)
      Publish { target = "status"; needs = Fenced; requires = [ Data ] };
      Writeback "status";
      Fence;
    ]

(* ------------------------------------------------------------------ *)
(* NVthreads (Page_log)                                                *)

let nvthreads_commit =
  [
    Writeback "pages";
    Publish { target = "pstatus"; needs = Initiated; requires = [ Meta "pages" ] };
    Writeback "pstatus";
    Fence;
    (* apply copies the buffered pages home; the stores stay volatile,
       but the committed log makes them recoverable — which is what the
       summarized data cell means, so absorb them as durable. *)
    Writeback_data;
    Fence;
  ]

(* ------------------------------------------------------------------ *)

let variants =
  [
    ( "early-publish-justdo",
      "JUSTDO log entry: valid flag fenced durable before the (pc, addr, \
       value) words are written" );
    ( "unfenced-undo-append",
      "undo ring append: head/total published before the record's \
       write-backs are issued" );
    ( "reorder-region-writeback",
      "iDO region boundary: tracked-line write-backs issued after the \
       boundary fence instead of before" );
    ( "drop-release-fence",
      "iDO lock release: record cleared and pc zeroed without the closing \
       fence" );
    ( "drop-commit-fence",
      "Mnemosyne commit: status set Committed without fencing the redo \
       entries first" );
  ]

let model ?variant scheme (hook : Ir.hook) =
  let v n = variant = Some n in
  match (scheme, hook) with
  (* --- iDO --- *)
  | Scheme.Ido, Ir.Hregion rh ->
      if v "reorder-region-writeback" then ido_region_reordered rh
      else ido_region rh
  | Scheme.Ido, Ir.Hlock_acquired ->
      (* stores + write-back only; the next boundary's fence persists
         the record (benign steal window) *)
      [ Write "lockrec"; Writeback "lockrec" ]
  | Scheme.Ido, Ir.Hlock_release { outermost } ->
      ido_release ~outermost ~fenced:(not (v "drop-release-fence"))
  | Scheme.Ido, Ir.Hfase_exit ->
      (* durable-region FASEs reach here with the pc still armed *)
      [
        Publish { target = "pc"; needs = Fenced; requires = [ Data; Meta "outlog" ] };
        Writeback "pc";
        Fence;
      ]
  | Scheme.Ido, Ir.Hfase_enter -> []
  (* --- JUSTDO --- *)
  | Scheme.Justdo, Ir.Hjustdo_store ->
      justdo_store ~early_publish:(v "early-publish-justdo")
  | Scheme.Justdo, (Ir.Hlock_acquired | Ir.Hlock_release _) -> justdo_lock_record
  | Scheme.Justdo, Ir.Hfase_exit ->
      [
        Writeback_data;
        Fence;
        Check
          {
            needs = Fenced;
            requires = [ Data ];
            code = "L302";
            what = "FASE data at exit";
          };
        Write "valid";
        Writeback "valid";
        Fence;
      ]
  | Scheme.Justdo, Ir.Hfase_enter -> []
  (* --- Atlas --- *)
  | Scheme.Atlas, Ir.Hfase_enter ->
      undo_append ~unfenced_variant:false ~fenced:false
  | Scheme.Atlas, Ir.Hundo_store ->
      undo_append ~unfenced_variant:(v "unfenced-undo-append") ~fenced:true
      @ [ Grant_log ]
  | Scheme.Atlas, (Ir.Hlock_acquired | Ir.Hlock_release _) ->
      undo_append ~unfenced_variant:false ~fenced:true
  | Scheme.Atlas, Ir.Hdurable_commit -> [ Writeback_data; Fence ]
  | Scheme.Atlas, Ir.Hfase_exit ->
      Check
        {
          needs = Fenced;
          requires = [ Data ];
          code = "L302";
          what = "FASE data at exit";
        }
      :: undo_append ~unfenced_variant:false ~fenced:false
  (* --- Mnemosyne --- *)
  | Scheme.Mnemosyne, Ir.Htxn_begin -> [ Write "status" ]
  | Scheme.Mnemosyne, Ir.Hredo_store -> [ Write "redo"; Grant_log ]
  | Scheme.Mnemosyne, Ir.Htxn_commit ->
      txn_commit ~drop_fence:(v "drop-commit-fence")
  (* --- NVML --- *)
  | Scheme.Nvml, Ir.Hfase_enter ->
      undo_append ~unfenced_variant:false ~fenced:false
  | Scheme.Nvml, Ir.Hundo_store ->
      undo_append ~unfenced_variant:(v "unfenced-undo-append") ~fenced:true
      @ [ Grant_log ]
  | Scheme.Nvml, Ir.Hdurable_commit -> [ Writeback_data; Fence ]
  | Scheme.Nvml, Ir.Hfase_exit ->
      [
        Check
          {
            needs = Fenced;
            requires = [ Data ];
            code = "L302";
            what = "FASE data at exit";
          };
        (* Undo_log.reset: head := 0 truncates the log *)
        Publish { target = "head"; needs = Fenced; requires = [ Data ] };
        Writeback "head";
        Fence;
      ]
  (* --- NVthreads --- *)
  | Scheme.Nvthreads, Ir.Hfase_enter -> [ Write "pstatus"; Writeback "pstatus"; Fence ]
  | Scheme.Nvthreads, Ir.Hpage_log -> [ Write "pages"; Grant_log ]
  | Scheme.Nvthreads, Ir.Hdurable_commit -> nvthreads_commit
  | Scheme.Nvthreads, Ir.Hfase_exit -> []
  | _ -> []

let hook_allowed scheme (hook : Ir.hook) =
  match (scheme, hook) with
  | Scheme.Origin, _ -> false
  | Scheme.Ido, (Ir.Hregion _ | Ir.Hfase_enter | Ir.Hfase_exit
                | Ir.Hlock_acquired | Ir.Hlock_release _) ->
      true
  | ( Scheme.Justdo,
      ( Ir.Hfase_enter | Ir.Hfase_exit | Ir.Hlock_acquired
      | Ir.Hlock_release _ | Ir.Hjustdo_store ) ) ->
      true
  | ( Scheme.Atlas,
      ( Ir.Hfase_enter | Ir.Hfase_exit | Ir.Hlock_acquired
      | Ir.Hlock_release _ | Ir.Hdurable_commit | Ir.Hundo_store ) ) ->
      true
  | Scheme.Mnemosyne, (Ir.Htxn_begin | Ir.Htxn_commit | Ir.Hredo_store) -> true
  | Scheme.Nvml, (Ir.Hfase_enter | Ir.Hfase_exit | Ir.Hdurable_commit
                 | Ir.Hundo_store) ->
      true
  | Scheme.Nvthreads, (Ir.Hfase_enter | Ir.Hfase_exit | Ir.Hdurable_commit
                      | Ir.Hpage_log) ->
      true
  | _ -> false

let log_grant_hook = function
  | Scheme.Justdo -> Some Ir.Hjustdo_store
  | Scheme.Atlas | Scheme.Nvml -> Some Ir.Hundo_store
  | Scheme.Mnemosyne -> Some Ir.Hredo_store
  | Scheme.Nvthreads -> Some Ir.Hpage_log
  | Scheme.Ido | Scheme.Origin -> None

let tracks_stack_stores = function Scheme.Justdo -> true | _ -> false

(* Which schemes keep their per-store grant sound when a cell's second
   capture in the same FASE/txn is skipped: undo-style logs only need
   the oldest value (newest-first restore), redo/page logs key by
   cell/page.  JUSTDO is excluded — every Hjustdo_store re-arms the
   resumption tuple, so each one is load-bearing. *)
let grant_elidable = function
  | Scheme.Atlas | Scheme.Nvml | Scheme.Nvthreads | Scheme.Mnemosyne -> true
  | Scheme.Justdo | Scheme.Ido | Scheme.Origin -> false

(* Which schemes tolerate a grant hook separated from its store (the
   loop-preheader hoist): the hook arms a capture that the next
   qualifying store consumes; Mnemosyne's txn_store resolves its own
   log entry so hoisting buys nothing and stays disallowed. *)
let grant_hoistable = function
  | Scheme.Atlas | Scheme.Nvml | Scheme.Nvthreads -> true
  | _ -> false

let unlock_durable_cells = function
  | Scheme.Ido -> [ "lockrec"; "pc" ]
  | Scheme.Justdo -> [ "lockrec" ]
  | Scheme.Atlas -> [ "head" ]
  | _ -> []
