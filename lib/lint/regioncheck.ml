open Ido_ir
open Ido_analysis
open Ido_runtime

let strip (f : Ir.func) =
  let blocks =
    Array.map
      (fun (blk : Ir.block) ->
        {
          blk with
          Ir.instrs =
            Array.of_list
              (List.filter
                 (fun i -> not (Ir.is_hook i))
                 (Array.to_list blk.Ir.instrs));
        })
      f.Ir.blocks
  in
  { f with Ir.blocks }

(* Hooks owned by other passes: per-store grants by Transfer, region
   boundaries by the plan comparison below. *)
let in_sequence_compare = function
  | Ir.Hjustdo_store | Ir.Hundo_store | Ir.Hredo_store | Ir.Hpage_log
  | Ir.Hregion _ ->
      false
  | _ -> true

let code_for = function
  | Ir.Hfase_enter | Ir.Hfase_exit -> "L105"
  | _ -> "L106"

(* Expected pre/post hooks of the stripped instruction at [pos],
   restating instrument.mli's placement contract. *)
let expected scheme fase (pos : Ir.pos) (instr : Ir.instr) =
  let enter_exit_post =
    match instr with
    | Ir.Lock _ when Fase.outermost_acquire fase pos -> [ Ir.Hfase_enter ]
    | Ir.Durable_begin -> [ Ir.Hfase_enter ]
    | Ir.Unlock _ when Fase.outermost_release fase pos -> [ Ir.Hfase_exit ]
    | Ir.Durable_end -> [ Ir.Hfase_exit ]
    | _ -> []
  in
  let lock_records_post =
    match instr with
    | Ir.Lock _ when Fase.covers fase pos -> [ Ir.Hlock_acquired ]
    | _ -> []
  in
  let lock_records_pre =
    match instr with
    | Ir.Unlock _ when Fase.in_fase fase pos ->
        [ Ir.Hlock_release { outermost = Fase.outermost_release fase pos } ]
    | _ -> []
  in
  match scheme with
  | Scheme.Ido ->
      let post =
        match instr with
        | Ir.Lock _ when Fase.outermost_acquire fase pos ->
            [ Ir.Hfase_enter; Ir.Hlock_acquired ]
        | Ir.Lock _ when Fase.covers fase pos -> [ Ir.Hlock_acquired ]
        | _ -> enter_exit_post
      in
      (lock_records_pre, post)
  | Scheme.Justdo | Scheme.Atlas ->
      let commit =
        match (scheme, instr) with
        | Scheme.Atlas, Ir.Unlock _ when Fase.outermost_release fase pos ->
            [ Ir.Hdurable_commit ]
        | Scheme.Atlas, Ir.Durable_end -> [ Ir.Hdurable_commit ]
        | _ -> []
      in
      (commit @ lock_records_pre, enter_exit_post @ lock_records_post)
  | Scheme.Nvml ->
      let pre =
        match instr with Ir.Durable_end -> [ Ir.Hdurable_commit ] | _ -> []
      in
      let post =
        match instr with
        | Ir.Durable_begin -> [ Ir.Hfase_enter ]
        | Ir.Durable_end -> [ Ir.Hfase_exit ]
        | _ -> []
      in
      (pre, post)
  | Scheme.Nvthreads ->
      let pre =
        match instr with
        | Ir.Unlock _ when Fase.in_fase fase pos -> [ Ir.Hdurable_commit ]
        | Ir.Durable_end -> [ Ir.Hdurable_commit ]
        | _ -> []
      in
      (pre, enter_exit_post)
  | Scheme.Mnemosyne | Scheme.Origin -> ([], [])

type item = Hk of Ir.hook | Instr

let item_str = function
  | Hk h -> "hook " ^ Hook_model.hook_name h
  | Instr -> "the program instruction"

(* ------------------------------------------------------------------ *)

let compare_sequences scheme fase (f : Ir.func) diags =
  let df = Dirtyflow.compute scheme f in
  Array.iteri
    (fun b (blk : Ir.block) ->
      (* actual: hooks (filtered) and real instructions, with their
         instrumented positions *)
      let actual = ref [] in
      Array.iteri
        (fun i instr ->
          let pos = { Ir.blk = b; idx = i } in
          match instr with
          | Ir.Hook h -> if in_sequence_compare h then actual := (Hk h, pos) :: !actual
          | _ -> actual := (Instr, pos) :: !actual)
        blk.Ir.instrs;
      let actual = List.rev !actual in
      (* expected: from the stripped block *)
      let expected_items = ref [] in
      let sidx = ref 0 in
      Array.iter
        (fun instr ->
          if not (Ir.is_hook instr) then begin
            let spos = { Ir.blk = b; idx = !sidx } in
            incr sidx;
            let pre, post = expected scheme fase spos instr in
            List.iter
              (fun h ->
                if in_sequence_compare h then
                  expected_items := Hk h :: !expected_items)
              pre;
            expected_items := Instr :: !expected_items;
            List.iter
              (fun h ->
                if in_sequence_compare h then
                  expected_items := Hk h :: !expected_items)
              post
          end)
        blk.Ir.instrs;
      let expected_items = List.rev !expected_items in
      (* first divergence wins; later ones are usually knock-on *)
      let rec walk exp act =
        match (exp, act) with
        | [], [] -> ()
        | ( Hk (Ir.Hlock_release { outermost = want }) :: _,
            (Hk (Ir.Hlock_release { outermost = got }), pos) :: _ )
          when want <> got ->
            diags :=
              Diag.v ~pos ~func:f.Ir.name ~code:"L107"
                (Printf.sprintf
                   "lock_release hook marks the release as %s, but the FASE \
                    structure says it is %s"
                   (if got then "outermost" else "inner")
                   (if want then "outermost" else "inner"))
              :: !diags
        | e :: exp', a :: act' when e = fst a -> walk exp' act'
        (* a prescribed durable-commit may be elided (O101) where the
           tracked-line set is provably clean on every incoming path —
           there is nothing for the commit to flush *)
        | Hk Ir.Hdurable_commit :: exp', act
          when not
                 (Dirtyflow.dirty_at df
                    (match act with
                    | (_, pos) :: _ -> pos
                    | [] ->
                        { Ir.blk = b; idx = Array.length blk.Ir.instrs })) ->
            walk exp' act
        | (Hk h) :: _, act ->
            let pos = match act with (_, p) :: _ -> Some p | [] -> None in
            diags :=
              Diag.v ?pos ~func:f.Ir.name ~code:(code_for h)
                (Printf.sprintf
                   "missing %s hook required by the %s instrumentation \
                    contract (block %d)"
                   (Hook_model.hook_name h) (Scheme.name scheme) b)
              :: !diags
        | _, (Hk h, pos) :: _ ->
            diags :=
              Diag.v ~pos ~func:f.Ir.name ~code:(code_for h)
                (Printf.sprintf "%s hook not prescribed here by the %s \
                                 instrumentation contract"
                   (Hook_model.hook_name h) (Scheme.name scheme))
              :: !diags
        | Instr :: _, ((Instr, _) :: _ | []) ->
            (* lengths diverged on program instructions: impossible if
               strip(f) was used to build the expectation *)
            ()
        | [], (it, pos) :: _ ->
            diags :=
              Diag.v ~pos ~func:f.Ir.name ~code:"L105"
                (Printf.sprintf "unexpected %s at end of block" (item_str it))
              :: !diags
      in
      walk expected_items actual)
    f.Ir.blocks

(* ------------------------------------------------------------------ *)
(* iDO region plan conformance *)

module Pmap = Map.Make (struct
  type t = Ir.pos

  let compare = Stdlib.compare
end)

let pos_str (p : Ir.pos) = Printf.sprintf "(%d,%d)" p.Ir.blk p.Ir.idx

let compare_plan (f : Ir.func) (stripped : Ir.func) diags =
  let cfg = Cfg.build stripped in
  let fase = Fase.compute_exn cfg in
  let liveness = Liveness.compute cfg in
  let alias = Alias.compute stripped in
  let plan = Regions.compute cfg fase liveness alias in
  let plan_map =
    List.fold_left
      (fun m (c : Regions.cut) -> Pmap.add c.pos c m)
      Pmap.empty plan.Regions.cuts
  in
  (* region hooks keyed by their position in the stripped function *)
  let hook_map = ref Pmap.empty in
  Array.iteri
    (fun b (blk : Ir.block) ->
      let sidx = ref 0 in
      Array.iteri
        (fun i instr ->
          match instr with
          | Ir.Hook (Ir.Hregion rh) ->
              let spos = { Ir.blk = b; idx = !sidx } in
              let ipos = { Ir.blk = b; idx = i } in
              if Pmap.mem spos !hook_map then
                diags :=
                  Diag.v ~pos:ipos ~func:f.Ir.name ~code:"L403"
                    (Printf.sprintf
                       "duplicate region boundary hook at cut point %s"
                       (pos_str spos))
                  :: !diags
              else hook_map := Pmap.add spos (ipos, rh) !hook_map
          | instr when not (Ir.is_hook instr) -> incr sidx
          | _ -> ())
        blk.Ir.instrs)
    f.Ir.blocks;
  let hook_map = !hook_map in
  Pmap.iter
    (fun spos (c : Regions.cut) ->
      match Pmap.find_opt spos hook_map with
      | None ->
          diags :=
            Diag.v ~func:f.Ir.name ~code:"L401"
              (Printf.sprintf
                 "region plan cuts at %s but no boundary hook is present — \
                  a WAR pair or lock boundary is left inside one region"
                 (pos_str spos))
            :: !diags
      | Some (ipos, rh) ->
          if c.Regions.required && rh.Ir.skippable then
            diags :=
              Diag.v ~pos:ipos ~func:f.Ir.name ~code:"L402"
                (Printf.sprintf
                   "required cut at %s is marked elidable: skipping it can \
                    close a region with an unseparated WAR pair"
                   (pos_str spos))
              :: !diags;
          if rh.Ir.at_release <> c.Regions.at_release then
            diags :=
              Diag.v ~pos:ipos ~func:f.Ir.name ~code:"L404"
                (Printf.sprintf
                   "boundary at %s %s: the fence may be deferred only onto \
                    an immediately following release record"
                   (pos_str spos)
                   (if rh.Ir.at_release then
                      "defers its fence but is not at a release"
                    else "is at a release but does not defer its fence"))
              :: !diags;
          if rh.Ir.region_id <> c.Regions.id then
            diags :=
              Diag.v ~pos:ipos ~func:f.Ir.name ~code:"L404"
                (Printf.sprintf
                   "boundary at %s carries region id %d, plan says %d — \
                    recovery would restore the wrong register image"
                   (pos_str spos) rh.Ir.region_id c.Regions.id)
              :: !diags;
          let sorted = List.sort_uniq Stdlib.compare in
          if
            sorted rh.Ir.live_in <> sorted c.Regions.live_in
            || sorted rh.Ir.out_regs <> sorted c.Regions.out_regs
          then
            diags :=
              Diag.v ~pos:ipos ~func:f.Ir.name ~code:"L404"
                (Printf.sprintf
                   "boundary at %s logs a different register set than the \
                    plan's live-in/OutputSet"
                   (pos_str spos))
              :: !diags)
    plan_map;
  Pmap.iter
    (fun spos ((ipos : Ir.pos), _) ->
      if not (Pmap.mem spos plan_map) then
        diags :=
          Diag.v ~pos:ipos ~func:f.Ir.name ~code:"L403"
            (Printf.sprintf "region boundary hook at %s where the plan has \
                             no cut" (pos_str spos))
          :: !diags)
    hook_map

(* ------------------------------------------------------------------ *)

let has_hooks (f : Ir.func) =
  Array.exists
    (fun (blk : Ir.block) -> Array.exists Ir.is_hook blk.Ir.instrs)
    f.Ir.blocks

let check scheme (f : Ir.func) =
  match scheme with
  | Scheme.Mnemosyne | Scheme.Origin -> []
  | _ ->
      let diags = ref [] in
      let stripped = strip f in
      (match Fase.compute (Cfg.build stripped) with
      | Error msg ->
          diags :=
            [ Diag.v ~func:f.Ir.name ~code:"V113" ("FASE structure: " ^ msg) ]
      | Ok fase ->
          if not (Fase.has_fase fase) then begin
            if has_hooks f then
              diags :=
                [
                  Diag.v ~func:f.Ir.name ~code:"L105"
                    "function has no FASE yet carries instrumentation hooks";
                ]
          end
          else if
            (not (has_hooks f))
            && not
                 (Ir.fold_instrs
                    (fun acc _ i -> acc || Dirtyflow.dirties scheme i)
                    false f)
          then
            (* write-free FASE with every hook elided (O102): nothing
               in it needs recovery, so the bare lock structure is the
               whole contract.  All-or-nothing — a partially stripped
               function still falls through to the sequence compare. *)
            ()
          else begin
            compare_sequences scheme fase f diags;
            if scheme = Scheme.Ido then compare_plan f stripped diags
          end);
      List.rev !diags
