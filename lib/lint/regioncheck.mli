(** Hook-placement conformance: does the instrumented function carry
    exactly the hooks its scheme's contract (instrument.mli) demands?

    The instrumented function is stripped of hooks, the stripped
    function is re-analysed (FASE structure, and under iDO the full
    idempotent-region plan), and the expected hook placement is
    recomputed and compared against the hooks actually present.  The
    oracle restates the instrumentation contract independently of
    [Ido_instrument] — which depends on this library for its lint
    post-pass — so the restatement both breaks the dependency cycle
    and double-checks the pass against its spec.

    Codes:
    - [L105] missing/extra FASE entry or exit hook
    - [L106] missing/extra lock-record or commit hook
    - [L107] lock-release hook disagrees about outermost-ness
    - [L401] region-plan cut without its boundary hook
    - [L402] required (WAR-separating) cut marked elidable
    - [L403] boundary hook at a position the plan does not cut
    - [L404] boundary hook metadata (id, registers, release flag)
      diverges from the plan

    Per-store log hooks are owned by {!Transfer} ([L201]..[L203]) and
    ignored here.  Mnemosyne is skipped entirely: its instrumentation
    {e replaces} lock operations, so the pre-image cannot be
    reconstructed from the instrumented function. *)

open Ido_ir
open Ido_analysis
open Ido_runtime

val check : Scheme.t -> Ir.func -> Diag.t list

val strip : Ir.func -> Ir.func
(** The function with every hook removed (used by tests and by the
    linter driver to re-derive plans). *)
