(** The linter driver: persist-order abstract interpretation
    ({!Transfer}), instrumentation-contract conformance
    ({!Regioncheck}) and lockset checking ({!Lockset}) over an
    instrumented program, composed into one diagnostic report.

    A clean report means: every path of every function satisfies the
    scheme's hook contract from instrument.mli, every publish point
    obeys the write-ahead discipline the recovery procedure assumes,
    and the worker threads' shared persistent accesses follow a
    consistent locking discipline.  The crash-matrix engine (PR 1)
    validates the same properties dynamically on explored schedules;
    the linter proves the ordering ones on all paths and catches the
    static placement bugs the matrix can only witness. *)

open Ido_ir
open Ido_analysis
open Ido_runtime

val lint_func :
  ?variant:string -> Scheme.t -> Ir.func -> Diag.t list * Transfer.result
(** Lint one instrumented function.  The {!Transfer.result} carries
    the accesses and lock-order edges the caller can feed to
    {!Lockset.check}. *)

val lint_program :
  ?variant:string -> ?entries:string list -> Scheme.t -> Ir.program -> Diag.t list
(** Lint every function and run the lockset pass over [entries] (their
    reachable call graphs).  Defaults to [\["worker"\]] per the
    workload convention; entries missing from the program are dropped,
    and if none remain every function is checked.  Diagnostics are
    sorted and deduplicated.  [variant] substitutes a named buggy hook
    protocol ({!Hook_model.variants}). *)

val explain : string -> string
(** One-line explanation of a stable error code (["L201"], ...);
    useful for CLI output and docs. *)

val codes : (string * string) list
(** All stable codes with their explanations, in order. *)
