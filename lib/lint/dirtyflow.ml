open Ido_ir
open Ido_runtime

type t = { func : Ir.func; scheme : Scheme.t; ins : bool array }

(* Instructions that may dirty in-FASE program data under [scheme] —
   the same set Transfer's [store_dirties_data] tracks, widened to be
   context-insensitive (a store outside protection still marks the
   function dirty here; may-analysis errs toward "dirty"). *)
let dirties scheme = function
  | Ir.Store { space = Ir.Persistent; _ } -> true
  | Ir.Store { space = Ir.Stack; _ } -> (
      match scheme with Scheme.Ido | Scheme.Justdo -> true | _ -> false)
  | Ir.Call _ -> true
  | Ir.Intrinsic { intr = Ir.Nv_alloc | Ir.Nv_free | Ir.Root_set; _ } -> true
  | _ -> false

(* Points where the runtime's tracked-line set is known empty again:
   FASE entry resets it, a durable-commit hook flushes and fences it. *)
let clears = function
  | Ir.Hook Ir.Hfase_enter | Ir.Hook Ir.Hdurable_commit -> true
  | _ -> false

let step scheme dirty instr =
  if clears instr then false else dirty || dirties scheme instr

let block_out scheme (blk : Ir.block) dirty0 =
  Array.fold_left (step scheme) dirty0 blk.Ir.instrs

let compute scheme (func : Ir.func) =
  let n = Array.length func.Ir.blocks in
  let ins = Array.make n false in
  let reached = Array.make n false in
  reached.(0) <- true;
  let work = Queue.create () in
  Queue.add 0 work;
  let on_queue = Array.make n false in
  on_queue.(0) <- true;
  while not (Queue.is_empty work) do
    let b = Queue.pop work in
    on_queue.(b) <- false;
    let out = block_out scheme func.Ir.blocks.(b) ins.(b) in
    List.iter
      (fun s ->
        let joined = (reached.(s) && ins.(s)) || out in
        if (not reached.(s)) || joined <> ins.(s) then begin
          reached.(s) <- true;
          ins.(s) <- joined;
          if not on_queue.(s) then begin
            on_queue.(s) <- true;
            Queue.add s work
          end
        end)
      (Ir.successors func.Ir.blocks.(b).Ir.term)
  done;
  { func; scheme; ins }

let dirty_at t (pos : Ir.pos) =
  let blk = t.func.Ir.blocks.(pos.Ir.blk) in
  let dirty = ref t.ins.(pos.Ir.blk) in
  for i = 0 to pos.Ir.idx - 1 do
    dirty := step t.scheme !dirty blk.Ir.instrs.(i)
  done;
  !dirty
