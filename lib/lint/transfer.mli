(** Forward abstract interpretation of one instrumented function.

    Walks the CFG to a fixpoint over a product state: the stack of
    held protection tokens (locks, durable regions, transactions), the
    armed-log-grant token of the scheme's per-store hook, and the
    {!Plattice} persistence state of the scheme's runtime metadata
    cells plus the summarized FASE data.  Hooks advance the lattice
    through their {!Hook_model} micro-op protocols; publish and check
    micro-ops emit diagnostics when a word would become recovery-visible
    before its prerequisites are durable.

    Codes emitted here:
    - [L101] inconsistent protection depth at a join
    - [L102] unlock without a matching held lock
    - [L103] unbalanced transaction / durable region
    - [L104] return while protection is still held
    - [L201] protected persistent store not covered by the scheme's
      log hook
    - [L202] orphaned log hook (grant not consumed by the next store)
    - [L203] log hook outside its protected context
    - [L204] hook foreign to the scheme
    - [L301] write-ahead violation at a publish point
    - [L302]/[L303] protocol obligations ([Check] micro-ops, unlock
      durability) *)

open Ido_ir
open Ido_analysis
open Ido_runtime

type access = {
  apos : Ir.pos;
  aloc : Sym.expr;  (** resolved address, never [Unknown]-based *)
  awrite : bool;
  alocks : Sym.expr list;  (** stable lock tokens held, outermost first *)
  aprotected : bool;  (** any protection token held *)
  apure : bool;  (** protection is exclusively stable locks *)
}

type result = {
  diags : Diag.t list;
  accesses : access list;  (** persistent-space loads and stores *)
  order_edges : (Sym.expr * Sym.expr * Ir.pos) list;
      (** [(held, acquired, at)] for stable lock pairs — the
          lock-order graph's edges *)
}

val analyze : ?variant:string -> Scheme.t -> Ir.func -> result
(** [variant] substitutes a named buggy hook protocol, see
    {!Hook_model.variants}. *)
