open Ido_ir
open Ido_analysis

module Emap = Map.Make (struct
  type t = Sym.expr

  let compare = Sym.compare
end)

let callees (f : Ir.func) =
  Ir.fold_instrs
    (fun acc _ i ->
      match i with Ir.Call { func; _ } -> func :: acc | _ -> acc)
    [] f

let reachable_set (p : Ir.program) entries =
  match entries with
  | [] -> None (* everything *)
  | _ ->
      let seen = Hashtbl.create 16 in
      let rec visit n =
        if not (Hashtbl.mem seen n) then begin
          Hashtbl.replace seen n ();
          match List.assoc_opt n p.Ir.funcs with
          | Some f -> List.iter visit (callees f)
          | None -> ()
        end
      in
      List.iter visit entries;
      Some seen

let inter_locks a b = List.filter (fun x -> List.exists (Sym.equal x) b) a

let check (p : Ir.program) ~entries ~results =
  let reach = reachable_set p entries in
  let included fn =
    match reach with None -> true | Some s -> Hashtbl.mem s fn
  in
  let accs =
    List.concat_map
      (fun (fn, (r : Transfer.result)) ->
        if included fn then
          List.map (fun a -> (fn, a)) r.Transfer.accesses
        else [])
      results
  in
  let diags = ref [] in
  let add d = diags := d :: !diags in
  (* ---- L501: unprotected write racing protected accesses ---- *)
  let protected_locs =
    List.filter_map
      (fun ((_, a) : _ * Transfer.access) ->
        if a.Transfer.aprotected && Sym.is_stable a.Transfer.aloc then
          Some a.Transfer.aloc
        else None)
      accs
  in
  let reported = Hashtbl.create 16 in
  List.iter
    (fun ((fn, a) : string * Transfer.access) ->
      if
        a.Transfer.awrite
        && (not a.Transfer.aprotected)
        && Sym.is_stable a.Transfer.aloc
        && List.exists (Sym.equal a.Transfer.aloc) protected_locs
        && not (Hashtbl.mem reported (fn, Sym.to_string a.Transfer.aloc))
      then begin
        Hashtbl.replace reported (fn, Sym.to_string a.Transfer.aloc) ();
        add
          (Diag.v ~pos:a.Transfer.apos ~func:fn ~code:"L501"
             (Printf.sprintf
                "unprotected write to %s, which is accessed under \
                 lock/FASE protection elsewhere"
                (Sym.to_string a.Transfer.aloc)))
      end)
    accs;
  (* ---- L502: empty candidate lockset ---- *)
  let groups =
    List.fold_left
      (fun m ((fn, a) : string * Transfer.access) ->
        if a.Transfer.aprotected && Sym.is_stable a.Transfer.aloc then
          Emap.update a.Transfer.aloc
            (fun prev -> Some ((fn, a) :: Option.value prev ~default:[]))
            m
        else m)
      Emap.empty accs
  in
  Emap.iter
    (fun loc group ->
      let group = List.rev group in
      match group with
      | (_ :: _ :: _ as g)
        when List.exists (fun (_, a) -> a.Transfer.awrite) g
             && List.for_all (fun (_, a) -> a.Transfer.apure) g -> (
          let locksets = List.map (fun (_, a) -> a.Transfer.alocks) g in
          let common =
            match locksets with
            | first :: rest -> List.fold_left inter_locks first rest
            | [] -> []
          in
          if common = [] then
            match List.find_opt (fun (_, a) -> a.Transfer.awrite) g with
            | Some (fn, a) ->
                add
                  (Diag.v ~pos:a.Transfer.apos ~func:fn ~code:"L502"
                     (Printf.sprintf
                        "accesses to %s hold no common lock: its candidate \
                         lockset is empty (Eraser)"
                        (Sym.to_string loc)))
            | None -> ())
      | _ -> ())
    groups;
  (* ---- L503: lock-order cycle ---- *)
  let edges =
    List.concat_map
      (fun (fn, (r : Transfer.result)) ->
        if included fn then
          List.map (fun (h, t, pos) -> (fn, h, t, pos)) r.Transfer.order_edges
        else [])
      results
  in
  (* adjacency over stable lock tokens *)
  let adj =
    List.fold_left
      (fun m (_, h, t, _) ->
        Emap.update h
          (fun prev ->
            let l = Option.value prev ~default:[] in
            if List.exists (Sym.equal t) l then Some l else Some (t :: l))
          m)
      Emap.empty edges
  in
  let color = Hashtbl.create 16 in
  (* 0 absent, 1 on stack, 2 done; keys are printed tokens *)
  let key e = Sym.to_string e in
  let cycle_found = ref None in
  let rec dfs path e =
    match Hashtbl.find_opt color (key e) with
    | Some 1 ->
        if !cycle_found = None then begin
          (* [path] is the DFS stack, innermost first; the cycle is the
             segment from the revisited node [e] inward *)
          let rec upto acc = function
            | [] -> acc
            | x :: xs -> if Sym.equal x e then x :: acc else upto (x :: acc) xs
          in
          cycle_found := Some (upto [] path)
        end
    | Some _ -> ()
    | None ->
        Hashtbl.replace color (key e) 1;
        List.iter (dfs (e :: path)) (Option.value (Emap.find_opt e adj) ~default:[]);
        Hashtbl.replace color (key e) 2
  in
  Emap.iter (fun e _ -> if Hashtbl.find_opt color (key e) = None then dfs [] e) adj;
  (match !cycle_found with
  | None -> ()
  | Some [] -> ()
  | Some cyc ->
      let names = List.map Sym.to_string cyc @ [ Sym.to_string (List.hd cyc) ] in
      let first = List.hd cyc in
      (* anchor the report at an edge that closes the cycle *)
      let fn, pos =
        match
          List.find_opt (fun (_, _, t, _) -> Sym.equal t first) edges
        with
        | Some (fn, _, _, pos) -> (fn, Some pos)
        | None -> (fst (List.hd p.Ir.funcs), None)
      in
      add
        (Diag.v ?pos ~func:fn ~code:"L503"
           (Printf.sprintf
              "lock-order cycle: %s — two threads interleaving these \
               acquires deadlock inside their FASEs"
              (String.concat " -> " names))));
  List.rev !diags
