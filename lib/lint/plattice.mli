(** The persist-order lattice.

    Every persistent word the simulated machine writes moves through
    three states: {e volatile-dirty} (the store sits in the cache
    overlay; an eviction may persist it at any time, a crash loses it),
    {e written-back} (a [clwb] moved the line into the persistence
    domain; in the simulator this is synchronous, on real hardware it
    is only ordered by the next fence), and {e fence-durable} (a
    persist fence completed; the word survives any crash and is ordered
    before everything after the fence).

    The linter tracks this state for a small set of named runtime
    metadata cells (log entries, publish words, the recovery pc) plus
    one summarized cell for the FASE's program data — mirroring the
    runtime, which tracks dirty data lines as a set and flushes them
    wholesale.  Joins at control-flow merges take the pointwise least
    durable state. *)

type pstate = Dirty | Written_back | Durable

val join_pstate : pstate -> pstate -> pstate
(** Least durable wins. *)

val pstate_leq : pstate -> pstate -> bool
val pstate_to_string : pstate -> string

module Smap : Map.S with type key = string

type t = {
  data : pstate;  (** summarized in-FASE program stores *)
  meta : pstate Smap.t;  (** named runtime metadata cells *)
}

val top : t
(** Everything durable — the state at FASE entry. *)

val join : t -> t -> t
val equal : t -> t -> bool

val get_meta : t -> string -> pstate
(** Cells never written are durable (they hold their initial,
    persisted contents). *)

val write_meta : t -> string -> t
(** A store: the cell becomes dirty. *)

val writeback_meta : t -> string -> t
(** [clwb]: dirty becomes written-back; other states keep. *)

val write_data : t -> t
val writeback_data : t -> t

val fence : t -> t
(** Every written-back cell (and data) becomes durable.  Dirty cells
    {e stay dirty}: a fence orders only initiated write-backs. *)
