open Ido_ir

type cls = Adjacent | Hoisted of Sym.expr | Orphan

type t = {
  func : Ir.func;
  grant : Ir.hook option;
  ins : Sym.expr list option array;  (** None = unreached (top) *)
  classes : (Ir.pos, cls) Hashtbl.t;
  sym : Sym.t;
}

(* Window boundaries: any instruction that changes the protection
   structure (or may, through a callee) resets the captured set — a
   capture only excuses a later grant within the same FASE/txn window,
   under the same log generation. *)
let clears = function
  | Ir.Lock _ | Ir.Unlock _ | Ir.Durable_begin | Ir.Durable_end | Ir.Call _ ->
      true
  | Ir.Intrinsic { intr = Ir.Nv_alloc | Ir.Nv_free | Ir.Root_set; _ } -> true
  | Ir.Hook
      ( Ir.Hfase_enter | Ir.Hfase_exit | Ir.Htxn_begin | Ir.Htxn_commit
      | Ir.Hdurable_commit ) ->
      true
  | _ -> false

let add cell cap = List.sort_uniq Sym.compare (cell :: cap)

let inter a b =
  let rec go a b =
    match (a, b) with
    | [], _ | _, [] -> []
    | x :: xs, y :: ys ->
        let c = Sym.compare x y in
        if c = 0 then x :: go xs ys else if c < 0 then go xs b else go a ys
  in
  go a b

let eq_cap a b = List.compare Sym.compare a b = 0

let is_grant grant instr =
  match (grant, instr) with Some g, Ir.Hook h -> h = g | _ -> false

(* ------------------------------------------------------------------ *)
(* Hoisted-grant resolution: from just after a detached grant hook,
   every path either reaches a first persistent store whose cell the
   hook captures, or leaves the window (a clearing instruction, Ret)
   and contributes nothing.  Another grant hook or an unresolvable
   store on any path disqualifies — the runtime's armed slot holds one
   grant.  All contributing cells must be one stable expression. *)
let classify_hook grant sym (func : Ir.func) (pos : Ir.pos) =
  let cells = ref [] in
  let bad = ref false in
  let visited = Hashtbl.create 8 in
  let rec walk b i =
    let blk = func.Ir.blocks.(b) in
    let n = Array.length blk.Ir.instrs in
    let rec go i =
      if i >= n then List.iter visit (Ir.successors blk.Ir.term)
      else
        match blk.Ir.instrs.(i) with
        | Ir.Store { space = Ir.Persistent; _ } -> (
            match Sym.resolve_store_addr sym { Ir.blk = b; idx = i } with
            | Some cell when Sym.is_stable cell -> cells := cell :: !cells
            | _ -> bad := true)
        | instr when is_grant grant instr -> bad := true
        | instr when clears instr -> ()
        | _ -> go (i + 1)
    in
    go i
  and visit b =
    if not (Hashtbl.mem visited b) then begin
      Hashtbl.add visited b ();
      walk b 0
    end
  in
  walk pos.Ir.blk (pos.Ir.idx + 1);
  match (!bad, !cells) with
  | true, _ | _, [] -> Orphan
  | false, c :: rest ->
      if List.for_all (Sym.equal c) rest then Hoisted c else Orphan

(* ------------------------------------------------------------------ *)

(* One instruction of the must-captured transfer function.  The block
   layout decides the capture kind: a store immediately preceded by the
   grant hook is an adjacent capture (the pair the instrumenter emits);
   a detached grant hook captures its resolved hoist cell. *)
let step t (blk : Ir.block) b i cap =
  let instr = blk.Ir.instrs.(i) in
  if clears instr then []
  else if is_grant t.grant instr then
    match Hashtbl.find_opt t.classes { Ir.blk = b; idx = i } with
    | Some (Hoisted cell) -> add cell cap
    | _ -> cap
  else
    match instr with
    | Ir.Store _ when i > 0 && is_grant t.grant blk.Ir.instrs.(i - 1) -> (
        match Sym.resolve_store_addr t.sym { Ir.blk = b; idx = i } with
        | Some cell when Sym.is_stable cell -> add cell cap
        | _ -> cap)
    | _ -> cap

let block_out t b cap0 =
  let blk = t.func.Ir.blocks.(b) in
  let cap = ref cap0 in
  for i = 0 to Array.length blk.Ir.instrs - 1 do
    cap := step t blk b i !cap
  done;
  !cap

let compute scheme (func : Ir.func) =
  let grant = Hook_model.log_grant_hook scheme in
  let sym = Sym.create func in
  let classes = Hashtbl.create 8 in
  (match grant with
  | None -> ()
  | Some g ->
      ignore
        (Ir.fold_instrs
           (fun () pos instr ->
             match instr with
             | Ir.Hook h when h = g ->
                 let blk = func.Ir.blocks.(pos.Ir.blk) in
                 let adjacent =
                   pos.Ir.idx + 1 < Array.length blk.Ir.instrs
                   &&
                   match blk.Ir.instrs.(pos.Ir.idx + 1) with
                   | Ir.Store _ -> true
                   | _ -> false
                 in
                 let cls =
                   if adjacent then Adjacent
                   else if Hook_model.grant_hoistable scheme then
                     classify_hook grant sym func pos
                   else Orphan
                 in
                 Hashtbl.replace classes pos cls
             | _ -> ())
           () func));
  let n = Array.length func.Ir.blocks in
  let t = { func; grant; ins = Array.make n None; classes; sym } in
  t.ins.(0) <- Some [];
  let work = Queue.create () in
  Queue.add 0 work;
  let on_queue = Array.make n false in
  on_queue.(0) <- true;
  while not (Queue.is_empty work) do
    let b = Queue.pop work in
    on_queue.(b) <- false;
    match t.ins.(b) with
    | None -> ()
    | Some cap0 ->
        let out = block_out t b cap0 in
        List.iter
          (fun s ->
            let joined =
              match t.ins.(s) with None -> out | Some prev -> inter prev out
            in
            let changed =
              match t.ins.(s) with
              | None -> true
              | Some prev -> not (eq_cap prev joined)
            in
            if changed then begin
              t.ins.(s) <- Some joined;
              if not on_queue.(s) then begin
                on_queue.(s) <- true;
                Queue.add s work
              end
            end)
          (Ir.successors t.func.Ir.blocks.(b).Ir.term)
  done;
  t

let classify t pos =
  match Hashtbl.find_opt t.classes pos with Some c -> c | None -> Orphan

let captured_before t (pos : Ir.pos) =
  match t.ins.(pos.Ir.blk) with
  | None -> []
  | Some cap0 ->
      let blk = t.func.Ir.blocks.(pos.Ir.blk) in
      let cap = ref cap0 in
      for i = 0 to pos.Ir.idx - 1 do
        cap := step t blk pos.Ir.blk i !cap
      done;
      !cap

let mem t pos cell =
  List.exists (Sym.equal cell) (captured_before t pos)
