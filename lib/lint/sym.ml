open Ido_ir
open Ido_analysis

type base =
  | Alloca of int
  | Heap of int
  | Const of int64
  | Param of int
  | Root of int
  | Loaded of expr * int
  | Unknown

and expr = { base : base; delta : int }

type t = {
  func : Ir.func;
  reaching : Reaching.t;
  memo : (Ir.pos * int, expr) Hashtbl.t;
}

let create (func : Ir.func) =
  let cfg = Cfg.build func in
  { func; reaching = Reaching.compute cfg; memo = Hashtbl.create 64 }

let unknown = { base = Unknown; delta = 0 }

let site_of (p : Ir.pos) = (p.blk * 0x100000) + p.idx

let instr_at t (p : Ir.pos) =
  if p.blk < 0 || p.blk >= Array.length t.func.blocks then None
  else begin
    let blk = t.func.blocks.(p.blk) in
    if p.idx < Array.length blk.instrs then Some blk.instrs.(p.idx) else None
  end

let max_load_depth = 2

(* Mirrors Alias.resolve_reg, with two extra chases: [Root_get k] and
   bounded-depth pointer loads. *)
let rec resolve_reg t ~seen ~depth ~at r =
  match Hashtbl.find_opt t.memo (at, r) with
  | Some e -> e
  | None ->
      let e =
        if List.mem (at, r) seen then unknown
        else begin
          let seen = (at, r) :: seen in
          match Reaching.unique_def t.reaching at r with
          | None -> unknown
          | Some d when d.Ir.blk = -1 -> { base = Param d.Ir.idx; delta = 0 }
          | Some d -> (
              match instr_at t d with
              | Some (Alloca (_, _)) -> { base = Alloca (site_of d); delta = 0 }
              | Some (Intrinsic { intr = Nv_alloc; _ }) ->
                  { base = Heap (site_of d); delta = 0 }
              | Some (Intrinsic { intr = Root_get; args = [ Imm k ]; _ }) ->
                  { base = Root (Int64.to_int k); delta = 0 }
              | Some (Mov (_, op)) -> resolve t ~seen ~depth ~at:d op
              | Some (Bin (_, Add, a, Imm k)) | Some (Bin (_, Add, Imm k, a)) ->
                  let e = resolve t ~seen ~depth ~at:d a in
                  if e.base = Unknown then unknown
                  else { e with delta = e.delta + Int64.to_int k }
              | Some (Bin (_, Sub, a, Imm k)) ->
                  let e = resolve t ~seen ~depth ~at:d a in
                  if e.base = Unknown then unknown
                  else { e with delta = e.delta - Int64.to_int k }
              | Some (Load { space = Persistent; base; off; _ })
                when depth < max_load_depth -> (
                  let a = resolve t ~seen ~depth:(depth + 1) ~at:d base in
                  match a.base with
                  | Unknown -> unknown
                  | _ -> { base = Loaded (a, off); delta = 0 })
              | _ -> unknown)
        end
      in
      Hashtbl.replace t.memo (at, r) e;
      e

and resolve t ~seen ~depth ~at = function
  | Ir.Reg r -> resolve_reg t ~seen ~depth ~at r
  | Ir.Imm i -> { base = Const i; delta = 0 }

let resolve_operand t ~at op = resolve t ~seen:[] ~depth:0 ~at op

let resolve_store_addr t pos =
  match instr_at t pos with
  | Some (Load { base; off; _ }) | Some (Store { base; off; _ }) ->
      let e = resolve_operand t ~at:pos base in
      Some (if e.base = Unknown then e else { e with delta = e.delta + off })
  | _ -> None

let rec stable_base = function
  | Alloca _ | Heap _ | Const _ | Param _ | Root _ -> true
  | Loaded _ | Unknown -> false

and is_stable e = stable_base e.base

let rec compare_base a b =
  match (a, b) with
  | Loaded (e1, o1), Loaded (e2, o2) ->
      let c = compare e1 e2 in
      if c <> 0 then c else Stdlib.compare o1 o2
  | _ -> Stdlib.compare a b

and compare a b =
  let c = compare_base a.base b.base in
  if c <> 0 then c else Stdlib.compare a.delta b.delta

let equal a b = compare a b = 0

let rec base_to_string = function
  | Alloca s -> Printf.sprintf "alloca@%d" s
  | Heap s -> Printf.sprintf "heap@%d" s
  | Const k -> Int64.to_string k
  | Param i -> Printf.sprintf "param%d" i
  | Root k -> Printf.sprintf "root[%d]" k
  | Loaded (e, off) -> Printf.sprintf "*(%s+%d)" (to_string e) off
  | Unknown -> "?"

and to_string e =
  if e.delta = 0 then base_to_string e.base
  else Printf.sprintf "%s+%d" (base_to_string e.base) e.delta
