(** Mutation corpus: seeded crash-consistency bugs with the diagnostic
    the linter must report for each.

    Every mutant names a workload, a scheme, and the stable error code
    the linter is expected to emit — the linter's regression suite and
    the [ido_check mutants] CLI assert exactly that.  Two mutants
    re-seed the bugs PR 1's crash matrix caught dynamically
    ([early-publish-justdo], [unfenced-undo-append]); a third
    ([reorder-region-writeback]) seeds the same class in iDO's boundary
    flush.

    Mutants come in three shapes:
    - [Before_instrument] program transforms (source-level bugs, e.g. a
      store hoisted out of its critical section);
    - [After_instrument] program transforms (instrumentation bugs:
      dropped or duplicated hooks, a required cut marked elidable);
    - hook-model variants ([variant <> None], with [transform] the
      identity): runtime protocol bugs, checked by linting the intact
      program against the buggy protocol model. *)

open Ido_ir
open Ido_runtime

type stage = Before_instrument | After_instrument

type t = {
  name : string;
  descr : string;
  scheme : Scheme.t;
  workload : string;  (** workload the mutant targets *)
  expect : string;  (** error code the linter must report *)
  stage : stage;
  variant : string option;  (** hook-model variant, see {!Hook_model} *)
  transform : Ir.program -> Ir.program;
}

val corpus : t list
val find : string -> t option
