(** Mutation corpus: seeded crash-consistency bugs with the diagnostic
    the linter must report for each.

    Every mutant names a workload, a scheme, and the stable error code
    the linter is expected to emit — the linter's regression suite and
    the [ido_check mutants] CLI assert exactly that.  Two mutants
    re-seed the bugs PR 1's crash matrix caught dynamically
    ([early-publish-justdo], [unfenced-undo-append]); a third
    ([reorder-region-writeback]) seeds the same class in iDO's boundary
    flush.

    Mutants come in three shapes:
    - [Before_instrument] program transforms (source-level bugs, e.g. a
      store hoisted out of its critical section);
    - [After_instrument] program transforms (instrumentation bugs:
      dropped or duplicated hooks, a required cut marked elidable);
    - hook-model variants ([variant <> None], with [transform] the
      identity): runtime protocol bugs, checked by linting the intact
      program against the buggy protocol model. *)

open Ido_ir
open Ido_runtime

type stage = Before_instrument | After_instrument

type t = {
  name : string;
  descr : string;
  scheme : Scheme.t;
  workload : string;  (** workload the mutant targets *)
  expect : string;  (** error code the linter must report *)
  stage : stage;
  variant : string option;  (** hook-model variant, see {!Hook_model} *)
  transform : Ir.program -> Ir.program;
}

val corpus : t list
val find : string -> t option

(** {1 Indexed instrumentation edits}

    The corpus above names one specific hook per mutant; the fuzzer
    ([Ido_fuzz]) instead works over {e indexed} edits — "delete the
    k-th hook", "elide the k-th required cut" — which are plain data,
    so a fuzzer finding serialises into its NDJSON corpus and
    {!ingest} turns it back into a corpus entry here.  Positions count
    matching instructions in function/block/instruction order. *)

type edit =
  | Delete_hook of int  (** delete the k-th hook instruction *)
  | Dup_hook of int  (** duplicate the k-th hook instruction *)
  | Elide_cut of int  (** mark the k-th required region cut skippable *)
  | Drop_cut of int  (** delete the k-th required region cut *)
  | Hoist_store
      (** replay a critical-section store above its lock (the corpus's
          [unlocked-store] shape; a {!Before_instrument} edit) *)

val apply_edit : edit -> Ir.program -> Ir.program
(** Out-of-range positions are the identity (the fuzzer treats such
    candidates as uninteresting rather than erroring). *)

val edit_stage : edit -> stage

val hook_count : Ir.program -> int
(** Hook instructions in an instrumented program — the index space of
    [Delete_hook]/[Dup_hook]. *)

val cut_count : Ir.program -> int
(** Required (non-skippable) region cuts — the index space of
    [Elide_cut]/[Drop_cut]. *)

val edit_to_string : edit -> string
(** Stable textual form (["del-hook:3"], ["hoist-store"], ...). *)

val edit_of_string : string -> edit option

val ingest :
  name:string ->
  descr:string ->
  scheme:Scheme.t ->
  workload:string ->
  expect:string ->
  ?variant:string ->
  edits:edit list ->
  unit ->
  t
(** Build a corpus entry from serialised edits (a fuzzer finding).
    The stage is inferred from the edits.
    @raise Invalid_argument when [edits] mixes both stages. *)
