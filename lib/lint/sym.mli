(** Symbolic value resolution for the linter.

    Extends the {!Ido_analysis.Alias} address discipline to the values
    the lockset pass needs stable names for: lock identifiers and
    accessed persistent words.  On top of the alias bases (allocation
    sites, constants, parameters) it resolves

    - [Root_get k] results to [Root k] — the contents of persistent
      root slot [k], the anchor every workload hangs its structure on;
    - one level of pointer loads, [Loaded (e, off)] — "the word loaded
      from [e + off]" — so per-node data reached through a descriptor
      still gets a name.

    Resolution is per-use through {!Ido_analysis.Reaching}; joins with
    several reaching definitions and deeper chains resolve to
    [Unknown].  Two equal expressions denote the same location only
    under the linter's heuristic reading (loads at different times may
    observe different pointers); the lockset pass documents where it
    relies on this. *)

open Ido_ir

type base =
  | Alloca of int  (** stack allocation site (block*2^20+idx) *)
  | Heap of int  (** nv_alloc site *)
  | Const of int64
  | Param of int
  | Root of int  (** value of persistent root slot [k] *)
  | Loaded of expr * int  (** value loaded from [expr + off] *)
  | Unknown

and expr = { base : base; delta : int }

type t

val create : Ir.func -> t

val resolve_operand : t -> at:Ir.pos -> Ir.operand -> expr
(** The symbolic value of [op] just before the instruction at [at]. *)

val resolve_store_addr : t -> Ir.pos -> expr option
(** Resolved address of the [Load]/[Store] at [pos]; [None] when the
    instruction is not a memory access. *)

val is_stable : expr -> bool
(** Bases that name the same thing on every execution of the program
    ([Root], [Param], [Const], allocation sites) — the expressions the
    lock-order and lockset-disjointness checks are allowed to compare.
    [Loaded]/[Unknown] values are excluded. *)

val equal : expr -> expr -> bool
val compare : expr -> expr -> int
val to_string : expr -> string
