type pstate = Dirty | Written_back | Durable

let rank = function Dirty -> 0 | Written_back -> 1 | Durable -> 2
let join_pstate a b = if rank a <= rank b then a else b
let pstate_leq a b = rank a <= rank b

let pstate_to_string = function
  | Dirty -> "volatile-dirty"
  | Written_back -> "written-back"
  | Durable -> "fence-durable"

module Smap = Map.Make (String)

type t = { data : pstate; meta : pstate Smap.t }

let top = { data = Durable; meta = Smap.empty }

let get_meta t name =
  match Smap.find_opt name t.meta with Some s -> s | None -> Durable

let join a b =
  {
    data = join_pstate a.data b.data;
    meta =
      Smap.merge
        (fun _ x y ->
          let x = Option.value x ~default:Durable
          and y = Option.value y ~default:Durable in
          match join_pstate x y with Durable -> None | s -> Some s)
        a.meta b.meta;
  }

let equal a b =
  a.data = b.data
  && Smap.equal ( = )
       (Smap.filter (fun _ s -> s <> Durable) a.meta)
       (Smap.filter (fun _ s -> s <> Durable) b.meta)

let write_meta t name = { t with meta = Smap.add name Dirty t.meta }

let writeback_meta t name =
  match get_meta t name with
  | Dirty -> { t with meta = Smap.add name Written_back t.meta }
  | _ -> t

let write_data t = { t with data = Dirty }

let writeback_data t =
  { t with data = (match t.data with Dirty -> Written_back | s -> s) }

let fence t =
  {
    data = (match t.data with Written_back -> Durable | s -> s);
    meta = Smap.filter_map (fun _ s ->
        match s with Written_back -> None | s -> Some s)
      t.meta;
  }
