(** Must-captured-cell dataflow over an instrumented function.

    Tracks, per program point, the set of stable cells ({!Sym.expr})
    whose old value is already captured by the scheme's per-store log
    in the current protection window — the fact that makes a second
    grant for the same cell redundant under the undo/redo/page-log
    disciplines ({!Hook_model.grant_elidable}).  Captures come from
    adjacent [grant hook; store] pairs and from {e hoisted} grant
    hooks whose unique consumer store this module resolves.  Joins
    intersect (a capture must hold on {e every} incoming path) and any
    protection-structure change resets the set.

    Both the linter ({!Transfer}) and the optimizer ([Ido_opt]) consume
    this analysis, which is what keeps them agreeing by construction:
    a grant the optimizer deletes is exactly one the linter excuses. *)

open Ido_ir
open Ido_runtime

type cls =
  | Adjacent  (** the next instruction is the consuming store *)
  | Hoisted of Sym.expr
      (** detached, but every path reaching a store consumes it for
          this one stable cell (loop-preheader hoist) *)
  | Orphan  (** detached with no resolvable consumer — an L202 *)

type t

val compute : Scheme.t -> Ir.func -> t

val classify : t -> Ir.pos -> cls
(** Classification of the grant hook at [pos]; [Orphan] for positions
    that hold no grant hook. *)

val captured_before : t -> Ir.pos -> Sym.expr list
(** Sorted cells captured on every path to just before [pos]. *)

val mem : t -> Ir.pos -> Sym.expr -> bool

val clears : Ir.instr -> bool
(** Does this instruction end the capture window (lock operations,
    durable/txn boundaries, commits, calls, writing intrinsics)? *)
