(** Persistence models of the runtime hooks.

    Each scheme's runtime executes a small fixed protocol per hook —
    stores to its log, write-backs, fences, and {e publish} writes that
    make logged state reachable to recovery (a JUSTDO [valid] flag, an
    UNDO ring's [head]/[total], iDO's [recovery_pc], a REDO commit
    status).  The linter interprets those protocols as sequences of
    {e micro-ops} over the {!Plattice} state, so the write-ahead
    discipline ("log durable before publish") is checked on every path
    of the instrumented program rather than only on explored schedules.

    The sequences mirror [Ido_vm.Interp]'s hook execution and the
    runtime log modules; a model that publishes before its prerequisite
    write-backs (or drops a fence) is exactly the class of bug the
    PR 1 crash matrix caught dynamically, and the named {!variants}
    re-seed those bugs for the mutation corpus. *)

open Ido_ir
open Ido_runtime

(** How durable a prerequisite must be at a publish/check point. *)
type need =
  | Initiated  (** write-back issued: at least {!Plattice.Written_back} *)
  | Fenced  (** a fence completed: {!Plattice.Durable} *)

type req = Meta of string | Data

type micro =
  | Write of string  (** store to a named metadata cell *)
  | Writeback of string
  | Writeback_data  (** flush all tracked in-FASE program stores *)
  | Fence
  | Publish of { target : string; needs : need; requires : req list }
      (** a store that makes state reachable to recovery; every
          requirement must already satisfy [needs] *)
  | Check of { needs : need; requires : req list; code : string; what : string }
      (** protocol obligation without a store (e.g. "FASE data durable
          at exit"), reported under [code] when violated *)
  | Grant_log  (** arm the per-store log token consumed by the next
                   tracked store *)

val model : ?variant:string -> Scheme.t -> Ir.hook -> micro list
(** The micro-op protocol the scheme's runtime performs for [hook].
    [variant] substitutes a named buggy protocol (see {!variants});
    unknown variant names leave the model unchanged. *)

val hook_allowed : Scheme.t -> Ir.hook -> bool
(** May this hook appear in output instrumented for [scheme]? *)

val log_grant_hook : Scheme.t -> Ir.hook option
(** The scheme's per-store log hook ([Hjustdo_store], [Hundo_store],
    [Hredo_store], [Hpage_log]); [None] for iDO (region logging) and
    Origin. *)

val tracks_stack_stores : Scheme.t -> bool
(** JUSTDO logs stack stores too (NVM-resident stacks). *)

val grant_elidable : Scheme.t -> bool
(** May a second capture of an already-captured cell be skipped in the
    same FASE/txn under this scheme's log discipline?  True for the
    undo/redo/page-log schemes (the first capture carries recovery);
    false for JUSTDO, whose every store hook re-arms the resumption
    tuple. *)

val grant_hoistable : Scheme.t -> bool
(** May the grant hook sit away from its store (e.g. hoisted to a loop
    preheader), armed until the next qualifying store consumes it? *)

val unlock_durable_cells : Scheme.t -> string list
(** Metadata cells that must be fence-durable before an in-FASE
    [Unlock] executes (the "single memory fence" contract: no two
    threads' lock records may ever claim the same lock). *)

val hook_name : Ir.hook -> string

val variants : (string * string) list
(** [(name, description)] of the buggy protocol variants, for the
    mutation corpus and [ido_check mutants]. *)
