(** Simulated byte-addressable nonvolatile memory behind a volatile
    write-back cache.

    The memory is an array of 8-byte words (one [int64] per word, so
    writes are atomic at 8-byte granularity, matching the paper's
    assumption in Sec. II-A).  Stores land in a volatile cache-line
    overlay (8 words = 64 bytes per line); they reach the persistence
    domain only when the line is explicitly written back ([clwb]) or
    evicted.  Eviction order is pseudo-random — the "caches can write
    data back in arbitrary order" hazard of Sec. I.

    A {e crash} discards the overlay: the post-crash contents are
    exactly the words that had persisted. *)

open Ido_util

type addr = int
(** Word address into persistent memory. *)

type t

val words_per_line : int
(** 8 words = 64-byte cache lines. *)

type counters = {
  mutable loads : int;
  mutable stores : int;
  mutable clwbs : int;  (** clwb instructions issued, including no-ops *)
  mutable writebacks : int;
      (** clwbs that actually initiated a write-back (line was dirty);
          evictions are counted separately in [evictions] *)
  mutable fences : int;
  mutable evictions : int;
}

val create : ?cache_lines:int -> rng:Rng.t -> int -> t
(** [create ~rng size] makes a persistent memory of [size] words,
    zero-initialised and fully persisted.  [cache_lines] bounds the
    number of distinct {e dirty} lines held in the volatile overlay
    before pseudo-random eviction begins (default 1024). *)

val size : t -> int
val counters : t -> counters

(** {1 Persist-event observation}

    Every action that can change (or is ordered with respect to) the
    persistence domain raises one event: a store into the overlay, an
    explicit write-back of a dirty line, a persist fence, or a random
    eviction.  The event fires {e before} the action takes effect, so a
    hook that raises an exception stops the machine in a state whose
    persistent image is exactly what a power failure at that instant
    would leave — the basis of the crash-point exploration engine
    ({!Ido_check}).  [poke] / [flush_all] / [crash] are simulator-side
    and never fire events. *)

type event =
  | Ev_store of addr  (** a store is about to enter the overlay *)
  | Ev_clwb of addr
      (** a dirty line is about to be written back ([clwb]s that hit a
          clean line are no-ops and emit nothing) *)
  | Ev_fence  (** a persist fence is about to complete *)
  | Ev_evict of addr
      (** a dirty line (base address given) is about to be evicted *)

val set_event_hook : t -> (event -> unit) option -> unit
(** Install (or remove) the observation hook.  At most one is active;
    the VM multiplexes it (see {!Ido_vm.Vm.set_event_hook}). *)

val load : t -> addr -> int64
(** Read through the overlay (newest value, persisted or not). *)

val store : t -> addr -> int64 -> unit
(** Write into the volatile overlay; may trigger an eviction. *)

val poke : t -> addr -> int64 -> unit
(** Write directly into the persistence domain, bypassing the cache
    (still updating any cached copy).  For initialising freshly
    allocated blocks and for simulator-side metadata; not part of the
    simulated machine's store path. *)

val clwb : t -> addr -> bool
(** Initiate write-back of the line containing [addr].  Returns whether
    a write-back actually occurred: [true] when the line was dirty (its
    contents enter the persistence domain and the waiting cost is
    charged by the next fence — see {!drain_pending}), [false] when the
    line was clean and the instruction was a no-op.  Callers that
    account for persistence cost ({!Ido_runtime.Pwriter}) must charge
    only on [true]. *)

val fence : t -> int
(** Persist fence: returns the number of write-backs initiated since
    the previous fence (for cost accounting) and resets the pending
    count.  After [fence], every preceding [clwb] is durable. *)

val pending_flushes : t -> int
(** Write-backs issued since the last fence. *)

val drain_pending : t -> unit
(** Forget pending write-backs without counting a fence (used when a
    crash lands between clwb and fence — the write-backs are already
    durable in this model; see DESIGN.md). *)

val persisted : t -> addr -> int64
(** The value currently in the persistence domain (what a crash would
    leave behind), ignoring any newer un-flushed store. *)

val is_dirty : t -> addr -> bool
(** True when the word's line holds an un-persisted update. *)

val dirty_lines : t -> int
(** Number of dirty lines currently in the overlay. *)

val dirty_linenos : t -> int list
(** The dirty lines' numbers in dirty-index order (first-dirtied first,
    except lines repositioned by the swap-with-last removal of an
    earlier write-back).  {!flush_all} persists in exactly this
    order. *)

val crash : t -> unit
(** Power failure: drop the overlay in place.  Subsequent loads see
    only persisted values.  Counters are preserved. *)

val snapshot_persistent : t -> int64 array
(** Copy of the persistence domain (for offline inspection in tests). *)

val flush_all : t -> unit
(** Write back every dirty line and fence (test/setup helper: makes
    the whole memory durable without charging anything).  Lines are
    persisted in dirty-index order — see {!dirty_linenos}. *)

val reset : rng:Rng.t -> t -> unit
(** Return the memory to its just-created state in place — empty
    overlay, zeroed persistence domain and counters, [rng] as the new
    generator — keeping the word array, overlay storage and event hook.
    Only the prefix of the persistence domain that was ever written is
    re-zeroed, so resetting a mostly-untouched memory is cheap.  The
    arena-reuse path of the crash explorer calls this between
    injections instead of allocating a fresh memory. *)
