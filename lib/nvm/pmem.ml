open Ido_util

type addr = int

let words_per_line = 8

type counters = {
  mutable loads : int;
  mutable stores : int;
  mutable clwbs : int;
  mutable writebacks : int;
  mutable fences : int;
  mutable evictions : int;
}

type event =
  | Ev_store of addr
  | Ev_clwb of addr
  | Ev_fence
  | Ev_evict of addr

(* A dirty line knows its own number and its slot in [dirty_index],
   so index maintenance on the write-back path touches no hashtable at
   all — only the vector. *)
type line = { lineno : int; words : int64 array; mutable slot : int }

type t = {
  nvm : int64 array;  (* the persistence domain *)
  overlay : (int, line) Hashtbl.t;  (* dirty lines: line -> 8 words *)
  dirty_index : line Vec.t;  (* the overlay's values, in insertion order *)
  cache_lines : int;
  rng : Rng.t;
  counters : counters;
  mutable pending : int;
  mutable hwm : int;  (* one past the highest word ever written to nvm *)
  mutable event_hook : (event -> unit) option;
}

let create ?(cache_lines = 1024) ~rng size =
  if size <= 0 then invalid_arg "Pmem.create: size must be positive";
  {
    nvm = Array.make size 0L;
    (* Pre-size past the eviction threshold so the overlay never
       rehashes mid-run (bounded to keep tiny memories cheap). *)
    overlay = Hashtbl.create (Stdlib.min (2 * cache_lines) 65536);
    dirty_index = Vec.create ();
    cache_lines;
    rng;
    counters =
      { loads = 0; stores = 0; clwbs = 0; writebacks = 0; fences = 0;
        evictions = 0 };
    pending = 0;
    hwm = 0;
    event_hook = None;
  }

let size t = Array.length t.nvm
let counters t = t.counters

let set_event_hook t f = t.event_hook <- f

(* The hook fires BEFORE the operation takes effect, so a hook that
   raises leaves the persistence domain exactly as a power failure at
   that instant would.  Simulator-side channels ([poke], [flush_all])
   never fire it. *)
let emit t ev = match t.event_hook with Some f -> f ev | None -> ()

let check t addr =
  if addr < 0 || addr >= Array.length t.nvm then
    invalid_arg (Printf.sprintf "Pmem: address %d out of bounds" addr)

let line_of addr = addr / words_per_line
let offset_of addr = addr mod words_per_line

let load t addr =
  check t addr;
  t.counters.loads <- t.counters.loads + 1;
  match Hashtbl.find_opt t.overlay (line_of addr) with
  | Some l -> l.words.(offset_of addr)
  | None -> t.nvm.(addr)

(* The dirty-line index mirrors the overlay's key set in a flat vector
   so a uniformly random dirty line is one [Rng.int] away; removal
   swaps the last slot in (order inside the vector is irrelevant — the
   victim choice is random anyway). *)
let index_add t (l : line) =
  l.slot <- Vec.length t.dirty_index;
  Vec.push t.dirty_index l

let index_remove t (l : line) =
  let last = Vec.pop t.dirty_index in
  if last != l then begin
    Vec.set t.dirty_index l.slot last;
    last.slot <- l.slot
  end

(* Copy a dirty line's words into the persistence domain. *)
let persist_words t (l : line) =
  let base = l.lineno * words_per_line in
  let limit = Stdlib.min words_per_line (Array.length t.nvm - base) in
  Array.blit l.words 0 t.nvm base limit;
  if base + limit > t.hwm then t.hwm <- base + limit

(* Copy a dirty line into the persistence domain and drop it from the
   overlay. *)
let write_back t (l : line) =
  persist_words t l;
  Hashtbl.remove t.overlay l.lineno;
  index_remove t l

let evict_random t =
  (* Pick a uniformly random dirty line in O(1) via the index.  This is
     the "arbitrary write-back order" of the paper. *)
  let n = Vec.length t.dirty_index in
  if n > 0 then begin
    let l = Vec.get t.dirty_index (Rng.int t.rng n) in
    emit t (Ev_evict (l.lineno * words_per_line));
    write_back t l;
    t.counters.evictions <- t.counters.evictions + 1
  end

let dirty_line t addr =
  let line = line_of addr in
  match Hashtbl.find_opt t.overlay line with
  | Some l -> l.words
  | None ->
      if Hashtbl.length t.overlay >= t.cache_lines then evict_random t;
      let base = line * words_per_line in
      let words = Array.make words_per_line 0L in
      let limit = Stdlib.min words_per_line (Array.length t.nvm - base) in
      Array.blit t.nvm base words 0 limit;
      let l = { lineno = line; words; slot = 0 } in
      Hashtbl.add t.overlay line l;
      index_add t l;
      words

let store t addr v =
  check t addr;
  emit t (Ev_store addr);
  t.counters.stores <- t.counters.stores + 1;
  let words = dirty_line t addr in
  words.(offset_of addr) <- v

let poke t addr v =
  check t addr;
  t.nvm.(addr) <- v;
  if addr + 1 > t.hwm then t.hwm <- addr + 1;
  match Hashtbl.find_opt t.overlay (line_of addr) with
  | Some l -> l.words.(offset_of addr) <- v
  | None -> ()

let clwb t addr =
  check t addr;
  t.counters.clwbs <- t.counters.clwbs + 1;
  match Hashtbl.find_opt t.overlay (line_of addr) with
  | Some l ->
      emit t (Ev_clwb addr);
      write_back t l;
      t.counters.writebacks <- t.counters.writebacks + 1;
      t.pending <- t.pending + 1;
      true
  | None -> false

let fence t =
  emit t Ev_fence;
  t.counters.fences <- t.counters.fences + 1;
  let pending = t.pending in
  t.pending <- 0;
  pending

let pending_flushes t = t.pending
let drain_pending t = t.pending <- 0

let persisted t addr =
  check t addr;
  t.nvm.(addr)

let is_dirty t addr =
  check t addr;
  Hashtbl.mem t.overlay (line_of addr)

let dirty_lines t = Hashtbl.length t.overlay

let dirty_linenos t =
  List.map (fun (l : line) -> l.lineno) (Vec.to_list t.dirty_index)

let crash t =
  Hashtbl.reset t.overlay;
  Vec.clear t.dirty_index;
  t.pending <- 0

let snapshot_persistent t = Array.copy t.nvm

(* Every line is written back, so skip per-line index maintenance:
   persist in dirty-index (insertion) order — deterministic, no
   Hashtbl iteration order involved, no intermediate list — then drop
   the overlay and the index wholesale. *)
let flush_all t =
  Vec.iter
    (fun (l : line) ->
      persist_words t l;
      Hashtbl.remove t.overlay l.lineno)
    t.dirty_index;
  Vec.truncate t.dirty_index;
  t.pending <- 0

(* Return the arena to its just-created state (same size, same
   cache-line budget, hook preserved) without reallocating the big
   word array: only the prefix that was ever written needs zeroing. *)
let reset ~rng t =
  Hashtbl.reset t.overlay;
  Vec.truncate t.dirty_index;
  if t.hwm > 0 then Array.fill t.nvm 0 t.hwm 0L;
  t.hwm <- 0;
  t.pending <- 0;
  Rng.assign ~into:t.rng rng;
  let c = t.counters in
  c.loads <- 0;
  c.stores <- 0;
  c.clwbs <- 0;
  c.writebacks <- 0;
  c.fences <- 0;
  c.evictions <- 0
