type kind =
  | Store of int
  | Flush of int
  | Fence of int
  | Evict of int
  | Log_append of { log : string; bytes : int }
  | Boundary of { region : int; elided : bool }
  | Lock_acquire of int
  | Lock_release of int
  | Fase_enter
  | Fase_exit
  | Crash
  | Recovery_step of { scheme : string; what : string }

type event = { seq : int; tid : int; fase : int; kind : kind }

type rollup = {
  mutable stores : int;
  mutable flushes : int;
  mutable fences : int;
  mutable evictions : int;
  mutable log_appends : int;
  mutable log_bytes : int;
  mutable boundaries : int;
  mutable elided_boundaries : int;
  mutable lock_acquires : int;
  mutable lock_releases : int;
  mutable fase_enters : int;
  mutable fase_exits : int;
  mutable crashes : int;
  mutable recovery_steps : int;
}

let rollup_zero () =
  {
    stores = 0;
    flushes = 0;
    fences = 0;
    evictions = 0;
    log_appends = 0;
    log_bytes = 0;
    boundaries = 0;
    elided_boundaries = 0;
    lock_acquires = 0;
    lock_releases = 0;
    fase_enters = 0;
    fase_exits = 0;
    crashes = 0;
    recovery_steps = 0;
  }

let rollup_equal a b =
  a.stores = b.stores && a.flushes = b.flushes && a.fences = b.fences
  && a.evictions = b.evictions && a.log_appends = b.log_appends
  && a.log_bytes = b.log_bytes && a.boundaries = b.boundaries
  && a.elided_boundaries = b.elided_boundaries
  && a.lock_acquires = b.lock_acquires && a.lock_releases = b.lock_releases
  && a.fase_enters = b.fase_enters && a.fase_exits = b.fase_exits
  && a.crashes = b.crashes && a.recovery_steps = b.recovery_steps

type t = {
  buffer : bool;
  events : event Ido_util.Vec.t;
  total : rollup;
  by_fase : (int, rollup) Hashtbl.t;
  mutable count : int;
}

let create ?(buffer = true) () =
  {
    buffer;
    events = Ido_util.Vec.create ();
    total = rollup_zero ();
    by_fase = Hashtbl.create 64;
    count = 0;
  }

let bump r = function
  | Store _ -> r.stores <- r.stores + 1
  | Flush _ -> r.flushes <- r.flushes + 1
  | Fence _ -> r.fences <- r.fences + 1
  | Evict _ -> r.evictions <- r.evictions + 1
  | Log_append { bytes; _ } ->
      r.log_appends <- r.log_appends + 1;
      r.log_bytes <- r.log_bytes + bytes
  | Boundary { elided; _ } ->
      r.boundaries <- r.boundaries + 1;
      if elided then r.elided_boundaries <- r.elided_boundaries + 1
  | Lock_acquire _ -> r.lock_acquires <- r.lock_acquires + 1
  | Lock_release _ -> r.lock_releases <- r.lock_releases + 1
  | Fase_enter -> r.fase_enters <- r.fase_enters + 1
  | Fase_exit -> r.fase_exits <- r.fase_exits + 1
  | Crash -> r.crashes <- r.crashes + 1
  | Recovery_step _ -> r.recovery_steps <- r.recovery_steps + 1

let emit t ~tid ~fase kind =
  let ev = { seq = t.count; tid; fase; kind } in
  t.count <- t.count + 1;
  bump t.total kind;
  if fase >= 0 then begin
    let r =
      match Hashtbl.find_opt t.by_fase fase with
      | Some r -> r
      | None ->
          let r = rollup_zero () in
          Hashtbl.add t.by_fase fase r;
          r
    in
    bump r kind
  end;
  if t.buffer then Ido_util.Vec.push t.events ev

let count t = t.count
let events t = Ido_util.Vec.to_list t.events
let total t = t.total

let per_fase t =
  Hashtbl.fold (fun fase r acc -> (fase, r) :: acc) t.by_fase []
  |> List.sort (fun (a, _) (b, _) -> compare a b)

let fases t = Hashtbl.length t.by_fase

let check t ~stores ~writebacks ~fences ~evictions =
  let r = t.total in
  let mismatch what seen counted =
    Error
      (Printf.sprintf "obs/%s mismatch: observed %d events, counters say %d"
         what seen counted)
  in
  if r.stores <> stores then mismatch "stores" r.stores stores
  else if r.flushes <> writebacks then mismatch "flushes" r.flushes writebacks
  else if r.fences <> fences then mismatch "fences" r.fences fences
  else if r.evictions <> evictions then mismatch "evictions" r.evictions evictions
  else Ok ()

(* ---------- NDJSON ---------- *)

let json_escape s =
  let buf = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let kind_label = function
  | Store _ -> "store"
  | Flush _ -> "flush"
  | Fence _ -> "fence"
  | Evict _ -> "evict"
  | Log_append _ -> "log_append"
  | Boundary _ -> "boundary"
  | Lock_acquire _ -> "lock_acquire"
  | Lock_release _ -> "lock_release"
  | Fase_enter -> "fase_enter"
  | Fase_exit -> "fase_exit"
  | Crash -> "crash"
  | Recovery_step _ -> "recovery_step"

(* ---------- Coverage export ----------

   A small deterministic feature code per event, consumed by the
   fuzzer's coverage digest ([Ido_fuzz.Cov]).  Word addresses are
   deliberately ignored — coverage should reflect behaviour shape
   (which protocol actions happened, in what order), not allocation
   layout; payloads are folded down to a coarse class. *)

let strhash s =
  (* FNV-1a, folded to a byte: stable across runs and processes. *)
  let h = ref 0x811c9dc5 in
  String.iter
    (fun c -> h := (!h lxor Char.code c) * 0x01000193 land 0x3FFFFFFF)
    s;
  !h land 0xff

let coverage_point ev =
  let point tag payload = (tag * 257) + (payload land 0xff) in
  match ev.kind with
  | Store _ -> point 1 0
  | Flush _ -> point 2 0
  | Fence pending ->
      point 3 (if pending = 0 then 0 else if pending = 1 then 1
               else if pending < 4 then 2 else 3)
  | Evict _ -> point 4 0
  | Log_append { log; _ } -> point 5 (strhash log)
  | Boundary { elided; _ } -> point 6 (if elided then 1 else 0)
  | Lock_acquire _ -> point 7 0
  | Lock_release _ -> point 8 0
  | Fase_enter -> point 9 0
  | Fase_exit -> point 10 0
  | Crash -> point 11 0
  | Recovery_step { scheme; what } ->
      point 12 (strhash scheme lxor strhash what)

let kind_payload = function
  | Store a | Flush a -> Printf.sprintf {|,"addr":%d|} a
  | Fence pending -> Printf.sprintf {|,"pending":%d|} pending
  | Evict a -> Printf.sprintf {|,"addr":%d|} a
  | Log_append { log; bytes } ->
      Printf.sprintf {|,"log":"%s","bytes":%d|} (json_escape log) bytes
  | Boundary { region; elided } ->
      Printf.sprintf {|,"region":%d,"elided":%b|} region elided
  | Lock_acquire l | Lock_release l -> Printf.sprintf {|,"lock":%d|} l
  | Fase_enter | Fase_exit | Crash -> ""
  | Recovery_step { scheme; what } ->
      Printf.sprintf {|,"scheme":"%s","what":"%s"|} (json_escape scheme)
        (json_escape what)

let event_to_ndjson ev =
  Printf.sprintf {|{"type":"event","seq":%d,"tid":%d,"fase":%d,"kind":"%s"%s}|}
    ev.seq ev.tid ev.fase (kind_label ev.kind) (kind_payload ev.kind)

let rollup_to_json r =
  Printf.sprintf
    ("{\"stores\":%d,\"flushes\":%d,\"fences\":%d,\"evictions\":%d,"
   ^^ "\"log_appends\":%d,\"log_bytes\":%d,\"boundaries\":%d,"
   ^^ "\"elided_boundaries\":%d,\"lock_acquires\":%d,\"lock_releases\":%d,"
   ^^ "\"fase_enters\":%d,\"fase_exits\":%d,\"crashes\":%d,"
   ^^ "\"recovery_steps\":%d}")
    r.stores r.flushes r.fences r.evictions r.log_appends r.log_bytes
    r.boundaries r.elided_boundaries r.lock_acquires r.lock_releases
    r.fase_enters r.fase_exits r.crashes r.recovery_steps

let pp_rollup ppf r =
  Format.fprintf ppf
    "@[<v>stores            %8d@,flushes           %8d@,fences            %8d@,\
     evictions         %8d@,log appends       %8d@,log bytes         %8d@,\
     boundaries        %8d@,  elided          %8d@,lock acquires     %8d@,\
     lock releases     %8d@,FASEs entered     %8d@,FASEs exited      %8d@,\
     crashes           %8d@,recovery steps    %8d@]"
    r.stores r.flushes r.fences r.evictions r.log_appends r.log_bytes
    r.boundaries r.elided_boundaries r.lock_acquires r.lock_releases
    r.fase_enters r.fase_exits r.crashes r.recovery_steps
