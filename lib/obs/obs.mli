(** Persist-event observability: structured tracing and metrics.

    A sink ({!t}) receives one typed {!event} per observable action of
    the simulated machine — persistence traffic ({!Store}, {!Flush},
    {!Fence}, {!Evict}), scheme runtime activity ({!Log_append},
    {!Boundary}, {!Lock_acquire}, {!Lock_release}, {!Fase_enter},
    {!Fase_exit}) and failure handling ({!Crash}, {!Recovery_step}).
    Every event carries the issuing thread id and the global FASE id it
    executed under ([-1] outside any FASE / for machine-level events).

    The sink keeps cheap rollups ({!total}, {!per_fase}) incrementally;
    full event buffering is optional ([~buffer]) so long profiling runs
    pay only the counter updates.  Rollups are designed to be checked
    against {!Ido_nvm.Pmem.counters} deltas with {!check}: the VM emits
    exactly one [Store]/[Flush]/[Fence]/[Evict] per counted pmem
    action, so any disagreement indicates lost or duplicated events.

    Emission is driven by {!Ido_vm.Vm.set_obs}; when no sink is
    installed the machine takes a [None]-check fast path and performs
    no work at all.

    Events serialise to NDJSON ({!event_to_ndjson}) — one object per
    line — which is the on-disk trace format of [ido_check trace] (see
    {!Ido_check.Trace}). *)

type kind =
  | Store of int  (** word address: a store entered the overlay *)
  | Flush of int
      (** word address: a [clwb] actually initiated a write-back (clwbs
          hitting clean lines are not persistence traffic and emit
          nothing) *)
  | Fence of int  (** persist fence; payload = write-backs drained *)
  | Evict of int  (** line base address evicted pseudo-randomly *)
  | Log_append of { log : string; bytes : int }
      (** a scheme runtime appended [bytes] of log payload to the named
          log ("undo", "redo", "justdo", "ido-lock", "intrf", "page") *)
  | Boundary of { region : int; elided : bool }
      (** an idempotent-region boundary executed; [elided] when the
          cross-boundary register set was empty so no persist happened *)
  | Lock_acquire of int  (** lock id *)
  | Lock_release of int  (** lock id *)
  | Fase_enter  (** thread entered the FASE given by the event's fase id *)
  | Fase_exit
  | Crash  (** power failure injected into the machine *)
  | Recovery_step of { scheme : string; what : string }
      (** one unit of post-crash recovery work (a resumed thread, an
          undone record, a replayed transaction, ...) *)

type event = { seq : int; tid : int; fase : int; kind : kind }
(** [seq] is the 0-based position in this sink's stream.  [tid] / [fase]
    are [-1] for machine-level events (crash, recovery, setup). *)

type rollup = {
  mutable stores : int;
  mutable flushes : int;
  mutable fences : int;
  mutable evictions : int;
  mutable log_appends : int;
  mutable log_bytes : int;
  mutable boundaries : int;
  mutable elided_boundaries : int;
  mutable lock_acquires : int;
  mutable lock_releases : int;
  mutable fase_enters : int;
  mutable fase_exits : int;
  mutable crashes : int;
  mutable recovery_steps : int;
}

val rollup_zero : unit -> rollup
val rollup_equal : rollup -> rollup -> bool

type t

val create : ?buffer:bool -> unit -> t
(** Fresh sink.  [buffer] (default [true]) keeps the full event list
    for {!events} / {!event_to_ndjson}; with [~buffer:false] only the
    rollups are maintained (constant memory, for profiling). *)

val emit : t -> tid:int -> fase:int -> kind -> unit
val count : t -> int
(** Events emitted so far (equals the next event's [seq]). *)

val events : t -> event list
(** Buffered events in emission order; [[]] when [~buffer:false]. *)

val total : t -> rollup
(** The aggregate rollup (shared mutable record — copy to snapshot). *)

val per_fase : t -> (int * rollup) list
(** Per-FASE rollups, sorted by global FASE id; only events with
    [fase >= 0] are attributed. *)

val fases : t -> int
(** Number of distinct FASE ids observed. *)

val check :
  t -> stores:int -> writebacks:int -> fences:int -> evictions:int ->
  (unit, string) result
(** Compare the rollup against externally-counted persistence traffic
    (deltas of {!Ido_nvm.Pmem.counters} over the observed window).
    [Error] describes the first mismatching counter. *)

(** {1 Coverage export} *)

val coverage_point : event -> int
(** A small deterministic feature code for the event — the digest
    export hook consumed by the fuzzer's coverage layer
    ([Ido_fuzz.Cov]): the kind's constructor class combined with a
    coarse payload class (log name, elided flag, bucketed fence drain,
    recovery-step class).  Word addresses are deliberately ignored so
    coverage reflects behaviour shape, not allocation layout.  Stable
    across runs and processes. *)

(** {1 NDJSON} *)

val json_escape : string -> string
(** Escape a string for inclusion inside a JSON string literal. *)

val kind_label : kind -> string
val event_to_ndjson : event -> string
(** One-line JSON object: [{"type":"event","seq":..,"tid":..,"fase":..,
    "kind":"store","addr":..}] with kind-specific payload fields. *)

val pp_rollup : Format.formatter -> rollup -> unit
val rollup_to_json : rollup -> string
(** JSON object literal (no trailing newline) with the rollup fields. *)
