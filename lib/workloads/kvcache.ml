open Ido_ir
open Wcommon

(* Descriptor: [0] lock word (global cache lock), [1] nbuckets,
   [2] count, [3..3+nbuckets-1] chain heads.

   Entry (a memcached "item"): [0] key, [1] next, [2] value,
   [3] flags, [4] access time, [5] size, [6..7] value payload.
   A set writes most of the item (8 stores on insert, 5 on update);
   a get performs the LRU-style access-time touch (1 store).  These
   are the multi-store FASEs that let iDO consolidate log operations
   (Sec. V-C reports ~30% multi-store regions for Memcached). *)

let entry_words = 8

(* Client-side request handling (parsing, response formatting) and
   in-lock item bookkeeping, modelled as fixed work.  These set the
   instrumentation-free baseline that Origin's curve and the paper's
   25-33%-of-Origin figure for iDO are measured against. *)
let client_work_ns = 60
let hash_work_ns = 15

let init buckets =
  let b, _ = Builder.create ~name:"init" ~nparams:0 in
  let desc =
    alloc_node b (3 + buckets)
      [ (1, Ir.Imm (Int64.of_int buckets)); (2, Ir.Imm 0L) ]
  in
  set_root b desc_root (Ir.Reg desc);
  Builder.ret b None;
  Builder.finish b

let chain_slot b desc k =
  (* Multiply-shift hash of the (16-byte) key. *)
  Builder.intr_void b Ir.Work [ Ir.Imm (Int64.of_int hash_work_ns) ];
  let h1 = Builder.bin b Ir.Mul (Ir.Reg k) (Ir.Imm 0x9E3779B9L) in
  let h2 = Builder.bin b Ir.Shr (Ir.Reg h1) (Ir.Imm 16L) in
  let h3 = Builder.bin b Ir.Xor (Ir.Reg h1) (Ir.Reg h2) in
  let nb = Builder.load b Ir.Persistent (Ir.Reg desc) 1 in
  let idx = Builder.bin b Ir.Rem (Ir.Reg h3) (Ir.Reg nb) in
  let idx = Builder.bin b Ir.And (Ir.Reg idx) (Ir.Imm 0xFFFFL) in
  let off = Builder.bin b Ir.Add (Ir.Reg idx) (Ir.Imm 3L) in
  Builder.bin b Ir.Add (Ir.Reg desc) (Ir.Reg off)

(* Scan the chain for key k (the 16-byte key comparison costs a couple
   of instructions per item); returns the entry address or 0. *)
let scan b slot k =
  let res = Builder.mov b (Ir.Imm 0L) in
  let e0 = Builder.load b Ir.Persistent (Ir.Reg slot) 0 in
  let cur = Builder.mov b (Ir.Reg e0) in
  Builder.while_ b
    ~cond:(fun () -> Ir.Reg (Builder.bin b Ir.Ne (Ir.Reg cur) (Ir.Imm 0L)))
    ~body:(fun () ->
      let key = Builder.load b Ir.Persistent (Ir.Reg cur) 0 in
      let hit = Builder.bin b Ir.Eq (Ir.Reg key) (Ir.Reg k) in
      Builder.if_ b (Ir.Reg hit)
        ~then_:(fun () ->
          Builder.assign b res (Ir.Reg cur);
          Builder.assign b cur (Ir.Imm 0L))
        ~else_:(fun () ->
          let nxt = Builder.load b Ir.Persistent (Ir.Reg cur) 1 in
          Builder.assign b cur (Ir.Reg nxt)));
  res

let write_item b entry ~k ~v ~full =
  if full then begin
    Builder.store b Ir.Persistent (Ir.Reg entry) 0 (Ir.Reg k);
    Builder.store b Ir.Persistent (Ir.Reg entry) 5 (Ir.Imm 24L)
  end;
  Builder.store b Ir.Persistent (Ir.Reg entry) 2 (Ir.Reg v);
  Builder.store b Ir.Persistent (Ir.Reg entry) 3 (Ir.Imm 1L);
  Builder.store b Ir.Persistent (Ir.Reg entry) 4 (Ir.Reg v);
  let p1 = Builder.bin b Ir.Add (Ir.Reg v) (Ir.Imm 1L) in
  let p2 = Builder.bin b Ir.Add (Ir.Reg v) (Ir.Imm 2L) in
  Builder.store b Ir.Persistent (Ir.Reg entry) 6 (Ir.Reg p1);
  Builder.store b Ir.Persistent (Ir.Reg entry) 7 (Ir.Reg p2)

let item_work_ns = 120

let set_fn () =
  let b, ps = Builder.create ~name:"kv_set" ~nparams:3 in
  let desc = List.nth ps 0 and k = List.nth ps 1 and v = List.nth ps 2 in
  let lockid = Builder.mov b (Ir.Reg desc) in
  Builder.lock b (Ir.Reg lockid);
  (* Item copy / LRU unlink / slab bookkeeping under the lock. *)
  Builder.intr_void b Ir.Work [ Ir.Imm (Int64.of_int item_work_ns) ];
  let slot = chain_slot b desc k in
  let hit = scan b slot k in
  let found = Builder.bin b Ir.Ne (Ir.Reg hit) (Ir.Imm 0L) in
  Builder.if_ b (Ir.Reg found)
    ~then_:(fun () -> write_item b hit ~k ~v ~full:false)
    ~else_:(fun () ->
      let head = Builder.load b Ir.Persistent (Ir.Reg slot) 0 in
      let c = Builder.load b Ir.Persistent (Ir.Reg desc) 2 in
      let c1 = Builder.bin b Ir.Add (Ir.Reg c) (Ir.Imm 1L) in
      let entry = alloc_node b entry_words [ (1, Ir.Reg head) ] in
      write_item b entry ~k ~v ~full:true;
      Builder.store b Ir.Persistent (Ir.Reg slot) 0 (Ir.Reg entry);
      Builder.store b Ir.Persistent (Ir.Reg desc) 2 (Ir.Reg c1));
  Builder.unlock b (Ir.Reg lockid);
  Builder.ret b None;
  Builder.finish b

let get_fn () =
  let b, ps = Builder.create ~name:"kv_get" ~nparams:2 in
  let desc = List.nth ps 0 and k = List.nth ps 1 in
  let lockid = Builder.mov b (Ir.Reg desc) in
  let res = Builder.mov b (Ir.Imm (-1L)) in
  Builder.lock b (Ir.Reg lockid);
  Builder.intr_void b Ir.Work [ Ir.Imm (Int64.of_int item_work_ns) ];
  let slot = chain_slot b desc k in
  let hit = scan b slot k in
  let found = Builder.bin b Ir.Ne (Ir.Reg hit) (Ir.Imm 0L) in
  Builder.if_ b (Ir.Reg found)
    ~then_:(fun () ->
      let v = Builder.load b Ir.Persistent (Ir.Reg hit) 2 in
      (* LRU bookkeeping: touch the access time. *)
      let t = Builder.bin b Ir.Add (Ir.Reg v) (Ir.Imm 1L) in
      Builder.store b Ir.Persistent (Ir.Reg hit) 4 (Ir.Reg t);
      Builder.assign b res (Ir.Reg v))
    ~else_:(fun () -> ());
  Builder.unlock b (Ir.Reg lockid);
  Builder.ret b (Some (Ir.Reg res));
  Builder.finish b

let worker ~key_range ~insert_pct =
  let b, ps = Builder.create ~name:"worker" ~nparams:1 in
  let nops = List.nth ps 0 in
  let desc = get_root b desc_root in
  for_loop b (Ir.Reg nops) (fun _ ->
      (* Request parsing / response formatting outside the FASE. *)
      Builder.intr_void b Ir.Work [ Ir.Imm (Int64.of_int client_work_ns) ];
      let dice = rand b 100 in
      let k = rand b key_range in
      let is_set =
        Builder.bin b Ir.Lt (Ir.Reg dice) (Ir.Imm (Int64.of_int insert_pct))
      in
      Builder.if_ b (Ir.Reg is_set)
        ~then_:(fun () ->
          let v = rand b 1_000_000 in
          Builder.call_void b "kv_set" [ Ir.Reg desc; Ir.Reg k; Ir.Reg v ])
        ~else_:(fun () ->
          ignore (Builder.call b "kv_get" [ Ir.Reg desc; Ir.Reg k ]));
      observe b (Ir.Imm 1L));
  Builder.ret b None;
  Builder.finish b

(* Keyed-request entry point (serving layer): dice < insert_pct is a
   set.  Same per-request client work as [worker]. *)
let request ~insert_pct =
  let b, ps = Builder.create ~name:"request" ~nparams:3 in
  let op = List.nth ps 0 and k = List.nth ps 1 and v = List.nth ps 2 in
  let desc = get_root b desc_root in
  Builder.intr_void b Ir.Work [ Ir.Imm (Int64.of_int client_work_ns) ];
  let is_set =
    Builder.bin b Ir.Lt (Ir.Reg op) (Ir.Imm (Int64.of_int insert_pct))
  in
  Builder.if_ b (Ir.Reg is_set)
    ~then_:(fun () ->
      Builder.call_void b "kv_set" [ Ir.Reg desc; Ir.Reg k; Ir.Reg v ])
    ~else_:(fun () -> ignore (Builder.call b "kv_get" [ Ir.Reg desc; Ir.Reg k ]));
  observe b (Ir.Imm 1L);
  Builder.ret b None;
  Builder.finish b

let check () =
  let b, _ = Builder.create ~name:"check" ~nparams:0 in
  let desc = get_root b desc_root in
  let nb = Builder.load b Ir.Persistent (Ir.Reg desc) 1 in
  let count = Builder.load b Ir.Persistent (Ir.Reg desc) 2 in
  let bound = Builder.bin b Ir.Add (Ir.Reg count) (Ir.Imm 1L) in
  let total = Builder.mov b (Ir.Imm 0L) in
  for_loop b (Ir.Reg nb) (fun i ->
      let off = Builder.bin b Ir.Add (Ir.Reg i) (Ir.Imm 3L) in
      let slot = Builder.bin b Ir.Add (Ir.Reg desc) (Ir.Reg off) in
      let e0 = Builder.load b Ir.Persistent (Ir.Reg slot) 0 in
      let cur = Builder.mov b (Ir.Reg e0) in
      Builder.while_ b
        ~cond:(fun () -> Ir.Reg (Builder.bin b Ir.Ne (Ir.Reg cur) (Ir.Imm 0L)))
        ~body:(fun () ->
          Builder.assign_bin b total Ir.Add (Ir.Reg total) (Ir.Imm 1L);
          let ok = Builder.bin b Ir.Le (Ir.Reg total) (Ir.Reg bound) in
          assert_nz b (Ir.Reg ok);
          (* Value payload coherence: words 6 and 7 are value+1 and
             value+2; a torn set shows up here. *)
          let v = Builder.load b Ir.Persistent (Ir.Reg cur) 2 in
          let p1 = Builder.load b Ir.Persistent (Ir.Reg cur) 6 in
          let p2 = Builder.load b Ir.Persistent (Ir.Reg cur) 7 in
          assert_eq b (Ir.Reg p1) (Ir.Reg (Builder.bin b Ir.Add (Ir.Reg v) (Ir.Imm 1L)));
          assert_eq b (Ir.Reg p2) (Ir.Reg (Builder.bin b Ir.Add (Ir.Reg v) (Ir.Imm 2L)));
          let nxt = Builder.load b Ir.Persistent (Ir.Reg cur) 1 in
          Builder.assign b cur (Ir.Reg nxt)));
  assert_eq b (Ir.Reg total) (Ir.Reg count);
  observe b (Ir.Reg total);
  Builder.ret b None;
  Builder.finish b

let program ?(buckets = 256) ?(key_range = 16384) ~insert_pct () =
  program
    [
      ("init", init buckets);
      ("kv_set", set_fn ());
      ("kv_get", get_fn ());
      ("worker", worker ~key_range ~insert_pct);
      ("request", request ~insert_pct);
      ("check", check ());
    ]
