open Ido_ir
open Wcommon

(* Descriptor: [0] head, [1] size; word 4 is the indirect lock holder.
   Node: [0] value, [1] next. *)

let init () =
  let b, _ = Builder.create ~name:"init" ~nparams:0 in
  let desc = alloc_node b 8 [ (0, Ir.Imm 0L); (1, Ir.Imm 0L) ] in
  set_root b desc_root (Ir.Reg desc);
  Builder.ret b None;
  Builder.finish b

let push () =
  let b, ps = Builder.create ~name:"stack_push" ~nparams:2 in
  let desc = List.nth ps 0 and v = List.nth ps 1 in
  (* Allocate and fill the node before entering the FASE: a crash
     before publication merely leaks the block. *)
  let node = alloc_node b 2 [ (0, Ir.Reg v) ] in
  let lockid = Builder.bin b Ir.Add (Ir.Reg desc) (Ir.Imm 4L) in
  Builder.lock b (Ir.Reg lockid);
  (* Loads scheduled before the stores, as an optimising compiler
     would: all write-after-read pairs then share one region cut. *)
  let h = Builder.load b Ir.Persistent (Ir.Reg desc) 0 in
  let sz = Builder.load b Ir.Persistent (Ir.Reg desc) 1 in
  let sz1 = Builder.bin b Ir.Add (Ir.Reg sz) (Ir.Imm 1L) in
  Builder.store b Ir.Persistent (Ir.Reg node) 1 (Ir.Reg h);
  Builder.store b Ir.Persistent (Ir.Reg desc) 0 (Ir.Reg node);
  Builder.store b Ir.Persistent (Ir.Reg desc) 1 (Ir.Reg sz1);
  Builder.unlock b (Ir.Reg lockid);
  Builder.ret b None;
  Builder.finish b

let pop () =
  let b, ps = Builder.create ~name:"stack_pop" ~nparams:1 in
  let desc = List.nth ps 0 in
  let lockid = Builder.bin b Ir.Add (Ir.Reg desc) (Ir.Imm 4L) in
  let res = Builder.mov b (Ir.Imm (-1L)) in
  Builder.lock b (Ir.Reg lockid);
  let h = Builder.load b Ir.Persistent (Ir.Reg desc) 0 in
  let nonempty = Builder.bin b Ir.Ne (Ir.Reg h) (Ir.Imm 0L) in
  Builder.if_ b (Ir.Reg nonempty)
    ~then_:(fun () ->
      let nxt = Builder.load b Ir.Persistent (Ir.Reg h) 1 in
      let sz = Builder.load b Ir.Persistent (Ir.Reg desc) 1 in
      let v = Builder.load b Ir.Persistent (Ir.Reg h) 0 in
      let sz1 = Builder.bin b Ir.Sub (Ir.Reg sz) (Ir.Imm 1L) in
      Builder.store b Ir.Persistent (Ir.Reg desc) 0 (Ir.Reg nxt);
      Builder.store b Ir.Persistent (Ir.Reg desc) 1 (Ir.Reg sz1);
      Builder.assign b res (Ir.Reg v))
    ~else_:(fun () -> ());
  Builder.unlock b (Ir.Reg lockid);
  Builder.ret b (Some (Ir.Reg res));
  Builder.finish b

let worker () =
  let b, ps = Builder.create ~name:"worker" ~nparams:1 in
  let nops = List.nth ps 0 in
  let desc = get_root b desc_root in
  for_loop b (Ir.Reg nops) (fun _ ->
      let op = rand b 2 in
      let v = rand b 1_000_000 in
      Builder.if_ b (Ir.Reg op)
        ~then_:(fun () -> Builder.call_void b "stack_push" [ Ir.Reg desc; Ir.Reg v ])
        ~else_:(fun () -> ignore (Builder.call b "stack_pop" [ Ir.Reg desc ]));
      observe b (Ir.Imm 1L));
  Builder.ret b None;
  Builder.finish b

(* Keyed-request entry point for the serving layer: one operation per
   call, dispatched on an externally drawn dice in [0, 100) (op < 50 is
   a push).  The key routes the request to a shard but the stack itself
   is keyless. *)
let request () =
  let b, ps = Builder.create ~name:"request" ~nparams:3 in
  let op = List.nth ps 0 and v = List.nth ps 2 in
  let desc = get_root b desc_root in
  let is_push = Builder.bin b Ir.Lt (Ir.Reg op) (Ir.Imm 50L) in
  Builder.if_ b (Ir.Reg is_push)
    ~then_:(fun () -> Builder.call_void b "stack_push" [ Ir.Reg desc; Ir.Reg v ])
    ~else_:(fun () -> ignore (Builder.call b "stack_pop" [ Ir.Reg desc ]));
  observe b (Ir.Imm 1L);
  Builder.ret b None;
  Builder.finish b

let check () =
  let b, _ = Builder.create ~name:"check" ~nparams:0 in
  let desc = get_root b desc_root in
  let size = Builder.load b Ir.Persistent (Ir.Reg desc) 1 in
  let bound = Builder.bin b Ir.Add (Ir.Reg size) (Ir.Imm 1L) in
  let cur = Builder.load b Ir.Persistent (Ir.Reg desc) 0 in
  let c = Builder.mov b (Ir.Reg cur) in
  let n = Builder.mov b (Ir.Imm 0L) in
  Builder.while_ b
    ~cond:(fun () -> Ir.Reg (Builder.bin b Ir.Ne (Ir.Reg c) (Ir.Imm 0L)))
    ~body:(fun () ->
      Builder.assign_bin b n Ir.Add (Ir.Reg n) (Ir.Imm 1L);
      (* A chain longer than size+1 means a cycle or a lost update. *)
      let ok = Builder.bin b Ir.Le (Ir.Reg n) (Ir.Reg bound) in
      assert_nz b (Ir.Reg ok);
      let nxt = Builder.load b Ir.Persistent (Ir.Reg c) 1 in
      Builder.assign b c (Ir.Reg nxt));
  assert_eq b (Ir.Reg n) (Ir.Reg size);
  observe b (Ir.Reg n);
  Builder.ret b None;
  Builder.finish b

let program () =
  program
    [
      ("init", init ());
      ("stack_push", push ());
      ("stack_pop", pop ());
      ("worker", worker ());
      ("request", request ());
      ("check", check ());
    ]
