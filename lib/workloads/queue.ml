open Ido_ir
open Wcommon

(* Descriptor: [0] head, [1] tail, [2] enqueues, [3] dequeues; word 5
   is the head-lock holder, word 6 the tail-lock holder.
   Node: [0] value, [1] next. *)

let init () =
  let b, _ = Builder.create ~name:"init" ~nparams:0 in
  let dummy = alloc_node b 2 [] in
  let desc =
    alloc_node b 8
      [ (0, Ir.Reg dummy); (1, Ir.Reg dummy); (2, Ir.Imm 0L); (3, Ir.Imm 0L) ]
  in
  set_root b desc_root (Ir.Reg desc);
  Builder.ret b None;
  Builder.finish b

let enq () =
  let b, ps = Builder.create ~name:"queue_enq" ~nparams:2 in
  let desc = List.nth ps 0 and v = List.nth ps 1 in
  let node = alloc_node b 2 [ (0, Ir.Reg v); (1, Ir.Imm 0L) ] in
  let tail_lock = Builder.bin b Ir.Add (Ir.Reg desc) (Ir.Imm 6L) in
  Builder.lock b (Ir.Reg tail_lock);
  (* Loads first, so every write-after-read pair shares one cut. *)
  let t = Builder.load b Ir.Persistent (Ir.Reg desc) 1 in
  let e = Builder.load b Ir.Persistent (Ir.Reg desc) 2 in
  let e1 = Builder.bin b Ir.Add (Ir.Reg e) (Ir.Imm 1L) in
  Builder.store b Ir.Persistent (Ir.Reg t) 1 (Ir.Reg node);
  Builder.store b Ir.Persistent (Ir.Reg desc) 1 (Ir.Reg node);
  Builder.store b Ir.Persistent (Ir.Reg desc) 2 (Ir.Reg e1);
  Builder.unlock b (Ir.Reg tail_lock);
  Builder.ret b None;
  Builder.finish b

let deq () =
  let b, ps = Builder.create ~name:"queue_deq" ~nparams:1 in
  let desc = List.nth ps 0 in
  let head_lock = Builder.bin b Ir.Add (Ir.Reg desc) (Ir.Imm 5L) in
  let res = Builder.mov b (Ir.Imm (-1L)) in
  Builder.lock b (Ir.Reg head_lock);
  let h = Builder.load b Ir.Persistent (Ir.Reg desc) 0 in
  let nxt = Builder.load b Ir.Persistent (Ir.Reg h) 1 in
  let nonempty = Builder.bin b Ir.Ne (Ir.Reg nxt) (Ir.Imm 0L) in
  Builder.if_ b (Ir.Reg nonempty)
    ~then_:(fun () ->
      let v = Builder.load b Ir.Persistent (Ir.Reg nxt) 0 in
      let d = Builder.load b Ir.Persistent (Ir.Reg desc) 3 in
      let d1 = Builder.bin b Ir.Add (Ir.Reg d) (Ir.Imm 1L) in
      (* The old dummy is abandoned; [nxt] becomes the new dummy. *)
      Builder.store b Ir.Persistent (Ir.Reg desc) 0 (Ir.Reg nxt);
      Builder.store b Ir.Persistent (Ir.Reg desc) 3 (Ir.Reg d1);
      Builder.assign b res (Ir.Reg v))
    ~else_:(fun () -> ());
  Builder.unlock b (Ir.Reg head_lock);
  Builder.ret b (Some (Ir.Reg res));
  Builder.finish b

let worker () =
  let b, ps = Builder.create ~name:"worker" ~nparams:1 in
  let nops = List.nth ps 0 in
  let desc = get_root b desc_root in
  for_loop b (Ir.Reg nops) (fun _ ->
      let op = rand b 2 in
      let v = rand b 1_000_000 in
      Builder.if_ b (Ir.Reg op)
        ~then_:(fun () -> Builder.call_void b "queue_enq" [ Ir.Reg desc; Ir.Reg v ])
        ~else_:(fun () -> ignore (Builder.call b "queue_deq" [ Ir.Reg desc ]));
      observe b (Ir.Imm 1L));
  Builder.ret b None;
  Builder.finish b

(* Keyed-request entry point (serving layer): op < 50 enqueues the
   value, otherwise dequeues; the key only routes. *)
let request () =
  let b, ps = Builder.create ~name:"request" ~nparams:3 in
  let op = List.nth ps 0 and v = List.nth ps 2 in
  let desc = get_root b desc_root in
  let is_enq = Builder.bin b Ir.Lt (Ir.Reg op) (Ir.Imm 50L) in
  Builder.if_ b (Ir.Reg is_enq)
    ~then_:(fun () -> Builder.call_void b "queue_enq" [ Ir.Reg desc; Ir.Reg v ])
    ~else_:(fun () -> ignore (Builder.call b "queue_deq" [ Ir.Reg desc ]));
  observe b (Ir.Imm 1L);
  Builder.ret b None;
  Builder.finish b

let check () =
  let b, _ = Builder.create ~name:"check" ~nparams:0 in
  let desc = get_root b desc_root in
  let enqs = Builder.load b Ir.Persistent (Ir.Reg desc) 2 in
  let deqs = Builder.load b Ir.Persistent (Ir.Reg desc) 3 in
  let expect = Builder.bin b Ir.Sub (Ir.Reg enqs) (Ir.Reg deqs) in
  let h = Builder.load b Ir.Persistent (Ir.Reg desc) 0 in
  let c = Builder.load b Ir.Persistent (Ir.Reg h) 1 in
  let cur = Builder.mov b (Ir.Reg c) in
  let n = Builder.mov b (Ir.Imm 0L) in
  let bound = Builder.bin b Ir.Add (Ir.Reg expect) (Ir.Imm 1L) in
  Builder.while_ b
    ~cond:(fun () -> Ir.Reg (Builder.bin b Ir.Ne (Ir.Reg cur) (Ir.Imm 0L)))
    ~body:(fun () ->
      Builder.assign_bin b n Ir.Add (Ir.Reg n) (Ir.Imm 1L);
      let ok = Builder.bin b Ir.Le (Ir.Reg n) (Ir.Reg bound) in
      assert_nz b (Ir.Reg ok);
      let nxt = Builder.load b Ir.Persistent (Ir.Reg cur) 1 in
      Builder.assign b cur (Ir.Reg nxt));
  assert_eq b (Ir.Reg n) (Ir.Reg expect);
  (* The tail pointer must be the last reachable node. *)
  observe b (Ir.Reg n);
  Builder.ret b None;
  Builder.finish b

let program () =
  program
    [
      ("init", init ());
      ("queue_enq", enq ());
      ("queue_deq", deq ());
      ("worker", worker ());
      ("request", request ());
      ("check", check ());
    ]
