(** First-class registry of the benchmark workloads.

    A workload bundles everything a driver needs: the IR program (built
    lazily, since construction walks the builder), the memory-image
    oracle that validates it after a crash, and the request profile the
    serving layer uses to synthesise keyed request streams.  The CLIs,
    the crash engine and the serving layer all resolve workloads here,
    so the stringly by-name plumbing survives only as {!named}.

    Every program follows the {!Wcommon} conventions: entry points
    [init] / [worker(nops)] / [request(op, key, value)] / [check].
    [request] performs exactly one operation, dispatched on the dice
    [op] drawn in [\[0, 100)] by the caller. *)

type request_profile = {
  key_arity : int;
      (** Number of key operands [request] consults: 0 for keyless
          structures (stack, queue, mlog), where the key only routes
          the request to a shard. *)
  key_range : int;  (** Request keys are drawn in [\[0, key_range)]. *)
  write_pct : int;
      (** Share of mutating operations under the request dice, in
          [\[0, 100\]] — documentation for reporting, not a knob. *)
}

type t = {
  name : string;
  program : Ido_ir.Ir.program Lazy.t;
  oracle : Oracle.impl;
  request : request_profile;
  tags : string list;
      (** Free-form classification: ["micro"]/["app"],
          ["keyed"]/["keyless"], source application. *)
}

val all : t list
(** The registry, in canonical order. *)

val names : string list
(** Derived from {!all}: ["stack"; "queue"; "olist"; "olistrm";
    "hmap"; "kvcache50"; "kvcache10"; "objstore"; "mlog"]. *)

val find : string -> t option

val get : string -> t
(** @raise Invalid_argument for an unknown name; the message lists the
    valid names. *)

val program : t -> Ido_ir.Ir.program
(** Force the lazily built IR program. *)

(** {1 Compatibility} *)

val named : string -> Ido_ir.Ir.program
(** [named n = program (get n)].
    @raise Invalid_argument for an unknown name. *)
