(* Pure reference models of the persistent structures, evaluated
   against a raw memory image.  No dependency on the VM: memory is
   abstracted as a load function so the crash engine can hand us the
   persistence domain directly. *)

type mem = { load : int -> int64; size : int }

type mode = Atomic | Prefix

exception Bad of string

let badf fmt = Format.kasprintf (fun s -> raise (Bad s)) fmt

(* Generous bound on any chain walk: a structure that grows past this
   under the bounded workloads we drive is corrupt (cycle or runaway),
   and bounding keeps the oracle total on arbitrary torn images. *)
let max_walk = 1 lsl 16

let word mem a =
  if a < 0 || a >= mem.size then badf "load @%d out of bounds" a;
  mem.load a

let iword mem a = Int64.to_int (word mem a)

(* A pointer word: must be null or a plausible heap address.  Pointer
   stores are 8-byte atomic, so even a torn (Origin) image only ever
   holds old-or-new pointer values — a wild one is corruption under
   every scheme. *)
let ptr mem a =
  let v = word mem a in
  let p = Int64.to_int v in
  if p < 0 || p >= mem.size then badf "wild pointer %Ld at @%d" v a;
  p

let nonnull what p = if p = 0 then badf "%s is null" what else p

(* ---------- stack ----------
   desc: [0] head, [1] size.  Node: [0] value, [1] next. *)

let stack_elems mem desc =
  let rec go acc n cur =
    if cur = 0 then List.rev acc
    else if n > max_walk then badf "stack chain exceeds %d nodes" max_walk
    else go (word mem cur :: acc) (n + 1) (ptr mem (cur + 1))
  in
  go [] 0 (ptr mem desc)

let check_stack ~mode mem desc =
  let elems = stack_elems mem desc in
  match mode with
  | Prefix -> ()
  | Atomic ->
      let size = word mem (desc + 1) in
      let n = List.length elems in
      if Int64.of_int n <> size then
        badf "stack size field %Ld but %d reachable nodes" size n

(* ---------- queue ----------
   desc: [0] head (dummy), [1] tail, [2] enqueues, [3] dequeues.
   Node: [0] value, [1] next.  Elements hang off the dummy's next;
   the tail pointer names the last reachable node (the dummy when
   empty). *)

let queue_elems mem desc =
  let dummy = nonnull "queue head" (ptr mem desc) in
  let rec go acc n last cur =
    if cur = 0 then (List.rev acc, last)
    else if n > max_walk then badf "queue chain exceeds %d nodes" max_walk
    else go (word mem cur :: acc) (n + 1) cur (ptr mem (cur + 1))
  in
  go [] 0 dummy (ptr mem (dummy + 1))

let check_queue ~mode mem desc =
  let elems, last = queue_elems mem desc in
  match mode with
  | Prefix ->
      (* The tail may lag or run ahead of the reachable chain in a
         torn image; only its well-formedness is checked (by ptr). *)
      ignore (nonnull "queue tail" (ptr mem (desc + 1)))
  | Atomic ->
      let enq = word mem (desc + 2) and deq = word mem (desc + 3) in
      if Int64.compare deq 0L < 0 || Int64.compare enq deq < 0 then
        badf "queue counters enq=%Ld deq=%Ld" enq deq;
      let expect = Int64.sub enq deq in
      let n = Int64.of_int (List.length elems) in
      if n <> expect then
        badf "queue has %Ld elements, counters say %Ld" n expect;
      let tail = nonnull "queue tail" (ptr mem (desc + 1)) in
      if tail <> last then
        badf "queue tail @%d is not the last reachable node @%d" tail last

(* ---------- olist / hmap buckets ----------
   Node: [0] key, [1] next, [2] lock word, [3] value; head sentinel
   key -1, tail sentinel key 2^40. *)

let olist_tail_key = Int64.shift_left 1L 40

(* Returns (key, value) pairs, excluding sentinels.  In a torn image
   the chain may end at null instead of the tail sentinel (an inserted
   node whose next field never persisted); Atomic mode insists on the
   sentinel and on strictly ascending keys. *)
let olist_elems ~mode mem head =
  let rec go acc n prev_key cur =
    if n > max_walk then badf "olist chain exceeds %d nodes" max_walk
    else if cur = 0 then (
      if mode = Atomic then badf "olist ends at null, not the tail sentinel";
      List.rev acc)
    else
      let key = word mem cur in
      if key = olist_tail_key then List.rev acc
      else (
        if mode = Atomic && Int64.compare key prev_key <= 0 then
          badf "olist keys not ascending: %Ld after %Ld" key prev_key;
        let v = word mem (cur + 3) in
        go ((key, v) :: acc) (n + 1) key (ptr mem (cur + 1)))
  in
  go [] 0 Int64.min_int (ptr mem (head + 1))

let check_olist ~mode mem head = ignore (olist_elems ~mode mem head)

(* ---------- hmap ----------
   desc: [0] nbuckets, [1+i] bucket head sentinel. *)

let hmap_buckets mem desc =
  let nb = iword mem desc in
  if nb <= 0 || nb > 1 lsl 20 then badf "hmap bucket count %d" nb;
  List.init nb (fun i -> nonnull "hmap bucket" (ptr mem (desc + 1 + i)))

let check_hmap ~mode mem desc =
  List.iter (check_olist ~mode mem) (hmap_buckets mem desc)

(* ---------- kvcache ----------
   desc: [0] lock, [1] nbuckets, [2] count, [3+i] chain heads.
   Entry: [0] key, [1] next, [2] value, [3] flags=1, [4] access time
   (value or value+1), [5] size=24, [6] value+1, [7] value+2. *)

(* Mirror of Kvcache.chain_slot: multiply-shift with the interpreter's
   operator semantics (Shr logical, Rem of a non-negative product). *)
let kv_bucket k nb =
  let h1 = Int64.mul k 0x9E3779B9L in
  let h2 = Int64.shift_right_logical h1 16 in
  let h3 = Int64.logxor h1 h2 in
  let idx = if nb = 0L then 0L else Int64.rem h3 nb in
  Int64.to_int (Int64.logand idx 0xFFFFL)

let kv_chain mem slot =
  let rec go acc n cur =
    if cur = 0 then List.rev acc
    else if n > max_walk then badf "kvcache chain exceeds %d entries" max_walk
    else go (cur :: acc) (n + 1) (ptr mem (cur + 1))
  in
  go [] 0 (ptr mem slot)

let check_kv_entry mem nb bucket e =
  let k = word mem e and v = word mem (e + 2) in
  if kv_bucket k nb <> bucket then
    badf "kvcache key %Ld filed in bucket %d" k bucket;
  if word mem (e + 3) <> 1L then badf "kvcache entry %d flags torn" e;
  if word mem (e + 5) <> 24L then badf "kvcache entry %d size torn" e;
  let at = word mem (e + 4) in
  if at <> v && at <> Int64.add v 1L then
    badf "kvcache entry %d access time %Ld vs value %Ld" e at v;
  if word mem (e + 6) <> Int64.add v 1L || word mem (e + 7) <> Int64.add v 2L
  then badf "kvcache entry %d payload torn (value %Ld)" e v

let check_kvcache ~mode mem desc =
  let nb = word mem (desc + 1) in
  let nbi = Int64.to_int nb in
  if nbi <= 0 || nbi > 1 lsl 20 then badf "kvcache bucket count %d" nbi;
  let total = ref 0 in
  for i = 0 to nbi - 1 do
    let chain = kv_chain mem (desc + 3 + i) in
    total := !total + List.length chain;
    if mode = Atomic then List.iter (check_kv_entry mem nb i) chain
  done;
  if mode = Atomic then begin
    let count = word mem (desc + 2) in
    if Int64.of_int !total <> count then
      badf "kvcache holds %d entries, count field says %Ld" !total count
  end

(* ---------- objstore ----------
   desc: [0] nbuckets, [1] count, [2+i] chain heads.
   Object: [0] key, [1] next, [2+j] = key + j for j < 8. *)

let obj_payload_words = 8

let check_object mem nb bucket e =
  let k = word mem e in
  if (if nb = 0L then 0L else Int64.rem k nb) <> Int64.of_int bucket then
    badf "objstore key %Ld filed in bucket %d" k bucket;
  for j = 0 to obj_payload_words - 1 do
    let w = word mem (e + 2 + j) in
    if w <> Int64.add k (Int64.of_int j) then
      badf "objstore object %Ld payload word %d torn (%Ld)" k j w
  done

let check_objstore ~mode mem desc =
  let nb = word mem desc in
  let nbi = Int64.to_int nb in
  if nbi <= 0 || nbi > 1 lsl 20 then badf "objstore bucket count %d" nbi;
  let total = ref 0 in
  for i = 0 to nbi - 1 do
    let chain = kv_chain mem (desc + 2 + i) in
    total := !total + List.length chain;
    if mode = Atomic then List.iter (check_object mem nb i) chain
  done;
  if mode = Atomic then begin
    let count = word mem (desc + 1) in
    if Int64.of_int !total <> count then
      badf "objstore holds %d objects, count field says %Ld" !total count
  end

(* ---------- mlog ----------
   desc: [0] capacity, [1] head, [2] tail, [3] lock, [4..] slots of
   4 words: [0] seq, [1] a, [2] 2a, [3] seq+a+2a. *)

let check_mlog ~mode mem desc =
  let cap = iword mem desc in
  if cap <= 0 || cap > 1 lsl 20 then badf "mlog capacity %d" cap;
  let h = word mem (desc + 1) and t = word mem (desc + 2) in
  match mode with
  | Prefix ->
      (* Cursors persist independently; a torn image may even show
         t > h.  Readability of the descriptor is all we insist on. *)
      ()
  | Atomic ->
      if Int64.compare t h > 0 then badf "mlog cursors t=%Ld > h=%Ld" t h;
      let live = Int64.sub h t in
      if Int64.compare live (Int64.of_int cap) > 0 then
        badf "mlog %Ld live records exceed capacity %d" live cap;
      let i = ref t in
      while Int64.compare !i h < 0 do
        let slot = desc + 4 + (Int64.to_int (Int64.rem !i (Int64.of_int cap)) * 4) in
        let seq = word mem slot
        and a = word mem (slot + 1)
        and b = word mem (slot + 2)
        and ck = word mem (slot + 3) in
        if seq <> !i then badf "mlog record %Ld has seq %Ld" !i seq;
        if b <> Int64.mul 2L a then badf "mlog record %Ld payload torn" !i;
        if ck <> Int64.add seq (Int64.add a b) then
          badf "mlog record %Ld fails checksum" !i;
        i := Int64.add !i 1L
      done

(* ---------- canonical renderings (for cross-scheme comparison) ---------- *)

let buf_i64s b l =
  List.iter (fun v -> Buffer.add_string b (Int64.to_string v); Buffer.add_char b ',') l

let render_stack b mem desc =
  Buffer.add_string b "stack:";
  buf_i64s b (stack_elems mem desc)

let render_queue b mem desc =
  let elems, _ = queue_elems mem desc in
  Buffer.add_string b
    (Printf.sprintf "queue:e%Ld,d%Ld:" (word mem (desc + 2))
       (word mem (desc + 3)));
  buf_i64s b elems

let render_olist b mem desc =
  Buffer.add_string b "olist:";
  List.iter
    (fun (k, v) -> Buffer.add_string b (Printf.sprintf "%Ld=%Ld," k v))
    (olist_elems ~mode:Atomic mem desc)

let render_hmap b mem desc =
  Buffer.add_string b "hmap:";
  List.iteri
    (fun i head ->
      Buffer.add_string b (Printf.sprintf "|%d:" i);
      List.iter
        (fun (k, v) -> Buffer.add_string b (Printf.sprintf "%Ld=%Ld," k v))
        (olist_elems ~mode:Atomic mem head))
    (hmap_buckets mem desc)

let render_kvcache b mem desc =
  let nb = iword mem (desc + 1) in
  Buffer.add_string b (Printf.sprintf "kvcache:c%Ld" (word mem (desc + 2)));
  for i = 0 to nb - 1 do
    Buffer.add_string b (Printf.sprintf "|%d:" i);
    List.iter
      (fun e ->
        Buffer.add_string b
          (Printf.sprintf "%Ld=%Ld," (word mem e) (word mem (e + 2))))
      (kv_chain mem (desc + 3 + i))
  done

let render_objstore b mem desc =
  let nb = iword mem desc in
  Buffer.add_string b (Printf.sprintf "objstore:c%Ld" (word mem (desc + 1)));
  for i = 0 to nb - 1 do
    Buffer.add_string b (Printf.sprintf "|%d:" i);
    List.iter
      (fun e -> Buffer.add_string b (Printf.sprintf "%Ld," (word mem e)))
      (kv_chain mem (desc + 2 + i))
  done

let render_mlog b mem desc =
  let cap = iword mem desc in
  let h = word mem (desc + 1) and t = word mem (desc + 2) in
  Buffer.add_string b (Printf.sprintf "mlog:h%Ld,t%Ld:" h t);
  let i = ref t in
  while Int64.compare !i h < 0 do
    let slot = desc + 4 + (Int64.to_int (Int64.rem !i (Int64.of_int cap)) * 4) in
    Buffer.add_string b (Printf.sprintf "%Ld," (word mem (slot + 1)));
    i := Int64.add !i 1L
  done

(* ---------- first-class oracle implementations ---------- *)

type impl = {
  check : mode:mode -> mem -> int -> unit;
  render : Buffer.t -> mem -> int -> unit;
}

let stack = { check = check_stack; render = render_stack }
let queue = { check = check_queue; render = render_queue }

let olist =
  { check = (fun ~mode mem d -> check_olist ~mode mem d); render = render_olist }

let hmap = { check = check_hmap; render = render_hmap }
let kvcache = { check = check_kvcache; render = render_kvcache }
let objstore = { check = check_objstore; render = render_objstore }
let mlog = { check = check_mlog; render = render_mlog }

let root_desc mem root =
  let d = Int64.to_int root in
  if d <= 0 || d >= mem.size then badf "root slot holds %Ld" root;
  d

let check impl ~mode ~root mem =
  match impl.check ~mode mem (root_desc mem root) with
  | () -> Ok ()
  | exception Bad msg -> Error msg

let render impl ~root mem =
  let b = Buffer.create 256 in
  (try impl.render b mem (root_desc mem root)
   with Bad msg -> Buffer.add_string b ("malformed:" ^ msg));
  Buffer.contents b

(* ---------- by-name compatibility dispatch ---------- *)

let of_name = function
  | "stack" -> Some stack
  | "queue" -> Some queue
  | "olist" | "olistrm" -> Some olist
  | "hmap" -> Some hmap
  | "kvcache50" | "kvcache10" -> Some kvcache
  | "objstore" -> Some objstore
  | "mlog" -> Some mlog
  | _ -> None

let named w =
  match of_name w with
  | Some impl -> impl
  | None -> invalid_arg ("Oracle: unknown workload " ^ w)

let known w = of_name w <> None
let validate ~workload ~mode ~root mem = check (named workload) ~mode ~root mem
let digest ~workload ~root mem = render (named workload) ~root mem
