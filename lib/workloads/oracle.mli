(** Pure reference models ("oracles") of the workload structures.

    Each workload in this directory maintains one persistent structure;
    the functions here re-derive that structure's invariants from a raw
    memory image, independently of the VM and of the workload's own
    [check] entry point.  The crash-point engine ([Ido_check]) calls
    [validate] on the persistence domain after every injected crash and
    recovery.

    Two strictness levels:

    - {b Atomic} — full structural integrity {e and} bookkeeping
      consistency (counters match reachable elements, payload checksums
      hold, hash-chain membership is correct).  This is what the
      instrumented schemes (iDO, Atlas, Mnemosyne, JUSTDO, NVML,
      NVThreads) guarantee after recovery from {e any} crash point.
    - {b Prefix} — only memory safety of the image: pointers are null
      or in-bounds and every chain walk terminates within a generous
      bound.  Torn, half-applied operations are accepted.  This is the
      honest bar for Origin, which persists nothing deliberately; its
      image after a crash is an arbitrary cache-eviction prefix of the
      run. *)

type mem = { load : int -> int64; size : int }
(** A read-only memory image.  [load] must be total on
    [\[0, size)]; the oracle never reads outside that interval. *)

type mode = Atomic | Prefix

val known : string -> bool
(** Whether a workload name (from {!Workload.names}) has an oracle.
    All nine do. *)

val validate :
  workload:string -> mode:mode -> root:int64 -> mem -> (unit, string) result
(** [validate ~workload ~mode ~root mem] checks the structure hanging
    off root-slot value [root] against the model.  Never raises and
    never loops: walks are bounded and all loads are bounds-checked.
    [Error msg] pinpoints the first violated invariant.
    @raise Invalid_argument on an unknown workload name. *)

val digest : workload:string -> root:int64 -> mem -> string
(** Canonical rendering of the structure's logical content (element
    sequences, counters) for cross-scheme differential comparison:
    two crash-free runs with the same op stream must digest equally
    under every scheme.  On a malformed image the digest starts with
    ["malformed:"] instead of raising. *)
