(** Pure reference models ("oracles") of the workload structures.

    Each workload in this directory maintains one persistent structure;
    the functions here re-derive that structure's invariants from a raw
    memory image, independently of the VM and of the workload's own
    [check] entry point.  The crash-point engine ([Ido_check]) calls
    [validate] on the persistence domain after every injected crash and
    recovery.

    Two strictness levels:

    - {b Atomic} — full structural integrity {e and} bookkeeping
      consistency (counters match reachable elements, payload checksums
      hold, hash-chain membership is correct).  This is what the
      instrumented schemes (iDO, Atlas, Mnemosyne, JUSTDO, NVML,
      NVThreads) guarantee after recovery from {e any} crash point.
    - {b Prefix} — only memory safety of the image: pointers are null
      or in-bounds and every chain walk terminates within a generous
      bound.  Torn, half-applied operations are accepted.  This is the
      honest bar for Origin, which persists nothing deliberately; its
      image after a crash is an arbitrary cache-eviction prefix of the
      run. *)

type mem = { load : int -> int64; size : int }
(** A read-only memory image.  [load] must be total on
    [\[0, size)]; the oracle never reads outside that interval. *)

type mode = Atomic | Prefix

exception Bad of string
(** Raised (internally) by the structure checkers on the first violated
    invariant.  The driver-facing entry points {!check} / {!render} /
    {!validate} / {!digest} catch it; it is exposed so custom impls can
    participate in the same protocol. *)

(** {1 First-class oracle implementations}

    One {!impl} per persistent structure.  The {!Workload.t} registry
    holds the impl for each workload, so drivers resolve an oracle by
    resolving the workload — the by-name dispatch below survives only
    as a compatibility layer. *)

type impl = {
  check : mode:mode -> mem -> int -> unit;
      (** [check ~mode mem desc] validates the structure at descriptor
          address [desc]; raises {!Bad} on the first violated
          invariant.  Bounded and total on arbitrary torn images. *)
  render : Buffer.t -> mem -> int -> unit;
      (** Append the canonical rendering of the structure's logical
          content (element sequences, counters) — the digest body used
          for cross-scheme differential comparison.  May raise
          {!Bad}. *)
}

val stack : impl
val queue : impl
val olist : impl  (** shared by [olist] and [olistrm] *)

val hmap : impl
val kvcache : impl  (** shared by [kvcache50] and [kvcache10] *)

val objstore : impl
val mlog : impl

val check : impl -> mode:mode -> root:int64 -> mem -> (unit, string) result
(** [check impl ~mode ~root mem] validates the structure hanging off
    root-slot value [root].  Never raises and never loops: walks are
    bounded and all loads are bounds-checked.  [Error msg] pinpoints
    the first violated invariant. *)

val render : impl -> root:int64 -> mem -> string
(** Canonical digest of the structure's logical content: two crash-free
    runs with the same op stream must digest equally under every
    scheme.  On a malformed image the digest starts with ["malformed:"]
    instead of raising. *)

(** {1 By-name dispatch (compatibility)} *)

val of_name : string -> impl option
(** The impl for a {!Workload.names} entry; [None] for unknown names.
    New code should resolve through the {!Workload} registry instead. *)

val known : string -> bool
(** Whether a workload name (from {!Workload.names}) has an oracle.
    All nine do. *)

val validate :
  workload:string -> mode:mode -> root:int64 -> mem -> (unit, string) result
(** By-name wrapper of {!check}.
    @raise Invalid_argument on an unknown workload name. *)

val digest : workload:string -> root:int64 -> mem -> string
(** By-name wrapper of {!render}.
    @raise Invalid_argument on an unknown workload name. *)
