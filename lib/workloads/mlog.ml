open Ido_ir
open Wcommon

(* Descriptor: [0] capacity, [1] head (monotonic write cursor),
   [2] tail (monotonic read cursor), [3] lock word, [4..] slots.
   Slot: [0] seq, [1] payload a, [2] payload b, [3] checksum. *)

let record_words = 4

let slot_addr b desc idx cap =
  let m = Builder.bin b Ir.Rem (Ir.Reg idx) (Ir.Reg cap) in
  let off = Builder.bin b Ir.Mul (Ir.Reg m) (Ir.Imm (Int64.of_int record_words)) in
  let off4 = Builder.bin b Ir.Add (Ir.Reg off) (Ir.Imm 4L) in
  Builder.bin b Ir.Add (Ir.Reg desc) (Ir.Reg off4)

let init capacity =
  let b, _ = Builder.create ~name:"init" ~nparams:0 in
  let desc =
    alloc_node b
      (4 + (capacity * record_words))
      [ (0, Ir.Imm (Int64.of_int capacity)); (1, Ir.Imm 0L); (2, Ir.Imm 0L) ]
  in
  set_root b desc_root (Ir.Reg desc);
  Builder.ret b None;
  Builder.finish b

(* Append one record; a full ring overwrites the oldest (both cursors
   advance), so the FASE updates up to 6 persistent words. *)
let append_fn () =
  let b, ps = Builder.create ~name:"mlog_append" ~nparams:2 in
  let desc = List.nth ps 0 and v = List.nth ps 1 in
  let lockid = Builder.bin b Ir.Add (Ir.Reg desc) (Ir.Imm 3L) in
  Builder.lock b (Ir.Reg lockid);
  let cap = Builder.load b Ir.Persistent (Ir.Reg desc) 0 in
  let h = Builder.load b Ir.Persistent (Ir.Reg desc) 1 in
  let t = Builder.load b Ir.Persistent (Ir.Reg desc) 2 in
  let live = Builder.bin b Ir.Sub (Ir.Reg h) (Ir.Reg t) in
  let full = Builder.bin b Ir.Ge (Ir.Reg live) (Ir.Reg cap) in
  let slot = slot_addr b desc h cap in
  let v2 = Builder.bin b Ir.Mul (Ir.Reg v) (Ir.Imm 2L) in
  let ck0 = Builder.bin b Ir.Add (Ir.Reg h) (Ir.Reg v) in
  let ck = Builder.bin b Ir.Add (Ir.Reg ck0) (Ir.Reg v2) in
  let h1 = Builder.bin b Ir.Add (Ir.Reg h) (Ir.Imm 1L) in
  let t1 = Builder.bin b Ir.Add (Ir.Reg t) (Ir.Imm 1L) in
  Builder.store b Ir.Persistent (Ir.Reg slot) 0 (Ir.Reg h);
  Builder.store b Ir.Persistent (Ir.Reg slot) 1 (Ir.Reg v);
  Builder.store b Ir.Persistent (Ir.Reg slot) 2 (Ir.Reg v2);
  Builder.store b Ir.Persistent (Ir.Reg slot) 3 (Ir.Reg ck);
  Builder.store b Ir.Persistent (Ir.Reg desc) 1 (Ir.Reg h1);
  Builder.if_ b (Ir.Reg full)
    ~then_:(fun () -> Builder.store b Ir.Persistent (Ir.Reg desc) 2 (Ir.Reg t1))
    ~else_:(fun () -> ());
  Builder.unlock b (Ir.Reg lockid);
  Builder.ret b None;
  Builder.finish b

let consume_fn () =
  let b, ps = Builder.create ~name:"mlog_consume" ~nparams:1 in
  let desc = List.nth ps 0 in
  let lockid = Builder.bin b Ir.Add (Ir.Reg desc) (Ir.Imm 3L) in
  let res = Builder.mov b (Ir.Imm (-1L)) in
  Builder.lock b (Ir.Reg lockid);
  let cap = Builder.load b Ir.Persistent (Ir.Reg desc) 0 in
  let h = Builder.load b Ir.Persistent (Ir.Reg desc) 1 in
  let t = Builder.load b Ir.Persistent (Ir.Reg desc) 2 in
  let nonempty = Builder.bin b Ir.Lt (Ir.Reg t) (Ir.Reg h) in
  Builder.if_ b (Ir.Reg nonempty)
    ~then_:(fun () ->
      let slot = slot_addr b desc t cap in
      let seq = Builder.load b Ir.Persistent (Ir.Reg slot) 0 in
      let a = Builder.load b Ir.Persistent (Ir.Reg slot) 1 in
      let b2 = Builder.load b Ir.Persistent (Ir.Reg slot) 2 in
      let ck = Builder.load b Ir.Persistent (Ir.Reg slot) 3 in
      (* A consumed record must checksum; a torn append can never be
         visible between the cursors. *)
      let s0 = Builder.bin b Ir.Add (Ir.Reg seq) (Ir.Reg a) in
      let s1 = Builder.bin b Ir.Add (Ir.Reg s0) (Ir.Reg b2) in
      assert_eq b (Ir.Reg s1) (Ir.Reg ck);
      let t1 = Builder.bin b Ir.Add (Ir.Reg t) (Ir.Imm 1L) in
      Builder.store b Ir.Persistent (Ir.Reg desc) 2 (Ir.Reg t1);
      Builder.assign b res (Ir.Reg a))
    ~else_:(fun () -> ());
  Builder.unlock b (Ir.Reg lockid);
  Builder.ret b (Some (Ir.Reg res));
  Builder.finish b

let worker () =
  let b, ps = Builder.create ~name:"worker" ~nparams:1 in
  let nops = List.nth ps 0 in
  let desc = get_root b desc_root in
  for_loop b (Ir.Reg nops) (fun _ ->
      let op = rand b 2 in
      Builder.if_ b (Ir.Reg op)
        ~then_:(fun () ->
          let v = rand b 1_000_000 in
          Builder.call_void b "mlog_append" [ Ir.Reg desc; Ir.Reg v ])
        ~else_:(fun () -> ignore (Builder.call b "mlog_consume" [ Ir.Reg desc ]));
      observe b (Ir.Imm 1L));
  Builder.ret b None;
  Builder.finish b

(* Keyed-request entry point (serving layer): op < 50 appends the
   value, otherwise consumes; the key only routes. *)
let request () =
  let b, ps = Builder.create ~name:"request" ~nparams:3 in
  let op = List.nth ps 0 and v = List.nth ps 2 in
  let desc = get_root b desc_root in
  let is_append = Builder.bin b Ir.Lt (Ir.Reg op) (Ir.Imm 50L) in
  Builder.if_ b (Ir.Reg is_append)
    ~then_:(fun () -> Builder.call_void b "mlog_append" [ Ir.Reg desc; Ir.Reg v ])
    ~else_:(fun () -> ignore (Builder.call b "mlog_consume" [ Ir.Reg desc ]));
  observe b (Ir.Imm 1L);
  Builder.ret b None;
  Builder.finish b

let check () =
  let b, _ = Builder.create ~name:"check" ~nparams:0 in
  let desc = get_root b desc_root in
  let cap = Builder.load b Ir.Persistent (Ir.Reg desc) 0 in
  let h = Builder.load b Ir.Persistent (Ir.Reg desc) 1 in
  let t = Builder.load b Ir.Persistent (Ir.Reg desc) 2 in
  let ordered = Builder.bin b Ir.Le (Ir.Reg t) (Ir.Reg h) in
  assert_nz b (Ir.Reg ordered);
  let live = Builder.bin b Ir.Sub (Ir.Reg h) (Ir.Reg t) in
  let bounded = Builder.bin b Ir.Le (Ir.Reg live) (Ir.Reg cap) in
  assert_nz b (Ir.Reg bounded);
  (* Every live record checksums and carries its own sequence number. *)
  let i = Builder.mov b (Ir.Reg t) in
  Builder.while_ b
    ~cond:(fun () -> Ir.Reg (Builder.bin b Ir.Lt (Ir.Reg i) (Ir.Reg h)))
    ~body:(fun () ->
      let slot = slot_addr b desc i cap in
      let seq = Builder.load b Ir.Persistent (Ir.Reg slot) 0 in
      assert_eq b (Ir.Reg seq) (Ir.Reg i);
      let a = Builder.load b Ir.Persistent (Ir.Reg slot) 1 in
      let b2 = Builder.load b Ir.Persistent (Ir.Reg slot) 2 in
      let ck = Builder.load b Ir.Persistent (Ir.Reg slot) 3 in
      let s0 = Builder.bin b Ir.Add (Ir.Reg seq) (Ir.Reg a) in
      let s1 = Builder.bin b Ir.Add (Ir.Reg s0) (Ir.Reg b2) in
      assert_eq b (Ir.Reg s1) (Ir.Reg ck);
      Builder.assign_bin b i Ir.Add (Ir.Reg i) (Ir.Imm 1L));
  observe b (Ir.Reg live);
  Builder.ret b None;
  Builder.finish b

let program ?(capacity = 64) () =
  program
    [
      ("init", init capacity);
      ("mlog_append", append_fn ());
      ("mlog_consume", consume_fn ());
      ("worker", worker ());
      ("request", request ());
      ("check", check ());
    ]
