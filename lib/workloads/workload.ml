type request_profile = { key_arity : int; key_range : int; write_pct : int }

type t = {
  name : string;
  program : Ido_ir.Ir.program Lazy.t;
  oracle : Oracle.impl;
  request : request_profile;
  tags : string list;
}

(* One entry per benchmark.  [key_arity] is the number of key operands
   the [request] entry point actually consults (0 for the keyless
   structures, where the key only routes); [write_pct] is the share of
   mutating operations under the request dice in [0, 100). *)
let all =
  [
    {
      name = "stack";
      program = lazy (Stack.program ());
      oracle = Oracle.stack;
      request = { key_arity = 0; key_range = 1024; write_pct = 50 };
      tags = [ "micro"; "keyless" ];
    };
    {
      name = "queue";
      program = lazy (Queue.program ());
      oracle = Oracle.queue;
      request = { key_arity = 0; key_range = 1024; write_pct = 50 };
      tags = [ "micro"; "keyless" ];
    };
    {
      name = "olist";
      program = lazy (Olist.program ());
      oracle = Oracle.olist;
      request = { key_arity = 1; key_range = 256; write_pct = 50 };
      tags = [ "micro"; "keyed" ];
    };
    {
      name = "olistrm";
      program = lazy (Olist.program ~remove_pct:20 ());
      oracle = Oracle.olist;
      (* 20% removes plus half of the remaining 80% are puts. *)
      request = { key_arity = 1; key_range = 256; write_pct = 60 };
      tags = [ "micro"; "keyed" ];
    };
    {
      name = "hmap";
      program = lazy (Hmap.program ());
      oracle = Oracle.hmap;
      request = { key_arity = 1; key_range = 2048; write_pct = 50 };
      tags = [ "micro"; "keyed" ];
    };
    {
      name = "kvcache50";
      program = lazy (Kvcache.program ~insert_pct:50 ());
      oracle = Oracle.kvcache;
      request = { key_arity = 1; key_range = 16384; write_pct = 50 };
      tags = [ "app"; "keyed"; "memcached" ];
    };
    {
      name = "kvcache10";
      program = lazy (Kvcache.program ~insert_pct:10 ());
      oracle = Oracle.kvcache;
      request = { key_arity = 1; key_range = 16384; write_pct = 10 };
      tags = [ "app"; "keyed"; "memcached" ];
    };
    {
      name = "objstore";
      program = lazy (Objstore.program ());
      oracle = Oracle.objstore;
      request = { key_arity = 1; key_range = 10_000; write_pct = 20 };
      tags = [ "app"; "keyed"; "redis" ];
    };
    {
      name = "mlog";
      program = lazy (Mlog.program ());
      oracle = Oracle.mlog;
      request = { key_arity = 0; key_range = 1024; write_pct = 50 };
      tags = [ "micro"; "keyless" ];
    };
  ]

let names = List.map (fun w -> w.name) all
let find name = List.find_opt (fun w -> w.name = name) all

let get name =
  match find name with
  | Some w -> w
  | None ->
      invalid_arg
        (Printf.sprintf "Workload.get: unknown workload %s (valid: %s)" name
           (String.concat ", " names))

(* Registry programs are shared lazies and callers run on domain
   pools; a concurrent [Lazy.force] from two domains raises
   [CamlinternalLazy.Undefined], so every force is serialised. *)
let force_mutex = Mutex.create ()

let program w =
  Mutex.lock force_mutex;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock force_mutex)
    (fun () -> Lazy.force w.program)

let named name = program (get name)
