open Ido_ir
open Wcommon

(* Node: [0] key, [1] next, [2] lock word (its own indirect holder),
   [3] value. *)

let tail_key = Int64.shift_left 1L 40

let lock_of b node = Builder.bin b Ir.Add (Ir.Reg node) (Ir.Imm 2L)

(* Hand-over-hand traversal: returns (prev, cur) registers, both
   locked, with cur.key >= k. *)
let traverse b ~head ~k =
  Builder.lock b (Ir.Reg (lock_of b head));
  let prev = Builder.mov b (Ir.Reg head) in
  let cur0 = Builder.load b Ir.Persistent (Ir.Reg prev) 1 in
  let cur = Builder.mov b (Ir.Reg cur0) in
  Builder.lock b (Ir.Reg (lock_of b cur));
  Builder.while_ b
    ~cond:(fun () ->
      let key = Builder.load b Ir.Persistent (Ir.Reg cur) 0 in
      Ir.Reg (Builder.bin b Ir.Lt (Ir.Reg key) (Ir.Reg k)))
    ~body:(fun () ->
      Builder.unlock b (Ir.Reg (lock_of b prev));
      Builder.assign b prev (Ir.Reg cur);
      let nxt = Builder.load b Ir.Persistent (Ir.Reg cur) 1 in
      Builder.assign b cur (Ir.Reg nxt);
      Builder.lock b (Ir.Reg (lock_of b cur)));
  (prev, cur)

let get_fn () =
  let b, ps = Builder.create ~name:"list_get" ~nparams:2 in
  let head = List.nth ps 0 and k = List.nth ps 1 in
  let prev, cur = traverse b ~head ~k in
  let res = Builder.mov b (Ir.Imm (-1L)) in
  let key = Builder.load b Ir.Persistent (Ir.Reg cur) 0 in
  let found = Builder.bin b Ir.Eq (Ir.Reg key) (Ir.Reg k) in
  Builder.if_ b (Ir.Reg found)
    ~then_:(fun () ->
      let v = Builder.load b Ir.Persistent (Ir.Reg cur) 3 in
      Builder.assign b res (Ir.Reg v))
    ~else_:(fun () -> ());
  Builder.unlock b (Ir.Reg (lock_of b prev));
  Builder.unlock b (Ir.Reg (lock_of b cur));
  Builder.ret b (Some (Ir.Reg res));
  Builder.finish b

let put_fn () =
  let b, ps = Builder.create ~name:"list_put" ~nparams:3 in
  let head = List.nth ps 0 and k = List.nth ps 1 and v = List.nth ps 2 in
  let prev, cur = traverse b ~head ~k in
  let key = Builder.load b Ir.Persistent (Ir.Reg cur) 0 in
  let found = Builder.bin b Ir.Eq (Ir.Reg key) (Ir.Reg k) in
  Builder.if_ b (Ir.Reg found)
    ~then_:(fun () -> Builder.store b Ir.Persistent (Ir.Reg cur) 3 (Ir.Reg v))
    ~else_:(fun () ->
      let node =
        alloc_node b 4
          [ (0, Ir.Reg k); (1, Ir.Reg cur); (3, Ir.Reg v) ]
      in
      Builder.store b Ir.Persistent (Ir.Reg prev) 1 (Ir.Reg node));
  Builder.unlock b (Ir.Reg (lock_of b prev));
  Builder.unlock b (Ir.Reg (lock_of b cur));
  Builder.ret b None;
  Builder.finish b

(* Single-threaded integrity walk: strictly ascending keys (which also
   rules out cycles) ending at the tail sentinel; returns the element
   count. *)
let count_fn () =
  let b, ps = Builder.create ~name:"list_count" ~nparams:1 in
  let head = List.nth ps 0 in
  let n = Builder.mov b (Ir.Imm 0L) in
  let prev_key = Builder.mov b (Ir.Imm (-1L)) in
  let c0 = Builder.load b Ir.Persistent (Ir.Reg head) 1 in
  let cur = Builder.mov b (Ir.Reg c0) in
  Builder.while_ b
    ~cond:(fun () ->
      let key = Builder.load b Ir.Persistent (Ir.Reg cur) 0 in
      Ir.Reg (Builder.bin b Ir.Ne (Ir.Reg key) (Ir.Imm tail_key)))
    ~body:(fun () ->
      let key = Builder.load b Ir.Persistent (Ir.Reg cur) 0 in
      let ascending = Builder.bin b Ir.Gt (Ir.Reg key) (Ir.Reg prev_key) in
      assert_nz b (Ir.Reg ascending);
      Builder.assign b prev_key (Ir.Reg key);
      Builder.assign_bin b n Ir.Add (Ir.Reg n) (Ir.Imm 1L);
      let nxt = Builder.load b Ir.Persistent (Ir.Reg cur) 1 in
      Builder.assign b cur (Ir.Reg nxt));
  Builder.ret b (Some (Ir.Reg n));
  Builder.finish b

(* Remove unlinks the node while holding both its predecessor's and
   its own lock.  The node itself leaks: nv_free inside a FASE would
   double-free on resumption (see Validate), and deferring frees is
   what real persistent allocators do. *)
let remove_fn () =
  let b, ps = Builder.create ~name:"list_remove" ~nparams:2 in
  let head = List.nth ps 0 and k = List.nth ps 1 in
  let prev, cur = traverse b ~head ~k in
  let res = Builder.mov b (Ir.Imm 0L) in
  let key = Builder.load b Ir.Persistent (Ir.Reg cur) 0 in
  let found = Builder.bin b Ir.Eq (Ir.Reg key) (Ir.Reg k) in
  Builder.if_ b (Ir.Reg found)
    ~then_:(fun () ->
      let nxt = Builder.load b Ir.Persistent (Ir.Reg cur) 1 in
      Builder.store b Ir.Persistent (Ir.Reg prev) 1 (Ir.Reg nxt);
      Builder.assign b res (Ir.Imm 1L))
    ~else_:(fun () -> ());
  Builder.unlock b (Ir.Reg (lock_of b prev));
  Builder.unlock b (Ir.Reg (lock_of b cur));
  Builder.ret b (Some (Ir.Reg res));
  Builder.finish b

let list_funcs () =
  [
    ("list_get", get_fn ());
    ("list_put", put_fn ());
    ("list_remove", remove_fn ());
    ("list_count", count_fn ());
  ]

let make_list b =
  let tail = alloc_node b 4 [ (0, Ir.Imm tail_key); (1, Ir.Imm 0L) ] in
  let head = alloc_node b 4 [ (0, Ir.Imm (-1L)); (1, Ir.Reg tail) ] in
  head

let init () =
  let b, _ = Builder.create ~name:"init" ~nparams:0 in
  let head = make_list b in
  set_root b desc_root (Ir.Reg head);
  Builder.ret b None;
  Builder.finish b

let worker key_range =
  let b, ps = Builder.create ~name:"worker" ~nparams:1 in
  let nops = List.nth ps 0 in
  let head = get_root b desc_root in
  for_loop b (Ir.Reg nops) (fun _ ->
      let op = rand b 2 in
      let k = rand b key_range in
      Builder.if_ b (Ir.Reg op)
        ~then_:(fun () ->
          let v = rand b 1_000_000 in
          Builder.call_void b "list_put" [ Ir.Reg head; Ir.Reg k; Ir.Reg v ])
        ~else_:(fun () ->
          ignore (Builder.call b "list_get" [ Ir.Reg head; Ir.Reg k ]));
      observe b (Ir.Imm 1L));
  Builder.ret b None;
  Builder.finish b

let check () =
  let b, _ = Builder.create ~name:"check" ~nparams:0 in
  let head = get_root b desc_root in
  let n = Builder.call b "list_count" [ Ir.Reg head ] in
  observe b (Ir.Reg n);
  Builder.ret b None;
  Builder.finish b

(* A worker that also removes: remove_pct% removals, the rest split
   between gets and puts.  Kept separate from [worker] so the paper's
   get/put microbenchmark is bit-identical with or without this
   extension. *)
let worker_with_removes ~key_range ~remove_pct =
  let b, ps = Builder.create ~name:"worker" ~nparams:1 in
  let nops = List.nth ps 0 in
  let head = get_root b desc_root in
  for_loop b (Ir.Reg nops) (fun _ ->
      let dice = rand b 100 in
      let k = rand b key_range in
      let is_remove =
        Builder.bin b Ir.Lt (Ir.Reg dice) (Ir.Imm (Int64.of_int remove_pct))
      in
      Builder.if_ b (Ir.Reg is_remove)
        ~then_:(fun () ->
          ignore (Builder.call b "list_remove" [ Ir.Reg head; Ir.Reg k ]))
        ~else_:(fun () ->
          let flip = Builder.bin b Ir.And (Ir.Reg dice) (Ir.Imm 1L) in
          Builder.if_ b (Ir.Reg flip)
            ~then_:(fun () ->
              let v = rand b 1_000_000 in
              Builder.call_void b "list_put" [ Ir.Reg head; Ir.Reg k; Ir.Reg v ])
            ~else_:(fun () ->
              ignore (Builder.call b "list_get" [ Ir.Reg head; Ir.Reg k ])));
      observe b (Ir.Imm 1L));
  Builder.ret b None;
  Builder.finish b

(* Keyed-request entry point (serving layer): same op mix as the
   matching worker, but with dice / key / value supplied by the caller
   instead of drawn inside the loop. *)
let request ~remove_pct () =
  let b, ps = Builder.create ~name:"request" ~nparams:3 in
  let op = List.nth ps 0 and k = List.nth ps 1 and v = List.nth ps 2 in
  let head = get_root b desc_root in
  (if remove_pct = 0 then (
     let is_put = Builder.bin b Ir.Lt (Ir.Reg op) (Ir.Imm 50L) in
     Builder.if_ b (Ir.Reg is_put)
       ~then_:(fun () ->
         Builder.call_void b "list_put" [ Ir.Reg head; Ir.Reg k; Ir.Reg v ])
       ~else_:(fun () ->
         ignore (Builder.call b "list_get" [ Ir.Reg head; Ir.Reg k ])))
   else
     let is_remove =
       Builder.bin b Ir.Lt (Ir.Reg op) (Ir.Imm (Int64.of_int remove_pct))
     in
     Builder.if_ b (Ir.Reg is_remove)
       ~then_:(fun () ->
         ignore (Builder.call b "list_remove" [ Ir.Reg head; Ir.Reg k ]))
       ~else_:(fun () ->
         let flip = Builder.bin b Ir.And (Ir.Reg op) (Ir.Imm 1L) in
         Builder.if_ b (Ir.Reg flip)
           ~then_:(fun () ->
             Builder.call_void b "list_put" [ Ir.Reg head; Ir.Reg k; Ir.Reg v ])
           ~else_:(fun () ->
             ignore (Builder.call b "list_get" [ Ir.Reg head; Ir.Reg k ]))));
  observe b (Ir.Imm 1L);
  Builder.ret b None;
  Builder.finish b

let program ?(key_range = 256) ?(remove_pct = 0) () =
  let worker =
    if remove_pct = 0 then worker key_range
    else worker_with_removes ~key_range ~remove_pct
  in
  program
    (list_funcs ()
    @ [
        ("init", init ());
        ("worker", worker);
        ("request", request ~remove_pct ());
        ("check", check ());
      ])
