open Ido_ir
open Wcommon

let payload_words = 8

(* Descriptor: [0] nbuckets, [1] count, [2..2+nbuckets-1] chain heads.
   Object: [0] key, [1] next, [2..9] payload (word j = key + j). *)

let chain_slot b desc k =
  let nb = Builder.load b Ir.Persistent (Ir.Reg desc) 0 in
  let idx = Builder.bin b Ir.Rem (Ir.Reg k) (Ir.Reg nb) in
  let off = Builder.bin b Ir.Add (Ir.Reg idx) (Ir.Imm 2L) in
  Builder.bin b Ir.Add (Ir.Reg desc) (Ir.Reg off)

let scan b slot k =
  let res = Builder.mov b (Ir.Imm 0L) in
  let e0 = Builder.load b Ir.Persistent (Ir.Reg slot) 0 in
  let cur = Builder.mov b (Ir.Reg e0) in
  Builder.while_ b
    ~cond:(fun () -> Ir.Reg (Builder.bin b Ir.Ne (Ir.Reg cur) (Ir.Imm 0L)))
    ~body:(fun () ->
      let key = Builder.load b Ir.Persistent (Ir.Reg cur) 0 in
      let hit = Builder.bin b Ir.Eq (Ir.Reg key) (Ir.Reg k) in
      Builder.if_ b (Ir.Reg hit)
        ~then_:(fun () ->
          Builder.assign b res (Ir.Reg cur);
          Builder.assign b cur (Ir.Imm 0L))
        ~else_:(fun () ->
          let nxt = Builder.load b Ir.Persistent (Ir.Reg cur) 1 in
          Builder.assign b cur (Ir.Reg nxt)));
  res

let write_payload b obj k =
  for j = 0 to payload_words - 1 do
    let v = Builder.bin b Ir.Add (Ir.Reg k) (Ir.Imm (Int64.of_int j)) in
    Builder.store b Ir.Persistent (Ir.Reg obj) (2 + j) (Ir.Reg v)
  done

(* obj_put is a programmer-delineated FASE (durable region): the chain
   update and the whole payload persist atomically. *)
let put_fn () =
  let b, ps = Builder.create ~name:"obj_put" ~nparams:2 in
  let desc = List.nth ps 0 and k = List.nth ps 1 in
  Builder.durable_begin b;
  (* Object encoding work inside the FASE (idempotent). *)
  Builder.intr_void b Ir.Work [ Ir.Imm 80L ];
  let slot = chain_slot b desc k in
  let hit = scan b slot k in
  let found = Builder.bin b Ir.Ne (Ir.Reg hit) (Ir.Imm 0L) in
  Builder.if_ b (Ir.Reg found)
    ~then_:(fun () -> write_payload b hit k)
    ~else_:(fun () ->
      let head = Builder.load b Ir.Persistent (Ir.Reg slot) 0 in
      let obj =
        alloc_node b (2 + payload_words) [ (0, Ir.Reg k); (1, Ir.Reg head) ]
      in
      write_payload b obj k;
      Builder.store b Ir.Persistent (Ir.Reg slot) 0 (Ir.Reg obj);
      let c = Builder.load b Ir.Persistent (Ir.Reg desc) 1 in
      let c1 = Builder.bin b Ir.Add (Ir.Reg c) (Ir.Imm 1L) in
      Builder.store b Ir.Persistent (Ir.Reg desc) 1 (Ir.Reg c1));
  Builder.durable_end b;
  Builder.ret b None;
  Builder.finish b

(* The read path performs no persistent writes, so it needs no durable
   region — under iDO it is effectively free (Sec. V-A's explanation
   of the shrinking gap on larger databases). *)
let get_fn () =
  let b, ps = Builder.create ~name:"obj_get" ~nparams:2 in
  let desc = List.nth ps 0 and k = List.nth ps 1 in
  let slot = chain_slot b desc k in
  let hit = scan b slot k in
  let res = Builder.mov b (Ir.Imm (-1L)) in
  let found = Builder.bin b Ir.Ne (Ir.Reg hit) (Ir.Imm 0L) in
  Builder.if_ b (Ir.Reg found)
    ~then_:(fun () ->
      let sum = Builder.mov b (Ir.Imm 0L) in
      for j = 0 to payload_words - 1 do
        let w = Builder.load b Ir.Persistent (Ir.Reg hit) (2 + j) in
        Builder.assign_bin b sum Ir.Add (Ir.Reg sum) (Ir.Reg w)
      done;
      (* Checksum: Σ (k + j) = 8k + 28.  A torn object traps here. *)
      let expect8k = Builder.bin b Ir.Mul (Ir.Reg k) (Ir.Imm 8L) in
      let expect = Builder.bin b Ir.Add (Ir.Reg expect8k) (Ir.Imm 28L) in
      assert_eq b (Ir.Reg sum) (Ir.Reg expect);
      Builder.assign b res (Ir.Reg sum))
    ~else_:(fun () -> ());
  Builder.ret b (Some (Ir.Reg res));
  Builder.finish b

let init buckets prefill =
  let b, _ = Builder.create ~name:"init" ~nparams:0 in
  let desc =
    alloc_node b (2 + buckets)
      [ (0, Ir.Imm (Int64.of_int buckets)); (1, Ir.Imm 0L) ]
  in
  set_root b desc_root (Ir.Reg desc);
  for_loop b (Ir.Imm (Int64.of_int prefill)) (fun i ->
      Builder.call_void b "obj_put" [ Ir.Reg desc; Ir.Reg i ]);
  Builder.ret b None;
  Builder.finish b

(* Power-law key skew: key = u²/range for uniform u gives
   P(key < x) = √(x/range), concentrating mass on small ranks. *)
let skewed_key b key_range =
  let u = rand b key_range in
  let sq = Builder.bin b Ir.Mul (Ir.Reg u) (Ir.Reg u) in
  Builder.bin b Ir.Div (Ir.Reg sq) (Ir.Imm (Int64.of_int key_range))

(* Command parsing, reply formatting and event-loop bookkeeping: the
   per-request work Redis performs outside any persistence path. *)
let client_work_ns = 150

let worker key_range =
  let b, ps = Builder.create ~name:"worker" ~nparams:1 in
  let nops = List.nth ps 0 in
  let desc = get_root b desc_root in
  for_loop b (Ir.Reg nops) (fun _ ->
      Builder.intr_void b Ir.Work [ Ir.Imm (Int64.of_int client_work_ns) ];
      let dice = rand b 100 in
      let k = skewed_key b key_range in
      let is_put = Builder.bin b Ir.Lt (Ir.Reg dice) (Ir.Imm 20L) in
      Builder.if_ b (Ir.Reg is_put)
        ~then_:(fun () -> Builder.call_void b "obj_put" [ Ir.Reg desc; Ir.Reg k ])
        ~else_:(fun () ->
          ignore (Builder.call b "obj_get" [ Ir.Reg desc; Ir.Reg k ]));
      observe b (Ir.Imm 1L));
  Builder.ret b None;
  Builder.finish b

(* Keyed-request entry point (serving layer): dice < 20 is a put, the
   worker's mix.  The caller supplies the (already skewed or uniform)
   key directly. *)
let request () =
  let b, ps = Builder.create ~name:"request" ~nparams:3 in
  let op = List.nth ps 0 and k = List.nth ps 1 in
  let desc = get_root b desc_root in
  Builder.intr_void b Ir.Work [ Ir.Imm (Int64.of_int client_work_ns) ];
  let is_put = Builder.bin b Ir.Lt (Ir.Reg op) (Ir.Imm 20L) in
  Builder.if_ b (Ir.Reg is_put)
    ~then_:(fun () -> Builder.call_void b "obj_put" [ Ir.Reg desc; Ir.Reg k ])
    ~else_:(fun () -> ignore (Builder.call b "obj_get" [ Ir.Reg desc; Ir.Reg k ]));
  observe b (Ir.Imm 1L);
  Builder.ret b None;
  Builder.finish b

let check () =
  let b, _ = Builder.create ~name:"check" ~nparams:0 in
  let desc = get_root b desc_root in
  let nb = Builder.load b Ir.Persistent (Ir.Reg desc) 0 in
  let count = Builder.load b Ir.Persistent (Ir.Reg desc) 1 in
  let bound = Builder.bin b Ir.Add (Ir.Reg count) (Ir.Imm 1L) in
  let total = Builder.mov b (Ir.Imm 0L) in
  for_loop b (Ir.Reg nb) (fun i ->
      let off = Builder.bin b Ir.Add (Ir.Reg i) (Ir.Imm 2L) in
      let slot = Builder.bin b Ir.Add (Ir.Reg desc) (Ir.Reg off) in
      let e0 = Builder.load b Ir.Persistent (Ir.Reg slot) 0 in
      let cur = Builder.mov b (Ir.Reg e0) in
      Builder.while_ b
        ~cond:(fun () -> Ir.Reg (Builder.bin b Ir.Ne (Ir.Reg cur) (Ir.Imm 0L)))
        ~body:(fun () ->
          Builder.assign_bin b total Ir.Add (Ir.Reg total) (Ir.Imm 1L);
          let ok = Builder.bin b Ir.Le (Ir.Reg total) (Ir.Reg bound) in
          assert_nz b (Ir.Reg ok);
          let key = Builder.load b Ir.Persistent (Ir.Reg cur) 0 in
          let sum = Builder.mov b (Ir.Imm 0L) in
          for j = 0 to payload_words - 1 do
            let w = Builder.load b Ir.Persistent (Ir.Reg cur) (2 + j) in
            Builder.assign_bin b sum Ir.Add (Ir.Reg sum) (Ir.Reg w)
          done;
          let e8k = Builder.bin b Ir.Mul (Ir.Reg key) (Ir.Imm 8L) in
          let expect = Builder.bin b Ir.Add (Ir.Reg e8k) (Ir.Imm 28L) in
          assert_eq b (Ir.Reg sum) (Ir.Reg expect);
          let nxt = Builder.load b Ir.Persistent (Ir.Reg cur) 1 in
          Builder.assign b cur (Ir.Reg nxt)));
  assert_eq b (Ir.Reg total) (Ir.Reg count);
  observe b (Ir.Reg total);
  Builder.ret b None;
  Builder.finish b

let program ?(buckets = 1024) ?(key_range = 10_000) ?prefill () =
  let prefill = match prefill with Some p -> p | None -> key_range / 10 in
  program
    [
      ("init", init buckets prefill);
      ("obj_put", put_fn ());
      ("obj_get", get_fn ());
      ("worker", worker key_range);
      ("request", request ());
      ("check", check ());
    ]
