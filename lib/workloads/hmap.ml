open Ido_ir
open Wcommon

(* Descriptor: [0] nbuckets, [1..nbuckets] head-sentinel addresses. *)

let init buckets =
  let b, _ = Builder.create ~name:"init" ~nparams:0 in
  let desc = alloc_node b (1 + buckets) [ (0, Ir.Imm (Int64.of_int buckets)) ] in
  for i = 0 to buckets - 1 do
    let head = Olist.make_list b in
    Builder.store b Ir.Persistent (Ir.Reg desc) (1 + i) (Ir.Reg head)
  done;
  set_root b desc_root (Ir.Reg desc);
  Builder.ret b None;
  Builder.finish b

(* Bucket selection happens outside the FASE; the FASE itself lives in
   the called list operation (single function, as required). *)
let bucket_head b desc k =
  let nb = Builder.load b Ir.Persistent (Ir.Reg desc) 0 in
  let idx = Builder.bin b Ir.Rem (Ir.Reg k) (Ir.Reg nb) in
  let slot = Builder.bin b Ir.Add (Ir.Reg desc) (Ir.Reg (Builder.bin b Ir.Add (Ir.Reg idx) (Ir.Imm 1L))) in
  Builder.load b Ir.Persistent (Ir.Reg slot) 0

let worker key_range =
  let b, ps = Builder.create ~name:"worker" ~nparams:1 in
  let nops = List.nth ps 0 in
  let desc = get_root b desc_root in
  for_loop b (Ir.Reg nops) (fun _ ->
      let op = rand b 2 in
      let k = rand b key_range in
      let head = bucket_head b desc k in
      Builder.if_ b (Ir.Reg op)
        ~then_:(fun () ->
          let v = rand b 1_000_000 in
          Builder.call_void b "list_put" [ Ir.Reg head; Ir.Reg k; Ir.Reg v ])
        ~else_:(fun () ->
          ignore (Builder.call b "list_get" [ Ir.Reg head; Ir.Reg k ]));
      observe b (Ir.Imm 1L));
  Builder.ret b None;
  Builder.finish b

(* Keyed-request entry point (serving layer): op < 50 is a put.
   Bucket selection stays outside the FASE, as in [worker]. *)
let request () =
  let b, ps = Builder.create ~name:"request" ~nparams:3 in
  let op = List.nth ps 0 and k = List.nth ps 1 and v = List.nth ps 2 in
  let desc = get_root b desc_root in
  let head = bucket_head b desc k in
  let is_put = Builder.bin b Ir.Lt (Ir.Reg op) (Ir.Imm 50L) in
  Builder.if_ b (Ir.Reg is_put)
    ~then_:(fun () ->
      Builder.call_void b "list_put" [ Ir.Reg head; Ir.Reg k; Ir.Reg v ])
    ~else_:(fun () ->
      ignore (Builder.call b "list_get" [ Ir.Reg head; Ir.Reg k ]));
  observe b (Ir.Imm 1L);
  Builder.ret b None;
  Builder.finish b

let check () =
  let b, _ = Builder.create ~name:"check" ~nparams:0 in
  let desc = get_root b desc_root in
  let nb = Builder.load b Ir.Persistent (Ir.Reg desc) 0 in
  let total = Builder.mov b (Ir.Imm 0L) in
  for_loop b (Ir.Reg nb) (fun i ->
      let slot = Builder.bin b Ir.Add (Ir.Reg desc) (Ir.Reg (Builder.bin b Ir.Add (Ir.Reg i) (Ir.Imm 1L))) in
      let head = Builder.load b Ir.Persistent (Ir.Reg slot) 0 in
      let n = Builder.call b "list_count" [ Ir.Reg head ] in
      Builder.assign_bin b total Ir.Add (Ir.Reg total) (Ir.Reg n));
  observe b (Ir.Reg total);
  Builder.ret b None;
  Builder.finish b

let program ?(buckets = 128) ?(key_range = 2048) () =
  program
    (Olist.list_funcs ()
    @ [
        ("init", init buckets);
        ("worker", worker key_range);
        ("request", request ());
        ("check", check ());
      ])
