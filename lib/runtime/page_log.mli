(** NVThreads-style page-granularity REDO logging.

    NVThreads gives each critical section copy-on-write copies of the
    pages it dirties (via OS page protection) and commits the copies
    at lock release.  Here the per-thread log holds those copies: the
    first write to a page inside a FASE copies the whole page into the
    log (the page-fault + copy expense); subsequent reads and writes
    inside the FASE are served from the copy; the master page is
    untouched until commit.

    Commit: persist the copies (one fence), persist the commit mark,
    apply the copies to the master pages, persist those, truncate.  A
    crash before the mark discards the FASE with the master pristine;
    after the mark, recovery replays the copies (idempotent).

    Pages are 64 words (512 B) so that page granularity stays visibly
    heavier than word-granular schemes without dwarfing the
    simulation. *)

open Ido_nvm
open Ido_region

val page_words : int

val entry_words : int
(** Words per page-set entry: page index + dirty bitmask + the copy. *)

val page_of : Pmem.addr -> int
(** Page index containing the word address. *)

val create : Pwriter.t -> Region.t -> tid:int -> cap_pages:int -> Pmem.addr

val rebind : Pwriter.t -> Pmem.addr -> tid:int -> unit
(** Recycle a finished thread's arena: rebind the owner tid, status
    back to idle, page set emptied, one write-back + fence.  Previous
    owner must be Done. *)

val begin_fase : Pwriter.t -> Pmem.addr -> seq:int -> unit

val find_page : Pmem.t -> Pmem.addr -> int -> int option
(** Entry index of an already-copied page in the current FASE. *)

val log_page : Pwriter.t -> Pmem.addr -> page:int -> int
(** Copy the page's current master contents into the log (first-touch
    cost: 64 loads + 64 stores, no fence needed — the master stays
    authoritative until commit).  Returns the entry index. *)

val copy_word_addr : Pmem.addr -> int -> off:int -> Pmem.addr
(** Address of word [off] of entry [i]'s copy — the FASE's read/write
    target for that page. *)

val mark_dirty : Pwriter.t -> Pmem.addr -> int -> off:int -> unit
(** Record that word [off] of entry [i] was written.  Commit applies
    only dirty words (NVThreads publishes diffs, so writers of
    distinct words on a shared page do not clobber each other). *)

val touched_pages : Pmem.t -> Pmem.addr -> int list

val commit : Pwriter.t -> Pmem.addr -> unit
(** The full commit protocol described above. *)

val status_committed : Pmem.t -> Pmem.addr -> bool
val active : Pmem.t -> Pmem.addr -> bool
(** A FASE was open (copies present, commit mark absent). *)

val apply : Pwriter.t -> Pmem.addr -> int
(** Replay the copies onto the master pages, persist, truncate;
    returns the number of pages applied (recovery of a committed but
    incompletely applied FASE). *)

val discard : Pwriter.t -> Pmem.addr -> unit
(** Drop an uncommitted FASE's copies (master was never touched). *)
