open Ido_nvm

let lock_slots = 16

(* Payload layout, relative to the node address. *)
let off_pc = 3
let off_bitmap = 4
let off_locks = 5
let off_nregs = off_locks + lock_slots
let off_intrf = off_nregs + 1

let create w region ~tid ~nregs =
  let node =
    Lognode.push w region ~kind:Lognode.kind_ido ~tid
      ~payload_words:(1 + 1 + lock_slots + 1 + nregs + 2)
  in
  Pwriter.store w (node + off_nregs) (Int64.of_int nregs);
  Pwriter.clwb w (node + off_nregs);
  Pwriter.fence w;
  node

(* Hand a finished thread's arena to a fresh thread: a Done owner left
   recovery_pc = 0 and an empty lock array, but both are re-cleared so
   the recycled node is clean by construction, not by trust. *)
let rebind w node ~tid =
  Lognode.store_tid w node ~tid;
  Pwriter.store w (node + off_pc) 0L;
  Pwriter.store w (node + off_bitmap) 0L;
  Pwriter.clwb_lines w [ node + 1; node + off_pc; node + off_bitmap ];
  Pwriter.fence w

(* recovery_pc and lock_array entries carry a boundary epoch in their
   high bits (one atomic 8-byte word each).  Recovery re-acquires only
   locks stamped with an epoch older than the pc's: locks taken after
   the last persisted boundary protect a region that performed no
   stores (else the boundary would have persisted), so resumption can
   safely re-acquire them in program order — preserving lock-ordering
   disciplines such as hand-over-hand. *)
let epoch_mask = 0xFFFFF
let pack ~epoch v = Int64.logor (Int64.shift_left (Int64.of_int (epoch land epoch_mask)) 40) (Int64.of_int v)
let unpack w = (Int64.to_int (Int64.logand w 0xFF_FFFF_FFFFL),
                Int64.to_int (Int64.shift_right_logical w 40))

let set_recovery_pc w node ~epoch pc =
  Pwriter.store w (node + off_pc) (if pc = 0 then 0L else pack ~epoch pc);
  Pwriter.clwb w (node + off_pc)

let recovery_pc pm node = fst (unpack (Pmem.load pm (node + off_pc)))
let recovery_epoch pm node = snd (unpack (Pmem.load pm (node + off_pc)))

let write_out_regs ?(coalesce = true) w node regs =
  List.iter (fun (r, v) -> Pwriter.store w (node + off_intrf + r) v) regs;
  if coalesce then
    Pwriter.clwb_lines w (List.map (fun (r, _) -> node + off_intrf + r) regs)
  else
    (* Ablation: one write-back per register, as a naive implementation
       without Sec. IV-B's persist coalescing would issue. *)
    List.iter (fun (r, _) -> Pwriter.clwb w (node + off_intrf + r)) regs

let read_reg pm node r = Pmem.load pm (node + off_intrf + r)

let read_all_regs pm node =
  let nregs = Int64.to_int (Pmem.load pm (node + off_nregs)) in
  Array.init nregs (fun r -> read_reg pm node r)

let bitmap pm node = Pmem.load pm (node + off_bitmap)

let record_acquire w node ~holder ~epoch =
  let pm = Pwriter.pmem w in
  let bits = bitmap pm node in
  let rec free_slot i =
    if i >= lock_slots then
      Lognode.overflow ~scheme:"ido" ~tid:(Lognode.tid pm node)
        ~log:"lock_array" ~capacity:lock_slots
    else if Int64.logand bits (Int64.shift_left 1L i) = 0L then i
    else free_slot (i + 1)
  in
  let slot = free_slot 0 in
  Pwriter.store w (node + off_locks + slot) (pack ~epoch holder);
  Pwriter.store w (node + off_bitmap)
    (Int64.logor bits (Int64.shift_left 1L slot));
  Pwriter.clwb_lines w [ node + off_locks + slot; node + off_bitmap ]

(* Tolerates an absent record: a resumed region may re-execute the
   release after the crash already cleared it (Sec. III-B's benign
   windows). *)
let record_release w node ~holder =
  let pm = Pwriter.pmem w in
  let bits = bitmap pm node in
  let rec find i =
    if i >= lock_slots then None
    else if
      Int64.logand bits (Int64.shift_left 1L i) <> 0L
      && fst (unpack (Pmem.load pm (node + off_locks + i))) = holder
    then Some i
    else find (i + 1)
  in
  match find 0 with
  | None -> ()
  | Some slot ->
      Pwriter.store w (node + off_locks + slot) 0L;
      Pwriter.store w (node + off_bitmap)
        (Int64.logand bits (Int64.lognot (Int64.shift_left 1L slot)));
      Pwriter.clwb_lines w [ node + off_locks + slot; node + off_bitmap ]

let held_locks pm node =
  let bits = bitmap pm node in
  let rec go i acc =
    if i >= lock_slots then List.rev acc
    else if Int64.logand bits (Int64.shift_left 1L i) <> 0L then
      go (i + 1) (unpack (Pmem.load pm (node + off_locks + i)) :: acc)
    else go (i + 1) acc
  in
  go 0 []

(* Simulator-side stack metadata.  Real iDO keeps the stack pointer in
   intRF; our interpreter frames carry base and sp separately, so they
   are stashed after intRF, written back without charging cost. *)
let sim_off pm node = off_intrf + Int64.to_int (Pmem.load pm (node + off_nregs))

let set_sim_stack pm node ~base ~sp =
  let o = node + sim_off pm node in
  Pmem.store pm o (Int64.of_int base);
  Pmem.store pm (o + 1) (Int64.of_int sp);
  ignore (Pmem.clwb pm o);
  ignore (Pmem.clwb pm (o + 1));
  Pmem.drain_pending pm

let sim_stack pm node =
  let o = node + sim_off pm node in
  (Int64.to_int (Pmem.load pm o), Int64.to_int (Pmem.load pm (o + 1)))
