open Ido_nvm

let page_words = 64

let page_of addr = addr / page_words

(* Entry: [page index][dirty-word bitmask][64-word copy].  Only words
   marked dirty are applied at commit — NVThreads commits diffs, so
   concurrent writers of distinct words on one page do not clobber
   each other. *)
let entry_words = 2 + page_words

(* Payload: [cap][status][count][fase_seq][entries...]
   status: 0 idle, 1 filling, 2 committed. *)
let off_cap = 3
let off_status = 4
let off_count = 5
let off_seq = 6
let off_buf = 7

let create w region ~tid ~cap_pages =
  let node =
    Lognode.push w region ~kind:Lognode.kind_page ~tid
      ~payload_words:(4 + (entry_words * cap_pages))
  in
  Pwriter.store w (node + off_cap) (Int64.of_int cap_pages);
  Pwriter.clwb w (node + off_cap);
  Pwriter.fence w;
  node

(* Hand a finished thread's arena to a fresh thread: idle status and an
   empty page set, so recovery neither applies nor discards the
   previous owner's copies under the new tid. *)
let rebind w node ~tid =
  Lognode.store_tid w node ~tid;
  Pwriter.store w (node + off_status) 0L;
  Pwriter.store w (node + off_count) 0L;
  Pwriter.clwb_lines w [ node + 1; node + off_status; node + off_count ];
  Pwriter.fence w

let count pm node = Int64.to_int (Pmem.load pm (node + off_count))

let begin_fase w node ~seq =
  Pwriter.store w (node + off_count) 0L;
  Pwriter.store w (node + off_seq) (Int64.of_int seq);
  Pwriter.store w (node + off_status) 1L;
  Pwriter.clwb w (node + off_status);
  Pwriter.fence w

let entry_base node i = node + off_buf + (i * entry_words)

let find_page pm node page =
  let c = count pm node in
  let rec go i =
    if i >= c then None
    else if Int64.to_int (Pmem.load pm (entry_base node i)) = page then Some i
    else go (i + 1)
  in
  go 0

let log_page w node ~page =
  let pm = Pwriter.pmem w in
  let c = count pm node in
  let cap = Int64.to_int (Pmem.load pm (node + off_cap)) in
  if c >= cap then
    Lognode.overflow ~scheme:"nvthreads" ~tid:(Lognode.tid pm node)
      ~log:"page_set" ~capacity:cap;
  let base = entry_base node c in
  Pwriter.store w base (Int64.of_int page);
  Pwriter.store w (base + 1) 0L;
  let page_base = page * page_words in
  let limit = min page_words (Pmem.size pm - page_base) in
  for i = 0 to limit - 1 do
    let v = Pwriter.load w (page_base + i) in
    Pwriter.store w (base + 2 + i) v
  done;
  Pwriter.store w (node + off_count) (Int64.of_int (c + 1));
  c

let copy_word_addr node i ~off = entry_base node i + 2 + off

let mark_dirty w node i ~off =
  let pm = Pwriter.pmem w in
  let base = entry_base node i in
  let mask = Pmem.load pm (base + 1) in
  Pwriter.store w (base + 1) (Int64.logor mask (Int64.shift_left 1L off))

let touched_pages pm node =
  List.init (count pm node) (fun i ->
      Int64.to_int (Pmem.load pm (entry_base node i)))

let persist_copies w node =
  let pm = Pwriter.pmem w in
  let c = count pm node in
  let addrs = ref [ node + off_count ] in
  for i = 0 to c - 1 do
    let base = entry_base node i in
    for j = 0 to entry_words - 1 do
      addrs := (base + j) :: !addrs
    done
  done;
  Pwriter.clwb_lines w !addrs;
  Pwriter.fence w

let set_status w node v ~fenced =
  Pwriter.store w (node + off_status) v;
  Pwriter.clwb w (node + off_status);
  if fenced then Pwriter.fence w

let status_committed pm node = Pmem.load pm (node + off_status) = 2L

let active pm node = Pmem.load pm (node + off_status) = 1L

let apply w node =
  let pm = Pwriter.pmem w in
  let c = count pm node in
  let master_lines = ref [] in
  for i = 0 to c - 1 do
    let base = entry_base node i in
    let page = Int64.to_int (Pmem.load pm base) in
    let mask = Pmem.load pm (base + 1) in
    let page_base = page * page_words in
    let limit = min page_words (Pmem.size pm - page_base) in
    for j = 0 to limit - 1 do
      if Int64.logand mask (Int64.shift_left 1L j) <> 0L then begin
        Pwriter.store w (page_base + j) (Pmem.load pm (base + 2 + j));
        master_lines := (page_base + j) :: !master_lines
      end
    done
  done;
  Pwriter.clwb_lines w !master_lines;
  Pwriter.fence w;
  set_status w node 0L ~fenced:true;
  c

let commit w node =
  persist_copies w node;
  set_status w node 2L ~fenced:true;
  ignore (apply w node)

let discard w node =
  Pwriter.store w (node + off_count) 0L;
  set_status w node 0L ~fenced:true
