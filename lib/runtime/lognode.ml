open Ido_nvm
open Ido_region

type overflow = { scheme : string; tid : int; log : string; capacity : int }

exception Log_overflow of overflow

let overflow ~scheme ~tid ~log ~capacity =
  raise (Log_overflow { scheme; tid; log; capacity })

let kind_ido = 1
let kind_justdo = 2
let kind_atlas = 3
let kind_redo = 4
let kind_nvml = 5
let kind_page = 6

let payload_base = 3

let push w region ~kind ~tid ~payload_words =
  let r = Region.alloc region (payload_base + payload_words) in
  let pm = Pwriter.pmem w in
  let head = Region.log_head region in
  Pwriter.store w r head;
  Pwriter.store w (r + 1) (Int64.of_int tid);
  Pwriter.store w (r + 2) (Int64.of_int kind);
  Pwriter.clwb w r;
  Pwriter.fence w;
  (* Region.set_log_head persists through the raw pmem; charge the
     writer for the equivalent store + flush + fence. *)
  Region.set_log_head region (Int64.of_int r);
  Pwriter.add_cost w
    ((Pwriter.latency w).Latency.mem
    + (Pwriter.latency w).Latency.clwb_issue
    + Latency.fence_cost (Pwriter.latency w) ~pending:1);
  ignore pm;
  r

(* Unflushed: rebind sequences in the scheme runtimes batch the tid
   store with their own state resets under one write-back + fence. *)
let store_tid w addr ~tid = Pwriter.store w (addr + 1) (Int64.of_int tid)

let next pm addr = Int64.to_int (Pmem.load pm addr)
let tid pm addr = Int64.to_int (Pmem.load pm (addr + 1))
let kind pm addr = Int64.to_int (Pmem.load pm (addr + 2))

let iter pm region f =
  let rec go a = if a <> 0 then begin f a; go (next pm a) end in
  go (Int64.to_int (Region.log_head region))

let find pm region ~tid:t =
  let found = ref None in
  iter pm region (fun a -> if !found = None && tid pm a = t then found := Some a);
  !found
