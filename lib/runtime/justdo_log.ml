open Ido_nvm

let lock_slots = Ido_log.lock_slots

let off_valid = 3
let off_pc = 4
let off_addr = 5
let off_val = 6
let off_bitmap = 7
let off_intent = 8
let off_locks = 9
let off_nregs = off_locks + lock_slots
let off_regs = off_nregs + 1

let create w region ~tid ~nregs =
  let node =
    Lognode.push w region ~kind:Lognode.kind_justdo ~tid
      ~payload_words:(6 + lock_slots + 1 + nregs + 2)
  in
  Pwriter.store w (node + off_nregs) (Int64.of_int nregs);
  Pwriter.clwb w (node + off_nregs);
  Pwriter.fence w;
  node

(* Hand a finished thread's arena to a fresh thread: disarm the
   resumption tuple and clear the lock machinery so recovery can never
   attribute the previous owner's state to the new tid. *)
let rebind w node ~tid =
  Lognode.store_tid w node ~tid;
  Pwriter.store w (node + off_valid) 0L;
  Pwriter.store w (node + off_bitmap) 0L;
  Pwriter.store w (node + off_intent) 0L;
  Pwriter.clwb_lines w
    [ node + 1; node + off_valid; node + off_bitmap; node + off_intent ];
  Pwriter.fence w

(* Arming must be crash-atomic together with the register/stack
   snapshot (see {!snapshot_regs}): real JUSTDO keeps every word of
   this resumption state permanently in NVM (the no-register-caching
   rule it pays for per instruction), so there is no instant at which
   recovery could observe a new pc with stale locals.  The simulator
   compresses that continuously-durable state into one update per
   store, so the update itself must not expose intermediate states:
   [arm] pokes the entry directly into the persistence domain
   (simulator-side, no events), and [log_store] then replays the same
   writes through the Pwriter so the machine still pays the log's
   store/write-back/fence costs. *)
let arm pm node ~pc ~addr ~value =
  Pmem.poke pm (node + off_pc) (Int64.of_int pc);
  Pmem.poke pm (node + off_addr) (Int64.of_int addr);
  Pmem.poke pm (node + off_val) value;
  Pmem.poke pm (node + off_valid) 1L

let log_store w node ~pc ~addr ~value =
  arm (Pwriter.pmem w) node ~pc ~addr ~value;
  Pwriter.store w (node + off_pc) (Int64.of_int pc);
  Pwriter.store w (node + off_addr) (Int64.of_int addr);
  Pwriter.store w (node + off_val) value;
  Pwriter.store w (node + off_valid) 1L;
  Pwriter.clwb_lines w [ node + off_valid; node + off_val ];
  Pwriter.fence w

let clear w node =
  Pwriter.store w (node + off_valid) 0L;
  Pwriter.clwb w (node + off_valid);
  Pwriter.fence w

let armed pm node = Pmem.load pm (node + off_valid) <> 0L

let entry pm node =
  ( Int64.to_int (Pmem.load pm (node + off_pc)),
    Int64.to_int (Pmem.load pm (node + off_addr)),
    Pmem.load pm (node + off_val) )

let bitmap pm node = Pmem.load pm (node + off_bitmap)

(* Two persist fences per lock operation: one for the intention log,
   one for the ownership record — the JUSTDO protocol that Sec. III-B
   improves upon. *)
let record_acquire w node ~holder =
  Pwriter.store w (node + off_intent) (Int64.of_int holder);
  Pwriter.clwb w (node + off_intent);
  Pwriter.fence w;
  let pm = Pwriter.pmem w in
  let bits = bitmap pm node in
  let rec free_slot i =
    if i >= lock_slots then
      Lognode.overflow ~scheme:"justdo" ~tid:(Lognode.tid pm node)
        ~log:"lock_array" ~capacity:lock_slots
    else if Int64.logand bits (Int64.shift_left 1L i) = 0L then i
    else free_slot (i + 1)
  in
  let slot = free_slot 0 in
  Pwriter.store w (node + off_locks + slot) (Int64.of_int holder);
  Pwriter.store w (node + off_bitmap)
    (Int64.logor bits (Int64.shift_left 1L slot));
  Pwriter.store w (node + off_intent) 0L;
  Pwriter.clwb_lines w
    [ node + off_locks + slot; node + off_bitmap; node + off_intent ];
  Pwriter.fence w

let record_release w node ~holder =
  Pwriter.store w (node + off_intent) (Int64.of_int (-holder));
  Pwriter.clwb w (node + off_intent);
  Pwriter.fence w;
  let pm = Pwriter.pmem w in
  let bits = bitmap pm node in
  let rec find i =
    if i >= lock_slots then None
    else if
      Int64.logand bits (Int64.shift_left 1L i) <> 0L
      && Pmem.load pm (node + off_locks + i) = Int64.of_int holder
    then Some i
    else find (i + 1)
  in
  (match find 0 with
  | None -> Pwriter.store w (node + off_intent) 0L
  | Some slot ->
      Pwriter.store w (node + off_locks + slot) 0L;
      Pwriter.store w (node + off_bitmap)
        (Int64.logand bits (Int64.lognot (Int64.shift_left 1L slot)));
      Pwriter.store w (node + off_intent) 0L);
  Pwriter.clwb_lines w [ node + off_locks; node + off_bitmap; node + off_intent ];
  Pwriter.fence w

let held_locks pm node =
  let bits = bitmap pm node in
  let rec go i acc =
    if i >= lock_slots then List.rev acc
    else if Int64.logand bits (Int64.shift_left 1L i) <> 0L then
      go (i + 1) (Int64.to_int (Pmem.load pm (node + off_locks + i)) :: acc)
    else go (i + 1) acc
  in
  go 0 []

let snapshot_regs pm node regs =
  (* Crash-proof and free of crash windows: real JUSTDO keeps this
     state memory-resident by construction, so the simulator writes it
     straight into the persistence domain without surfacing events. *)
  Array.iteri (fun r v -> Pmem.poke pm (node + off_regs + r) v) regs

let read_all_regs pm node =
  let nregs = Int64.to_int (Pmem.load pm (node + off_nregs)) in
  Array.init nregs (fun r -> Pmem.load pm (node + off_regs + r))

let sim_off pm node = off_regs + Int64.to_int (Pmem.load pm (node + off_nregs))

let set_sim_stack pm node ~base ~sp =
  (* Same crash-atomicity argument as {!snapshot_regs}. *)
  let o = node + sim_off pm node in
  Pmem.poke pm o (Int64.of_int base);
  Pmem.poke pm (o + 1) (Int64.of_int sp)

let sim_stack pm node =
  let o = node + sim_off pm node in
  (Int64.to_int (Pmem.load pm o), Int64.to_int (Pmem.load pm (o + 1)))
