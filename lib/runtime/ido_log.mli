(** The iDO per-thread log (Fig. 3): [recovery_pc], the coalesced
    register file image [intRF], and the [lock_array] of indirect lock
    holder addresses with its live bitmap.

    The primitives here perform stores and write-backs but never fence
    by themselves; the VM's boundary protocol (Sec. III-A) decides
    where the two persist fences of each boundary go. *)

open Ido_nvm
open Ido_region

val lock_slots : int
(** 16 concurrent locks per thread (ample for the benchmarks). *)

val create : Pwriter.t -> Region.t -> tid:int -> nregs:int -> Pmem.addr

val rebind : Pwriter.t -> Pmem.addr -> tid:int -> unit
(** Recycle a finished thread's arena for a fresh thread: rebind the
    owner tid and re-clear the recovery pc and lock array, one
    write-back + fence.  Caller must guarantee the previous owner is
    Done ({!Ido_vm.Vm.reap} recycles only at quiescent points). *)

val set_recovery_pc : Pwriter.t -> Pmem.addr -> epoch:int -> int -> unit
(** Store + write-back, {e no} fence (step 2 of the boundary).  The
    boundary epoch rides in the word's high bits (one atomic 8-byte
    write). *)

val recovery_pc : Pmem.t -> Pmem.addr -> int
val recovery_epoch : Pmem.t -> Pmem.addr -> int

val epoch_mask : int
(** Epochs are compared modulo this + 1; held locks are always within
    one FASE's boundary count of the pc's epoch, so equality modulo
    the mask is exact. *)

val write_out_regs :
  ?coalesce:bool -> Pwriter.t -> Pmem.addr -> (int * int64) list -> unit
(** Store each register into its fixed [intRF] slot and write back the
    covered cache lines once each (persist coalescing, Sec. IV-B; with
    [~coalesce:false], one write-back per register — the ablation).
    No fence. *)

val read_reg : Pmem.t -> Pmem.addr -> int -> int64
val read_all_regs : Pmem.t -> Pmem.addr -> int64 array

val record_acquire : Pwriter.t -> Pmem.addr -> holder:int -> epoch:int -> unit
(** Fill the first free [lock_array] slot with the epoch-stamped
    indirect holder address and set its live bit; write back.  No fence
    (the caller's single fence covers it, Sec. III-B). *)

val record_release : Pwriter.t -> Pmem.addr -> holder:int -> unit
(** Clear the slot holding [holder] and its live bit; write back. *)

val held_locks : Pmem.t -> Pmem.addr -> (int * int) list
(** Live [(holder, epoch)] pairs.  Recovery re-acquires a lock only
    when its epoch differs from the pc's: an equal stamp means the
    lock was taken after the last persisted boundary, protecting a
    store-free segment that resumption will simply re-execute. *)

val set_sim_stack : Pmem.t -> Pmem.addr -> base:int -> sp:int -> unit
(** Simulator-side stack metadata (real iDO logs the stack pointer in
    intRF); persisted without charging cost. *)

val sim_stack : Pmem.t -> Pmem.addr -> int * int
