(** JUSTDO logging (Izraelevitz et al., ASPLOS'16), re-implemented per
    the paper's description: immediately before each store inside a
    FASE, the thread persists [(pc, address, value)]; recovery performs
    the logged store and resumes at the following instruction, running
    each interrupted FASE to completion.

    Lock operations maintain a lock {e intention} log and a lock
    {e ownership} log, each requiring its own persist fence — the two
    fences per lock operation that iDO's indirect locking eliminates
    (Sec. III-B).

    As in the paper's own evaluation, the program stack lives in NVM,
    and FASE code may not cache values in registers; the VM charges
    the memory-operand penalty.  The register snapshot stored here is
    simulator-side restore data (memory-resident in real JUSTDO) and
    is written without cost. *)

open Ido_nvm
open Ido_region

val create : Pwriter.t -> Region.t -> tid:int -> nregs:int -> Pmem.addr

val rebind : Pwriter.t -> Pmem.addr -> tid:int -> unit
(** Recycle a finished thread's arena: rebind the owner tid, disarm
    the resumption tuple, clear lock array and intent word, one
    write-back + fence.  Previous owner must be Done. *)

val log_store :
  Pwriter.t -> Pmem.addr -> pc:int -> addr:Pmem.addr -> value:int64 -> unit
(** Persist the JUSTDO entry: stores + write-back + {e one} fence. *)

val clear : Pwriter.t -> Pmem.addr -> unit
(** FASE complete: invalidate the entry (persisted). *)

val armed : Pmem.t -> Pmem.addr -> bool
val entry : Pmem.t -> Pmem.addr -> int * Pmem.addr * int64
(** [(pc, addr, value)] of the armed entry. *)

val record_acquire : Pwriter.t -> Pmem.addr -> holder:int -> unit
(** Intention log + ownership log: two persist fences. *)

val record_release : Pwriter.t -> Pmem.addr -> holder:int -> unit

val held_locks : Pmem.t -> Pmem.addr -> int list

val snapshot_regs : Pmem.t -> Pmem.addr -> int64 array -> unit
(** Simulator-side: record the register file (no cost charged). *)

val read_all_regs : Pmem.t -> Pmem.addr -> int64 array

val set_sim_stack : Pmem.t -> Pmem.addr -> base:int -> sp:int -> unit
(** Simulator-side stack metadata, persisted without cost (the real
    system keeps this state memory-resident). *)

val sim_stack : Pmem.t -> Pmem.addr -> int * int
