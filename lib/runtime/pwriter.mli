(** Cost-accounting channel to persistent memory.

    Every runtime operation (log append, lock record, boundary persist)
    goes through a [Pwriter], which performs the accesses on the
    underlying {!Ido_nvm.Pmem} and accumulates their simulated cost
    under the machine's {!Ido_nvm.Latency} model.  Write-back pending
    counts are tracked per writer — i.e. per simulated hardware thread
    — so one thread's fence never pays for another's flushes. *)

open Ido_util
open Ido_nvm

type t

val create : Pmem.t -> Latency.t -> t

val pmem : t -> Pmem.t
val latency : t -> Latency.t

val load : t -> Pmem.addr -> int64
val store : t -> Pmem.addr -> int64 -> unit
val clwb : t -> Pmem.addr -> unit
(** Write back the line containing the address.  Issue cost and the
    pending count are charged only when the line was actually dirty —
    a clwb on a clean line is free (no write-back occurs). *)

val clwb_lines : t -> Pmem.addr list -> unit
(** Write back the distinct cache lines covering the given word
    addresses (persist coalescing, Sec. IV-B: one [clwb] per line). *)

val fence : t -> unit
(** Persist fence; cost depends on this writer's pending write-backs. *)

val persist_store : t -> Pmem.addr -> int64 -> unit
(** [store]; [clwb]; [fence] — the common "persist one word now". *)

val add_cost : t -> Timebase.ns -> unit
val take_cost : t -> Timebase.ns
(** Accumulated cost since the last [take_cost]; resets to zero. *)

val pending : t -> int
