open Ido_nvm

type status = Idle | Filling | Committed

let status_code = function Idle -> 0 | Filling -> 1 | Committed -> 2

let status_of_code = function
  | 0 -> Idle
  | 1 -> Filling
  | 2 -> Committed
  | c -> failwith (Printf.sprintf "Redo_log: bad status %d" c)

let off_cap = 3
let off_status = 4
let off_count = 5
let off_commits = 6
let off_buf = 7

let create w region ~tid ~cap_entries =
  let node =
    Lognode.push w region ~kind:Lognode.kind_redo ~tid
      ~payload_words:(4 + (2 * cap_entries))
  in
  Pwriter.store w (node + off_cap) (Int64.of_int cap_entries);
  Pwriter.clwb w (node + off_cap);
  Pwriter.fence w;
  node

(* Hand a finished thread's arena to a fresh thread: back to Idle with
   an empty write set, so recovery can neither replay nor discard the
   previous owner's entries under the new tid. *)
let rebind w node ~tid =
  Lognode.store_tid w node ~tid;
  Pwriter.store w (node + off_status) 0L;
  Pwriter.store w (node + off_count) 0L;
  Pwriter.clwb_lines w [ node + 1; node + off_status; node + off_count ];
  Pwriter.fence w

let count pm node = Int64.to_int (Pmem.load pm (node + off_count))

let begin_txn w node =
  Pwriter.store w (node + off_count) 0L;
  Pwriter.store w (node + off_status) 1L

let append w node ~addr ~value =
  let pm = Pwriter.pmem w in
  let c = count pm node in
  let cap = Int64.to_int (Pmem.load pm (node + off_cap)) in
  if c >= cap then
    Lognode.overflow ~scheme:"mnemosyne" ~tid:(Lognode.tid pm node)
      ~log:"write_set" ~capacity:cap;
  let base = node + off_buf + (2 * c) in
  Pwriter.store w base (Int64.of_int addr);
  Pwriter.store w (base + 1) value;
  Pwriter.store w (node + off_count) (Int64.of_int (c + 1))

let entry pm node i =
  let base = node + off_buf + (2 * i) in
  (Int64.to_int (Pmem.load pm base), Pmem.load pm (base + 1))

let persist_entries w node =
  let pm = Pwriter.pmem w in
  let c = count pm node in
  let addrs =
    List.concat
      (List.init c (fun i -> [ node + off_buf + (2 * i); node + off_buf + (2 * i) + 1 ]))
  in
  Pwriter.clwb_lines w ((node + off_count) :: addrs)

let set_status w node st =
  Pwriter.store w (node + off_status) (Int64.of_int (status_code st))

let persist_status w node st =
  set_status w node st;
  if st = Committed then begin
    let pm = Pwriter.pmem w in
    Pwriter.store w (node + off_commits)
      (Int64.add (Pmem.load pm (node + off_commits)) 1L)
  end;
  Pwriter.clwb w (node + off_status);
  Pwriter.fence w

let status pm node = status_of_code (Int64.to_int (Pmem.load pm (node + off_status)))

let apply w node =
  let pm = Pwriter.pmem w in
  let c = count pm node in
  for i = 0 to c - 1 do
    let addr, value = entry pm node i in
    Pwriter.store w addr value
  done

let total_commits pm node = Int64.to_int (Pmem.load pm (node + off_commits))
