(** UNDO logging with happens-before records — the Atlas runtime
    (Chakrabarti et al., OOPSLA'14), also reused (without the lock
    records) for NVML-style programmer-delineated regions.

    Per thread, a persistent ring buffer of 4-word records
    [tag; a; b; seq].  Before every persistent store inside a FASE the
    old value is logged and persisted (one fence).  Lock acquires and
    releases are logged and persisted too (one fence each) — that is
    how Atlas tracks cross-FASE dependences.

    {!Atlas_recovery} consumes these logs after a crash. *)

open Ido_nvm
open Ido_region

type tag = Fase_begin | Write | Acquire | Release | Fase_end

val tag_code : tag -> int

val record_words : int
(** Words per log record ([kind; a; b; seq] = 4). *)

type record = { tag : tag; a : int64; b : int64; seq : int }

val create : Pwriter.t -> Region.t -> kind:int -> tid:int -> cap_records:int -> Pmem.addr
(** [kind] is {!Lognode.kind_atlas} or {!Lognode.kind_nvml}. *)

val rebind : Pwriter.t -> Pmem.addr -> tid:int -> unit
(** Recycle a finished thread's arena: rebind the owner tid and
    truncate the record buffer, one write-back + fence.  Only legal at
    a quiescent point (no open FASE on any thread) — see the
    happens-before argument in the implementation. *)

val append : Pwriter.t -> Pmem.addr -> tag -> a:int64 -> b:int64 -> seq:int -> unit
(** Append and persist one record (stores, write-backs, one fence). *)

val append_unfenced :
  Pwriter.t -> Pmem.addr -> tag -> a:int64 -> b:int64 -> seq:int -> unit
(** Append and write back without fencing: the record becomes durable
    with the next fence (used for FASE begin/end markers). *)

val log_write : Pwriter.t -> Pmem.addr -> addr:Pmem.addr -> old:int64 -> seq:int -> unit
(** The per-store UNDO entry: 32 bytes, flushed, fenced — the cost
    Atlas pays at {e every} store that iDO amortises per region. *)

val total : Pmem.t -> Pmem.addr -> int
(** Records ever appended (drives the recovery-time model). *)

val records : Pmem.t -> Pmem.addr -> record list
(** Chronological (oldest first) records still in the ring. *)

val in_fase : Pmem.t -> Pmem.addr -> bool
(** Does the log end inside an open FASE / durable region? *)

val reset : Pwriter.t -> Pmem.addr -> unit
(** Truncate after recovery or at a clean commit (NVML). *)
