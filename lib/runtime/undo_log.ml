open Ido_nvm

type tag = Fase_begin | Write | Acquire | Release | Fase_end

let tag_code = function
  | Fase_begin -> 1
  | Write -> 2
  | Acquire -> 3
  | Release -> 4
  | Fase_end -> 5

let tag_of_code = function
  | 1 -> Fase_begin
  | 2 -> Write
  | 3 -> Acquire
  | 4 -> Release
  | 5 -> Fase_end
  | c -> failwith (Printf.sprintf "Undo_log: bad tag %d" c)

type record = { tag : tag; a : int64; b : int64; seq : int }

let record_words = 4

let off_cap = 3
let off_head = 4
let off_total = 5
let off_buf = 6

let create w region ~kind ~tid ~cap_records =
  let cap = cap_records * record_words in
  let node = Lognode.push w region ~kind ~tid ~payload_words:(3 + cap) in
  Pwriter.store w (node + off_cap) (Int64.of_int cap);
  Pwriter.clwb w (node + off_cap);
  Pwriter.fence w;
  node

(* Hand a finished thread's arena to a fresh thread.  Truncating the
   record buffer is safe only at a quiescent point (no open FASE
   anywhere): the happens-before cascade in {!Atlas_recovery} can roll
   a *completed* FASE back only through a lock released at a later
   sequence number by a FASE that is itself rolled back, and every
   sequence number the recycled log could contain predates any FASE
   still to come.  {!Ido_vm.Vm.reap} enforces that discipline. *)
let rebind w node ~tid =
  Lognode.store_tid w node ~tid;
  Pwriter.store w (node + off_head) 0L;
  Pwriter.store w (node + off_total) 0L;
  Pwriter.clwb_lines w [ node + 1; node + off_head; node + off_total ];
  Pwriter.fence w

let cap pm node = Int64.to_int (Pmem.load pm (node + off_cap))
let head pm node = Int64.to_int (Pmem.load pm (node + off_head))
let total pm node = Int64.to_int (Pmem.load pm (node + off_total))

let append_unfenced w node tag ~a ~b ~seq =
  let pm = Pwriter.pmem w in
  let c = cap pm node in
  let h = head pm node in
  let base = node + off_buf + h in
  Pwriter.store w base (Int64.of_int (tag_code tag));
  Pwriter.store w (base + 1) a;
  Pwriter.store w (base + 2) b;
  Pwriter.store w (base + 3) (Int64.of_int seq);
  (* Write-ahead order: the record's words must be durable before head
     and total publish it, or a crash between the write-backs (or an
     eviction of the counter line) makes recovery read an unwritten
     record.  head and total usually share a line; when they straddle
     one, both must reach the persistence domain or recovery sees a
     truncated log. *)
  Pwriter.clwb_lines w [ base; base + 3 ];
  Pwriter.store w (node + off_head) (Int64.of_int ((h + record_words) mod c));
  Pwriter.store w (node + off_total) (Int64.of_int (total pm node + 1));
  Pwriter.clwb_lines w [ node + off_head; node + off_total ]

let append w node tag ~a ~b ~seq =
  append_unfenced w node tag ~a ~b ~seq;
  Pwriter.fence w

let log_write w node ~addr ~old ~seq =
  append w node Write ~a:(Int64.of_int addr) ~b:old ~seq

let records pm node =
  let c = cap pm node in
  let h = head pm node in
  let t = total pm node in
  let nrec = min t (c / record_words) in
  let start = if t * record_words <= c then 0 else h in
  List.init nrec (fun i ->
      let off = (start + (i * record_words)) mod c in
      let base = node + off_buf + off in
      {
        tag = tag_of_code (Int64.to_int (Pmem.load pm base));
        a = Pmem.load pm (base + 1);
        b = Pmem.load pm (base + 2);
        seq = Int64.to_int (Pmem.load pm (base + 3));
      })

let in_fase pm node =
  (* The log ends inside a FASE iff the last begin has no matching
     end.  Scan backward over the chronological record list. *)
  let rec last_state st = function
    | [] -> st
    | r :: rest ->
        let st =
          match r.tag with Fase_begin -> true | Fase_end -> false | _ -> st
        in
        last_state st rest
  in
  last_state false (records pm node)

let reset w node =
  Pwriter.store w (node + off_head) 0L;
  Pwriter.store w (node + off_total) 0L;
  Pwriter.clwb w (node + off_head);
  Pwriter.fence w
