(** Mnemosyne-style REDO transaction log.

    During a transaction, writes are buffered: each one appends an
    [(addr, value)] entry (no fence — REDO's key advantage is that
    persistence is deferred to commit).  Commit persists the entries,
    persists a commit mark, applies the writes in place, then
    truncates.  A crash before the commit mark discards the
    transaction; after the mark, recovery replays it (replay is
    idempotent). *)

open Ido_nvm
open Ido_region

type status = Idle | Filling | Committed

val create : Pwriter.t -> Region.t -> tid:int -> cap_entries:int -> Pmem.addr

val rebind : Pwriter.t -> Pmem.addr -> tid:int -> unit
(** Recycle a finished thread's arena: rebind the owner tid, status
    back to Idle, write set emptied, one write-back + fence.  Previous
    owner must be Done. *)

val begin_txn : Pwriter.t -> Pmem.addr -> unit
val append : Pwriter.t -> Pmem.addr -> addr:Pmem.addr -> value:int64 -> unit
val count : Pmem.t -> Pmem.addr -> int
val entry : Pmem.t -> Pmem.addr -> int -> Pmem.addr * int64

val persist_entries : Pwriter.t -> Pmem.addr -> unit
(** Write back every entry line (no fence). *)

val set_status : Pwriter.t -> Pmem.addr -> status -> unit
(** Store only; persist with {!Pwriter.clwb}/{!Pwriter.fence} as the
    commit protocol requires. *)

val persist_status : Pwriter.t -> Pmem.addr -> status -> unit
(** Store + write-back + fence. *)

val status : Pmem.t -> Pmem.addr -> status

val apply : Pwriter.t -> Pmem.addr -> unit
(** Replay the buffered writes in place (in log order). *)

val total_commits : Pmem.t -> Pmem.addr -> int
