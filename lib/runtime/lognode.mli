(** Persistent per-thread log nodes.

    Every scheme keeps one log structure per thread, allocated from
    the persistent region and linked into a global list whose head is
    in the region header, exactly as in Fig. 3.  All nodes share a
    3-word prefix [next; tid; kind]; the payload after it is
    scheme-specific. *)

open Ido_nvm
open Ido_region

type overflow = { scheme : string; tid : int; log : string; capacity : int }
(** A fixed-capacity per-thread log structure ran out of [log] slots
    ([capacity] of them) while thread [tid] was mid-FASE under
    [scheme]. *)

exception Log_overflow of overflow
(** Raised by the scheme runtimes ({!Ido_log}/{!Justdo_log} lock
    arrays, {!Redo_log} write set, {!Page_log} page set) instead of
    aborting the process: drivers catch it and surface a structured
    {!Ido_analysis.Diag} diagnostic. *)

val overflow : scheme:string -> tid:int -> log:string -> capacity:int -> 'a
(** [raise (Log_overflow _)] with the given payload. *)

val kind_ido : int
val kind_justdo : int
val kind_atlas : int
val kind_redo : int
val kind_nvml : int
val kind_page : int

val push : Pwriter.t -> Region.t -> kind:int -> tid:int -> payload_words:int -> Pmem.addr
(** Allocate a node, initialise the prefix, persist it, and link it as
    the new list head (persisted).  Returns the node address; the
    payload starts at [addr + payload_base]. *)

val payload_base : int
(** Offset of the payload within a node (3). *)

val store_tid : Pwriter.t -> Pmem.addr -> tid:int -> unit
(** Store a new owner tid into a node's prefix, {e without} flushing:
    the scheme runtimes' [rebind] operations batch it with their own
    state resets under a single write-back + fence.  Used when a
    finished thread's log arena is recycled for a fresh spawn. *)

val next : Pmem.t -> Pmem.addr -> Pmem.addr
(** 0 terminates the list. *)

val tid : Pmem.t -> Pmem.addr -> int
val kind : Pmem.t -> Pmem.addr -> int

val iter : Pmem.t -> Region.t -> (Pmem.addr -> unit) -> unit
(** Visit every node currently linked from the region's log head. *)

val find : Pmem.t -> Region.t -> tid:int -> Pmem.addr option
