open Ido_nvm

type t = {
  pm : Pmem.t;
  lat : Latency.t;
  mutable cost : int;
  mutable pending : int;
}

let create pm lat = { pm; lat; cost = 0; pending = 0 }

let pmem t = t.pm
let latency t = t.lat

let load t a =
  t.cost <- t.cost + t.lat.Latency.mem;
  Pmem.load t.pm a

let store t a v =
  t.cost <- t.cost + t.lat.Latency.mem;
  Pmem.store t.pm a v

let clwb t a =
  (* Charge only when the line was actually dirty: a clwb that hits a
     clean line writes nothing back, so neither the issue cost nor the
     fence's drain cost applies.  nvm_extra is the Fig. 9 knob: an
     inline delay after each write-back, as the paper inserts it.  On
     an NV-cache machine the write-back is free — cached data is
     already persistent. *)
  let wrote = Pmem.clwb t.pm a in
  if wrote && not t.lat.Latency.nv_caches then begin
    t.cost <- t.cost + t.lat.Latency.clwb_issue + t.lat.Latency.nvm_extra;
    t.pending <- t.pending + 1
  end

(* One write-back per distinct line, in first-occurrence order: in this
   machine model a write-back is durable at issue, so callers sequence
   their addresses write-ahead (log payload before publish word) and a
   crash between any two write-backs still sees a consistent prefix. *)
let clwb_lines t addrs =
  let seen = Hashtbl.create 8 in
  List.iter
    (fun a ->
      let line = a / Pmem.words_per_line in
      if not (Hashtbl.mem seen line) then begin
        Hashtbl.replace seen line ();
        clwb t (line * Pmem.words_per_line)
      end)
    addrs

let fence t =
  ignore (Pmem.fence t.pm);
  t.cost <- t.cost + Latency.fence_cost t.lat ~pending:t.pending;
  t.pending <- 0

let persist_store t a v =
  store t a v;
  clwb t a;
  fence t

let add_cost t c = t.cost <- t.cost + c

let take_cost t =
  let c = t.cost in
  t.cost <- 0;
  c

let pending t = t.pending
