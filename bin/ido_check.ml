(* Crash-matrix checker: enumerate (or sample) every power-failure
   instant of a workload run, recover, and validate the image against
   the workload's pure model.  Exit status 0 = no violations. *)

open Cmdliner
open Ido_runtime
open Ido_check

(* Unknown scheme/workload names are usage errors: report them on
   stderr with the valid names and exit 2 (scripts distinguish "you
   typo'd the name" from crashes and from oracle violations). *)
let die_unknown what name valid =
  Printf.eprintf "ido_check: unknown %s %S (valid: %s)\n" what name
    (String.concat ", " valid);
  exit 2

let resolve_scheme name =
  match Scheme.of_name name with
  | Some s -> s
  | None -> die_unknown "scheme" name (List.map Scheme.name Scheme.all)

let resolve_workload name =
  match Ido_workloads.Workload.find name with
  | Some _ -> name
  | None -> die_unknown "workload" name Ido_workloads.Workload.names

let scheme_arg =
  Term.(
    const resolve_scheme
    $ Arg.(
        value & opt string "ido"
        & info [ "scheme" ] ~doc:"Failure-atomicity scheme"))

let workload_arg =
  Term.(
    const resolve_workload
    $ Arg.(
        value & opt string "queue"
        & info [ "workload" ] ~doc:"Workload program"))

let seed_arg = Arg.(value & opt int 42 & info [ "seed" ] ~doc:"Random seed")

let threads_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "threads" ] ~doc:"Worker threads (default 3; 1 for objstore)")

let ops_arg =
  Arg.(value & opt int 60 & info [ "ops" ] ~doc:"Operations per worker thread")

let cache_lines_arg =
  Arg.(
    value & opt int 4096
    & info [ "cache-lines" ] ~doc:"Volatile dirty-line capacity")

let oracle_conv =
  Arg.enum [ ("auto", `Auto); ("atomic", `Atomic); ("prefix", `Prefix) ]

let oracle_arg =
  Arg.(
    value & opt oracle_conv `Auto
    & info [ "oracle" ]
        ~doc:
          "Oracle strictness: auto (atomic for instrumented schemes, prefix \
           for origin), atomic, or prefix")

let strict_arg =
  Arg.(
    value & flag
    & info [ "strict" ]
        ~doc:"Shorthand for --oracle atomic (even for origin)")

let opt_arg =
  Arg.(
    value & flag
    & info [ "opt" ]
        ~doc:
          "Run the persistence-redundancy optimizer over the instrumented \
           program before executing")

let jobs_arg =
  Arg.(
    value
    & opt int (Ido_util.Pool.default_jobs ())
    & info [ "j"; "jobs" ]
        ~doc:
          "Worker domains for parallel crash injection (default: the \
           machine's recommended domain count; 1 = serial).  Reports are \
           byte-identical at every -j.")

let chunk_arg =
  Arg.(
    value & opt int 0
    & info [ "chunk" ]
        ~doc:
          "Work items per pool task: 0 = auto-size from the item count and \
           -j, 1 = one task per item.  Results are byte-identical at every \
           chunk size.")

(* [f None] when serial, else [f (Some pool)] inside with_pool. *)
let with_jobs jobs f =
  if jobs < 1 then invalid_arg "jobs must be >= 1"
  else if jobs = 1 then f None
  else Ido_util.Pool.with_pool jobs (fun pool -> f (Some pool))

let spec_of ?(opt = false) scheme workload seed threads ops cache_lines oracle
    strict =
  let spec =
    Engine.defaults ?threads ~ops ~cache_lines ~strict ~seed ~opt ~scheme
      ~workload ()
  in
  match oracle with
  | `Auto -> spec
  | `Atomic -> { spec with oracle_mode = Ido_workloads.Oracle.Atomic }
  | `Prefix -> { spec with oracle_mode = Ido_workloads.Oracle.Prefix }

let overflow_diag (ov : Lognode.overflow) =
  Ido_analysis.Diag.vf ~func:"runtime" ~code:"R601"
    "%s: %s log overflow on thread %d (capacity %d)" ov.Lognode.scheme
    ov.Lognode.log ov.Lognode.tid ov.Lognode.capacity

(* Bad spec combinations (unsupported scheme x workload pair,
   nonsensical budget) surface as [Invalid_argument]; report them as
   the usage errors they are rather than as uncaught exceptions.  A
   scheme log overflowing its fixed capacity is a bounded-resource
   verdict on the run, not a crash: render it as a diagnostic.  An
   unwritable --out path or unreadable --replay file raises
   [Sys_error]: an environment/usage problem, reported like an unknown
   name (exit 2), never a backtrace. *)
(* Config construction inside a command body is usage validation (Zipf
   exponents, topology shapes): exit 2 like the name resolvers, not
   [guard]'s generic Invalid_argument status. *)
let usage f =
  try f ()
  with Invalid_argument msg ->
    Printf.eprintf "ido_check: %s\n" msg;
    exit 2

let zipf_arg =
  Arg.(
    value & opt float 0.99
    & info [ "zipf" ]
        ~doc:
          "Zipf exponent for the serving key distribution (must be \
           positive and not 1.0)")

let guard f =
  try f () with
  | Invalid_argument msg ->
      Printf.eprintf "ido_check: %s\n" msg;
      Cmd.Exit.cli_error
  | Sys_error msg ->
      Printf.eprintf "ido_check: %s\n" msg;
      2
  | Lognode.Log_overflow ov ->
      Printf.eprintf "ido_check: %s\n"
        (Ido_analysis.Diag.render (overflow_diag ov));
      3
  | Ido_opt.Opt.Opt_violation msg ->
      Printf.eprintf "ido_check: OPTIMIZATION VIOLATION\n%s\n" msg;
      1

let pp_injection (inj : Engine.injection) =
  Printf.printf "  index %d (%s): %s\n" inj.index
    (Option.value inj.event ~default:"terminal; crash at idle")
    (match inj.verdict with Ok () -> "ok" | Error m -> "VIOLATION: " ^ m)

let explore_cmd =
  let doc = "Explore the crash-point space of one scheme x workload pair." in
  let budget_arg =
    Arg.(value & opt int 500 & info [ "budget" ] ~doc:"Max injected crashes")
  in
  let verbose_arg =
    Arg.(value & flag & info [ "verbose"; "v" ] ~doc:"Print every injection")
  in
  let run scheme workload seed threads ops cache_lines oracle strict opt budget
      verbose jobs chunk =
    guard @@ fun () ->
    let spec =
      spec_of ~opt scheme workload seed threads ops cache_lines oracle strict
    in
    let last = ref 0 in
    let progress k n =
      (* One status line per ~5% on a terminal-unfriendly stream. *)
      if verbose || (k * 20 / n) > (!last * 20 / n) || k = n then begin
        Printf.eprintf "\r  injected %d/%d crashes" k n;
        if k = n then prerr_newline ();
        flush stderr
      end;
      last := k
    in
    let r =
      with_jobs jobs (fun pool ->
          Engine.explore ~progress ?pool ~chunk spec ~budget)
    in
    Printf.printf
      "%s on %s: %d events in schedule; tested %d crash points (%s), %d \
       violation(s)\n"
      (Scheme.name scheme) workload r.Engine.total_events r.Engine.tested
      (if r.Engine.exhaustive then "exhaustive" else "stratified sample")
      (List.length r.Engine.violations);
    if verbose then List.iter pp_injection r.Engine.violations;
    match r.Engine.counterexample with
    | None ->
        print_endline "no oracle violations";
        0
    | Some inj ->
        pp_injection inj;
        Printf.printf "repro: %s\n" (Engine.repro_line spec inj.Engine.index);
        1
  in
  Cmd.v
    (Cmd.info "explore" ~doc)
    Term.(
      const run $ scheme_arg $ workload_arg $ seed_arg $ threads_arg $ ops_arg
      $ cache_lines_arg $ oracle_arg $ strict_arg $ opt_arg $ budget_arg
      $ verbose_arg $ jobs_arg $ chunk_arg)

let replay_cmd =
  let doc = "Replay a single crash index from a repro line." in
  let index_arg =
    Arg.(
      required
      & opt (some int) None
      & info [ "index" ] ~doc:"Crash just before this event index")
  in
  let run scheme workload seed threads ops cache_lines oracle strict opt index =
    guard @@ fun () ->
    let spec =
      spec_of ~opt scheme workload seed threads ops cache_lines oracle strict
    in
    let inj = Engine.inject spec index in
    pp_injection inj;
    match inj.Engine.verdict with Ok () -> 0 | Error _ -> 1
  in
  Cmd.v
    (Cmd.info "replay" ~doc)
    Term.(
      const run $ scheme_arg $ workload_arg $ seed_arg $ threads_arg $ ops_arg
      $ cache_lines_arg $ oracle_arg $ strict_arg $ opt_arg $ index_arg)

let schedule_cmd =
  let doc = "Print the recorded persist-event schedule (for debugging)." in
  let limit_arg =
    Arg.(value & opt int 100 & info [ "limit" ] ~doc:"Events to print")
  in
  let run scheme workload seed threads ops cache_lines oracle strict limit =
    guard @@ fun () ->
    let spec = spec_of scheme workload seed threads ops cache_lines oracle strict in
    let evs = Engine.record spec in
    Printf.printf "%d events\n" (Array.length evs);
    Array.iteri
      (fun i e ->
        if i < limit then Printf.printf "%6d %s\n" i (Ido_vm.Event.describe e))
      evs;
    0
  in
  Cmd.v
    (Cmd.info "schedule" ~doc)
    Term.(
      const run $ scheme_arg $ workload_arg $ seed_arg $ threads_arg $ ops_arg
      $ cache_lines_arg $ oracle_arg $ strict_arg $ limit_arg)

let pp_traced (tr : Engine.traced) =
  Printf.printf "%s on %s: %d events%s\n"
    (Scheme.name tr.Engine.t_spec.Engine.scheme)
    tr.Engine.t_spec.Engine.workload
    (Ido_obs.Obs.count tr.Engine.t_obs)
    (match tr.Engine.t_index with
    | None -> " (crash-free)"
    | Some k -> Printf.sprintf ", crash injected at index %d" k);
  (match tr.Engine.t_injection with Some inj -> pp_injection inj | None -> ());
  Printf.printf "digest %s\n" tr.Engine.t_digest;
  Printf.printf "obs/counters: %s\n"
    (match tr.Engine.t_consistency with
    | Ok () -> "consistent"
    | Error m -> "MISMATCH: " ^ m)

let traced_ok (tr : Engine.traced) =
  tr.Engine.t_consistency = Ok ()
  && match tr.Engine.t_injection with
     | Some { Engine.verdict = Error _; _ } -> false
     | _ -> true

let trace_cmd =
  let doc =
    "Record one fully-observed run as an NDJSON trace (events tagged with \
     thread and FASE ids, digest and obs/counters reconciliation in the \
     footer), or replay a trace from its header alone and check the digest \
     reproduces."
  in
  let index_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "index" ]
          ~doc:
            "Crash just before this event index (omit for a crash-free \
             run)")
  in
  let out_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "out" ] ~doc:"Write the NDJSON trace to this file")
  in
  let replay_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "replay" ]
          ~doc:
            "Ignore the spec options: re-run the spec recorded in this \
             trace file's header and compare digests (exit 0 iff they \
             match and the rollup reconciles)")
  in
  let run scheme workload seed threads ops cache_lines oracle strict opt index
      replay_file out =
    guard @@ fun () ->
    match replay_file with
    | Some path ->
        let s = Trace.load path in
        let tr = Trace.replay s in
        (match out with Some o -> Trace.save tr o | None -> ());
        pp_traced tr;
        let matches = String.equal s.Trace.digest tr.Engine.t_digest in
        Printf.printf "recorded digest %s: %s\n" s.Trace.digest
          (if matches then "match" else "MISMATCH");
        if matches && tr.Engine.t_consistency = Ok () then 0 else 1
    | None ->
        let spec =
          spec_of ~opt scheme workload seed threads ops cache_lines oracle
            strict
        in
        let tr = Engine.run_traced ?index spec in
        (match out with
        | Some o ->
            Trace.save tr o;
            Printf.printf "wrote %s\n" o
        | None -> ());
        pp_traced tr;
        if traced_ok tr then 0 else 1
  in
  Cmd.v
    (Cmd.info "trace" ~doc)
    Term.(
      const run $ scheme_arg $ workload_arg $ seed_arg $ threads_arg $ ops_arg
      $ cache_lines_arg $ oracle_arg $ strict_arg $ opt_arg $ index_arg
      $ replay_arg $ out_arg)

let pp_diag d = print_endline ("  " ^ Ido_analysis.Diag.render d)

let lint_cmd =
  let doc =
    "Statically lint instrumented workloads: hook-contract conformance, \
     persist-order abstract interpretation, lockset checking.  With no \
     selection, sweeps every supported scheme x workload pair.  Exit \
     status 0 = no diagnostics."
  in
  let all_scheme_arg =
    Term.(
      const (Option.map resolve_scheme)
      $ Arg.(
          value
          & opt (some string) None
          & info [ "scheme" ] ~doc:"Restrict to one scheme (default: all)"))
  in
  let all_workload_arg =
    Term.(
      const (Option.map resolve_workload)
      $ Arg.(
          value
          & opt (some string) None
          & info [ "workload" ] ~doc:"Restrict to one workload (default: all)"))
  in
  let explain_arg =
    Arg.(
      value & flag
      & info [ "explain" ] ~doc:"Append the code table to the report")
  in
  let mutant_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "mutant" ]
          ~doc:
            "Lint the named seeded-bug mutant instead of the shipped \
             program (the exit status then demonstrates the failure \
             path)")
  in
  let json_arg =
    Arg.(
      value & flag
      & info [ "json" ]
          ~doc:
            "Emit diagnostics as one NDJSON object per line \
             (func/pos/code/message, byte-stable) instead of the text \
             report")
  in
  let run scheme workload explain mutant json jobs chunk =
    guard @@ fun () ->
    let pp_json d = print_endline (Ido_analysis.Diag.json d) in
    match mutant with
    | Some n -> (
        match Ido_lint.Mutate.find n with
        | None -> invalid_arg (Printf.sprintf "unknown mutant %S" n)
        | Some m ->
            let o = Lintrun.run_mutant m in
            if json then List.iter pp_json o.Lintrun.mdiags
            else begin
              Printf.printf "%s on %s (mutant %s): %d diagnostic(s)\n"
                (Scheme.name m.Ido_lint.Mutate.scheme)
                m.Ido_lint.Mutate.workload m.Ido_lint.Mutate.name
                (List.length o.Lintrun.mdiags);
              List.iter pp_diag o.Lintrun.mdiags
            end;
            if o.Lintrun.mdiags = [] then 0 else 1)
    | None ->
    let schemes = match scheme with Some s -> [ s ] | None -> Scheme.all in
    let workloads =
      match workload with
      | Some w -> [ w ]
      | None -> Ido_workloads.Workload.names
    in
    let pairs =
      with_jobs jobs (fun pool ->
          Lintrun.sweep ?pool ~chunk ~schemes ~workloads ())
    in
    let dirty = List.filter (fun p -> p.Lintrun.diags <> []) pairs in
    if json then
      List.iter (fun (p : Lintrun.pair) -> List.iter pp_json p.diags) dirty
    else begin
      List.iter
        (fun (p : Lintrun.pair) ->
          Printf.printf "%s on %s: %d diagnostic(s)\n" (Scheme.name p.scheme)
            p.workload
            (List.length p.diags);
          List.iter pp_diag p.diags)
        dirty;
      Printf.printf "linted %d pair(s): %d clean, %d with diagnostics\n"
        (List.length pairs)
        (List.length pairs - List.length dirty)
        (List.length dirty);
      if explain then
        List.iter
          (fun (c, s) -> Printf.printf "  %s  %s\n" c s)
          Ido_lint.Lint.codes
    end;
    if dirty = [] then 0 else 1
  in
  Cmd.v
    (Cmd.info "lint" ~doc)
    Term.(
      const run $ all_scheme_arg $ all_workload_arg $ explain_arg $ mutant_arg
      $ json_arg $ jobs_arg $ chunk_arg)

let mutants_cmd =
  let doc =
    "Run the seeded-bug mutation corpus through the linter and check that \
     every mutant is reported with its expected error code.  Exit status 0 \
     = all caught."
  in
  let name_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "name" ] ~doc:"Run a single mutant by name (default: all)")
  in
  let verbose_arg =
    Arg.(
      value & flag
      & info [ "verbose"; "v" ] ~doc:"Print every mutant's diagnostics")
  in
  let run name verbose jobs chunk =
    guard @@ fun () ->
    let outcomes =
      match name with
      | Some n -> (
          match Ido_lint.Mutate.find n with
          | Some m -> [ Lintrun.run_mutant m ]
          | None -> invalid_arg (Printf.sprintf "unknown mutant %S" n))
      | None -> with_jobs jobs (fun pool -> Lintrun.run_corpus ?pool ~chunk ())
    in
    List.iter
      (fun (o : Lintrun.outcome) ->
        Printf.printf "%-28s %s on %-8s expect %s: %s\n" o.mutant.Ido_lint.Mutate.name
          (Scheme.name o.mutant.Ido_lint.Mutate.scheme)
          o.mutant.Ido_lint.Mutate.workload o.mutant.Ido_lint.Mutate.expect
          (if o.caught then "caught" else "MISSED");
        if verbose || not o.caught then List.iter pp_diag o.mdiags)
      outcomes;
    let missed = List.filter (fun o -> not o.Lintrun.caught) outcomes in
    Printf.printf "%d mutant(s): %d caught, %d missed\n" (List.length outcomes)
      (List.length outcomes - List.length missed)
      (List.length missed);
    if missed = [] then 0 else 1
  in
  Cmd.v
    (Cmd.info "mutants" ~doc)
    Term.(const run $ name_arg $ verbose_arg $ jobs_arg $ chunk_arg)

let fuzz_cmd =
  let doc =
    "Coverage-guided fuzzing over persist-event traces: seed with clean \
     workloads (and random-CFG genomes), enumerate the single-edit \
     instrumentation bug space, then mutate the live corpus keeping inputs \
     whose coverage digest is novel.  Findings are shrunk to minimal \
     reproducers and stored in a replayable NDJSON corpus.  Deterministic \
     under --seed at every -j.  Exit status: 0 = no organic (non-seeded) \
     failure; with --rediscover, 0 = at least --min-found seeded mutants \
     re-found."
  in
  let fseed_arg =
    Arg.(value & opt int 1 & info [ "seed" ] ~doc:"Campaign seed")
  in
  let budget_arg =
    Arg.(
      value & opt int 4000
      & info [ "budget" ] ~doc:"Candidate executions across all stages")
  in
  let fscheme_arg =
    Term.(
      const (Option.map resolve_scheme)
      $ Arg.(
          value
          & opt (some string) None
          & info [ "scheme" ]
              ~doc:"Restrict to one scheme (default: all but origin)"))
  in
  let fworkload_arg =
    Term.(
      const (Option.map resolve_workload)
      $ Arg.(
          value
          & opt (some string) None
          & info [ "workload" ] ~doc:"Restrict to one workload (default: all)"))
  in
  let rediscover_arg =
    Arg.(
      value & flag
      & info [ "rediscover" ]
          ~doc:
            "Seed from clean workloads only and report which seeded \
             mutation-corpus bugs the campaign re-finds unaided")
  in
  let min_found_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "min-found" ]
          ~doc:
            "With --rediscover: minimum mutants to re-find for exit 0 \
             (default: the whole corpus)")
  in
  let out_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "out" ] ~doc:"Write the NDJSON corpus to this file")
  in
  let shrink_arg =
    Arg.(
      value & opt int 200
      & info [ "shrink-budget" ] ~doc:"Extra executions per finding")
  in
  let run seed budget scheme workload rediscover min_found out shrink_budget
      opt jobs chunk =
    guard @@ fun () ->
    let d = Ido_fuzz.Fuzz.default_config in
    let config =
      {
        Ido_fuzz.Fuzz.seed;
        budget;
        rediscover;
        shrink_budget;
        opt;
        schemes =
          (match scheme with
          | Some s -> [ s ]
          | None -> d.Ido_fuzz.Fuzz.schemes);
        workloads =
          (match workload with
          | Some w -> [ w ]
          | None -> d.Ido_fuzz.Fuzz.workloads);
      }
    in
    let r =
      with_jobs jobs (fun pool -> Ido_fuzz.Fuzz.run ?pool ~chunk config)
    in
    (match out with
    | Some path ->
        Ido_fuzz.Corpus.save r.Ido_fuzz.Fuzz.r_corpus path;
        Printf.printf "wrote %s (%d entries)\n" path
          (List.length r.Ido_fuzz.Fuzz.r_corpus.Ido_fuzz.Corpus.c_entries)
    | None -> ());
    print_string (Ido_fuzz.Fuzz.render r);
    if rediscover then begin
      let found, total = Ido_fuzz.Fuzz.found_count r in
      let need = Option.value min_found ~default:total in
      if found >= need then 0 else 1
    end
    else if Ido_fuzz.Fuzz.organic r = [] then 0
    else 1
  in
  Cmd.v
    (Cmd.info "fuzz" ~doc)
    Term.(
      const run $ fseed_arg $ budget_arg $ fscheme_arg $ fworkload_arg
      $ rediscover_arg $ min_found_arg $ out_arg $ shrink_arg $ opt_arg
      $ jobs_arg $ chunk_arg)

let optimize_cmd =
  let doc =
    "Run the persistence-redundancy optimizer over every supported scheme x \
     workload pair, enforce each rewrite's obligations (re-lint clean, full \
     crash matrix with identical oracles, digest equality, rollup \
     reconciliation within the declared delta classes), and report the \
     clwb+fence events eliminated per cell.  Byte-identical output at every \
     -j and --chunk.  Exit status 0 = all obligations held."
  in
  let all_scheme_arg =
    Term.(
      const (Option.map resolve_scheme)
      $ Arg.(
          value
          & opt (some string) None
          & info [ "scheme" ] ~doc:"Restrict to one scheme (default: all)"))
  in
  let all_workload_arg =
    Term.(
      const (Option.map resolve_workload)
      $ Arg.(
          value
          & opt (some string) None
          & info [ "workload" ] ~doc:"Restrict to one workload (default: all)"))
  in
  let budget_arg =
    Arg.(
      value & opt int 300
      & info [ "budget" ]
          ~doc:"Max injected crashes per cell's obligation matrix")
  in
  let verbose_arg =
    Arg.(
      value & flag
      & info [ "verbose"; "v" ] ~doc:"Print every applied rewrite")
  in
  let explain_arg =
    Arg.(
      value & flag
      & info [ "explain" ] ~doc:"Append the O1xx rewrite table to the report")
  in
  let run scheme workload budget verbose explain jobs chunk =
    guard @@ fun () ->
    let schemes = match scheme with Some s -> [ s ] | None -> Scheme.all in
    let workloads =
      match workload with
      | Some w -> [ w ]
      | None -> Ido_workloads.Workload.names
    in
    let cells =
      with_jobs jobs (fun pool ->
          Optrun.sweep ?pool ~chunk ~schemes ~workloads ~budget ())
    in
    print_string (Optrun.render cells);
    if verbose then
      List.iter
        (fun (c : Optrun.cell) ->
          List.iter
            (fun r -> print_endline ("  " ^ Ido_opt.Rewrite.render r))
            c.Optrun.o_rewrites)
        cells;
    if explain then
      List.iter
        (fun (code, s) -> Printf.printf "  %s  %s\n" code s)
        Ido_opt.Rewrite.codes;
    0
  in
  Cmd.v
    (Cmd.info "optimize" ~doc)
    Term.(
      const run $ all_scheme_arg $ all_workload_arg $ budget_arg $ verbose_arg
      $ explain_arg $ jobs_arg $ chunk_arg)

let serve_crash_cmd =
  let doc =
    "Power-fail one shard mid-stream during a sharded serving run, recover \
     it, finish serving the stream, and re-validate every shard's oracle \
     and obs/counter reconciliation.  The crash point is planned from the \
     per-shard request counts alone (no stream is materialised), so the \
     check scales to arbitrarily long streams.  Exit status 0 = all \
     shards clean."
  in
  let shards_arg =
    Arg.(value & opt int 4 & info [ "shards" ] ~doc:"Key-hash shards")
  in
  let batch_arg =
    Arg.(value & opt int 8 & info [ "batch" ] ~doc:"Max requests per dispatch")
  in
  let requests_arg =
    Arg.(value & opt int 1200 & info [ "requests" ] ~doc:"Total requests")
  in
  let run scheme workload seed shards batch requests zipf jobs chunk =
    guard @@ fun () ->
    let config =
      usage @@ fun () ->
      Ido_serve.Config.make ~seed
        ~topology:(Ido_serve.Topology.static shards)
        ~batch ~requests ~zipf ~workload ~scheme ()
    in
    (* The deprecated shim on purpose: this check pins the historical
       single-crash output byte for byte. *)
    let crash = Ido_serve.Serve.default_crash config in
    let cell =
      with_jobs jobs (fun pool ->
          Ido_serve.Serve.run_cell ?pool ~chunk ~obs:true
            ~fault:(Ido_serve.Fault.of_crash crash)
            config)
    in
    let pp_result = function Ok () -> "ok" | Error m -> "FAIL: " ^ m in
    Printf.printf
      "%s: crash on shard %d at request %d (+%d ns into its batch)\n"
      (Ido_serve.Config.label config)
      crash.Ido_serve.Fault.shard crash.Ido_serve.Fault.at_request
      crash.Ido_serve.Fault.after_ns;
    List.iter
      (fun (o : Ido_serve.Shard.outcome) ->
        Printf.printf
          "  shard %d: served %d, dropped %d%s; oracle %s; obs %s\n"
          o.Ido_serve.Shard.group o.Ido_serve.Shard.served
          o.Ido_serve.Shard.dropped
          (if o.Ido_serve.Shard.crashes > 0 then
             Printf.sprintf " (crashed; recovery %d ns)"
               o.Ido_serve.Shard.recovery_ns
           else "")
          (pp_result o.Ido_serve.Shard.oracle)
          (pp_result o.Ido_serve.Shard.consistency))
      cell.Ido_serve.Serve.shards;
    let crashed_somewhere =
      List.exists
        (fun o -> o.Ido_serve.Shard.crashes > 0)
        cell.Ido_serve.Serve.shards
    in
    if not crashed_somewhere then begin
      print_endline "serve-crash: no shard crashed (stream too short?)";
      1
    end
    else if
      cell.Ido_serve.Serve.oracle = Ok ()
      && cell.Ido_serve.Serve.consistency = Ok ()
    then begin
      print_endline "all shards recovered consistent";
      0
    end
    else 1
  in
  Cmd.v
    (Cmd.info "serve-crash" ~doc)
    Term.(
      const run $ scheme_arg $ workload_arg $ seed_arg $ shards_arg $ batch_arg
      $ requests_arg $ zipf_arg $ jobs_arg $ chunk_arg)

let serve_failover_cmd =
  let doc =
    "Power-fail a replicated group's primary mid-stream and require the \
     warm replica to absorb it: the promoted replica replays only the \
     unacknowledged batch tail, every request is served (zero dropped, \
     some replayed), and every surviving machine's oracle and \
     obs/counter reconciliation stay clean.  Exit status 0 = failover \
     fully absorbed the crash."
  in
  let topology_arg =
    Arg.(
      value & opt string "s4r1"
      & info [ "topology" ]
          ~doc:
            "Serving topology (s<groups>[r<replicas>][sp|mg]); needs at \
             least one replica")
  in
  let batch_arg =
    Arg.(value & opt int 8 & info [ "batch" ] ~doc:"Max requests per dispatch")
  in
  let requests_arg =
    Arg.(value & opt int 1200 & info [ "requests" ] ~doc:"Total requests")
  in
  let run scheme workload seed topology batch requests zipf jobs chunk =
    guard @@ fun () ->
    let topology =
      match Ido_serve.Topology.of_name topology with
      | Ok t when t.Ido_serve.Topology.replicas >= 1 -> t
      | Ok t ->
          Printf.eprintf
            "ido_check: serve-failover needs a replicated topology (got %s \
             with 0 replicas)\n"
            (Ido_serve.Topology.name t);
          exit 2
      | Error msg ->
          Printf.eprintf "ido_check: %s\n" msg;
          exit 2
    in
    let config =
      usage @@ fun () ->
      Ido_serve.Config.make ~seed ~topology ~batch ~requests ~zipf ~workload
        ~scheme ()
    in
    let fault = Ido_serve.Fault.single_crash config in
    let cell =
      with_jobs jobs (fun pool ->
          Ido_serve.Serve.run_cell ?pool ~chunk ~obs:true ~fault config)
    in
    let pp_result = function Ok () -> "ok" | Error m -> "FAIL: " ^ m in
    Printf.printf "%s under %s (detect %d ns)\n"
      (Ido_serve.Config.label config)
      fault.Ido_serve.Fault.label fault.Ido_serve.Fault.detect_ns;
    List.iter
      (fun (o : Ido_serve.Shard.outcome) ->
        Printf.printf
          "  group %d: served %d (replayed %d), dropped %d, failovers %d; \
           oracle %s; obs %s\n"
          o.Ido_serve.Shard.group o.Ido_serve.Shard.served
          o.Ido_serve.Shard.replayed o.Ido_serve.Shard.dropped
          o.Ido_serve.Shard.failovers
          (pp_result o.Ido_serve.Shard.oracle)
          (pp_result o.Ido_serve.Shard.consistency))
      cell.Ido_serve.Serve.shards;
    Printf.printf "unavailability %d ns (max single stall %d ns)\n"
      cell.Ido_serve.Serve.unavail_ns cell.Ido_serve.Serve.max_stall_ns;
    let failovers =
      List.fold_left
        (fun a (o : Ido_serve.Shard.outcome) -> a + o.Ido_serve.Shard.failovers)
        0 cell.Ido_serve.Serve.shards
    in
    let dropped =
      List.fold_left
        (fun a (o : Ido_serve.Shard.outcome) -> a + o.Ido_serve.Shard.dropped)
        0 cell.Ido_serve.Serve.shards
    in
    let fail msg =
      print_endline ("serve-failover: " ^ msg);
      1
    in
    if failovers < 1 then fail "no failover happened (stream too short?)"
    else if dropped > 0 then
      fail (Printf.sprintf "%d requests dropped despite a warm replica" dropped)
    else if cell.Ido_serve.Serve.replayed < 1 then
      fail "no requests replayed (crash missed every in-flight batch?)"
    else if
      cell.Ido_serve.Serve.oracle = Ok ()
      && cell.Ido_serve.Serve.consistency = Ok ()
    then begin
      print_endline "failover absorbed the crash: zero dropped, all consistent";
      0
    end
    else 1
  in
  Cmd.v
    (Cmd.info "serve-failover" ~doc)
    Term.(
      const run $ scheme_arg $ workload_arg $ seed_arg $ topology_arg
      $ batch_arg $ requests_arg $ zipf_arg $ jobs_arg $ chunk_arg)

let () =
  let info =
    Cmd.info "ido_check"
      ~doc:
        "Systematic crash-point exploration and static crash-consistency \
         linting with per-workload oracles"
  in
  exit
    (Cmd.eval'
       (Cmd.group info
          [
            explore_cmd; replay_cmd; schedule_cmd; trace_cmd; lint_cmd;
            mutants_cmd; fuzz_cmd; optimize_cmd; serve_crash_cmd;
            serve_failover_cmd;
          ]))
