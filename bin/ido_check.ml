(* Crash-matrix checker: enumerate (or sample) every power-failure
   instant of a workload run, recover, and validate the image against
   the workload's pure model.  Exit status 0 = no violations. *)

open Cmdliner
open Ido_runtime
open Ido_check

let scheme_arg =
  let scheme_conv = Arg.enum (List.map (fun s -> (Scheme.name s, s)) Scheme.all) in
  Arg.(
    value
    & opt scheme_conv Scheme.Ido
    & info [ "scheme" ] ~doc:"Failure-atomicity scheme")

let workload_arg =
  Arg.(
    value
    & opt (enum (List.map (fun n -> (n, n)) Ido_workloads.Workload.names)) "queue"
    & info [ "workload" ] ~doc:"Workload program")

let seed_arg = Arg.(value & opt int 42 & info [ "seed" ] ~doc:"Random seed")

let threads_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "threads" ] ~doc:"Worker threads (default 3; 1 for objstore)")

let ops_arg =
  Arg.(value & opt int 60 & info [ "ops" ] ~doc:"Operations per worker thread")

let cache_lines_arg =
  Arg.(
    value & opt int 4096
    & info [ "cache-lines" ] ~doc:"Volatile dirty-line capacity")

let oracle_conv =
  Arg.enum [ ("auto", `Auto); ("atomic", `Atomic); ("prefix", `Prefix) ]

let oracle_arg =
  Arg.(
    value & opt oracle_conv `Auto
    & info [ "oracle" ]
        ~doc:
          "Oracle strictness: auto (atomic for instrumented schemes, prefix \
           for origin), atomic, or prefix")

let strict_arg =
  Arg.(
    value & flag
    & info [ "strict" ]
        ~doc:"Shorthand for --oracle atomic (even for origin)")

let jobs_arg =
  Arg.(
    value
    & opt int (Ido_util.Pool.default_jobs ())
    & info [ "j"; "jobs" ]
        ~doc:
          "Worker domains for parallel crash injection (default: the \
           machine's recommended domain count; 1 = serial).  Reports are \
           byte-identical at every -j.")

(* [f None] when serial, else [f (Some pool)] inside with_pool. *)
let with_jobs jobs f =
  if jobs < 1 then invalid_arg "jobs must be >= 1"
  else if jobs = 1 then f None
  else Ido_util.Pool.with_pool jobs (fun pool -> f (Some pool))

let spec_of scheme workload seed threads ops cache_lines oracle strict =
  let spec =
    Engine.defaults ?threads ~ops ~cache_lines ~strict ~seed ~scheme ~workload ()
  in
  match oracle with
  | `Auto -> spec
  | `Atomic -> { spec with oracle_mode = Ido_workloads.Oracle.Atomic }
  | `Prefix -> { spec with oracle_mode = Ido_workloads.Oracle.Prefix }

(* Bad spec combinations (unsupported scheme x workload pair,
   nonsensical budget) surface as [Invalid_argument]; report them as
   the usage errors they are rather than as uncaught exceptions. *)
let guard f =
  try f () with Invalid_argument msg ->
    Printf.eprintf "ido_check: %s\n" msg;
    Cmd.Exit.cli_error

let pp_injection (inj : Engine.injection) =
  Printf.printf "  index %d (%s): %s\n" inj.index
    (Option.value inj.event ~default:"terminal; crash at idle")
    (match inj.verdict with Ok () -> "ok" | Error m -> "VIOLATION: " ^ m)

let explore_cmd =
  let doc = "Explore the crash-point space of one scheme x workload pair." in
  let budget_arg =
    Arg.(value & opt int 500 & info [ "budget" ] ~doc:"Max injected crashes")
  in
  let verbose_arg =
    Arg.(value & flag & info [ "verbose"; "v" ] ~doc:"Print every injection")
  in
  let run scheme workload seed threads ops cache_lines oracle strict budget
      verbose jobs =
    guard @@ fun () ->
    let spec = spec_of scheme workload seed threads ops cache_lines oracle strict in
    let last = ref 0 in
    let progress k n =
      (* One status line per ~5% on a terminal-unfriendly stream. *)
      if verbose || (k * 20 / n) > (!last * 20 / n) || k = n then begin
        Printf.eprintf "\r  injected %d/%d crashes" k n;
        if k = n then prerr_newline ();
        flush stderr
      end;
      last := k
    in
    let r =
      with_jobs jobs (fun pool -> Engine.explore ~progress ?pool spec ~budget)
    in
    Printf.printf
      "%s on %s: %d events in schedule; tested %d crash points (%s), %d \
       violation(s)\n"
      (Scheme.name scheme) workload r.Engine.total_events r.Engine.tested
      (if r.Engine.exhaustive then "exhaustive" else "stratified sample")
      (List.length r.Engine.violations);
    if verbose then List.iter pp_injection r.Engine.violations;
    match r.Engine.counterexample with
    | None ->
        print_endline "no oracle violations";
        0
    | Some inj ->
        pp_injection inj;
        Printf.printf "repro: %s\n" (Engine.repro_line spec inj.Engine.index);
        1
  in
  Cmd.v
    (Cmd.info "explore" ~doc)
    Term.(
      const run $ scheme_arg $ workload_arg $ seed_arg $ threads_arg $ ops_arg
      $ cache_lines_arg $ oracle_arg $ strict_arg $ budget_arg $ verbose_arg
      $ jobs_arg)

let replay_cmd =
  let doc = "Replay a single crash index from a repro line." in
  let index_arg =
    Arg.(
      required
      & opt (some int) None
      & info [ "index" ] ~doc:"Crash just before this event index")
  in
  let run scheme workload seed threads ops cache_lines oracle strict index =
    guard @@ fun () ->
    let spec = spec_of scheme workload seed threads ops cache_lines oracle strict in
    let inj = Engine.inject spec index in
    pp_injection inj;
    match inj.Engine.verdict with Ok () -> 0 | Error _ -> 1
  in
  Cmd.v
    (Cmd.info "replay" ~doc)
    Term.(
      const run $ scheme_arg $ workload_arg $ seed_arg $ threads_arg $ ops_arg
      $ cache_lines_arg $ oracle_arg $ strict_arg $ index_arg)

let schedule_cmd =
  let doc = "Print the recorded persist-event schedule (for debugging)." in
  let limit_arg =
    Arg.(value & opt int 100 & info [ "limit" ] ~doc:"Events to print")
  in
  let run scheme workload seed threads ops cache_lines oracle strict limit =
    guard @@ fun () ->
    let spec = spec_of scheme workload seed threads ops cache_lines oracle strict in
    let evs = Engine.record spec in
    Printf.printf "%d events\n" (Array.length evs);
    Array.iteri
      (fun i e ->
        if i < limit then Printf.printf "%6d %s\n" i (Ido_vm.Event.describe e))
      evs;
    0
  in
  Cmd.v
    (Cmd.info "schedule" ~doc)
    Term.(
      const run $ scheme_arg $ workload_arg $ seed_arg $ threads_arg $ ops_arg
      $ cache_lines_arg $ oracle_arg $ strict_arg $ limit_arg)

let () =
  let info =
    Cmd.info "ido_check"
      ~doc:"Systematic crash-point exploration with per-workload oracles"
  in
  exit (Cmd.eval' (Cmd.group info [ explore_cmd; replay_cmd; schedule_cmd ]))
