(* Command-line driver: regenerate any of the paper's tables/figures,
   run a single throughput or crash-recovery experiment, or dump a
   workload's (instrumented) IR. *)

open Cmdliner
open Ido_runtime
open Ido_harness

let scale_arg =
  let scale_conv = Arg.enum [ ("quick", Exp.Quick); ("full", Exp.Full) ] in
  Arg.(value & opt scale_conv Exp.Quick & info [ "scale" ] ~doc:"quick or full")

(* Unknown scheme/workload names are usage errors: report them on
   stderr with the valid names and exit 2 (scripts distinguish "you
   typo'd the name" from crashes and from experiment failures). *)
let die_unknown what name valid =
  Printf.eprintf "ido_bench: unknown %s %S (valid: %s)\n" what name
    (String.concat ", " valid);
  exit 2

let resolve_scheme name =
  match Scheme.of_name name with
  | Some s -> s
  | None -> die_unknown "scheme" name (List.map Scheme.name Scheme.all)

let resolve_workload name =
  match Ido_workloads.Workload.find name with
  | Some _ -> name
  | None -> die_unknown "workload" name Ido_workloads.Workload.names

let scheme_arg =
  Term.(
    const resolve_scheme
    $ Arg.(
        value & opt string "ido"
        & info [ "scheme" ] ~doc:"Failure-atomicity scheme"))

let workload_arg =
  Term.(
    const resolve_workload
    $ Arg.(
        value & opt string "stack"
        & info [ "workload" ] ~doc:"Benchmark program"))

let threads_arg =
  Arg.(value & opt int 4 & info [ "threads" ] ~doc:"Worker threads")

let ops_arg =
  Arg.(value & opt int 4000 & info [ "ops" ] ~doc:"Total operations")

let seed_arg = Arg.(value & opt int 42 & info [ "seed" ] ~doc:"Random seed")

let opt_arg =
  Arg.(
    value & flag
    & info [ "opt" ]
        ~doc:
          "Run the persistence-redundancy optimizer (verified by \
           $(b,ido_check optimize)) over the instrumented program before \
           measuring; the JSON record defaults to the _opt variant of the \
           output path.")

let jobs_arg =
  Arg.(
    value
    & opt int (Ido_util.Pool.default_jobs ())
    & info [ "j"; "jobs" ]
        ~doc:
          "Worker domains for the sweep cells (default: the machine's \
           recommended domain count; 1 = serial).  Panels are identical \
           at every -j.")

(* [f None] when serial, else [f (Some pool)] inside with_pool. *)
let with_jobs jobs f =
  if jobs < 1 then invalid_arg "ido_bench: -j must be >= 1"
  else if jobs = 1 then f None
  else Ido_util.Pool.with_pool jobs (fun pool -> f (Some pool))

let figure_cmd name doc render =
  let run scale jobs =
    with_jobs jobs (fun pool ->
        print_string (render ?pool scale);
        print_newline ())
  in
  Cmd.v (Cmd.info name ~doc) Term.(const run $ scale_arg $ jobs_arg)

let run_cmd =
  let doc = "One throughput run: workload x scheme x threads." in
  let run scheme workload threads ops seed =
    let program = Ido_workloads.Workload.named workload in
    let r = Exp.throughput ~seed ~scheme ~threads ~total_ops:ops program in
    Printf.printf
      "%s on %s, %d threads: %.3f Mops/s (%d ops in %.3f ms simulated; %.1f fences/op, %.1f clwb/op)\n"
      (Scheme.name scheme) workload threads r.Exp.mops r.Exp.ops
      (float_of_int r.Exp.sim_ns /. 1e6)
      (float_of_int r.Exp.fences /. float_of_int (max 1 r.Exp.ops))
      (float_of_int r.Exp.clwbs /. float_of_int (max 1 r.Exp.ops))
  in
  Cmd.v
    (Cmd.info "run" ~doc)
    Term.(const run $ scheme_arg $ workload_arg $ threads_arg $ ops_arg $ seed_arg)

let crash_cmd =
  let doc = "Crash injection + recovery + integrity check." in
  let crash_at =
    Arg.(value & opt int 100_000 & info [ "at" ] ~doc:"Crash time (simulated ns)")
  in
  let run scheme workload threads crash_at seed =
    let program = Ido_workloads.Workload.named workload in
    let r =
      Exp.crash_recover_check ~seed ~scheme ~threads ~ops_per_thread:100_000
        ~crash_at program
    in
    Printf.printf
      "%s on %s: crashed at %.3f ms; recovery took %.3f ms simulated\n\
       (resumed=%d rolled_back=%d undone=%d replayed=%d pages=%d records=%d)\n\
       post-recovery integrity check: %s (count=%d)\n"
      (Scheme.name scheme) workload
      (float_of_int r.Exp.crashed_at /. 1e6)
      (float_of_int r.Exp.recovery.Ido_vm.Recover.simulated_time /. 1e6)
      r.Exp.recovery.Ido_vm.Recover.fases_resumed
      r.Exp.recovery.Ido_vm.Recover.fases_rolled_back
      r.Exp.recovery.Ido_vm.Recover.writes_undone
      r.Exp.recovery.Ido_vm.Recover.txns_replayed
      r.Exp.recovery.Ido_vm.Recover.pages_restored
      r.Exp.recovery.Ido_vm.Recover.records_scanned
      (if r.Exp.check_ok then "PASS" else "FAIL")
      r.Exp.check_count
  in
  Cmd.v
    (Cmd.info "crash" ~doc)
    Term.(const run $ scheme_arg $ workload_arg $ threads_arg $ crash_at $ seed_arg)

let trace_cmd =
  let doc = "Trace execution: one line per instruction (first N steps)." in
  let steps_arg =
    Arg.(value & opt int 400 & info [ "steps" ] ~doc:"Instructions to trace")
  in
  let run scheme workload steps seed =
    let program = Ido_workloads.Workload.named workload in
    let m = Ido_vm.Vm.create { (Ido_vm.Vm.config scheme) with seed } program in
    let _ = Ido_vm.Vm.spawn m ~fname:"init" ~args:[] in
    ignore (Ido_vm.Vm.run m);
    Ido_vm.Vm.flush_all m;
    ignore (Ido_vm.Vm.spawn m ~fname:"worker" ~args:[ 10L ]);
    ignore (Ido_vm.Vm.spawn m ~fname:"worker" ~args:[ 10L ]);
    Ido_vm.Vm.set_tracer m (Some print_endline);
    ignore (Ido_vm.Vm.run ~max_steps:steps m)
  in
  Cmd.v
    (Cmd.info "trace" ~doc)
    Term.(const run $ scheme_arg $ workload_arg $ steps_arg $ seed_arg)

let regions_cmd =
  let doc = "Static region-plan summary for every function of a workload." in
  let run workload =
    let program = Ido_workloads.Workload.named workload in
    List.iter
      (fun (name, f) ->
        let cfg = Ido_analysis.Cfg.build f in
        match Ido_analysis.Fase.compute cfg with
        | Error e -> Printf.printf "%-14s invalid: %s
" name e
        | Ok fase ->
            if Ido_analysis.Fase.has_fase fase then begin
              let plan = Ido_instrument.Instrument.region_plan f in
              let required =
                List.length
                  (List.filter
                     (fun (c : Ido_analysis.Regions.cut) -> c.required)
                     plan.Ido_analysis.Regions.cuts)
              in
              Printf.printf
                "%-14s %2d regions (%d required, %d elidable), %d WAR pairs, %d hitting-set cuts
"
                name
                (List.length plan.Ido_analysis.Regions.cuts)
                required
                (List.length plan.Ido_analysis.Regions.cuts - required)
                plan.Ido_analysis.Regions.n_war_pairs
                plan.Ido_analysis.Regions.n_hitting
            end
            else Printf.printf "%-14s no FASEs
" name)
      program.Ido_ir.Ir.funcs
  in
  Cmd.v (Cmd.info "regions" ~doc) Term.(const run $ workload_arg)

let dump_cmd =
  let doc = "Print a workload's IR after instrumentation." in
  let run scheme workload =
    let program = Ido_workloads.Workload.named workload in
    let instrumented = Ido_instrument.Instrument.instrument scheme program in
    Format.printf "%a@." Ido_ir.Ir.pp_program instrumented
  in
  Cmd.v (Cmd.info "dump" ~doc) Term.(const run $ scheme_arg $ workload_arg)

let all_cmd =
  let doc = "Regenerate every table and figure." in
  let run scale jobs =
    with_jobs jobs (fun pool ->
        List.iter
          (fun (_, panel) ->
            print_string panel;
            print_newline ())
          (Figures.all ?pool scale))
  in
  Cmd.v (Cmd.info "all" ~doc) Term.(const run $ scale_arg $ jobs_arg)

let profile_cmd =
  let doc =
    "One observed run: per-event rollups (flushes, fences, log bytes, \
     boundaries, lock traffic) tagged by FASE, reconciled against the pmem \
     counters, written as JSON."
  in
  let out_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "out" ]
          ~doc:
            "Output path for the JSON record (default BENCH_obs.json, or \
             BENCH_opt.json under --opt)")
  in
  let run scheme workload threads ops seed opt out =
    let out =
      match out with
      | Some o -> o
      | None -> if opt then "BENCH_opt.json" else "BENCH_obs.json"
    in
    let program = Ido_workloads.Workload.named workload in
    let p = Exp.profile ~seed ~scheme ~threads ~total_ops:ops ~opt program in
    let r = p.Exp.prun in
    let roll = p.Exp.rollup in
    let per_op n = float_of_int n /. float_of_int (max 1 r.Exp.ops) in
    let consistency =
      match p.Exp.consistency with Ok () -> "ok" | Error m -> m
    in
    let oc = open_out out in
    Printf.fprintf oc
      "{\n\
      \  \"scheme\": %S,\n\
      \  \"workload\": %S,\n\
      \  \"threads\": %d,\n\
      \  \"opt\": %b,\n\
      \  \"ops\": %d,\n\
      \  \"sim_ns\": %d,\n\
      \  \"mops\": %.3f,\n\
      \  \"fases\": %d,\n\
      \  \"rollup\": %s,\n\
      \  \"per_op\": {\"flushes\": %.3f, \"fences\": %.3f, \"log_bytes\": \
       %.1f},\n\
      \  \"consistency\": %S\n\
       }\n"
      (Scheme.name scheme) workload threads opt r.Exp.ops r.Exp.sim_ns
      r.Exp.mops p.Exp.fases
      (Ido_obs.Obs.rollup_to_json roll)
      (per_op roll.Ido_obs.Obs.flushes)
      (per_op roll.Ido_obs.Obs.fences)
      (per_op roll.Ido_obs.Obs.log_bytes)
      consistency;
    close_out oc;
    Printf.printf
      "%s on %s, %d threads: %d ops, %d FASEs; %.2f flushes/op, %.2f \
       fences/op, %.1f log bytes/op; obs/counters %s; wrote %s\n"
      (Scheme.name scheme) workload threads r.Exp.ops p.Exp.fases
      (per_op roll.Ido_obs.Obs.flushes)
      (per_op roll.Ido_obs.Obs.fences)
      (per_op roll.Ido_obs.Obs.log_bytes)
      (match p.Exp.consistency with
      | Ok () -> "consistent"
      | Error m -> "MISMATCH: " ^ m)
      out;
    if p.Exp.consistency <> Ok () then exit 1
  in
  Cmd.v
    (Cmd.info "profile" ~doc)
    Term.(
      const run $ scheme_arg $ workload_arg $ threads_arg $ ops_arg $ seed_arg
      $ opt_arg $ out_arg)

(* Minimal float-field scanner for the baseline record (the harness's
   [Spec.Fields] parses ints and strings only). *)
let float_field text key =
  let pat = Printf.sprintf {|"%s":|} key in
  let n = String.length text and pn = String.length pat in
  let rec scan i =
    if i + pn > n then None
    else if String.sub text i pn = pat then begin
      let j = ref (i + pn) in
      while !j < n && (text.[!j] = ' ' || text.[!j] = '\t') do incr j done;
      let s = !j in
      while
        !j < n
        && (text.[!j] = '-' || text.[!j] = '.'
           || (text.[!j] >= '0' && text.[!j] <= '9'))
      do
        incr j
      done;
      if !j = s then None else float_of_string_opt (String.sub text s (!j - s))
    end
    else scan (i + 1)
  in
  scan 0

type baseline = {
  b_explore : float;
  b_fig7 : float;
  b_jobs : int;  (** domains the recorded parallel cells actually used *)
  b_domains : int;  (** recommended_domains of the recording host *)
}

let read_baseline path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () ->
      let text = really_input_string ic (in_channel_length ic) in
      let int_field key ~default =
        match float_field text key with
        | Some v -> int_of_float v
        | None -> default
      in
      match
        (float_field text "explore_speedup", float_field text "fig7_quick_speedup")
      with
      | Some e, Some f ->
          {
            b_explore = e;
            b_fig7 = f;
            b_jobs = int_field "jobs" ~default:1;
            b_domains = int_field "recommended_domains" ~default:1;
          }
      | _ ->
          Printf.eprintf "selftime: baseline %s lacks speedup fields\n" path;
          exit 2)

let selftime_cmd =
  let doc =
    "Time the drivers serial vs parallel and write the results as JSON \
     (the CI drivers benchmark).  With --baseline, the record is still \
     regenerated first, then the run fails (exit 1) if either speedup \
     regressed below tolerance x the recorded value; if either the \
     baseline or the current run is single-domain the comparison is \
     vacuous and the run exits 2 instead of pretending it gated anything."
  in
  let out_arg =
    Arg.(
      value
      & opt string "BENCH_drivers.json"
      & info [ "out" ] ~doc:"Output path for the JSON record")
  in
  let budget_arg =
    Arg.(
      value & opt int 120
      & info [ "budget" ] ~doc:"Crash-injection budget for the explore timing")
  in
  let baseline_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "baseline" ]
          ~doc:
            "Compare against the speedups recorded in this JSON file \
             (typically the committed BENCH_drivers.json; read before \
             --out overwrites it)")
  in
  let tolerance_arg =
    Arg.(
      value & opt float 0.8
      & info [ "tolerance" ]
          ~doc:
            "Fraction of the baseline speedup that still passes (timing \
             noise allowance)")
  in
  let run jobs out budget baseline tolerance =
    (* Read the baseline before timing: --out usually points at the
       same file. *)
    let recorded = Option.map read_baseline baseline in
    let time f =
      let t0 = Unix.gettimeofday () in
      ignore (f ());
      Unix.gettimeofday () -. t0
    in
    let spec =
      Ido_check.Engine.defaults ~scheme:Scheme.Ido ~workload:"queue" ()
    in
    Printf.eprintf "selftime: explore budget=%d serial...\n%!" budget;
    let explore_serial =
      time (fun () -> Ido_check.Engine.explore spec ~budget)
    in
    (* Per-cell domain counts come from the pool each cell actually ran
       under, not from the -j request: the record stays honest when -j 1
       (or a 1-domain host) silently degrades a cell to serial. *)
    let explore_jobs = ref 1 and fig7_jobs = ref 1 in
    let note cell pool =
      match pool with
      | Some p -> cell := Ido_util.Pool.size p
      | None -> cell := 1
    in
    Printf.eprintf "selftime: explore budget=%d -j %d...\n%!" budget jobs;
    let explore_par =
      time (fun () ->
          with_jobs jobs (fun pool ->
              note explore_jobs pool;
              Ido_check.Engine.explore ?pool spec ~budget))
    in
    Printf.eprintf "selftime: fig7 quick serial...\n%!";
    let fig7_serial = time (fun () -> Figures.fig7 Exp.Quick) in
    Printf.eprintf "selftime: fig7 quick -j %d...\n%!" jobs;
    let fig7_par =
      time (fun () ->
          with_jobs jobs (fun pool ->
              note fig7_jobs pool;
              Figures.fig7 ?pool Exp.Quick))
    in
    let speedup a b = a /. Float.max 1e-9 b in
    let oc = open_out out in
    Printf.fprintf oc
      "{\n\
      \  \"jobs\": %d,\n\
      \  \"recommended_domains\": %d,\n\
      \  \"explore_budget\": %d,\n\
      \  \"explore_jobs\": %d,\n\
      \  \"explore_serial_s\": %.3f,\n\
      \  \"explore_parallel_s\": %.3f,\n\
      \  \"explore_speedup\": %.2f,\n\
      \  \"fig7_quick_jobs\": %d,\n\
      \  \"fig7_quick_serial_s\": %.3f,\n\
      \  \"fig7_quick_parallel_s\": %.3f,\n\
      \  \"fig7_quick_speedup\": %.2f\n\
       }\n"
      jobs
      (Ido_util.Pool.default_jobs ())
      budget !explore_jobs explore_serial explore_par
      (speedup explore_serial explore_par)
      !fig7_jobs fig7_serial fig7_par
      (speedup fig7_serial fig7_par);
    close_out oc;
    let explore_x = speedup explore_serial explore_par in
    let fig7_x = speedup fig7_serial fig7_par in
    Printf.printf "wrote %s: explore %.2fx, fig7 %.2fx at -j %d\n" out
      explore_x fig7_x jobs;
    match recorded with
    | None -> ()
    | Some base ->
        (* A speedup gate over a serial run measures scheduling noise,
           not the scheduler.  Surface that as its own exit status (2)
           so CI can warn instead of green-lighting a vacuous pass. *)
        let current_jobs = max !explore_jobs !fig7_jobs in
        if current_jobs <= 1 || Ido_util.Pool.default_jobs () <= 1 then begin
          Printf.eprintf
            "selftime: baseline comparison is vacuous: this run had no real \
             parallelism (used %d domain(s) on a host recommending %d) — \
             rerun with -j >= 2 on a multi-core host\n"
            current_jobs
            (Ido_util.Pool.default_jobs ());
          exit 2
        end;
        if base.b_jobs <= 1 || base.b_domains <= 1 then begin
          Printf.eprintf
            "selftime: baseline comparison is vacuous: the recorded \
             baseline was single-domain (jobs=%d, recommended_domains=%d) \
             — re-record it with -j >= 2 before gating on speedups\n"
            base.b_jobs base.b_domains;
          exit 2
        end;
        let check name got base =
          if got < base *. tolerance then begin
            Printf.eprintf
              "selftime: %s speedup regressed: %.2fx < %.2f x recorded \
               %.2fx (re-record the baseline only if the slowdown is \
               intended)\n"
              name got tolerance base;
            false
          end
          else true
        in
        let ok_explore = check "explore" explore_x base.b_explore in
        let ok_fig7 = check "fig7-quick" fig7_x base.b_fig7 in
        if not (ok_explore && ok_fig7) then exit 1
  in
  Cmd.v
    (Cmd.info "selftime" ~doc)
    Term.(
      const run $ jobs_arg $ out_arg $ budget_arg $ baseline_arg
      $ tolerance_arg)

(* Config construction is where usage validation lives (Zipf
   exponents, topology shapes, list flags): surface those
   Invalid_argument diagnostics as exit 2, never a backtrace. *)
let usage_guard f =
  try f ()
  with Invalid_argument msg ->
    Printf.eprintf "ido_bench: %s\n" msg;
    exit 2

let resolve_topology name =
  match Ido_serve.Topology.of_name name with
  | Ok t -> t
  | Error msg ->
      Printf.eprintf "ido_bench: %s\n" msg;
      exit 2

let serve_cmd =
  let doc =
    "Sharded request-serving benchmark over a declarative sweep: a seeded \
     open-loop generator streams requests by key hash to per-group \
     machines (nothing is materialised; latencies feed a constant-memory \
     quantile sketch); reports throughput and p50/p95/p99/max request \
     latency per (scheme x topology x batch) cell, with obs/counter \
     reconciliation on every machine.  --storm runs the fault matrix \
     instead: each cell is served under a deterministic single crash and \
     a correlated crash storm, with failover/resharding accounting and a \
     per-cell SLA verdict (recovery stall vs --sla budget).  Output is \
     byte-identical at every -j and --chunk.  BENCH_SCALE=full appends a \
     10M-request hmap/ido cell that runs in bounded RSS."
  in
  let out_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "out" ]
          ~doc:
            "Output path for the JSON record (default BENCH_serve.json; \
             BENCH_serve_opt.json under --opt; BENCH_serve_elastic.json \
             under --storm)")
  in
  let requests_arg =
    Arg.(
      value & opt int 2000
      & info [ "requests" ] ~doc:"Requests per cell (open-loop stream length)")
  in
  let period_arg =
    Arg.(
      value & opt int 1500
      & info [ "period" ] ~doc:"Mean inter-arrival gap (simulated ns)")
  in
  let uniform_arg =
    Arg.(
      value & flag
      & info [ "uniform" ] ~doc:"Uniform keys instead of Zipfian")
  in
  let zipf_arg =
    Arg.(
      value & opt float 0.99
      & info [ "zipf" ]
          ~doc:
            "Zipf exponent for the key distribution (must be positive and \
             not 1.0; ignored under --uniform)")
  in
  let schemes_arg =
    Term.(
      const (List.map resolve_scheme)
      $ Arg.(
          value
          & opt (list string) [ "ido"; "justdo" ]
          & info [ "schemes" ] ~doc:"Comma-separated scheme list"))
  in
  let topologies_arg =
    Term.(
      const (Option.map (List.map resolve_topology))
      $ Arg.(
          value
          & opt (some (list string)) None
          & info [ "topologies" ]
              ~doc:
                "Comma-separated topology list (s<groups>[r<replicas>]\
                 [sp|mg], e.g. s4,s4r1,s4sp); default s1,s4 — or s4,s4r1 \
                 under --storm"))
  in
  let batches_arg =
    Arg.(
      value
      & opt (some (list int)) None
      & info [ "batches" ]
          ~doc:
            "Comma-separated batch sizes; default 1,8 — or 8 under --storm")
  in
  let storm_arg =
    Arg.(
      value & flag
      & info [ "storm" ]
          ~doc:
            "Serve every cell under the fault matrix (single crash + \
             correlated storm) and report per-cell SLA verdicts")
  in
  let sla_arg =
    Arg.(
      value & opt int 50_000
      & info [ "sla" ]
          ~doc:
            "Recovery budget (simulated ns): the largest single stall a \
             cell may incur and still pass its SLA verdict")
  in
  let chunk_arg =
    Arg.(
      value & opt int 1
      & info [ "chunk" ]
          ~doc:
            "Units per pool task within a cell (default 1: one task per \
             group unit; 0 = auto-size).  Cells are byte-identical at \
             every chunk size.")
  in
  let run workload seed requests period uniform zipf opt jobs chunk schemes
      topologies batches storm sla out =
    let out =
      match out with
      | Some o -> o
      | None ->
          if storm then "BENCH_serve_elastic.json"
          else if opt then "BENCH_serve_opt.json"
          else "BENCH_serve.json"
    in
    let topologies =
      match topologies with
      | Some ts -> ts
      | None ->
          usage_guard (fun () ->
              if storm then
                [
                  Ido_serve.Topology.static 4;
                  Ido_serve.Topology.replicated ~replicas:1 4;
                ]
              else [ Ido_serve.Topology.static 1; Ido_serve.Topology.static 4 ])
    in
    let batches =
      match batches with Some bs -> bs | None -> if storm then [ 8 ] else [ 1; 8 ]
    in
    let sweep_spec =
      {
        (Ido_serve.Sweep.default ~workload) with
        Ido_serve.Sweep.seed;
        requests;
        period_ns = period;
        zipf = (if uniform then None else Some zipf);
        opt;
        schemes;
        topologies;
        batches;
      }
    in
    let configs = usage_guard (fun () -> Ido_serve.Sweep.cells sweep_spec) in
    with_jobs jobs (fun pool ->
        let faults config =
          if storm then
            usage_guard (fun () ->
                [
                  Ido_serve.Fault.single_crash config;
                  Ido_serve.Fault.storm config;
                ])
          else [ Ido_serve.Fault.none ]
        in
        let sweep =
          List.concat_map
            (fun config ->
              List.map
                (fun fault ->
                  Ido_serve.Serve.run_cell ?pool ~chunk ~obs:true ~fault
                    config)
                (faults config))
            configs
        in
        (* BENCH_SCALE=full: one 10M-request cell — the constant-memory
           acceptance run (streaming generator + sketch + arena
           recycling keep RSS flat; CI pins it with ulimit -v).  hmap
           updates keys in place, so its region footprint is bounded by
           the key range, not the request count.  No obs sink: the
           sweep cells above already reconcile every scheme, and the
           per-event hook would dominate host time at this scale. *)
        let scale_cells =
          match Sys.getenv_opt "BENCH_SCALE" with
          | Some "full" ->
              let spec =
                {
                  sweep_spec with
                  Ido_serve.Sweep.workload = "hmap";
                  requests = 10_000_000;
                  schemes = [ Scheme.Ido ];
                  topologies = [ Ido_serve.Topology.static 4 ];
                  batches = [ 8 ];
                }
              in
              List.map
                (fun config -> Ido_serve.Serve.run_cell ?pool ~chunk config)
                (usage_guard (fun () -> Ido_serve.Sweep.cells spec))
          | _ -> []
        in
        let cells = sweep @ scale_cells in
        print_string (Ido_serve.Report.render cells);
        print_newline ();
        if storm then
          print_endline (Ido_serve.Report.sla_verdicts ~budget_ns:sla cells);
        let oc = open_out out in
        output_string oc (Ido_serve.Report.to_json cells);
        output_char oc '\n';
        close_out oc;
        let bad c =
          c.Ido_serve.Serve.oracle <> Ok ()
          || c.Ido_serve.Serve.consistency <> Ok ()
        in
        Printf.printf "wrote %s (%d cells)\n" out (List.length cells);
        (* The paper-consistent ordering, restated as queueing: on
           every matched fault-free (topology x batch) cell, JUSTDO's
           log-everything critical sections must stretch the tail
           beyond iDO's.  CI greps for the "ok" verdict.  Vacuously ok
           when the scheme list doesn't pair ido with justdo. *)
        let p99 scheme topology batch =
          List.find_map
            (fun c ->
              let g = c.Ido_serve.Serve.config in
              if
                g.Ido_serve.Config.scheme = scheme
                && g.Ido_serve.Config.topology = topology
                && g.Ido_serve.Config.batch = batch
                && c.Ido_serve.Serve.fault.Ido_serve.Fault.label = "none"
              then Some c.Ido_serve.Serve.stats.Ido_serve.Lat.p99
              else None)
            sweep
        in
        let pairs =
          List.concat_map
            (fun t -> List.map (fun b -> (t, b)) batches)
            topologies
        in
        let matched, ordered =
          List.fold_left
            (fun (m, o) (t, b) ->
              match (p99 Scheme.Justdo t b, p99 Scheme.Ido t b) with
              | Some j, Some i -> (m + 1, if j > i then o + 1 else o)
              | _ -> (m, o))
            (0, 0) pairs
        in
        Printf.printf "tail ordering: %s (justdo p99 > ido p99 on %d/%d cells)\n"
          (if ordered = matched then "ok" else "INVERTED")
          ordered matched;
        if List.exists bad cells then begin
          prerr_endline "ido_bench serve: oracle or obs reconciliation failure";
          exit 1
        end)
  in
  Cmd.v
    (Cmd.info "serve" ~doc)
    Term.(
      const run
      $ Term.(
          const resolve_workload
          $ Arg.(
              value & opt string "kvcache50"
              & info [ "workload" ] ~doc:"Served workload"))
      $ seed_arg $ requests_arg $ period_arg $ uniform_arg $ zipf_arg
      $ opt_arg $ jobs_arg $ chunk_arg $ schemes_arg $ topologies_arg
      $ batches_arg $ storm_arg $ sla_arg $ out_arg)

let () =
  let cmds =
    [
      figure_cmd "fig5" "Memcached-like throughput (Fig. 5)" Figures.fig5;
      figure_cmd "fig6" "Redis-like throughput (Fig. 6)" Figures.fig6;
      figure_cmd "fig7" "Microbenchmark scalability (Fig. 7)" Figures.fig7;
      figure_cmd "fig8" "Region characteristics (Fig. 8)" Figures.fig8;
      figure_cmd "table1" "Recovery time ratios (Table I)" Figures.table1;
      figure_cmd "fig9" "NVM latency sensitivity (Fig. 9)" Figures.fig9;
      figure_cmd "table2" "System properties (Table II)"
        (fun ?pool:_ _ -> Figures.table2 ());
      figure_cmd "ablation" "Design-choice and machine-model ablations" Figures.ablation;
      run_cmd;
      crash_cmd;
      trace_cmd;
      regions_cmd;
      dump_cmd;
      all_cmd;
      profile_cmd;
      selftime_cmd;
      serve_cmd;
    ]
  in
  let info = Cmd.info "ido_bench" ~doc:"iDO reproduction experiment driver" in
  (* A scheme log overflowing its fixed capacity is a bounded-resource
     verdict on the requested run, not a driver crash: render the
     typed diagnostic instead of a backtrace. *)
  exit
    (try Cmd.eval ~catch:false (Cmd.group info cmds)
     with
     | Sys_error msg ->
         (* Unreadable --baseline / unwritable --out: a usage problem,
            one line on stderr and exit 2, never a backtrace. *)
         Printf.eprintf "ido_bench: %s\n" msg;
         2
     | Lognode.Log_overflow ov ->
       Printf.eprintf "ido_bench: %s\n"
         (Ido_analysis.Diag.render
            (Ido_analysis.Diag.vf ~func:"runtime" ~code:"R601"
               "%s: %s log overflow on thread %d (capacity %d)"
               ov.Lognode.scheme ov.Lognode.log ov.Lognode.tid
               ov.Lognode.capacity));
       3)
