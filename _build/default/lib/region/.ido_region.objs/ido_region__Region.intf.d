lib/region/region.mli: Ido_nvm Pmem
