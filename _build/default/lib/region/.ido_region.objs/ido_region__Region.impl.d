lib/region/region.ml: Ido_nvm Int64 Pmem
