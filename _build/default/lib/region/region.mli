(** Persistent region manager.

    iDO borrows Atlas's region manager (Sec. IV-C): a persistent region
    is mapped into the address space and supports [nv_malloc]-style
    allocation plus a small directory of named roots through which
    programs rediscover their data after a restart.  This module
    implements that manager over {!Ido_nvm.Pmem}: a fixed header holds
    a magic word, a running/clean flag (crash detection), the heap
    metadata, the head of the persistent iDO-log list, and a table of
    root slots.

    Allocator metadata (bump pointer, free list, block headers) lives
    {e in} persistent memory and is explicitly written back, so it
    survives crashes.  A crash between the allocation of a block and
    the linking of that block into a data structure can leak the block
    — the same benign leak Atlas/Makalu accept — but can never corrupt
    the heap. *)

open Ido_nvm

type t

val root_slots : int
(** Number of named root slots (16). *)

val heap_base : Pmem.addr
(** First heap word; addresses below it are the region header. *)

val create : Pmem.t -> t
(** Format a fresh region (writes and persists the header). *)

val open_existing : Pmem.t -> t
(** Attach to an already-formatted region, e.g. after a crash.
    @raise Invalid_argument if the magic word is absent. *)

val was_dirty : t -> bool
(** True when the region was not cleanly closed — i.e. the previous
    execution crashed and recovery is required. *)

val mark_running : t -> unit
(** Set the dirty flag (persisted); call before mutating the heap. *)

val mark_clean : t -> unit
(** Clear the dirty flag (persisted); call at clean shutdown and at
    the end of successful recovery. *)

val pmem : t -> Pmem.t

val alloc : t -> int -> Pmem.addr
(** [alloc t n] returns the base of [n] (> 0) fresh words.  First-fit
    over the persistent free list, falling back to bump allocation.
    @raise Failure when the region is exhausted. *)

val free : t -> Pmem.addr -> unit
(** Return a block obtained from [alloc] to the free list. *)

val block_size : t -> Pmem.addr -> int
(** Payload size of an allocated block. *)

val get_root : t -> int -> int64
val set_root : t -> int -> int64 -> unit
(** Persistent named roots, index in [\[0, root_slots)].  [set_root]
    writes back and fences. *)

val log_head : t -> int64
val set_log_head : t -> int64 -> unit
(** Head of the persistent per-thread log list (Fig. 3). *)

val words_allocated : t -> int
(** Total heap words handed out since formatting (diagnostic). *)
