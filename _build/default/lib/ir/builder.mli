(** Imperative construction of {!Ir.func} values.

    The builder hands out fresh virtual registers and block handles,
    tracks an insertion point, and offers structured [if_]/[while_]
    combinators so that workload programs read like source code.  Every
    block must be terminated exactly once; [finish] checks this. *)

open Ir

type t

val create : name:string -> nparams:int -> t * reg list
(** Start a function.  Returns the builder and the parameter
    registers.  The entry block exists and is the insertion point. *)

val fresh : t -> reg
(** A fresh virtual register. *)

type blabel
(** Handle for a declared block. *)

val block : t -> string -> blabel
(** Declare (but do not enter) a new block. *)

val switch_to : t -> blabel -> unit
(** Move the insertion point to the start of [blabel] (which must not
    already be terminated). *)

(** {1 Instruction emission} — all emit at the insertion point. *)

val bin : t -> binop -> operand -> operand -> reg
val mov : t -> operand -> reg

val assign : t -> reg -> operand -> unit
(** [assign b r op] writes [op] into the {e existing} register [r] —
    the way to update loop-carried variables. *)

(** [assign_bin b r op a c] is [r <- a op c] into an existing
    register. *)
val assign_bin : t -> reg -> binop -> operand -> operand -> unit
val load : t -> space -> operand -> int -> reg
val store : t -> space -> operand -> int -> operand -> unit
val alloca : t -> int -> reg
val lock : t -> operand -> unit
val unlock : t -> operand -> unit
val durable_begin : t -> unit
val durable_end : t -> unit
val call : t -> string -> operand list -> reg
val call_void : t -> string -> operand list -> unit
val intr : t -> intrinsic -> operand list -> reg
val intr_void : t -> intrinsic -> operand list -> unit

(** {1 Terminators} *)

val br : t -> blabel -> unit
val cbr : t -> operand -> blabel -> blabel -> unit
val ret : t -> operand option -> unit

(** {1 Structured control flow} *)

val if_ : t -> operand -> then_:(unit -> unit) -> else_:(unit -> unit) -> unit
(** [if_ b cond ~then_ ~else_] emits a diamond; both branches join at a
    fresh block which becomes the insertion point.  Branch bodies must
    not terminate the current block themselves unless they diverge
    (e.g. [ret]); a non-terminated branch falls through to the join. *)

val while_ : t -> cond:(unit -> operand) -> body:(unit -> unit) -> unit
(** [while_ b ~cond ~body]: evaluates [cond] in a fresh header block,
    runs [body] while it is nonzero; insertion point ends at the exit
    block. *)

val finish : t -> func
(** Seal the function.
    @raise Failure if any declared block lacks a terminator. *)
