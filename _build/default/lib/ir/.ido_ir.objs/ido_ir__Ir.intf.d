lib/ir/ir.mli: Format
