lib/ir/builder.ml: Array Ir List Printf
