lib/ir/ir.ml: Array Format List Printf String
