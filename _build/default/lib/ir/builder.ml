open Ir

type blabel = int

type proto_block = {
  p_label : string;
  mutable p_instrs : instr list;  (* reversed *)
  mutable p_term : terminator option;
}

type t = {
  fname : string;
  params : reg list;
  mutable next_reg : int;
  mutable blocks : proto_block array;
  mutable nblocks : int;
  mutable cursor : int;  (* insertion block *)
}

let add_block t label =
  let pb = { p_label = label; p_instrs = []; p_term = None } in
  if t.nblocks = Array.length t.blocks then begin
    let a = Array.make (2 * t.nblocks) pb in
    Array.blit t.blocks 0 a 0 t.nblocks;
    t.blocks <- a
  end;
  t.blocks.(t.nblocks) <- pb;
  t.nblocks <- t.nblocks + 1;
  t.nblocks - 1

let create ~name ~nparams =
  let params = List.init nparams (fun i -> i) in
  let t =
    {
      fname = name;
      params;
      next_reg = nparams;
      blocks = Array.make 8 { p_label = ""; p_instrs = []; p_term = None };
      nblocks = 0;
      cursor = 0;
    }
  in
  let entry = add_block t "entry" in
  t.cursor <- entry;
  (t, params)

let fresh t =
  let r = t.next_reg in
  t.next_reg <- r + 1;
  r

let block t label = add_block t label

let current t = t.blocks.(t.cursor)

let switch_to t b =
  if b < 0 || b >= t.nblocks then invalid_arg "Builder.switch_to";
  (match t.blocks.(b).p_term with
  | Some _ -> invalid_arg "Builder.switch_to: block already terminated"
  | None -> ());
  t.cursor <- b

let emit t i =
  let pb = current t in
  (match pb.p_term with
  | Some _ -> invalid_arg "Builder: emitting into a terminated block"
  | None -> ());
  pb.p_instrs <- i :: pb.p_instrs

let terminate t term =
  let pb = current t in
  match pb.p_term with
  | Some _ -> invalid_arg "Builder: block already terminated"
  | None -> pb.p_term <- Some term

let bin t op a b =
  let d = fresh t in
  emit t (Bin (d, op, a, b));
  d

let mov t a =
  let d = fresh t in
  emit t (Mov (d, a));
  d

let assign t r a = emit t (Mov (r, a))

let assign_bin t r op a b = emit t (Bin (r, op, a, b))

let load t space base off =
  let d = fresh t in
  emit t (Load { dst = d; space; base; off });
  d

let store t space base off src = emit t (Store { space; base; off; src })

let alloca t n =
  let d = fresh t in
  emit t (Alloca (d, n));
  d

let lock t a = emit t (Lock a)
let unlock t a = emit t (Unlock a)
let durable_begin t = emit t Durable_begin
let durable_end t = emit t Durable_end

let call t func args =
  let d = fresh t in
  emit t (Call { dst = Some d; func; args });
  d

let call_void t func args = emit t (Call { dst = None; func; args })

let intr t intr_ args =
  let d = fresh t in
  emit t (Intrinsic { dst = Some d; intr = intr_; args });
  d

let intr_void t intr_ args =
  emit t (Intrinsic { dst = None; intr = intr_; args })

let br t b = terminate t (Br b)
let cbr t c a b = terminate t (Cbr (c, a, b))
let ret t o = terminate t (Ret o)

let terminated t = (current t).p_term <> None

let if_ t cond ~then_ ~else_ =
  let bt = block t "then" in
  let bf = block t "else" in
  let bj = block t "join" in
  cbr t cond bt bf;
  switch_to t bt;
  then_ ();
  if not (terminated t) then br t bj;
  switch_to t bf;
  else_ ();
  if not (terminated t) then br t bj;
  switch_to t bj

let while_ t ~cond ~body =
  let bh = block t "while_head" in
  let bb = block t "while_body" in
  let bx = block t "while_exit" in
  br t bh;
  switch_to t bh;
  let c = cond () in
  cbr t c bb bx;
  switch_to t bb;
  body ();
  if not (terminated t) then br t bh;
  switch_to t bx

let finish t =
  let blocks =
    Array.init t.nblocks (fun i ->
        let pb = t.blocks.(i) in
        match pb.p_term with
        | None ->
            failwith
              (Printf.sprintf "Builder.finish: block %s of %s not terminated"
                 pb.p_label t.fname)
        | Some term ->
            {
              label = pb.p_label;
              instrs = Array.of_list (List.rev pb.p_instrs);
              term;
            })
  in
  { name = t.fname; params = t.params; blocks; nregs = t.next_reg }
