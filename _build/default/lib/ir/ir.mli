(** The intermediate representation.

    The paper's compiler operates on LLVM IR; this module is our
    stand-in: a small register-machine IR with explicit control flow,
    virtual registers holding 64-bit integers, separate persistent /
    transient / stack address spaces, lock operations (from which FASEs
    are inferred), programmer-delineated durable regions, and
    instrumentation {e hooks} that the scheme-specific passes insert
    and the VM interprets.

    Programs written by hand (or by the workload builders) contain no
    hooks; instrumented programs are ordinary programs plus hooks, so
    they can be printed, validated and diffed like any other IR. *)

type reg = int
(** Virtual register; an infinite register file of [int64] values. *)

type space =
  | Persistent  (** words in the NVM region (heap + roots) *)
  | Transient  (** volatile DRAM words, lost at a crash *)
  | Stack
      (** per-thread stack slots; placed in NVM under iDO and JUSTDO
          (Sec. V), in DRAM otherwise *)

type operand = Reg of reg | Imm of int64

type binop =
  | Add | Sub | Mul | Div | Rem
  | And | Or | Xor | Shl | Shr
  | Eq | Ne | Lt | Le | Gt | Ge

(** Runtime intrinsics.  [Rand] and [Observe] are non-idempotent and
    therefore (checked by {!Validate}) forbidden inside FASEs. *)
type intrinsic =
  | Rand  (** [dst <- rand bound]: uniform in [\[0, bound)] *)
  | Thread_id  (** [dst <- simulated thread id] *)
  | Nv_alloc  (** [dst <- nv_malloc nwords] *)
  | Nv_free  (** [nv_free addr] *)
  | Work  (** spin for [arg] nanoseconds; idempotent *)
  | Observe  (** append [arg] to the thread's observation list *)
  | Root_get  (** [dst <- region root slot\[arg\]] *)
  | Root_set  (** [root slot\[arg0\] <- arg1] (persisted) *)
  | Assert_nz  (** trap when [arg] is zero *)

(** Instrumentation hooks, inserted by {!Ido_instrument} passes and
    executed by the VM's scheme runtime.  User programs never contain
    hooks. *)
type hook =
  | Hregion of region_hook
      (** iDO idempotent-region boundary (Sec. III-A): persist the
          previous region's outputs and the registers live into the
          next region, fence, advance [recovery_pc], fence. *)
  | Hfase_enter  (** outermost acquire: arm per-thread FASE state *)
  | Hfase_exit
      (** outermost release done: clear [recovery_pc], persist. *)
  | Hlock_acquired
      (** just after [Lock]: record the indirect lock holder in the
          thread's [lock_array] (iDO), or the ownership log (Atlas /
          JUSTDO). *)
  | Hlock_release of { outermost : bool }
      (** just before [Unlock]: clear the record (persisted before the
          unlock executes).  Under iDO, the clearing fence also carries
          the preceding boundary's recovery-pc update, and an
          [outermost] release clears the recovery pc itself — the
          "single memory fence" lock operations of Sec. III-B. *)
  | Hjustdo_store  (** before a persistent store: JUSTDO log + fence *)
  | Hundo_store  (** before a persistent store: UNDO entry + fence *)
  | Hredo_store  (** after a persistent store: append REDO entry *)
  | Htxn_begin  (** Mnemosyne transaction begin *)
  | Htxn_commit  (** Mnemosyne commit: validate, persist, apply *)
  | Hpage_log  (** NVThreads: page copy on first touch in the FASE *)
  | Hdurable_commit
      (** end of a programmer-delineated durable region for UNDO-style
          schemes: flush data, truncate log. *)

and region_hook = {
  region_id : int;  (** static id of the region this hook opens *)
  live_in : reg list;  (** registers live into the opened region *)
  out_regs : reg list;
      (** OutputSet of the {e closed} region: Def ∩ LiveOut (Eq. 1) *)
  skippable : bool;
      (** a lock-induced boundary: when the closed region performed no
          persistent store, the persist may be elided — resumption
          simply restarts from the previous boundary and re-executes
          the clean segment (reads, lock operations) idempotently *)
  at_release : bool;
      (** immediately precedes a lock release: the pc update defers to
          the release record's fence *)
}

type instr =
  | Bin of reg * binop * operand * operand
  | Mov of reg * operand
  | Load of { dst : reg; space : space; base : operand; off : int }
  | Store of { space : space; base : operand; off : int; src : operand }
  | Alloca of reg * int
      (** [dst <- address of n fresh stack words] in the current frame *)
  | Lock of operand  (** acquire the mutex whose id is the operand *)
  | Unlock of operand
  | Durable_begin  (** open a programmer-delineated FASE (Sec. II-B) *)
  | Durable_end
  | Call of { dst : reg option; func : string; args : operand list }
  | Intrinsic of { dst : reg option; intr : intrinsic; args : operand list }
  | Hook of hook

type terminator =
  | Br of int  (** unconditional branch to block index *)
  | Cbr of operand * int * int  (** if nonzero then first else second *)
  | Ret of operand option

type block = {
  label : string;
  mutable instrs : instr array;
  mutable term : terminator;
}

type func = {
  name : string;
  params : reg list;
  mutable blocks : block array;  (** entry is block 0 *)
  nregs : int;  (** registers are numbered [\[0, nregs)] *)
}

type program = { funcs : (string * func) list }

val find_func : program -> string -> func
(** @raise Not_found when absent. *)

(** {1 Positions}

    A position designates an instruction slot within a function:
    [(block, index)] with [index = Array.length instrs] denoting the
    terminator.  Recovery PCs are positions in the instrumented
    program, encoded as dense integers by {!Ido_vm.Image}. *)

type pos = { blk : int; idx : int }

val compare_pos : pos -> pos -> int

(** {1 Use/def} *)

val instr_uses : instr -> reg list
(** Registers read by an instruction (without duplicates). *)

val instr_defs : instr -> reg list
(** Registers written by an instruction. *)

val term_uses : terminator -> reg list

val successors : terminator -> int list

(** {1 Queries} *)

val is_hook : instr -> bool

val writes_memory : instr -> bool
(** True for stores and memory-writing intrinsics. *)

val fold_instrs : ('a -> pos -> instr -> 'a) -> 'a -> func -> 'a
(** Left fold over every instruction of every block, in layout order. *)

(** {1 Printing} *)

val pp_operand : Format.formatter -> operand -> unit
val pp_instr : Format.formatter -> instr -> unit
val pp_terminator : Format.formatter -> terminator -> unit
val pp_func : Format.formatter -> func -> unit
val pp_program : Format.formatter -> program -> unit
