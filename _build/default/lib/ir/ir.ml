type reg = int

type space = Persistent | Transient | Stack

type operand = Reg of reg | Imm of int64

type binop =
  | Add | Sub | Mul | Div | Rem
  | And | Or | Xor | Shl | Shr
  | Eq | Ne | Lt | Le | Gt | Ge

type intrinsic =
  | Rand
  | Thread_id
  | Nv_alloc
  | Nv_free
  | Work
  | Observe
  | Root_get
  | Root_set
  | Assert_nz

type hook =
  | Hregion of region_hook
  | Hfase_enter
  | Hfase_exit
  | Hlock_acquired
  | Hlock_release of { outermost : bool }
  | Hjustdo_store
  | Hundo_store
  | Hredo_store
  | Htxn_begin
  | Htxn_commit
  | Hpage_log
  | Hdurable_commit

and region_hook = {
  region_id : int;
  live_in : reg list;
  out_regs : reg list;
  skippable : bool;
  at_release : bool;
}

type instr =
  | Bin of reg * binop * operand * operand
  | Mov of reg * operand
  | Load of { dst : reg; space : space; base : operand; off : int }
  | Store of { space : space; base : operand; off : int; src : operand }
  | Alloca of reg * int
  | Lock of operand
  | Unlock of operand
  | Durable_begin
  | Durable_end
  | Call of { dst : reg option; func : string; args : operand list }
  | Intrinsic of { dst : reg option; intr : intrinsic; args : operand list }
  | Hook of hook

type terminator =
  | Br of int
  | Cbr of operand * int * int
  | Ret of operand option

type block = {
  label : string;
  mutable instrs : instr array;
  mutable term : terminator;
}

type func = {
  name : string;
  params : reg list;
  mutable blocks : block array;
  nregs : int;
}

type program = { funcs : (string * func) list }

let find_func p name = List.assoc name p.funcs

type pos = { blk : int; idx : int }

let compare_pos a b =
  match compare a.blk b.blk with 0 -> compare a.idx b.idx | c -> c

let operand_uses = function Reg r -> [ r ] | Imm _ -> []

let dedup l = List.sort_uniq compare l

let instr_uses = function
  | Bin (_, _, a, b) -> dedup (operand_uses a @ operand_uses b)
  | Mov (_, a) -> operand_uses a
  | Load { base; _ } -> operand_uses base
  | Store { base; src; _ } -> dedup (operand_uses base @ operand_uses src)
  | Alloca _ -> []
  | Lock a | Unlock a -> operand_uses a
  | Durable_begin | Durable_end -> []
  | Call { args; _ } | Intrinsic { args; _ } ->
      dedup (List.concat_map operand_uses args)
  | Hook (Hregion { live_in; out_regs; _ }) -> dedup (live_in @ out_regs)
  | Hook _ -> []

let instr_defs = function
  | Bin (d, _, _, _) | Mov (d, _) | Load { dst = d; _ } | Alloca (d, _) -> [ d ]
  | Store _ | Lock _ | Unlock _ | Durable_begin | Durable_end -> []
  | Call { dst; _ } | Intrinsic { dst; _ } -> (
      match dst with Some d -> [ d ] | None -> [])
  | Hook _ -> []

let term_uses = function
  | Br _ -> []
  | Cbr (c, _, _) -> operand_uses c
  | Ret (Some o) -> operand_uses o
  | Ret None -> []

let successors = function
  | Br b -> [ b ]
  | Cbr (_, a, b) -> if a = b then [ a ] else [ a; b ]
  | Ret _ -> []

let is_hook = function Hook _ -> true | _ -> false

let writes_memory = function
  | Store _ -> true
  | Intrinsic { intr = Nv_alloc | Nv_free | Root_set; _ } -> true
  | _ -> false

let fold_instrs f acc func =
  let acc = ref acc in
  Array.iteri
    (fun b block ->
      Array.iteri
        (fun i instr -> acc := f !acc { blk = b; idx = i } instr)
        block.instrs)
    func.blocks;
  !acc

(* -------------------------------------------------------------------- *)
(* Printing *)

let binop_name = function
  | Add -> "add" | Sub -> "sub" | Mul -> "mul" | Div -> "div" | Rem -> "rem"
  | And -> "and" | Or -> "or" | Xor -> "xor" | Shl -> "shl" | Shr -> "shr"
  | Eq -> "eq" | Ne -> "ne" | Lt -> "lt" | Le -> "le" | Gt -> "gt" | Ge -> "ge"

let space_name = function
  | Persistent -> "nvm"
  | Transient -> "dram"
  | Stack -> "stk"

let intrinsic_name = function
  | Rand -> "rand"
  | Thread_id -> "thread_id"
  | Nv_alloc -> "nv_alloc"
  | Nv_free -> "nv_free"
  | Work -> "work"
  | Observe -> "observe"
  | Root_get -> "root_get"
  | Root_set -> "root_set"
  | Assert_nz -> "assert_nz"

let hook_name = function
  | Hregion { region_id; _ } -> Printf.sprintf "region#%d" region_id
  | Hfase_enter -> "fase_enter"
  | Hfase_exit -> "fase_exit"
  | Hlock_acquired -> "lock_acquired"
  | Hlock_release { outermost } ->
      if outermost then "lock_release!" else "lock_release"
  | Hjustdo_store -> "justdo_store"
  | Hundo_store -> "undo_store"
  | Hredo_store -> "redo_store"
  | Htxn_begin -> "txn_begin"
  | Htxn_commit -> "txn_commit"
  | Hpage_log -> "page_log"
  | Hdurable_commit -> "durable_commit"

let pp_operand fmt = function
  | Reg r -> Format.fprintf fmt "r%d" r
  | Imm i -> Format.fprintf fmt "%Ld" i

let pp_regs fmt regs =
  Format.fprintf fmt "[%s]"
    (String.concat "," (List.map (fun r -> "r" ^ string_of_int r) regs))

let pp_instr fmt = function
  | Bin (d, op, a, b) ->
      Format.fprintf fmt "r%d = %s %a, %a" d (binop_name op) pp_operand a
        pp_operand b
  | Mov (d, a) -> Format.fprintf fmt "r%d = %a" d pp_operand a
  | Load { dst; space; base; off } ->
      Format.fprintf fmt "r%d = load.%s %a+%d" dst (space_name space)
        pp_operand base off
  | Store { space; base; off; src } ->
      Format.fprintf fmt "store.%s %a+%d, %a" (space_name space) pp_operand
        base off pp_operand src
  | Alloca (d, n) -> Format.fprintf fmt "r%d = alloca %d" d n
  | Lock a -> Format.fprintf fmt "lock %a" pp_operand a
  | Unlock a -> Format.fprintf fmt "unlock %a" pp_operand a
  | Durable_begin -> Format.fprintf fmt "durable_begin"
  | Durable_end -> Format.fprintf fmt "durable_end"
  | Call { dst; func; args } ->
      (match dst with
      | Some d -> Format.fprintf fmt "r%d = call %s(" d func
      | None -> Format.fprintf fmt "call %s(" func);
      List.iteri
        (fun i a ->
          if i > 0 then Format.fprintf fmt ", ";
          pp_operand fmt a)
        args;
      Format.fprintf fmt ")"
  | Intrinsic { dst; intr; args } ->
      (match dst with
      | Some d -> Format.fprintf fmt "r%d = @%s(" d (intrinsic_name intr)
      | None -> Format.fprintf fmt "@%s(" (intrinsic_name intr));
      List.iteri
        (fun i a ->
          if i > 0 then Format.fprintf fmt ", ";
          pp_operand fmt a)
        args;
      Format.fprintf fmt ")"
  | Hook (Hregion { region_id; live_in; out_regs; skippable; at_release }) ->
      Format.fprintf fmt "!region#%d%s%s live_in=%a out=%a" region_id
        (if skippable then "?" else "")
        (if at_release then "^" else "")
        pp_regs live_in pp_regs out_regs
  | Hook h -> Format.fprintf fmt "!%s" (hook_name h)

let pp_terminator fmt = function
  | Br b -> Format.fprintf fmt "br .%d" b
  | Cbr (c, a, b) -> Format.fprintf fmt "cbr %a, .%d, .%d" pp_operand c a b
  | Ret (Some o) -> Format.fprintf fmt "ret %a" pp_operand o
  | Ret None -> Format.fprintf fmt "ret"

let pp_func fmt f =
  Format.fprintf fmt "func %s(%s) {@." f.name
    (String.concat ", " (List.map (fun r -> "r" ^ string_of_int r) f.params));
  Array.iteri
    (fun b block ->
      Format.fprintf fmt "%s (.%d):@." block.label b;
      Array.iter (fun i -> Format.fprintf fmt "  %a@." pp_instr i) block.instrs;
      Format.fprintf fmt "  %a@." pp_terminator block.term)
    f.blocks;
  Format.fprintf fmt "}@."

let pp_program fmt p =
  List.iter (fun (_, f) -> Format.fprintf fmt "%a@." pp_func f) p.funcs
