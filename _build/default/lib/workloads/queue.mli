(** The two-lock Michael–Scott queue (Sec. V-B): independent head and
    tail locks with a permanent dummy node, allowing one enqueuer and
    one dequeuer to proceed concurrently.  Persistent enqueue/dequeue
    counters give the post-crash invariant
    [length(chain past dummy) = enqueues - dequeues]. *)

open Ido_ir

val program : unit -> Ir.program
(** Functions: [init], [worker(nops)] (50% enqueue / 50% dequeue),
    [check], plus [queue_enq]/[queue_deq]. *)
