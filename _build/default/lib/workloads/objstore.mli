(** Redis-like single-threaded object store (Sec. V-A).

    Redis's relevant properties for Fig. 6: a single server thread,
    programmer-delineated durable regions (the paper uses annotated
    FASEs because Redis takes no locks), long FASEs with relatively few
    persistent writes, a read path that performs no persistent writes
    at all, and search time that grows with database size.  The
    substitute is a chained hash table of multi-word objects with a
    fixed bucket count, driven by an 80% get / 20% put client whose
    key distribution is power-law-skewed (P(key < x) ∝ √x, matching
    lru_test's hot-key behaviour).

    Object payloads are 8 words holding [key + j] in word [j], so any
    torn or lost write is detectable ([check] and the get path both
    verify the checksum). *)

open Ido_ir

val payload_words : int

val program :
  ?buckets:int -> ?key_range:int -> ?prefill:int -> unit -> Ir.program
(** [init] inserts objects for the [prefill] hottest keys (default
    [key_range/10]); [worker(nops)] runs the 80/20 mix; [check]
    verifies every object's checksum and the global count.  Defaults:
    1024 buckets, 10_000 keys. *)
