(** Registry of the benchmark programs by name, for the CLI, tests and
    examples.  Every program follows the {!Wcommon} conventions
    ([init] / [worker(nops)] / [check]). *)

open Ido_ir

val names : string list
(** ["stack"; "queue"; "olist"; "olistrm"; "hmap"; "kvcache50";
    "kvcache10"; "objstore"; "mlog"] *)

val named : string -> Ir.program
(** @raise Invalid_argument for an unknown name. *)
