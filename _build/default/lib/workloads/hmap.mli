(** Fixed-size hash map whose buckets are hand-over-hand ordered lists
    (Sec. V-B): per-node locks give concurrency both across and within
    buckets with no per-bucket lock — the high-parallelism extreme
    that scales near-linearly under iDO (Fig. 7). *)

open Ido_ir

val program : ?buckets:int -> ?key_range:int -> unit -> Ir.program
(** [init] builds [buckets] (default 128) empty lists; [worker(nops)]
    does 50% get / 50% put over [key_range] (default 2048) keys routed
    by modulus; [check] validates and counts every bucket. *)
