(** Persistent bounded message log — a ring buffer of checksummed
    records under one lock, the "persistent log" usage pattern that
    dominates the WHISPER suite the paper draws its applications from.

    Appends write a whole multi-word record (sequence number, payload,
    checksum) plus the head cursor in one FASE — a dense multi-store
    region; consumes verify the checksum and advance the tail.  The
    post-crash invariants: [tail ≤ head], [head − tail ≤ capacity], and
    every record between the cursors checksums correctly. *)

open Ido_ir

val record_words : int

val program : ?capacity:int -> unit -> Ir.program
(** [init] formats an empty ring of [capacity] slots (default 64);
    [worker(nops)] runs 50% append / 50% consume; [check] validates
    cursors and checksums, observing the number of live records.
    Also exports [mlog_append(desc, v)] and [mlog_consume(desc)]. *)
