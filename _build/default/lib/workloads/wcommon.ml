open Ido_ir

let desc_root = 0

let alloc_node b n fields =
  let node = Builder.intr b Ir.Nv_alloc [ Ir.Imm (Int64.of_int n) ] in
  List.iter
    (fun (off, v) -> Builder.store b Ir.Persistent (Ir.Reg node) off v)
    fields;
  node

let get_root b slot = Builder.intr b Ir.Root_get [ Ir.Imm (Int64.of_int slot) ]

let set_root b slot v =
  Builder.intr_void b Ir.Root_set [ Ir.Imm (Int64.of_int slot); v ]

let observe b v = Builder.intr_void b Ir.Observe [ v ]
let assert_nz b v = Builder.intr_void b Ir.Assert_nz [ v ]

let assert_eq b x y =
  let e = Builder.bin b Ir.Eq x y in
  assert_nz b (Ir.Reg e)

let rand b bound = Builder.intr b Ir.Rand [ Ir.Imm (Int64.of_int bound) ]

let for_loop b n body =
  let i = Builder.mov b (Ir.Imm 0L) in
  Builder.while_ b
    ~cond:(fun () -> Ir.Reg (Builder.bin b Ir.Lt (Ir.Reg i) n))
    ~body:(fun () ->
      body i;
      Builder.assign_bin b i Ir.Add (Ir.Reg i) (Ir.Imm 1L))

let program funcs = { Ir.funcs }
