(** Locking variation on the Treiber stack (Sec. V-B).

    One descriptor lock serialises all operations — the
    low-parallelism extreme of the microbenchmark suite.  The
    descriptor carries a persistent size counter updated inside the
    FASE, giving the post-crash invariant [length(chain) = size]. *)

open Ido_ir

val program : unit -> Ir.program
(** Functions: [init], [worker(nops)] (50% push / 50% pop of random
    values), [check] (traps unless the chain length equals the size
    counter; observes the length), plus [stack_push]/[stack_pop]. *)
