(** Memcached-like key–value cache (Sec. V-A).

    Memcached 1.2.4 — the version used by the paper via the WHISPER
    suite — serialises cache operations under one coarse lock; that
    lock structure (and hence its scaling ceiling near 8 threads, and
    Mnemosyne's advantage on it) is what matters for Fig. 5, so the
    substitute keeps it: one global lock over a chained hash table.
    Set operations allocate and initialise entries inside the FASE,
    giving the multi-store idempotent regions that Fig. 8 reports for
    Memcached. *)

open Ido_ir

val program :
  ?buckets:int -> ?key_range:int -> insert_pct:int -> unit -> Ir.program
(** [worker(nops)] issues [insert_pct]% sets / rest gets with
    uniformly distributed keys (paper: 50/50 insertion-intensive and
    10/90 search-intensive).  Defaults: 256 buckets, 16384 keys.
    [check] verifies [Σ chain length = count] and key/value coherence. *)
