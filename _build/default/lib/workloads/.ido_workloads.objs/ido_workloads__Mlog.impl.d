lib/workloads/mlog.ml: Builder Ido_ir Int64 Ir List Wcommon
