lib/workloads/hmap.mli: Ido_ir Ir
