lib/workloads/workload.ml: Hmap Kvcache Mlog Objstore Olist Queue Stack
