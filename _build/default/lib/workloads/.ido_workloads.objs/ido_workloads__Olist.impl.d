lib/workloads/olist.ml: Builder Ido_ir Int64 Ir List Wcommon
