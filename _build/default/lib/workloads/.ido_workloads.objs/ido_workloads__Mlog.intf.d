lib/workloads/mlog.mli: Ido_ir Ir
