lib/workloads/kvcache.ml: Builder Ido_ir Int64 Ir List Wcommon
