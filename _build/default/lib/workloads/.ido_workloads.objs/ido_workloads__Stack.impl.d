lib/workloads/stack.ml: Builder Ido_ir Ir List Wcommon
