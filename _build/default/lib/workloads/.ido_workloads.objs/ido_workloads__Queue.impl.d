lib/workloads/queue.ml: Builder Ido_ir Ir List Wcommon
