lib/workloads/wcommon.ml: Builder Ido_ir Int64 Ir List
