lib/workloads/kvcache.mli: Ido_ir Ir
