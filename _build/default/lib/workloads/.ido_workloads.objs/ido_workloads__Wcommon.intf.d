lib/workloads/wcommon.mli: Builder Ido_ir Ir
