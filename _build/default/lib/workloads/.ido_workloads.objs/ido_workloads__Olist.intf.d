lib/workloads/olist.mli: Builder Ido_ir Ir
