lib/workloads/stack.mli: Ido_ir Ir
