lib/workloads/objstore.mli: Ido_ir Ir
