lib/workloads/queue.mli: Ido_ir Ir
