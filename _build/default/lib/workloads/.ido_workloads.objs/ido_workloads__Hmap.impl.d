lib/workloads/hmap.ml: Builder Ido_ir Int64 Ir List Olist Wcommon
