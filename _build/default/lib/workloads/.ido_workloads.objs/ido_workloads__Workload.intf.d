lib/workloads/workload.mli: Ido_ir Ir
