(** Sorted linked list traversed with hand-over-hand (cross) locking —
    the paper's high-concurrency-within-structure microbenchmark and
    the FASE shape of Fig. 2(b).  Each node carries its own lock word;
    a traversal holds exactly two node locks at a time, so the FASE's
    lock depth oscillates 2 → 1 → 2 without ever reaching zero until
    the operation completes.

    Sentinels bound the key space: the head holds key −1 and the tail
    key 2{^40}, so traversals need no emptiness cases. *)

open Ido_ir

val list_funcs : unit -> (string * Ir.func) list
(** [list_get(head, k)], [list_put(head, k, v)],
    [list_remove(head, k)] (unlinks; the node is leaked, as deferred
    reclamation requires), [list_count(head)] — shared with {!Hmap}. *)

val make_list : Builder.t -> Ir.reg
(** Emit code allocating an empty list (head+tail sentinels); returns
    the head-sentinel address register. *)

val program : ?key_range:int -> ?remove_pct:int -> unit -> Ir.program
(** [init], [worker(nops)] (50% get / 50% put over a uniform key
    range, default 256; with [remove_pct] > 0, that percentage of
    operations are removals and the rest split between gets and puts),
    [check] (sorted, tail reachable; observes element count). *)
