let names =
  [
    "stack"; "queue"; "olist"; "olistrm"; "hmap"; "kvcache50"; "kvcache10";
    "objstore"; "mlog";
  ]

let named = function
  | "stack" -> Stack.program ()
  | "queue" -> Queue.program ()
  | "olist" -> Olist.program ()
  | "olistrm" -> Olist.program ~remove_pct:20 ()
  | "hmap" -> Hmap.program ()
  | "kvcache50" -> Kvcache.program ~insert_pct:50 ()
  | "kvcache10" -> Kvcache.program ~insert_pct:10 ()
  | "objstore" -> Objstore.program ()
  | "mlog" -> Mlog.program ()
  | name -> invalid_arg ("Workload.named: unknown workload " ^ name)
