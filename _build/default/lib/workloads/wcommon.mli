(** Shared conventions and helpers for the benchmark programs.

    Every workload is an {!Ido_ir.Ir.program} with three entry points:

    - ["init"] — build the structure; runs once, single-threaded,
      before measurement (made durable by the harness with a full
      flush, standing in for a pre-populated persistent region);
    - ["worker"] — [worker(nops)]: perform [nops] randomly chosen
      operations, calling [Observe] once per completed operation
      (outside any FASE);
    - ["check"] — traverse the structure single-threadedly, trap (via
      [Assert_nz]) on any violated invariant, and observe summary
      counts.  Run after crash recovery to verify consistency.

    Root-slot conventions: slot 0 holds the structure descriptor. *)

open Ido_ir

val desc_root : int
(** Root slot holding the descriptor address (0). *)

val alloc_node : Builder.t -> int -> (int * Ir.operand) list -> Ir.reg
(** [alloc_node b n fields] emits an [nv_alloc n] and stores each
    [(offset, value)]; returns the node address register. *)

val get_root : Builder.t -> int -> Ir.reg
val set_root : Builder.t -> int -> Ir.operand -> unit

val observe : Builder.t -> Ir.operand -> unit
val assert_nz : Builder.t -> Ir.operand -> unit
val assert_eq : Builder.t -> Ir.operand -> Ir.operand -> unit
(** Trap unless the operands are equal. *)

val rand : Builder.t -> int -> Ir.reg
(** Uniform in [\[0, bound)] from the thread's generator. *)

val for_loop : Builder.t -> Ir.operand -> (Ir.reg -> unit) -> unit
(** [for_loop b n body]: run [body i] for [i] in [\[0, n)]. *)

val program : (string * Ir.func) list -> Ir.program
