(** Transient (volatile DRAM) memory.

    A growable array of 8-byte words.  Its entire contents vanish at a
    crash — the simulator simply discards the structure.  Used for the
    hybrid machine's DRAM portion (Fig. 1) and for transient mutexes
    under indirect locking (Sec. III-B). *)

type addr = int
type t

val create : ?initial:int -> unit -> t
val load : t -> addr -> int64
val store : t -> addr -> int64 -> unit
(** Grows the memory on demand; addresses must be non-negative. *)

val alloc : t -> int -> addr
(** Bump-allocate [n] fresh zeroed words and return their base. *)

val size : t -> int
(** Current high-water mark of allocated words. *)
