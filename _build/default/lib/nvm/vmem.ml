type addr = int

type t = { mutable cells : int64 array; mutable used : int }

let create ?(initial = 1024) () =
  { cells = Array.make (Stdlib.max 16 initial) 0L; used = 0 }

let ensure t addr =
  if addr < 0 then invalid_arg "Vmem: negative address";
  let n = Array.length t.cells in
  if addr >= n then begin
    let n' = Stdlib.max (addr + 1) (2 * n) in
    let a = Array.make n' 0L in
    Array.blit t.cells 0 a 0 n;
    t.cells <- a
  end;
  if addr >= t.used then t.used <- addr + 1

let load t addr =
  if addr < 0 || addr >= Array.length t.cells then 0L else t.cells.(addr)

let store t addr v =
  ensure t addr;
  t.cells.(addr) <- v

let alloc t n =
  if n < 0 then invalid_arg "Vmem.alloc: negative size";
  let base = t.used in
  if n > 0 then ensure t (base + n - 1);
  base

let size t = t.used
