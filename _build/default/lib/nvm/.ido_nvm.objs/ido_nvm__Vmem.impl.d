lib/nvm/vmem.ml: Array Stdlib
