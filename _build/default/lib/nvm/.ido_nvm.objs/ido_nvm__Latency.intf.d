lib/nvm/latency.mli: Ido_util Timebase
