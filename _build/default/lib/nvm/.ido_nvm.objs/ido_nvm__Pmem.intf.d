lib/nvm/pmem.mli: Ido_util Rng
