lib/nvm/latency.ml: Ido_util Timebase
