lib/nvm/pmem.ml: Array Hashtbl Ido_util List Printf Rng Stdlib
