lib/nvm/vmem.mli:
