(** Hardware timing model.

    The paper evaluates on a 64-thread AMD Opteron where persistence is
    emulated with [clflush]+[sfence] over DRAM, plus (Sec. V-E) a
    configurable delay after each flush to model slower NVM.  This
    record gathers every timing knob of our simulated machine; all
    values are in nanoseconds. *)

open Ido_util

type t = {
  alu : Timebase.ns;  (** register-to-register instruction *)
  mem : Timebase.ns;  (** cache-hit load/store *)
  branch : Timebase.ns;  (** taken/untaken branch *)
  clwb_issue : Timebase.ns;  (** issuing a line write-back *)
  fence_base : Timebase.ns;  (** [sfence] with nothing pending *)
  persist_wait : Timebase.ns;
      (** round trip to the (ADR) memory controller, paid once per
          fence that has pending write-backs *)
  line_drain : Timebase.ns;
      (** additional overlapped drain cost per pending line beyond the
          first *)
  nvm_extra : Timebase.ns;
      (** extra delay charged inline after each write-back to NVM —
          the Fig. 9 sensitivity knob, applied exactly as the paper
          applies it (a spin after each clflush); 0 on the ADR
          baseline machine *)
  lock_op : Timebase.ns;  (** uncontended lock acquire or release *)
  alloc : Timebase.ns;  (** one [nv_malloc]/[nv_free] *)
  call : Timebase.ns;  (** call/return overhead *)
  nv_caches : bool;
      (** the hypothetical machine JUSTDO was designed for (Sec. I):
          caches are nonvolatile, so write-backs are free, fences cost
          only their ordering overhead, and cached data survives a
          crash *)
}

val default : t
(** The baseline machine of Sections V-A..V-D: volatile caches,
    flush+fence persistence. *)

val nv_cache_machine : t
(** [default] with nonvolatile caches — the ablation machine on which
    the paper argues iDO should still beat prior systems. *)

val with_nvm_extra : t -> Timebase.ns -> t
(** The Fig. 9 machine: [default] plus an extra per-flush delay. *)

val fence_cost : t -> pending:int -> Timebase.ns
(** Cost of a persist fence that must drain [pending] outstanding line
    write-backs. *)
