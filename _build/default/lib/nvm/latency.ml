open Ido_util

type t = {
  alu : Timebase.ns;
  mem : Timebase.ns;
  branch : Timebase.ns;
  clwb_issue : Timebase.ns;
  fence_base : Timebase.ns;
  persist_wait : Timebase.ns;
  line_drain : Timebase.ns;
  nvm_extra : Timebase.ns;
  lock_op : Timebase.ns;
  alloc : Timebase.ns;
  call : Timebase.ns;
  nv_caches : bool;
}

let default =
  {
    alu = 1;
    mem = 3;
    branch = 1;
    clwb_issue = 8;
    fence_base = 15;
    persist_wait = 100;
    line_drain = 12;
    nvm_extra = 0;
    lock_op = 15;
    alloc = 60;
    call = 5;
    nv_caches = false;
  }

let with_nvm_extra t extra = { t with nvm_extra = extra }

let nv_cache_machine = { default with nv_caches = true }

let fence_cost t ~pending =
  if t.nv_caches || pending <= 0 then t.fence_base
  else t.fence_base + t.persist_wait + ((pending - 1) * t.line_drain)
