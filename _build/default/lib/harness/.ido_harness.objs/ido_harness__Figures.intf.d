lib/harness/figures.mli: Exp
