lib/harness/exp.mli: Cdf Ido_ir Ido_nvm Ido_runtime Ido_util Ido_vm Ir Scheme Timebase
