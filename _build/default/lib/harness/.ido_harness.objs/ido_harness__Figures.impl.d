lib/harness/figures.ml: Cdf Exp Hmap Ido_nvm Ido_runtime Ido_util Ido_vm Ido_workloads Int64 Kvcache Latency List Objstore Olist Printf Queue Render Scheme Stack String Timebase
