lib/harness/exp.ml: Ido_nvm Ido_runtime Ido_util Ido_vm Int64 Option Pmem Scheme Timebase
