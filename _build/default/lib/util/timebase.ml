type ns = int

let ns x = x
let us x = x * 1_000
let ms x = x * 1_000_000
let s x = x * 1_000_000_000

let to_seconds t = float_of_int t /. 1e9
let to_ms t = float_of_int t /. 1e6
let to_us t = float_of_int t /. 1e3

let pp fmt t =
  let ft = float_of_int t in
  if t < 1_000 then Format.fprintf fmt "%dns" t
  else if t < 1_000_000 then Format.fprintf fmt "%.2fus" (ft /. 1e3)
  else if t < 1_000_000_000 then Format.fprintf fmt "%.2fms" (ft /. 1e6)
  else Format.fprintf fmt "%.2fs" (ft /. 1e9)
