(** Plain-text rendering of the paper's tables and figure series.

    Figures are emitted as aligned numeric series (one row per x value,
    one column per scheme), which is the form the paper's plots encode;
    tables are emitted as boxed ASCII tables. *)

val table :
  ?title:string -> header:string list -> string list list -> string
(** [table ~header rows] renders a boxed table.  Every row must have
    the same arity as [header]. *)

val series :
  ?title:string ->
  x_label:string ->
  columns:string list ->
  (string * float list) list ->
  string
(** [series ~x_label ~columns rows] renders a figure-style numeric
    panel: [rows] are [(x, ys)] with one y per column.  Missing values
    may be encoded as [nan] and render as ["-"]. *)

val cdf_panel :
  ?title:string -> names:string list -> (int * float) list list -> string
(** Render several CDFs side by side: one row per integer value, one
    column per benchmark, cumulative fractions as percentages. *)

val float_cell : float -> string
(** Compact numeric formatting used by [series] (3 significant
    decimals, ["-"] for [nan]). *)
