(** Power-law (Zipfian) key sampling.

    The paper's Redis client ([lru_test]) queries with a power-law key
    distribution over a fixed key range (Sec. V-A); this module provides
    that sampler.  Sampling uses the rejection-inversion method of
    Hörmann and Derflinger (1996), which is O(1) per sample and exact
    for the Zipf(s, n) distribution. *)

type t

val create : ?exponent:float -> int -> t
(** [create ~exponent n] prepares a sampler over ranks [\[0, n)].
    [exponent] defaults to 0.99 (a common "Zipfian" setting that avoids
    the harmonic-series degeneracy at exactly 1.0). *)

val range : t -> int
(** Number of distinct ranks. *)

val sample : t -> Rng.t -> int
(** [sample t rng] draws a rank in [\[0, range t)]; rank 0 is the most
    popular. *)

val pmf : t -> int -> float
(** [pmf t k] is the exact probability of rank [k] (for tests). *)
