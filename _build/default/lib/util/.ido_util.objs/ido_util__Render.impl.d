lib/util/render.ml: Array Buffer Float List Printf Stdlib String
