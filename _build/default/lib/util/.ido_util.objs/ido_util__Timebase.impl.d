lib/util/timebase.ml: Format
