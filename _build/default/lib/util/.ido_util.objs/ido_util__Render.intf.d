lib/util/render.mli:
