lib/util/rng.mli:
