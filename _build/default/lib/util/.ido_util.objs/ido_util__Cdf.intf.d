lib/util/cdf.mli:
