lib/util/stats.ml:
