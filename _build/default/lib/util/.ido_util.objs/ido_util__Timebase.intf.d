lib/util/timebase.mli: Format
