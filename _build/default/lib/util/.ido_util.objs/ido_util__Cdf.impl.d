lib/util/cdf.ml: Array List Stdlib
