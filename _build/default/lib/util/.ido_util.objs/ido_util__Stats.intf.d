lib/util/stats.mli:
