(** Simulated time.

    Every clock in the simulator counts integer nanoseconds.  An OCaml
    [int] holds 63 bits, i.e. ~292 simulated years — ample for the
    50-second runs of Table I. *)

type ns = int
(** A duration or instant, in nanoseconds. *)

val ns : int -> ns
val us : int -> ns
val ms : int -> ns
val s : int -> ns

val to_seconds : ns -> float
val to_ms : ns -> float
val to_us : ns -> float

val pp : Format.formatter -> ns -> unit
(** Human-readable rendering with an adaptive unit (ns/µs/ms/s). *)
