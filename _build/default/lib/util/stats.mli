(** Online summary statistics (Welford) and simple aggregation. *)

type t

val create : unit -> t

val add : t -> float -> unit
(** Record one observation. *)

val count : t -> int
val mean : t -> float
(** Mean of the observations; 0 when empty. *)

val variance : t -> float
(** Unbiased sample variance; 0 when fewer than two observations. *)

val stddev : t -> float
val min : t -> float
(** Smallest observation; [infinity] when empty. *)

val max : t -> float
(** Largest observation; [neg_infinity] when empty. *)

val sum : t -> float
