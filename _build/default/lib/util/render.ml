let float_cell v =
  if Float.is_nan v then "-"
  else if Float.abs v >= 1000.0 then Printf.sprintf "%.0f" v
  else if Float.abs v >= 100.0 then Printf.sprintf "%.1f" v
  else Printf.sprintf "%.3f" v

let pad width s =
  let n = String.length s in
  if n >= width then s else String.make (width - n) ' ' ^ s

let render_grid ?title ~header rows =
  let all = header :: rows in
  let cols = List.length header in
  List.iter
    (fun r ->
      if List.length r <> cols then invalid_arg "Render: ragged row")
    rows;
  let widths = Array.make cols 0 in
  List.iter
    (fun row ->
      List.iteri
        (fun i cell ->
          if String.length cell > widths.(i) then
            widths.(i) <- String.length cell)
        row)
    all;
  let buf = Buffer.create 256 in
  let rule () =
    Buffer.add_char buf '+';
    Array.iter
      (fun w ->
        Buffer.add_string buf (String.make (w + 2) '-');
        Buffer.add_char buf '+')
      widths;
    Buffer.add_char buf '\n'
  in
  let line row =
    Buffer.add_char buf '|';
    List.iteri
      (fun i cell ->
        Buffer.add_char buf ' ';
        Buffer.add_string buf (pad widths.(i) cell);
        Buffer.add_string buf " |")
      row;
    Buffer.add_char buf '\n'
  in
  (match title with
  | Some t ->
      Buffer.add_string buf t;
      Buffer.add_char buf '\n'
  | None -> ());
  rule ();
  line header;
  rule ();
  List.iter line rows;
  rule ();
  Buffer.contents buf

let table ?title ~header rows = render_grid ?title ~header rows

let series ?title ~x_label ~columns rows =
  let header = x_label :: columns in
  let body =
    List.map (fun (x, ys) -> x :: List.map float_cell ys) rows
  in
  render_grid ?title ~header body

let cdf_panel ?title ~names cdfs =
  let max_v =
    List.fold_left
      (fun acc pts ->
        List.fold_left (fun acc (v, _) -> Stdlib.max acc v) acc pts)
      0 cdfs
  in
  let value_at pts v =
    (* CDFs are monotone step functions: the fraction at v is the last
       point with index <= v, or 0 before the first point. *)
    let rec go last = function
      | [] -> last
      | (v', f) :: rest -> if v' <= v then go f rest else last
    in
    go 0.0 pts
  in
  let rows =
    List.init (max_v + 1) (fun v ->
        ( string_of_int v,
          List.map (fun pts -> 100.0 *. value_at pts v) cdfs ))
  in
  series ?title ~x_label:"value" ~columns:names rows
