type t = {
  n : int;
  s : float;
  h_x1 : float;   (* hIntegral(1.5) - 1 *)
  h_n : float;    (* hIntegral(n + 0.5) *)
  s_const : float;
  norm : float;   (* generalized harmonic number, for pmf *)
}

(* hIntegral(x) = ((x)^(1-s) - 1) / (1-s), the integral of x^-s. *)
let h_integral s x = (Float.pow x (1.0 -. s) -. 1.0) /. (1.0 -. s)

let h_integral_inv s y =
  Float.pow (1.0 +. (y *. (1.0 -. s))) (1.0 /. (1.0 -. s))

let hat s x = Float.pow x (-.s)

let create ?(exponent = 0.99) n =
  if n <= 0 then invalid_arg "Zipf.create: n must be positive";
  if exponent <= 0.0 || exponent = 1.0 then
    invalid_arg "Zipf.create: exponent must be positive and not 1.0";
  let s = exponent in
  let norm =
    let acc = ref 0.0 in
    (* Exact normalizer is only needed by [pmf] (tests); O(n) once. *)
    for k = 1 to n do
      acc := !acc +. (1.0 /. Float.pow (float_of_int k) s)
    done;
    !acc
  in
  {
    n;
    s;
    h_x1 = h_integral s 1.5 -. 1.0;
    h_n = h_integral s (float_of_int n +. 0.5);
    s_const = 2.0 -. h_integral_inv s (h_integral s 2.5 -. hat s 2.0);
    norm;
  }

let range t = t.n

(* Rejection-inversion sampling (Hörmann & Derflinger 1996). *)
let sample t rng =
  let rec loop () =
    let u = t.h_n +. (Rng.float rng 1.0 *. (t.h_x1 -. t.h_n)) in
    let x = h_integral_inv t.s u in
    let k = Float.to_int (x +. 0.5) in
    let k = if k < 1 then 1 else if k > t.n then t.n else k in
    let fk = float_of_int k in
    if fk -. x <= t.s_const || u >= h_integral t.s (fk +. 0.5) -. hat t.s fk
    then k - 1
    else loop ()
  in
  loop ()

let pmf t k =
  if k < 0 || k >= t.n then 0.0
  else 1.0 /. (Float.pow (float_of_int (k + 1)) t.s *. t.norm)
