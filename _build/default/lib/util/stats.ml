type t = {
  mutable n : int;
  mutable mean : float;
  mutable m2 : float;
  mutable min : float;
  mutable max : float;
  mutable sum : float;
}

let create () =
  { n = 0; mean = 0.0; m2 = 0.0; min = infinity; max = neg_infinity; sum = 0.0 }

let add t x =
  t.n <- t.n + 1;
  let delta = x -. t.mean in
  t.mean <- t.mean +. (delta /. float_of_int t.n);
  t.m2 <- t.m2 +. (delta *. (x -. t.mean));
  if x < t.min then t.min <- x;
  if x > t.max then t.max <- x;
  t.sum <- t.sum +. x

let count t = t.n
let mean t = if t.n = 0 then 0.0 else t.mean
let variance t = if t.n < 2 then 0.0 else t.m2 /. float_of_int (t.n - 1)
let stddev t = sqrt (variance t)
let min t = t.min
let max t = t.max
let sum t = t.sum
