(** Sets of virtual registers (thin wrapper over [Set.Make(Int)]). *)

include Set.S with type elt = int

val of_regs : int list -> t
val pp : Format.formatter -> t -> unit
