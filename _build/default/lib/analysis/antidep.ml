open Ido_ir

type pair = { load : Ir.pos; store : Ir.pos; same_block : bool }

let tracked_space = function
  | Ir.Persistent | Ir.Stack -> true
  | Ir.Transient -> false

let compute cfg fase alias =
  let f = Cfg.func cfg in
  let loads = ref [] and stores = ref [] in
  ignore
    (Ir.fold_instrs
       (fun () pos instr ->
         if Fase.in_fase fase pos then
           match instr with
           | Load { space; _ } when tracked_space space ->
               loads := pos :: !loads
           | Store { space; _ } when tracked_space space ->
               stores := pos :: !stores
           | Intrinsic { intr = Root_get; _ } -> loads := pos :: !loads
           | Intrinsic { intr = Root_set; _ } -> stores := pos :: !stores
           | _ -> ())
       () f);
  let pairs = ref [] in
  List.iter
    (fun (l : Ir.pos) ->
      List.iter
        (fun (s : Ir.pos) ->
          if Alias.may_alias alias l s then begin
            let forward_same_block = l.blk = s.blk && l.idx < s.idx in
            if forward_same_block then
              pairs := { load = l; store = s; same_block = true } :: !pairs
            else if Cfg.path_exists cfg l s then
              pairs := { load = l; store = s; same_block = false } :: !pairs
          end)
        !stores)
    !loads;
  List.rev !pairs
