open Ido_ir

module PosSet = Set.Make (struct
  type t = Ir.pos

  let compare = Ir.compare_pos
end)

type t = {
  cfg : Cfg.t;
  (* per block: reaching-definition map at block entry *)
  entry : (Ir.reg, PosSet.t) Hashtbl.t array;
}

let param_pos i = { Ir.blk = -1; idx = i }

let clone_tbl tbl =
  let t = Hashtbl.create (Hashtbl.length tbl) in
  Hashtbl.iter (Hashtbl.replace t) tbl;
  t

let tbl_equal a b =
  Hashtbl.length a = Hashtbl.length b
  && Hashtbl.fold
       (fun r s acc ->
         acc
         && match Hashtbl.find_opt b r with Some s' -> PosSet.equal s s' | None -> false)
       a true

(* Kill-and-gen through one instruction: a definition replaces every
   reaching definition of its register. *)
let transfer tbl pos instr =
  List.iter
    (fun d -> Hashtbl.replace tbl d (PosSet.singleton pos))
    (Ir.instr_defs instr)

let block_out f tbl b =
  let tbl = clone_tbl tbl in
  Array.iteri
    (fun i instr -> transfer tbl { Ir.blk = b; idx = i } instr)
    f.Ir.blocks.(b).Ir.instrs;
  tbl

let merge_into dst src =
  let changed = ref false in
  Hashtbl.iter
    (fun r s ->
      let cur = Option.value ~default:PosSet.empty (Hashtbl.find_opt dst r) in
      let u = PosSet.union cur s in
      if not (PosSet.equal u cur) then begin
        Hashtbl.replace dst r u;
        changed := true
      end)
    src;
  !changed

let compute cfg =
  let f = Cfg.func cfg in
  let n = Array.length f.Ir.blocks in
  let entry = Array.init n (fun _ -> Hashtbl.create 16) in
  (* Parameters reach the function entry. *)
  List.iteri
    (fun i r -> Hashtbl.replace entry.(0) r (PosSet.singleton (param_pos i)))
    f.Ir.params;
  let changed = ref true in
  while !changed do
    changed := false;
    List.iter
      (fun b ->
        let out = block_out f entry.(b) b in
        List.iter
          (fun s ->
            let before = clone_tbl entry.(s) in
            if merge_into entry.(s) out && not (tbl_equal before entry.(s)) then
              changed := true)
          (Cfg.succs cfg b))
      (Cfg.reverse_postorder cfg)
  done;
  { cfg; entry }

let defs_at t (pos : Ir.pos) reg =
  let f = Cfg.func t.cfg in
  let tbl = clone_tbl t.entry.(pos.blk) in
  let blk = f.Ir.blocks.(pos.blk) in
  for i = 0 to min pos.idx (Array.length blk.Ir.instrs) - 1 do
    transfer tbl { Ir.blk = pos.blk; idx = i } blk.Ir.instrs.(i)
  done;
  match Hashtbl.find_opt tbl reg with
  | Some s -> PosSet.elements s
  | None -> []

let unique_def t pos reg =
  match defs_at t pos reg with [ d ] -> Some d | _ -> None
