open Ido_ir

module PosSet = Set.Make (struct
  type t = Ir.pos

  let compare = Ir.compare_pos
end)

type cut = {
  pos : Ir.pos;
  id : int;
  live_in : Ir.reg list;
  out_regs : Ir.reg list;
  required : bool;
  at_release : bool;
}

type t = {
  cuts : cut list;
  n_war_pairs : int;
  n_mandatory : int;
  n_hitting : int;
}

let check_reducible cfg =
  let f = Cfg.func cfg in
  let rpo_index = Array.make (Array.length f.blocks) max_int in
  List.iteri (fun i b -> rpo_index.(b) <- i) (Cfg.reverse_postorder cfg);
  Array.iteri
    (fun src (blk : Ir.block) ->
      if Cfg.reachable cfg src then
        List.iter
          (fun dst ->
            if rpo_index.(dst) <= rpo_index.(src) && not (Cfg.dominates cfg dst src)
            then
              failwith
                (Printf.sprintf
                   "Regions: irreducible control flow in %s (edge %d -> %d)"
                   f.name src dst))
          (Ir.successors blk.term))
    f.blocks

(* Elidable cuts: after every acquire, at every release, around
   durable-region delimiters (Sec. III-B), and at in-FASE loop headers
   (bounding how much a dirty loop must re-execute).  The runtime may
   skip persisting these while the closed region is clean, so they must
   NOT be relied on to separate WAR pairs. *)
let elidable_cuts cfg fase f =
  let cuts = ref PosSet.empty in
  let releases = ref PosSet.empty in
  let add p = cuts := PosSet.add p !cuts in
  ignore
    (Ir.fold_instrs
       (fun () (pos : Ir.pos) instr ->
         match instr with
         | Ir.Lock _ when Fase.covers fase pos ->
             add { pos with idx = pos.idx + 1 }
         | Ir.Unlock _ when Fase.in_fase fase pos ->
             add pos;
             releases := PosSet.add pos !releases
         | Ir.Durable_begin -> add { pos with idx = pos.idx + 1 }
         | Ir.Durable_end -> add pos
         | _ -> ())
       () f);
  List.iter
    (fun hd ->
      let entry = { Ir.blk = hd; idx = 0 } in
      if Fase.in_fase fase entry then add entry)
    (Cfg.loop_headers cfg);
  (!cuts, !releases)

(* Required cuts: block-entry cuts for cross-block WAR pairs.  A cut at
   the store's block entry lies on every path from the load, forward or
   cyclic, since any path to the store enters its block.  Same-block
   pairs are handled by the interval cover below (whose cut also lies
   on every cyclic re-entry path, which traverses the block prefix).
   Required persists are never elided. *)
let required_cuts fase pairs =
  let cuts = ref PosSet.empty in
  let add p = cuts := PosSet.add p !cuts in
  List.iter
    (fun (p : Antidep.pair) ->
      if not p.same_block then begin
        let entry = { Ir.blk = p.store.blk; idx = 0 } in
        (* If the store's block entry is outside the FASE, the pair
           spans two FASEs and the intervening lock operations already
           separate it. *)
        if Fase.in_fase fase entry then add entry
      end)
    pairs;
  !cuts

(* Greedy interval point-cover over same-block WAR pairs: optimal for
   interval families (the paper's hitting-set step). *)
let hitting_set_cuts existing pairs =
  let by_block = Hashtbl.create 8 in
  List.iter
    (fun (p : Antidep.pair) ->
      if p.same_block then
        let lo = p.load.idx + 1 and hi = p.store.idx in
        let l = Option.value ~default:[] (Hashtbl.find_opt by_block p.load.blk) in
        Hashtbl.replace by_block p.load.blk ((lo, hi) :: l))
    pairs;
  let chosen = ref PosSet.empty in
  Hashtbl.iter
    (fun blk intervals ->
      let covered lo hi =
        let in_range (p : Ir.pos) = p.blk = blk && p.idx >= lo && p.idx <= hi in
        PosSet.exists in_range existing || PosSet.exists in_range !chosen
      in
      let sorted = List.sort (fun (_, h1) (_, h2) -> compare h1 h2) intervals in
      List.iter
        (fun (lo, hi) ->
          if not (covered lo hi) then
            chosen := PosSet.add { Ir.blk = blk; idx = hi } !chosen)
        sorted)
    by_block;
  !chosen

(* Registers defined on some path since the previous cut, intersected
   with liveness at this cut (Eq. 1 applied at the boundary). *)
let out_regs_at cfg cut_set (p : Ir.pos) =
  let f = Cfg.func cfg in
  let len b = Array.length f.blocks.(b).instrs in
  let visited = Hashtbl.create 64 in
  let visited_entry = Hashtbl.create 16 in
  let defs = ref Regset.empty in
  let rec visit_slot (s : Ir.pos) =
    if not (Hashtbl.mem visited s) then begin
      Hashtbl.replace visited s ();
      if s.idx < len s.blk then
        List.iter
          (fun d -> defs := Regset.add d !defs)
          (Ir.instr_defs f.blocks.(s.blk).instrs.(s.idx));
      if not (PosSet.mem s cut_set) then
        if s.idx > 0 then visit_slot { s with idx = s.idx - 1 }
        else enter_preds s.blk
    end
  and enter_preds b =
    if not (Hashtbl.mem visited_entry b) then begin
      Hashtbl.replace visited_entry b ();
      List.iter
        (fun pb ->
          let term_slot = { Ir.blk = pb; idx = len pb } in
          visit_slot term_slot)
        (Cfg.preds cfg b)
    end
  in
  if p.idx > 0 then visit_slot { p with idx = p.idx - 1 } else enter_preds p.blk;
  !defs

let compute cfg fase liveness alias =
  check_reducible cfg;
  let f = Cfg.func cfg in
  let pairs = Antidep.compute cfg fase alias in
  let locks, releases = elidable_cuts cfg fase f in
  let required = required_cuts fase pairs in
  (* The interval cover may only rely on cuts that always persist. *)
  let hitting = hitting_set_cuts required pairs in
  let required = PosSet.union required hitting in
  let all = PosSet.union locks required in
  let cuts =
    List.mapi
      (fun id pos ->
        let live = Liveness.live_at liveness pos in
        let defs = out_regs_at cfg all pos in
        {
          pos;
          id;
          live_in = Regset.elements live;
          out_regs = Regset.elements (Regset.inter defs live);
          required = PosSet.mem pos required;
          at_release = PosSet.mem pos releases;
        })
      (PosSet.elements all)
  in
  {
    cuts;
    n_war_pairs = List.length pairs;
    n_mandatory = PosSet.cardinal locks + PosSet.cardinal required - PosSet.cardinal hitting;
    n_hitting = PosSet.cardinal hitting;
  }

let cut_positions t = List.map (fun c -> c.pos) t.cuts

(* Oracle for tests: forward walk from each WAR load; if the matching
   store is reachable without crossing a cut, region formation failed. *)
let verify_no_war_within_regions cfg fase alias t =
  let f = Cfg.func cfg in
  (* Only cuts whose persist is unconditional can be trusted to
     separate a WAR pair. *)
  let cut_set =
    PosSet.of_list
      (List.filter_map (fun c -> if c.required then Some c.pos else None) t.cuts)
  in
  let len b = Array.length f.blocks.(b).instrs in
  let pairs = Antidep.compute cfg fase alias in
  let reach_without_cut (src : Ir.pos) (dst : Ir.pos) =
    let visited = Hashtbl.create 64 in
    let rec go (s : Ir.pos) =
      if s = dst then true
      else if Hashtbl.mem visited s then false
      else begin
        Hashtbl.replace visited s ();
        if s.idx < len s.blk then begin
          let nxt = { s with idx = s.idx + 1 } in
          if PosSet.mem nxt cut_set then false else go nxt
        end
        else
          List.exists
            (fun sb ->
              let entry = { Ir.blk = sb; idx = 0 } in
              if PosSet.mem entry cut_set then false else go entry)
            (Cfg.succs cfg s.blk)
      end
    in
    go src
  in
  List.for_all (fun (p : Antidep.pair) -> not (reach_without_cut p.load p.store)) pairs
