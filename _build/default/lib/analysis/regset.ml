include Set.Make (Int)

let of_regs = of_list

let pp fmt s =
  Format.fprintf fmt "{%s}"
    (String.concat "," (List.map (fun r -> "r" ^ string_of_int r) (elements s)))
