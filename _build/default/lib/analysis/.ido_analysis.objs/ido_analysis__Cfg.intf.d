lib/analysis/cfg.mli: Ido_ir Ir
