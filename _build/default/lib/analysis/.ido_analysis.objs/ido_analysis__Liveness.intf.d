lib/analysis/liveness.mli: Cfg Ido_ir Ir Regset
