lib/analysis/regset.mli: Format Set
