lib/analysis/cfg.ml: Array Ido_ir Ir List Queue
