lib/analysis/antidep.mli: Alias Cfg Fase Ido_ir Ir
