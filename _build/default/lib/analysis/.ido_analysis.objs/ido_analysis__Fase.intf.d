lib/analysis/fase.mli: Cfg Ido_ir Ir
