lib/analysis/regset.ml: Format Int List Set String
