lib/analysis/regions.ml: Antidep Array Cfg Fase Hashtbl Ido_ir Ir List Liveness Option Printf Regset Set
