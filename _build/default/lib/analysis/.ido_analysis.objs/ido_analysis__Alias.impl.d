lib/analysis/alias.ml: Array Cfg Hashtbl Ido_ir Int64 Ir List Reaching
