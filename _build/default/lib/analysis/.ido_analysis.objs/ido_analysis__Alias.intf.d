lib/analysis/alias.mli: Ido_ir Ir
