lib/analysis/liveness.ml: Array Cfg Ido_ir Ir List Regset
