lib/analysis/regions.mli: Alias Cfg Fase Ido_ir Ir Liveness
