lib/analysis/validate.ml: Array Cfg Fase Hashtbl Ido_ir Ir List Printf String
