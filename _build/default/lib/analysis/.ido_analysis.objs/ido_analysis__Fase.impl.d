lib/analysis/fase.ml: Array Cfg Ido_ir Ir List Printf
