lib/analysis/validate.mli: Ido_ir Ir
