lib/analysis/reaching.ml: Array Cfg Hashtbl Ido_ir Ir List Option Set
