lib/analysis/antidep.ml: Alias Cfg Fase Ido_ir Ir List
