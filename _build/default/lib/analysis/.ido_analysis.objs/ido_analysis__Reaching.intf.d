lib/analysis/reaching.mli: Cfg Ido_ir Ir
