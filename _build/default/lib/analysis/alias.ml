open Ido_ir

type base =
  | Alloca_site of int
  | Heap_site of int
  | Const of int64
  | Param of int
  | Unknown

type expr = { base : base; delta : int }

type t = {
  func : Ir.func;
  reaching : Reaching.t;
  memo : (Ir.pos * int, expr) Hashtbl.t;
}

let site_of (p : Ir.pos) = (p.blk * 0x100000) + p.idx

let compute (func : Ir.func) =
  let cfg = Cfg.build func in
  { func; reaching = Reaching.compute cfg; memo = Hashtbl.create 64 }

let unknown = { base = Unknown; delta = 0 }

let instr_at t (p : Ir.pos) =
  if p.blk < 0 then None
  else begin
    let blk = t.func.blocks.(p.blk) in
    if p.idx < Array.length blk.instrs then Some blk.instrs.(p.idx) else None
  end

(* Resolve the value of [r] as seen just before [at]: when a unique
   definition reaches, chase it (recursively resolving its operands at
   the definition site).  [seen] cuts loop-carried self-definitions. *)
let rec resolve_reg t ~seen ~at r =
  match Hashtbl.find_opt t.memo (at, r) with
  | Some e -> e
  | None ->
      let e =
        if List.mem (at, r) seen then unknown
        else begin
          let seen = (at, r) :: seen in
          match Reaching.unique_def t.reaching at r with
          | None -> unknown
          | Some d when d.Ir.blk = -1 -> { base = Param d.Ir.idx; delta = 0 }
          | Some d -> (
              match instr_at t d with
              | Some (Alloca (_, _)) -> { base = Alloca_site (site_of d); delta = 0 }
              | Some (Intrinsic { intr = Nv_alloc; _ }) ->
                  { base = Heap_site (site_of d); delta = 0 }
              | Some (Mov (_, op)) -> resolve_operand t ~seen ~at:d op
              | Some (Bin (_, Add, a, Imm k)) | Some (Bin (_, Add, Imm k, a)) ->
                  let e = resolve_operand t ~seen ~at:d a in
                  if e.base = Unknown then unknown
                  else { e with delta = e.delta + Int64.to_int k }
              | Some (Bin (_, Sub, a, Imm k)) ->
                  let e = resolve_operand t ~seen ~at:d a in
                  if e.base = Unknown then unknown
                  else { e with delta = e.delta - Int64.to_int k }
              | _ -> unknown)
        end
      in
      Hashtbl.replace t.memo (at, r) e;
      e

and resolve_operand t ~seen ~at = function
  | Ir.Reg r -> resolve_reg t ~seen ~at r
  | Ir.Imm i -> { base = Const i; delta = 0 }

let resolve_access t pos =
  match instr_at t pos with
  | Some (Load { space; base; off; _ }) | Some (Store { space; base; off; _ }) ->
      let e = resolve_operand t ~seen:[] ~at:pos base in
      let e = if e.base = Unknown then e else { e with delta = e.delta + off } in
      Some (space, e)
  | Some (Intrinsic { intr = Root_get | Root_set; _ }) ->
      (* Root slots live in the persistent header; model them as an
         unknown persistent access. *)
      Some (Persistent, unknown)
  | Some (Intrinsic { intr = Nv_alloc | Nv_free; _ }) -> Some (Persistent, unknown)
  | _ -> None

let base_distinct b1 b2 =
  (* Distinct allocation sites yield distinct objects; constants are
     absolute.  Parameters may equal anything except fresh allocations
     (which did not exist at entry and never flow back within a single
     resolved chain), handled conservatively: params only separate from
     sites and constants when the other side is a fresh allocation. *)
  match (b1, b2) with
  | Alloca_site a, Alloca_site b -> a <> b
  | Heap_site a, Heap_site b -> a <> b
  | Alloca_site _, Heap_site _ | Heap_site _, Alloca_site _ -> true
  | Const _, (Alloca_site _ | Heap_site _) | (Alloca_site _ | Heap_site _), Const _
    ->
      true
  | _ -> false

let may_alias t p q =
  match (resolve_access t p, resolve_access t q) with
  | None, _ | _, None -> invalid_arg "Alias.may_alias: not a memory operation"
  | Some (s1, e1), Some (s2, e2) ->
      if s1 <> s2 then false
      else if e1.base = Unknown || e2.base = Unknown then true
      else begin
        match (e1.base, e2.base) with
        | Const a, Const b ->
            Int64.add a (Int64.of_int e1.delta)
            = Int64.add b (Int64.of_int e2.delta)
        | _ ->
            if base_distinct e1.base e2.base then false
            else if e1.base = e2.base then e1.delta = e2.delta
            else true
      end
