open Ido_ir

let check_func ?(allow_hooks = false) (f : Ir.func) =
  let errs = ref [] in
  let err fmt = Printf.ksprintf (fun s -> errs := (f.name ^ ": " ^ s) :: !errs) fmt in
  let nb = Array.length f.blocks in
  if nb = 0 then err "no blocks";
  let check_reg r = if r < 0 || r >= f.nregs then err "register r%d out of range" r in
  List.iter check_reg f.params;
  Array.iteri
    (fun b (blk : Ir.block) ->
      Array.iteri
        (fun i instr ->
          List.iter check_reg (Ir.instr_defs instr);
          List.iter check_reg (Ir.instr_uses instr);
          match instr with
          | Hook _ when not allow_hooks -> err "unexpected hook at (%d,%d)" b i
          | Alloca _ when b <> 0 -> err "alloca outside entry block at (%d,%d)" b i
          | _ -> ())
        blk.instrs;
      List.iter check_reg (Ir.term_uses blk.term);
      List.iter
        (fun s -> if s < 0 || s >= nb then err "branch target .%d out of range" s)
        (Ir.successors blk.term))
    f.blocks;
  if !errs <> [] then Error (List.rev !errs)
  else begin
    (* Structural checks passed; run the dataflow-based checks. *)
    let cfg = Cfg.build f in
    (match Fase.compute cfg with
    | Error e -> errs := e :: !errs
    | Ok fase ->
        (try
           ignore
             (Ir.fold_instrs
                (fun () (pos : Ir.pos) instr ->
                  let inside = Fase.in_fase fase pos in
                  match instr with
                  | Call _ when inside ->
                      err "call inside FASE at (%d,%d) (FASEs are single-function)"
                        pos.blk pos.idx
                  | Intrinsic { intr = Rand; _ } when inside ->
                      err "non-idempotent rand inside FASE at (%d,%d)" pos.blk pos.idx
                  | Intrinsic { intr = Observe; _ } when inside ->
                      err "non-idempotent observe inside FASE at (%d,%d)" pos.blk
                        pos.idx
                  | Intrinsic { intr = Nv_free; _ } when inside ->
                      err "nv_free inside FASE would double-free on resumption at (%d,%d)"
                        pos.blk pos.idx
                  | Load { space = Transient; _ } when inside ->
                      err "transient load inside FASE at (%d,%d)" pos.blk pos.idx
                  | Store { space = Transient; _ } when inside ->
                      err "transient store inside FASE at (%d,%d)" pos.blk pos.idx
                  | Alloca _ when inside ->
                      err "alloca inside FASE at (%d,%d)" pos.blk pos.idx
                  | _ -> ())
                () f)
         with Failure e -> errs := e :: !errs));
    (* Reducibility, reported via Regions.check on a lock-free fase. *)
    (try
       let rpo_index = Array.make nb max_int in
       List.iteri (fun i b -> rpo_index.(b) <- i) (Cfg.reverse_postorder cfg);
       Array.iteri
         (fun src (blk : Ir.block) ->
           if Cfg.reachable cfg src then
             List.iter
               (fun dst ->
                 if rpo_index.(dst) <= rpo_index.(src)
                    && not (Cfg.dominates cfg dst src)
                 then err "irreducible control flow (edge %d -> %d)" src dst)
               (Ir.successors blk.term))
         f.blocks
     with Failure e -> errs := e :: !errs);
    if !errs = [] then Ok () else Error (List.rev !errs)
  end

let check_program ?allow_hooks (p : Ir.program) =
  let errs = ref [] in
  let names = Hashtbl.create 8 in
  List.iter
    (fun (name, (f : Ir.func)) ->
      if Hashtbl.mem names name then
        errs := Printf.sprintf "duplicate function %s" name :: !errs;
      Hashtbl.replace names name (List.length f.params);
      if name <> f.name then
        errs := Printf.sprintf "function %s registered under name %s" f.name name :: !errs)
    p.funcs;
  List.iter
    (fun (_, f) ->
      (match check_func ?allow_hooks f with
      | Ok () -> ()
      | Error es -> errs := List.rev_append es !errs);
      ignore
        (Ir.fold_instrs
           (fun () _ instr ->
             match instr with
             | Call { func; args; _ } -> (
                 match Hashtbl.find_opt names func with
                 | None ->
                     errs :=
                       Printf.sprintf "%s: call to unknown function %s" f.name func
                       :: !errs
                 | Some arity ->
                     if List.length args <> arity then
                       errs :=
                         Printf.sprintf "%s: call to %s with %d args (expects %d)"
                           f.name func (List.length args) arity
                         :: !errs)
             | _ -> ())
           () f))
    p.funcs;
  if !errs = [] then Ok () else Error (List.rev !errs)

let check_program_exn ?allow_hooks p =
  match check_program ?allow_hooks p with
  | Ok () -> ()
  | Error es -> failwith (String.concat "\n" es)
