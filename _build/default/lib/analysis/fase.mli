(** FASE inference (Sec. IV-A-a).

    A failure-atomic section is a maximal region in which at least one
    lock is held (Sec. II-B), or a programmer-delineated durable
    region.  We infer FASEs from a forward lock-depth dataflow: the
    depth must be consistent at every join (checked), non-negative, and
    zero at every return — i.e. each FASE is confined to a single
    function, exactly the paper's assumption. *)

open Ido_ir

type t

val compute : Cfg.t -> (t, string) result
(** [Error msg] when depths are inconsistent at a join, a depth would
    go negative, durable regions are nested or overlap a lock FASE, or
    a return is reachable with a lock held. *)

val compute_exn : Cfg.t -> t

val depth_before : t -> Ir.pos -> int
(** Lock depth just before the instruction at [pos] executes. *)

val durable_before : t -> Ir.pos -> bool

val in_fase : t -> Ir.pos -> bool
(** True when the instruction at [pos] executes with a lock held or
    inside a durable region.  The opening [Lock]/[Durable_begin]
    itself is {e not} in the FASE; the closing [Unlock]/[Durable_end]
    is. *)

val covers : t -> Ir.pos -> bool
(** Like {!in_fase} but also true at the opening instruction — the
    span instrumentation must consider. *)

val outermost_acquire : t -> Ir.pos -> bool
(** [pos] holds a [Lock] executed at depth 0 (a FASE begins). *)

val outermost_release : t -> Ir.pos -> bool
(** [pos] holds an [Unlock] executed at depth 1 (the FASE ends). *)

val has_fase : t -> bool
(** Does the function contain any FASE at all? *)
