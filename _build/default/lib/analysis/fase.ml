open Ido_ir

type state = { depth : int; durable : bool }

type t = {
  (* per block: state before each instruction index; length #instrs+1 *)
  at : state array array;
  func : Ir.func;
  any_fase : bool;
}

let transfer fname (p : Ir.pos) st (instr : Ir.instr) =
  match instr with
  | Lock _ ->
      if st.durable then
        Error
          (Printf.sprintf "%s: lock inside durable region at (%d,%d)" fname
             p.blk p.idx)
      else Ok { st with depth = st.depth + 1 }
  | Unlock _ ->
      if st.depth <= 0 then
        Error
          (Printf.sprintf "%s: unlock with no lock held at (%d,%d)" fname p.blk
             p.idx)
      else Ok { st with depth = st.depth - 1 }
  | Durable_begin ->
      if st.durable then
        Error (Printf.sprintf "%s: nested durable region at (%d,%d)" fname p.blk p.idx)
      else if st.depth > 0 then
        Error
          (Printf.sprintf "%s: durable region inside FASE at (%d,%d)" fname
             p.blk p.idx)
      else Ok { st with durable = true }
  | Durable_end ->
      if not st.durable then
        Error
          (Printf.sprintf "%s: durable_end without durable_begin at (%d,%d)"
             fname p.blk p.idx)
      else Ok { st with durable = false }
  | _ -> Ok st

let compute cfg =
  let f = Cfg.func cfg in
  let n = Array.length f.blocks in
  let entry_state = Array.make n None in
  let at =
    Array.init n (fun b ->
        Array.make (Array.length f.blocks.(b).instrs + 1) { depth = 0; durable = false })
  in
  entry_state.(0) <- Some { depth = 0; durable = false };
  let error = ref None in
  let set_error e = if !error = None then error := Some e in
  (* Forward propagation in RPO; depths are consistent iff one pass
     suffices (acyclic joins agree; back edges re-checked below). *)
  let process b =
    match entry_state.(b) with
    | None -> ()
    | Some st0 ->
        let blk = f.blocks.(b) in
        let st = ref st0 in
        at.(b).(0) <- st0;
        Array.iteri
          (fun i instr ->
            (match transfer f.name { blk = b; idx = i } !st instr with
            | Ok st' -> st := st'
            | Error e -> set_error e);
            at.(b).(i + 1) <- !st)
          blk.instrs;
        (match blk.term with
        | Ret _ when !st.depth > 0 ->
            set_error
              (Printf.sprintf "%s: return with lock held (FASE must be confined to one function)"
                 f.name)
        | Ret _ when !st.durable ->
            set_error (Printf.sprintf "%s: return inside durable region" f.name)
        | _ -> ());
        List.iter
          (fun s ->
            match entry_state.(s) with
            | None -> entry_state.(s) <- Some !st
            | Some prev ->
                if prev <> !st then
                  set_error
                    (Printf.sprintf
                       "%s: inconsistent lock depth at join block %d (%d vs %d)"
                       f.name s prev.depth !st.depth))
          (Cfg.succs cfg b)
  in
  List.iter process (Cfg.reverse_postorder cfg);
  (* Re-check back edges: the state flowing along them must match. *)
  List.iter
    (fun (src, dst) ->
      let exit_state = at.(src).(Array.length f.blocks.(src).instrs) in
      match entry_state.(dst) with
      | Some st when st <> exit_state ->
          set_error
            (Printf.sprintf "%s: inconsistent lock depth around loop at block %d"
               f.name dst)
      | _ -> ())
    (Cfg.back_edges cfg);
  match !error with
  | Some e -> Error e
  | None ->
      let any_fase =
        Array.exists
          (fun states ->
            Array.exists (fun st -> st.depth > 0 || st.durable) states)
          at
      in
      Ok { at; func = f; any_fase }

let compute_exn cfg =
  match compute cfg with Ok t -> t | Error e -> failwith e

let state_before t (p : Ir.pos) = t.at.(p.blk).(p.idx)

let depth_before t p = (state_before t p).depth
let durable_before t p = (state_before t p).durable

let instr_at t (p : Ir.pos) =
  let blk = t.func.blocks.(p.blk) in
  if p.idx < Array.length blk.instrs then Some blk.instrs.(p.idx) else None

let in_fase t p =
  let st = state_before t p in
  st.depth > 0 || st.durable

let covers t p =
  in_fase t p
  ||
  match instr_at t p with
  | Some (Lock _) | Some Durable_begin -> true
  | _ -> false

let outermost_acquire t p =
  match instr_at t p with
  | Some (Lock _) -> (state_before t p).depth = 0 && not (state_before t p).durable
  | _ -> false

let outermost_release t p =
  match instr_at t p with
  | Some (Unlock _) -> (state_before t p).depth = 1
  | _ -> false

let has_fase t = t.any_fase
