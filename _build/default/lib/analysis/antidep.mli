(** Memory antidependence (write-after-read) detection inside FASEs.

    A region is idempotent only if no input is overwritten before the
    region ends (Sec. II-C); equivalently, every may-alias
    (load, later store) pair inside a FASE must be separated by a
    region boundary.  This module enumerates those pairs; {!Regions}
    turns them into cuts. *)

open Ido_ir

type pair = {
  load : Ir.pos;
  store : Ir.pos;
  same_block : bool;  (** forward pair within one basic block *)
}

val compute : Cfg.t -> Fase.t -> Alias.t -> pair list
(** All WAR pairs [(load, store)] on persistent or stack memory where
    both ends execute inside a FASE and a control-flow path leads from
    the load to the store.  [same_block] is set when the pair is a
    forward pair within one block (handled by interval covering);
    cross-block and cyclic pairs are handled by block-entry / loop
    header cuts. *)
