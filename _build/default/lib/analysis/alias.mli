(** BasicAA-style alias analysis (Sec. IV-A-b).

    Address expressions are resolved to [base + constant offset] where
    the base is rooted at an allocation site ([alloca], [nv_alloc]), a
    constant, or a parameter.  Resolution is {e per use}, through
    {!Reaching}: a register re-assigned elsewhere still resolves
    precisely at a use reached by a unique definition.  Pointers loaded
    from memory and joins with several reaching definitions are
    unknown.  Like LLVM's basicAA, the result is deliberately
    conservative: unknown vs anything is a may-alias. *)

open Ido_ir

type t

val compute : Ir.func -> t

val may_alias : t -> Ir.pos -> Ir.pos -> bool
(** [may_alias t p q] — may the memory word accessed by the load/store
    at [p] be the word accessed by the one at [q]?  Positions must
    hold [Load]/[Store] instructions (or memory intrinsics, which are
    treated as unknown accesses of their space). *)

type base =
  | Alloca_site of int  (** block*2^20+idx of the defining alloca *)
  | Heap_site of int  (** likewise, for [nv_alloc] *)
  | Const of int64
  | Param of int
  | Unknown

type expr = { base : base; delta : int }

val resolve_access : t -> Ir.pos -> (Ir.space * expr) option
(** Exposed for tests: the space and resolved address expression of
    the memory operation at [pos]; [None] when not a memory op. *)
