(** Control-flow-graph utilities for one {!Ido_ir.Ir.func}:
    predecessors, reverse postorder, dominators (Cooper–Harvey–Kennedy),
    back edges, loop headers and block-level reachability. *)

open Ido_ir

type t

val build : Ir.func -> t

val func : t -> Ir.func
val nblocks : t -> int
val succs : t -> int -> int list
val preds : t -> int -> int list

val reverse_postorder : t -> int list
(** Reachable blocks only, entry first. *)

val reachable : t -> int -> bool
(** Reachable from the entry block. *)

val idom : t -> int -> int option
(** Immediate dominator; [None] for the entry or unreachable blocks. *)

val dominates : t -> int -> int -> bool
(** [dominates t a b]: does block [a] dominate block [b]? *)

val back_edges : t -> (int * int) list
(** Edges [(src, dst)] where [dst] dominates [src]. *)

val loop_headers : t -> int list
(** Targets of back edges, deduplicated, ascending. *)

val path_exists : t -> Ir.pos -> Ir.pos -> bool
(** [path_exists t p q]: can control flow from just after position [p]
    reach position [q]?  Same-block forward layout counts; otherwise a
    (possibly cyclic) block path from [p]'s block to [q]'s block must
    exist. *)
