(** Reaching definitions for virtual registers.

    For each program position, the set of definition sites whose value
    a register may still hold.  Function parameters are modelled as
    definitions at the virtual position [param_pos] so that every use
    is reached by at least one definition in a validated program.

    {!Alias} consumes this analysis to resolve address expressions
    per-use: a register with a {e unique} reaching definition at a use
    site resolves precisely even when it is re-assigned elsewhere in
    the function (builder code uses [assign] freely). *)

open Ido_ir

type t

val compute : Cfg.t -> t

val param_pos : int -> Ir.pos
(** Virtual definition site of the [i]-th parameter (block -1). *)

val defs_at : t -> Ir.pos -> Ir.reg -> Ir.pos list
(** Definition sites of [reg] reaching the point just before the
    instruction at [pos]; sorted, without duplicates. *)

val unique_def : t -> Ir.pos -> Ir.reg -> Ir.pos option
(** [Some d] when exactly one definition reaches. *)
