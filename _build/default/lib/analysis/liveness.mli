(** Backward liveness of virtual registers, at block and instruction
    granularity.  Supplies the live-in sets that the iDO boundary hook
    must preserve and the [Def ∩ LiveOut] output sets of Eq. 1. *)

open Ido_ir

type t

val compute : Cfg.t -> t

val live_in : t -> int -> Regset.t
(** Registers live at entry of a block. *)

val live_out : t -> int -> Regset.t
(** Registers live at exit of a block. *)

val live_at : t -> Ir.pos -> Regset.t
(** Registers live just {e before} the instruction (or terminator) at
    the given position. *)
