open Ido_ir

type t = {
  cfg : Cfg.t;
  block_live_in : Regset.t array;
  block_live_out : Regset.t array;
  (* per block: live set before each instruction index (length =
     #instrs + 1, the last entry being "before the terminator") *)
  at : Regset.t array array;
}

let transfer_instr live instr =
  let live = List.fold_left (fun s d -> Regset.remove d s) live (Ir.instr_defs instr) in
  List.fold_left (fun s u -> Regset.add u s) live (Ir.instr_uses instr)

let block_transfer (b : Ir.block) live_out =
  let live = ref (List.fold_left (fun s u -> Regset.add u s) live_out (Ir.term_uses b.term)) in
  for i = Array.length b.instrs - 1 downto 0 do
    live := transfer_instr !live b.instrs.(i)
  done;
  !live

let compute cfg =
  let f = Cfg.func cfg in
  let n = Array.length f.blocks in
  let live_in = Array.make n Regset.empty in
  let live_out = Array.make n Regset.empty in
  let changed = ref true in
  while !changed do
    changed := false;
    (* Process in reverse RPO for fast convergence. *)
    List.iter
      (fun b ->
        let out =
          List.fold_left
            (fun acc s -> Regset.union acc live_in.(s))
            Regset.empty (Cfg.succs cfg b)
        in
        let inn = block_transfer f.blocks.(b) out in
        if not (Regset.equal out live_out.(b)) || not (Regset.equal inn live_in.(b))
        then begin
          live_out.(b) <- out;
          live_in.(b) <- inn;
          changed := true
        end)
      (List.rev (Cfg.reverse_postorder cfg))
  done;
  (* Materialize per-instruction live sets. *)
  let at =
    Array.init n (fun b ->
        let blk = f.blocks.(b) in
        let ni = Array.length blk.instrs in
        let arr = Array.make (ni + 1) Regset.empty in
        let live =
          ref
            (List.fold_left
               (fun s u -> Regset.add u s)
               live_out.(b) (Ir.term_uses blk.term))
        in
        arr.(ni) <- !live;
        for i = ni - 1 downto 0 do
          live := transfer_instr !live blk.instrs.(i);
          arr.(i) <- !live
        done;
        arr)
  in
  { cfg; block_live_in = live_in; block_live_out = live_out; at }

let live_in t b = t.block_live_in.(b)
let live_out t b = t.block_live_out.(b)

let live_at t (p : Ir.pos) = t.at.(p.blk).(p.idx)
