(** Idempotent region formation (Sec. IV-A-b).

    Regions are delimited by {e cuts}: a cut at position [(b, i)]
    places a region boundary immediately before instruction [i] of
    block [b].  The iDO instrumentation pass materialises each cut as
    a [Hregion] hook.

    Mandatory cuts: after every lock acquire and before every release
    inside a FASE (Sec. III-B), after [Durable_begin] / before
    [Durable_end], and at every in-FASE loop header (covering
    antidependences carried by back edges).  Remaining same-block
    forward WAR pairs are covered by a minimum set of extra cuts,
    chosen by the classic greedy interval point-cover — the "hitting
    set algorithm" of the paper, optimal for interval families.

    For every cut we compute the registers live into the opened region
    (the set the boundary must be able to restore) and the OutputSet of
    the closed region, [Def ∩ LiveOut] (Eq. 1), which bounds the
    persist cost of the boundary. *)

open Ido_ir

type cut = {
  pos : Ir.pos;
  id : int;  (** static region id, unique per function *)
  live_in : Ir.reg list;  (** registers live at the cut *)
  out_regs : Ir.reg list;
      (** registers defined since the previous cut (on any path) that
          are still live at this cut *)
  required : bool;
      (** separates a WAR pair (loop header, cross-block entry, or
          interval cover): the runtime must always persist it.  Cuts
          with [required = false] are lock-induced and may be elided
          while the closed region is clean. *)
  at_release : bool;  (** sits immediately before a lock release *)
}

type t = {
  cuts : cut list;  (** sorted by position *)
  n_war_pairs : int;
  n_mandatory : int;  (** cuts forced by locks / loops / cross-block WAR *)
  n_hitting : int;  (** extra cuts chosen by the interval cover *)
}

val compute : Cfg.t -> Fase.t -> Liveness.t -> Alias.t -> t
(** @raise Failure on an irreducible CFG (a retreating edge whose
    target does not dominate its source). *)

val cut_positions : t -> Ir.pos list

val verify_no_war_within_regions : Cfg.t -> Fase.t -> Alias.t -> t -> bool
(** Test oracle: no may-alias WAR pair survives without a cut between
    its load and its store (checked exhaustively over paths of bounded
    length). *)
