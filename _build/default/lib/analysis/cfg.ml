open Ido_ir

type t = {
  func : Ir.func;
  succs : int list array;
  preds : int list array;
  rpo : int list;
  rpo_index : int array;  (* -1 for unreachable *)
  idom : int array;  (* -1 = none *)
  reach : bool array array;  (* block-level reachability, incl. cycles *)
}

let compute_rpo succs n =
  let visited = Array.make n false in
  let order = ref [] in
  let rec dfs b =
    if not visited.(b) then begin
      visited.(b) <- true;
      List.iter dfs succs.(b);
      order := b :: !order
    end
  in
  if n > 0 then dfs 0;
  !order

(* Cooper–Harvey–Kennedy iterative dominator computation. *)
let compute_idom succs preds rpo n =
  let rpo_index = Array.make n (-1) in
  List.iteri (fun i b -> rpo_index.(b) <- i) rpo;
  let idom = Array.make n (-1) in
  if n > 0 then idom.(0) <- 0;
  let intersect b1 b2 =
    let f1 = ref b1 and f2 = ref b2 in
    while !f1 <> !f2 do
      while rpo_index.(!f1) > rpo_index.(!f2) do
        f1 := idom.(!f1)
      done;
      while rpo_index.(!f2) > rpo_index.(!f1) do
        f2 := idom.(!f2)
      done
    done;
    !f1
  in
  let changed = ref true in
  while !changed do
    changed := false;
    List.iter
      (fun b ->
        if b <> 0 then begin
          let processed_preds =
            List.filter
              (fun p -> idom.(p) <> -1 && rpo_index.(p) <> -1)
              preds.(b)
          in
          match processed_preds with
          | [] -> ()
          | first :: rest ->
              let new_idom = List.fold_left intersect first rest in
              if idom.(b) <> new_idom then begin
                idom.(b) <- new_idom;
                changed := true
              end
        end)
      rpo
  done;
  ignore succs;
  (idom, rpo_index)

let compute_reach succs n =
  let reach = Array.init n (fun _ -> Array.make n false) in
  for b = 0 to n - 1 do
    (* BFS from each block following successor edges. *)
    let q = Queue.create () in
    List.iter (fun s -> Queue.add s q) succs.(b);
    while not (Queue.is_empty q) do
      let s = Queue.pop q in
      if not reach.(b).(s) then begin
        reach.(b).(s) <- true;
        List.iter (fun s' -> Queue.add s' q) succs.(s)
      end
    done
  done;
  reach

let build (func : Ir.func) =
  let n = Array.length func.blocks in
  let succs = Array.init n (fun b -> Ir.successors func.blocks.(b).term) in
  let preds = Array.make n [] in
  Array.iteri
    (fun b ss -> List.iter (fun s -> preds.(s) <- b :: preds.(s)) ss)
    succs;
  Array.iteri (fun i l -> preds.(i) <- List.rev l) preds;
  let rpo = compute_rpo succs n in
  let idom, rpo_index = compute_idom succs preds rpo n in
  let reach = compute_reach succs n in
  { func; succs; preds; rpo; rpo_index; idom; reach }

let func t = t.func
let nblocks t = Array.length t.func.blocks
let succs t b = t.succs.(b)
let preds t b = t.preds.(b)
let reverse_postorder t = t.rpo
let reachable t b = b = 0 || t.rpo_index.(b) >= 0

let idom t b =
  if b = 0 then None
  else if t.idom.(b) = -1 then None
  else Some t.idom.(b)

let dominates t a b =
  if not (reachable t b) then false
  else begin
    let rec walk x = if x = a then true else if x = 0 then a = 0 else walk t.idom.(x) in
    walk b
  end

let back_edges t =
  let edges = ref [] in
  Array.iteri
    (fun src ss ->
      if reachable t src then
        List.iter
          (fun dst -> if dominates t dst src then edges := (src, dst) :: !edges)
          ss)
    t.succs;
  List.rev !edges

let loop_headers t =
  List.sort_uniq compare (List.map snd (back_edges t))

let path_exists t (p : Ir.pos) (q : Ir.pos) =
  if p.blk = q.blk && p.idx < q.idx then true
  else t.reach.(p.blk).(q.blk)
