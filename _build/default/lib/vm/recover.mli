(** Post-crash recovery, dispatched on the machine's scheme
    (Sec. III-C for iDO; each baseline per its published algorithm).
    Driven through {!Vm.recover}. *)

open Ido_util
open Ido_runtime

type stats = {
  scheme : Scheme.t;
  fases_resumed : int;  (** interrupted FASEs run to completion *)
  records_scanned : int;  (** UNDO records traversed (Atlas / NVML) *)
  writes_undone : int;
  fases_rolled_back : int;
  pages_restored : int;  (** NVThreads page images applied *)
  txns_replayed : int;  (** Mnemosyne committed transactions re-applied *)
  simulated_time : Timebase.ns;
      (** modelled wall time of the whole recovery: process restart
          constants plus the executed recovery work (DESIGN.md §5) *)
}

val recover : State.t -> stats
(** Run the scheme's recovery against the current persistent image;
    afterwards the region is marked clean and the machine accepts
    fresh work. *)
