open Ido_ir

type t = {
  program : Ir.program;
  table : (string * Ir.pos) array;  (* pc - 1 -> position *)
  index : (string, (Ir.pos, int) Hashtbl.t) Hashtbl.t;
  funcs : (string, Ir.func) Hashtbl.t;
  max_regs : int;
}

let build (program : Ir.program) =
  let table = ref [] in
  let index = Hashtbl.create 16 in
  let funcs = Hashtbl.create 16 in
  let count = ref 0 in
  let max_regs = ref 0 in
  List.iter
    (fun (name, (f : Ir.func)) ->
      Hashtbl.replace funcs name f;
      if f.nregs > !max_regs then max_regs := f.nregs;
      let fidx = Hashtbl.create 64 in
      Hashtbl.replace index name fidx;
      Array.iteri
        (fun b (blk : Ir.block) ->
          for i = 0 to Array.length blk.instrs do
            let pos = { Ir.blk = b; idx = i } in
            incr count;
            Hashtbl.replace fidx pos !count;
            table := (name, pos) :: !table
          done)
        f.blocks)
    program.funcs;
  {
    program;
    table = Array.of_list (List.rev !table);
    index;
    funcs;
    max_regs = !max_regs;
  }

let program t = t.program

let pc_of_pos t ~fname pos =
  match Hashtbl.find_opt t.index fname with
  | None -> invalid_arg ("Image.pc_of_pos: unknown function " ^ fname)
  | Some fidx -> (
      match Hashtbl.find_opt fidx pos with
      | None ->
          invalid_arg
            (Printf.sprintf "Image.pc_of_pos: bad position (%d,%d) in %s"
               pos.blk pos.idx fname)
      | Some pc -> pc)

let pos_of_pc t pc =
  if pc <= 0 || pc > Array.length t.table then
    invalid_arg (Printf.sprintf "Image.pos_of_pc: bad pc %d" pc)
  else t.table.(pc - 1)

let func t name =
  match Hashtbl.find_opt t.funcs name with
  | Some f -> f
  | None -> invalid_arg ("Image.func: unknown function " ^ name)

let max_regs t = t.max_regs
