lib/vm/state.ml: Cdf Hashtbl Ido_ir Ido_nvm Ido_region Ido_runtime Ido_util Image Ir Latency List Pmem Pwriter Queue Region Rng Scheme Stdlib Timebase Vmem
