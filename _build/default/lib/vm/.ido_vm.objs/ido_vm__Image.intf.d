lib/vm/image.mli: Ido_ir Ir
