lib/vm/recover.mli: Ido_runtime Ido_util Scheme State Timebase
