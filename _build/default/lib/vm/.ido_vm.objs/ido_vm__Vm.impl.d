lib/vm/vm.ml: Ido_nvm Ido_runtime Interp List Lognode Recover Scheme State Undo_log
