lib/vm/interp.mli: Ido_ir Ido_util Ir State Timebase
