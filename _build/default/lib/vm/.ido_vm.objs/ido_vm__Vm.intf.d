lib/vm/vm.mli: Cdf Ido_ir Ido_nvm Ido_region Ido_runtime Ido_util Image Ir Recover Scheme State Timebase
