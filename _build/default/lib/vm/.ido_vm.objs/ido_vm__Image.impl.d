lib/vm/image.ml: Array Hashtbl Ido_ir Ir List Printf
