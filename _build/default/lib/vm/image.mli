(** Dense program-counter encoding for an (instrumented) program.

    A recovery PC must survive in one persistent word (Fig. 3); this
    module numbers every instruction slot of every function densely,
    with 0 reserved for "no recovery pending".  Slot
    [index = Array.length instrs] denotes the block terminator. *)

open Ido_ir

type t

val build : Ir.program -> t

val program : t -> Ir.program

val pc_of_pos : t -> fname:string -> Ir.pos -> int
(** Dense id (≥ 1).
    @raise Invalid_argument for an unknown function or position. *)

val pos_of_pc : t -> int -> string * Ir.pos
(** Inverse of {!pc_of_pos}.
    @raise Invalid_argument for pc 0 or out of range. *)

val func : t -> string -> Ir.func
(** @raise Invalid_argument when absent. *)

val max_regs : t -> int
(** Largest [nregs] over all functions (sizes the intRF image). *)
