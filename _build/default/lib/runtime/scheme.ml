type t = Ido | Atlas | Mnemosyne | Justdo | Nvml | Nvthreads | Origin

let all = [ Ido; Atlas; Mnemosyne; Justdo; Nvml; Nvthreads; Origin ]

let name = function
  | Ido -> "ido"
  | Atlas -> "atlas"
  | Mnemosyne -> "mnemosyne"
  | Justdo -> "justdo"
  | Nvml -> "nvml"
  | Nvthreads -> "nvthreads"
  | Origin -> "origin"

let of_name s =
  List.find_opt (fun t -> name t = String.lowercase_ascii s) all

let table2_header =
  [
    "System";
    "Failure-atomic region semantics";
    "Recovery";
    "Logging granularity";
    "Dep tracking?";
    "Transient caches?";
  ]

let table2_row = function
  | Ido ->
      [ "iDO Logging"; "Lock-inferred FASE"; "Resumption"; "Idempotent Region"; "No"; "Yes" ]
  | Atlas -> [ "Atlas"; "Lock-inferred FASE"; "UNDO"; "Store"; "Yes"; "Yes" ]
  | Mnemosyne ->
      [ "Mnemosyne"; "C++ Transactions"; "REDO"; "Store"; "No"; "Yes" ]
  | Nvthreads -> [ "NVThreads"; "Lock-inferred FASE"; "REDO"; "Page"; "Yes"; "Yes" ]
  | Justdo -> [ "JUSTDO"; "Lock-inferred FASE"; "Resumption"; "Store"; "No"; "No" ]
  | Nvml -> [ "NVML"; "Programmer Delineated"; "UNDO"; "Object"; "No"; "Yes" ]
  | Origin -> [ "Origin"; "none (crash-vulnerable)"; "-"; "-"; "No"; "Yes" ]

let pp fmt t = Format.pp_print_string fmt (name t)
