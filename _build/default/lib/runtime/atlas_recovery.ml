open Ido_nvm

type stats = {
  nodes : int;
  records_scanned : int;
  fases_found : int;
  fases_rolled_back : int;
  writes_undone : int;
  cost : Ido_util.Timebase.ns;
}

type fase = {
  mutable complete : bool;
  mutable writes : (int * int64 * int) list;  (* addr, old, seq; newest first *)
  mutable acquires : (int64 * int) list;  (* lock holder, seq *)
  mutable releases : (int64 * int) list;
}

let parse_fases records =
  let fases = ref [] in
  let current = ref None in
  List.iter
    (fun (r : Undo_log.record) ->
      match r.tag with
      | Undo_log.Fase_begin ->
          let f = { complete = false; writes = []; acquires = []; releases = [] } in
          current := Some f;
          fases := f :: !fases
      | Undo_log.Fase_end -> (
          match !current with
          | Some f ->
              f.complete <- true;
              current := None
          | None -> ())
      | Undo_log.Write -> (
          match !current with
          | Some f -> f.writes <- (Int64.to_int r.a, r.b, r.seq) :: f.writes
          | None -> ())
      | Undo_log.Acquire -> (
          match !current with
          | Some f -> f.acquires <- (r.a, r.seq) :: f.acquires
          | None -> ())
      | Undo_log.Release -> (
          match !current with
          | Some f -> f.releases <- (r.a, r.seq) :: f.releases
          | None -> ()))
    records;
  List.rev !fases

let recover w region =
  let pm = Pwriter.pmem w in
  let nodes = ref [] in
  Lognode.iter pm region (fun a ->
      if Lognode.kind pm a = Lognode.kind_atlas then nodes := a :: !nodes);
  let all_fases = ref [] in
  let records_scanned = ref 0 in
  List.iter
    (fun node ->
      let records = Undo_log.records pm node in
      (* Charge a scan cost per record: one cache-line read each. *)
      Pwriter.add_cost w
        (List.length records * (Pwriter.latency w).Latency.mem * 4);
      records_scanned := !records_scanned + List.length records;
      all_fases := parse_fases records @ !all_fases)
    !nodes;
  let fases = Array.of_list !all_fases in
  let n = Array.length fases in
  (* Seed the rollback set with interrupted FASEs, then propagate
     along happens-before edges: G rolled back, G released l at s',
     F acquired l at s >= s'  ==>  F rolled back. *)
  let rolled = Array.make n false in
  Array.iteri (fun i f -> if not f.complete then rolled.(i) <- true) fases;
  let changed = ref true in
  while !changed do
    changed := false;
    Array.iteri
      (fun gi g ->
        if rolled.(gi) then
          List.iter
            (fun (lock, s') ->
              Array.iteri
                (fun fi f ->
                  if (not rolled.(fi)) && fi <> gi then
                    if
                      List.exists (fun (l, s) -> l = lock && s >= s') f.acquires
                    then begin
                      rolled.(fi) <- true;
                      changed := true
                    end)
                fases)
            g.releases)
      fases
  done;
  (* Undo in reverse global order. *)
  let writes = ref [] in
  Array.iteri (fun i f -> if rolled.(i) then writes := f.writes @ !writes) fases;
  let writes =
    List.sort (fun (_, _, s1) (_, _, s2) -> compare s2 s1) !writes
  in
  List.iter
    (fun (addr, old, _) ->
      Pwriter.store w addr old;
      Pwriter.clwb w addr)
    writes;
  if writes <> [] then Pwriter.fence w;
  List.iter (fun node -> Undo_log.reset w node) !nodes;
  let n_rolled = Array.fold_left (fun acc b -> if b then acc + 1 else acc) 0 rolled in
  {
    nodes = List.length !nodes;
    records_scanned = !records_scanned;
    fases_found = n;
    fases_rolled_back = n_rolled;
    writes_undone = List.length writes;
    cost = Pwriter.take_cost w;
  }
