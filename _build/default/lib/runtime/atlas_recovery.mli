(** Atlas post-crash recovery.

    Traverses every thread's UNDO log, reconstructs the FASEs and the
    happens-before order among them from the lock acquire/release
    records, computes the set of FASEs that must be discarded — every
    FASE interrupted by the crash, plus, transitively, every FASE that
    acquired a lock {e after} a discarded FASE released it (it may have
    observed uncommitted state) — and rolls their stores back in
    reverse global order (Sec. V-D describes this log traversal; its
    cost is what Table I measures against iDO's constant-time
    restart). *)

open Ido_region

type stats = {
  nodes : int;  (** per-thread logs traversed *)
  records_scanned : int;
  fases_found : int;
  fases_rolled_back : int;
  writes_undone : int;
  cost : Ido_util.Timebase.ns;  (** simulated time spent in recovery *)
}

val recover : Pwriter.t -> Region.t -> stats
(** Scan, roll back, persist the restored values, truncate the logs.
    After [recover] the persistent heap reflects only FASEs that
    survive the happens-before analysis. *)
