(** The failure-atomicity schemes compared in the paper's evaluation,
    with the qualitative properties of Table II. *)

type t =
  | Ido  (** this paper: resumption at idempotent-region granularity *)
  | Atlas  (** OOPSLA'14: UNDO logging, lock-inferred FASEs *)
  | Mnemosyne  (** ASPLOS'11: REDO logging, C++ transactions *)
  | Justdo  (** ASPLOS'16: resumption, per-store logging *)
  | Nvml  (** Intel pmem library: UNDO, programmer-delineated *)
  | Nvthreads  (** EuroSys'17: REDO at page granularity *)
  | Origin  (** uninstrumented, crash-vulnerable baseline *)

val all : t list
val name : t -> string
val of_name : string -> t option

val table2_header : string list
val table2_row : t -> string list
(** One row of Table II: region semantics, recovery method, logging
    granularity, dependence tracking, designed for transient caches. *)

val pp : Format.formatter -> t -> unit
