lib/runtime/scheme.mli: Format
