lib/runtime/scheme.ml: Format List String
