lib/runtime/justdo_log.mli: Ido_nvm Ido_region Pmem Pwriter Region
