lib/runtime/lognode.mli: Ido_nvm Ido_region Pmem Pwriter Region
