lib/runtime/ido_log.ml: Array Ido_nvm Int64 List Lognode Pmem Pwriter
