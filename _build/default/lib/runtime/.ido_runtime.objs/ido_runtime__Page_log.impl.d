lib/runtime/page_log.ml: Ido_nvm Int64 List Lognode Pmem Pwriter
