lib/runtime/pwriter.ml: Ido_nvm Latency List Pmem
