lib/runtime/justdo_log.ml: Array Ido_log Ido_nvm Int64 List Lognode Pmem Pwriter
