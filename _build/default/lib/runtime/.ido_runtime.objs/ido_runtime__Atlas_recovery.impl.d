lib/runtime/atlas_recovery.ml: Array Ido_nvm Ido_util Int64 Latency List Lognode Pwriter Undo_log
