lib/runtime/lognode.ml: Ido_nvm Ido_region Int64 Latency Pmem Pwriter Region
