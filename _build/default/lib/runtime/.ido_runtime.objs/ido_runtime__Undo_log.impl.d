lib/runtime/undo_log.ml: Ido_nvm Int64 List Lognode Pmem Printf Pwriter
