lib/runtime/redo_log.mli: Ido_nvm Ido_region Pmem Pwriter Region
