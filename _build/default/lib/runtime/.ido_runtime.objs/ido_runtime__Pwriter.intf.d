lib/runtime/pwriter.mli: Ido_nvm Ido_util Latency Pmem Timebase
