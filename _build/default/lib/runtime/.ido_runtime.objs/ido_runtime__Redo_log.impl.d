lib/runtime/redo_log.ml: Ido_nvm Int64 List Lognode Pmem Printf Pwriter
