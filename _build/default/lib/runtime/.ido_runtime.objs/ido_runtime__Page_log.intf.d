lib/runtime/page_log.mli: Ido_nvm Ido_region Pmem Pwriter Region
