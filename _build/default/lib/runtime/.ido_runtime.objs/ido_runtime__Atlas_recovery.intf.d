lib/runtime/atlas_recovery.mli: Ido_region Ido_util Pwriter Region
