lib/instrument/instrument.mli: Ido_analysis Ido_ir Ido_runtime Ir Scheme
