lib/instrument/instrument.ml: Alias Array Cfg Fase Hashtbl Ido_analysis Ido_ir Ido_runtime Ir List Liveness Regions Scheme
