open Ido_ir
open Ido_runtime
open Ido_instrument
module Validate = Ido_analysis.Validate

(* Count hooks of each kind in a function. *)
let count_hooks pred f =
  Ir.fold_instrs
    (fun acc _ instr ->
      match instr with Ir.Hook h when pred h -> acc + 1 | _ -> acc)
    0 f

let count_instr pred f =
  Ir.fold_instrs (fun acc _ i -> if pred i then acc + 1 else acc) 0 f

let stack_push scheme =
  let prog = Ido_workloads.Workload.named "stack" in
  Ir.find_func (Instrument.instrument scheme prog) "stack_push"

let is_region = function Ir.Hregion _ -> true | _ -> false
let is_enter = function Ir.Hfase_enter -> true | _ -> false
let is_exit = function Ir.Hfase_exit -> true | _ -> false
let is_acquired = function Ir.Hlock_acquired -> true | _ -> false
let is_release = function Ir.Hlock_release _ -> true | _ -> false
let is_justdo = function Ir.Hjustdo_store -> true | _ -> false
let is_undo = function Ir.Hundo_store -> true | _ -> false
let is_txn_begin = function Ir.Htxn_begin -> true | _ -> false
let is_txn_commit = function Ir.Htxn_commit -> true | _ -> false
let is_page = function Ir.Hpage_log -> true | _ -> false
let is_commit = function Ir.Hdurable_commit -> true | _ -> false
let is_lock = function Ir.Lock _ -> true | _ -> false
let is_unlock = function Ir.Unlock _ -> true | _ -> false

let in_fase_stores f =
  let cfg = Ido_analysis.Cfg.build f in
  let fase = Ido_analysis.Fase.compute_exn cfg in
  Ir.fold_instrs
    (fun acc pos i ->
      match i with
      | Ir.Store { space = Ir.Persistent; _ } when Ido_analysis.Fase.in_fase fase pos ->
          acc + 1
      | _ -> acc)
    0 f

let test_origin_identity () =
  let prog = Ido_workloads.Workload.named "stack" in
  let f0 = Ir.find_func prog "stack_push" in
  let f1 = stack_push Scheme.Origin in
  Alcotest.(check int) "no hooks added" 0 (count_hooks (fun _ -> true) f1);
  Alcotest.(check int) "same instruction count"
    (count_instr (fun _ -> true) f0)
    (count_instr (fun _ -> true) f1)

let test_ido_hooks () =
  let f = stack_push Scheme.Ido in
  Alcotest.(check bool) "has region boundaries" true (count_hooks is_region f >= 3);
  Alcotest.(check int) "one enter" 1 (count_hooks is_enter f);
  Alcotest.(check int) "one exit" 1 (count_hooks is_exit f);
  Alcotest.(check int) "one acquire record" 1 (count_hooks is_acquired f);
  Alcotest.(check int) "one release record" 1 (count_hooks is_release f);
  Alcotest.(check int) "no per-store hooks" 0
    (count_hooks (fun h -> is_justdo h || is_undo h) f)

let test_ido_hook_order () =
  (* After the Lock: Hfase_enter, Hlock_acquired, then a boundary. *)
  let f = stack_push Scheme.Ido in
  let instrs = f.Ir.blocks.(0).Ir.instrs in
  let lock_at = ref (-1) in
  Array.iteri (fun i x -> if is_lock x then lock_at := i) instrs;
  Alcotest.(check bool) "found lock" true (!lock_at >= 0);
  (match
     (instrs.(!lock_at + 1), instrs.(!lock_at + 2), instrs.(!lock_at + 3))
   with
  | Ir.Hook Ir.Hfase_enter, Ir.Hook Ir.Hlock_acquired, Ir.Hook (Ir.Hregion _) -> ()
  | _ -> Alcotest.fail "unexpected hook order after acquire")

let test_ido_release_region_flags () =
  let f = stack_push Scheme.Ido in
  (* The boundary immediately preceding the release record is flagged
     at_release (its pc update defers to the release fence). *)
  let found = ref false in
  Array.iter
    (fun (blk : Ir.block) ->
      let n = Array.length blk.Ir.instrs in
      for i = 0 to n - 2 do
        match (blk.Ir.instrs.(i), blk.Ir.instrs.(i + 1)) with
        | Ir.Hook (Ir.Hregion rh), Ir.Hook (Ir.Hlock_release _) ->
            found := true;
            Alcotest.(check bool) "at_release flag" true rh.Ir.at_release
        | _ -> ()
      done)
    f.Ir.blocks;
  Alcotest.(check bool) "found release boundary" true !found

let test_justdo_hooks () =
  let f = stack_push Scheme.Justdo in
  Alcotest.(check int) "one justdo hook per in-FASE store"
    (in_fase_stores f) (count_hooks is_justdo f);
  Alcotest.(check int) "no regions" 0 (count_hooks is_region f);
  Alcotest.(check int) "lock records" 2
    (count_hooks (fun h -> is_acquired h || is_release h) f)

let test_atlas_hooks () =
  let f = stack_push Scheme.Atlas in
  Alcotest.(check int) "one undo hook per in-FASE store"
    (in_fase_stores f) (count_hooks is_undo f);
  Alcotest.(check int) "FASE-end commit" 1 (count_hooks is_commit f);
  Alcotest.(check int) "lock records" 2
    (count_hooks (fun h -> is_acquired h || is_release h) f)

let test_mnemosyne_locks_replaced () =
  let f = stack_push Scheme.Mnemosyne in
  Alcotest.(check int) "locks elided" 0 (count_instr is_lock f);
  Alcotest.(check int) "unlocks elided" 0 (count_instr is_unlock f);
  Alcotest.(check int) "txn begin" 1 (count_hooks is_txn_begin f);
  Alcotest.(check int) "txn commit" 1 (count_hooks is_txn_commit f)

let test_mnemosyne_inner_locks_elided () =
  (* Hand-over-hand: every lock disappears, a single txn remains. *)
  let prog = Ido_workloads.Workload.named "olist" in
  let f = Ir.find_func (Instrument.instrument Scheme.Mnemosyne prog) "list_put" in
  Alcotest.(check int) "no locks" 0 (count_instr is_lock f);
  Alcotest.(check int) "one begin" 1 (count_hooks is_txn_begin f);
  Alcotest.(check int) "one commit" 1 (count_hooks is_txn_commit f)

let test_nvthreads_hooks () =
  let f = stack_push Scheme.Nvthreads in
  Alcotest.(check int) "page hook per in-FASE store"
    (in_fase_stores f) (count_hooks is_page f);
  Alcotest.(check int) "commit at release" 1 (count_hooks is_commit f)

let test_nvml_ignores_lock_fases () =
  let f = stack_push Scheme.Nvml in
  Alcotest.(check int) "library cannot see lock FASEs" 0
    (count_hooks (fun _ -> true) f)

let test_nvml_durable_regions () =
  let prog = Ido_workloads.Workload.named "objstore" in
  let f = Ir.find_func (Instrument.instrument Scheme.Nvml prog) "obj_put" in
  Alcotest.(check bool) "undo hooks present" true (count_hooks is_undo f > 0);
  Alcotest.(check int) "commit" 1 (count_hooks is_commit f);
  let g = Ir.find_func (Instrument.instrument Scheme.Nvml prog) "obj_get" in
  Alcotest.(check int) "read path untouched" 0 (count_hooks (fun _ -> true) g)

let test_instrumented_validates () =
  List.iter
    (fun scheme ->
      List.iter
        (fun name ->
          let prog =
            Instrument.instrument scheme (Ido_workloads.Workload.named name)
          in
          match Validate.check_program ~allow_hooks:true prog with
          | Ok () -> ()
          | Error es ->
              Alcotest.failf "%s/%s: %s" (Scheme.name scheme) name
                (String.concat "; " es))
        Ido_workloads.Workload.names)
    Scheme.all

let test_hregion_hooks_only_in_fase () =
  (* Every Hregion in every instrumented workload lies inside a FASE
     (or at its border). *)
  List.iter
    (fun name ->
      let prog = Instrument.instrument Scheme.Ido (Ido_workloads.Workload.named name) in
      List.iter
        (fun (_, f) ->
          let cfg = Ido_analysis.Cfg.build f in
          match Ido_analysis.Fase.compute cfg with
          | Error e -> Alcotest.fail e
          | Ok fase ->
              ignore
                (Ir.fold_instrs
                   (fun () pos i ->
                     match i with
                     | Ir.Hook (Ir.Hregion _) ->
                         Alcotest.(check bool)
                           (Printf.sprintf "%s/%s region hook in FASE" name f.Ir.name)
                           true
                           (Ido_analysis.Fase.covers fase pos
                           || Ido_analysis.Fase.in_fase fase pos)
                     | _ -> ())
                   () f))
        prog.Ir.funcs)
    [ "stack"; "queue"; "olist"; "hmap" ]

let suites =
  [
    ( "instrument",
      [
        Alcotest.test_case "origin identity" `Quick test_origin_identity;
        Alcotest.test_case "ido hooks" `Quick test_ido_hooks;
        Alcotest.test_case "ido hook order" `Quick test_ido_hook_order;
        Alcotest.test_case "ido release flags" `Quick test_ido_release_region_flags;
        Alcotest.test_case "justdo hooks" `Quick test_justdo_hooks;
        Alcotest.test_case "atlas hooks" `Quick test_atlas_hooks;
        Alcotest.test_case "mnemosyne replaces locks" `Quick
          test_mnemosyne_locks_replaced;
        Alcotest.test_case "mnemosyne hand-over-hand" `Quick
          test_mnemosyne_inner_locks_elided;
        Alcotest.test_case "nvthreads hooks" `Quick test_nvthreads_hooks;
        Alcotest.test_case "nvml ignores lock FASEs" `Quick
          test_nvml_ignores_lock_fases;
        Alcotest.test_case "nvml durable regions" `Quick test_nvml_durable_regions;
        Alcotest.test_case "instrumented programs validate" `Quick
          test_instrumented_validates;
        Alcotest.test_case "region hooks in FASEs" `Quick
          test_hregion_hooks_only_in_fase;
      ] );
  ]
