open Ido_runtime
open Ido_harness

let test_throughput_run () =
  let prog = Ido_workloads.Workload.named "stack" in
  let r = Exp.throughput ~scheme:Scheme.Ido ~threads:2 ~total_ops:400 prog in
  Alcotest.(check int) "all ops performed" 400 r.Exp.ops;
  Alcotest.(check bool) "positive throughput" true (r.Exp.mops > 0.0);
  Alcotest.(check bool) "time advanced" true (r.Exp.sim_ns > 0);
  Alcotest.(check bool) "persistence traffic counted" true (r.Exp.fences > 0)

let test_throughput_origin_fastest () =
  let prog = Ido_workloads.Workload.named "stack" in
  let t s = (Exp.throughput ~scheme:s ~threads:1 ~total_ops:400 prog).Exp.mops in
  let origin = t Scheme.Origin and ido = t Scheme.Ido and justdo = t Scheme.Justdo in
  Alcotest.(check bool) "origin > ido" true (origin > ido);
  Alcotest.(check bool) "ido > justdo" true (ido > justdo)

let test_crash_report () =
  let prog = Ido_workloads.Workload.named "queue" in
  let r =
    Exp.crash_recover_check ~scheme:Scheme.Ido ~threads:2 ~ops_per_thread:50_000
      ~crash_at:100_000 prog
  in
  Alcotest.(check bool) "recovered and consistent" true r.Exp.check_ok;
  Alcotest.(check bool) "crash happened mid-run" true (r.Exp.crashed_at >= 100_000)

let test_region_stats_collected () =
  let prog = Ido_workloads.Workload.named "stack" in
  let stores, live_in = Exp.region_stats ~threads:2 ~total_ops:400 prog in
  Alcotest.(check bool) "regions recorded" true (Ido_util.Cdf.total stores > 0);
  Alcotest.(check bool) "live-in recorded" true (Ido_util.Cdf.total live_in > 0);
  (* Persist coalescing headroom: the overwhelming majority of regions
     must need at most one cache line of register log. *)
  Alcotest.(check bool) "live-in mostly small" true
    (Ido_util.Cdf.cumulative live_in 8 > 0.95)

let test_scales () =
  Alcotest.(check bool) "quick fewer threads" true
    (List.length (Exp.thread_counts Exp.Quick)
    <= List.length (Exp.thread_counts Exp.Full));
  Alcotest.(check bool) "quick fewer ops" true
    (Exp.micro_total_ops Exp.Quick <= Exp.micro_total_ops Exp.Full)

let test_ablation_knobs_cost () =
  (* Disabling an optimisation must never make iDO faster. *)
  let prog = Ido_workloads.Workload.named "olist" in
  let base = Ido_vm.Vm.config Scheme.Ido in
  let mops cfg =
    let m = Ido_vm.Vm.create cfg prog in
    let _ = Ido_vm.Vm.spawn m ~fname:"init" ~args:[] in
    ignore (Ido_vm.Vm.run m);
    Ido_vm.Vm.flush_all m;
    let t0 = Ido_vm.Vm.clock m in
    for _ = 1 to 2 do
      ignore (Ido_vm.Vm.spawn m ~fname:"worker" ~args:[ 250L ])
    done;
    (match Ido_vm.Vm.run m with `Idle -> () | _ -> Alcotest.fail "stuck");
    float_of_int (Ido_vm.Vm.total_ops m)
    /. float_of_int (Ido_vm.Vm.clock m - t0)
  in
  let full = mops base in
  Alcotest.(check bool) "elision helps" true
    (full >= mops { base with Ido_vm.Vm.elide_clean_boundaries = false });
  Alcotest.(check bool) "coalescing helps" true
    (full >= mops { base with Ido_vm.Vm.coalesce_registers = false });
  Alcotest.(check bool) "single-fence locks help" true
    (full >= mops { base with Ido_vm.Vm.single_fence_locks = false })

let test_ablation_variants_still_recover () =
  (* The knobs trade performance, never correctness. *)
  let prog = Ido_workloads.Workload.named "olist" in
  let base = Ido_vm.Vm.config Scheme.Ido in
  List.iter
    (fun cfg ->
      let m = Ido_vm.Vm.create { cfg with Ido_vm.Vm.seed = 9 } prog in
      let _ = Ido_vm.Vm.spawn m ~fname:"init" ~args:[] in
      ignore (Ido_vm.Vm.run m);
      Ido_vm.Vm.flush_all m;
      for _ = 1 to 3 do
        ignore (Ido_vm.Vm.spawn m ~fname:"worker" ~args:[ 300L ])
      done;
      (match Ido_vm.Vm.run ~until:(Ido_vm.Vm.clock m + 40_000) m with
      | `Until | `Idle -> ()
      | _ -> Alcotest.fail "stuck");
      Ido_vm.Vm.crash m;
      ignore (Ido_vm.Vm.recover m);
      let t = Ido_vm.Vm.spawn m ~fname:"check" ~args:[] in
      match Ido_vm.Vm.run m with
      | `Idle -> Alcotest.(check int) "check observed" 1 (List.length (Ido_vm.Vm.observations t))
      | _ -> Alcotest.fail "check stuck")
    [
      { base with Ido_vm.Vm.elide_clean_boundaries = false };
      { base with Ido_vm.Vm.coalesce_registers = false };
      { base with Ido_vm.Vm.single_fence_locks = false };
    ]

let test_nv_cache_machine () =
  (* On the NV-cache machine, nothing in the cache is lost at a crash
     and persistence is near-free, so iDO gets faster AND still
     recovers. *)
  let prog = Ido_workloads.Workload.named "queue" in
  let base = Ido_vm.Vm.config Scheme.Ido in
  let nv = { base with Ido_vm.Vm.latency = Ido_nvm.Latency.nv_cache_machine } in
  let run cfg =
    let m = Ido_vm.Vm.create { cfg with Ido_vm.Vm.seed = 4 } prog in
    let _ = Ido_vm.Vm.spawn m ~fname:"init" ~args:[] in
    ignore (Ido_vm.Vm.run m);
    Ido_vm.Vm.flush_all m;
    let t0 = Ido_vm.Vm.clock m in
    for _ = 1 to 2 do
      ignore (Ido_vm.Vm.spawn m ~fname:"worker" ~args:[ 200L ])
    done;
    (match Ido_vm.Vm.run ~until:(t0 + 25_000) m with
    | `Until | `Idle -> ()
    | _ -> Alcotest.fail "stuck");
    let progressed = Ido_vm.Vm.total_ops m in
    Ido_vm.Vm.crash m;
    ignore (Ido_vm.Vm.recover m);
    let t = Ido_vm.Vm.spawn m ~fname:"check" ~args:[] in
    (match Ido_vm.Vm.run m with `Idle -> () | _ -> Alcotest.fail "check stuck");
    Alcotest.(check int) "consistent" 1 (List.length (Ido_vm.Vm.observations t));
    progressed
  in
  let volatile_ops = run base in
  let nv_ops = run nv in
  Alcotest.(check bool) "nv-cache machine is faster" true (nv_ops >= volatile_ops)

let test_table2_renders () =
  let s = Figures.table2 () in
  List.iter
    (fun frag ->
      Alcotest.(check bool) (frag ^ " present") true
        (let rec contains i =
           i + String.length frag <= String.length s
           && (String.sub s i (String.length frag) = frag || contains (i + 1))
         in
         contains 0))
    [ "iDO Logging"; "Resumption"; "Idempotent Region"; "JUSTDO"; "Mnemosyne" ]

let suites =
  [
    ( "harness",
      [
        Alcotest.test_case "throughput run" `Quick test_throughput_run;
        Alcotest.test_case "scheme ordering" `Quick test_throughput_origin_fastest;
        Alcotest.test_case "crash report" `Quick test_crash_report;
        Alcotest.test_case "region stats" `Quick test_region_stats_collected;
        Alcotest.test_case "scales" `Quick test_scales;
        Alcotest.test_case "ablation knob costs" `Quick test_ablation_knobs_cost;
        Alcotest.test_case "ablation variants recover" `Quick
          test_ablation_variants_still_recover;
        Alcotest.test_case "nv-cache machine" `Quick test_nv_cache_machine;
        Alcotest.test_case "table2" `Quick test_table2_renders;
      ] );
  ]
