test/test_ir.ml: Alcotest Array Builder Format Ido_analysis Ido_ir Ido_workloads Ir List String Validate
