test/test_recovery.ml: Alcotest Ido_runtime Ido_util Ido_vm Ido_workloads Int64 List Option Printf QCheck QCheck_alcotest Scheme
