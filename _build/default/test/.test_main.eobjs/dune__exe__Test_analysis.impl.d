test/test_analysis.ml: Alcotest Alias Antidep Array Builder Cfg Fase Ido_analysis Ido_ir Ido_workloads Ir List Liveness Printf Reaching Regions Regset
