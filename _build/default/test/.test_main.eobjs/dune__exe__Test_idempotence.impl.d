test/test_idempotence.ml: Array Builder Hashtbl Ido_ir Ido_nvm Ido_region Ido_runtime Ido_vm Ido_workloads Int64 Ir List Printf QCheck QCheck_alcotest Scheme String
