test/test_harness.ml: Alcotest Exp Figures Ido_harness Ido_nvm Ido_runtime Ido_util Ido_vm Ido_workloads List Scheme String
