test/test_util.ml: Alcotest Array Cdf Format Gen Ido_util List QCheck QCheck_alcotest Render Rng Stats String Timebase Zipf
