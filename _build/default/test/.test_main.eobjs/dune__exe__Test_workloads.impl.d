test/test_workloads.ml: Alcotest Builder Ido_ir Ido_runtime Ido_vm Ido_workloads Int64 Ir List Scheme
