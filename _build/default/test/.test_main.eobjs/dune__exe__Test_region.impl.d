test/test_region.ml: Alcotest Gen Ido_nvm Ido_region Ido_util List Pmem QCheck QCheck_alcotest Region Rng
