test/test_nvm.ml: Alcotest Array Gen Ido_nvm Ido_util Int64 List Pmem QCheck QCheck_alcotest Rng Vmem
