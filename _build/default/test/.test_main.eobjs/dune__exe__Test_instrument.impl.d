test/test_instrument.ml: Alcotest Array Ido_analysis Ido_instrument Ido_ir Ido_runtime Ido_workloads Instrument Ir List Printf Scheme String
