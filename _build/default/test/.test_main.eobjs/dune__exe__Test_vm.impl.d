test/test_vm.ml: Alcotest Array Builder Ido_instrument Ido_ir Ido_nvm Ido_region Ido_runtime Ido_vm Ido_workloads Int64 Ir List Scheme String
