(* Sequential functional correctness of the benchmark data structures,
   exercised through dedicated driver programs built on the same IR
   functions the benchmarks use. *)

open Ido_ir
open Ido_runtime
module Vm = Ido_vm.Vm
module Wcommon = Ido_workloads.Wcommon

(* Extend a workload program with an extra driver function. *)
let with_driver prog name driver = { Ir.funcs = prog.Ir.funcs @ [ (name, driver) ] }

let run_driver ?(scheme = Scheme.Origin) prog driver_name =
  let m = Vm.create (Vm.config scheme) prog in
  let _ = Vm.spawn m ~fname:"init" ~args:[] in
  (match Vm.run m with `Idle -> () | _ -> Alcotest.fail "init stuck");
  Vm.flush_all m;
  let t = Vm.spawn m ~fname:driver_name ~args:[ 0L ] in
  (match Vm.run m with
  | `Idle -> ()
  | `Deadlock -> Alcotest.fail "driver deadlocked"
  | _ -> Alcotest.fail "driver stuck");
  (m, Vm.observations t)

(* ------------------------------------------------------------------ *)

let test_stack_lifo () =
  let prog = Ido_workloads.Workload.named "stack" in
  let b, _ = Builder.create ~name:"driver" ~nparams:1 in
  let desc = Wcommon.get_root b 0 in
  List.iter
    (fun v -> Builder.call_void b "stack_push" [ Ir.Reg desc; Ir.Imm v ])
    [ 10L; 20L; 30L ];
  for _ = 1 to 4 do
    let v = Builder.call b "stack_pop" [ Ir.Reg desc ] in
    Wcommon.observe b (Ir.Reg v)
  done;
  Builder.ret b None;
  let _, obs = run_driver (with_driver prog "driver" (Builder.finish b)) "driver" in
  Alcotest.(check (list int64)) "LIFO order, then empty" [ 30L; 20L; 10L; -1L ] obs

let test_stack_check_counts () =
  let prog = Ido_workloads.Workload.named "stack" in
  let b, _ = Builder.create ~name:"driver" ~nparams:1 in
  let desc = Wcommon.get_root b 0 in
  for i = 1 to 5 do
    Builder.call_void b "stack_push" [ Ir.Reg desc; Ir.Imm (Int64.of_int i) ]
  done;
  ignore (Builder.call b "stack_pop" [ Ir.Reg desc ]);
  Builder.ret b None;
  let m, _ = run_driver (with_driver prog "driver" (Builder.finish b)) "driver" in
  let t = Vm.spawn m ~fname:"check" ~args:[] in
  (match Vm.run m with `Idle -> () | _ -> Alcotest.fail "check stuck");
  Alcotest.(check (list int64)) "check counts 4" [ 4L ] (Vm.observations t)

let test_queue_fifo () =
  let prog = Ido_workloads.Workload.named "queue" in
  let b, _ = Builder.create ~name:"driver" ~nparams:1 in
  let desc = Wcommon.get_root b 0 in
  List.iter
    (fun v -> Builder.call_void b "queue_enq" [ Ir.Reg desc; Ir.Imm v ])
    [ 1L; 2L; 3L ];
  for _ = 1 to 4 do
    let v = Builder.call b "queue_deq" [ Ir.Reg desc ] in
    Wcommon.observe b (Ir.Reg v)
  done;
  Builder.call_void b "queue_enq" [ Ir.Reg desc; Ir.Imm 9L ];
  let v = Builder.call b "queue_deq" [ Ir.Reg desc ] in
  Wcommon.observe b (Ir.Reg v);
  Builder.ret b None;
  let _, obs = run_driver (with_driver prog "driver" (Builder.finish b)) "driver" in
  Alcotest.(check (list int64)) "FIFO order, empty, refill" [ 1L; 2L; 3L; -1L; 9L ] obs

let test_olist_put_get () =
  let prog = Ido_workloads.Workload.named "olist" in
  let b, _ = Builder.create ~name:"driver" ~nparams:1 in
  let head = Wcommon.get_root b 0 in
  (* Insert out of order, read back, update in place. *)
  List.iter
    (fun (k, v) ->
      Builder.call_void b "list_put" [ Ir.Reg head; Ir.Imm k; Ir.Imm v ])
    [ (5L, 50L); (1L, 10L); (9L, 90L); (5L, 55L) ];
  List.iter
    (fun k ->
      let v = Builder.call b "list_get" [ Ir.Reg head; Ir.Imm k ] in
      Wcommon.observe b (Ir.Reg v))
    [ 1L; 5L; 9L; 7L ];
  let n = Builder.call b "list_count" [ Ir.Reg head ] in
  Wcommon.observe b (Ir.Reg n);
  Builder.ret b None;
  let _, obs = run_driver (with_driver prog "driver" (Builder.finish b)) "driver" in
  Alcotest.(check (list int64)) "gets + sorted count"
    [ 10L; 55L; 90L; -1L; 3L ] obs

let test_olist_remove () =
  let prog = Ido_workloads.Workload.named "olist" in
  let b, _ = Builder.create ~name:"driver" ~nparams:1 in
  let head = Wcommon.get_root b 0 in
  List.iter
    (fun (k, v) ->
      Builder.call_void b "list_put" [ Ir.Reg head; Ir.Imm k; Ir.Imm v ])
    [ (1L, 10L); (2L, 20L); (3L, 30L) ];
  let r1 = Builder.call b "list_remove" [ Ir.Reg head; Ir.Imm 2L ] in
  Wcommon.observe b (Ir.Reg r1);
  let r2 = Builder.call b "list_remove" [ Ir.Reg head; Ir.Imm 7L ] in
  Wcommon.observe b (Ir.Reg r2);
  let g = Builder.call b "list_get" [ Ir.Reg head; Ir.Imm 2L ] in
  Wcommon.observe b (Ir.Reg g);
  let n = Builder.call b "list_count" [ Ir.Reg head ] in
  Wcommon.observe b (Ir.Reg n);
  Builder.ret b None;
  let _, obs = run_driver (with_driver prog "driver" (Builder.finish b)) "driver" in
  Alcotest.(check (list int64)) "removed, miss on gone key, count"
    [ 1L; 0L; -1L; 2L ] obs

let test_hmap_routes_by_bucket () =
  let prog = Ido_workloads.Workload.named "hmap" in
  (* Drive through the worker once, then validate via check. *)
  let m = Vm.create (Vm.config Scheme.Origin) prog in
  let _ = Vm.spawn m ~fname:"init" ~args:[] in
  ignore (Vm.run m);
  Vm.flush_all m;
  ignore (Vm.spawn m ~fname:"worker" ~args:[ 500L ]);
  (match Vm.run m with `Idle -> () | _ -> Alcotest.fail "stuck");
  let t = Vm.spawn m ~fname:"check" ~args:[] in
  (match Vm.run m with `Idle -> () | _ -> Alcotest.fail "check stuck");
  match Vm.observations t with
  | [ n ] -> Alcotest.(check bool) "some keys present" true (Int64.to_int n > 0)
  | _ -> Alcotest.fail "check must observe the count"

let test_kvcache_set_get () =
  let prog = Ido_workloads.Workload.named "kvcache50" in
  let b, _ = Builder.create ~name:"driver" ~nparams:1 in
  let desc = Wcommon.get_root b 0 in
  Builder.call_void b "kv_set" [ Ir.Reg desc; Ir.Imm 7L; Ir.Imm 70L ];
  Builder.call_void b "kv_set" [ Ir.Reg desc; Ir.Imm 8L; Ir.Imm 80L ];
  Builder.call_void b "kv_set" [ Ir.Reg desc; Ir.Imm 7L; Ir.Imm 77L ];
  List.iter
    (fun k ->
      let v = Builder.call b "kv_get" [ Ir.Reg desc; Ir.Imm k ] in
      Wcommon.observe b (Ir.Reg v))
    [ 7L; 8L; 9L ];
  Builder.ret b None;
  let m, obs = run_driver (with_driver prog "driver" (Builder.finish b)) "driver" in
  Alcotest.(check (list int64)) "update-in-place and miss" [ 77L; 80L; -1L ] obs;
  let t = Vm.spawn m ~fname:"check" ~args:[] in
  (match Vm.run m with `Idle -> () | _ -> Alcotest.fail "check stuck");
  Alcotest.(check (list int64)) "two distinct keys" [ 2L ] (Vm.observations t)

let test_objstore_put_get () =
  let prog = Ido_workloads.Workload.named "objstore" in
  let b, _ = Builder.create ~name:"driver" ~nparams:1 in
  let desc = Wcommon.get_root b 0 in
  Builder.call_void b "obj_put" [ Ir.Reg desc; Ir.Imm 4242L ];
  let v = Builder.call b "obj_get" [ Ir.Reg desc; Ir.Imm 4242L ] in
  Wcommon.observe b (Ir.Reg v);
  let miss = Builder.call b "obj_get" [ Ir.Reg desc; Ir.Imm 9999L ] in
  Wcommon.observe b (Ir.Reg miss);
  Builder.ret b None;
  let _, obs = run_driver (with_driver prog "driver" (Builder.finish b)) "driver" in
  (* checksum = 8k + 28 *)
  Alcotest.(check (list int64)) "checksum and miss"
    [ Int64.add (Int64.mul 4242L 8L) 28L; -1L ] obs

let test_mlog_fifo_and_checksums () =
  let prog = Ido_workloads.Workload.named "mlog" in
  let b, _ = Builder.create ~name:"driver" ~nparams:1 in
  let desc = Wcommon.get_root b 0 in
  List.iter
    (fun v -> Builder.call_void b "mlog_append" [ Ir.Reg desc; Ir.Imm v ])
    [ 11L; 22L; 33L ];
  for _ = 1 to 4 do
    let v = Builder.call b "mlog_consume" [ Ir.Reg desc ] in
    Wcommon.observe b (Ir.Reg v)
  done;
  Builder.ret b None;
  let m, obs = run_driver (with_driver prog "driver" (Builder.finish b)) "driver" in
  Alcotest.(check (list int64)) "FIFO with empty sentinel" [ 11L; 22L; 33L; -1L ] obs;
  let t = Vm.spawn m ~fname:"check" ~args:[] in
  (match Vm.run m with `Idle -> () | _ -> Alcotest.fail "check stuck");
  Alcotest.(check (list int64)) "empty after drain" [ 0L ] (Vm.observations t)

let test_mlog_overwrites_when_full () =
  let prog = Ido_workloads.Mlog.program ~capacity:4 () in
  let b, _ = Builder.create ~name:"driver" ~nparams:1 in
  let desc = Wcommon.get_root b 0 in
  for i = 1 to 6 do
    Builder.call_void b "mlog_append" [ Ir.Reg desc; Ir.Imm (Int64.of_int (i * 10)) ]
  done;
  (* The two oldest records were overwritten: the ring holds 30..60. *)
  for _ = 1 to 4 do
    let v = Builder.call b "mlog_consume" [ Ir.Reg desc ] in
    Wcommon.observe b (Ir.Reg v)
  done;
  Builder.ret b None;
  let _, obs = run_driver (with_driver prog "driver" (Builder.finish b)) "driver" in
  Alcotest.(check (list int64)) "oldest dropped" [ 30L; 40L; 50L; 60L ] obs

let test_workers_under_every_scheme_are_equivalent () =
  (* A workload's final check count must not depend on the
     failure-atomicity scheme when no crash happens. *)
  List.iter
    (fun workload ->
      let counts =
        List.map
          (fun scheme ->
            let prog = Ido_workloads.Workload.named workload in
            let m = Vm.create { (Vm.config scheme) with seed = 11 } prog in
            let _ = Vm.spawn m ~fname:"init" ~args:[] in
            ignore (Vm.run m);
            Vm.flush_all m;
            ignore (Vm.spawn m ~fname:"worker" ~args:[ 300L ]);
            (match Vm.run m with `Idle -> () | _ -> Alcotest.fail "stuck");
            let t = Vm.spawn m ~fname:"check" ~args:[] in
            (match Vm.run m with `Idle -> () | _ -> Alcotest.fail "check stuck");
            Vm.observations t)
          Scheme.all
      in
      match counts with
      | first :: rest ->
          List.iter
            (fun c ->
              Alcotest.(check (list int64))
                (workload ^ " same result under every scheme") first c)
            rest
      | [] -> ())
    [ "stack"; "queue"; "olist"; "kvcache50"; "mlog" ]

let suites =
  [
    ( "workloads",
      [
        Alcotest.test_case "stack LIFO" `Quick test_stack_lifo;
        Alcotest.test_case "stack check" `Quick test_stack_check_counts;
        Alcotest.test_case "queue FIFO" `Quick test_queue_fifo;
        Alcotest.test_case "ordered list" `Quick test_olist_put_get;
        Alcotest.test_case "ordered list remove" `Quick test_olist_remove;
        Alcotest.test_case "hash map" `Quick test_hmap_routes_by_bucket;
        Alcotest.test_case "kvcache" `Quick test_kvcache_set_get;
        Alcotest.test_case "objstore" `Quick test_objstore_put_get;
        Alcotest.test_case "mlog FIFO" `Quick test_mlog_fifo_and_checksums;
        Alcotest.test_case "mlog overwrite" `Quick test_mlog_overwrites_when_full;
        Alcotest.test_case "scheme-independent results" `Quick
          test_workers_under_every_scheme_are_equivalent;
      ] );
  ]
