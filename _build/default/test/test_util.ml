open Ido_util

let qtest = QCheck_alcotest.to_alcotest

(* ------------------------------------------------------------------ *)
(* Rng *)

let test_rng_deterministic () =
  let a = Rng.create 7 and b = Rng.create 7 in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Rng.next64 a) (Rng.next64 b)
  done

let test_rng_seed_sensitivity () =
  let a = Rng.create 1 and b = Rng.create 2 in
  let same = ref 0 in
  for _ = 1 to 64 do
    if Rng.next64 a = Rng.next64 b then incr same
  done;
  Alcotest.(check bool) "different seeds diverge" true (!same < 4)

let test_rng_split_independent () =
  let a = Rng.create 11 in
  let b = Rng.split a in
  (* The split stream and the parent's continuation must differ. *)
  let same = ref 0 in
  for _ = 1 to 64 do
    if Rng.next64 a = Rng.next64 b then incr same
  done;
  Alcotest.(check bool) "split independent" true (!same < 4)

let test_rng_int_bounds () =
  let r = Rng.create 3 in
  for _ = 1 to 10_000 do
    let v = Rng.int r 17 in
    Alcotest.(check bool) "in range" true (v >= 0 && v < 17)
  done

let test_rng_int_uniformish () =
  let r = Rng.create 5 in
  let counts = Array.make 8 0 in
  let n = 80_000 in
  for _ = 1 to n do
    let v = Rng.int r 8 in
    counts.(v) <- counts.(v) + 1
  done;
  Array.iter
    (fun c ->
      let f = float_of_int c /. float_of_int n in
      Alcotest.(check bool) "roughly uniform" true (f > 0.11 && f < 0.14))
    counts

let test_rng_chance () =
  let r = Rng.create 9 in
  let hits = ref 0 in
  for _ = 1 to 10_000 do
    if Rng.chance r 0.25 then incr hits
  done;
  let f = float_of_int !hits /. 10_000.0 in
  Alcotest.(check bool) "chance ~ 0.25" true (f > 0.22 && f < 0.28)

let prop_rng_float_bounds =
  QCheck.Test.make ~name:"rng float stays in bound" ~count:200
    QCheck.(pair small_int (float_range 0.5 100.0))
    (fun (seed, bound) ->
      let r = Rng.create seed in
      let v = Rng.float r bound in
      v >= 0.0 && v < bound)

(* ------------------------------------------------------------------ *)
(* Zipf *)

let test_zipf_range () =
  let z = Zipf.create 100 in
  let r = Rng.create 1 in
  for _ = 1 to 5_000 do
    let k = Zipf.sample z r in
    Alcotest.(check bool) "rank in range" true (k >= 0 && k < 100)
  done

let test_zipf_skew () =
  let z = Zipf.create 1000 in
  let r = Rng.create 2 in
  let top = ref 0 and n = 20_000 in
  for _ = 1 to n do
    if Zipf.sample z r < 10 then incr top
  done;
  (* With s=0.99 over 1000 ranks, the top-10 mass is ~39%. *)
  let f = float_of_int !top /. float_of_int n in
  Alcotest.(check bool) "head-heavy" true (f > 0.25 && f < 0.55)

let test_zipf_pmf_sums_to_one () =
  let z = Zipf.create 500 in
  let s = ref 0.0 in
  for k = 0 to 499 do
    s := !s +. Zipf.pmf z k
  done;
  Alcotest.(check bool) "pmf normalised" true (abs_float (!s -. 1.0) < 1e-9)

let test_zipf_pmf_monotone () =
  let z = Zipf.create 50 in
  for k = 0 to 48 do
    Alcotest.(check bool) "pmf decreasing" true (Zipf.pmf z k >= Zipf.pmf z (k + 1))
  done

let test_zipf_matches_pmf () =
  let z = Zipf.create 100 in
  let r = Rng.create 3 in
  let n = 100_000 in
  let c0 = ref 0 in
  for _ = 1 to n do
    if Zipf.sample z r = 0 then incr c0
  done;
  let expected = Zipf.pmf z 0 in
  let got = float_of_int !c0 /. float_of_int n in
  Alcotest.(check bool) "empirical matches pmf for rank 0" true
    (abs_float (got -. expected) < 0.02)

(* ------------------------------------------------------------------ *)
(* Stats *)

let test_stats_basic () =
  let s = Stats.create () in
  List.iter (Stats.add s) [ 1.0; 2.0; 3.0; 4.0 ];
  Alcotest.(check int) "count" 4 (Stats.count s);
  Alcotest.(check (float 1e-9)) "mean" 2.5 (Stats.mean s);
  Alcotest.(check (float 1e-9)) "variance" (5.0 /. 3.0) (Stats.variance s);
  Alcotest.(check (float 1e-9)) "min" 1.0 (Stats.min s);
  Alcotest.(check (float 1e-9)) "max" 4.0 (Stats.max s);
  Alcotest.(check (float 1e-9)) "sum" 10.0 (Stats.sum s)

let test_stats_empty () =
  let s = Stats.create () in
  Alcotest.(check int) "count" 0 (Stats.count s);
  Alcotest.(check (float 0.0)) "mean" 0.0 (Stats.mean s);
  Alcotest.(check (float 0.0)) "variance" 0.0 (Stats.variance s)

let prop_stats_mean_in_range =
  QCheck.Test.make ~name:"stats mean bounded by min/max" ~count:200
    QCheck.(list_of_size Gen.(int_range 1 50) (float_range (-1000.) 1000.))
    (fun xs ->
      let s = Stats.create () in
      List.iter (Stats.add s) xs;
      Stats.mean s >= Stats.min s -. 1e-9 && Stats.mean s <= Stats.max s +. 1e-9)

(* ------------------------------------------------------------------ *)
(* Cdf *)

let test_cdf_basic () =
  let c = Cdf.create () in
  List.iter (Cdf.add c) [ 0; 0; 1; 3 ];
  Alcotest.(check int) "total" 4 (Cdf.total c);
  Alcotest.(check int) "count at 0" 2 (Cdf.count_at c 0);
  Alcotest.(check (float 1e-9)) "cum 0" 0.5 (Cdf.cumulative c 0);
  Alcotest.(check (float 1e-9)) "cum 1" 0.75 (Cdf.cumulative c 1);
  Alcotest.(check (float 1e-9)) "cum 2" 0.75 (Cdf.cumulative c 2);
  Alcotest.(check (float 1e-9)) "cum 3" 1.0 (Cdf.cumulative c 3);
  Alcotest.(check int) "max" 3 (Cdf.max_value c);
  Alcotest.(check (float 1e-9)) "mean" 1.0 (Cdf.mean c);
  Alcotest.(check int) "median" 0 (Cdf.percentile c 0.5);
  Alcotest.(check int) "p100" 3 (Cdf.percentile c 1.0)

let test_cdf_weights () =
  let c = Cdf.create () in
  Cdf.add ~weight:10 c 2;
  Cdf.add ~weight:30 c 5;
  Alcotest.(check int) "total" 40 (Cdf.total c);
  Alcotest.(check (float 1e-9)) "cum 2" 0.25 (Cdf.cumulative c 2)

let test_cdf_points_monotone () =
  let c = Cdf.create () in
  let r = Rng.create 4 in
  for _ = 1 to 500 do
    Cdf.add c (Rng.int r 20)
  done;
  let pts = Cdf.points c in
  let rec mono = function
    | (_, a) :: ((_, b) :: _ as rest) -> a <= b +. 1e-12 && mono rest
    | _ -> true
  in
  Alcotest.(check bool) "monotone" true (mono pts);
  Alcotest.(check (float 1e-9)) "last is 1" 1.0 (snd (List.nth pts (List.length pts - 1)))

let prop_cdf_percentile_consistent =
  QCheck.Test.make ~name:"percentile inverts cumulative" ~count:100
    QCheck.(list_of_size Gen.(int_range 1 100) (int_bound 30))
    (fun xs ->
      let c = Cdf.create () in
      List.iter (Cdf.add c) xs;
      let p50 = Cdf.percentile c 0.5 in
      Cdf.cumulative c p50 >= 0.5
      && (p50 = 0 || Cdf.cumulative c (p50 - 1) < 0.5))

(* ------------------------------------------------------------------ *)
(* Timebase and Render *)

let test_timebase () =
  Alcotest.(check int) "us" 5_000 (Timebase.us 5);
  Alcotest.(check int) "ms" 7_000_000 (Timebase.ms 7);
  Alcotest.(check int) "s" 2_000_000_000 (Timebase.s 2);
  Alcotest.(check (float 1e-9)) "to_seconds" 1.5 (Timebase.to_seconds 1_500_000_000);
  let pp v = Format.asprintf "%a" Timebase.pp v in
  Alcotest.(check string) "ns" "17ns" (pp 17);
  Alcotest.(check string) "us" "2.00us" (pp 2_000);
  Alcotest.(check string) "ms" "3.50ms" (pp 3_500_000);
  Alcotest.(check string) "s" "1.00s" (pp 1_000_000_000)

let test_render_table () =
  let s = Render.table ~header:[ "a"; "bb" ] [ [ "1"; "2" ]; [ "33"; "4" ] ] in
  Alcotest.(check bool) "has header" true
    (String.length s > 0
    && String.split_on_char '\n' s |> List.exists (fun l -> l = "|  a | bb |"))

let test_render_ragged_rejected () =
  Alcotest.check_raises "ragged" (Invalid_argument "Render: ragged row")
    (fun () -> ignore (Render.table ~header:[ "a" ] [ [ "1"; "2" ] ]))

let test_render_series_nan () =
  let s =
    Render.series ~x_label:"x" ~columns:[ "c" ] [ ("1", [ nan ]); ("2", [ 0.5 ]) ]
  in
  Alcotest.(check bool) "nan rendered as dash" true
    (String.split_on_char '\n' s |> List.exists (fun l -> l = "| 1 |     - |"))

let test_float_cell () =
  Alcotest.(check string) "small" "0.123" (Render.float_cell 0.1234);
  Alcotest.(check string) "hundreds" "123.5" (Render.float_cell 123.46);
  Alcotest.(check string) "thousands" "1235" (Render.float_cell 1234.6)

let suites =
  [
    ( "util.rng",
      [
        Alcotest.test_case "deterministic" `Quick test_rng_deterministic;
        Alcotest.test_case "seed sensitivity" `Quick test_rng_seed_sensitivity;
        Alcotest.test_case "split independent" `Quick test_rng_split_independent;
        Alcotest.test_case "int bounds" `Quick test_rng_int_bounds;
        Alcotest.test_case "int uniform" `Quick test_rng_int_uniformish;
        Alcotest.test_case "chance" `Quick test_rng_chance;
        qtest prop_rng_float_bounds;
      ] );
    ( "util.zipf",
      [
        Alcotest.test_case "range" `Quick test_zipf_range;
        Alcotest.test_case "skew" `Quick test_zipf_skew;
        Alcotest.test_case "pmf normalised" `Quick test_zipf_pmf_sums_to_one;
        Alcotest.test_case "pmf monotone" `Quick test_zipf_pmf_monotone;
        Alcotest.test_case "sample matches pmf" `Quick test_zipf_matches_pmf;
      ] );
    ( "util.stats",
      [
        Alcotest.test_case "basic" `Quick test_stats_basic;
        Alcotest.test_case "empty" `Quick test_stats_empty;
        qtest prop_stats_mean_in_range;
      ] );
    ( "util.cdf",
      [
        Alcotest.test_case "basic" `Quick test_cdf_basic;
        Alcotest.test_case "weights" `Quick test_cdf_weights;
        Alcotest.test_case "points monotone" `Quick test_cdf_points_monotone;
        qtest prop_cdf_percentile_consistent;
      ] );
    ( "util.render",
      [
        Alcotest.test_case "timebase" `Quick test_timebase;
        Alcotest.test_case "table" `Quick test_render_table;
        Alcotest.test_case "ragged rejected" `Quick test_render_ragged_rejected;
        Alcotest.test_case "series nan" `Quick test_render_series_nan;
        Alcotest.test_case "float cell" `Quick test_float_cell;
      ] );
  ]
