(* Integration: the full compile -> instrument -> run -> crash ->
   recover -> check pipeline over every workload and scheme. *)

open Ido_runtime
module Vm = Ido_vm.Vm

let qtest = QCheck_alcotest.to_alcotest

let run_check m =
  let t = Vm.spawn m ~fname:"check" ~args:[] in
  match Vm.run m with
  | `Idle -> (
      match Vm.observations t with
      | [ n ] -> Ok (Int64.to_int n)
      | l -> Error (Printf.sprintf "check observed %d values" (List.length l)))
  | `Deadlock -> Error "deadlock in check"
  | _ -> Error "check did not finish"
  | exception Vm.Vm_error e -> Error e

let crash_and_verify ?cache_lines ~scheme ~workload ~threads ~seed ~crash_at () =
  let prog = Ido_workloads.Workload.named workload in
  let base = Vm.config scheme in
  let cfg =
    { base with seed;
      cache_lines = Option.value ~default:base.Vm.cache_lines cache_lines }
  in
  let m = Vm.create cfg prog in
  let _ = Vm.spawn m ~fname:"init" ~args:[] in
  (match Vm.run m with `Idle -> () | _ -> failwith "init stuck");
  Vm.flush_all m;
  for _ = 1 to threads do
    ignore (Vm.spawn m ~fname:"worker" ~args:[ 250L ])
  done;
  (match Vm.run ~until:crash_at m with
  | `Until | `Idle -> ()
  | `Deadlock -> failwith "workload deadlocked"
  | `Max_steps -> failwith "step budget");
  Vm.crash m;
  let _ = Vm.recover m in
  run_check m

let recoverable = Scheme.[ Ido; Atlas; Mnemosyne; Justdo; Nvthreads ]

(* NVML protects only programmer-delineated durable regions, so it is
   exercised on the objstore alone. *)
let schemes_for workload =
  if workload = "objstore" then Scheme.Nvml :: recoverable else recoverable

let test_matrix () =
  List.iter
    (fun workload ->
      List.iter
        (fun scheme ->
          List.iter
            (fun seed ->
              let threads = if workload = "objstore" then 1 else 3 in
              match
                crash_and_verify ~scheme ~workload ~threads ~seed
                  ~crash_at:(25_000 + (seed * 17_771)) ()
              with
              | Ok _ -> ()
              | Error e ->
                  Alcotest.failf "%s/%s seed=%d: %s" workload
                    (Scheme.name scheme) seed e)
            [ 1; 2; 3 ])
        (schemes_for workload))
    Ido_workloads.Workload.names

let test_origin_is_vulnerable () =
  (* Documented hazard: the uninstrumented baseline must eventually
     produce an inconsistent post-crash heap (otherwise the whole
     experiment measures nothing).  We scan seeds for at least one
     violation. *)
  let broken = ref 0 in
  for seed = 1 to 12 do
    match
      crash_and_verify ~cache_lines:16 ~scheme:Scheme.Origin ~workload:"queue"
        ~threads:3 ~seed ~crash_at:(30_000 + (seed * 13_000)) ()
    with
    | Ok _ -> ()
    | Error _ -> incr broken
  done;
  Alcotest.(check bool) "origin corrupts at least once" true (!broken > 0)

let test_double_crash () =
  (* Crash during normal execution, recover, run more work, crash
     again, recover again: consistency must hold across repeated
     failures. *)
  List.iter
    (fun scheme ->
      let prog = Ido_workloads.Workload.named "stack" in
      let m = Vm.create { (Vm.config scheme) with seed = 5 } prog in
      let _ = Vm.spawn m ~fname:"init" ~args:[] in
      ignore (Vm.run m);
      Vm.flush_all m;
      for _ = 1 to 2 do
        ignore (Vm.spawn m ~fname:"worker" ~args:[ 400L ])
      done;
      (match Vm.run ~until:60_000 m with `Until | `Idle -> () | _ -> assert false);
      Vm.crash m;
      let _ = Vm.recover m in
      for _ = 1 to 2 do
        ignore (Vm.spawn m ~fname:"worker" ~args:[ 400L ])
      done;
      (match Vm.run ~until:(Vm.clock m + 40_000) m with
      | `Until | `Idle -> ()
      | _ -> assert false);
      Vm.crash m;
      let _ = Vm.recover m in
      match run_check m with
      | Ok _ -> ()
      | Error e -> Alcotest.failf "%s double crash: %s" (Scheme.name scheme) e)
    recoverable

let test_recovery_stats_sensible () =
  let prog = Ido_workloads.Workload.named "hmap" in
  let m = Vm.create { (Vm.config Scheme.Ido) with seed = 7 } prog in
  let _ = Vm.spawn m ~fname:"init" ~args:[] in
  ignore (Vm.run m);
  Vm.flush_all m;
  for _ = 1 to 4 do
    ignore (Vm.spawn m ~fname:"worker" ~args:[ 10_000L ])
  done;
  (match Vm.run ~until:(Vm.clock m + 200_000) m with
  | `Until -> ()
  | _ -> Alcotest.fail "expected mid-run crash point");
  Vm.crash m;
  let st = Vm.recover m in
  Alcotest.(check bool) "some FASEs resumed" true
    (st.Ido_vm.Recover.fases_resumed >= 0
    && st.Ido_vm.Recover.fases_resumed <= 4);
  Alcotest.(check bool) "recovery time dominated by restart constant" true
    (st.Ido_vm.Recover.simulated_time >= Ido_util.Timebase.ms 300)

let test_recovery_time_constant_in_run_length () =
  (* Sec. V-D: iDO recovery is ~constant; Atlas recovery grows with
     the log volume. *)
  let measure scheme crash_at =
    let prog = Ido_workloads.Workload.named "queue" in
    let m = Vm.create { (Vm.config scheme) with seed = 3 } prog in
    let _ = Vm.spawn m ~fname:"init" ~args:[] in
    ignore (Vm.run m);
    Vm.flush_all m;
    for _ = 1 to 4 do
      ignore (Vm.spawn m ~fname:"worker" ~args:[ 1_000_000L ])
    done;
    (match Vm.run ~until:crash_at m with `Until -> () | _ -> assert false);
    Vm.crash m;
    let records = ref 0 in
    records := Vm.undo_records_total m;
    let st = Vm.recover m in
    (st.Ido_vm.Recover.simulated_time, !records)
  in
  let ido_short, _ = measure Scheme.Ido 200_000 in
  let ido_long, _ = measure Scheme.Ido 2_000_000 in
  let atlas_short, r1 = measure Scheme.Atlas 200_000 in
  let atlas_long, r2 = measure Scheme.Atlas 2_000_000 in
  Alcotest.(check bool) "iDO constant-ish" true
    (float_of_int ido_long < 1.2 *. float_of_int ido_short);
  Alcotest.(check bool) "Atlas log grows with run" true (r2 > (3 * r1));
  Alcotest.(check bool) "Atlas recovery grows" true (atlas_long > atlas_short)

let prop_ido_random_crash_points =
  QCheck.Test.make ~name:"ido olist recovery at random crash points" ~count:25
    QCheck.(pair (int_range 1 1000) (int_range 5_000 400_000))
    (fun (seed, crash_at) ->
      match
        crash_and_verify ~scheme:Scheme.Ido ~workload:"olist" ~threads:4 ~seed
          ~crash_at ()
      with
      | Ok _ -> true
      | Error _ -> false)

let suites =
  [
    ( "recovery",
      [
        Alcotest.test_case "matrix (all workloads x schemes)" `Slow test_matrix;
        Alcotest.test_case "origin is crash-vulnerable" `Quick
          test_origin_is_vulnerable;
        Alcotest.test_case "double crash" `Quick test_double_crash;
        Alcotest.test_case "stats sensible" `Quick test_recovery_stats_sensible;
        Alcotest.test_case "iDO constant vs Atlas growing" `Quick
          test_recovery_time_constant_in_run_length;
        qtest prop_ido_random_crash_points;
      ] );
  ]
