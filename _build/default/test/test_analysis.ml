open Ido_ir
open Ido_analysis

(* A diamond with a loop in one arm:
     0 -> 1 -> 2 -> 1 (back edge), 1 -> 3, 0 -> 3 *)
let loopy_fn () =
  let b, ps = Builder.create ~name:"loopy" ~nparams:2 in
  let n = List.nth ps 0 in
  let i = Builder.mov b (Ir.Imm 0L) in
  Builder.while_ b
    ~cond:(fun () -> Ir.Reg (Builder.bin b Ir.Lt (Ir.Reg i) (Ir.Reg n)))
    ~body:(fun () -> Builder.assign_bin b i Ir.Add (Ir.Reg i) (Ir.Imm 1L));
  Builder.ret b (Some (Ir.Reg i));
  Builder.finish b

(* ------------------------------------------------------------------ *)
(* CFG *)

let test_cfg_structure () =
  let f = loopy_fn () in
  let cfg = Cfg.build f in
  (* Blocks: 0 entry, 1 while_head, 2 while_body, 3 while_exit. *)
  Alcotest.(check (list int)) "entry succs" [ 1 ] (Cfg.succs cfg 0);
  Alcotest.(check bool) "head branches to body and exit" true
    (List.sort compare (Cfg.succs cfg 1) = [ 2; 3 ]);
  Alcotest.(check (list int)) "body back to head" [ 1 ] (Cfg.succs cfg 2);
  Alcotest.(check bool) "head preds = entry + body" true
    (List.sort compare (Cfg.preds cfg 1) = [ 0; 2 ]);
  Alcotest.(check bool) "all reachable" true
    (List.for_all (Cfg.reachable cfg) [ 0; 1; 2; 3 ])

let test_cfg_rpo () =
  let f = loopy_fn () in
  let cfg = Cfg.build f in
  match Cfg.reverse_postorder cfg with
  | 0 :: rest -> Alcotest.(check int) "all blocks" 3 (List.length rest)
  | _ -> Alcotest.fail "rpo must start at entry"

let test_dominators () =
  let f = loopy_fn () in
  let cfg = Cfg.build f in
  Alcotest.(check (option int)) "idom head" (Some 0) (Cfg.idom cfg 1);
  Alcotest.(check (option int)) "idom body" (Some 1) (Cfg.idom cfg 2);
  Alcotest.(check (option int)) "idom exit" (Some 1) (Cfg.idom cfg 3);
  Alcotest.(check bool) "head dominates body" true (Cfg.dominates cfg 1 2);
  Alcotest.(check bool) "body does not dominate exit" false (Cfg.dominates cfg 2 3);
  Alcotest.(check bool) "entry dominates all" true
    (List.for_all (fun x -> Cfg.dominates cfg 0 x) [ 0; 1; 2; 3 ])

let test_back_edges () =
  let f = loopy_fn () in
  let cfg = Cfg.build f in
  Alcotest.(check (list (pair int int))) "one back edge" [ (2, 1) ] (Cfg.back_edges cfg);
  Alcotest.(check (list int)) "loop headers" [ 1 ] (Cfg.loop_headers cfg)

let test_path_exists () =
  let f = loopy_fn () in
  let cfg = Cfg.build f in
  let p blk idx = { Ir.blk; idx } in
  Alcotest.(check bool) "forward same block" true (Cfg.path_exists cfg (p 0 0) (p 0 1));
  Alcotest.(check bool) "not backward in entry" false
    (Cfg.path_exists cfg (p 0 1) (p 0 0));
  Alcotest.(check bool) "cycle body->body" true (Cfg.path_exists cfg (p 2 0) (p 2 0));
  Alcotest.(check bool) "exit cannot reach entry" false
    (Cfg.path_exists cfg (p 3 0) (p 0 0))

(* ------------------------------------------------------------------ *)
(* Liveness *)

let test_liveness () =
  let f = loopy_fn () in
  let cfg = Cfg.build f in
  let lv = Liveness.compute cfg in
  let n = List.nth f.Ir.params 0 in
  (* The loop bound n is live throughout the loop. *)
  Alcotest.(check bool) "n live into head" true (Regset.mem n (Liveness.live_in lv 1));
  Alcotest.(check bool) "n live into body" true (Regset.mem n (Liveness.live_in lv 2));
  Alcotest.(check bool) "n dead at exit" false (Regset.mem n (Liveness.live_in lv 3));
  (* The second (unused) parameter is dead everywhere. *)
  let unused = List.nth f.Ir.params 1 in
  Alcotest.(check bool) "unused param dead" false
    (Regset.mem unused (Liveness.live_in lv 0))

let test_liveness_at_positions () =
  (* r = 1; s = r + 1; ret s — r dies after its use. *)
  let b, _ = Builder.create ~name:"f" ~nparams:0 in
  let r = Builder.mov b (Ir.Imm 1L) in
  let s = Builder.bin b Ir.Add (Ir.Reg r) (Ir.Imm 1L) in
  Builder.ret b (Some (Ir.Reg s));
  let f = Builder.finish b in
  let lv = Liveness.compute (Cfg.build f) in
  Alcotest.(check bool) "r live before its use" true
    (Regset.mem r (Liveness.live_at lv { Ir.blk = 0; idx = 1 }));
  Alcotest.(check bool) "r dead before the ret" false
    (Regset.mem r (Liveness.live_at lv { Ir.blk = 0; idx = 2 }));
  Alcotest.(check bool) "s live before ret" true
    (Regset.mem s (Liveness.live_at lv { Ir.blk = 0; idx = 2 }))

(* ------------------------------------------------------------------ *)
(* Alias analysis *)

let test_alias () =
  let b, ps = Builder.create ~name:"f" ~nparams:2 in
  let p0 = List.nth ps 0 and p1 = List.nth ps 1 in
  let a = Builder.intr b Ir.Nv_alloc [ Ir.Imm 8L ] in
  let c = Builder.intr b Ir.Nv_alloc [ Ir.Imm 8L ] in
  ignore (Builder.load b Ir.Persistent (Ir.Reg a) 0);    (* idx 2 *)
  Builder.store b Ir.Persistent (Ir.Reg a) 1 (Ir.Imm 1L);(* idx 3 *)
  Builder.store b Ir.Persistent (Ir.Reg a) 0 (Ir.Imm 2L);(* idx 4 *)
  Builder.store b Ir.Persistent (Ir.Reg c) 0 (Ir.Imm 3L);(* idx 5 *)
  ignore (Builder.load b Ir.Persistent (Ir.Reg p0) 0);   (* idx 6 *)
  Builder.store b Ir.Persistent (Ir.Reg p1) 0 (Ir.Imm 4L);(* idx 7 *)
  ignore (Builder.load b Ir.Transient (Ir.Reg a) 0);     (* idx 8 *)
  Builder.ret b None;
  let f = Builder.finish b in
  let al = Alias.compute f in
  let p i = { Ir.blk = 0; idx = i } in
  Alcotest.(check bool) "same base different offsets" false (Alias.may_alias al (p 2) (p 3));
  Alcotest.(check bool) "same base same offset" true (Alias.may_alias al (p 2) (p 4));
  Alcotest.(check bool) "distinct allocations" false (Alias.may_alias al (p 2) (p 5));
  Alcotest.(check bool) "params conservative" true (Alias.may_alias al (p 6) (p 7));
  Alcotest.(check bool) "different spaces" false (Alias.may_alias al (p 8) (p 4))

let test_alias_offsets_fold () =
  let b, _ = Builder.create ~name:"f" ~nparams:0 in
  let a = Builder.intr b Ir.Nv_alloc [ Ir.Imm 8L ] in
  let a2 = Builder.bin b Ir.Add (Ir.Reg a) (Ir.Imm 2L) in
  ignore (Builder.load b Ir.Persistent (Ir.Reg a) 2);      (* idx 2: a+2 *)
  Builder.store b Ir.Persistent (Ir.Reg a2) 0 (Ir.Imm 1L); (* idx 3: a+2 *)
  Builder.store b Ir.Persistent (Ir.Reg a2) 1 (Ir.Imm 1L); (* idx 4: a+3 *)
  Builder.ret b None;
  let f = Builder.finish b in
  let al = Alias.compute f in
  let p i = { Ir.blk = 0; idx = i } in
  Alcotest.(check bool) "a+2 aliases (a+2)+0" true (Alias.may_alias al (p 2) (p 3));
  Alcotest.(check bool) "a+2 distinct from (a+2)+1" false (Alias.may_alias al (p 2) (p 4))

let test_alias_multidef_conservative () =
  let b, ps = Builder.create ~name:"f" ~nparams:1 in
  let x = List.nth ps 0 in
  let a = Builder.intr b Ir.Nv_alloc [ Ir.Imm 8L ] in
  let r = Builder.mov b (Ir.Reg a) in
  Builder.if_ b (Ir.Reg x)
    ~then_:(fun () -> Builder.assign b r (Ir.Imm 64L))
    ~else_:(fun () -> ());
  ignore (Builder.load b Ir.Persistent (Ir.Reg r) 0);
  Builder.store b Ir.Persistent (Ir.Reg r) 1 (Ir.Imm 1L);
  Builder.ret b None;
  let f = Builder.finish b in
  let al = Alias.compute f in
  (* r is multiply defined: unknown, so even distinct offsets may alias. *)
  let cfg = Cfg.build f in
  ignore cfg;
  let join = 3 in
  Alcotest.(check bool) "multi-def conservative" true
    (Alias.may_alias al { Ir.blk = join; idx = 0 } { Ir.blk = join; idx = 1 })

let test_reaching_defs () =
  let f = loopy_fn () in
  let cfg = Cfg.build f in
  let rd = Reaching.compute cfg in
  (* Params reach the entry as virtual definitions. *)
  let n = List.nth f.Ir.params 0 in
  Alcotest.(check (list (pair int int)))
    "param def at entry"
    [ (-1, 0) ]
    (List.map (fun (p : Ir.pos) -> (p.Ir.blk, p.Ir.idx))
       (Reaching.defs_at rd { Ir.blk = 0; idx = 0 } n));
  (* The loop counter has two reaching definitions at the header (the
     init in entry and the increment in the body) and exactly one
     inside the body after the increment. *)
  let i =
    match f.Ir.blocks.(0).Ir.instrs.(0) with
    | Ir.Mov (d, _) -> d
    | _ -> Alcotest.fail "expected mov"
  in
  Alcotest.(check int) "two defs at loop header" 2
    (List.length (Reaching.defs_at rd { Ir.blk = 1; idx = 0 } i));
  Alcotest.(check bool) "unique def in entry" true
    (Reaching.unique_def rd { Ir.blk = 0; idx = 1 } i <> None)

let test_alias_per_use_resolution () =
  (* r is re-assigned between two memory operations: each use resolves
     through its own unique reaching definition, so the accesses are
     provably distinct — the precision a global single-assignment rule
     cannot give. *)
  let b, _ = Builder.create ~name:"f" ~nparams:0 in
  let a = Builder.intr b Ir.Nv_alloc [ Ir.Imm 8L ] in
  let c = Builder.intr b Ir.Nv_alloc [ Ir.Imm 8L ] in
  let r = Builder.mov b (Ir.Reg a) in
  ignore (Builder.load b Ir.Persistent (Ir.Reg r) 0);      (* idx 3: a+0 *)
  Builder.assign b r (Ir.Reg c);
  Builder.store b Ir.Persistent (Ir.Reg r) 0 (Ir.Imm 1L);  (* idx 5: c+0 *)
  Builder.ret b None;
  let f = Builder.finish b in
  let al = Alias.compute f in
  Alcotest.(check bool) "re-assigned register resolves per use" false
    (Alias.may_alias al { Ir.blk = 0; idx = 3 } { Ir.blk = 0; idx = 5 })

let test_alias_loop_carried_conservative () =
  (* cur := cur.next inside a loop: the loop-carried pointer cannot be
     resolved, so accesses through it must stay may-alias. *)
  let b, ps = Builder.create ~name:"f" ~nparams:1 in
  let head = List.nth ps 0 in
  let cur = Builder.mov b (Ir.Reg head) in
  Builder.while_ b
    ~cond:(fun () -> Ir.Reg (Builder.bin b Ir.Ne (Ir.Reg cur) (Ir.Imm 0L)))
    ~body:(fun () ->
      let nxt = Builder.load b Ir.Persistent (Ir.Reg cur) 1 in
      Builder.store b Ir.Persistent (Ir.Reg cur) 0 (Ir.Imm 1L);
      Builder.assign b cur (Ir.Reg nxt));
  Builder.ret b None;
  let f = Builder.finish b in
  let al = Alias.compute f in
  (* body block is 2: load at idx 0, store at idx 1 *)
  Alcotest.(check bool) "loop-carried pointer conservative" true
    (Alias.may_alias al { Ir.blk = 2; idx = 0 } { Ir.blk = 2; idx = 1 })

(* ------------------------------------------------------------------ *)
(* FASE inference *)

let test_fase_nested_and_cross () =
  (* Nested: lock1 lock2 unlock2 unlock1; cross: lock1 lock2 unlock1 unlock2. *)
  List.iter
    (fun order ->
      let b, _ = Builder.create ~name:"f" ~nparams:0 in
      Builder.lock b (Ir.Imm 1L);
      Builder.lock b (Ir.Imm 2L);
      (match order with
      | `Nested ->
          Builder.unlock b (Ir.Imm 2L);
          Builder.unlock b (Ir.Imm 1L)
      | `Cross ->
          Builder.unlock b (Ir.Imm 1L);
          Builder.unlock b (Ir.Imm 2L));
      Builder.ret b None;
      let f = Builder.finish b in
      let cfg = Cfg.build f in
      let fase = Fase.compute_exn cfg in
      let p i = { Ir.blk = 0; idx = i } in
      Alcotest.(check int) "depth before first lock" 0 (Fase.depth_before fase (p 0));
      Alcotest.(check int) "depth inside" 2 (Fase.depth_before fase (p 2));
      Alcotest.(check bool) "outermost acquire" true (Fase.outermost_acquire fase (p 0));
      Alcotest.(check bool) "inner acquire not outermost" false
        (Fase.outermost_acquire fase (p 1));
      Alcotest.(check bool) "final release outermost" true
        (Fase.outermost_release fase (p 3));
      Alcotest.(check bool) "has fase" true (Fase.has_fase fase))
    [ `Nested; `Cross ]

let test_fase_durable () =
  let b, _ = Builder.create ~name:"f" ~nparams:0 in
  Builder.durable_begin b;
  Builder.store b Ir.Persistent (Ir.Imm 100L) 0 (Ir.Imm 1L);
  Builder.durable_end b;
  Builder.ret b None;
  let f = Builder.finish b in
  let fase = Fase.compute_exn (Cfg.build f) in
  Alcotest.(check bool) "store in durable FASE" true
    (Fase.in_fase fase { Ir.blk = 0; idx = 1 });
  Alcotest.(check bool) "durable flag" true
    (Fase.durable_before fase { Ir.blk = 0; idx = 1 })

(* ------------------------------------------------------------------ *)
(* Antidependence and region formation *)

let war_fn () =
  (* Classic WAR: load x; store x — plus an independent store. *)
  let b, _ = Builder.create ~name:"f" ~nparams:0 in
  Builder.lock b (Ir.Imm 7L);
  let v = Builder.load b Ir.Persistent (Ir.Imm 100L) 0 in
  let v1 = Builder.bin b Ir.Add (Ir.Reg v) (Ir.Imm 1L) in
  Builder.store b Ir.Persistent (Ir.Imm 200L) 0 (Ir.Reg v1);
  Builder.store b Ir.Persistent (Ir.Imm 100L) 0 (Ir.Reg v1);
  Builder.unlock b (Ir.Imm 7L);
  Builder.ret b None;
  Builder.finish b

let test_antidep_pairs () =
  let f = war_fn () in
  let cfg = Cfg.build f in
  let fase = Fase.compute_exn cfg in
  let alias = Alias.compute f in
  let pairs = Antidep.compute cfg fase alias in
  Alcotest.(check int) "exactly one WAR pair" 1 (List.length pairs);
  let pr = List.hd pairs in
  Alcotest.(check bool) "load at idx 1" true (pr.Antidep.load.Ir.idx = 1);
  Alcotest.(check bool) "store at idx 4" true (pr.Antidep.store.Ir.idx = 4);
  Alcotest.(check bool) "same block" true pr.Antidep.same_block

let plan_of f =
  let cfg = Cfg.build f in
  let fase = Fase.compute_exn cfg in
  let lv = Liveness.compute cfg in
  let alias = Alias.compute f in
  (cfg, fase, alias, Regions.compute cfg fase lv alias)

let test_region_cuts () =
  let f = war_fn () in
  let cfg, fase, alias, plan = plan_of f in
  (* Cuts after acquire, at release, plus a hitting-set cut between the
     WAR load and store. *)
  let poss = Regions.cut_positions plan in
  Alcotest.(check bool) "cut after acquire" true
    (List.mem { Ir.blk = 0; idx = 1 } poss);
  Alcotest.(check bool) "cut at release" true
    (List.mem { Ir.blk = 0; idx = 5 } poss);
  Alcotest.(check int) "one WAR pair" 1 plan.Regions.n_war_pairs;
  Alcotest.(check int) "one hitting cut" 1 plan.Regions.n_hitting;
  Alcotest.(check bool) "oracle: no WAR within regions" true
    (Regions.verify_no_war_within_regions cfg fase alias plan)

let test_hitting_set_shares_cuts () =
  (* Two overlapping WAR intervals must be covered by a single cut. *)
  let b, _ = Builder.create ~name:"f" ~nparams:0 in
  Builder.lock b (Ir.Imm 7L);
  let x = Builder.load b Ir.Persistent (Ir.Imm 100L) 0 in
  let y = Builder.load b Ir.Persistent (Ir.Imm 101L) 0 in
  let s = Builder.bin b Ir.Add (Ir.Reg x) (Ir.Reg y) in
  Builder.store b Ir.Persistent (Ir.Imm 100L) 0 (Ir.Reg s);
  Builder.store b Ir.Persistent (Ir.Imm 101L) 0 (Ir.Reg s);
  Builder.unlock b (Ir.Imm 7L);
  Builder.ret b None;
  let f = Builder.finish b in
  let cfg, fase, alias, plan = plan_of f in
  Alcotest.(check int) "two WAR pairs" 2 plan.Regions.n_war_pairs;
  Alcotest.(check int) "single shared cut (optimal cover)" 1 plan.Regions.n_hitting;
  Alcotest.(check bool) "oracle" true
    (Regions.verify_no_war_within_regions cfg fase alias plan)

let test_required_flags () =
  let f = war_fn () in
  let _, _, _, plan = plan_of f in
  List.iter
    (fun (c : Regions.cut) ->
      let is_lock_cut = c.pos.Ir.idx = 1 || c.pos.Ir.idx = 5 in
      if is_lock_cut then
        Alcotest.(check bool) "lock cuts elidable" false c.Regions.required
      else Alcotest.(check bool) "WAR cut required" true c.Regions.required)
    plan.Regions.cuts

let test_out_regs_eq1 () =
  let f = war_fn () in
  let _, _, _, plan = plan_of f in
  (* At the WAR cut (before the store at idx 4), v1 was defined in the
     closing region and is still live (used by the stores). *)
  let cut =
    List.find (fun (c : Regions.cut) -> c.Regions.required) plan.Regions.cuts
  in
  Alcotest.(check bool) "v1 in OutputSet" true (List.length cut.Regions.out_regs >= 1);
  Alcotest.(check bool) "live_in includes out_regs" true
    (List.for_all (fun r -> List.mem r cut.Regions.live_in) cut.Regions.out_regs)

let test_workload_region_plans_sound () =
  List.iter
    (fun name ->
      let prog = Ido_workloads.Workload.named name in
      List.iter
        (fun (_, f) ->
          let cfg = Cfg.build f in
          let fase = Fase.compute_exn cfg in
          if Fase.has_fase fase then begin
            let alias = Alias.compute f in
            let lv = Liveness.compute cfg in
            let plan = Regions.compute cfg fase lv alias in
            Alcotest.(check bool)
              (Printf.sprintf "%s/%s WAR-free regions" name f.Ir.name)
              true
              (Regions.verify_no_war_within_regions cfg fase alias plan)
          end)
        prog.Ir.funcs)
    Ido_workloads.Workload.names

let test_reaching_covers_all_uses () =
  (* In every validated workload function, every register use is
     reached by at least one definition (else execution would read an
     uninitialised register). *)
  List.iter
    (fun name ->
      let prog = Ido_workloads.Workload.named name in
      List.iter
        (fun (_, f) ->
          let cfg = Cfg.build f in
          let rd = Reaching.compute cfg in
          ignore
            (Ir.fold_instrs
               (fun () pos instr ->
                 if Cfg.reachable cfg pos.Ir.blk then
                   List.iter
                     (fun r ->
                       Alcotest.(check bool)
                         (Printf.sprintf "%s/%s r%d defined at (%d,%d)" name
                            f.Ir.name r pos.Ir.blk pos.Ir.idx)
                         true
                         (Reaching.defs_at rd pos r <> []))
                     (Ir.instr_uses instr))
               () f))
        prog.Ir.funcs)
    Ido_workloads.Workload.names

let suites =
  [
    ( "analysis.cfg",
      [
        Alcotest.test_case "structure" `Quick test_cfg_structure;
        Alcotest.test_case "rpo" `Quick test_cfg_rpo;
        Alcotest.test_case "dominators" `Quick test_dominators;
        Alcotest.test_case "back edges" `Quick test_back_edges;
        Alcotest.test_case "path exists" `Quick test_path_exists;
      ] );
    ( "analysis.liveness",
      [
        Alcotest.test_case "block level" `Quick test_liveness;
        Alcotest.test_case "instruction level" `Quick test_liveness_at_positions;
      ] );
    ( "analysis.alias",
      [
        Alcotest.test_case "basic precision" `Quick test_alias;
        Alcotest.test_case "offset folding" `Quick test_alias_offsets_fold;
        Alcotest.test_case "multi-def conservative" `Quick
          test_alias_multidef_conservative;
        Alcotest.test_case "per-use resolution" `Quick test_alias_per_use_resolution;
        Alcotest.test_case "loop-carried conservative" `Quick
          test_alias_loop_carried_conservative;
      ] );
    ( "analysis.reaching",
      [
        Alcotest.test_case "reaching definitions" `Quick test_reaching_defs;
        Alcotest.test_case "all uses defined" `Quick test_reaching_covers_all_uses;
      ] );
    ( "analysis.fase",
      [
        Alcotest.test_case "nested and cross locking" `Quick test_fase_nested_and_cross;
        Alcotest.test_case "durable regions" `Quick test_fase_durable;
      ] );
    ( "analysis.regions",
      [
        Alcotest.test_case "antidep pairs" `Quick test_antidep_pairs;
        Alcotest.test_case "cut placement" `Quick test_region_cuts;
        Alcotest.test_case "hitting set optimal" `Quick test_hitting_set_shares_cuts;
        Alcotest.test_case "required flags" `Quick test_required_flags;
        Alcotest.test_case "OutputSet (Eq. 1)" `Quick test_out_regs_eq1;
        Alcotest.test_case "workload plans sound" `Quick
          test_workload_region_plans_sound;
      ] );
  ]
