open Ido_ir
open Ido_analysis

(* Small helpers to assemble test functions. *)

let finish_ret b =
  Builder.ret b None;
  Builder.finish b

let simple_counter_fn () =
  let b, ps = Builder.create ~name:"f" ~nparams:1 in
  let n = List.nth ps 0 in
  let i = Builder.mov b (Ir.Imm 0L) in
  Builder.while_ b
    ~cond:(fun () -> Ir.Reg (Builder.bin b Ir.Lt (Ir.Reg i) (Ir.Reg n)))
    ~body:(fun () -> Builder.assign_bin b i Ir.Add (Ir.Reg i) (Ir.Imm 1L));
  Builder.ret b (Some (Ir.Reg i));
  Builder.finish b

(* ------------------------------------------------------------------ *)
(* Builder structure *)

let test_builder_blocks () =
  let f = simple_counter_fn () in
  Alcotest.(check int) "four blocks (entry + while trio)" 4
    (Array.length f.Ir.blocks);
  Alcotest.(check string) "entry label" "entry" f.Ir.blocks.(0).Ir.label;
  Alcotest.(check bool) "nregs counted" true (f.Ir.nregs >= 2)

let test_builder_unterminated_rejected () =
  let b, _ = Builder.create ~name:"g" ~nparams:0 in
  let blk = Builder.block b "dangling" in
  Builder.br b blk;
  Builder.switch_to b blk;
  (* blk never terminated *)
  Alcotest.check_raises "unterminated"
    (Failure "Builder.finish: block dangling of g not terminated") (fun () ->
      ignore (Builder.finish b))

let test_builder_double_terminate_rejected () =
  let b, _ = Builder.create ~name:"g" ~nparams:0 in
  Builder.ret b None;
  Alcotest.check_raises "double" (Invalid_argument "Builder: block already terminated")
    (fun () -> Builder.ret b None)

let test_builder_emit_after_terminator_rejected () =
  let b, _ = Builder.create ~name:"g" ~nparams:0 in
  Builder.ret b None;
  Alcotest.check_raises "emit after ret"
    (Invalid_argument "Builder: emitting into a terminated block") (fun () ->
      ignore (Builder.mov b (Ir.Imm 0L)))

let test_if_join () =
  let b, ps = Builder.create ~name:"g" ~nparams:1 in
  let x = List.nth ps 0 in
  let r = Builder.mov b (Ir.Imm 0L) in
  Builder.if_ b (Ir.Reg x)
    ~then_:(fun () -> Builder.assign b r (Ir.Imm 1L))
    ~else_:(fun () -> Builder.assign b r (Ir.Imm 2L));
  Builder.ret b (Some (Ir.Reg r));
  let f = Builder.finish b in
  Alcotest.(check int) "diamond has 4 blocks" 4 (Array.length f.Ir.blocks);
  (* Both branches jump to the join. *)
  let targets =
    Array.to_list f.Ir.blocks
    |> List.concat_map (fun (blk : Ir.block) -> Ir.successors blk.Ir.term)
  in
  Alcotest.(check bool) "join referenced twice" true
    (List.length (List.filter (fun t -> t = 3) targets) = 2)

(* ------------------------------------------------------------------ *)
(* Use/def *)

let test_use_def () =
  let i = Ir.Bin (3, Ir.Add, Ir.Reg 1, Ir.Reg 2) in
  Alcotest.(check (list int)) "uses" [ 1; 2 ] (Ir.instr_uses i);
  Alcotest.(check (list int)) "defs" [ 3 ] (Ir.instr_defs i);
  let s = Ir.Store { space = Ir.Persistent; base = Ir.Reg 4; off = 0; src = Ir.Reg 5 } in
  Alcotest.(check (list int)) "store uses" [ 4; 5 ] (Ir.instr_uses s);
  Alcotest.(check (list int)) "store defs" [] (Ir.instr_defs s);
  let c = Ir.Call { dst = Some 7; func = "f"; args = [ Ir.Reg 1; Ir.Imm 0L ] } in
  Alcotest.(check (list int)) "call defs" [ 7 ] (Ir.instr_defs c);
  Alcotest.(check (list int)) "term uses" [ 9 ] (Ir.term_uses (Ir.Cbr (Ir.Reg 9, 0, 1)))

let test_positions () =
  Alcotest.(check bool) "pos ordering" true
    (Ir.compare_pos { Ir.blk = 0; idx = 5 } { Ir.blk = 1; idx = 0 } < 0);
  Alcotest.(check bool) "same block by idx" true
    (Ir.compare_pos { Ir.blk = 1; idx = 0 } { Ir.blk = 1; idx = 3 } < 0)

let test_printer () =
  let f = simple_counter_fn () in
  let s = Format.asprintf "%a" Ir.pp_func f in
  Alcotest.(check bool) "prints header" true
    (String.length s > 6 && String.sub s 0 6 = "func f");
  let has frag =
    let n = String.length frag in
    let rec go i = i + n <= String.length s && (String.sub s i n = frag || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "prints loop blocks" true (has "while_head");
  Alcotest.(check bool) "prints terminators" true (has "cbr")

(* ------------------------------------------------------------------ *)
(* Validator *)

let prog_of f = { Ir.funcs = [ (f.Ir.name, f) ] }

let expect_error ?(allow_hooks = false) f fragment =
  match Validate.check_program ~allow_hooks (prog_of f) with
  | Ok () -> Alcotest.failf "expected error mentioning %S" fragment
  | Error msgs ->
      let found =
        List.exists
          (fun m ->
            let rec contains i =
              i + String.length fragment <= String.length m
              && (String.sub m i (String.length fragment) = fragment
                 || contains (i + 1))
            in
            contains 0)
          msgs
      in
      if not found then
        Alcotest.failf "errors %s lack %S" (String.concat "; " msgs) fragment

let test_validate_ok () =
  let f = simple_counter_fn () in
  (match Validate.check_program (prog_of f) with
  | Ok () -> ()
  | Error es -> Alcotest.failf "unexpected: %s" (String.concat "; " es));
  Validate.check_program_exn (prog_of f)

let test_validate_unlock_without_lock () =
  let b, _ = Builder.create ~name:"f" ~nparams:0 in
  Builder.unlock b (Ir.Imm 1L);
  expect_error (finish_ret b) "unlock with no lock held"

let test_validate_ret_in_fase () =
  let b, _ = Builder.create ~name:"f" ~nparams:0 in
  Builder.lock b (Ir.Imm 1L);
  expect_error (finish_ret b) "return with lock held"

let test_validate_rand_in_fase () =
  let b, _ = Builder.create ~name:"f" ~nparams:0 in
  Builder.lock b (Ir.Imm 1L);
  ignore (Builder.intr b Ir.Rand [ Ir.Imm 4L ]);
  Builder.unlock b (Ir.Imm 1L);
  expect_error (finish_ret b) "rand inside FASE"

let test_validate_observe_in_fase () =
  let b, _ = Builder.create ~name:"f" ~nparams:0 in
  Builder.durable_begin b;
  Builder.intr_void b Ir.Observe [ Ir.Imm 1L ];
  Builder.durable_end b;
  expect_error (finish_ret b) "observe inside FASE"

let test_validate_nv_free_in_fase () =
  let b, _ = Builder.create ~name:"f" ~nparams:0 in
  Builder.lock b (Ir.Imm 1L);
  Builder.intr_void b Ir.Nv_free [ Ir.Imm 64L ];
  Builder.unlock b (Ir.Imm 1L);
  expect_error (finish_ret b) "double-free"

let test_validate_transient_in_fase () =
  let b, _ = Builder.create ~name:"f" ~nparams:0 in
  Builder.lock b (Ir.Imm 1L);
  ignore (Builder.load b Ir.Transient (Ir.Imm 0L) 0);
  Builder.unlock b (Ir.Imm 1L);
  expect_error (finish_ret b) "transient load inside FASE"

let test_validate_call_in_fase () =
  let b, _ = Builder.create ~name:"f" ~nparams:0 in
  Builder.lock b (Ir.Imm 1L);
  Builder.call_void b "f" [];
  Builder.unlock b (Ir.Imm 1L);
  expect_error (finish_ret b) "call inside FASE"

let test_validate_nested_durable () =
  let b, _ = Builder.create ~name:"f" ~nparams:0 in
  Builder.durable_begin b;
  Builder.durable_begin b;
  Builder.durable_end b;
  expect_error (finish_ret b) "nested durable"

let test_validate_durable_in_lock () =
  let b, _ = Builder.create ~name:"f" ~nparams:0 in
  Builder.lock b (Ir.Imm 1L);
  Builder.durable_begin b;
  Builder.durable_end b;
  Builder.unlock b (Ir.Imm 1L);
  expect_error (finish_ret b) "durable region inside FASE"

let test_validate_inconsistent_join () =
  (* Lock held on one arm of a diamond only. *)
  let b, ps = Builder.create ~name:"f" ~nparams:1 in
  let x = List.nth ps 0 in
  Builder.if_ b (Ir.Reg x)
    ~then_:(fun () -> Builder.lock b (Ir.Imm 1L))
    ~else_:(fun () -> ());
  Builder.unlock b (Ir.Imm 1L);
  expect_error (finish_ret b) "inconsistent lock depth"

let test_validate_alloca_in_fase () =
  let b, _ = Builder.create ~name:"f" ~nparams:0 in
  Builder.lock b (Ir.Imm 1L);
  ignore (Builder.alloca b 4);
  Builder.unlock b (Ir.Imm 1L);
  expect_error (finish_ret b) "alloca inside FASE"

let test_validate_hooks_rejected () =
  let b, _ = Builder.create ~name:"f" ~nparams:0 in
  Builder.ret b None;
  let f = Builder.finish b in
  f.Ir.blocks.(0).Ir.instrs <- [| Ir.Hook Ir.Hfase_enter |];
  expect_error f "unexpected hook";
  (* But accepted when instrumented output is being validated. *)
  match Validate.check_program ~allow_hooks:true (prog_of f) with
  | Ok () -> ()
  | Error es -> Alcotest.failf "hooks should pass: %s" (String.concat ";" es)

let test_validate_call_graph () =
  let b, _ = Builder.create ~name:"f" ~nparams:0 in
  Builder.call_void b "missing" [];
  Builder.ret b None;
  let f = Builder.finish b in
  expect_error f "unknown function";
  let b, _ = Builder.create ~name:"g" ~nparams:2 in
  Builder.ret b None;
  let g = Builder.finish b in
  let b, _ = Builder.create ~name:"f" ~nparams:0 in
  Builder.call_void b "g" [ Ir.Imm 1L ];
  Builder.ret b None;
  let f2 = Builder.finish b in
  (match Validate.check_program { Ir.funcs = [ ("f", f2); ("g", g) ] } with
  | Ok () -> Alcotest.fail "arity mismatch accepted"
  | Error _ -> ());
  (* Duplicate function names. *)
  match Validate.check_program { Ir.funcs = [ ("g", g); ("g", g) ] } with
  | Ok () -> Alcotest.fail "duplicate accepted"
  | Error _ -> ()

let test_validate_workloads () =
  List.iter
    (fun name ->
      match Validate.check_program (Ido_workloads.Workload.named name) with
      | Ok () -> ()
      | Error es ->
          Alcotest.failf "workload %s invalid: %s" name (String.concat "; " es))
    Ido_workloads.Workload.names

let suites =
  [
    ( "ir.builder",
      [
        Alcotest.test_case "blocks" `Quick test_builder_blocks;
        Alcotest.test_case "unterminated rejected" `Quick
          test_builder_unterminated_rejected;
        Alcotest.test_case "double terminate" `Quick
          test_builder_double_terminate_rejected;
        Alcotest.test_case "emit after terminator" `Quick
          test_builder_emit_after_terminator_rejected;
        Alcotest.test_case "if join" `Quick test_if_join;
      ] );
    ( "ir.core",
      [
        Alcotest.test_case "use/def" `Quick test_use_def;
        Alcotest.test_case "positions" `Quick test_positions;
        Alcotest.test_case "printer" `Quick test_printer;
      ] );
    ( "ir.validate",
      [
        Alcotest.test_case "valid program" `Quick test_validate_ok;
        Alcotest.test_case "unlock w/o lock" `Quick test_validate_unlock_without_lock;
        Alcotest.test_case "ret in FASE" `Quick test_validate_ret_in_fase;
        Alcotest.test_case "rand in FASE" `Quick test_validate_rand_in_fase;
        Alcotest.test_case "observe in FASE" `Quick test_validate_observe_in_fase;
        Alcotest.test_case "nv_free in FASE" `Quick test_validate_nv_free_in_fase;
        Alcotest.test_case "transient in FASE" `Quick test_validate_transient_in_fase;
        Alcotest.test_case "call in FASE" `Quick test_validate_call_in_fase;
        Alcotest.test_case "nested durable" `Quick test_validate_nested_durable;
        Alcotest.test_case "durable in lock FASE" `Quick test_validate_durable_in_lock;
        Alcotest.test_case "inconsistent join" `Quick test_validate_inconsistent_join;
        Alcotest.test_case "alloca in FASE" `Quick test_validate_alloca_in_fase;
        Alcotest.test_case "hooks gated" `Quick test_validate_hooks_rejected;
        Alcotest.test_case "call graph" `Quick test_validate_call_graph;
        Alcotest.test_case "all workloads validate" `Quick test_validate_workloads;
      ] );
  ]
