open Ido_util
open Ido_nvm
open Ido_region

let qtest = QCheck_alcotest.to_alcotest

let mk ?(size = 1 lsl 16) ?(seed = 1) () =
  let pm = Pmem.create ~rng:(Rng.create seed) size in
  (pm, Region.create pm)

let test_create_and_reopen () =
  let pm, r = mk () in
  Alcotest.(check bool) "fresh region clean" false (Region.was_dirty r);
  Region.mark_running r;
  let r2 = Region.open_existing pm in
  Alcotest.(check bool) "running = dirty at open" true (Region.was_dirty r2);
  Region.mark_clean r2;
  let r3 = Region.open_existing pm in
  Alcotest.(check bool) "clean close" false (Region.was_dirty r3)

let test_open_unformatted () =
  let pm = Pmem.create ~rng:(Rng.create 1) 4096 in
  Alcotest.check_raises "no magic"
    (Invalid_argument "Region.open_existing: no region header") (fun () ->
      ignore (Region.open_existing pm))

let test_dirty_flag_survives_crash () =
  let pm, r = mk () in
  Region.mark_running r;
  Pmem.crash pm;
  let r2 = Region.open_existing pm in
  Alcotest.(check bool) "crash leaves dirty" true (Region.was_dirty r2)

let test_alloc_zeroed_and_disjoint () =
  let pm, r = mk () in
  let a = Region.alloc r 8 in
  for i = 0 to 7 do
    Pmem.store pm (a + i) 7L
  done;
  let b = Region.alloc r 8 in
  Alcotest.(check bool) "disjoint" true (b >= a + 8 || a >= b + 8);
  for i = 0 to 7 do
    Alcotest.(check int64) "zeroed" 0L (Pmem.load pm (b + i))
  done;
  Alcotest.(check int) "block size" 8 (Region.block_size r a)

let test_free_list_reuse () =
  let _, r = mk () in
  let a = Region.alloc r 16 in
  Region.free r a;
  let b = Region.alloc r 16 in
  Alcotest.(check int) "exact-fit block reused" a b

let test_free_list_split () =
  let _, r = mk () in
  let a = Region.alloc r 64 in
  Region.free r a;
  let b = Region.alloc r 8 in
  let c = Region.alloc r 8 in
  (* Both small blocks carved out of the freed large one. *)
  Alcotest.(check bool) "first from freed block" true (b >= a && b < a + 64);
  Alcotest.(check bool) "second from remainder" true (c >= a && c < a + 64);
  Alcotest.(check bool) "no overlap" true (abs (b - c) >= 8)

let test_alloc_exhaustion () =
  let _, r = mk ~size:(Region.heap_base + 64) () in
  Alcotest.check_raises "oom" (Failure "Region.alloc: out of memory") (fun () ->
      ignore (Region.alloc r 1024))

let test_roots () =
  let pm, r = mk () in
  Region.set_root r 0 99L;
  Region.set_root r 15 7L;
  Alcotest.(check int64) "root 0" 99L (Region.get_root r 0);
  Pmem.crash pm;
  let r2 = Region.open_existing pm in
  Alcotest.(check int64) "root survives crash" 99L (Region.get_root r2 0);
  Alcotest.(check int64) "root 15 survives" 7L (Region.get_root r2 15);
  Alcotest.check_raises "bad slot" (Invalid_argument "Region.get_root: bad slot")
    (fun () -> ignore (Region.get_root r 16))

let test_log_head_persisted () =
  let pm, r = mk () in
  Region.set_log_head r 4242L;
  Pmem.crash pm;
  let r2 = Region.open_existing pm in
  Alcotest.(check int64) "log head survives" 4242L (Region.log_head r2)

let test_allocator_metadata_survives_crash () =
  let pm, r = mk () in
  let a = Region.alloc r 8 in
  Pmem.crash pm;
  let r2 = Region.open_existing pm in
  let b = Region.alloc r2 8 in
  Alcotest.(check bool) "no overlap after crash" true (b >= a + 8 || a >= b + 8)

let test_words_allocated () =
  let _, r = mk () in
  ignore (Region.alloc r 10);
  ignore (Region.alloc r 5);
  Alcotest.(check int) "accounting" 15 (Region.words_allocated r)

let prop_allocations_never_overlap =
  QCheck.Test.make ~name:"allocations never overlap" ~count:60
    QCheck.(list_of_size Gen.(int_range 1 40) (int_range 1 32))
    (fun sizes ->
      let _, r = mk ~size:(1 lsl 18) () in
      let blocks = List.map (fun n -> (Region.alloc r n, n)) sizes in
      let rec pairwise = function
        | [] -> true
        | (a, n) :: rest ->
            List.for_all (fun (b, m) -> a + n <= b || b + m <= a) rest
            && pairwise rest
      in
      pairwise blocks
      && List.for_all (fun (a, _) -> a >= Region.heap_base) blocks)

let prop_free_then_alloc_no_overlap =
  QCheck.Test.make ~name:"free-list churn keeps blocks disjoint" ~count:40
    QCheck.(list_of_size Gen.(int_range 4 30) (int_range 1 24))
    (fun sizes ->
      let _, r = mk ~size:(1 lsl 18) () in
      (* Allocate all, free every other one, allocate again; live
         blocks must stay pairwise disjoint. *)
      let first = List.map (fun n -> (Region.alloc r n, n)) sizes in
      List.iteri (fun i (a, _) -> if i mod 2 = 0 then Region.free r a) first;
      let survivors = List.filteri (fun i _ -> i mod 2 = 1) first in
      let second = List.map (fun n -> (Region.alloc r n, n)) sizes in
      let live = survivors @ second in
      let rec pairwise = function
        | [] -> true
        | (a, n) :: rest ->
            List.for_all (fun (b, m) -> a + n <= b || b + m <= a) rest
            && pairwise rest
      in
      pairwise live)

let suites =
  [
    ( "region",
      [
        Alcotest.test_case "create/reopen" `Quick test_create_and_reopen;
        Alcotest.test_case "open unformatted" `Quick test_open_unformatted;
        Alcotest.test_case "dirty flag crash" `Quick test_dirty_flag_survives_crash;
        Alcotest.test_case "alloc zeroed/disjoint" `Quick test_alloc_zeroed_and_disjoint;
        Alcotest.test_case "free reuse" `Quick test_free_list_reuse;
        Alcotest.test_case "free split" `Quick test_free_list_split;
        Alcotest.test_case "exhaustion" `Quick test_alloc_exhaustion;
        Alcotest.test_case "roots" `Quick test_roots;
        Alcotest.test_case "log head" `Quick test_log_head_persisted;
        Alcotest.test_case "metadata survives crash" `Quick
          test_allocator_metadata_survives_crash;
        Alcotest.test_case "words allocated" `Quick test_words_allocated;
        qtest prop_allocations_never_overlap;
        qtest prop_free_then_alloc_no_overlap;
      ] );
  ]
