examples/crash_matrix.mli:
