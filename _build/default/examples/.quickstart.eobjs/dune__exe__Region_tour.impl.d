examples/region_tour.ml: Alias Antidep Cfg Fase Format Ido_analysis Ido_harness Ido_instrument Ido_ir Ido_runtime Ido_util Ido_workloads Ir List Liveness Regions Scheme
