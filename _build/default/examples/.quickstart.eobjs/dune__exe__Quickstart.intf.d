examples/quickstart.mli:
