examples/region_tour.mli:
