examples/persistent_kv.mli:
