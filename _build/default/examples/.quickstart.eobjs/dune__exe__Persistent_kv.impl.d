examples/persistent_kv.ml: Builder Ido_ir Ido_runtime Ido_vm Ido_workloads Int64 Ir List Printf Scheme
