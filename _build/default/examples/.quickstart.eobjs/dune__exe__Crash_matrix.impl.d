examples/crash_matrix.ml: Ido_runtime Ido_vm Ido_workloads List Printf Scheme
