examples/quickstart.ml: Builder Ido_ir Ido_nvm Ido_region Ido_runtime Ido_util Ido_vm Ido_workloads Int64 Ir List Printf Scheme
