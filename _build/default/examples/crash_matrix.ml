(* Crash-consistency demonstration across every scheme and workload.

   For each (workload, scheme) pair: run concurrent workers, power-fail
   at a random instant, recover, and run the workload's integrity check
   on the recovered heap.  Prints one row per workload — this is the
   correctness experiment backing the performance numbers, and shows
   the uninstrumented baseline failing where every real scheme holds.

     dune exec examples/crash_matrix.exe *)

open Ido_runtime
module Vm = Ido_vm.Vm

let seeds = [ 1; 2; 3; 4; 5 ]

let verdict ~workload ~scheme =
  let ok = ref 0 in
  List.iter
    (fun seed ->
      let prog = Ido_workloads.Workload.named workload in
      let cfg = { (Vm.config scheme) with seed; cache_lines = 32 } in
      let m = Vm.create cfg prog in
      let _ = Vm.spawn m ~fname:"init" ~args:[] in
      (match Vm.run m with `Idle -> () | _ -> failwith "init stuck");
      Vm.flush_all m;
      let threads = if workload = "objstore" then 1 else 4 in
      for _ = 1 to threads do
        ignore (Vm.spawn m ~fname:"worker" ~args:[ 400L ])
      done;
      (match Vm.run ~until:(Vm.clock m + 30_000 + (seed * 9_001)) m with
      | `Until | `Idle -> ()
      | _ -> failwith "run stuck");
      Vm.crash m;
      ignore (Vm.recover m);
      let t = Vm.spawn m ~fname:"check" ~args:[] in
      match Vm.run m with
      | `Idle when List.length (Vm.observations t) = 1 -> incr ok
      | _ | (exception Vm.Vm_error _) -> ())
    seeds;
  Printf.sprintf "%d/%d" !ok (List.length seeds)

let () =
  let schemes = Scheme.all in
  Printf.printf "Post-crash integrity checks passed (out of %d random crash points):\n\n"
    (List.length seeds);
  Printf.printf "%-10s" "";
  List.iter (fun s -> Printf.printf "%11s" (Scheme.name s)) schemes;
  print_newline ();
  List.iter
    (fun workload ->
      Printf.printf "%-10s" workload;
      List.iter
        (fun scheme ->
          (* NVML is a library: it only protects programmer-delineated
             durable regions (objstore), not lock-inferred FASEs. *)
          if scheme = Scheme.Nvml && workload <> "objstore" then
            Printf.printf "%11s" "n/a"
          else Printf.printf "%11s" (verdict ~workload ~scheme))
        schemes;
      print_newline ())
    Ido_workloads.Workload.names;
  Printf.printf
    "\n(origin is the crash-vulnerable baseline: with a small cache, eviction\n\
     order tears its structures.  nvml protects only programmer-delineated\n\
     durable regions, hence n/a on the lock-based structures.  Every\n\
     applicable scheme must be %d/%d.)\n"
    (List.length seeds) (List.length seeds)
