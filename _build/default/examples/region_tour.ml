(* A tour of the iDO compiler pipeline (Fig. 4) on one function.

   Shows, for the stack's push operation: the source IR, the inferred
   FASE, the write-after-read pairs found by alias analysis, the region
   plan (cuts, with their required/elidable classification and register
   sets), and finally the instrumented IR the VM executes.

     dune exec examples/region_tour.exe *)

open Ido_ir
open Ido_analysis
open Ido_runtime

let () =
  let prog = Ido_workloads.Workload.named "stack" in
  let f = Ir.find_func prog "stack_push" in
  Format.printf "=== Source IR ===@.%a@." Ir.pp_func f;

  let cfg = Cfg.build f in
  let fase = Fase.compute_exn cfg in
  Format.printf "=== FASE inference ===@.";
  ignore
    (Ir.fold_instrs
       (fun () pos instr ->
         match instr with
         | Ir.Lock _ when Fase.outermost_acquire fase pos ->
             Format.printf "  outermost acquire at (%d,%d)@." pos.Ir.blk pos.Ir.idx
         | Ir.Unlock _ when Fase.outermost_release fase pos ->
             Format.printf "  outermost release at (%d,%d)@." pos.Ir.blk pos.Ir.idx
         | _ -> ())
       () f);

  let alias = Alias.compute f in
  let pairs = Antidep.compute cfg fase alias in
  Format.printf "@.=== Antidependences (WAR pairs needing a cut) ===@.";
  List.iter
    (fun (p : Antidep.pair) ->
      Format.printf "  load (%d,%d) -> store (%d,%d)%s@." p.load.Ir.blk
        p.load.Ir.idx p.store.Ir.blk p.store.Ir.idx
        (if p.same_block then "  [same block: interval cover]" else "  [cross-block]"))
    pairs;

  let lv = Liveness.compute cfg in
  let plan = Regions.compute cfg fase lv alias in
  Format.printf
    "@.=== Region plan: %d cuts (%d lock-induced, %d from the hitting set) ===@."
    (List.length plan.Regions.cuts)
    plan.Regions.n_mandatory plan.Regions.n_hitting;
  List.iter
    (fun (c : Regions.cut) ->
      Format.printf
        "  region #%d at (%d,%d)%s%s  live-in=%d regs, OutputSet=%d regs@."
        c.Regions.id c.Regions.pos.Ir.blk c.Regions.pos.Ir.idx
        (if c.Regions.required then " [required]" else " [elidable]")
        (if c.Regions.at_release then " [at release]" else "")
        (List.length c.Regions.live_in)
        (List.length c.Regions.out_regs))
    plan.Regions.cuts;

  let instrumented = Ido_instrument.Instrument.instrument Scheme.Ido prog in
  Format.printf "@.=== Instrumented IR (what the machine executes) ===@.%a@."
    Ir.pp_func
    (Ir.find_func instrumented "stack_push");

  (* And the dynamic view: region statistics from an actual run. *)
  let stores, live_in =
    Ido_harness.Exp.region_stats ~threads:2 ~total_ops:2_000 prog
  in
  Format.printf "=== Dynamic region characteristics (cf. Fig. 8) ===@.";
  Format.printf "  dynamic regions:      %d@." (Ido_util.Cdf.total stores);
  Format.printf "  mean stores/region:   %.2f@." (Ido_util.Cdf.mean stores);
  Format.printf "  regions with 0 stores: %.1f%%@."
    (100.0 *. Ido_util.Cdf.cumulative stores 0);
  Format.printf "  mean live-in regs:    %.2f@." (Ido_util.Cdf.mean live_in);
  Format.printf "  live-in <= 8 (one cache line): %.1f%%@."
    (100.0 *. Ido_util.Cdf.cumulative live_in 8)
