(* A persistent key-value store that survives power failure.

   Uses the Memcached-like workload's API (kv_set / kv_get) as a
   library: populate a store, power-fail it mid-burst, recover under
   each scheme, and verify every previously acknowledged write is
   still readable — the paper's durability property (Sec. II-B).

     dune exec examples/persistent_kv.exe *)

open Ido_ir
open Ido_runtime
module Vm = Ido_vm.Vm

(* A driver that sets keys 0..n-1 to value 1000+k, observing an ack per
   completed write (outside the FASE, as the model requires). *)
let writer n =
  let b, _ = Builder.create ~name:"writer" ~nparams:1 in
  let desc = Ido_workloads.Wcommon.get_root b 0 in
  Ido_workloads.Wcommon.for_loop b (Ir.Imm (Int64.of_int n)) (fun k ->
      let v = Builder.bin b Ir.Add (Ir.Reg k) (Ir.Imm 1000L) in
      Builder.call_void b "kv_set" [ Ir.Reg desc; Ir.Reg k; Ir.Reg v ];
      Ido_workloads.Wcommon.observe b (Ir.Reg k));
  Builder.ret b None;
  Builder.finish b

let reader n =
  let b, _ = Builder.create ~name:"reader" ~nparams:1 in
  let desc = Ido_workloads.Wcommon.get_root b 0 in
  Ido_workloads.Wcommon.for_loop b (Ir.Imm (Int64.of_int n)) (fun k ->
      let v = Builder.call b "kv_get" [ Ir.Reg desc; Ir.Reg k ] in
      Ido_workloads.Wcommon.observe b (Ir.Reg v));
  Builder.ret b None;
  Builder.finish b

let n_keys = 64

let program () =
  let base = Ido_workloads.Kvcache.program ~insert_pct:50 () in
  { Ir.funcs = base.Ir.funcs @ [ ("writer", writer n_keys); ("reader", reader n_keys) ] }

let demo scheme =
  let m = Vm.create { (Vm.config scheme) with cache_lines = 16 } (program ()) in
  let _ = Vm.spawn m ~fname:"init" ~args:[] in
  ignore (Vm.run m);
  Vm.flush_all m;
  (* Write a burst and crash somewhere in the middle of it. *)
  let w = Vm.spawn m ~fname:"writer" ~args:[ 0L ] in
  ignore (Vm.run ~until:(Vm.clock m + 45_000) m);
  let acked = List.length (Vm.observations w) in
  Vm.crash m;
  ignore (Vm.recover m);
  (* Read everything back. *)
  let r = Vm.spawn m ~fname:"reader" ~args:[ 0L ] in
  (match Vm.run m with `Idle -> () | _ -> failwith "reader stuck");
  let values = Vm.observations r in
  let durable_acked =
    List.filteri (fun k _ -> k < acked) values
    |> List.for_all (fun v -> v <> -1L)
  in
  let readable = List.length (List.filter (fun v -> v <> -1L) values) in
  Printf.printf
    "%-10s  acknowledged %2d writes before the crash; %2d keys readable after\n\
    \            recovery; every acknowledged write durable: %b\n"
    (Scheme.name scheme) acked readable durable_acked

let () =
  Printf.printf
    "Persistent KV store: write keys, power-fail mid-burst, recover, read back.\n\
     (Writes are acknowledged only after their FASE completes, so every\n\
     acknowledged write must survive — the durability guarantee of Sec. II-B.)\n\n";
  List.iter demo Scheme.[ Ido; Justdo; Atlas; Mnemosyne; Nvthreads ]
