(* Quickstart: failure-atomic bank transfers with iDO.

   Builds a tiny lock-based program against the public API, runs it on
   the simulated NVM machine, power-fails it in the middle of a
   transfer, recovers by resumption, and shows that the invariant
   (total balance is conserved) holds — while the uninstrumented
   baseline, given the same crash, can lose money.

     dune exec examples/quickstart.exe *)

open Ido_ir
open Ido_runtime
module Vm = Ido_vm.Vm
module Pmem = Ido_nvm.Pmem
module Region = Ido_region.Region

let accounts = 8
let initial_balance = 1_000L

(* One account per cache line so a crash can genuinely tear a transfer
   for the unprotected baseline. *)
let stride = 8

(* init: allocate the account array (word i*stride = balance of
   account i; the word after the array is the bank's lock holder). *)
let init_fn () =
  let b, _ = Builder.create ~name:"init" ~nparams:0 in
  let bank =
    Builder.intr b Ir.Nv_alloc [ Ir.Imm (Int64.of_int ((accounts * stride) + 1)) ]
  in
  for i = 0 to accounts - 1 do
    Builder.store b Ir.Persistent (Ir.Reg bank) (i * stride) (Ir.Imm initial_balance)
  done;
  Builder.intr_void b Ir.Root_set [ Ir.Imm 0L; Ir.Reg bank ];
  Builder.ret b None;
  Builder.finish b

(* transfer(from, to, amount): a lock-delineated FASE moving money
   between two accounts.  A crash inside it must never be able to
   destroy or create money. *)
let transfer_fn () =
  let b, ps = Builder.create ~name:"transfer" ~nparams:3 in
  let src = List.nth ps 0 and dst = List.nth ps 1 and amt = List.nth ps 2 in
  let bank = Builder.intr b Ir.Root_get [ Ir.Imm 0L ] in
  let lock =
    Builder.bin b Ir.Add (Ir.Reg bank) (Ir.Imm (Int64.of_int (accounts * stride)))
  in
  let src_off = Builder.bin b Ir.Mul (Ir.Reg src) (Ir.Imm (Int64.of_int stride)) in
  let dst_off = Builder.bin b Ir.Mul (Ir.Reg dst) (Ir.Imm (Int64.of_int stride)) in
  let src_slot = Builder.bin b Ir.Add (Ir.Reg bank) (Ir.Reg src_off) in
  let dst_slot = Builder.bin b Ir.Add (Ir.Reg bank) (Ir.Reg dst_off) in
  Builder.lock b (Ir.Reg lock);
  let a = Builder.load b Ir.Persistent (Ir.Reg src_slot) 0 in
  let c = Builder.load b Ir.Persistent (Ir.Reg dst_slot) 0 in
  let a' = Builder.bin b Ir.Sub (Ir.Reg a) (Ir.Reg amt) in
  let c' = Builder.bin b Ir.Add (Ir.Reg c) (Ir.Reg amt) in
  Builder.store b Ir.Persistent (Ir.Reg src_slot) 0 (Ir.Reg a');
  (* Simulated bookkeeping in the middle widens the crash window. *)
  Builder.intr_void b Ir.Work [ Ir.Imm 200L ];
  Builder.store b Ir.Persistent (Ir.Reg dst_slot) 0 (Ir.Reg c');
  Builder.unlock b (Ir.Reg lock);
  Builder.ret b None;
  Builder.finish b

let worker_fn () =
  let b, ps = Builder.create ~name:"worker" ~nparams:1 in
  let n = List.nth ps 0 in
  Ido_workloads.Wcommon.for_loop b (Ir.Reg n) (fun _ ->
      let src = Builder.intr b Ir.Rand [ Ir.Imm (Int64.of_int accounts) ] in
      (* Pick a destination distinct from the source. *)
      let hop = Builder.intr b Ir.Rand [ Ir.Imm (Int64.of_int (accounts - 1)) ] in
      let d0 = Builder.bin b Ir.Add (Ir.Reg src) (Ir.Reg hop) in
      let d1 = Builder.bin b Ir.Add (Ir.Reg d0) (Ir.Imm 1L) in
      let dst = Builder.bin b Ir.Rem (Ir.Reg d1) (Ir.Imm (Int64.of_int accounts)) in
      let amt = Builder.intr b Ir.Rand [ Ir.Imm 50L ] in
      Builder.call_void b "transfer" [ Ir.Reg src; Ir.Reg dst; Ir.Reg amt ]);
  Builder.ret b None;
  Builder.finish b

let program () =
  {
    Ir.funcs =
      [ ("init", init_fn ()); ("transfer", transfer_fn ()); ("worker", worker_fn ()) ];
  }

let total_balance m =
  let bank = Int64.to_int (Region.get_root (Vm.region m) 0) in
  let sum = ref 0L in
  for i = 0 to accounts - 1 do
    sum := Int64.add !sum (Pmem.load (Vm.pmem m) (bank + (i * stride)))
  done;
  !sum

let run_with_crash scheme seed =
  let m = Vm.create { (Vm.config scheme) with seed; cache_lines = 4 } (program ()) in
  let _ = Vm.spawn m ~fname:"init" ~args:[] in
  ignore (Vm.run m);
  Vm.flush_all m;
  for _ = 1 to 4 do
    ignore (Vm.spawn m ~fname:"worker" ~args:[ 10_000L ])
  done;
  ignore (Vm.run ~until:(37_000 + (seed * 1009)) m);
  Vm.crash m;
  let stats = Vm.recover m in
  (total_balance m, stats)

let () =
  let expect = Int64.mul (Int64.of_int accounts) initial_balance in
  Printf.printf "Bank of %d accounts, %Ld total. Crashing mid-transfer...\n\n"
    accounts expect;
  let violations scheme =
    let bad = ref 0 in
    for seed = 1 to 20 do
      let total, _ = run_with_crash scheme seed in
      if total <> expect then incr bad
    done;
    !bad
  in
  let total, stats = run_with_crash Scheme.Ido 1 in
  Printf.printf
    "iDO: crash interrupted %d FASE(s); recovery resumed them in %.0f ms\n\
     (simulated) and the books balance: total = %Ld.\n\n"
    stats.Ido_vm.Recover.fases_resumed
    (Ido_util.Timebase.to_ms stats.Ido_vm.Recover.simulated_time)
    total;
  Printf.printf "Across 20 crash points: iDO violations:    %d / 20\n"
    (violations Scheme.Ido);
  Printf.printf "                        Atlas violations:  %d / 20\n"
    (violations Scheme.Atlas);
  Printf.printf "                        Origin violations: %d / 20  <- crash-vulnerable\n"
    (violations Scheme.Origin)
