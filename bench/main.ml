(* The benchmark harness.

   Part 1 regenerates every table and figure of the paper's evaluation
   (Sec. V) on the simulated machine and prints them in paper order —
   the output EXPERIMENTS.md records.  Scale via BENCH_SCALE=quick|full
   (default quick).

   Part 2 is a Bechamel microbenchmark suite (one Test.make per paper
   artifact) measuring the host-side cost of the primitive that
   dominates each experiment: the per-operation simulation cost of each
   scheme for the throughput figures, the region-formation analysis
   behind Fig. 8, and the recovery procedures behind Table I. *)

open Bechamel
open Toolkit
open Ido_runtime
module Vm = Ido_vm.Vm

let scale =
  match Sys.getenv_opt "BENCH_SCALE" with
  | Some "full" -> Ido_harness.Exp.Full
  | _ -> Ido_harness.Exp.Quick

(* BENCH_JOBS=N spreads the sweep cells of Part 1 over a domain pool;
   panels are identical at every N (see Ido_util.Pool).  Part 2 stays
   serial: Bechamel needs a quiet machine for its per-iteration fits. *)
let jobs =
  match Sys.getenv_opt "BENCH_JOBS" with
  | Some s -> ( match int_of_string_opt (String.trim s) with
    | Some n when n >= 1 -> n
    | _ -> 1)
  | None -> 1

(* ------------------------------------------------------------------ *)
(* Part 1: the paper's tables and figures *)

let regenerate () =
  print_endline "==========================================================";
  print_endline " iDO reproduction: all tables and figures (Sec. V)";
  print_endline
    (" scale: " ^ (match scale with Ido_harness.Exp.Quick -> "quick" | _ -> "full"));
  print_endline "==========================================================";
  print_newline ();
  let panels =
    if jobs = 1 then Ido_harness.Figures.all scale
    else
      Ido_util.Pool.with_pool jobs (fun pool ->
          Ido_harness.Figures.all ~pool scale)
  in
  List.iter
    (fun (name, panel) ->
      Printf.printf "---- %s ----\n%s\n" name panel;
      flush stdout)
    panels

(* ------------------------------------------------------------------ *)
(* Part 2: Bechamel micro-measurements *)

(* One simulated data-structure operation under a scheme (the unit of
   Figs. 5-7): the machine is booted once outside the measured
   closure; each iteration spawns a fresh worker on it and advances
   the simulation by [ops_per_iter] operations. *)
let ops_per_iter = 20

let throughput_test name scheme workload =
  let prog = Ido_workloads.Workload.named workload in
  let boot () =
    let cfg =
      (* Small per-thread logs: every iteration spawns a worker. *)
      { (Vm.config scheme) with undo_cap = 1024; redo_cap = 512; page_cap = 16 }
    in
    let m = Vm.create cfg prog in
    let _ = Vm.spawn m ~fname:"init" ~args:[] in
    ignore (Vm.run m);
    Vm.flush_all m;
    m
  in
  let mref = ref (boot ()) in
  Test.make ~name
    (Staged.stage (fun () ->
         (* Reboot before the heap (stacks + logs of retired workers)
            fills up; the occasional boot is noise the OLS fit absorbs. *)
         if Ido_region.Region.words_allocated (Vm.region !mref) > 4_000_000 then
           mref := boot ();
         let m = !mref in
         ignore (Vm.spawn m ~fname:"worker" ~args:[ Int64.of_int ops_per_iter ]);
         match Vm.run m with
         | `Idle -> ()
         | _ -> failwith "bench run stuck"))

(* Runtime primitives on a bare persistent memory: the per-store /
   per-boundary costs whose ratio drives every throughput figure. *)
let primitive_tests =
  let pm = Ido_nvm.Pmem.create ~rng:(Ido_util.Rng.create 1) (1 lsl 20) in
  let region = Ido_region.Region.create pm in
  let w = Pwriter.create pm Ido_nvm.Latency.default in
  let undo = Undo_log.create w region ~kind:Lognode.kind_atlas ~tid:0 ~cap_records:4096 in
  let jd = Justdo_log.create w region ~tid:1 ~nregs:16 in
  let ido = Ido_log.create w region ~tid:2 ~nregs:16 in
  let seq = ref 0 in
  [
    Test.make ~name:"prim:ido-boundary(4 regs + pc, 2 fences)"
      (Staged.stage (fun () ->
           Ido_log.write_out_regs w ido [ (0, 1L); (1, 2L); (2, 3L); (3, 4L) ];
           Pwriter.fence w;
           incr seq;
           Ido_log.set_recovery_pc w ido ~epoch:!seq 42;
           Pwriter.fence w;
           ignore (Pwriter.take_cost w)));
    Test.make ~name:"prim:atlas-undo-append(32B + fence)"
      (Staged.stage (fun () ->
           incr seq;
           Undo_log.log_write w undo ~addr:(!seq mod 1024) ~old:7L ~seq:!seq;
           if Undo_log.total pm undo mod 4000 = 0 then Undo_log.reset w undo;
           ignore (Pwriter.take_cost w)));
    Test.make ~name:"prim:justdo-log-store(3 words + fence)"
      (Staged.stage (fun () ->
           incr seq;
           Justdo_log.log_store w jd ~pc:!seq ~addr:(!seq mod 1024) ~value:9L;
           ignore (Pwriter.take_cost w)));
    Test.make ~name:"prim:persist-store(word + clwb + fence)"
      (Staged.stage (fun () ->
           incr seq;
           Pwriter.persist_store w (!seq mod 1024) 5L;
           ignore (Pwriter.take_cost w)));
  ]

(* Fig. 8's substrate: the full region-formation analysis of a
   function (CFG, liveness, alias, antidependences, hitting set). *)
let region_analysis_test =
  let f = Ido_ir.Ir.find_func (Ido_workloads.Workload.named "olist") "list_put" in
  Test.make ~name:"fig8:region-formation(list_put)"
    (Staged.stage (fun () -> ignore (Ido_instrument.Instrument.region_plan f)))

(* Table I's substrate: a full crash + recovery cycle. *)
let recovery_test name scheme =
  Test.make ~name
    (Staged.stage (fun () ->
         let prog = Ido_workloads.Workload.named "queue" in
         let m = Vm.create (Vm.config scheme) prog in
         let _ = Vm.spawn m ~fname:"init" ~args:[] in
         ignore (Vm.run m);
         Vm.flush_all m;
         ignore (Vm.spawn m ~fname:"worker" ~args:[ 100_000L ]);
         ignore (Vm.run ~until:(Vm.clock m + 50_000) m);
         Vm.crash m;
         ignore (Vm.recover m)))

let tests =
  Test.make_grouped ~name:"ido" ~fmt:"%s %s"
    ([
      throughput_test "fig5:memcached-op(ido)" Scheme.Ido "kvcache50";
      throughput_test "fig5:memcached-op(atlas)" Scheme.Atlas "kvcache50";
      throughput_test "fig6:redis-op(ido)" Scheme.Ido "objstore";
      throughput_test "fig6:redis-op(nvml)" Scheme.Nvml "objstore";
      throughput_test "fig7:stack-op(ido)" Scheme.Ido "stack";
      throughput_test "fig7:stack-op(justdo)" Scheme.Justdo "stack";
      throughput_test "fig7:hmap-op(ido)" Scheme.Ido "hmap";
      throughput_test "fig9:latency-op(ido)" Scheme.Ido "kvcache50";
      region_analysis_test;
      recovery_test "table1:crash-recover(ido)" Scheme.Ido;
      recovery_test "table1:crash-recover(atlas)" Scheme.Atlas;
    ]
    @ primitive_tests)

let benchmark () =
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  let instances = Instance.[ monotonic_clock ] in
  let cfg =
    Benchmark.cfg ~limit:500 ~quota:(Time.second 1.0) ~stabilize:false ()
  in
  let raw_results = Benchmark.all cfg instances tests in
  let results =
    List.map (fun instance -> Analyze.all ols instance raw_results) instances
  in
  Analyze.merge ols instances results

let print_bench results =
  print_endline "==========================================================";
  print_endline " Bechamel microbenchmarks (host-side cost per iteration)";
  print_endline "==========================================================";
  Hashtbl.iter
    (fun instance_label tbl ->
      if instance_label = Measure.label Instance.monotonic_clock then
        Hashtbl.iter
          (fun test_name ols ->
            match Analyze.OLS.estimates ols with
            | Some [ est ] ->
                Printf.printf "  %-40s %12.0f ns/iter\n" test_name est
            | _ -> Printf.printf "  %-40s (no estimate)\n" test_name)
          tbl)
    results;
  flush stdout

(* ------------------------------------------------------------------ *)
(* Serving panel: the paper's server applications driven open-loop
   (lib/serve) — tail latency per scheme on one sharded cell. *)

let serve_panel () =
  let requests =
    match scale with Ido_harness.Exp.Quick -> 500 | _ -> 4000
  in
  let mk scheme =
    Ido_serve.Config.make ~topology:(Ido_serve.Topology.static 4) ~batch:8
      ~requests ~zipf:0.99 ~workload:"kvcache50" ~scheme ()
  in
  let run pool =
    List.map
      (fun scheme -> Ido_serve.Serve.run_cell ?pool ~obs:true (mk scheme))
      [ Scheme.Ido; Scheme.Justdo ]
  in
  let cells =
    if jobs = 1 then run None
    else Ido_util.Pool.with_pool jobs (fun pool -> run (Some pool))
  in
  Printf.printf "---- serving: open-loop tail latency ----\n%s\n"
    (Ido_serve.Report.render cells);
  flush stdout

let () =
  regenerate ();
  serve_panel ();
  let results = benchmark () in
  print_bench results
