(* Static crash-consistency linter: the mutation corpus must be caught
   by its expected stable codes, the shipped workloads must lint clean
   under every supported scheme, and — the bridge to PR 1 — random
   programs the linter passes must also pass the dynamic crash matrix.

   Hand-built programs cover the lockset checks (L501/L502/L503),
   whose triggers the shipped workloads deliberately avoid. *)

open Ido_ir
open Ido_runtime
module Wcommon = Ido_workloads.Wcommon
module Instrument = Ido_instrument.Instrument
module Lint = Ido_lint.Lint
module Mutate = Ido_lint.Mutate
module Lintrun = Ido_check.Lintrun

let qtest = QCheck_alcotest.to_alcotest

let codes_of diags =
  List.sort_uniq compare
    (List.map (fun d -> d.Ido_analysis.Diag.code) diags)

(* ------------------------------------------------------------------ *)
(* Mutation corpus: every seeded bug is caught, by its expected code.  *)

let corpus_caught () =
  List.iter
    (fun (o : Lintrun.outcome) ->
      Alcotest.(check bool)
        (Printf.sprintf "%s reports %s (got %s)" o.mutant.Mutate.name
           o.mutant.Mutate.expect
           (String.concat "," (codes_of o.mdiags)))
        true o.caught;
      (* the CLI failure path: a seeded bug means a nonzero exit *)
      Alcotest.(check bool)
        (o.mutant.Mutate.name ^ " yields a nonempty report")
        false (o.mdiags = []))
    (Lintrun.run_corpus ())

let corpus_names_unique () =
  let names = List.map (fun m -> m.Mutate.name) Mutate.corpus in
  Alcotest.(check int)
    "mutant names are unique"
    (List.length names)
    (List.length (List.sort_uniq compare names))

let corpus_codes_documented () =
  List.iter
    (fun m ->
      Alcotest.(check bool)
        (m.Mutate.name ^ " expects a documented code")
        true
        (List.mem_assoc m.Mutate.expect Lint.codes))
    Mutate.corpus

(* ------------------------------------------------------------------ *)
(* Shipped workloads lint clean — the CLI's success path (exit 0).     *)

let shipped_clean () =
  List.iter
    (fun (p : Lintrun.pair) ->
      Alcotest.(check (list string))
        (Printf.sprintf "%s on %s lints clean" (Scheme.name p.scheme)
           p.workload)
        [] (codes_of p.diags))
    (Lintrun.sweep ())

(* ------------------------------------------------------------------ *)
(* Lockset checks on hand-built programs.                              *)

let two_func ~build_worker =
  let b, _ = Builder.create ~name:"init" ~nparams:0 in
  let arr = Wcommon.alloc_node b 8 [] in
  Wcommon.set_root b 0 (Ir.Reg arr);
  Builder.ret b None;
  let init = Builder.finish b in
  let b, _ = Builder.create ~name:"worker" ~nparams:1 in
  let arr = Wcommon.get_root b 0 in
  build_worker b arr;
  Builder.ret b None;
  { Ir.funcs = [ ("init", init); ("worker", Builder.finish b) ] }

let lint_under scheme prog =
  codes_of (Lint.lint_program scheme (Instrument.instrument scheme prog))

let lock_at b arr k = Builder.bin b Ir.Add (Ir.Reg arr) (Ir.Imm (Int64.of_int k))

let l501_unprotected_write () =
  let prog =
    two_func ~build_worker:(fun b arr ->
        let l = lock_at b arr 4 in
        Builder.lock b (Ir.Reg l);
        Builder.store b Ir.Persistent (Ir.Reg arr) 0 (Ir.Imm 1L);
        Builder.unlock b (Ir.Reg l);
        (* same word written again with no lock held *)
        Builder.store b Ir.Persistent (Ir.Reg arr) 0 (Ir.Imm 2L))
  in
  Alcotest.(check bool)
    "unprotected write is L501" true
    (List.mem "L501" (lint_under Scheme.Justdo prog))

let l502_empty_lockset () =
  let prog =
    two_func ~build_worker:(fun b arr ->
        let a = lock_at b arr 4 and bq = lock_at b arr 5 in
        let parity = Builder.bin b Ir.And (Ir.Reg arr) (Ir.Imm 1L) in
        Builder.if_ b (Ir.Reg parity)
          ~then_:(fun () ->
            Builder.lock b (Ir.Reg a);
            Builder.store b Ir.Persistent (Ir.Reg arr) 0 (Ir.Imm 1L);
            Builder.unlock b (Ir.Reg a))
          ~else_:(fun () ->
            Builder.lock b (Ir.Reg bq);
            Builder.store b Ir.Persistent (Ir.Reg arr) 0 (Ir.Imm 2L);
            Builder.unlock b (Ir.Reg bq)))
  in
  Alcotest.(check bool)
    "disjoint locksets are L502" true
    (List.mem "L502" (lint_under Scheme.Justdo prog))

let l503_lock_order_cycle () =
  let prog =
    two_func ~build_worker:(fun b arr ->
        let a = lock_at b arr 4 and bq = lock_at b arr 5 in
        Builder.lock b (Ir.Reg a);
        Builder.lock b (Ir.Reg bq);
        Builder.store b Ir.Persistent (Ir.Reg arr) 0 (Ir.Imm 1L);
        Builder.unlock b (Ir.Reg bq);
        Builder.unlock b (Ir.Reg a);
        Builder.lock b (Ir.Reg bq);
        Builder.lock b (Ir.Reg a);
        Builder.store b Ir.Persistent (Ir.Reg arr) 1 (Ir.Imm 2L);
        Builder.unlock b (Ir.Reg a);
        Builder.unlock b (Ir.Reg bq))
  in
  Alcotest.(check bool)
    "opposite nesting orders are L503" true
    (List.mem "L503" (lint_under Scheme.Justdo prog))

let consistent_order_clean () =
  (* same nesting order twice: no cycle, and the shared words hold a
     common lock, so the whole lockset pass stays silent *)
  let prog =
    two_func ~build_worker:(fun b arr ->
        let a = lock_at b arr 4 and bq = lock_at b arr 5 in
        Builder.lock b (Ir.Reg a);
        Builder.lock b (Ir.Reg bq);
        Builder.store b Ir.Persistent (Ir.Reg arr) 0 (Ir.Imm 1L);
        Builder.unlock b (Ir.Reg bq);
        Builder.unlock b (Ir.Reg a);
        Builder.lock b (Ir.Reg a);
        Builder.lock b (Ir.Reg bq);
        Builder.store b Ir.Persistent (Ir.Reg arr) 0 (Ir.Imm 2L);
        Builder.unlock b (Ir.Reg bq);
        Builder.unlock b (Ir.Reg a))
  in
  Alcotest.(check (list string))
    "consistent discipline lints clean" []
    (lint_under Scheme.Justdo prog)

(* ------------------------------------------------------------------ *)
(* Random-CFG corpus: instrumentation output always lints clean, and
   a linter-clean program also passes the dynamic crash matrix — the
   static and dynamic obligations agree.                               *)

let instrumented_schemes =
  Scheme.[ Ido; Justdo; Atlas; Mnemosyne; Nvthreads ]

let prop_random_cfgs_lint_clean =
  QCheck.Test.make ~name:"instrumented random CFGs lint clean" ~count:40
    Test_idempotence.trees_arb
    (fun trees ->
      let prog = Test_idempotence.program_of_trees trees in
      List.for_all
        (fun scheme ->
          lint_under scheme prog = []
          || QCheck.Test.fail_reportf "%s: %s" (Scheme.name scheme)
               (String.concat "," (lint_under scheme prog)))
        instrumented_schemes)

let prop_lint_clean_implies_crash_safe =
  QCheck.Test.make
    ~name:"linter-clean programs pass the crash matrix" ~count:20
    Test_idempotence.trees_arb
    (fun trees ->
      let prog = Test_idempotence.program_of_trees trees in
      (* static obligation first... *)
      lint_under Scheme.Ido prog = []
      &&
      (* ...then the dynamic one on the same program *)
      let seed = 1 + (Hashtbl.hash trees mod 1000) in
      let reference, end_clock = Test_idempotence.run_reference prog seed in
      List.for_all
        (fun frac ->
          let crash_at = max 1 (end_clock * frac / 10) in
          let got, resumed =
            Test_idempotence.run_with_crash Scheme.Ido prog seed crash_at
          in
          if resumed > 0 then got = reference
          else got = reference || got = Test_idempotence.initial_cells)
        [ 2; 5; 8 ])

(* ------------------------------------------------------------------ *)
(* The instrumentation post-pass: [~lint:true] is a no-op on correct
   output and refuses to emit a program the linter rejects.            *)

let instrument_lint_postpass () =
  ignore
    (Instrument.instrument ~lint:true Scheme.Justdo
       (Ido_workloads.Workload.named "queue"));
  let m =
    match Mutate.find "unlocked-store" with
    | Some m -> m
    | None -> Alcotest.fail "unlocked-store mutant missing"
  in
  let raised =
    try
      ignore
        (Instrument.instrument ~lint:true m.Mutate.scheme
           (m.Mutate.transform
              (Ido_workloads.Workload.named m.Mutate.workload)));
      false
    with Failure _ -> true
  in
  Alcotest.(check bool) "post-pass rejects a seeded bug" true raised

let explain_total () =
  List.iter
    (fun (c, s) ->
      Alcotest.(check string) ("explain " ^ c) s (Lint.explain c))
    Lint.codes;
  Alcotest.(check string)
    "unknown code" "unknown diagnostic code" (Lint.explain "L999")

let suites =
  [
    ( "lint",
      [
        Alcotest.test_case "mutation corpus is caught" `Quick corpus_caught;
        Alcotest.test_case "mutant names unique" `Quick corpus_names_unique;
        Alcotest.test_case "corpus codes documented" `Quick
          corpus_codes_documented;
        Alcotest.test_case "shipped workloads x schemes lint clean" `Slow
          shipped_clean;
        Alcotest.test_case "L501 unprotected write" `Quick
          l501_unprotected_write;
        Alcotest.test_case "L502 empty lockset" `Quick l502_empty_lockset;
        Alcotest.test_case "L503 lock-order cycle" `Quick
          l503_lock_order_cycle;
        Alcotest.test_case "consistent locking lints clean" `Quick
          consistent_order_clean;
        qtest prop_random_cfgs_lint_clean;
        qtest prop_lint_clean_implies_crash_safe;
        Alcotest.test_case "instrument ~lint:true post-pass" `Quick
          instrument_lint_postpass;
        Alcotest.test_case "code table total" `Quick explain_total;
      ] );
  ]
