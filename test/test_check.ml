(* Tier-1 coverage for the crash-point exploration engine (lib/check).

   Budgets here are deliberately small: each injected crash boots a
   fresh machine, so the suite bounds its total work to keep the tree
   fast.  The exhaustive sweeps live behind bin/ido_check. *)

open Ido_runtime
open Ido_vm
open Ido_check

let spec ?threads ?ops ?cache_lines ?strict ~scheme ~workload () =
  Engine.defaults ?threads ?ops ?cache_lines ?strict ~scheme ~workload ()

(* Recording the persist-event schedule twice must give the same
   sequence: injection indices are only meaningful if replays observe
   the schedule the recording did. *)
let recording_deterministic () =
  let s = spec ~scheme:Scheme.Ido ~workload:"queue" ~ops:10 () in
  let a = Engine.record s in
  let b = Engine.record s in
  Alcotest.(check int) "same length" (Array.length a) (Array.length b);
  Array.iteri
    (fun i e ->
      Alcotest.(check string)
        (Printf.sprintf "event %d" i)
        (Event.describe e) (Event.describe b.(i)))
    a

(* A crash at every sampled point of an instrumented scheme must
   recover to a state the Atomic oracle accepts. *)
let clean_exploration scheme workload () =
  let s = spec ~scheme ~workload ~ops:12 () in
  let r = Engine.explore s ~budget:25 in
  (match r.Engine.counterexample with
  | None -> ()
  | Some inj ->
      Alcotest.failf "unexpected violation at index %d: %s" inj.Engine.index
        (match inj.Engine.verdict with Error m -> m | Ok () -> "ok"));
  Alcotest.(check int) "no violations" 0 (List.length r.Engine.violations);
  Alcotest.(check bool) "tested something" true (r.Engine.tested > 0)

(* Origin has no failure-atomicity mechanism: with a small cache the
   eviction stream leaks partial updates, and the strict oracle must
   catch one, shrink it, and hand back an index that replays. *)
let origin_counterexample () =
  let s =
    spec ~scheme:Scheme.Origin ~workload:"stack" ~ops:25 ~cache_lines:4
      ~strict:true ()
  in
  let r = Engine.explore s ~budget:60 in
  match r.Engine.counterexample with
  | None -> Alcotest.fail "origin/stack survived the strict oracle"
  | Some inj -> (
      (match inj.Engine.verdict with
      | Ok () -> Alcotest.fail "counterexample carries an Ok verdict"
      | Error _ -> ());
      (* The shrunk index must replay to a violation on a fresh run. *)
      let again = Engine.inject s inj.Engine.index in
      match again.Engine.verdict with
      | Error _ -> ()
      | Ok () ->
          Alcotest.failf "index %d did not replay to a violation"
            inj.Engine.index)

(* Under the Prefix oracle Origin's crash states are merely required to
   be memory-safe; the same configuration must then pass. *)
let origin_prefix_clean () =
  let s = spec ~scheme:Scheme.Origin ~workload:"stack" ~ops:25 ~cache_lines:8 () in
  let r = Engine.explore s ~budget:40 in
  Alcotest.(check int) "prefix oracle accepts origin" 0
    (List.length r.Engine.violations)

(* Cross-scheme differential check: instrumentation must not change
   what the program computes.  With one thread the schedule is fixed,
   so every scheme's crash-free final state must digest identically.
   (Mnemosyne's abort backoff consumes thread randomness only under
   contention, so single-threaded runs stay comparable.) *)
let differential workload () =
  let digest scheme =
    Engine.final_digest (spec ~scheme ~workload ~threads:1 ~ops:15 ())
  in
  let reference = digest Scheme.Origin in
  List.iter
    (fun scheme ->
      if Engine.supported scheme workload then
        Alcotest.(check string)
          (Printf.sprintf "%s matches origin on %s" (Scheme.name scheme)
             workload)
          reference (digest scheme))
    Scheme.all

let differential_cases =
  List.map
    (fun w ->
      Alcotest.test_case (Printf.sprintf "all schemes agree on %s" w) `Quick
        (differential w))
    [ "stack"; "queue"; "olist"; "hmap"; "kvcache50"; "objstore"; "mlog" ]

let suites =
  [
    ( "check.engine",
      [
        Alcotest.test_case "recorded schedule is deterministic" `Quick
          recording_deterministic;
        Alcotest.test_case "ido/queue crash matrix is clean" `Quick
          (clean_exploration Scheme.Ido "queue");
        Alcotest.test_case "atlas/stack crash matrix is clean" `Quick
          (clean_exploration Scheme.Atlas "stack");
        Alcotest.test_case "justdo/stack crash matrix is clean" `Quick
          (clean_exploration Scheme.Justdo "stack");
        Alcotest.test_case "mnemosyne/mlog crash matrix is clean" `Quick
          (clean_exploration Scheme.Mnemosyne "mlog");
        Alcotest.test_case "origin/stack fails strict oracle, shrinks, replays"
          `Quick origin_counterexample;
        Alcotest.test_case "origin/stack passes prefix oracle" `Quick
          origin_prefix_clean;
      ] );
    ("check.differential", differential_cases);
  ]
