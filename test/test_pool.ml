(* Tier-1 coverage for the domain pool (lib/util/pool.ml) and the
   parallel drivers built on it: results come back in submission
   order, task exceptions re-raise at await, a serial pool runs tasks
   synchronously, and a pooled exploration produces a report
   digest-identical to the serial path. *)

open Ido_util
open Ido_runtime
open Ido_check

let ordering () =
  Pool.with_pool 4 (fun pool ->
      let xs = List.init 64 Fun.id in
      let ys =
        Pool.map_list pool
          (fun i ->
            (* Uneven per-task work so completion order differs from
               submission order on a real multicore. *)
            if i mod 7 = 0 then
              ignore (Sys.opaque_identity (Array.init 10_000 Fun.id));
            i * i)
          xs
      in
      Alcotest.(check (list int))
        "squares in submission order"
        (List.map (fun i -> i * i) xs)
        ys)

let map_array_ordering () =
  Pool.with_pool 3 (fun pool ->
      let xs = Array.init 33 Fun.id in
      let ys = Pool.map_array pool (fun i -> i + 1) xs in
      Alcotest.(check (array int))
        "array in submission order"
        (Array.map (fun i -> i + 1) xs)
        ys)

exception Boom of int

let exception_propagation () =
  Pool.with_pool 3 (fun pool ->
      let good = Pool.submit pool (fun () -> 41) in
      let bad = Pool.submit pool (fun () -> raise (Boom 7)) in
      Alcotest.(check int) "good future" 41 (Pool.await good);
      (match Pool.await bad with
      | _ -> Alcotest.fail "await should re-raise the task's exception"
      | exception Boom 7 -> ());
      (* A failed task must not poison the pool. *)
      Alcotest.(check int)
        "pool survives a failed task" 5
        (Pool.await (Pool.submit pool (fun () -> 5))))

let serial_runs_at_submit () =
  let pool = Pool.create 1 in
  Alcotest.(check int) "size" 1 (Pool.size pool);
  let touched = ref false in
  let fut =
    Pool.submit pool (fun () ->
        touched := true;
        3)
  in
  Alcotest.(check bool) "task ran synchronously at submit" true !touched;
  Alcotest.(check int) "result" 3 (Pool.await fut);
  (match Pool.await (Pool.submit pool (fun () -> raise (Boom 1))) with
  | _ -> Alcotest.fail "serial await should re-raise"
  | exception Boom 1 -> ());
  Pool.shutdown pool

let opt_map_none () =
  Alcotest.(check (list int))
    "opt_map_list None is List.map" [ 2; 4; 6 ]
    (Pool.opt_map_list None (fun x -> 2 * x) [ 1; 2; 3 ])

let invalid_jobs () =
  Alcotest.check_raises "jobs = 0 rejected"
    (Invalid_argument "Pool.create: jobs must be >= 1") (fun () ->
      ignore (Pool.create 0))

let submit_after_shutdown () =
  let pool = Pool.create 2 in
  Pool.shutdown pool;
  Pool.shutdown pool;
  (* idempotent *)
  Alcotest.check_raises "submit after shutdown rejected"
    (Invalid_argument "Pool.submit: pool is shut down") (fun () ->
      ignore (Pool.submit pool (fun () -> 0)))

(* ------------------------------------------------------------------ *)
(* Parallel exploration determinism: the whole report — schedule
   length, sampled indices, verdicts, counterexample — must be
   digest-identical between a serial and a pooled run. *)

let report_digest (r : Engine.report) =
  let inj (i : Engine.injection) =
    Printf.sprintf "%d:%s:%s" i.Engine.index
      (Option.value i.Engine.event ~default:"terminal")
      (match i.Engine.verdict with Ok () -> "ok" | Error m -> m)
  in
  String.concat "|"
    ([
       string_of_int r.Engine.total_events;
       string_of_int r.Engine.tested;
       string_of_bool r.Engine.exhaustive;
     ]
    @ List.map inj r.Engine.violations
    @ [ (match r.Engine.counterexample with None -> "-" | Some i -> inj i) ])
  |> Digest.string |> Digest.to_hex

let parallel_explore_identical scheme workload () =
  let s = Engine.defaults ~ops:10 ~scheme ~workload () in
  let serial = Engine.explore s ~budget:20 in
  let pooled =
    Pool.with_pool 4 (fun pool -> Engine.explore ~pool s ~budget:20)
  in
  Alcotest.(check string)
    "report digest matches serial" (report_digest serial)
    (report_digest pooled)

(* The figure sweeps route their cells through Exp.pmap; a pooled
   panel must render byte-identically to the serial one. *)
let parallel_sweep_identical () =
  let serial = Ido_harness.Figures.fig6 Ido_harness.Exp.Quick in
  let pooled =
    Pool.with_pool 3 (fun pool ->
        Ido_harness.Figures.fig6 ~pool Ido_harness.Exp.Quick)
  in
  Alcotest.(check string) "fig6 panel identical" serial pooled

let suites =
  [
    ( "pool",
      [
        Alcotest.test_case "map_list preserves order" `Quick ordering;
        Alcotest.test_case "map_array preserves order" `Quick map_array_ordering;
        Alcotest.test_case "exceptions re-raise at await" `Quick
          exception_propagation;
        Alcotest.test_case "serial pool runs at submit" `Quick
          serial_runs_at_submit;
        Alcotest.test_case "opt_map_list without a pool" `Quick opt_map_none;
        Alcotest.test_case "create rejects jobs < 1" `Quick invalid_jobs;
        Alcotest.test_case "submit after shutdown rejected" `Quick
          submit_after_shutdown;
      ] );
    ( "pool-drivers",
      [
        Alcotest.test_case "explore ido/queue: -j4 = serial" `Quick
          (parallel_explore_identical Scheme.Ido "queue");
        Alcotest.test_case "explore atlas/stack: -j4 = serial" `Quick
          (parallel_explore_identical Scheme.Atlas "stack");
        Alcotest.test_case "fig6 sweep: pooled = serial" `Quick
          parallel_sweep_identical;
      ] );
  ]
