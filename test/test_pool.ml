(* Tier-1 coverage for the domain pool (lib/util/pool.ml) and the
   parallel drivers built on it: results come back in submission
   order, task exceptions re-raise at await, a serial pool runs tasks
   synchronously, and a pooled exploration produces a report
   digest-identical to the serial path. *)

open Ido_util
open Ido_runtime
open Ido_check

let qtest = QCheck_alcotest.to_alcotest

let ordering () =
  Pool.with_pool 4 (fun pool ->
      let xs = List.init 64 Fun.id in
      let ys =
        Pool.map_list pool
          (fun i ->
            (* Uneven per-task work so completion order differs from
               submission order on a real multicore. *)
            if i mod 7 = 0 then
              ignore (Sys.opaque_identity (Array.init 10_000 Fun.id));
            i * i)
          xs
      in
      Alcotest.(check (list int))
        "squares in submission order"
        (List.map (fun i -> i * i) xs)
        ys)

let map_array_ordering () =
  Pool.with_pool 3 (fun pool ->
      let xs = Array.init 33 Fun.id in
      let ys = Pool.map_array pool (fun i -> i + 1) xs in
      Alcotest.(check (array int))
        "array in submission order"
        (Array.map (fun i -> i + 1) xs)
        ys)

exception Boom of int

let exception_propagation () =
  Pool.with_pool 3 (fun pool ->
      let good = Pool.submit pool (fun () -> 41) in
      let bad = Pool.submit pool (fun () -> raise (Boom 7)) in
      Alcotest.(check int) "good future" 41 (Pool.await good);
      (match Pool.await bad with
      | _ -> Alcotest.fail "await should re-raise the task's exception"
      | exception Boom 7 -> ());
      (* A failed task must not poison the pool. *)
      Alcotest.(check int)
        "pool survives a failed task" 5
        (Pool.await (Pool.submit pool (fun () -> 5))))

let serial_runs_at_submit () =
  let pool = Pool.create 1 in
  Alcotest.(check int) "size" 1 (Pool.size pool);
  let touched = ref false in
  let fut =
    Pool.submit pool (fun () ->
        touched := true;
        3)
  in
  Alcotest.(check bool) "task ran synchronously at submit" true !touched;
  Alcotest.(check int) "result" 3 (Pool.await fut);
  (match Pool.await (Pool.submit pool (fun () -> raise (Boom 1))) with
  | _ -> Alcotest.fail "serial await should re-raise"
  | exception Boom 1 -> ());
  Pool.shutdown pool

let opt_map_none () =
  Alcotest.(check (list int))
    "opt_map_list None is List.map" [ 2; 4; 6 ]
    (Pool.opt_map_list None (fun x -> 2 * x) [ 1; 2; 3 ])

let invalid_jobs () =
  Alcotest.check_raises "jobs = 0 rejected"
    (Invalid_argument "Pool.create: jobs must be >= 1") (fun () ->
      ignore (Pool.create 0))

let submit_after_shutdown () =
  let pool = Pool.create 2 in
  Pool.shutdown pool;
  Pool.shutdown pool;
  (* idempotent *)
  Alcotest.check_raises "submit after shutdown rejected"
    (Invalid_argument "Pool.submit: pool is shut down") (fun () ->
      ignore (Pool.submit pool (fun () -> 0)))

(* ------------------------------------------------------------------ *)
(* Stress: the work-stealing scheduler under a deep queue of uneven
   tasks must keep every ordering guarantee it makes when idle. *)

(* Durations spanning ~3 orders of magnitude, so steals, helping
   awaits and the idle spin/park protocol all trigger. *)
let uneven_work i =
  if i mod 97 = 0 then ignore (Sys.opaque_identity (Array.init 30_000 Fun.id))
  else if i mod 13 = 0 then
    ignore (Sys.opaque_identity (Array.init 2_000 Fun.id))
  else if i mod 3 = 0 then ignore (Sys.opaque_identity (List.init 50 Fun.id))

let stress_ordering () =
  Pool.with_pool 4 (fun pool ->
      let n = 1000 in
      let ran = Atomic.make 0 in
      let xs = List.init n Fun.id in
      let ys =
        Pool.map_list pool
          (fun i ->
            uneven_work i;
            Atomic.incr ran;
            i * 3)
          xs
      in
      Alcotest.(check int) "every task ran" n (Atomic.get ran);
      Alcotest.(check (list int))
        "1000 results in submission order"
        (List.map (fun i -> i * 3) xs)
        ys)

let stress_exception_backtrace () =
  Printexc.record_backtrace true;
  Pool.with_pool 4 (fun pool ->
      let futs =
        List.init 300 (fun i ->
            ( i,
              Pool.submit pool (fun () ->
                  (* Recording is per-domain: enable it where the raise
                     happens so the captured backtrace is non-empty. *)
                  Printexc.record_backtrace true;
                  uneven_work i;
                  if i mod 71 = 0 then raise (Boom i);
                  i) ))
      in
      List.iter
        (fun (i, fut) ->
          if i mod 71 = 0 then (
            match Pool.await fut with
            | _ -> Alcotest.fail "await should re-raise under load"
            | exception Boom j ->
                Alcotest.(check int) "task's own exception payload" i j;
                (* raise_with_backtrace re-raised the task's trace, not
                   an empty one minted on the awaiting domain. *)
                Alcotest.(check bool)
                  "backtrace propagated" true
                  (String.length (Printexc.get_backtrace ()) > 0))
          else Alcotest.(check int) "result" i (Pool.await fut))
        futs)

let stress_shutdown_under_load () =
  (* Shutdown with 1000 tasks still queued: the drain must run every
     one of them (none dropped, none double-run) before join. *)
  let n = 1000 in
  let ran = Atomic.make 0 in
  let pool = Pool.create 4 in
  let futs =
    List.init n (fun i ->
        Pool.submit pool (fun () ->
            uneven_work i;
            Atomic.incr ran;
            i))
  in
  (* Await a few mid-load, then shut down with the rest in flight. *)
  List.iteri
    (fun i fut -> if i < 10 then Alcotest.(check int) "early await" i (Pool.await fut))
    futs;
  Pool.shutdown pool;
  Alcotest.(check int) "all tasks ran exactly once" n (Atomic.get ran);
  Alcotest.check_raises "closed after drain"
    (Invalid_argument "Pool.submit: pool is shut down") (fun () ->
      ignore (Pool.submit pool (fun () -> 0)))

(* ------------------------------------------------------------------ *)
(* Parallel exploration determinism: the whole report — schedule
   length, sampled indices, verdicts, counterexample — must be
   digest-identical between a serial and a pooled run. *)

let report_digest (r : Engine.report) =
  let inj (i : Engine.injection) =
    Printf.sprintf "%d:%s:%s" i.Engine.index
      (Option.value i.Engine.event ~default:"terminal")
      (match i.Engine.verdict with Ok () -> "ok" | Error m -> m)
  in
  String.concat "|"
    ([
       string_of_int r.Engine.total_events;
       string_of_int r.Engine.tested;
       string_of_bool r.Engine.exhaustive;
     ]
    @ List.map inj r.Engine.violations
    @ [ (match r.Engine.counterexample with None -> "-" | Some i -> inj i) ])
  |> Digest.string |> Digest.to_hex

let parallel_explore_identical scheme workload () =
  let s = Engine.defaults ~ops:10 ~scheme ~workload () in
  let serial = Engine.explore s ~budget:20 in
  let pooled =
    Pool.with_pool 4 (fun pool -> Engine.explore ~pool s ~budget:20)
  in
  Alcotest.(check string)
    "report digest matches serial" (report_digest serial)
    (report_digest pooled)

(* Chunked dispatch must be invisible in the output: for each spec the
   explore report digest is identical across every (chunk, -j) pairing,
   including chunks larger than the whole injection plan. *)
let chunked_explore_identical scheme workload () =
  let s = Engine.defaults ~ops:10 ~scheme ~workload () in
  let expected = report_digest (Engine.explore s ~budget:20) in
  List.iter
    (fun jobs ->
      Pool.with_pool jobs (fun pool ->
          List.iter
            (fun chunk ->
              Alcotest.(check string)
                (Printf.sprintf "chunk=%d -j%d = serial" chunk jobs)
                expected
                (report_digest (Engine.explore ~pool ~chunk s ~budget:20)))
            [ 1; 7; 64 ]))
    [ 1; 4 ]

(* Random chunk sizes (including 0 = auto) against the pure map. *)
let prop_map_chunks_is_map =
  QCheck.Test.make ~name:"map_chunks f = List.map f at any chunk size"
    ~count:25
    QCheck.(pair (int_bound 40) (list_of_size Gen.(int_range 0 60) small_int))
    (fun (chunk, xs) ->
      Pool.with_pool 3 (fun pool ->
          Pool.map_chunks ~chunk pool (fun x -> (3 * x) + 1) xs
          = List.map (fun x -> (3 * x) + 1) xs))

(* The figure sweeps route their cells through Exp.pmap; a pooled
   panel must render byte-identically to the serial one. *)
let parallel_sweep_identical () =
  let serial = Ido_harness.Figures.fig6 Ido_harness.Exp.Quick in
  let pooled =
    Pool.with_pool 3 (fun pool ->
        Ido_harness.Figures.fig6 ~pool Ido_harness.Exp.Quick)
  in
  Alcotest.(check string) "fig6 panel identical" serial pooled

let suites =
  [
    ( "pool",
      [
        Alcotest.test_case "map_list preserves order" `Quick ordering;
        Alcotest.test_case "map_array preserves order" `Quick map_array_ordering;
        Alcotest.test_case "exceptions re-raise at await" `Quick
          exception_propagation;
        Alcotest.test_case "serial pool runs at submit" `Quick
          serial_runs_at_submit;
        Alcotest.test_case "opt_map_list without a pool" `Quick opt_map_none;
        Alcotest.test_case "create rejects jobs < 1" `Quick invalid_jobs;
        Alcotest.test_case "submit after shutdown rejected" `Quick
          submit_after_shutdown;
        Alcotest.test_case "1000 uneven tasks keep submission order" `Quick
          stress_ordering;
        Alcotest.test_case "exceptions re-raise with backtrace under load"
          `Quick stress_exception_backtrace;
        Alcotest.test_case "shutdown drains 1000 queued tasks" `Quick
          stress_shutdown_under_load;
        qtest prop_map_chunks_is_map;
      ] );
    ( "pool-drivers",
      [
        Alcotest.test_case "explore ido/queue: -j4 = serial" `Quick
          (parallel_explore_identical Scheme.Ido "queue");
        Alcotest.test_case "explore atlas/stack: -j4 = serial" `Quick
          (parallel_explore_identical Scheme.Atlas "stack");
        Alcotest.test_case "explore ido/queue: every chunk x -j" `Quick
          (chunked_explore_identical Scheme.Ido "queue");
        Alcotest.test_case "explore justdo/stack: every chunk x -j" `Quick
          (chunked_explore_identical Scheme.Justdo "stack");
        Alcotest.test_case "fig6 sweep: pooled = serial" `Quick
          parallel_sweep_identical;
      ] );
  ]
